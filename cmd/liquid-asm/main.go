// liquid-asm assembles SPARC V8 source into a flat binary image — the
// "Assemble w/ GAS" and "Convert to bin w/ OBJCOPY" steps of Fig. 4.
//
// Usage:
//
//	liquid-asm [-origin 0x40001000] [-o prog.bin] [-symbols] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"liquidarch/internal/asm"
	"liquidarch/internal/cliutil"
	"liquidarch/internal/leon"
)

func main() {
	origin := flag.Uint("origin", leon.DefaultLoadAddr, "load origin")
	out := flag.String("o", "-", "output binary ('-' = stdout)")
	symbols := flag.Bool("symbols", false, "print the symbol table to stderr")
	flag.Parse()
	if flag.NArg() > 1 {
		cliutil.Fatalf("liquid-asm: one source file at most")
	}
	src, err := cliutil.ReadInput(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("liquid-asm: %v", err)
	}
	obj, err := asm.AssembleAt(string(src), uint32(*origin))
	if err != nil {
		cliutil.Fatalf("liquid-asm: %v", err)
	}
	if err := cliutil.WriteOutput(*out, obj.Code); err != nil {
		cliutil.Fatalf("liquid-asm: %v", err)
	}
	if *symbols {
		names := make([]string, 0, len(obj.Symbols))
		for n := range obj.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return obj.Symbols[names[i]] < obj.Symbols[names[j]] })
		for _, n := range names {
			fmt.Fprintf(os.Stderr, "%08x %s\n", obj.Symbols[n], n)
		}
	}
}
