// liquid-server is the Reconfiguration Server daemon of Fig. 1: it
// instantiates a liquid-architecture FPX node and serves the §2.6
// control protocol (status / load / start / read memory, plus the
// liquid reconfigure/get-config extensions) over UDP.
//
// Usage:
//
//	liquid-server -listen 127.0.0.1:5001 [-boards N] [-cache-dir DIR] [-metrics-addr 127.0.0.1:9090] [-max-rev N] [-dcache 4096 ...] [-v]
//
// With -boards N the node hosts N independent boards (platforms) behind
// one UDP socket, routed by the board byte of the v2 control header
// (board 0 keeps the wire-compatible v1 header; select a board with
// `liquidctl -board N`). Each board executes asynchronously on its own
// worker, so a long run on one never delays control traffic to another.
// All boards share one reconfiguration manager: concurrent reconfigure
// requests for the same configuration coalesce onto a single synthesis
// (bounded by -synth-workers), and with -cache-dir the bitfile cache is
// backed by a persistent content-addressed store — every synthesis is
// written through, and a restarted server warm-loads the directory so
// previously visited configurations swap in milliseconds instead of
// the modelled tool hours.
//
// With -metrics-addr set, an HTTP listener additionally serves
// /metrics (Prometheus text), /statusz (JSON snapshot + recent events)
// and /debug/pprof, plus the tracing surface: /debug/traces (Chrome
// trace-event JSON of recent exchanges), /debug/events?n=K (newest
// events, plain text) and /debug/flightrecord (black-box snapshot).
// Node-wide socket/queue telemetry lives on board 0's registry. The
// same snapshot is available in-band over UDP via `liquidctl stats`.
//
// Exchange tracing is on by default (-trace=false disables); the
// flight recorder dumps the last traces + events to a timestamped
// file in -flightrec-dir on any CmdError, on SIGQUIT, and on each
// /debug/flightrecord hit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"liquidarch/internal/cliutil"
	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/metrics"
	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/server"
	"liquidarch/internal/synth"
	"liquidarch/internal/tracing"
)

func main() {
	fs := flag.NewFlagSet("liquid-server", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:5001", "UDP address to serve")
	boards := fs.Int("boards", 1, "number of boards (platforms) this node hosts")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics, /statusz and pprof (empty = disabled)")
	verbose := fs.Bool("v", false, "log each handled request")
	uart := fs.Bool("uart", true, "print the processor's UART output to stdout")
	cacheDir := fs.String("cache-dir", "", "back the reconfiguration cache with a persistent store in this directory")
	cacheDirOld := fs.String("cachedir", "", "deprecated alias for -cache-dir")
	synthWorkers := fs.Int("synth-workers", 0, "bound on concurrent synthesis jobs (0 = GOMAXPROCS)")
	trace := fs.Bool("trace", true, "record per-exchange span traces (fetch via liquidctl trace or /debug/traces)")
	flightDir := fs.String("flightrec-dir", ".", "directory for flight-recorder dump files")
	maxRev := fs.Int("max-rev", 0, "cap the served command revision 1..6 (0 = latest); older revs emulate legacy servers: <6 synchronous reconfigure, <5 no held waits, <2 blocking start")
	buildCfg := cliutil.ConfigFlags(fs)
	fs.Parse(os.Args[1:])

	cfg, err := buildCfg()
	if err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
	if *boards < 1 {
		cliutil.Fatalf("liquid-server: -boards must be at least 1")
	}
	if *maxRev < 0 || *maxRev > fpx.LatestCommandRev {
		cliutil.Fatalf("liquid-server: -max-rev must be 0..%d", fpx.LatestCommandRev)
	}
	if *cacheDir == "" {
		*cacheDir = *cacheDirOld
	}
	// One reconfiguration manager serves the whole node: every board's
	// requests dedup onto its synthesis pool, and one cache (optionally
	// backed by -cache-dir's write-through persistent store) covers all
	// of them.
	mgr := reconfig.NewManagerWorkers(
		reconfig.NewCache(0), synth.Options{BitstreamBytes: 65536}, *synthWorkers)
	if *cacheDir != "" {
		if err := mgr.Cache().SetDir(*cacheDir); err != nil {
			cliutil.Fatalf("liquid-server: %v", err)
		}
		if err := mgr.Cache().Load(*cacheDir); err != nil {
			log.Printf("liquid-server: cache load: %v", err)
		}
	}
	// One liquid system per board, each with its own node IP (10.0.0.2,
	// 10.0.0.3, ...) as the FPX cluster of Fig. 1 would be addressed.
	systems := make([]*core.System, *boards)
	platforms := make([]*fpx.Platform, *boards)
	for i := range systems {
		opts := core.Options{
			Manager: mgr,
			IP:      [4]byte{10, 0, 0, byte(2 + i)},
		}
		if *uart && i == 0 {
			opts.UARTOut = os.Stdout // board 0 only; others would interleave
		}
		sys, err := core.New(cfg, opts)
		if err != nil {
			cliutil.Fatalf("liquid-server: board %d: %v", i, err)
		}
		systems[i] = sys
		platforms[i] = sys.Platform()
		platforms[i].CommandRev = uint8(*maxRev)
	}
	sys := systems[0]

	srv, err := server.NewNode(*listen, platforms...)
	if err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
	if *verbose {
		srv.Log = log.Printf
		srv.Events().Mirror = log.Printf
	} else {
		srv.Events().MinLevel = eventlog.Info
	}
	var col *tracing.Collector
	var fr *tracing.FlightRecorder
	if *trace {
		col = tracing.New("server")
		srv.EnableTracing(col)
		fr = &tracing.FlightRecorder{
			Collectors: []*tracing.Collector{col},
			Events:     srv.Events(),
			Dir:        *flightDir,
		}
		srv.SetFlightRecorder(fr)
		// SIGQUIT dumps the black box (and keeps the default
		// kill-with-stacks behavior out of the way).
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGQUIT)
		go func() {
			for range sigc {
				if path, err := fr.Dump("sigquit"); err != nil {
					log.Printf("liquid-server: flight dump: %v", err)
				} else if path != "" {
					log.Printf("liquid-server: flight dump written to %s", path)
				}
			}
		}()
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			cliutil.Fatalf("liquid-server: metrics listener: %v", err)
		}
		handler := metrics.NewHTTPHandler(sys.Metrics(), sys.Events())
		if col != nil {
			handler = tracing.NewDebugHandler(handler, fr, srv.Events(), col)
		}
		go func() {
			if err := http.Serve(ln, handler); err != nil {
				log.Printf("liquid-server: metrics server: %v", err)
			}
		}()
		fmt.Printf("liquid-server: telemetry on http://%s/metrics (also /statusz, /debug/pprof, /debug/traces)\n", ln.Addr())
	}
	util := sys.ActiveImage().Util
	fmt.Printf("liquid-server: %s on %s (%d board(s))\n", synth.ConfigKey(cfg), srv.Addr(), srv.Boards())
	if *cacheDir != "" {
		cs := mgr.Cache().Stats()
		fmt.Printf("liquid-server: cache store %s (%d image(s) warm-loaded, %d skipped)\n",
			*cacheDir, cs.PersistLoaded, cs.PersistSkipped)
	}
	fmt.Printf("liquid-server: image %d slices, %d BlockRAMs, %.1f MHz\n",
		util.Slices, util.BlockRAMs, util.FMaxMHz)
	if err := srv.Serve(); err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
}
