// liquid-server is the Reconfiguration Server daemon of Fig. 1: it
// instantiates a liquid-architecture FPX node and serves the §2.6
// control protocol (status / load / start / read memory, plus the
// liquid reconfigure/get-config extensions) over UDP.
//
// Usage:
//
//	liquid-server -listen 127.0.0.1:5001 [-metrics-addr 127.0.0.1:9090] [-dcache 4096 ...] [-v]
//
// With -metrics-addr set, an HTTP listener additionally serves
// /metrics (Prometheus text), /statusz (JSON snapshot + recent events)
// and /debug/pprof. The same snapshot is available in-band over UDP
// via `liquidctl stats`.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"liquidarch/internal/cliutil"
	"liquidarch/internal/core"
	"liquidarch/internal/metrics"
	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/server"
	"liquidarch/internal/synth"
)

func main() {
	fs := flag.NewFlagSet("liquid-server", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:5001", "UDP address to serve")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics, /statusz and pprof (empty = disabled)")
	verbose := fs.Bool("v", false, "log each handled request")
	uart := fs.Bool("uart", true, "print the processor's UART output to stdout")
	cacheDir := fs.String("cachedir", "", "persist the reconfiguration cache here")
	buildCfg := cliutil.ConfigFlags(fs)
	fs.Parse(os.Args[1:])

	cfg, err := buildCfg()
	if err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
	opts := core.Options{Synth: synth.Options{BitstreamBytes: 65536}}
	if *uart {
		opts.UARTOut = os.Stdout
	}
	sys, err := core.New(cfg, opts)
	if err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
	if *cacheDir != "" {
		if err := sys.Manager().Cache().Load(*cacheDir); err != nil {
			log.Printf("liquid-server: cache load: %v", err)
		}
		defer func() {
			if err := sys.Manager().Cache().Save(*cacheDir); err != nil {
				log.Printf("liquid-server: cache save: %v", err)
			}
		}()
	}

	srv, err := server.New(sys.Platform(), *listen)
	if err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
	if *verbose {
		srv.Log = log.Printf
		srv.Events().Mirror = log.Printf
	} else {
		srv.Events().MinLevel = eventlog.Info
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			cliutil.Fatalf("liquid-server: metrics listener: %v", err)
		}
		handler := metrics.NewHTTPHandler(sys.Metrics(), sys.Events())
		go func() {
			if err := http.Serve(ln, handler); err != nil {
				log.Printf("liquid-server: metrics server: %v", err)
			}
		}()
		fmt.Printf("liquid-server: telemetry on http://%s/metrics (also /statusz, /debug/pprof)\n", ln.Addr())
	}
	util := sys.ActiveImage().Util
	fmt.Printf("liquid-server: %s on %s\n", synth.ConfigKey(cfg), srv.Addr())
	fmt.Printf("liquid-server: image %d slices, %d BlockRAMs, %.1f MHz\n",
		util.Slices, util.BlockRAMs, util.FMaxMHz)
	if err := srv.Serve(); err != nil {
		cliutil.Fatalf("liquid-server: %v", err)
	}
}
