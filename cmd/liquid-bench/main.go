// liquid-bench regenerates every table and figure of the paper's
// evaluation (§4) plus the DESIGN.md ablations, printing the same rows
// the paper reports.
//
// Usage:
//
//	liquid-bench -fig 8        # Fig. 8 table (cycles vs D$ size)
//	liquid-bench -fig 9        # Fig. 9 series as CSV for plotting
//	liquid-bench -fig 10       # Fig. 10 device utilization
//	liquid-bench -exp adapter  # §3.2 adapter behaviour (E5)
//	liquid-bench -exp reconfig # reconfiguration cache economics (E6)
//	liquid-bench -exp mac      # liquid ISA extension ablation
//	liquid-bench -exp burst    # adapter burst-length ablation
//	liquid-bench -exp writepolicy | -exp assoc
//	liquid-bench -exp throughput  # simulator stepping speed (sim-MIPS)
//	liquid-bench -all
//	liquid-bench -all -workers 8   # run sweep points on 8 workers
//	liquid-bench -all -json out/   # also write machine-readable BENCH_<name>.json
//	liquid-bench -exp throughput -quantum 256  # cap the event horizon
//
// -workers bounds the worker pool every sweep experiment runs its
// configuration points on (0, the default, means one worker per
// logical CPU; 1 restores the fully serial order). The result tables
// are identical for every worker count — only the wall-clock changes.
//
// -quantum caps the event-horizon batch of the throughput experiment
// at N simulated cycles (0, the default, lets the peripheral deadline
// alone bound each batch). Results are bit-identical for every
// quantum — only stepping speed changes — so the flag exists to
// measure how much of the superblock win survives short horizons.
//
// With -json DIR, every experiment additionally writes
// DIR/BENCH_<name>.json containing {"figure": ..., "data": rows}, so
// the perf trajectory tracked in this repository's BENCH files is
// produced by the tool itself instead of being transcribed by hand.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"liquidarch/internal/bench"
	"liquidarch/internal/cliutil"
)

// workers bounds the sweep worker pool; see the -workers flag.
var workers int

// quantum caps the throughput experiment's event-horizon batch in
// simulated cycles; see the -quantum flag.
var quantum uint64

func main() {
	fig := flag.Int("fig", 0, "regenerate figure 8, 9 or 10")
	exp := flag.String("exp", "", "experiment: adapter, reconfig, mac, burst, writepolicy, assoc, icache, placement, pipeline, throughput")
	all := flag.Bool("all", false, "run everything")
	jsonDir := flag.String("json", "", "also write BENCH_<name>.json files to this directory")
	flag.IntVar(&workers, "workers", 0, "sweep worker pool size (0: one per logical CPU, 1: serial)")
	flag.Uint64Var(&quantum, "quantum", 0, "cap event-horizon batches at N simulated cycles (0: uncapped)")
	flag.Parse()

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			cliutil.Fatalf("liquid-bench: %v", err)
		}
	}

	ran := false
	run := func(name, file string, f func() (any, error)) {
		ran = true
		fmt.Printf("== %s ==\n", name)
		data, err := f()
		if err != nil {
			cliutil.Fatalf("liquid-bench: %s: %v", name, err)
		}
		if *jsonDir != "" && data != nil {
			doc := struct {
				Figure string `json:"figure"`
				Data   any    `json:"data"`
			}{Figure: name, Data: data}
			blob, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				cliutil.Fatalf("liquid-bench: %s: %v", name, err)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+file+".json")
			if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
				cliutil.Fatalf("liquid-bench: %s: %v", name, err)
			}
			fmt.Printf("(wrote %s)\n", path)
		}
		fmt.Println()
	}

	if *fig == 8 || *all {
		run("Figure 8: array-access running time vs data cache size", "fig8", fig8)
	}
	if *fig == 9 || *all {
		run("Figure 9: same series as CSV (cycles vs cache size)", "fig9", fig9)
	}
	if *fig == 10 || *all {
		run("Figure 10: Liquid Processor System device utilization", "fig10", fig10)
	}
	if *exp == "adapter" || *all {
		run("E5: AHB↔SDRAM adapter behaviour (§3.2)", "adapter", adapter)
	}
	if *exp == "reconfig" || *all {
		run("E6: reconfiguration cache economics", "reconfig", reconfigExp)
	}
	if *exp == "mac" || *all {
		run("Ablation: liquid MAC instruction", "mac", macExp)
	}
	if *exp == "burst" || *all {
		run("Ablation: adapter read-burst length", "burst", burst)
	}
	if *exp == "writepolicy" || *all {
		run("Ablation: data-cache write policy", "writepolicy", writePolicy)
	}
	if *exp == "assoc" || *all {
		run("Ablation: data-cache associativity at 2 KB", "assoc", assoc)
	}
	if *exp == "icache" || *all {
		run("Ablation: instruction-cache size (code-footprint kernel)", "icache", icacheExp)
	}
	if *exp == "placement" || *all {
		run("Ablation: data placement, SRAM vs SDRAM via the §3.2 adapter", "placement", placement)
	}
	if *exp == "pipeline" || *all {
		run("Ablation: pipeline depth (cycles vs synthesized clock)", "pipeline", pipeline)
	}
	if *exp == "throughput" || *all {
		run("Simulator throughput: steady-state stepping speed", "throughput", throughput)
	}
	if !ran {
		cliutil.Fatalf("liquid-bench: nothing selected; use -fig, -exp or -all")
	}
}

func fig8() (any, error) {
	rows, err := bench.Fig8Sweep(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"Data Cache Size", "Number of clock cycles", "D$ misses", "miss ratio", "ms @ fMax"}}
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%dKB", r.DCacheBytes>>10),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%.4f", r.MissRatio),
			fmt.Sprintf("%.3f", r.Millis),
		})
	}
	cliutil.Table(os.Stdout, table)
	fmt.Println("\nshape check: no cache misses (beyond the cold fill) once the cache reaches 4KB —")
	fmt.Printf("miss counts: 1KB=%d 2KB=%d 4KB=%d 8KB=%d 16KB=%d\n",
		rows[0].Misses, rows[1].Misses, rows[2].Misses, rows[3].Misses, rows[4].Misses)
	return rows, nil
}

func fig9() (any, error) {
	rows, err := bench.Fig8Sweep(workers)
	if err != nil {
		return nil, err
	}
	fmt.Println("dcache_bytes,cycles,misses")
	for _, r := range rows {
		fmt.Printf("%d,%d,%d\n", r.DCacheBytes, r.Cycles, r.Misses)
	}
	return rows, nil
}

func fig10() (any, error) {
	u, dev := bench.Fig10Report()
	sp, bp, ip := u.Percent(dev)
	cliutil.Table(os.Stdout, [][]string{
		{"Resources", "Device Utilization", "Utilization %"},
		{"Logic Slices", fmt.Sprintf("%d of %d", u.Slices, dev.Slices), fmt.Sprintf("%.0f%%", sp)},
		{"BlockRAMs", fmt.Sprintf("%d of %d", u.BlockRAMs, dev.BlockRAMs), fmt.Sprintf("%.0f%%", bp)},
		{"External IOBs", fmt.Sprintf("%d of %d", u.IOBs, dev.IOBs), fmt.Sprintf("%.0f%%", ip)},
		{"Frequency", fmt.Sprintf("%.0f MHz", u.FMaxMHz), "NA"},
	})
	return struct {
		Utilization any    `json:"utilization"`
		Device      string `json:"device"`
	}{u, dev.Name}, nil
}

func adapter() (any, error) {
	rows, err := bench.AdapterExperiment()
	if err != nil {
		return nil, err
	}
	table := [][]string{{"access pattern", "words", "cycles", "handshakes"}}
	for _, r := range rows {
		table = append(table, []string{r.Pattern, fmt.Sprintf("%d", r.Words),
			fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Handshakes)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}

func reconfigExp() (any, error) {
	rows, stats, err := bench.ReconfigExperiment()
	if err != nil {
		return nil, err
	}
	table := [][]string{{"step", "cache hit", "cost"}}
	for _, r := range rows {
		table = append(table, []string{r.Step, fmt.Sprintf("%v", r.CacheHit), r.SynthTime})
	}
	cliutil.Table(os.Stdout, table)
	fmt.Printf("\ncache: %d hits, %d misses; tool time spent %v, avoided %v\n",
		stats.Hits, stats.Misses, stats.SynthTime, stats.SavedTime)
	return struct {
		Steps any `json:"steps"`
		Cache any `json:"cache"`
	}{rows, stats}, nil
}

func macExp() (any, error) {
	plain, mac, err := bench.MACExperiment()
	if err != nil {
		return nil, err
	}
	cliutil.Table(os.Stdout, [][]string{
		{"configuration", "cycles", "instructions"},
		{"base ISA (mul+add)", fmt.Sprintf("%d", plain.Cycles), fmt.Sprintf("%d", plain.Instructions)},
		{"MAC unit (lqmac)", fmt.Sprintf("%d", mac.Cycles), fmt.Sprintf("%d", mac.Instructions)},
	})
	fmt.Printf("\nspeedup from the liquid ISA extension: %.2fx\n",
		float64(plain.Cycles)/float64(mac.Cycles))
	return struct {
		Plain any `json:"base_isa"`
		MAC   any `json:"mac_unit"`
	}{plain, mac}, nil
}

func burst() (any, error) {
	rows, err := bench.BurstAblation(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"burst words", "fill cycles", "handshakes"}}
	for _, r := range rows {
		table = append(table, []string{fmt.Sprintf("%d", r.BurstWords),
			fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Handshakes)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}

func writePolicy() (any, error) {
	rows, err := bench.WritePolicyExperiment(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"policy", "cycles"}}
	for _, r := range rows {
		table = append(table, []string{r.Policy, fmt.Sprintf("%d", r.Cycles)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}

func icacheExp() (any, error) {
	rows, err := bench.ICacheSweep(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"I$ size", "cycles", "I$ misses"}}
	for _, r := range rows {
		table = append(table, []string{fmt.Sprintf("%dB", r.ICacheBytes),
			fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Misses)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}

func placement() (any, error) {
	rows, err := bench.PlacementExperiment(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"data memory", "cycles"}}
	for _, r := range rows {
		table = append(table, []string{r.Memory, fmt.Sprintf("%d", r.Cycles)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}

func pipeline() (any, error) {
	rows, err := bench.PipelineExperiment(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"depth", "cycles", "fMax", "ms"}}
	for _, r := range rows {
		table = append(table, []string{fmt.Sprintf("%d", r.Depth),
			fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%.1f MHz", r.FMaxMHz),
			fmt.Sprintf("%.3f", r.Millis)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}

func throughput() (any, error) {
	row, err := bench.ThroughputExperimentQuantum(0, quantum)
	if err != nil {
		return nil, err
	}
	cliutil.Table(os.Stdout, [][]string{
		{"steps", "sim cycles", "wall secs", "ns/step", "sim-MIPS"},
		{fmt.Sprintf("%d", row.Steps), fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%.3f", row.WallSecs), fmt.Sprintf("%.2f", row.NsPerStep),
			fmt.Sprintf("%.2f", row.SimMIPS)},
	})
	return row, nil
}

func assoc() (any, error) {
	rows, err := bench.AssocExperiment(workers)
	if err != nil {
		return nil, err
	}
	table := [][]string{{"ways @ 2KB", "cycles", "D$ misses"}}
	for _, r := range rows {
		table = append(table, []string{fmt.Sprintf("%d", r.Assoc),
			fmt.Sprintf("%d", r.Cycles), fmt.Sprintf("%d", r.Misses)})
	}
	cliutil.Table(os.Stdout, table)
	return rows, nil
}
