// liquid-dis disassembles a flat binary image back to SPARC V8
// assembly — the inspection counterpart of liquid-asm, useful for
// checking what was loaded into the FPX over the network
// ("liquidctl readmem ... -out dump.bin && liquid-dis dump.bin").
//
// Usage:
//
//	liquid-dis [-origin 0x40001000] [-n COUNT] prog.bin
package main

import (
	"encoding/binary"
	"flag"
	"fmt"

	"liquidarch/internal/cliutil"
	"liquidarch/internal/isa"
	"liquidarch/internal/leon"
)

func main() {
	origin := flag.Uint("origin", leon.DefaultLoadAddr, "address of the first word")
	count := flag.Int("n", 0, "stop after N instructions (0 = whole input)")
	flag.Parse()
	if flag.NArg() > 1 {
		cliutil.Fatalf("liquid-dis: one input file at most")
	}
	data, err := cliutil.ReadInput(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("liquid-dis: %v", err)
	}
	n := len(data) / 4
	if *count > 0 && *count < n {
		n = *count
	}
	for i := 0; i < n; i++ {
		pc := uint32(*origin) + uint32(i)*4
		w := binary.BigEndian.Uint32(data[i*4:])
		fmt.Printf("%08x:  %08x  %s\n", pc, w, isa.Disassemble(w, pc))
	}
}
