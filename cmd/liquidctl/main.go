// liquidctl is the control client of Fig. 4: it talks the §2.6 UDP
// protocol to a liquid-server (or directly to an FPX node).
//
// Usage:
//
//	liquidctl -server HOST:PORT status
//	liquidctl -server HOST:PORT load   -file prog.bin [-addr 0x40001000]
//	liquidctl -server HOST:PORT start  [-entry 0x40001000] [-budget N] [-wait=false]
//	liquidctl -server HOST:PORT result     # collect a started run's report
//	liquidctl -server HOST:PORT readmem -addr 0x40001000 -len 64 [-out f]
//	liquidctl -server HOST:PORT writemem -addr 0x40002000 -file data.bin
//	liquidctl -server HOST:PORT run    -c prog.c | -s prog.s  [-mac]
//	liquidctl -server HOST:PORT reconfig -spec '{"dcache_bytes":8192}' [-wait=false]
//	liquidctl -server HOST:PORT reconfig               # poll reconfiguration status
//	liquidctl -server HOST:PORT prewarm -spec '[{"dcache_bytes":2048},{"dcache_bytes":8192}]'
//	liquidctl -server HOST:PORT getconfig
//	liquidctl -server HOST:PORT stats      # telemetry snapshot (JSON)
//	liquidctl -server HOST:PORT traces     # recent exchange traces (Chrome JSON)
//
// Every verb accepts -board N to address a board other than 0 on a
// multi-board node (liquid-server -boards), plus retry knobs for lossy
// networks: -timeout, -max-timeout, -retries, -backoff, -jitter and
// -wait-timeout (zero values keep the client defaults). Loads keep a
// sliding window of chunks in flight (-window, default 16; 1 restores
// stop-and-wait), and result waits are parked on the server for
// -wait-hold (default 500ms) so completion is reported at network
// latency; negative -wait-hold falls back to pure polling.
//
// Every verb also accepts -trace: the invocation mints one 64-bit
// trace id, stamps it on every datagram (v4 header), records the
// client's own spans (each exchange, attempt, retry and backoff), then
// pulls the server's spans for the same id over CmdTraces and writes
// the merged timeline as Chrome trace-event JSON to -trace-out
// (default liquidctl-trace.json; load it in chrome://tracing or
// Perfetto).
// start is asynchronous on
// the wire: it acks as soon as the board begins executing, then (with
// -wait, the default) polls until completion and prints the report;
// with -wait=false it returns immediately and `liquidctl result`
// collects the report later (status shows the live cycle counter in
// the meantime).
//
// reconfig is asynchronous the same way: the server acks with the
// ticket state the instant the request is registered (a cache hit
// applies inside the ack), then (with -wait, the default) the client
// waits — held on the server where supported — and prints the final
// state; with -wait=false it returns after the ack and a later bare
// `liquidctl reconfig` (no -spec) polls the state. reconfigure is the
// legacy blocking spelling of `reconfig -wait`. prewarm queues a list
// of configurations on the server's synthesis pool without swapping
// any of them, populating the bitfile cache ahead of use.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"liquidarch/internal/client"
	"liquidarch/internal/cliutil"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/netproto"
	"liquidarch/internal/tracing"
)

func main() {
	fs := flag.NewFlagSet("liquidctl", flag.ExitOnError)
	serverAddr := fs.String("server", "127.0.0.1:5001", "liquid-server address")
	addr := fs.String("addr", "", "memory address (hex or decimal)")
	length := fs.Int("len", 4, "byte count for readmem")
	file := fs.String("file", "", "input file")
	out := fs.String("out", "", "output file (default stdout)")
	entry := fs.String("entry", "0", "entry address (0 = last load)")
	budget := fs.Uint64("budget", 0, "cycle budget (0 = default)")
	board := fs.Uint("board", 0, "board number on a multi-board node")
	wait := fs.Bool("wait", true, "start: poll until the run completes (false = return after the ack)")
	cSrc := fs.String("c", "", "C source to compile and run")
	sSrc := fs.String("s", "", "assembly source to build and run")
	mac := fs.Bool("mac", false, "allow the __mac builtin when compiling")
	spec := fs.String("spec", "", "JSON configuration spec for reconfigure")
	timeout := fs.Duration("timeout", 0, "per-attempt response timeout (0 = client default)")
	maxTimeout := fs.Duration("max-timeout", 0, "backoff cap on the per-attempt timeout (0 = client default)")
	retries := fs.Int("retries", -1, "retransmissions per exchange after the first attempt (-1 = client default)")
	backoff := fs.Float64("backoff", 0, "timeout growth factor between attempts (0 = client default)")
	jitter := fs.Float64("jitter", 0, "± randomisation applied to each backoff wait (0 = client default, negative = none)")
	waitTimeout := fs.Duration("wait-timeout", 0, "overall budget for waiting on a run result (0 = client default)")
	window := fs.Int("window", 0, "load chunks kept in flight (0 = client default, 1 = stop-and-wait)")
	waitHold := fs.Duration("wait-hold", 0, "server-side hold per result wait (0 = client default, negative = poll only)")
	traceOn := fs.Bool("trace", false, "trace this invocation end-to-end and write a Chrome trace-event timeline")
	traceOut := fs.String("trace-out", "liquidctl-trace.json", "output file for the -trace timeline")

	if len(os.Args) < 2 {
		cliutil.Fatalf("liquidctl: no command; see source header for usage")
	}
	// Accept flags before or after the verb. Only known command words
	// are taken as the verb, so flag values are never mistaken for it.
	verbs := map[string]bool{
		"status": true, "load": true, "start": true, "result": true,
		"readmem": true, "writemem": true, "run": true,
		"reconfigure": true, "reconfig": true, "prewarm": true,
		"getconfig": true, "trace": true,
		"stats": true, "traces": true,
	}
	args := os.Args[1:]
	verb := ""
	var rest []string
	for _, a := range args {
		if verb == "" && verbs[a] {
			verb = a
			continue
		}
		rest = append(rest, a)
	}
	fs.Parse(rest)
	if verb == "" {
		cliutil.Fatalf("liquidctl: no command given")
	}

	c, err := client.Dial(*serverAddr)
	if err != nil {
		cliutil.Fatalf("liquidctl: %v", err)
	}
	defer c.Close()
	if *board > 255 {
		cliutil.Fatalf("liquidctl: board %d out of range (0..255)", *board)
	}
	c.Board = uint8(*board)
	if *timeout > 0 {
		c.Timeout = *timeout
	}
	if *maxTimeout > 0 {
		c.MaxTimeout = *maxTimeout
	}
	if *retries >= 0 {
		c.Retries = *retries
	}
	if *backoff > 0 {
		c.BackoffFactor = *backoff
	}
	if *jitter != 0 {
		c.Jitter = *jitter
	}
	if *waitTimeout > 0 {
		c.WaitTimeout = *waitTimeout
	}
	if *window > 0 {
		c.Window = *window
	}
	if *waitHold != 0 {
		c.WaitHold = *waitHold
	}
	if *traceOn {
		col := tracing.New("client")
		c.Tracer = col
		c.TraceID = col.NewTraceID()
		// The deferred write runs after the verb completes (it is
		// skipped when a verb exits through Fatalf).
		defer writeTraceTimeline(c, col, *traceOut)
	}

	switch verb {
	case "status":
		st, err := c.Status()
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Printf("state: %v\n", leon.State(st.State))
		fmt.Printf("boot ok: %v\n", st.BootOK)
		if leon.State(st.State) == leon.StateRunning {
			fmt.Printf("run in flight: %d cycles so far\n", st.CurCycles)
		}
		if st.LoadedAddr != 0 {
			fmt.Printf("loaded at: %#x\n", st.LoadedAddr)
		}
		if st.Last.Cycles > 0 || st.Last.Status != netproto.StatusOK {
			fmt.Print("last ")
			printReport(st.Last)
		}

	case "load":
		data, err := cliutil.ReadInput(*file)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		a := parseAddrOr(*addr, leon.DefaultLoadAddr)
		if err := c.LoadProgram(a, data); err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Printf("loaded %d bytes at %#x\n", len(data), a)

	case "start":
		e := parseAddrOr(*entry, 0)
		if !*wait {
			if err := c.StartAsync(e, *budget); err != nil {
				cliutil.Fatalf("liquidctl: %v", err)
			}
			fmt.Println("started (poll with `liquidctl status`, collect with `liquidctl result`)")
			return
		}
		rep, err := c.Start(e, *budget)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		printReport(rep)

	case "result":
		rep, err := c.WaitResult()
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		printReport(rep)

	case "readmem":
		a := parseAddrOr(*addr, 0)
		data, err := c.ReadMemory(a, *length)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		if *out != "" {
			if err := cliutil.WriteOutput(*out, data); err != nil {
				cliutil.Fatalf("liquidctl: %v", err)
			}
			return
		}
		for i := 0; i < len(data); i += 16 {
			j := i + 16
			if j > len(data) {
				j = len(data)
			}
			fmt.Printf("%08x  % x\n", a+uint32(i), data[i:j])
		}

	case "writemem":
		data, err := cliutil.ReadInput(*file)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		a := parseAddrOr(*addr, 0)
		if err := c.WriteMemory(a, data); err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Printf("wrote %d bytes at %#x\n", len(data), a)

	case "run":
		img := buildImage(*cSrc, *sSrc, *mac)
		rep, data, err := c.RunProgram(img.Origin, img.Code, img.Entry, img.ExitValueAddr(), 4)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		printReport(rep)
		if len(data) == 4 {
			v := uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3])
			fmt.Printf("exit value: %d (%#x)\n", v, v)
		}

	case "reconfigure":
		if *spec == "" {
			cliutil.Fatalf("liquidctl: reconfigure needs -spec")
		}
		if err := c.Reconfigure([]byte(*spec)); err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Println("reconfigured")

	case "reconfig":
		if *spec == "" {
			// No spec: poll the state of the reconfiguration in flight
			// (or the last one's outcome).
			st, err := c.ReconfigStatus()
			if err != nil {
				cliutil.Fatalf("liquidctl: %v", err)
			}
			printReconfigStatus(st)
			return
		}
		st, err := c.ReconfigureAsync([]byte(*spec))
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		printReconfigStatus(st)
		if st.Terminal() || !*wait {
			if !st.Terminal() {
				fmt.Println("(poll with `liquidctl reconfig`, or wait with `liquidctl reconfig -spec ... -wait`)")
			}
			return
		}
		final, err := c.WaitReconfigure(context.Background())
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		printReconfigStatus(final)
		if final.State != netproto.ReconfigApplied {
			os.Exit(1)
		}

	case "prewarm":
		if *spec == "" {
			cliutil.Fatalf("liquidctl: prewarm needs -spec with a JSON array of configuration specs")
		}
		var specs []json.RawMessage
		if err := json.Unmarshal([]byte(*spec), &specs); err != nil {
			// A single bare spec object is accepted too.
			var one json.RawMessage
			if err2 := json.Unmarshal([]byte(*spec), &one); err2 != nil {
				cliutil.Fatalf("liquidctl: prewarm spec: %v", err)
			}
			specs = []json.RawMessage{one}
		}
		queued, err := c.Prewarm(specs)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Printf("prewarm: %d configuration(s) queued on the synthesis pool\n", queued)

	case "getconfig":
		blob, err := c.GetConfig()
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Println(string(blob))

	case "trace":
		blob, err := c.TraceReport()
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		fmt.Println(string(blob))

	case "traces":
		tds, err := c.Traces(0)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		data, err := tracing.ChromeJSON(tds)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		if *out != "" {
			if err := cliutil.WriteOutput(*out, data); err != nil {
				cliutil.Fatalf("liquidctl: %v", err)
			}
			return
		}
		fmt.Println(string(data))

	case "stats":
		blob, err := c.Stats()
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, blob, "", "  "); err != nil {
			fmt.Println(string(blob)) // not JSON? print raw
			return
		}
		fmt.Println(pretty.String())

	default:
		cliutil.Fatalf("liquidctl: unknown command %q", verb)
	}
}

// writeTraceTimeline pulls the server's spans for this invocation's
// trace id, merges them with the client's own, and writes the Chrome
// trace-event timeline.
func writeTraceTimeline(c *client.Client, col *tracing.Collector, out string) {
	serverSpans, err := c.Traces(c.TraceID)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: server trace fetch: %v (writing client spans only)\n", err)
	}
	clientSpans := col.TakeTrace(c.TraceID)
	data, err := tracing.ChromeJSON(clientSpans, serverSpans)
	if err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: trace export: %v\n", err)
		return
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "liquidctl: trace write: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "liquidctl: trace %016x written to %s (open in chrome://tracing)\n", c.TraceID, out)
}

func buildImage(cSrc, sSrc string, mac bool) *link.Image {
	var asmText string
	switch {
	case cSrc != "":
		src, err := cliutil.ReadInput(cSrc)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		asmText, err = lcc.Compile(string(src), lcc.Options{MAC: mac})
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
	case sSrc != "":
		src, err := cliutil.ReadInput(sSrc)
		if err != nil {
			cliutil.Fatalf("liquidctl: %v", err)
		}
		asmText = string(src)
	default:
		cliutil.Fatalf("liquidctl: run needs -c or -s")
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		cliutil.Fatalf("liquidctl: %v", err)
	}
	return img
}

// printReconfigStatus renders one rev-6 reconfiguration status line.
func printReconfigStatus(st netproto.ReconfigStatusResp) {
	switch {
	case st.State == netproto.ReconfigNone:
		fmt.Println("reconfig: none in flight")
	case st.State == netproto.ReconfigFailed:
		fmt.Printf("reconfig: FAILED: %s\n", st.Msg)
	case st.State == netproto.ReconfigApplied:
		how := "synthesized"
		if st.CacheHit {
			how = "cache hit"
		}
		if st.Partial {
			how += ", partial swap"
		}
		fmt.Printf("reconfig: applied (%s)\n", how)
	default:
		fmt.Printf("reconfig: %s\n", netproto.ReconfigStateName(st.State))
	}
}

func printReport(rep netproto.RunReport) {
	switch rep.Status {
	case netproto.StatusOK:
		fmt.Printf("run: ok, %d cycles, %d instructions\n", rep.Cycles, rep.Instructions)
	case netproto.StatusFault:
		fmt.Printf("run: FAULT tt=%#02x at pc=%#08x after %d cycles\n", rep.TT, rep.FaultPC, rep.Cycles)
	default:
		fmt.Printf("run: status %d\n", rep.Status)
	}
}

func parseAddrOr(s string, def uint32) uint32 {
	if s == "" || s == "0" {
		return def
	}
	v, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		cliutil.Fatalf("liquidctl: bad address %q: %v", s, err)
	}
	return uint32(v)
}
