// liquid-chaos is a deterministic UDP fault-injection proxy for the
// §2.6 control plane: put it between liquidctl (or any client) and a
// liquid-server, and it drops, duplicates, reorders, delays and
// truncates control packets at seeded rates — the Internet, bottled.
// With a pinned -seed the injected fault sequence is reproducible, so
// a soak failure can be replayed exactly.
//
// Usage:
//
//	liquid-chaos -listen 127.0.0.1:5002 -target 127.0.0.1:5001 \
//	    [-seed 1] [-drop 0.2] [-dup 0.05] [-reorder 0.1] \
//	    [-truncate 0.01] [-delay 0.05 -delay-min 1ms -delay-max 20ms] \
//	    [-script 'up:load@3=drop,down:start=dup'] \
//	    [-metrics-addr 127.0.0.1:9091]
//
// The random rates apply symmetrically to both directions unless
// overridden per direction (-up-drop, -down-drop, and so on for every
// fault). -script adds surgical rules on top (see internal/chaos
// ParseScript for the grammar). With -metrics-addr the proxy exposes
// its injection counters at /metrics and /statusz, plus /debug/traces:
// when a packet carrying a v4 trace id is hit by a fault, the proxy
// annotates the fault into that trace (source "chaos"), so a merged
// timeline shows exactly which datagram the network ate (-trace=false
// disables the annotations).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"liquidarch/internal/chaos"
	"liquidarch/internal/cliutil"
	"liquidarch/internal/metrics"
	"liquidarch/internal/tracing"
)

func main() {
	fs := flag.NewFlagSet("liquid-chaos", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:5002", "UDP address clients connect to")
	target := fs.String("target", "127.0.0.1:5001", "liquid-server address to relay to")
	seed := fs.Int64("seed", 1, "fault-sequence seed (pin it to replay a soak)")
	script := fs.String("script", "", "surgical rules, e.g. 'up:load@3=drop,down:start=dup'")
	metricsAddr := fs.String("metrics-addr", "", "HTTP address for /metrics and /statusz (empty = disabled)")
	trace := fs.Bool("trace", true, "annotate injected faults into the traces of v4 packets they hit")

	both := symmetricFaults(fs, "", "both directions")
	up := symmetricFaults(fs, "up-", "client→server only (overrides the symmetric rate)")
	down := symmetricFaults(fs, "down-", "server→client only (overrides the symmetric rate)")
	fs.Parse(os.Args[1:])

	rules, err := chaos.ParseScript(*script)
	if err != nil {
		cliutil.Fatalf("liquid-chaos: %v", err)
	}
	reg := metrics.NewRegistry()
	var col *tracing.Collector
	if *trace {
		col = tracing.New("chaos")
	}
	cfg := chaos.Config{
		Seed:     *seed,
		Up:       overlay(both.value(), up),
		Down:     overlay(both.value(), down),
		Script:   rules,
		Registry: reg,
		Tracer:   col,
	}
	proxy, err := chaos.NewProxy(*listen, *target, cfg)
	if err != nil {
		cliutil.Fatalf("liquid-chaos: %v", err)
	}
	if *metricsAddr != "" {
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			cliutil.Fatalf("liquid-chaos: metrics listener: %v", err)
		}
		handler := metrics.NewHTTPHandler(reg, nil)
		if col != nil {
			handler = tracing.NewDebugHandler(handler, nil, nil, col)
		}
		go func() {
			if err := http.Serve(ln, handler); err != nil {
				log.Printf("liquid-chaos: metrics server: %v", err)
			}
		}()
		fmt.Printf("liquid-chaos: telemetry on http://%s/metrics\n", ln.Addr())
	}
	fmt.Printf("liquid-chaos: %s → %s  seed=%d  up=%+v  down=%+v  rules=%d\n",
		proxy.Addr(), *target, *seed, cfg.Up, cfg.Down, len(rules))
	if err := proxy.Serve(); err != nil {
		cliutil.Fatalf("liquid-chaos: %v", err)
	}
}

// faultFlags holds one direction's flag set; nil-valued flags fall
// back to the symmetric rate.
type faultFlags struct {
	drop, dup, reorder, truncate, delay *float64
	dmin, dmax                          *string
	set                                 map[string]bool
	fs                                  *flag.FlagSet
	prefix                              string
}

// symmetricFaults registers one direction's fault-rate flags.
func symmetricFaults(fs *flag.FlagSet, prefix, scope string) *faultFlags {
	f := &faultFlags{fs: fs, prefix: prefix}
	f.drop = fs.Float64(prefix+"drop", 0, "drop probability, "+scope)
	f.dup = fs.Float64(prefix+"dup", 0, "duplicate probability, "+scope)
	f.reorder = fs.Float64(prefix+"reorder", 0, "reorder probability, "+scope)
	f.truncate = fs.Float64(prefix+"truncate", 0, "truncate probability, "+scope)
	f.delay = fs.Float64(prefix+"delay", 0, "delay probability, "+scope)
	f.dmin = fs.String(prefix+"delay-min", "1ms", "minimum injected delay, "+scope)
	f.dmax = fs.String(prefix+"delay-max", "20ms", "maximum injected delay, "+scope)
	return f
}

// value materializes the direction's Faults.
func (f *faultFlags) value() chaos.Faults {
	out := chaos.Faults{
		Drop:     *f.drop,
		Dup:      *f.dup,
		Reorder:  *f.reorder,
		Truncate: *f.truncate,
		Delay:    *f.delay,
	}
	out.DelayMin = cliutil.MustDuration(*f.dmin)
	out.DelayMax = cliutil.MustDuration(*f.dmax)
	return out
}

// visited reports whether any flag with this prefix+name was set
// explicitly on the command line.
func (f *faultFlags) visited(name string) bool {
	if f.set == nil {
		f.set = make(map[string]bool)
		f.fs.Visit(func(fl *flag.Flag) { f.set[fl.Name] = true })
	}
	return f.set[f.prefix+name]
}

// overlay starts from the symmetric rates and applies any per-direction
// overrides that were set explicitly.
func overlay(base chaos.Faults, dir *faultFlags) chaos.Faults {
	out := base
	if dir.visited("drop") {
		out.Drop = *dir.drop
	}
	if dir.visited("dup") {
		out.Dup = *dir.dup
	}
	if dir.visited("reorder") {
		out.Reorder = *dir.reorder
	}
	if dir.visited("truncate") {
		out.Truncate = *dir.truncate
	}
	if dir.visited("delay") {
		out.Delay = *dir.delay
	}
	if dir.visited("delay-min") {
		out.DelayMin = cliutil.MustDuration(*dir.dmin)
	}
	if dir.visited("delay-max") {
		out.DelayMax = cliutil.MustDuration(*dir.dmax)
	}
	return out
}
