// liquid-run executes a program on a locally instantiated Liquid
// processor system — the standalone counterpart to the networked flow,
// with the processor configuration on the command line.
//
// Usage:
//
//	liquid-run -c prog.c  [-dcache 4096 -icache 1024 ...] [-stats] [-hot 5]
//	liquid-run -s prog.s  ...
package main

import (
	"flag"
	"fmt"
	"os"

	"liquidarch/internal/cliutil"
	"liquidarch/internal/core"
	"liquidarch/internal/lcc"
	"liquidarch/internal/link"
	"liquidarch/internal/synth"
)

func main() {
	fs := flag.NewFlagSet("liquid-run", flag.ExitOnError)
	cSrc := fs.String("c", "", "C source file")
	sSrc := fs.String("s", "", "assembly source file")
	mac := fs.Bool("allowmac", false, "allow the __mac builtin when compiling")
	budget := fs.Uint64("budget", 0, "cycle budget (0 = default)")
	stats := fs.Bool("stats", false, "print cache and CPU statistics")
	hot := fs.Int("hot", 0, "print the N hottest program counters")
	vhdl := fs.Bool("vhdl", false, "print the configuration's VHDL-like description and exit")
	buildCfg := cliutil.ConfigFlags(fs)
	fs.Parse(os.Args[1:])

	cfg, err := buildCfg()
	if err != nil {
		cliutil.Fatalf("liquid-run: %v", err)
	}
	if *vhdl {
		fmt.Print(synth.VHDL(cfg))
		return
	}
	sys, err := core.New(cfg, core.Options{
		UARTOut: os.Stdout,
		Synth:   synth.Options{BitstreamBytes: 4096},
	})
	if err != nil {
		cliutil.Fatalf("liquid-run: %v", err)
	}

	var img *link.Image
	switch {
	case *cSrc != "":
		src, err := cliutil.ReadInput(*cSrc)
		if err != nil {
			cliutil.Fatalf("liquid-run: %v", err)
		}
		img, err = sys.CompileC(string(src), lcc.Options{MAC: *mac})
		if err != nil {
			cliutil.Fatalf("liquid-run: %v", err)
		}
	case *sSrc != "":
		src, err := cliutil.ReadInput(*sSrc)
		if err != nil {
			cliutil.Fatalf("liquid-run: %v", err)
		}
		img, err = sys.BuildASM(string(src))
		if err != nil {
			cliutil.Fatalf("liquid-run: %v", err)
		}
	default:
		cliutil.Fatalf("liquid-run: need -c or -s")
	}

	res, rec, err := sys.RunWithTrace(img, *budget)
	if err != nil {
		cliutil.Fatalf("liquid-run: %v", err)
	}
	if res.Faulted {
		cliutil.Fatalf("liquid-run: FAULT tt=%#02x at pc=%#08x after %d cycles", res.TT, res.FaultPC, res.Cycles)
	}
	util := sys.ActiveImage().Util
	fmt.Printf("cycles:        %d (%.3f ms at %.1f MHz)\n",
		res.Cycles, float64(res.Cycles)/(util.FMaxMHz*1e3), util.FMaxMHz)
	fmt.Printf("instructions:  %d (CPI %.2f)\n",
		res.Instructions, float64(res.Cycles)/float64(res.Instructions))
	if v, err := sys.ExitValue(img); err == nil {
		fmt.Printf("exit value:    %d (%#x)\n", v, v)
	}

	if *stats {
		soc := sys.SoC()
		ic, dc := soc.ICache.Stats(), soc.DCache.Stats()
		fmt.Printf("icache:        %d hits, %d misses (%.2f%% miss)\n",
			ic.Hits, ic.Misses, 100*ic.MissRatio())
		fmt.Printf("dcache:        %d hits, %d misses (%.2f%% miss), %d write hits, %d write misses\n",
			dc.Hits, dc.Misses, 100*dc.MissRatio(), dc.WriteHits, dc.WriteMiss)
		cs := soc.CPU.Stats()
		fmt.Printf("cpu:           %d loads, %d stores, %d branches (%d taken), %d traps\n",
			cs.Loads, cs.Stores, cs.Branches, cs.Taken, cs.Traps)
		fmt.Printf("image:         %d slices, %d BlockRAMs on %s\n",
			util.Slices, util.BlockRAMs, sys.ActiveImage().Device)
	}
	if *hot > 0 {
		rows := [][]string{{"pc", "count"}}
		for _, h := range rec.HotSpots(*hot) {
			rows = append(rows, []string{fmt.Sprintf("%#08x", h.PC), fmt.Sprintf("%d", h.Count)})
		}
		cliutil.Table(os.Stdout, rows)
	}
}
