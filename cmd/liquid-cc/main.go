// liquid-cc compiles Liquid-C to SPARC V8 assembly or a linked binary
// image — the "Compile w/ GCC" step of Fig. 4, standing in for the
// LECCS cross-compiler.
//
// Usage:
//
//	liquid-cc [-S] [-mac] [-o out] prog.c
//
// With -S the output is assembly text; otherwise it is the linked flat
// binary (crt0 + program) ready for "liquidctl load".
package main

import (
	"flag"

	"liquidarch/internal/cliutil"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
)

func main() {
	emitAsm := flag.Bool("S", false, "emit assembly instead of a binary")
	mac := flag.Bool("mac", false, "allow the __mac builtin")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	origin := flag.Uint("origin", leon.DefaultLoadAddr, "link origin for binary output")
	flag.Parse()
	if flag.NArg() > 1 {
		cliutil.Fatalf("liquid-cc: one source file at most")
	}
	src, err := cliutil.ReadInput(flag.Arg(0))
	if err != nil {
		cliutil.Fatalf("liquid-cc: %v", err)
	}
	asmText, err := lcc.Compile(string(src), lcc.Options{MAC: *mac})
	if err != nil {
		cliutil.Fatalf("liquid-cc: %v", err)
	}
	if *emitAsm {
		if err := cliutil.WriteOutput(*out, []byte(asmText)); err != nil {
			cliutil.Fatalf("liquid-cc: %v", err)
		}
		return
	}
	img, err := link.Build(asmText, link.Options{Origin: uint32(*origin)})
	if err != nil {
		cliutil.Fatalf("liquid-cc: %v", err)
	}
	if err := cliutil.WriteOutput(*out, img.Code); err != nil {
		cliutil.Fatalf("liquid-cc: %v", err)
	}
}
