// Benchmarks that regenerate the paper's evaluation (one per table and
// figure, per DESIGN.md's experiment index) plus the ablation studies.
// Simulated clock cycles are reported as custom metrics alongside Go's
// wall-clock numbers; `go run ./cmd/liquid-bench -all` prints the same
// data as tables.
package liquidarch

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"liquidarch/internal/ahbadapter"
	"liquidarch/internal/amba"
	"liquidarch/internal/asm"
	"liquidarch/internal/bench"
	"liquidarch/internal/cache"
	"liquidarch/internal/client"
	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/mem"
	"liquidarch/internal/server"
	"liquidarch/internal/synth"
)

// BenchmarkStepThroughput measures the simulator's core metric:
// host-nanoseconds per simulated instruction in the steady state (warm
// I-cache, warm predecode cache, mixed ALU/load/store/branch work)
// through the superblock dispatcher. It must report 0 allocs/op; the
// sim-MIPS metric is the simulated million-instructions-per-second
// rate the sweep wall-clock scales with. When the smoke gate is armed
// (`make bench-smoke`) it also enforces the BENCH_throughput.json
// regression bar and rewrites the JSON with the figures just measured.
func BenchmarkStepThroughput(b *testing.B) {
	soc, err := bench.ThroughputSoC(0)
	if err != nil {
		b.Fatal(err)
	}
	startInsts := soc.CPU.Stats().Instructions
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := bench.StepSteady(soc, uint64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	insts := soc.CPU.Stats().Instructions - startInsts
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(insts)/secs/1e6, "sim-MIPS")
	}
	gateAndEmitThroughput(b)
}

// benchThroughputJSON is the on-disk shape of BENCH_throughput.json.
type benchThroughputJSON struct {
	Figure string              `json:"figure"`
	Data   bench.ThroughputRow `json:"data"`
}

// gateAndEmitThroughput is the bench-smoke regression gate. When
// LIQUID_BENCH_GATE=1 (set by `make bench-smoke`) it retimes the
// 2M-step throughput experiment with internal timing — `-benchtime 1x`
// makes b.N useless for gating — and fails the run if ns/step
// regressed more than 10% over the checked-in BENCH_throughput.json,
// or if the block-dispatch path allocates at all. When
// LIQUID_BENCH_JSON names a path it rewrites that file with the
// figures just measured, keeping the checked-in baseline a tool
// artifact rather than a transcription.
func gateAndEmitThroughput(b *testing.B) {
	if os.Getenv("LIQUID_BENCH_GATE") == "" {
		return
	}
	soc, err := bench.ThroughputSoC(0)
	if err != nil {
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(64, func() {
		if _, err := bench.StepSteady(soc, 4096); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("bench gate: block-dispatch path allocates (%.1f allocs per 4096-step batch); must be 0", allocs)
	}
	row, err := bench.ThroughputExperiment(0)
	if err != nil {
		b.Fatal(err)
	}
	path := os.Getenv("LIQUID_BENCH_BASELINE")
	if path == "" {
		path = "BENCH_throughput.json"
	}
	if raw, err := os.ReadFile(path); err != nil {
		b.Logf("bench gate: no baseline at %s (%v); skipping ns/step gate", path, err)
	} else {
		var base benchThroughputJSON
		if err := json.Unmarshal(raw, &base); err != nil {
			b.Fatalf("bench gate: parse %s: %v", path, err)
		}
		if ceiling := base.Data.NsPerStep * 1.10; row.NsPerStep > ceiling {
			b.Fatalf("bench gate: %.2f ns/step exceeds ceiling %.2f (checked-in %.2f +10%%)",
				row.NsPerStep, ceiling, base.Data.NsPerStep)
		}
		b.Logf("bench gate: %.2f ns/step (%.2f sim-MIPS) within ceiling %.2f, 0 allocs",
			row.NsPerStep, row.SimMIPS, base.Data.NsPerStep*1.10)
	}
	out := os.Getenv("LIQUID_BENCH_JSON")
	if out == "" {
		return
	}
	doc := benchThroughputJSON{Figure: "Simulator throughput: steady-state stepping speed", Data: row}
	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		b.Fatalf("bench gate: write %s: %v", out, err)
	}
	b.Logf("bench gate: wrote %s", out)
}

// BenchmarkSweepParallel measures the parallel sweep runner: the whole
// Fig. 8 data-cache sweep (compile once, five SoCs) at workers=1
// versus one worker per logical CPU. The result tables are identical;
// only the wall-clock changes.
func BenchmarkSweepParallel(b *testing.B) {
	for _, w := range []int{1, 0} {
		b.Run(fmt.Sprintf("workers=%d", bench.Workers(w)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig8Sweep(w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8CacheSweep regenerates Fig. 8/9 (E1/E2): the Fig. 7
// array-access program's cycle count under each data-cache size.
func BenchmarkFig8CacheSweep(b *testing.B) {
	asmText, err := lcc.Compile(bench.Fig7Source, lcc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range bench.Fig8Sizes {
		b.Run(fmt.Sprintf("dcache=%dKB", size>>10), func(b *testing.B) {
			cfg := leon.DefaultConfig()
			cfg.DCache = cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1}
			var cycles, misses uint64
			for i := 0; i < b.N; i++ {
				soc, err := leon.New(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				ctrl := leon.NewController(soc)
				if err := ctrl.Boot(); err != nil {
					b.Fatal(err)
				}
				if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
					b.Fatal(err)
				}
				soc.DCache.ResetStats()
				res, err := ctrl.Execute(img.Entry, 0)
				if err != nil || res.Faulted {
					b.Fatalf("run: %v %+v", err, res)
				}
				cycles = res.Cycles
				misses = soc.DCache.Stats().Misses
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(misses), "dmisses")
		})
	}
}

// BenchmarkFig10Utilization regenerates Fig. 10 (E3): the synthesis
// model's device-utilization report for the base system.
func BenchmarkFig10Utilization(b *testing.B) {
	var u synth.Utilization
	for i := 0; i < b.N; i++ {
		u = synth.Estimate(leon.DefaultConfig())
	}
	b.ReportMetric(float64(u.Slices), "slices")
	b.ReportMetric(float64(u.BlockRAMs), "brams")
	b.ReportMetric(float64(u.IOBs), "iobs")
	b.ReportMetric(u.FMaxMHz, "MHz")
}

// BenchmarkBootHandoff measures the §3.1 boot + poll handoff (E4).
func BenchmarkBootHandoff(b *testing.B) {
	var bootCycles uint64
	for i := 0; i < b.N; i++ {
		soc, err := leon.New(leon.DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		ctrl := leon.NewController(soc)
		if err := ctrl.Boot(); err != nil {
			b.Fatal(err)
		}
		bootCycles = soc.Cycles()
	}
	b.ReportMetric(float64(bootCycles), "boot-cycles")
}

// newAdapter builds a fresh §3.2 adapter over an SDRAM controller.
func newAdapter(b *testing.B) *ahbadapter.Adapter {
	b.Helper()
	ctrl := mem.NewController(mem.NewSDRAM(1 << 20))
	port, err := ctrl.Port("leon")
	if err != nil {
		b.Fatal(err)
	}
	return ahbadapter.New(port)
}

// BenchmarkAdapterReadBurst measures the §3.2 claim (E5): a 4-word
// fill through one declared burst beats four single reads.
func BenchmarkAdapterReadBurst(b *testing.B) {
	b.Run("burst4", func(b *testing.B) {
		a := newAdapter(b)
		words := make([]uint32, 4)
		cycles := 0
		for i := 0; i < b.N; i++ {
			c, err := a.ReadBurst(0, words)
			if err != nil {
				b.Fatal(err)
			}
			cycles = c
		}
		b.ReportMetric(float64(cycles), "bus-cycles")
	})
	b.Run("singles4", func(b *testing.B) {
		a := newAdapter(b)
		total := 0
		for i := 0; i < b.N; i++ {
			total = 0
			for w := uint32(0); w < 4; w++ {
				_, c, err := a.Read(w*4, amba.SizeWord)
				if err != nil {
					b.Fatal(err)
				}
				total += c
			}
		}
		b.ReportMetric(float64(total), "bus-cycles")
	})
}

// BenchmarkAdapterWriteRMW measures the read-modify-write penalty of
// 32-bit stores through the 64-bit controller (E5).
func BenchmarkAdapterWriteRMW(b *testing.B) {
	b.Run("write32", func(b *testing.B) {
		a := newAdapter(b)
		cycles := 0
		for i := 0; i < b.N; i++ {
			c, err := a.Write(0, uint32(i), amba.SizeWord)
			if err != nil {
				b.Fatal(err)
			}
			cycles = c
		}
		b.ReportMetric(float64(cycles), "bus-cycles")
	})
	b.Run("read32", func(b *testing.B) {
		a := newAdapter(b)
		cycles := 0
		for i := 0; i < b.N; i++ {
			_, c, err := a.Read(0, amba.SizeWord)
			if err != nil {
				b.Fatal(err)
			}
			cycles = c
		}
		b.ReportMetric(float64(cycles), "bus-cycles")
	})
}

// BenchmarkReconfigCache measures E6: swapping to a pre-generated
// image (cache hit) versus paying the modelled synthesis run.
func BenchmarkReconfigCache(b *testing.B) {
	small := synth.Options{BitstreamBytes: 4096}
	// Default path: cache-only swaps use partial reconfiguration.
	b.Run("hit-partial", func(b *testing.B) {
		sys, err := core.New(leon.DefaultConfig(), core.Options{Synth: small})
		if err != nil {
			b.Fatal(err)
		}
		alt := leon.DefaultConfig()
		alt.DCache.SizeBytes = 8 << 10
		if _, err := sys.Reconfigure(alt); err != nil {
			b.Fatal(err) // pre-generate both points
		}
		cfgs := [2]leon.Config{leon.DefaultConfig(), alt}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			hit, err := sys.Reconfigure(cfgs[i%2])
			if err != nil {
				b.Fatal(err)
			}
			if !hit {
				b.Fatal("expected a cache hit")
			}
		}
		b.ReportMetric(0, "synth-hours")
	})
	b.Run("hit-full", func(b *testing.B) {
		// Ablation: same swap with the partial path disabled — pays
		// the full rebuild + board-memory copy every time.
		sys, err := core.New(leon.DefaultConfig(), core.Options{Synth: small, DisablePartial: true})
		if err != nil {
			b.Fatal(err)
		}
		alt := leon.DefaultConfig()
		alt.DCache.SizeBytes = 8 << 10
		if _, err := sys.Reconfigure(alt); err != nil {
			b.Fatal(err)
		}
		cfgs := [2]leon.Config{leon.DefaultConfig(), alt}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Reconfigure(cfgs[i%2]); err != nil {
				b.Fatal(err)
			}
		}
		if sys.PartialReconfigurations() != 0 {
			b.Fatal("partial path used")
		}
	})
	b.Run("miss", func(b *testing.B) {
		sys, err := core.New(leon.DefaultConfig(), core.Options{Synth: small, CacheCapacity: 1})
		if err != nil {
			b.Fatal(err)
		}
		var hours float64
		for i := 0; i < b.N; i++ {
			cfg := leon.DefaultConfig()
			// A new point every iteration: always a synthesis run.
			cfg.CPU.NWindows = 2 + i%31
			if cfg.CPU.NWindows < 2 {
				cfg.CPU.NWindows = 2
			}
			cfg.DCache.SizeBytes = 1 << (10 + uint(i%5))
			if _, err := sys.Reconfigure(cfg); err != nil {
				b.Fatal(err)
			}
			hours = sys.ActiveImage().SynthTime.Hours()
		}
		b.ReportMetric(hours, "synth-hours")
	})
}

// BenchmarkProtocolLoad measures E7: the full networked load+start+
// readmem session over loopback UDP, including multi-packet chunking.
func BenchmarkProtocolLoad(b *testing.B) {
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		b.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		b.Fatal(err)
	}
	// The asynchronous control plane needs an actor driving the run:
	// CmdStartLEON only performs the handoff, and the result wait polls
	// until the board finishes. A bare Controller behind the platform
	// would report StatusRunning forever.
	actrl := leon.NewAsyncController(ctrl)
	defer actrl.Close()
	platform := fpx.New(actrl, [4]byte{10, 0, 0, 2}, 5001)
	srv, err := server.New(platform, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	obj, err := asm.AssembleAt(`
_start:
	set result, %g1
	mov 7, %g2
	st %g2, [%g1]
	set 0x1000, %g7
	jmp %g7
	nop
result:	.word 0
	.space 3000
`, leon.DefaultLoadAddr)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(obj.Code)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, data, err := c.RunProgram(obj.Origin, obj.Code, obj.Origin, mustSym(b, obj, "result"), 4)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Cycles == 0 || len(data) != 4 || data[3] != 7 {
			b.Fatalf("bad session: %+v % x", rep, data)
		}
	}
}

func mustSym(b *testing.B, obj *asm.Object, name string) uint32 {
	b.Helper()
	v, ok := obj.Symbol(name)
	if !ok {
		b.Fatalf("no symbol %s", name)
	}
	return v
}

// BenchmarkAblationBurstLen sweeps the adapter's read chunk (§6). The
// ablation benchmarks run their sweeps with workers=1 so the wall-clock
// number keeps meaning "cost of the serial sweep"; BenchmarkSweepParallel
// measures the parallel speedup explicitly.
func BenchmarkAblationBurstLen(b *testing.B) {
	var rows []bench.BurstAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.BurstAblation(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), fmt.Sprintf("cycles-bw%d", r.BurstWords))
	}
}

// BenchmarkAblationWritePolicy compares write-through and write-back.
func BenchmarkAblationWritePolicy(b *testing.B) {
	var rows []bench.WritePolicyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.WritePolicyExperiment(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), r.Policy+"-cycles")
	}
}

// BenchmarkAblationAssoc sweeps data-cache associativity at 2 KB.
func BenchmarkAblationAssoc(b *testing.B) {
	var rows []bench.AssocRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.AssocExperiment(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), fmt.Sprintf("cycles-%dway", r.Assoc))
	}
}

// BenchmarkMACExtension measures the liquid ISA extension on the
// dot-product kernel.
func BenchmarkMACExtension(b *testing.B) {
	var plain, mac leon.RunResult
	for i := 0; i < b.N; i++ {
		var err error
		plain, mac, err = bench.MACExperiment()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(plain.Cycles), "base-cycles")
	b.ReportMetric(float64(mac.Cycles), "mac-cycles")
	b.ReportMetric(float64(plain.Cycles)/float64(mac.Cycles), "speedup")
}

// BenchmarkToolchain measures the compile+assemble+link pipeline.
func BenchmarkToolchain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		asmText, err := lcc.Compile(bench.Fig7Source, lcc.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := link.Build(asmText, link.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationICache sweeps the instruction-cache size on a
// code-footprint-heavy kernel (the paper's other cache axis).
func BenchmarkAblationICache(b *testing.B) {
	var rows []bench.ICacheRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.ICacheSweep(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(float64(r.Cycles), fmt.Sprintf("cycles-i%dB", r.ICacheBytes))
	}
}

// BenchmarkAblationPlacement compares data in SRAM vs SDRAM behind the
// §3.2 adapter.
func BenchmarkAblationPlacement(b *testing.B) {
	var rows []bench.PlacementRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.PlacementExperiment(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		name := "sram-cycles"
		if r.Memory != "SRAM" {
			name = "sdram-cycles"
		}
		b.ReportMetric(float64(r.Cycles), name)
	}
}

// BenchmarkAblationPipeline sweeps pipeline depth: deeper = more
// branch-penalty cycles, higher synthesized clock.
func BenchmarkAblationPipeline(b *testing.B) {
	var rows []bench.PipelineRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.PipelineExperiment(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Millis, fmt.Sprintf("ms-depth%d", r.Depth))
	}
}
