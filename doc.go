// Package liquidarch is a full reproduction, in Go, of "Liquid
// Architecture" (Jones, Padmanabhan, Rymarz, Maschmeyer, Schuehler,
// Lockwood, Cytron; IPPS/RAW 2004): the LEON SPARC-compatible soft
// core integrated into the FPX platform so that the processor's
// microarchitecture — cache geometry, pipeline depth, register
// windows, custom instructions — is liquid: reconfigurable at runtime
// from a cache of pre-synthesized images, and driven over the network.
//
// The physical FPGA is replaced by a cycle-accounting simulation of
// every hardware component (see DESIGN.md for the substitution table);
// the control software, network protocol, compiler toolchain, trace
// analyzer, architecture generator and reconfiguration cache are real
// implementations.
//
// The subsystems live under internal/:
//
//	isa, cpu              SPARC V8 instruction set and LEON integer unit
//	cache, amba, mem      caches, AMBA AHB/APB, SRAM/SDRAM + FPX controller
//	ahbadapter            the §3.2 AHB↔SDRAM bridge
//	periph, leon          APB peripherals and the SoC + leon_ctrl circuitry
//	asm, lcc, link        assembler, Liquid-C compiler, image builder
//	netproto, fpx         IPv4/UDP wrappers, CPP, packet generator
//	server, client        reconfiguration server and control client (real UDP)
//	trace, synth          trace analyzer and calibrated synthesis model
//	reconfig, archgen     reconfiguration cache and design-space explorer
//	metrics               telemetry registry, event log, /metrics endpoint
//	core                  the liquid-architecture System façade
//
// Executables are under cmd/ (liquid-server, liquidctl, liquid-run,
// liquid-asm, liquid-cc, liquid-bench) and runnable walkthroughs under
// examples/. The benchmarks in bench_test.go regenerate every table
// and figure of the paper's evaluation; EXPERIMENTS.md records the
// comparison.
package liquidarch
