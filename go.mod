module liquidarch

go 1.22
