# Convenience targets; `make ci` runs the exact checks the CI workflow
# runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race race-net vet fmt-check bench bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-net exercises the asynchronous control plane — the per-board
# actor, the node's read-loop/worker handoff and the polling client —
# under the race detector twice, to shake out scheduling-dependent
# interleavings that a single pass can miss.
race-net:
	$(GO) test -race -count=2 ./internal/leon/... ./internal/fpx/... ./internal/server/... ./internal/client/...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x

# bench-smoke runs every root-level benchmark exactly once with tests
# disabled: a fast CI gate that the benchmark harnesses still build and
# run (BenchmarkStepThroughput also reports allocs/op, which must be 0).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: fmt-check vet build race race-net bench-smoke
