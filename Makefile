# Convenience targets; `make ci` runs the exact checks the CI workflow
# runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race vet fmt-check bench bench-smoke ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x

# bench-smoke runs every root-level benchmark exactly once with tests
# disabled: a fast CI gate that the benchmark harnesses still build and
# run (BenchmarkStepThroughput also reports allocs/op, which must be 0).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: fmt-check vet build race bench-smoke
