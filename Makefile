# Convenience targets; `make ci` runs the exact checks the CI workflow
# runs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build test race race-net chaos fuzz-smoke cover-gate vet fmt-check bench bench-smoke load-smoke reconfig-smoke trace-smoke sim-smoke time-lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-net exercises the asynchronous control plane — the per-board
# actor, the node's read-loop/worker handoff and the polling client —
# under the race detector twice, to shake out scheduling-dependent
# interleavings that a single pass can miss.
race-net:
	$(GO) test -race -count=2 ./internal/leon/... ./internal/fpx/... ./internal/server/... ./internal/client/...

# chaos runs the deterministic fault-injection suite under the race
# detector: the injector/proxy unit tests, the seeded end-to-end storms
# (TestControlPlaneUnderChaos / TestNodeUnderChaos: full sessions
# through 20% loss + reorder + dup, bit-identical results required),
# the scripted load-resumption and dedup regressions, and the client
# retry/backoff tests.
chaos:
	$(GO) test -race ./internal/chaos/...
	$(GO) test -race -run 'Chaos|Retransmit|Resume|Suppressed|Dedup|Backoff|Jitter|WaitResult|WaitHold|HeldWait|LoadError|WrongBoard|StaleSeq|Windowed' \
		./internal/server/... ./internal/client/... ./internal/fpx/...

# fuzz-smoke gives each native fuzz target a few seconds on top of the
# committed corpus (testdata/fuzz); `go test -fuzz` grows it locally.
fuzz-smoke:
	$(GO) test ./internal/netproto/ -run '^$$' -fuzz FuzzParsePacket -fuzztime 5s
	$(GO) test ./internal/netproto/ -run '^$$' -fuzz FuzzParseLoadChunk -fuzztime 5s
	$(GO) test ./internal/netproto/ -run '^$$' -fuzz FuzzParseRunReport -fuzztime 5s
	$(GO) test ./internal/reconfig/ -run '^$$' -fuzz FuzzImageCodec -fuzztime 5s

# cover-gate fails if statement coverage of the transport packages —
# the ones the chaos work hardens — drops below the floor.
COVER_MIN ?= 80
COVER_PKGS = ./internal/client ./internal/server ./internal/reconfig \
	./internal/sim ./internal/leon ./internal/fpx

cover-gate:
	@set -e; for p in $(COVER_PKGS); do \
		$(GO) test -coverprofile=.cover.tmp $$p >/dev/null; \
		pct=$$($(GO) tool cover -func=.cover.tmp | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
		rm -f .cover.tmp; \
		echo "coverage $$p: $$pct% (floor $(COVER_MIN)%)"; \
		awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN{exit !(p>=m)}' || { \
			echo "FAIL: coverage of $$p below $(COVER_MIN)%"; exit 1; }; \
	done

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench . -benchtime 1x

# bench-smoke runs every root-level benchmark exactly once with tests
# disabled, with the throughput gate armed: the steady-state stepping
# loop must allocate nothing and its measured ns/step must stay within
# 10% of the checked-in BENCH_throughput.json baseline. The freshly
# measured figure is re-emitted to BENCH_throughput.json (commit the
# refresh when the number moves for a real reason).
bench-smoke:
	LIQUID_BENCH_GATE=1 LIQUID_BENCH_JSON=$(CURDIR)/BENCH_throughput.json \
		$(GO) test -run '^$$' -bench . -benchtime 1x -v .

# load-smoke runs the pipelined-control-plane benchmarks once
# (BenchmarkLoadThroughput window=1 vs window=16, and the single-board
# leg of BenchmarkNodeConcurrentClients) with the gates armed: the
# windowed load must cost at least 2x fewer implied round trips than
# stop-and-wait, and single-board runs/s must stay above half the
# checked-in BENCH_load.json baseline. The freshly measured figures are
# re-emitted to BENCH_load.json (commit the refresh when the numbers
# move for a real reason).
load-smoke:
	LIQUID_LOAD_GATE=1 LIQUID_LOAD_JSON=$(CURDIR)/BENCH_load.json \
		$(GO) test -run '^$$' -bench 'BenchmarkLoadThroughput|BenchmarkNodeConcurrentClients/boards=1$$' \
		-benchtime 1x -v ./internal/server/

# reconfig-smoke runs the cold/warm reconfiguration-service benchmark
# once with the gate armed: a restarted node must serve a three-pass
# sweep over a pregenerated configuration space at a ≥90% hit ratio
# with exactly one new synthesis (the novel point). The measured
# figures — hit ratio, modelled tool hours saved, wall time — are
# re-emitted to BENCH_reconfig.json (commit the refresh when the
# numbers move for a real reason).
reconfig-smoke:
	LIQUID_RECONFIG_GATE=1 LIQUID_RECONFIG_JSON=$(CURDIR)/BENCH_reconfig.json \
		$(GO) test -run '^$$' -bench 'BenchmarkReconfigColdWarm' \
		-benchtime 1x -v ./internal/reconfig/

# trace-smoke runs the two-board example with end-to-end exchange
# tracing and lets it self-validate the merged Chrome trace-event
# export (JSON parses, every span nests inside its parent); the
# example exits non-zero if the timeline is malformed.
trace-smoke:
	$(GO) run ./examples/multinode -trace-out $${TMPDIR:-/tmp}/liquidarch-trace-smoke.json

# sim-smoke is the deterministic-simulation gate: the model-based
# cluster runner must match the sequential reference model over 100
# pinned seeds (randomized op mixes, wire revs v1..v6, lossy links),
# and the planted dedup bug must be caught with a replayable seed.
# LIQUID_SIM_SEEDS raises the sweep; the nightly workflow runs 400.
SIM_SEEDS ?= 100
sim-smoke:
	LIQUID_SIM_SEEDS=$(SIM_SEEDS) $(GO) test -count=1 \
		-run 'TestModelSmoke|TestModelReconfigIdleMix|TestModelCatchesDedupBug' ./internal/sim/modeltest/
	$(GO) test -count=1 -run 'Sim|Compat' ./internal/server/

# time-lint rejects new direct wall-clock calls in non-test
# control-plane code: every timeout, backoff, and delay must go
# through the injected sim.Clock so the deterministic simulation can
# virtualize it. internal/sim itself (the clock's home) and test files
# are exempt; time.Time/time.Duration *types* are fine — only calls
# that read or wait on the real clock are flagged.
TIME_LINT_PKGS = internal/client internal/server internal/chaos \
	internal/fpx internal/leon internal/core internal/reconfig internal/synth
time-lint:
	@out=$$(grep -rnE 'time\.(Now|Sleep|After|AfterFunc|NewTimer|NewTicker|Since|Until|Tick)\(' \
		$(TIME_LINT_PKGS) --include='*.go' | grep -v '_test\.go' || true); \
	if [ -n "$$out" ]; then \
		echo "direct wall-clock use in control-plane code (inject sim.Clock instead):"; \
		echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build race race-net chaos cover-gate bench-smoke load-smoke reconfig-smoke trace-smoke sim-smoke time-lint
