package synth

import (
	"strings"
	"testing"

	"liquidarch/internal/cache"
	"liquidarch/internal/leon"
)

func TestVHDLContainsGenerics(t *testing.T) {
	cfg := leon.DefaultConfig()
	cfg.CPU.MAC = true
	cfg.DCache.SizeBytes = 8 << 10
	cfg.DCache.Write = cache.WriteBack
	text := VHDL(cfg)
	for _, frag := range []string{
		"entity liquid_processor",
		"NWINDOWS",
		":= 8",
		"DCACHE_BYTES",
		":= 8192",
		"MAC_UNIT",
		"DCACHE_WRITEBACK",
		"ahb_sdram_br",
		"leon_ctrl",
		ConfigKey(cfg),
		"end architecture fpx;",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("VHDL output missing %q\n%s", frag, text)
		}
	}
	// Booleans render as 0/1 generics.
	if !strings.Contains(text, "MAC_UNIT             : integer := 1") {
		t.Errorf("MAC generic not set:\n%s", text)
	}
}

func TestVHDLDeterministic(t *testing.T) {
	a := VHDL(leon.DefaultConfig())
	b := VHDL(leon.DefaultConfig())
	if a != b {
		t.Error("VHDL output not deterministic")
	}
}
