package synth

import (
	"bytes"
	"errors"
	"testing"

	"liquidarch/internal/cache"
	"liquidarch/internal/leon"
)

// TestFig10Calibration: the base Liquid processor system must
// reproduce the paper's device utilization table exactly.
func TestFig10Calibration(t *testing.T) {
	u := Estimate(leon.DefaultConfig())
	if u.Slices != 7900 {
		t.Errorf("slices = %d, want 7900", u.Slices)
	}
	if u.BlockRAMs != 86 {
		t.Errorf("BlockRAMs = %d, want 86 (54%% of 160)", u.BlockRAMs)
	}
	if u.IOBs != 309 {
		t.Errorf("IOBs = %d, want 309", u.IOBs)
	}
	if u.FMaxMHz != 30 {
		t.Errorf("fMax = %v, want 30 MHz", u.FMaxMHz)
	}
	sp, bp, ip := u.Percent(XCV2000E)
	if sp < 41 || sp > 41.5 {
		t.Errorf("slice%% = %.1f, want ≈41", sp)
	}
	if bp < 53 || bp > 55 {
		t.Errorf("bram%% = %.1f, want ≈54", bp)
	}
	if ip < 38 || ip > 39 {
		t.Errorf("iob%% = %.1f, want ≈38", ip)
	}
}

func TestBiggerCachesCostMoreBRAM(t *testing.T) {
	base := Estimate(leon.DefaultConfig())
	big := leon.DefaultConfig()
	big.DCache.SizeBytes = 16 << 10
	u := Estimate(big)
	if u.BlockRAMs <= base.BlockRAMs {
		t.Errorf("16KB D$ BRAMs %d not above base %d", u.BlockRAMs, base.BlockRAMs)
	}
	if u.FMaxMHz >= base.FMaxMHz {
		t.Errorf("16KB D$ fMax %v not below base %v", u.FMaxMHz, base.FMaxMHz)
	}
}

func TestFeatureCosts(t *testing.T) {
	base := Estimate(leon.DefaultConfig())

	mac := leon.DefaultConfig()
	mac.CPU.MAC = true
	if u := Estimate(mac); u.Slices <= base.Slices {
		t.Error("MAC unit is free")
	}

	deep := leon.DefaultConfig()
	deep.CPU.PipelineDepth = 7
	if u := Estimate(deep); u.FMaxMHz <= base.FMaxMHz {
		t.Error("deeper pipeline does not raise fMax")
	}

	noMul := leon.DefaultConfig()
	noMul.CPU.MulDiv = false
	if u := Estimate(noMul); u.Slices >= base.Slices {
		t.Error("removing mul/div does not save slices")
	}

	assoc := leon.DefaultConfig()
	assoc.DCache.Assoc = 4
	if u := Estimate(assoc); u.Slices <= base.Slices || u.FMaxMHz >= base.FMaxMHz {
		t.Error("associativity is free")
	}

	wb := leon.DefaultConfig()
	wb.DCache.Write = cache.WriteBack
	if u := Estimate(wb); u.Slices <= base.Slices {
		t.Error("write-back is free")
	}

	wins := leon.DefaultConfig()
	wins.CPU.NWindows = 16
	if u := Estimate(wins); u.Slices <= base.Slices || u.BlockRAMs <= base.BlockRAMs {
		t.Error("extra windows are free")
	}
}

func TestSynthesizeProducesImage(t *testing.T) {
	cfg := leon.DefaultConfig()
	img, err := Synthesize(cfg, Options{BitstreamBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if img.Key != ConfigKey(cfg) || img.Device != "XCV2000E" {
		t.Errorf("image meta: %q %q", img.Key, img.Device)
	}
	if len(img.Bitstream) != 4096 {
		t.Errorf("bitstream = %d bytes", len(img.Bitstream))
	}
	// SelectMap-style sync header.
	if !bytes.HasPrefix(img.Bitstream, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0x99, 0x55, 0x66}) {
		t.Error("no sync header")
	}
	// ≈1 hour.
	if h := img.SynthTime.Hours(); h < 0.5 || h > 2 {
		t.Errorf("synthesis time = %v, want ≈1h", img.SynthTime)
	}
	// Determinism.
	img2, err := Synthesize(cfg, Options{BitstreamBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Bitstream, img2.Bitstream) {
		t.Error("bitstreams differ across runs")
	}
	// Different config, different bitstream.
	other := cfg
	other.DCache.SizeBytes = 8 << 10
	img3, err := Synthesize(other, Options{BitstreamBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(img.Bitstream[8:64], img3.Bitstream[8:64]) {
		t.Error("different configs share a bitstream body")
	}
	// Default bitstream length is the real device's.
	full, err := Synthesize(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Bitstream) != 1271512 {
		t.Errorf("default bitstream = %d bytes", len(full.Bitstream))
	}
}

func TestFitFailure(t *testing.T) {
	huge := leon.DefaultConfig()
	huge.DCache.SizeBytes = 512 << 10 // 1024+ BRAMs
	_, err := Synthesize(huge, Options{BitstreamBytes: 64})
	var fe *FitError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want FitError", err)
	}
	if fe.Error() == "" {
		t.Error("empty fit error")
	}
	// Small device rejects what the big one accepts.
	mid := leon.DefaultConfig()
	mid.DCache.SizeBytes = 32 << 10
	if _, err := Synthesize(mid, Options{Device: XCV2000E, BitstreamBytes: 64}); err != nil {
		t.Errorf("32KB on XCV2000E: %v", err)
	}
	big := leon.DefaultConfig()
	big.DCache.SizeBytes = 64 << 10
	big.ICache.SizeBytes = 16 << 10
	if _, err := Synthesize(big, Options{Device: XCV1000E, BitstreamBytes: 64}); err == nil {
		t.Error("oversized design fit XCV1000E")
	}
}

func TestSynthesizeValidates(t *testing.T) {
	bad := leon.DefaultConfig()
	bad.DCache.SizeBytes = 3000
	if _, err := Synthesize(bad, Options{}); err == nil {
		t.Error("invalid config synthesized")
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	a := leon.DefaultConfig()
	b := leon.DefaultConfig()
	if ConfigKey(a) != ConfigKey(b) {
		t.Error("equal configs produce different keys")
	}
	b.DCache.SizeBytes = 8 << 10
	if ConfigKey(a) == ConfigKey(b) {
		t.Error("different configs share a key")
	}
	c := leon.DefaultConfig()
	c.CPU.MAC = true
	if ConfigKey(a) == ConfigKey(c) {
		t.Error("MAC not in key")
	}
}

func TestFMaxFloor(t *testing.T) {
	cfg := leon.DefaultConfig()
	cfg.CPU.PipelineDepth = 3
	cfg.DCache.SizeBytes = 64 << 10
	cfg.DCache.Assoc = 8
	cfg.ICache.SizeBytes = 32 << 10
	cfg.ICache.Assoc = 8
	cfg.CPU.MAC = true
	u := Estimate(cfg)
	if u.FMaxMHz < 12 {
		t.Errorf("fMax %v fell through the floor", u.FMaxMHz)
	}
}
