// Package synth models the Synthesis component of Fig. 1: "this
// component processes VHDL and emits FPGA layouts of the liquid
// architecture". Real synthesis of one configuration took ≈1 hour on
// the authors' tools (§1) and produced the device utilization of
// Fig. 10; this package provides a calibrated area/frequency/latency
// model of that process plus deterministic pseudo-bitstreams, so the
// Reconfiguration Cache and Architecture Generator exercise the same
// decisions the paper's environment faced.
//
// Calibration anchors (Fig. 10, Xilinx Virtex XCV2000E):
//
//	Logic slices  7900 / 19200  (41 %)
//	BlockRAMs       54 %        (86 / 160)
//	External IOBs  309
//	Frequency       30 MHz
//
// The base Liquid processor system (leon.DefaultConfig) reproduces
// those numbers; other configurations scale from them.
package synth

import (
	"fmt"
	"time"

	"liquidarch/internal/cache"
	"liquidarch/internal/leon"
	"liquidarch/internal/sim"
)

// Device describes a synthesis target FPGA.
type Device struct {
	Name      string
	Slices    int
	BlockRAMs int // 4 Kbit blocks
	IOBs      int
}

// XCV2000E is the FPX RAD device of the paper.
var XCV2000E = Device{Name: "XCV2000E", Slices: 19200, BlockRAMs: 160, IOBs: 804}

// XCV1000E is a smaller Virtex-E, useful for fit-failure scenarios.
var XCV1000E = Device{Name: "XCV1000E", Slices: 12288, BlockRAMs: 96, IOBs: 660}

// Utilization is a post-place-and-route resource report (Fig. 10).
type Utilization struct {
	Slices    int
	BlockRAMs int
	IOBs      int
	FMaxMHz   float64
}

// Percent returns resource usage percentages against dev.
func (u Utilization) Percent(dev Device) (slices, brams, iobs float64) {
	return 100 * float64(u.Slices) / float64(dev.Slices),
		100 * float64(u.BlockRAMs) / float64(dev.BlockRAMs),
		100 * float64(u.IOBs) / float64(dev.IOBs)
}

// boardIOBs is fixed by the FPX pinout (network interfaces, memories).
const boardIOBs = 309

// bramBits is the capacity of one Virtex-E BlockRAM.
const bramBits = 4096

func bramsFor(bits int) int { return (bits + bramBits - 1) / bramBits }

// cacheBRAMs returns BlockRAMs for a cache's data and tag arrays.
func cacheBRAMs(c cache.Config) int {
	data := c.SizeBytes * 8
	// tag + valid + dirty per line; 22-bit tags cover the map.
	tags := c.Lines() * 24
	return bramsFor(data) + bramsFor(tags)
}

// cacheSlices returns control logic for a cache.
func cacheSlices(c cache.Config) int {
	s := 150 + 80*c.Assoc
	if c.Write == cache.WriteBack {
		s += 120
	}
	if c.Replacement != cache.LRU && c.Assoc > 1 {
		s += 30
	}
	return s
}

// Estimate predicts post-PAR utilization for a configuration. The
// model is additive per component with the constants calibrated so the
// paper's base system hits Fig. 10 exactly.
func Estimate(cfg leon.Config) Utilization {
	cpuCfg := cfg.CPU
	slices := 3140 // integer unit datapath and control
	if cpuCfg.MulDiv {
		slices += 600
	}
	if cpuCfg.MAC {
		slices += 350
	}
	slices += (cpuCfg.NWindows - 2) * 60
	slices += (cpuCfg.Depth() - 5) * 180 // extra pipeline registers
	slices += cacheSlices(cfg.ICache)
	slices += cacheSlices(cfg.DCache)
	slices += 260                         // AHB fabric
	slices += 640                         // APB bridge + UART + timers + irqctrl + gpio
	slices += 880                         // layered protocol wrappers
	slices += 700                         // CPP + leon_ctrl + cycle counter
	slices += 480                         // FPX SDRAM controller
	slices += 380 + 10*(cfg.BurstWords-4) // AHB↔SDRAM adapter (§3.2)

	brams := bramsFor(cpuCfg.NWindows*16*32 + 8*32) // register file
	brams += cacheBRAMs(cfg.ICache)
	brams += cacheBRAMs(cfg.DCache)
	brams += 8  // boot PROM
	brams += 24 // wrapper packet buffers
	brams += 12 // CPP FIFOs
	brams += 12 // packet generator
	brams += 16 // SDRAM controller line buffers

	fmax := 15 + 3*float64(cpuCfg.Depth())
	fmax -= 0.4 * doublings(cfg.DCache.SizeBytes, 4<<10)
	fmax -= 0.4 * doublings(cfg.ICache.SizeBytes, 1<<10)
	fmax -= 0.8 * float64(cfg.DCache.Assoc-1+cfg.ICache.Assoc-1)
	if cpuCfg.MAC {
		fmax -= 0.8
	}
	if cpuCfg.NWindows > 8 {
		fmax -= 0.1 * float64(cpuCfg.NWindows-8)
	}
	if fmax < 12 {
		fmax = 12
	}

	return Utilization{Slices: slices, BlockRAMs: brams, IOBs: boardIOBs, FMaxMHz: fmax}
}

// doublings counts log2(size/base) below or above the base (0 floor).
func doublings(size, base int) float64 {
	d := 0.0
	for size > base {
		size /= 2
		d++
	}
	return d
}

// FitError reports a configuration that does not fit the device.
type FitError struct {
	Device Device
	Util   Utilization
}

func (e *FitError) Error() string {
	return fmt.Sprintf("synth: does not fit %s: %d/%d slices, %d/%d BlockRAMs",
		e.Device.Name, e.Util.Slices, e.Device.Slices, e.Util.BlockRAMs, e.Device.BlockRAMs)
}

// Options tunes synthesis.
type Options struct {
	// Device is the target (default XCV2000E).
	Device Device
	// BitstreamBytes sizes the generated image (default the real
	// XCV2000E bitstream length).
	BitstreamBytes int
	// TimeScale multiplies the modelled synthesis latency into actual
	// sleep time (0 = don't sleep, just report). 1e-6 makes the ≈1 h
	// synthesis take ≈3.6 ms, preserving relative costs in demos.
	TimeScale float64
	// Clock paces the TimeScale sleep (nil = real time); simulated
	// nodes inject the virtual clock so modelled tool time advances
	// on the virtual timeline.
	Clock sim.Clock
}

func (o Options) withDefaults() Options {
	if o.Device.Slices == 0 {
		o.Device = XCV2000E
	}
	if o.BitstreamBytes == 0 {
		o.BitstreamBytes = 1271512 // full XCV2000E configuration
	}
	return o
}

// Image is a synthesized FPGA configuration: the product the
// Reconfiguration Cache stores and the FPX SelectMap interface loads.
type Image struct {
	Key       string
	Config    leon.Config
	Util      Utilization
	Device    string
	Bitstream []byte
	// SynthTime is the modelled synthesis duration (≈1 h per point).
	SynthTime time.Duration
}

// ConfigKey canonically identifies a configuration point; equal keys
// mean interchangeable bitstreams.
func ConfigKey(cfg leon.Config) string {
	return fmt.Sprintf("w%d-md%v-mac%v-d%d-i%s-d%s-b%d-sram%d-sdram%d",
		cfg.CPU.NWindows, cfg.CPU.MulDiv, cfg.CPU.MAC, cfg.CPU.Depth(),
		cfg.ICache, cfg.DCache, cfg.BurstWords, cfg.SRAMSize, cfg.SDRAMSize)
}

// SynthTimeFor models the ≈1-hour tool run: it grows with design size.
func SynthTimeFor(u Utilization) time.Duration {
	secs := 1200 + 0.25*float64(u.Slices) + 5*float64(u.BlockRAMs)
	return time.Duration(secs * float64(time.Second))
}

// Synthesize runs the modelled synthesis flow: validate, estimate,
// check fit, and emit a deterministic pseudo-bitstream.
func Synthesize(cfg leon.Config, opts Options) (*Image, error) {
	opts = opts.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	util := Estimate(cfg)
	if util.Slices > opts.Device.Slices || util.BlockRAMs > opts.Device.BlockRAMs || util.IOBs > opts.Device.IOBs {
		return nil, &FitError{Device: opts.Device, Util: util}
	}
	key := ConfigKey(cfg)
	img := &Image{
		Key:       key,
		Config:    cfg,
		Util:      util,
		Device:    opts.Device.Name,
		Bitstream: pseudoBitstream(key, opts.BitstreamBytes),
		SynthTime: SynthTimeFor(util),
	}
	if opts.TimeScale > 0 {
		sim.Or(opts.Clock).Sleep(time.Duration(float64(img.SynthTime) * opts.TimeScale))
	}
	return img, nil
}

// pseudoBitstream deterministically expands a key into n bytes with a
// SelectMap-style sync header, so identical configurations produce
// identical images.
func pseudoBitstream(key string, n int) []byte {
	out := make([]byte, n)
	// Sync word + dummy padding, as real Virtex bitstreams start.
	header := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xAA, 0x99, 0x55, 0x66}
	copy(out, header)
	// FNV-1a seed from the key.
	var h uint64 = 1469598103934665603
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	x := h | 1
	for i := len(header); i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}
