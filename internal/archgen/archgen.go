// Package archgen implements the Architecture Generator of Fig. 1:
// "the applications developer explores reconfigurability options". It
// enumerates a configuration space around a base Liquid processor
// system, predicts each point's performance from a recorded execution
// trace (via the trace analyzer's cache replay) and its cost from the
// synthesis model, and ranks the candidates so the reconfiguration
// cache can be pre-populated with the most promising images.
package archgen

import (
	"fmt"
	"sort"

	"liquidarch/internal/cache"
	"liquidarch/internal/cpu"
	"liquidarch/internal/leon"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/synth"
	"liquidarch/internal/trace"
)

// Space is a parameter space around a base configuration. Empty axes
// keep the base value.
type Space struct {
	Base leon.Config

	DCacheSizes    []int
	DCacheAssocs   []int
	DCacheLines    []int
	ICacheSizes    []int
	MAC            []bool
	BurstWords     []int
	PipelineDepths []int
}

// PaperSpace is the sweep the paper's evaluation runs: data cache size
// 1-16 KB at a constant 32 B line and 1 KB instruction cache (§4).
func PaperSpace(base leon.Config) Space {
	return Space{
		Base:        base,
		DCacheSizes: []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10},
	}
}

func orInts(vals []int, base int) []int {
	if len(vals) == 0 {
		return []int{base}
	}
	return vals
}

func orBools(vals []bool, base bool) []bool {
	if len(vals) == 0 {
		return []bool{base}
	}
	return vals
}

// Enumerate expands the space into concrete, valid configurations.
func (s Space) Enumerate() []leon.Config {
	var out []leon.Config
	for _, dsz := range orInts(s.DCacheSizes, s.Base.DCache.SizeBytes) {
		for _, dassoc := range orInts(s.DCacheAssocs, s.Base.DCache.Assoc) {
			for _, dline := range orInts(s.DCacheLines, s.Base.DCache.LineBytes) {
				for _, isz := range orInts(s.ICacheSizes, s.Base.ICache.SizeBytes) {
					for _, mac := range orBools(s.MAC, s.Base.CPU.MAC) {
						for _, bw := range orInts(s.BurstWords, s.Base.BurstWords) {
							for _, pd := range orInts(s.PipelineDepths, s.Base.CPU.Depth()) {
								cfg := s.Base
								cfg.DCache.SizeBytes = dsz
								cfg.DCache.Assoc = dassoc
								cfg.DCache.LineBytes = dline
								cfg.ICache.SizeBytes = isz
								cfg.CPU.MAC = mac
								cfg.CPU.PipelineDepth = pd
								cfg.CPU.Timing = cpu.TimingForDepth(pd)
								cfg.BurstWords = bw
								if cfg.Validate() == nil {
									out = append(out, cfg)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Candidate is one evaluated configuration point.
type Candidate struct {
	Config leon.Config
	Util   synth.Utilization
	// Cache behaviour predicted by trace replay.
	CacheStats cache.Stats
	MissRatio  float64
	// PredictedCycles models program cycles on this configuration.
	PredictedCycles float64
	// PredictedSeconds folds in the synthesized clock (bigger caches
	// run at lower fMax — the liquid trade-off).
	PredictedSeconds float64
	Fits             bool
}

// Options tunes exploration.
type Options struct {
	// Device bounds candidates (default synth.XCV2000E).
	Device synth.Device
	// FillPenalty is the modelled cycles per cache line fill (default
	// derived from the SRAM/adapter timing).
	FillPenalty float64
}

func (o Options) withDefaults() Options {
	if o.Device.Slices == 0 {
		o.Device = synth.XCV2000E
	}
	if o.FillPenalty == 0 {
		o.FillPenalty = 12
	}
	return o
}

// Explore evaluates every point of the space against the recorded
// trace and returns candidates ranked best-first (lowest predicted
// wall-clock time; ties by area). Points that do not fit the device
// are included with Fits=false and rank last.
func Explore(rec *trace.Recorder, space Space, opts Options) ([]Candidate, error) {
	opts = opts.withDefaults()
	cfgs := space.Enumerate()
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("archgen: empty configuration space")
	}
	events := rec.MemEvents()
	insts := float64(rec.Instructions())
	out := make([]Candidate, 0, len(cfgs))
	for _, cfg := range cfgs {
		util := synth.Estimate(cfg)
		c := Candidate{Config: cfg, Util: util}
		c.Fits = util.Slices <= opts.Device.Slices &&
			util.BlockRAMs <= opts.Device.BlockRAMs &&
			util.IOBs <= opts.Device.IOBs
		st, err := trace.Replay(events, cfg.DCache)
		if err != nil {
			return nil, fmt.Errorf("archgen: %w", err)
		}
		c.CacheStats = st
		c.MissRatio = st.MissRatio()
		fill := opts.FillPenalty * float64(cfg.DCache.LineBytes) / 32
		accesses := float64(st.Hits + st.Misses + st.WriteHits + st.WriteMiss)
		fills := float64(st.Fills) // read misses plus write-allocates
		writeTraffic := 0.0
		if cfg.DCache.Write == cache.WriteThrough {
			writeTraffic = 2 * float64(st.WriteHits+st.WriteMiss)
		} else {
			writeTraffic = fill * float64(st.WriteBacks)
		}
		branchExtra := float64(cfg.CPU.Depth()-5) * 0.15 * insts
		if branchExtra < 0 {
			branchExtra = 0
		}
		c.PredictedCycles = insts + accesses + fills*fill + writeTraffic + branchExtra
		c.PredictedSeconds = c.PredictedCycles / (util.FMaxMHz * 1e6)
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Fits != out[j].Fits {
			return out[i].Fits
		}
		if out[i].PredictedSeconds != out[j].PredictedSeconds {
			return out[i].PredictedSeconds < out[j].PredictedSeconds
		}
		return out[i].Util.Slices < out[j].Util.Slices
	})
	return out, nil
}

// Pregenerate synthesizes the top n fitting candidates into the
// reconfiguration cache, returning the images' keys.
func Pregenerate(m *reconfig.Manager, candidates []Candidate, n int) ([]string, error) {
	keys := make([]string, 0, n)
	for _, c := range candidates {
		if len(keys) >= n {
			break
		}
		if !c.Fits {
			continue
		}
		img, _, err := m.GetOrSynthesize(c.Config)
		if err != nil {
			return keys, fmt.Errorf("archgen: pregenerate: %w", err)
		}
		keys = append(keys, img.Key)
	}
	return keys, nil
}

// WideSpace extends the paper's sweep with the other §1 axes: data
// cache associativity and line size, the MAC unit and the pipeline
// depth — the "many points in a configuration space" the environment
// pre-generates images for.
func WideSpace(base leon.Config) Space {
	return Space{
		Base:           base,
		DCacheSizes:    []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10},
		DCacheAssocs:   []int{1, 2},
		DCacheLines:    []int{16, 32},
		MAC:            []bool{false, true},
		PipelineDepths: []int{5, 6},
	}
}
