package archgen

import (
	"testing"

	"liquidarch/internal/leon"
)

func TestWideSpaceExplore(t *testing.T) {
	rec := fig7Trace(t)
	space := WideSpace(leon.DefaultConfig())
	cfgs := space.Enumerate()
	if len(cfgs) != 5*2*2*2*2 {
		t.Fatalf("%d configs, want 80", len(cfgs))
	}
	cands, err := Explore(rec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(cfgs) {
		t.Fatalf("%d candidates", len(cands))
	}
	best := cands[0]
	if !best.Fits {
		t.Error("best candidate does not fit")
	}
	// The winner must clear the conflict cliff (≥4 KB or 2-way helps
	// only if capacity suffices; for the Fig. 7 stride it needs size).
	if best.Config.DCache.SizeBytes < 4<<10 && best.Config.DCache.Assoc == 1 {
		t.Errorf("best = %v", best.Config.DCache)
	}
	// All fitting candidates are sorted by predicted wall-clock.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Fits && cands[i].Fits &&
			cands[i-1].PredictedSeconds > cands[i].PredictedSeconds+1e-12 {
			t.Fatal("ranking broken")
		}
	}
}
