package archgen

import (
	"testing"

	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/synth"
	"liquidarch/internal/trace"
)

// fig7Trace records the paper's kernel on a small-cache system so the
// generator has something to improve.
func fig7Trace(t *testing.T) *trace.Recorder {
	t.Helper()
	src := `
int count[1024];
int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 65536; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    return x;
}`
	asmSrc, err := lcc.Compile(src, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Build(asmSrc, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = 1 << 10
	soc, err := leon.New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder()
	rec.Attach(soc.CPU)
	defer rec.Detach()
	if res, err := ctrl.Execute(img.Entry, 0); err != nil || res.Faulted {
		t.Fatalf("run: %v %+v", err, res)
	}
	return rec
}

func TestEnumeratePaperSpace(t *testing.T) {
	space := PaperSpace(leon.DefaultConfig())
	cfgs := space.Enumerate()
	if len(cfgs) != 5 {
		t.Fatalf("%d configs, want 5", len(cfgs))
	}
	sizes := map[int]bool{}
	for _, cfg := range cfgs {
		sizes[cfg.DCache.SizeBytes] = true
		// Untouched axes stay at base values.
		if cfg.ICache != leon.DefaultConfig().ICache {
			t.Error("icache drifted")
		}
	}
	for _, s := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		if !sizes[s] {
			t.Errorf("size %d missing", s)
		}
	}
}

func TestEnumerateCrossProductAndValidation(t *testing.T) {
	space := Space{
		Base:           leon.DefaultConfig(),
		DCacheSizes:    []int{1 << 10, 4 << 10},
		DCacheAssocs:   []int{1, 2},
		MAC:            []bool{false, true},
		PipelineDepths: []int{5, 7},
	}
	cfgs := space.Enumerate()
	if len(cfgs) != 16 {
		t.Fatalf("%d configs, want 16", len(cfgs))
	}
	// Depth axis must adjust the timing table.
	for _, cfg := range cfgs {
		if cfg.CPU.Depth() == 7 && cfg.CPU.Timing.Branch != 2 {
			t.Errorf("depth 7 branch penalty = %d", cfg.CPU.Timing.Branch)
		}
	}
	// Invalid combinations are dropped.
	bad := Space{Base: leon.DefaultConfig(), DCacheSizes: []int{3000}}
	if got := bad.Enumerate(); len(got) != 0 {
		t.Errorf("invalid size produced %d configs", len(got))
	}
}

func TestExploreRanksBiggerCacheFirst(t *testing.T) {
	rec := fig7Trace(t)
	space := PaperSpace(leon.DefaultConfig())
	cands, err := Explore(rec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Fatalf("%d candidates", len(cands))
	}
	best := cands[0]
	// The Fig. 7 kernel conflicts below 4 KB: the winner must be ≥4KB.
	if best.Config.DCache.SizeBytes < 4<<10 {
		t.Errorf("best candidate D$ = %d bytes", best.Config.DCache.SizeBytes)
	}
	// And must not be 16 KB: it costs fMax without cutting misses, so
	// 4 or 8 KB wins on predicted wall-clock.
	if best.Config.DCache.SizeBytes > 8<<10 {
		t.Errorf("best candidate overshoots to %d bytes", best.Config.DCache.SizeBytes)
	}
	// Ranking is by predicted seconds among fitting candidates.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Fits && cands[i].Fits &&
			cands[i-1].PredictedSeconds > cands[i].PredictedSeconds {
			t.Error("candidates not sorted by predicted time")
		}
	}
	// The 1 KB point predicts far more misses than the winner.
	var oneKB Candidate
	for _, c := range cands {
		if c.Config.DCache.SizeBytes == 1<<10 {
			oneKB = c
		}
	}
	if oneKB.MissRatio < 5*best.MissRatio {
		t.Errorf("1KB miss ratio %.4f vs best %.4f", oneKB.MissRatio, best.MissRatio)
	}
}

func TestExploreMarksUnfittable(t *testing.T) {
	rec := fig7Trace(t)
	space := Space{
		Base:        leon.DefaultConfig(),
		DCacheSizes: []int{4 << 10, 256 << 10}, // second cannot fit
	}
	cands, err := Explore(rec, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("%d candidates", len(cands))
	}
	if !cands[0].Fits || cands[1].Fits {
		t.Errorf("fit flags: %v %v", cands[0].Fits, cands[1].Fits)
	}
	if cands[1].Config.DCache.SizeBytes != 256<<10 {
		t.Error("unfittable candidate not ranked last")
	}
}

func TestExploreEmptySpace(t *testing.T) {
	rec := trace.NewRecorder()
	if _, err := Explore(rec, Space{Base: leon.Config{}}, Options{}); err == nil {
		t.Error("empty space accepted")
	}
}

func TestPregenerateTopCandidates(t *testing.T) {
	rec := fig7Trace(t)
	cands, err := Explore(rec, PaperSpace(leon.DefaultConfig()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := reconfig.NewManager(reconfig.NewCache(0), synth.Options{BitstreamBytes: 128})
	keys, err := Pregenerate(m, cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("pregenerated %d", len(keys))
	}
	if m.Cache().Len() != 3 {
		t.Errorf("cache holds %d", m.Cache().Len())
	}
	// The best candidate's image must now hit.
	if _, hit, err := m.GetOrSynthesize(cands[0].Config); err != nil || !hit {
		t.Errorf("best candidate missed after pregeneration (%v)", err)
	}
}
