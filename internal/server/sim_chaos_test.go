package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/client"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/sim"
)

// These are the simulated-fabric ports of the chaos acceptance tests:
// the same programs, the same fault intensities, the same assertions —
// but the storm runs on sim.Network under a virtual clock, so every
// retransmission timeout costs microseconds of real time instead of
// milliseconds, and the whole pinned-seed matrix runs here. The real-UDP
// originals in chaos_test.go / windowed_test.go keep one smoke seed each
// to prove the production socket path still survives a storm.

// simStorm is the headline fault mix on the fabric: 20% loss plus
// reordering and duplication, with sub-millisecond link latency so
// delivery rides the virtual timeline.
func simStorm() sim.LinkParams {
	return sim.LinkParams{
		Drop: 0.2, Reorder: 0.1, Dup: 0.1,
		Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond,
	}
}

// cleanLink is latency-only: the fault-free baseline path.
func cleanLink() sim.LinkParams {
	return sim.LinkParams{Latency: 200 * time.Microsecond}
}

// simBoard boots one LEON platform on the virtual clock.
func simBoard(t testing.TB, clk sim.Clock, ip [4]byte) *fpx.Platform {
	t.Helper()
	restoreGOMAXPROCS(t)
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	actrl := leon.NewAsyncController(ctrl)
	actrl.SetClock(clk)
	t.Cleanup(actrl.Close)
	return fpx.New(actrl, ip, 5001)
}

// startSimNode boots an n-board node on the world's fabric and serves
// it until cleanup, returning the node's fabric address.
func startSimNode(t testing.TB, w *sim.World, n int) net.Addr {
	t.Helper()
	boards := make([]*fpx.Platform, n)
	for i := range boards {
		boards[i] = simBoard(t, w.Clock, [4]byte{10, 0, 0, byte(2 + i)})
	}
	pc, err := w.Net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewNodeConn(pc, w.Clock, boards...)
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srv)
	return pc.LocalAddr()
}

// dialSim connects a client across the fabric with the chaos retry
// schedule (tuned to virtual milliseconds) and the given fault params
// installed on both directions of its link.
func dialSim(t testing.TB, w *sim.World, remote net.Addr, seed int64, p sim.LinkParams) (*client.Client, *sim.Conn) {
	t.Helper()
	conn, err := w.Net.Dial(remote)
	if err != nil {
		t.Fatal(err)
	}
	w.Net.SetLink(conn.LocalAddr(), remote, p)
	w.Net.SetLink(remote, conn.LocalAddr(), p)
	c := client.New(conn, w.Clock)
	t.Cleanup(func() { c.Close() })
	c.Timeout = 50 * time.Millisecond
	c.MaxTimeout = 400 * time.Millisecond
	c.Retries = 10
	c.PollInterval = time.Millisecond
	c.WaitTimeout = 60 * time.Second
	c.WaitHold = 20 * time.Millisecond
	c.SetSeed(seed)
	return c, conn
}

// simTotals are the storm-raged counters of one simulated run.
type simTotals struct {
	drops, reorders, retries uint64
}

// runNodeSim executes one full storm on a fresh world: an n-board node,
// one client per board, each driving load→start→result→readback of the
// same program through its own lossy link. Returns every board's final
// report and loaded-image head plus the aggregated fault counters.
func runNodeSim(t *testing.T, seed int64, n int, obj *asm.Object, p sim.LinkParams) ([]netproto.RunReport, [][]byte, simTotals) {
	t.Helper()
	w := sim.NewWorld(seed)
	t.Cleanup(w.Close)
	addr := startSimNode(t, w, n)

	clients := make([]*client.Client, n)
	conns := make([]*sim.Conn, n)
	for b := 0; b < n; b++ {
		clients[b], conns[b] = dialSim(t, w, addr, seed+int64(b), p)
		clients[b].Board = uint8(b)
	}

	var wg sync.WaitGroup
	reps := make([]netproto.RunReport, n)
	heads := make([][]byte, n)
	errs := make([]error, n)
	for b := 0; b < n; b++ {
		wg.Add(1)
		go func(b int, c *client.Client) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[b] = fmt.Errorf("panic: %v", r)
				}
			}()
			if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
				errs[b] = fmt.Errorf("load: %w", err)
				return
			}
			rep, err := c.Start(obj.Origin, 0)
			if err != nil {
				errs[b] = fmt.Errorf("start: %w", err)
				return
			}
			reps[b] = rep
			heads[b], errs[b] = c.ReadMemory(obj.Origin, 64)
		}(b, clients[b])
	}
	wg.Wait()
	for b := 0; b < n; b++ {
		if errs[b] != nil {
			t.Fatalf("board %d: %v", b, errs[b])
		}
	}

	var tot simTotals
	for b := 0; b < n; b++ {
		up := w.Net.LinkStats(conns[b].LocalAddr(), addr)
		down := w.Net.LinkStats(addr, conns[b].LocalAddr())
		tot.drops += up.Dropped + down.Dropped
		tot.reorders += up.Reordered + down.Reordered
		tot.retries += clients[b].Metrics().Snapshot().Counters["liquid_client_retries_total"]
	}
	return reps, heads, tot
}

// TestControlPlaneUnderChaosSim is the fabric port of the headline
// acceptance test: a full load→start→result cycle completes
// bit-identically under 20% loss plus reordering and duplication, for
// every pinned seed — and, because the fault schedule is a pure
// function of the seed, two executions of the same seed agree
// bit-for-bit with each other as well.
func TestControlPlaneUnderChaosSim(t *testing.T) {
	iters := 100_000
	if raceEnabled || testing.Short() {
		iters = 20_000
	}
	// Pad the image to ~11 chunks so the storm has enough traffic to
	// provably rage on every pinned seed.
	obj := assembleAt(t, countProg(iters)+"\t.space 8000\n")

	// Clean-path baseline on the same fabric.
	baseReps, baseHeads, _ := runNodeSim(t, 0, 1, obj, cleanLink())
	wantRep, wantHead := baseReps[0], baseHeads[0]
	if wantRep.Status != netproto.StatusOK || wantRep.Cycles == 0 {
		t.Fatalf("baseline report = %+v", wantRep)
	}

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			start := time.Now()
			reps1, heads1, tot1 := runNodeSim(t, seed, 1, obj, simStorm())
			reps2, heads2, tot2 := runNodeSim(t, seed, 1, obj, simStorm())
			tot := simTotals{
				drops:    tot1.drops + tot2.drops,
				reorders: tot1.reorders + tot2.reorders,
				retries:  tot1.retries + tot2.retries,
			}
			t.Logf("two simulated storms in %v (drops=%d reorders=%d retries=%d)",
				time.Since(start), tot.drops, tot.reorders, tot.retries)

			if reps1[0] != wantRep {
				t.Errorf("report diverged under chaos:\n got %+v\nwant %+v", reps1[0], wantRep)
			}
			if string(heads1[0]) != string(wantHead) {
				t.Errorf("loaded image diverged under chaos")
			}
			// Same seed, same storm: the second run must agree bit-for-bit.
			if reps1[0] != reps2[0] {
				t.Errorf("same seed, different reports:\n run1 %+v\n run2 %+v", reps1[0], reps2[0])
			}
			if string(heads1[0]) != string(heads2[0]) {
				t.Errorf("same seed, different loaded images")
			}
			// The storm must actually have raged.
			if tot.drops == 0 {
				t.Error("fabric injected no drops — test proved nothing")
			}
			if tot.reorders == 0 {
				t.Error("fabric injected no reorders — test proved nothing")
			}
			if tot.retries == 0 {
				t.Error("client never retried under 20% loss")
			}
		})
	}
}

// TestNodeUnderChaosSim is the fabric port of the deterministic soak: a
// 4-board node, four concurrent clients through four independently
// faulted links, every board's result bit-identical to the clean
// baseline — and the whole storm re-run to prove two executions of a
// seed agree. Runs the full matrix even in -short: virtual time makes
// the soak cheap.
func TestNodeUnderChaosSim(t *testing.T) {
	const boards = 4
	iters := 20_000
	obj := assembleAt(t, countProg(iters))

	baseReps, baseHeads, _ := runNodeSim(t, 0, 1, obj, cleanLink())
	wantRep, wantHead := baseReps[0], baseHeads[0]
	if wantRep.Status != netproto.StatusOK {
		t.Fatalf("baseline report = %+v", wantRep)
	}

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			start := time.Now()
			reps1, heads1, tot := runNodeSim(t, seed, boards, obj, simStorm())
			reps2, heads2, _ := runNodeSim(t, seed, boards, obj, simStorm())
			t.Logf("two %d-board storms in %v (drops=%d reorders=%d)",
				boards, time.Since(start), tot.drops, tot.reorders)
			for b := 0; b < boards; b++ {
				if reps1[b] != wantRep {
					t.Errorf("board %d report diverged:\n got %+v\nwant %+v", b, reps1[b], wantRep)
				}
				if string(heads1[b]) != string(wantHead) {
					t.Errorf("board %d loaded image diverged", b)
				}
				if reps1[b] != reps2[b] {
					t.Errorf("board %d: same seed, different reports:\n run1 %+v\n run2 %+v", b, reps1[b], reps2[b])
				}
				if string(heads1[b]) != string(heads2[b]) {
					t.Errorf("board %d: same seed, different loaded images", b)
				}
			}
			if tot.drops == 0 {
				t.Error("fabric injected no drops — test proved nothing")
			}
		})
	}
}

// TestWindowedLoadUnderLossSim is the fabric port of the pipelining
// acceptance test: a 32-chunk sliding-window load through 20% loss plus
// reordering lands bit-identical to a clean stop-and-wait load, the
// client's chunk accounting closes, and two runs of a seed agree.
func TestWindowedLoadUnderLossSim(t *testing.T) {
	const chunks = 32
	img := make([]byte, (chunks-1)*netproto.MaxChunkData+317)
	for i := range img {
		img[i] = byte(i*13 + i>>9)
	}

	// runLoad pushes img through a lossy link on a fresh world, then
	// reads the board's memory back over a clean link.
	runLoad := func(t *testing.T, seed int64, p sim.LinkParams, window int) ([]byte, *client.Client, simTotals) {
		t.Helper()
		w := sim.NewWorld(seed)
		t.Cleanup(w.Close)
		addr := startSimNode(t, w, 1)
		c, conn := dialSim(t, w, addr, seed, p)
		if window > 0 {
			c.Window = window
		}
		if err := c.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
			t.Fatalf("load under loss: %v", err)
		}
		check, _ := dialSim(t, w, addr, seed, cleanLink())
		got, err := check.ReadMemory(leon.DefaultLoadAddr, len(img))
		if err != nil {
			t.Fatalf("readback: %v", err)
		}
		up := w.Net.LinkStats(conn.LocalAddr(), addr)
		down := w.Net.LinkStats(addr, conn.LocalAddr())
		return got, c, simTotals{
			drops:    up.Dropped + down.Dropped,
			reorders: up.Reordered + down.Reordered,
			retries:  c.Metrics().Snapshot().Counters["liquid_client_retries_total"],
		}
	}

	// Clean stop-and-wait baseline.
	want, _, _ := runLoad(t, 0, cleanLink(), 1)
	if string(want) != string(img) {
		t.Fatal("baseline load did not faithfully store the image")
	}

	lossy := sim.LinkParams{
		Drop: 0.2, Reorder: 0.1,
		Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond,
	}
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			start := time.Now()
			got1, c, tot := runLoad(t, seed, lossy, 0)
			got2, _, _ := runLoad(t, seed, lossy, 0)
			t.Logf("two windowed loads in %v (drops=%d retries=%d)", time.Since(start), tot.drops, tot.retries)

			if string(got1) != string(want) {
				t.Error("windowed load under loss diverged from the clean stop-and-wait image")
			}
			if string(got1) != string(got2) {
				t.Error("same seed, different loaded images")
			}
			if tot.drops == 0 {
				t.Error("fabric injected no drops — test proved nothing")
			}

			// Accounting closes: chunks requested once each, resends all
			// visible in both counters.
			csnap := c.Metrics().Snapshot()
			loadReqs := csnap.Counter(`liquid_client_requests_total{cmd="load"}`)
			skipped := csnap.Counters["liquid_client_load_chunks_skipped_total"]
			if loadReqs+skipped != chunks {
				t.Errorf("requests{load}=%d + skipped=%d != %d chunks", loadReqs, skipped, chunks)
			}
			resends := csnap.Counters["liquid_client_load_chunk_resends_total"]
			retries := csnap.Counters["liquid_client_retries_total"]
			if resends == 0 {
				t.Error("no chunk resends under 20% loss — window never recovered anything")
			}
			if resends != retries {
				t.Errorf("chunk resends (%d) != retries (%d): a retransmission escaped the accounting", resends, retries)
			}
		})
	}
}
