package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/client"
	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/synth"
)

// reconfigSynth keeps the modelled ≈1 h synthesis observable for tens
// of milliseconds of real time, so polls can catch the in-flight
// states over the wire.
var reconfigSynth = synth.Options{BitstreamBytes: 256, TimeScale: 1e-5}

// startSystemNode boots n core-backed boards sharing one
// reconfiguration manager (the multi-board dedup arrangement) and
// serves them on loopback. The boot configuration is pre-generated so
// New never counts synthesis runs of its own.
func startSystemNode(t testing.TB, n int, opts synth.Options) (*Server, string, []*core.System, *reconfig.Manager) {
	t.Helper()
	restoreGOMAXPROCS(t)
	m := reconfig.NewManagerWorkers(reconfig.NewCache(0), opts, 4)
	if err := m.Pregenerate([]leon.Config{leon.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	systems := make([]*core.System, n)
	plats := make([]*fpx.Platform, n)
	for i := range systems {
		s, err := core.New(leon.DefaultConfig(), core.Options{
			Synth:   opts,
			Manager: m,
			IP:      [4]byte{10, 0, 0, byte(2 + i)},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		systems[i] = s
		plats[i] = s.Platform()
	}
	srv, err := NewNode("127.0.0.1:0", plats...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, serveNode(t, srv), systems, m
}

// specFor is the JSON reconfigure spec selecting a D-cache size.
func specFor(sizeBytes int) []byte {
	blob, _ := json.Marshal(core.Spec{DCacheBytes: sizeBytes})
	return blob
}

// TestReconfigureDedupOverWire is the tentpole's network-facing dedup
// proof: N clients concurrently reconfigure N boards of one node to
// the same configuration, and the shared synthesis service runs
// exactly once.
func TestReconfigureDedupOverWire(t *testing.T) {
	const boards = 4
	_, addr, _, m := startSystemNode(t, boards, reconfigSynth)
	base := m.Stats().SynthRuns

	var wg sync.WaitGroup
	errs := make([]error, boards)
	for i := 0; i < boards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			c.Board = uint8(i)
			if err := c.Reconfigure(specFor(8 << 10)); err != nil {
				errs[i] = fmt.Errorf("board %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if got := m.Stats().SynthRuns - base; got != 1 {
		t.Errorf("synthesis ran %d times for %d concurrent boards, want exactly 1", got, boards)
	}
}

// TestReconfigStatusLatencyDuringSynthesis: while a synthesis is in
// flight, CmdStatus and CmdReconfigStatus keep answering well under
// the control-plane latency target — the board's queue is NOT held
// through the modelled hour.
func TestReconfigStatusLatencyDuringSynthesis(t *testing.T) {
	slow := synth.Options{BitstreamBytes: 256, TimeScale: 3e-5} // ≈108 ms per point
	_, addr, _, _ := startSystemNode(t, 1, slow)
	c := dial(t, addr)

	st, err := c.ReconfigureAsync(specFor(8 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if st.Terminal() {
		t.Fatalf("miss acked terminally: %+v", st)
	}

	bound := 10 * time.Millisecond
	if raceEnabled {
		bound = 100 * time.Millisecond
	}
	sawInFlight := false
	for i := 0; i < 20; i++ {
		t0 := time.Now()
		if _, err := c.Status(); err != nil {
			t.Fatalf("status poll %d: %v", i, err)
		}
		if d := time.Since(t0); d > bound {
			t.Errorf("CmdStatus poll %d took %v during synthesis (bound %v)", i, d, bound)
		}
		t0 = time.Now()
		rst, err := c.ReconfigStatus()
		if err != nil {
			t.Fatalf("reconfig status poll %d: %v", i, err)
		}
		if d := time.Since(t0); d > bound {
			t.Errorf("CmdReconfigStatus poll %d took %v during synthesis (bound %v)", i, d, bound)
		}
		if !rst.Terminal() {
			sawInFlight = true
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !sawInFlight {
		t.Error("never observed an in-flight state; synthesis too fast for the poll loop")
	}
	if st, err := c.WaitReconfigure(context.Background()); err != nil || st.State != netproto.ReconfigApplied {
		t.Fatalf("final wait: %v %+v", err, st)
	}
}

// TestWaitReconfigureHeld: the server parks a CmdWaitReconfig exchange
// and answers the instant the swap lands — the client needs exactly
// one held exchange, not a poll loop.
func TestWaitReconfigureHeld(t *testing.T) {
	_, addr, _, _ := startSystemNode(t, 1, reconfigSynth)
	c := dial(t, addr)

	st, err := c.ReconfigureAsync(specFor(8 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if st.Terminal() {
		t.Fatalf("miss acked terminally: %+v", st)
	}
	final, err := c.WaitReconfigure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final.State != netproto.ReconfigApplied || final.CacheHit {
		t.Fatalf("held wait returned %+v", final)
	}

	// A second reconfigure to the now-cached point applies in the ack.
	st, err = c.ReconfigureAsync(specFor(4 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != netproto.ReconfigApplied || !st.CacheHit {
		t.Fatalf("cached reconfigure acked %+v, want immediate applied hit", st)
	}
}

// TestReconfigureDeferredBehindRun: a full swap requested while a
// program runs parks as ReconfigSwapping and lands when the run
// completes, without killing the run.
func TestReconfigureDeferredBehindRun(t *testing.T) {
	_, addr, systems, _ := startSystemNode(t, 1, synth.Options{BitstreamBytes: 256})
	c := dial(t, addr)

	obj := assembleAt(t, spinProg)
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := c.StartAsync(obj.Origin, 3_000_000); err != nil {
		t.Fatal(err)
	}

	// Swap to a configuration differing beyond the caches (SDRAM burst)
	// so the partial path cannot serve it: the swap must defer.
	spec, _ := json.Marshal(core.Spec{DCacheBytes: 8 << 10, BurstWords: 8})
	st, err := c.ReconfigureAsync(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Terminal() {
		t.Fatalf("swap applied under a live run: %+v", st)
	}

	// The run completes on its cycle budget; the deferred swap then
	// lands via the run-done pump.
	if rep, err := c.WaitResult(); err != nil || rep.Status == netproto.StatusRunning {
		t.Fatalf("run: %v %+v", err, rep)
	}
	final, err := c.WaitReconfigure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final.State != netproto.ReconfigApplied {
		t.Fatalf("deferred swap ended %+v", final)
	}
	if got := systems[0].Config().DCache.SizeBytes; got != 8<<10 {
		t.Errorf("D$ after deferred swap = %d", got)
	}
}

// TestPrewarmOverWire: one prewarm request queues a sweep on the
// synthesis pool; subsequent reconfigures to those points are hits.
func TestPrewarmOverWire(t *testing.T) {
	_, addr, _, m := startSystemNode(t, 1, synth.Options{BitstreamBytes: 256})
	c := dial(t, addr)

	specs := []json.RawMessage{
		json.RawMessage(specFor(2 << 10)),
		json.RawMessage(specFor(8 << 10)),
	}
	queued, err := c.Prewarm(specs)
	if err != nil {
		t.Fatal(err)
	}
	if queued != 2 {
		t.Errorf("prewarm queued %d, want 2", queued)
	}
	// Wait for the pool to drain, then both points must hit.
	deadline := time.Now().Add(10 * time.Second)
	for m.Cache().Len() < 3 { // boot config + 2 prewarmed
		if time.Now().After(deadline) {
			t.Fatalf("prewarm never completed: %d cached", m.Cache().Len())
		}
		time.Sleep(time.Millisecond)
	}
	for _, spec := range specs {
		st, err := c.ReconfigureAsync([]byte(spec))
		if err != nil {
			t.Fatal(err)
		}
		if st.State != netproto.ReconfigApplied || !st.CacheHit {
			t.Fatalf("post-prewarm reconfigure acked %+v, want immediate hit", st)
		}
	}

	// The reconfiguration service's gauges travel in the same CmdStats
	// snapshot every other instrument uses.
	blob, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("stats is not a metrics snapshot: %v\n%s", err, blob)
	}
	if got := snap.Gauges["liquid_reconfig_synth_runs"]; got < 3 {
		t.Errorf("liquid_reconfig_synth_runs = %v over the wire, want >= 3 (boot + 2 prewarmed)", got)
	}
	if got := snap.Gauges["liquid_reconfig_cache_entries"]; got < 3 {
		t.Errorf("liquid_reconfig_cache_entries = %v over the wire, want >= 3", got)
	}
}
