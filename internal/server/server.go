// Package server implements the Reconfiguration Server of Fig. 1: the
// network daemon that controls access to the FPX platform, sequencing
// the loading and execution of applications. It binds a real UDP
// socket; each datagram is re-wrapped into a synthetic IPv4/UDP frame
// so the FPX protocol wrappers and Control Packet Processor run on the
// exact bytes the hardware would see.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"liquidarch/internal/fpx"
	"liquidarch/internal/netproto"
)

// Server serves one FPX platform over UDP. Requests are handled
// strictly in arrival order: the LEON is a single execution resource
// and the reconfiguration server's job is to sequence access to it.
type Server struct {
	platform *fpx.Platform
	conn     *net.UDPConn

	// Log, when non-nil, receives one line per handled datagram.
	Log func(format string, args ...any)

	mu     sync.Mutex
	closed bool
}

// New binds a UDP socket at addr (e.g. "127.0.0.1:0") serving the
// given platform.
func New(platform *fpx.Platform, addr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &Server{platform: platform, conn: conn}, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Serve processes datagrams until Close is called. It returns nil on
// clean shutdown.
func (s *Server) Serve() error {
	buf := make([]byte, 64<<10)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("server: read: %w", err)
		}
		s.handle(buf[:n], peer)
	}
}

// handle re-wraps the datagram as the raw frame the FPX would receive,
// runs the hardware path, and relays response payloads to the peer.
func (s *Server) handle(payload []byte, peer *net.UDPAddr) {
	src := ipv4Of(peer.IP)
	frame := netproto.BuildFrame(src, s.platform.IP, uint16(peer.Port), s.platform.Port, payload)
	outs, err := s.platform.HandleFrame(frame)
	if err != nil {
		if s.Log != nil {
			s.Log("drop from %v: %v", peer, err)
		}
		return
	}
	for _, raw := range outs {
		f, err := netproto.ParseFrame(raw)
		if err != nil {
			continue // packet generator produced it; cannot happen
		}
		if _, err := s.conn.WriteToUDP(f.Payload, peer); err != nil && s.Log != nil {
			s.Log("send to %v: %v", peer, err)
		}
	}
	if s.Log != nil {
		s.Log("%v: %d byte request, %d responses", peer, len(payload), len(outs))
	}
}

// ipv4Of coerces an IP to 4 bytes (loopback-mapped for IPv6).
func ipv4Of(ip net.IP) [4]byte {
	var out [4]byte
	if v4 := ip.To4(); v4 != nil {
		copy(out[:], v4)
	} else {
		out = [4]byte{127, 0, 0, 1}
	}
	return out
}

// Close shuts the server down; Serve returns afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}
