// Package server implements the Reconfiguration Server of Fig. 1: the
// network daemon that controls access to the FPX platforms, sequencing
// the loading and execution of applications. It binds a real UDP
// socket; each datagram is re-wrapped into a synthetic IPv4/UDP frame
// so the FPX protocol wrappers and Control Packet Processor run on the
// exact bytes the hardware would see.
//
// A Server is a node hosting one or more boards (platforms), mirroring
// the four-port NID switch of Fig. 2. Datagrams carry a board id in
// the v2 control header (board 0 keeps the wire-compatible v1 header);
// the read loop only parses the header for routing and NEVER blocks on
// execution — each board has a bounded FIFO command queue drained by
// its own worker goroutine, so a long run on one board cannot delay a
// status poll on another, and a full queue applies backpressure with a
// CmdError "busy" response instead of unbounded buffering.
package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/netproto"
	"liquidarch/internal/sim"
	"liquidarch/internal/tracing"
)

// readBufBytes is the datagram receive buffer size (one UDP datagram
// never exceeds 64 KiB).
const readBufBytes = 64 << 10

// DefaultQueueCap is each board's command-queue bound. Beyond it the
// server answers CmdError "busy" — the client backs off and retries.
const DefaultQueueCap = 64

// maxParkedPerBoard bounds how many CmdWaitResult/CmdWaitReconfig
// exchanges one board worker will hold at once; beyond it waits are
// answered immediately (StatusRunning / the live ticket state),
// degrading to the client's poll loop instead of buffering
// unboundedly.
const maxParkedPerBoard = 64

// Parked-exchange kinds: what completion event releases the wait.
const (
	waitKindResult   = "result"   // CmdWaitResult, released on run completion
	waitKindReconfig = "reconfig" // CmdWaitReconfig, released when the swap lands
)

// maxHoldMs caps the server-side hold a client may request, so a
// forged HoldMs cannot pin worker state for minutes. A client wanting
// a longer wait simply re-issues the command.
const maxHoldMs = 10_000

// serverMetrics are the server-side instruments, registered on the
// node-wide registry (board 0's platform registry).
type serverMetrics struct {
	datagramsIn  *metrics.Counter
	datagramsOut *metrics.Counter
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	drops        *metrics.CounterVec
	sendErrors   *metrics.Counter
	handleDur    *metrics.HistogramVec
	parked       *metrics.Counter
	wakeups      *metrics.CounterVec
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		datagramsIn:  r.Counter("liquid_server_datagrams_in_total", "UDP datagrams received by the reconfiguration server."),
		datagramsOut: r.Counter("liquid_server_datagrams_out_total", "UDP datagrams sent back to clients."),
		bytesIn:      r.Counter("liquid_server_bytes_in_total", "Request payload bytes received."),
		bytesOut:     r.Counter("liquid_server_bytes_out_total", "Response payload bytes sent."),
		drops:        r.CounterVec("liquid_server_drops_total", "Requests that produced no response, by reason.", "reason"),
		sendErrors:   r.Counter("liquid_server_send_errors_total", "Response datagrams the socket refused to send."),
		handleDur:    r.HistogramVec("liquid_server_handled_duration_seconds", "Wall time spent handling one datagram end to end.", "cmd", metrics.DefSecondsBuckets),
		parked:       r.Counter("liquid_server_waits_parked_total", "CmdWaitResult exchanges parked on a board worker until run completion or hold expiry."),
		wakeups:      r.CounterVec("liquid_server_wait_wakeups_total", "Parked wait releases, by reason (done, expired, shutdown).", "reason"),
	}
}

// job is one routed datagram, owned by a board worker until processed.
type job struct {
	bufp    *[]byte // pooled backing array, returned after processing
	payload []byte  // the datagram bytes within bufp
	peer    *net.UDPAddr
	src     [4]byte // synthetic frame source (mapped peer IPv4)
	cmd     string  // command label for telemetry
	start   time.Time
	// qspan covers the time from dispatch to worker pickup (the
	// queue-wait hop of the exchange trace); zero when tracing is off.
	qspan tracing.SpanHandle
	// traceID is the exchange's resolved trace id — the one the packet
	// carried, or a server-assigned id for v1–v3 clients — passed down
	// so the platform's spans land in the same trace.
	traceID uint64
}

// Server serves one or more FPX platforms over UDP. Requests for the
// same board are handled strictly in arrival order — each LEON is a
// single execution resource and the reconfiguration server's job is to
// sequence access to it — while different boards run concurrently.
type Server struct {
	boards []*fpx.Platform
	conn   net.PacketConn
	clk    sim.Clock
	queues []chan job

	// Log, when non-nil, receives one line per handled datagram. It is
	// the legacy printf hook, kept as a compatibility shim over the
	// structured event log (see Events).
	Log func(format string, args ...any)

	m       serverMetrics
	events  *eventlog.Log
	tracer  *tracing.Collector
	bufs    sync.Pool
	wg      sync.WaitGroup
	waiters atomic.Int64 // CmdWaitResult exchanges currently parked, node-wide

	mu     sync.Mutex
	closed bool
}

// New binds a UDP socket at addr (e.g. "127.0.0.1:0") serving a single
// platform as board 0 — the historical one-board node.
func New(platform *fpx.Platform, addr string) (*Server, error) {
	return NewNode(addr, platform)
}

// NewNode binds a UDP socket at addr serving platforms as boards
// 0..len-1. Node telemetry (socket counters, queue depth, drops) is
// registered on board 0's metrics registry, so one snapshot covers the
// whole node's network face.
func NewNode(addr string, platforms ...*fpx.Platform) (*Server, error) {
	return newNode(addr, DefaultQueueCap, platforms...)
}

// newNode is NewNode with a configurable per-board queue bound (small
// bounds are used by backpressure tests).
func newNode(addr string, queueCap int, platforms ...*fpx.Platform) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return newNodeConn(conn, nil, queueCap, platforms...)
}

// NewNodeConn builds a node over an existing packet transport with an
// injected clock (nil = real time) — the entry point the deterministic
// simulation fabric uses. The conn's reads must yield *net.UDPAddr
// peers (sim.Network and real UDP sockets both do).
func NewNodeConn(conn net.PacketConn, clk sim.Clock, platforms ...*fpx.Platform) (*Server, error) {
	return newNodeConn(conn, clk, DefaultQueueCap, platforms...)
}

func newNodeConn(conn net.PacketConn, clk sim.Clock, queueCap int, platforms ...*fpx.Platform) (*Server, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("server: node needs at least one platform")
	}
	if len(platforms) > 256 {
		return nil, fmt.Errorf("server: board id is one byte; %d platforms exceed 256", len(platforms))
	}
	if queueCap < 1 {
		queueCap = 1
	}
	// Every board can pin a scheduler thread with a compute-bound run;
	// keep one spare so the UDP read loop and netpoller never wait for
	// the runtime's ~10 ms background poll. Scheduling only — simulated
	// timing is unaffected.
	if n := runtime.GOMAXPROCS(0); n < len(platforms)+1 {
		runtime.GOMAXPROCS(len(platforms) + 1)
	}
	s := &Server{
		boards: platforms,
		conn:   conn,
		clk:    sim.Or(clk),
		queues: make([]chan job, len(platforms)),
		m:      newServerMetrics(platforms[0].Metrics()),
		events: platforms[0].Events(),
	}
	s.bufs.New = func() any {
		b := make([]byte, readBufBytes)
		return &b
	}
	for i := range s.queues {
		s.queues[i] = make(chan job, queueCap)
	}
	platforms[0].Metrics().GaugeFunc("liquid_server_queue_depth",
		"Commands queued across all board workers (bounded; overflow answers busy).",
		func() float64 {
			total := 0
			for _, q := range s.queues {
				total += len(q)
			}
			return float64(total)
		})
	platforms[0].Metrics().GaugeFunc("liquid_server_wait_waiters",
		"CmdWaitResult exchanges currently parked across all board workers.",
		func() float64 { return float64(s.waiters.Load()) })
	return s, nil
}

// EnableTracing attaches one span collector to the whole node: the
// read loop records a queue-wait span per routed datagram and every
// board platform records its handle spans into the same collector, so
// one export shows the full server-side timeline of an exchange.
// Requests that carry no trace id (v1–v3 clients) get a server-
// assigned one at dispatch time. Call before Serve.
func (s *Server) EnableTracing(col *tracing.Collector) {
	s.tracer = col
	for _, p := range s.boards {
		p.EnableTracing(col)
	}
}

// Tracer returns the node's span collector (nil when tracing is
// disabled).
func (s *Server) Tracer() *tracing.Collector { return s.tracer }

// SetFlightRecorder attaches a flight recorder to every board
// platform (CmdError responses trigger a dump).
func (s *Server) SetFlightRecorder(fr *tracing.FlightRecorder) {
	for _, p := range s.boards {
		p.SetFlightRecorder(fr)
	}
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Boards returns how many platforms this node serves.
func (s *Server) Boards() int { return len(s.boards) }

// Metrics returns the node-wide telemetry registry (board 0's).
func (s *Server) Metrics() *metrics.Registry { return s.boards[0].Metrics() }

// Events returns the node-wide structured event log.
func (s *Server) Events() *eventlog.Log { return s.events }

// Serve processes datagrams until Close is called, returning nil on
// clean shutdown. The read loop only parses the control header (for
// board routing and telemetry labels) and enqueues; it never waits on
// a board, so the node stays responsive while programs execute.
// Receive buffers come from a sync.Pool and are owned by the board
// worker until the response is sent.
func (s *Server) Serve() error {
	for i, p := range s.boards {
		s.wg.Add(1)
		go s.worker(i, p, s.queues[i])
	}
	var err error
	for {
		bufp := s.bufs.Get().(*[]byte)
		buf := *bufp
		n, addr, rerr := s.conn.ReadFrom(buf)
		if rerr != nil {
			s.bufs.Put(bufp)
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed && !errors.Is(rerr, net.ErrClosed) {
				err = fmt.Errorf("server: read: %w", rerr)
			}
			break
		}
		peer, ok := addr.(*net.UDPAddr)
		if !ok {
			// A transport that does not speak UDP addressing cannot be
			// mapped into the synthetic frame source.
			s.m.drops.With("peer_addr").Inc()
			s.events.Warnf("non-UDP peer address", "peer", addr)
			s.bufs.Put(bufp)
			continue
		}
		s.dispatch(bufp, buf[:n], peer)
	}
	for _, q := range s.queues {
		close(q)
	}
	s.wg.Wait()
	return err
}

// dispatch routes one datagram to its board queue, applying the
// drop/backpressure policy. It runs on the read loop and must not
// block.
func (s *Server) dispatch(bufp *[]byte, payload []byte, peer *net.UDPAddr) {
	s.m.datagramsIn.Inc()
	s.m.bytesIn.Add(uint64(len(payload)))
	board := 0
	cmd := "invalid"
	hdr := netproto.Packet{Command: netproto.CmdStatus}
	if pkt, err := netproto.ParsePacket(payload); err == nil {
		cmd = netproto.CommandName(pkt.Command)
		board = int(pkt.Board)
		hdr = pkt
	}
	// Resolve the exchange's trace and open the queue-wait span. The
	// span is handed to the board worker inside the job and ended at
	// pickup, so its duration IS the queue wait; requests dropped on
	// the read loop end it here with the drop reason.
	var (
		qspan tracing.SpanHandle
		tid   uint64
	)
	if s.tracer != nil {
		tid = hdr.TraceID
		if tid == 0 {
			tid = s.tracer.NewTraceID()
		}
		qspan = s.tracer.Trace(tid).Start("queue").
			WithAttr("cmd", cmd).WithAttr("board", strconv.Itoa(board))
	}
	src, ok := ipv4Of(peer.IP)
	if !ok {
		// A peer address the synthetic IPv4 frame cannot carry: drop
		// and count instead of forging a source (the old code silently
		// coerced non-v4 peers to 127.0.0.1).
		s.m.drops.With("peer_addr").Inc()
		s.events.Warnf("unmappable peer address", "peer", peer)
		s.logf("drop from %v: unmappable peer address", peer)
		s.bufs.Put(bufp)
		qspan.WithAttr("drop", "peer_addr").End()
		return
	}
	if board >= len(s.boards) {
		s.m.drops.With("bad_board").Inc()
		s.replyError(peer, hdr, fmt.Sprintf("no board %d on this node (%d boards)", board, len(s.boards)))
		s.bufs.Put(bufp)
		qspan.WithAttr("drop", "bad_board").End()
		return
	}
	j := job{bufp: bufp, payload: payload, peer: peer, src: src, cmd: cmd, start: s.clk.Now(), qspan: qspan, traceID: tid}
	select {
	case s.queues[board] <- j:
	default:
		// Bounded queue full: backpressure, not buffering.
		s.m.drops.With("busy").Inc()
		s.replyError(peer, hdr, fmt.Sprintf("board %d busy (queue full)", board))
		s.bufs.Put(bufp)
		qspan.WithAttr("drop", "busy").End()
	}
}

// replyError sends a CmdError straight from the read loop (for
// failures the board worker never sees: bad board, full queue). The
// request's board and exchange seq are echoed so a sequencing client
// attributes the error to the right request.
func (s *Server) replyError(peer *net.UDPAddr, req netproto.Packet, msg string) {
	pkt := netproto.Packet{
		Command: netproto.CmdError,
		Board:   req.Board,
		Seq:     req.Seq,
		HasSeq:  req.HasSeq,
		Body:    netproto.ErrorResp{Code: req.Command, Msg: msg}.Marshal(),
	}
	raw := pkt.Marshal()
	if n, err := s.conn.WriteTo(raw, peer); err != nil {
		s.m.sendErrors.Inc()
	} else {
		s.m.datagramsOut.Inc()
		s.m.bytesOut.Add(uint64(n))
	}
}

// parkedWait is one CmdWaitResult or CmdWaitReconfig exchange held by
// a board worker until its completion event fires, the hold expires,
// or the node shuts down. Entries are owned by the worker goroutine —
// no locking.
type parkedWait struct {
	j        job
	kind     string // waitKindResult or waitKindReconfig
	key      string // peer|seq identity for retransmit suppression ("" when the request carried no seq)
	deadline time.Time
	span     tracing.SpanHandle
}

// worker drains one board's command queue in arrival order. The
// goroutine carries pprof labels (board=N, plus cmd=... around each
// job) so CPU profiles from /debug/pprof attribute time per board and
// per command.
//
// Beyond plain draining, the worker is the board's waiter registry:
// a CmdWaitResult that arrives while the board is running is parked
// (bounded count, bounded hold) instead of answered, and replayed
// through the normal handler the instant the AsyncController's
// completion hook fires — so a waiting client learns of completion at
// network latency rather than at its poll interval. Parking keeps the
// dedup guarantees intact because the exchange is processed exactly
// once, on this goroutine, at release time; a retransmit of a
// currently-parked exchange is dropped silently (the parked original
// will answer with the same seq).
func (s *Server) worker(board int, p *fpx.Platform, queue chan job) {
	defer s.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("board", strconv.Itoa(board)), func(ctx context.Context) {
		runJob := func(j job) {
			pprof.Do(ctx, pprof.Labels("cmd", j.cmd), func(context.Context) {
				if err := s.process(p, j); err != nil {
					s.events.Warnf("request dropped", "peer", j.peer, "board", board, "err", err)
					s.logf("drop from %v: %v", j.peer, err)
				}
			})
			s.bufs.Put(j.bufp)
		}

		// wake carries at most one token: the completion hook runs on the
		// board's actor goroutine and must never block, and one token is
		// enough — the worker releases every parked waiter per token.
		wake := make(chan struct{}, 1)
		canPark := p.SetRunDoneHook(func() {
			select {
			case wake <- struct{}{}:
			default:
			}
		})
		// rwake is the reconfiguration twin: the core's ticket watcher
		// signals it when an asynchronous synthesis completes, and the
		// worker pumps the swap HERE — this goroutine is the one SoC
		// mutation is confined to — before releasing reconfig waiters.
		rwake := make(chan struct{}, 1)
		canParkReconfig := p.SetReconfigWakeHook(func() {
			select {
			case rwake <- struct{}{}:
			default:
			}
		})

		var parked []parkedWait
		release := func(i int, reason string) {
			e := parked[i]
			parked = append(parked[:i], parked[i+1:]...)
			s.waiters.Add(-1)
			s.m.wakeups.With(reason).Inc()
			e.span.WithAttr("wake", reason).End()
			runJob(e.j)
		}
		releaseKind := func(kind, reason string) {
			for i := 0; i < len(parked); {
				if parked[i].kind == kind {
					release(i, reason)
				} else {
					i++
				}
			}
		}

		for {
			// Arm a deadline only while something is parked.
			var (
				timer  *sim.Timer
				timerC <-chan time.Time
			)
			if len(parked) > 0 {
				earliest := parked[0].deadline
				for _, e := range parked[1:] {
					if e.deadline.Before(earliest) {
						earliest = e.deadline
					}
				}
				timer = s.clk.NewTimer(s.clk.Until(earliest))
				timerC = timer.C
			}

			select {
			case j, ok := <-queue:
				if timer != nil {
					timer.Stop()
				}
				if !ok {
					for len(parked) > 0 {
						release(0, "shutdown")
					}
					return
				}
				j.qspan.End() // queue wait is over; processing begins
				if pw, keep := s.tryPark(p, j, canPark, canParkReconfig, parked, wake, rwake); keep {
					parked = append(parked, pw)
					continue
				} else if pw.key == dupSentinel {
					// Retransmit of a currently-parked exchange: the parked
					// original will answer; this copy is dropped.
					s.bufs.Put(j.bufp)
					continue
				}
				runJob(j)

			case <-wake:
				if timer != nil {
					timer.Stop()
				}
				// Run complete: every parked result waiter gets its (now
				// final) answer, in park order — and a full swap that was
				// deferred behind this run can land now (ReconfigInFlight
				// pumps through ReconfigStatusFn on this goroutine).
				releaseKind(waitKindResult, "done")
				if !p.ReconfigInFlight() {
					releaseKind(waitKindReconfig, "done")
				}

			case <-rwake:
				if timer != nil {
					timer.Stop()
				}
				// Synthesis complete: pump the swap on this goroutine and,
				// once the reconfiguration is terminal, answer its waiters.
				// Still-in-flight means the swap is deferred behind a run
				// (ReconfigSwapping) — the run-done wake will retry.
				if !p.ReconfigInFlight() {
					releaseKind(waitKindReconfig, "done")
				}

			case <-timerC:
				now := s.clk.Now()
				for i := 0; i < len(parked); {
					if !parked[i].deadline.After(now) {
						// Hold expired mid-run: the handler answers
						// StatusRunning and the client re-issues the wait.
						release(i, "expired")
					} else {
						i++
					}
				}
			}
		}
	})
}

// dupSentinel marks a tryPark result meaning "drop this job: it is a
// retransmit of an exchange already parked".
const dupSentinel = "\x00dup"

// tryPark decides whether job j should be parked. It returns
// (entry, true) to park, (zero, false) to process normally, or
// (entry with key==dupSentinel, false) when j duplicates a parked
// exchange and must be dropped.
func (s *Server) tryPark(p *fpx.Platform, j job, canPark, canParkReconfig bool, parked []parkedWait, wake, rwake chan struct{}) (parkedWait, bool) {
	pkt, err := netproto.ParsePacket(j.payload)
	if err != nil {
		return parkedWait{}, false
	}
	var kind string
	switch pkt.Command {
	case netproto.CmdWaitResult:
		// A platform emulating a pre-rev-5 command set rejects the
		// command outright — never park what dispatch will refuse.
		if !canPark || p.CmdRev() < 5 {
			return parkedWait{}, false
		}
		kind = waitKindResult
	case netproto.CmdWaitReconfig:
		if !canParkReconfig || p.CmdRev() < 6 {
			return parkedWait{}, false
		}
		kind = waitKindReconfig
	default:
		return parkedWait{}, false
	}
	key := ""
	if pkt.HasSeq {
		key = j.peer.String() + "|" + strconv.Itoa(int(pkt.Seq))
		for _, e := range parked {
			if e.key == key {
				s.m.drops.With("parked_dup").Inc()
				s.events.Debugf("parked wait retransmit dropped", "peer", j.peer, "seq", pkt.Seq)
				return parkedWait{key: dupSentinel}, false
			}
		}
	}
	req, rerr := netproto.ParseWaitResultReq(pkt.Body)
	if rerr != nil || req.HoldMs == 0 {
		return parkedWait{}, false
	}
	holdMs := req.HoldMs
	if holdMs > maxHoldMs {
		holdMs = maxHoldMs
	}
	if len(parked) >= maxParkedPerBoard {
		return parkedWait{}, false
	}
	kindParked := 0
	for _, e := range parked {
		if e.kind == kind {
			kindParked++
		}
	}
	if kindParked == 0 {
		// Drain any stale wake token from a previous completion BEFORE
		// checking the state: drain-then-check cannot lose a wakeup (a
		// completion after the drain re-sends the token), while
		// check-then-drain could eat the very token this waiter needs.
		ch := wake
		if kind == waitKindReconfig {
			ch = rwake
		}
		select {
		case <-ch:
		default:
		}
	}
	if kind == waitKindResult {
		if p.Control().State() != leon.StateRunning {
			return parkedWait{}, false // answer immediately: result is already final
		}
	} else if !p.ReconfigInFlight() {
		// Already terminal (the check pumps any ready swap first):
		// answer immediately through the normal handler.
		return parkedWait{}, false
	}
	var span tracing.SpanHandle
	if s.tracer != nil {
		span = s.tracer.Trace(j.traceID).Start("park").
			WithAttr("cmd", j.cmd).WithAttr("board", strconv.Itoa(int(pkt.Board)))
	}
	s.m.parked.Inc()
	s.waiters.Add(1)
	return parkedWait{
		j:        j,
		kind:     kind,
		key:      key,
		deadline: s.clk.Now().Add(time.Duration(holdMs) * time.Millisecond),
		span:     span,
	}, true
}

// process re-wraps the datagram as the raw frame the FPX would
// receive, runs the hardware path, and relays response payloads to the
// peer. Every failure is returned (and counted by reason) rather than
// silently swallowed.
func (s *Server) process(p *fpx.Platform, j job) error {
	frame := netproto.BuildFrame(j.src, p.IP, uint16(j.peer.Port), p.Port, j.payload)
	outs, err := p.HandleFrameTraced(frame, j.traceID)
	if err != nil {
		s.m.drops.With("platform").Inc()
		return err
	}
	for _, raw := range outs {
		f, err := netproto.ParseFrame(raw)
		if err != nil {
			// The packet generator produced this frame itself; a parse
			// failure here is a platform bug and must be loud, not a
			// silent continue.
			s.m.drops.With("response_parse").Inc()
			return fmt.Errorf("server: generated response unparseable: %w", err)
		}
		n, err := s.conn.WriteTo(f.Payload, j.peer)
		if err != nil {
			s.m.sendErrors.Inc()
			return fmt.Errorf("server: send to %v: %w", j.peer, err)
		}
		s.m.datagramsOut.Inc()
		s.m.bytesOut.Add(uint64(n))
	}
	s.m.handleDur.With(j.cmd).Observe(s.clk.Since(j.start).Seconds())
	s.events.Debugf("handled", "peer", j.peer, "cmd", j.cmd, "bytes", len(j.payload), "responses", len(outs))
	s.logf("%v: %d byte request, %d responses", j.peer, len(j.payload), len(outs))
	return nil
}

// logf feeds the legacy printf hook when installed.
func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

// ipv4Of maps an IP to 4 bytes for the synthetic frame source.
// IPv4 and IPv4-mapped-IPv6 peers map exactly; anything else reports
// false (counted as drops{peer_addr} by the caller) instead of being
// forged into a loopback source.
func ipv4Of(ip net.IP) ([4]byte, bool) {
	var out [4]byte
	v4 := ip.To4()
	if v4 == nil {
		return out, false
	}
	copy(out[:], v4)
	return out, true
}

// Close shuts the server down; Serve returns afterwards (after the
// board workers drain their queues).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}
