// Package server implements the Reconfiguration Server of Fig. 1: the
// network daemon that controls access to the FPX platform, sequencing
// the loading and execution of applications. It binds a real UDP
// socket; each datagram is re-wrapped into a synthetic IPv4/UDP frame
// so the FPX protocol wrappers and Control Packet Processor run on the
// exact bytes the hardware would see.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"liquidarch/internal/fpx"
	"liquidarch/internal/metrics"
	"liquidarch/internal/metrics/eventlog"
	"liquidarch/internal/netproto"
)

// readBufBytes is the datagram receive buffer size (one UDP datagram
// never exceeds 64 KiB).
const readBufBytes = 64 << 10

// serverMetrics are the server-side instruments, registered on the
// platform's node-wide registry.
type serverMetrics struct {
	datagramsIn  *metrics.Counter
	datagramsOut *metrics.Counter
	bytesIn      *metrics.Counter
	bytesOut     *metrics.Counter
	drops        *metrics.CounterVec
	sendErrors   *metrics.Counter
	handleDur    *metrics.HistogramVec
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	return serverMetrics{
		datagramsIn:  r.Counter("liquid_server_datagrams_in_total", "UDP datagrams received by the reconfiguration server."),
		datagramsOut: r.Counter("liquid_server_datagrams_out_total", "UDP datagrams sent back to clients."),
		bytesIn:      r.Counter("liquid_server_bytes_in_total", "Request payload bytes received."),
		bytesOut:     r.Counter("liquid_server_bytes_out_total", "Response payload bytes sent."),
		drops:        r.CounterVec("liquid_server_drops_total", "Requests that produced no response, by reason.", "reason"),
		sendErrors:   r.Counter("liquid_server_send_errors_total", "Response datagrams the socket refused to send."),
		handleDur:    r.HistogramVec("liquid_server_handled_duration_seconds", "Wall time spent handling one datagram end to end.", "cmd", metrics.DefSecondsBuckets),
	}
}

// Server serves one FPX platform over UDP. Requests are handled
// strictly in arrival order: the LEON is a single execution resource
// and the reconfiguration server's job is to sequence access to it.
type Server struct {
	platform *fpx.Platform
	conn     *net.UDPConn

	// Log, when non-nil, receives one line per handled datagram. It is
	// the legacy printf hook, kept as a compatibility shim over the
	// structured event log (see Events).
	Log func(format string, args ...any)

	m      serverMetrics
	events *eventlog.Log
	bufs   sync.Pool

	mu     sync.Mutex
	closed bool
}

// New binds a UDP socket at addr (e.g. "127.0.0.1:0") serving the
// given platform. Server telemetry is registered on the platform's
// metrics registry, so one snapshot covers socket and hardware path.
func New(platform *fpx.Platform, addr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		platform: platform,
		conn:     conn,
		m:        newServerMetrics(platform.Metrics()),
		events:   platform.Events(),
	}
	s.bufs.New = func() any {
		b := make([]byte, readBufBytes)
		return &b
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Metrics returns the node-wide telemetry registry (shared with the
// platform).
func (s *Server) Metrics() *metrics.Registry { return s.platform.Metrics() }

// Events returns the node-wide structured event log.
func (s *Server) Events() *eventlog.Log { return s.events }

// Serve processes datagrams until Close is called. It returns nil on
// clean shutdown. Receive buffers come from a sync.Pool so the loop
// stays allocation-free and ready for concurrent handling.
func (s *Server) Serve() error {
	for {
		bufp := s.bufs.Get().(*[]byte)
		buf := *bufp
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			s.bufs.Put(bufp)
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("server: read: %w", err)
		}
		if err := s.handle(buf[:n], peer); err != nil {
			s.events.Warnf("request dropped", "peer", peer, "err", err)
			s.logf("drop from %v: %v", peer, err)
		}
		s.bufs.Put(bufp)
	}
}

// logf feeds the legacy printf hook when installed.
func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

// handle re-wraps the datagram as the raw frame the FPX would receive,
// runs the hardware path, and relays response payloads to the peer.
// Every failure is returned (and counted by reason) rather than
// silently swallowed.
func (s *Server) handle(payload []byte, peer *net.UDPAddr) error {
	start := time.Now()
	s.m.datagramsIn.Inc()
	s.m.bytesIn.Add(uint64(len(payload)))
	cmd := "invalid"
	if pkt, err := netproto.ParsePacket(payload); err == nil {
		cmd = netproto.CommandName(pkt.Command)
	}

	src := ipv4Of(peer.IP)
	frame := netproto.BuildFrame(src, s.platform.IP, uint16(peer.Port), s.platform.Port, payload)
	outs, err := s.platform.HandleFrame(frame)
	if err != nil {
		s.m.drops.With("platform").Inc()
		return err
	}
	for _, raw := range outs {
		f, err := netproto.ParseFrame(raw)
		if err != nil {
			// The packet generator produced this frame itself; a parse
			// failure here is a platform bug and must be loud, not a
			// silent continue.
			s.m.drops.With("response_parse").Inc()
			return fmt.Errorf("server: generated response unparseable: %w", err)
		}
		n, err := s.conn.WriteToUDP(f.Payload, peer)
		if err != nil {
			s.m.sendErrors.Inc()
			return fmt.Errorf("server: send to %v: %w", peer, err)
		}
		s.m.datagramsOut.Inc()
		s.m.bytesOut.Add(uint64(n))
	}
	s.m.handleDur.With(cmd).ObserveSince(start)
	s.events.Debugf("handled", "peer", peer, "cmd", cmd, "bytes", len(payload), "responses", len(outs))
	s.logf("%v: %d byte request, %d responses", peer, len(payload), len(outs))
	return nil
}

// ipv4Of coerces an IP to 4 bytes (loopback-mapped for IPv6).
func ipv4Of(ip net.IP) [4]byte {
	var out [4]byte
	if v4 := ip.To4(); v4 != nil {
		copy(out[:], v4)
	} else {
		out = [4]byte{127, 0, 0, 1}
	}
	return out
}

// Close shuts the server down; Serve returns afterwards.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return s.conn.Close()
}
