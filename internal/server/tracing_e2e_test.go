package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"liquidarch/internal/chaos"
	"liquidarch/internal/fpx"
	"liquidarch/internal/netproto"
	"liquidarch/internal/tracing"
)

// spanCounts tallies span names per source in a Chrome export.
func spanCounts(t *testing.T, data []byte) (map[string]int, map[string]string) {
	t.Helper()
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	procs := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			procs[ev.Pid] = ev.Args["name"]
		}
	}
	counts := map[string]int{}
	traceIDs := map[string]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		key := procs[ev.Pid] + "/" + ev.Name
		counts[key]++
		traceIDs[ev.Args["trace"]] = ev.Name
	}
	return counts, traceIDs
}

// TestTracedExchangeUnderChaos is the tracing acceptance test: a full
// traced session against a 2-board node behind the chaos relay (pinned
// seed, 20% loss + reorder + dup both ways) produces one merged Chrome
// timeline where the client's retries, the server's queue waits, the
// board's run slices and the chaos layer's fault annotations all share
// a single trace id — and the client's retry-span count equals its
// retries metric.
func TestTracedExchangeUnderChaos(t *testing.T) {
	iters := 50_000
	if raceEnabled || testing.Short() {
		iters = 20_000
	}
	obj := assembleAt(t, countProg(iters))
	const seed = 42

	// 2-board node, tracing enabled before the first datagram.
	boards := []*fpx.Platform{
		newBoard(t, [4]byte{10, 0, 0, 2}),
		newBoard(t, [4]byte{10, 0, 0, 3}),
	}
	srv, err := NewNode("127.0.0.1:0", boards...)
	if err != nil {
		t.Fatal(err)
	}
	serverCol := tracing.New("server")
	srv.EnableTracing(serverCol)
	addr := serveNode(t, srv)

	chaosCol := tracing.New("chaos")
	proxy := chaosProxy(t, addr, chaos.Config{
		Seed:   seed,
		Up:     stormFaults(),
		Down:   stormFaults(),
		Tracer: chaosCol,
	})

	c := dialChaos(t, proxy.Addr().String(), seed)
	c.Board = 1
	clientCol := tracing.New("client")
	c.Tracer = clientCol
	c.TraceID = clientCol.NewTraceID()

	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := c.Start(obj.Origin, 0)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Fatalf("report = %+v", rep)
	}
	retries := c.Metrics().Snapshot().Counters["liquid_client_retries_total"]
	if retries == 0 {
		t.Fatal("client never retried under 20% loss — test proved nothing")
	}

	// Give the board actor a beat to finish the run's trailing spans,
	// then merge all three vantage points.
	time.Sleep(50 * time.Millisecond)
	data, err := tracing.ChromeJSON(
		clientCol.TakeTrace(c.TraceID),
		serverCol.TakeTrace(c.TraceID),
		chaosCol.TakeTrace(c.TraceID),
	)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if _, err := tracing.ValidateChrome(data); err != nil {
		t.Fatalf("merged timeline invalid: %v", err)
	}

	counts, traceIDs := spanCounts(t, data)
	if len(traceIDs) != 1 {
		t.Errorf("merged export spans %d trace ids, want exactly 1: %v", len(traceIDs), traceIDs)
	}
	want := fmt.Sprintf("%016x", c.TraceID)
	for id := range traceIDs {
		if id != want {
			t.Errorf("span trace id %s != client id %s", id, want)
		}
	}
	if got := counts["client/retry"]; uint64(got) != retries {
		t.Errorf("retry spans = %d, retries metric = %d — they must agree", got, retries)
	}
	if counts["server/queue"] == 0 {
		t.Error("no server queue-wait spans in the merged timeline")
	}
	if counts["server/slice"] == 0 {
		t.Error("no board run-slice spans in the merged timeline")
	}
	faults := 0
	for key, n := range counts {
		if strings.HasPrefix(key, "chaos/fault:") {
			faults += n
		}
	}
	if faults == 0 {
		t.Error("no chaos fault annotations in the merged timeline")
	}
}

// TestFlightRecordServesFailedExchange is the black-box acceptance
// path: after a forced CmdError, /debug/flightrecord returns a dump
// containing the failed exchange's trace.
func TestFlightRecordServesFailedExchange(t *testing.T) {
	boards := []*fpx.Platform{
		newBoard(t, [4]byte{10, 0, 0, 2}),
		newBoard(t, [4]byte{10, 0, 0, 3}),
	}
	srv, err := NewNode("127.0.0.1:0", boards...)
	if err != nil {
		t.Fatal(err)
	}
	col := tracing.New("server")
	srv.EnableTracing(col)
	fr := &tracing.FlightRecorder{
		Collectors: []*tracing.Collector{col},
		Events:     srv.Events(),
		Dir:        t.TempDir(),
	}
	srv.SetFlightRecorder(fr)
	addr := serveNode(t, srv)

	c := dial(t, addr)
	clientCol := tracing.New("client")
	c.Tracer = clientCol
	c.TraceID = clientCol.NewTraceID()

	// Start with nothing loaded → the platform answers CmdError and the
	// flight recorder dumps.
	if err := c.StartAsync(0, 10); err == nil {
		t.Fatal("start without load unexpectedly succeeded")
	}
	if fr.Dumps() != 1 {
		t.Fatalf("flight dumps = %d, want 1", fr.Dumps())
	}

	h := tracing.NewDebugHandler(nil, fr, srv.Events(), col)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecord", nil))
	var dump tracing.FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("/debug/flightrecord: %v", err)
	}
	found := false
	for _, td := range dump.Traces {
		if td.ID == c.TraceID {
			found = true
			for _, sp := range td.Spans {
				if sp.Name == "handle:start" {
					for _, a := range sp.Attrs {
						if a.Key == "status" && a.Value != "error" {
							t.Errorf("failed exchange span status %q, want error", a.Value)
						}
					}
				}
			}
		}
	}
	if !found {
		t.Errorf("failed exchange's trace %#x not in flight record (%d traces)", c.TraceID, len(dump.Traces))
	}
}

// TestRetrySpansMatchRetriesMetric is the narrow chaos-harness check:
// one traced status exchange at a time under 20% loss, for every pinned
// seed — across the whole session the number of "retry" spans recorded
// by the client equals its retries counter exactly.
func TestRetrySpansMatchRetriesMetric(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			platform := fpx.New(fpx.NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
			srv, err := New(platform, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			addr := serveNode(t, srv)
			proxy := chaosProxy(t, addr, chaos.Config{
				Seed: seed,
				Up:   chaos.Faults{Drop: 0.2},
				Down: chaos.Faults{Drop: 0.2},
			})

			c := dialChaos(t, proxy.Addr().String(), seed)
			col := tracing.New("client")
			c.Tracer = col
			c.TraceID = col.NewTraceID()

			for i := 0; i < 20; i++ {
				if _, err := c.Status(); err != nil {
					t.Fatalf("status %d: %v", i, err)
				}
			}
			retries := c.Metrics().Snapshot().Counters["liquid_client_retries_total"]

			spans := 0
			for _, td := range col.TakeTrace(c.TraceID) {
				for _, sp := range td.Spans {
					if sp.Name == "retry" {
						spans++
					}
				}
			}
			if uint64(spans) != retries {
				t.Errorf("retry spans = %d, retries metric = %d", spans, retries)
			}
		})
	}
}
