package server

import (
	"fmt"
	"sync"
	"testing"

	"liquidarch/internal/client"
)

// benchIters sizes the benchmark program: ~95k loop iterations is
// ~285k instructions ≈ 5 ms of simulated execution — longer than the
// worst observed start-ack latency (so a completion wait reliably
// finds the run in flight), so the figure measures how fast the
// control plane turns a finished run around. With the server-held
// wait the client learns of completion at network latency, and the
// regime is program-bound rather than poll-bound.
const benchIters = 95_000

// BenchmarkNodeConcurrentClients measures complete run round trips per
// second (load once, then StartAsync + WaitResult per op) through a
// node with 1 and 4 boards, 1 client per board, with the stock client
// defaults — the documented configuration, not a detuned poll. With
// the server-held wait each client drives its board back-to-back, so
// the figure is simulation-bound: on a single-CPU host one board
// already saturates the simulator and the 4-board aggregate holds
// steady instead of scaling — see BENCH_node.json.
func BenchmarkNodeConcurrentClients(b *testing.B) {
	for _, nBoards := range []int{1, 4} {
		b.Run(fmt.Sprintf("boards=%d", nBoards), func(b *testing.B) {
			_, addr := startNode(b, nBoards)
			obj := assembleAt(b, countProg(benchIters))
			clients := make([]*client.Client, nBoards)
			for i := range clients {
				c := dial(b, addr)
				c.Board = uint8(i)
				if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
					b.Fatal(err)
				}
				clients[i] = c
			}

			b.ResetTimer()
			var wg sync.WaitGroup
			for i, c := range clients {
				iters := b.N / nBoards
				if i < b.N%nBoards {
					iters++
				}
				wg.Add(1)
				go func(c *client.Client, iters int) {
					defer wg.Done()
					for j := 0; j < iters; j++ {
						if err := c.StartAsync(obj.Origin, 0); err != nil {
							b.Error(err)
							return
						}
						if _, err := c.WaitResult(); err != nil {
							b.Error(err)
							return
						}
					}
				}(c, iters)
			}
			wg.Wait()
			b.StopTimer()
			runsPerSec := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(runsPerSec, "runs/s")
			if nBoards == 1 {
				gateAndEmitLoadBench(b, runsPerSec)
			}
		})
	}
}
