package server

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/client"
)

// benchIters sizes the benchmark program: ~95k loop iterations is
// ~285k instructions ≈ 5 ms of simulated execution — longer than the
// worst observed start-ack latency (so the first completion poll
// reliably finds the run in flight), short against the 40 ms poll
// interval, so a client spends most of each run waiting. That is the
// regime the multi-board node exists for: with N boards the waits
// overlap and aggregate throughput scales even on a single-CPU host.
const benchIters = 95_000

// benchPoll is the completion-poll interval used by the benchmark
// clients (cranked up from the 2 ms default to make each run
// poll-latency-dominated rather than simulation-dominated).
const benchPoll = 40 * time.Millisecond

// BenchmarkNodeConcurrentClients measures complete run round trips per
// second (load once, then StartAsync + WaitResult per op) through a
// node with 1 and 4 boards, 1 client per board. The 4-board aggregate
// must comfortably exceed the 1-board figure — see BENCH_node.json.
func BenchmarkNodeConcurrentClients(b *testing.B) {
	for _, nBoards := range []int{1, 4} {
		b.Run(fmt.Sprintf("boards=%d", nBoards), func(b *testing.B) {
			_, addr := startNode(b, nBoards)
			obj := assembleAt(b, countProg(benchIters))
			clients := make([]*client.Client, nBoards)
			for i := range clients {
				c := dial(b, addr)
				c.Board = uint8(i)
				c.PollInterval = benchPoll
				if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
					b.Fatal(err)
				}
				clients[i] = c
			}

			b.ResetTimer()
			var wg sync.WaitGroup
			for i, c := range clients {
				iters := b.N / nBoards
				if i < b.N%nBoards {
					iters++
				}
				wg.Add(1)
				go func(c *client.Client, iters int) {
					defer wg.Done()
					for j := 0; j < iters; j++ {
						if err := c.StartAsync(obj.Origin, 0); err != nil {
							b.Error(err)
							return
						}
						if _, err := c.WaitResult(); err != nil {
							b.Error(err)
							return
						}
					}
				}(c, iters)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}
