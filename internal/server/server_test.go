package server

import (
	"bytes"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/client"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

// restoreGOMAXPROCS undoes the node's scheduler-thread bump at test
// cleanup, so benchmarks report against a stable GOMAXPROCS.
func restoreGOMAXPROCS(t testing.TB) {
	prev := runtime.GOMAXPROCS(0)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// newBoard boots one LEON platform wrapped in its per-board actor.
func newBoard(t testing.TB, ip [4]byte) *fpx.Platform {
	t.Helper()
	restoreGOMAXPROCS(t)
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	actrl := leon.NewAsyncController(ctrl)
	t.Cleanup(actrl.Close)
	return fpx.New(actrl, ip, 5001)
}

// serveNode runs srv until test cleanup.
func serveNode(t testing.TB, srv *Server) string {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("Serve did not stop")
		}
	})
	return srv.Addr().String()
}

// startServer boots a LEON platform and serves it on loopback.
func startServer(t testing.TB) (*Server, string) {
	t.Helper()
	srv, err := New(newBoard(t, [4]byte{10, 0, 0, 2}), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return srv, serveNode(t, srv)
}

// startNode boots an n-board node on loopback.
func startNode(t testing.TB, n int) (*Server, string) {
	t.Helper()
	boards := make([]*fpx.Platform, n)
	for i := range boards {
		boards[i] = newBoard(t, [4]byte{10, 0, 0, byte(2 + i)})
	}
	srv, err := NewNode("127.0.0.1:0", boards...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, serveNode(t, srv)
}

func dial(t testing.TB, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRemoteSessionOverLoopback(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if leon.State(st.State) != leon.StateIdle {
		t.Errorf("state = %v", leon.State(st.State))
	}

	// Program with a >1-chunk image (padded data section).
	obj, err := asm.AssembleAt(`
_start:
	set 0x1234, %o0
	set result, %g1
	st %o0, [%g1]
	set 0x1000, %g7
	jmp %g7
	nop
result:	.word 0
	.space 3000
`, leon.DefaultLoadAddr)
	if err != nil {
		t.Fatal(err)
	}
	rep, data, err := c.RunProgram(obj.Origin, obj.Code, obj.Origin, mustSym(t, obj, "result"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Errorf("report = %+v", rep)
	}
	if got := be32(data); got != 0x1234 {
		t.Errorf("result = %#x", got)
	}

	// Status reflects the run.
	st, err = c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if leon.State(st.State) != leon.StateDone || st.Last.Cycles != rep.Cycles {
		t.Errorf("post-run status = %+v", st)
	}
}

func mustSym(t *testing.T, obj *asm.Object, name string) uint32 {
	t.Helper()
	v, ok := obj.Symbol(name)
	if !ok {
		t.Fatalf("symbol %q undefined", name)
	}
	return v
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func TestWriteAndReadMemoryRemote(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	payload := bytes.Repeat([]byte{0xA5, 0x5A}, 2048)
	if err := c.WriteMemory(leon.DefaultLoadAddr, payload); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadMemory(leon.DefaultLoadAddr, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("read back differs")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	// Start without load → server error.
	if _, err := c.Start(0, 0); err == nil || !strings.Contains(err.Error(), "no program loaded") {
		t.Errorf("err = %v", err)
	}
	// Load to a bad address → server error mentioning the mailbox.
	err := c.LoadProgram(leon.SRAMBase, []byte{1, 2, 3, 4})
	if err == nil || !strings.Contains(err.Error(), "mailbox") {
		t.Errorf("err = %v", err)
	}
}

func TestGarbageDatagramsIgnored(t *testing.T) {
	srv, addr := startServer(t)
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("not a liquid packet")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 256)
	if n, _ := conn.Read(buf); n != 0 {
		t.Errorf("garbage got a %d-byte response", n)
	}
	// Server still alive.
	c := dial(t, addr)
	if _, err := c.Status(); err != nil {
		t.Errorf("status after garbage: %v", err)
	}
	_ = srv
}

// TestClientRetransmission runs the client against a lossy fake server
// that drops the first copy of every request.
func TestClientRetransmission(t *testing.T) {
	em := fpx.NewEmulator()
	platform := fpx.New(em, [4]byte{10, 0, 0, 2}, 5001)

	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	go func() {
		buf := make([]byte, 64<<10)
		seen := map[string]bool{}
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			key := string(buf[:n])
			if !seen[key] {
				seen[key] = true // drop first copy
				continue
			}
			for _, resp := range platform.HandlePayload(buf[:n]) {
				conn.WriteToUDP(resp.Marshal(), peer)
			}
		}
	}()

	c := dial(t, conn.LocalAddr().String())
	c.Timeout = 150 * time.Millisecond
	c.Retries = 3
	img := make([]byte, 2500)
	if err := c.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
		t.Fatalf("lossy load: %v", err)
	}
	rep, err := c.Start(leon.DefaultLoadAddr, 0)
	if err != nil {
		t.Fatalf("lossy start: %v", err)
	}
	if rep.Cycles == 0 {
		t.Error("no cycles reported")
	}
}

func TestClientTimesOutAgainstDeadServer(t *testing.T) {
	// Bind a socket that never answers.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	c := dial(t, conn.LocalAddr().String())
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	if _, err := c.Status(); err == nil {
		t.Error("status against dead server succeeded")
	}
}

func TestServerCloseStopsServe(t *testing.T) {
	em := fpx.NewEmulator()
	platform := fpx.New(em, [4]byte{10, 0, 0, 2}, 5001)
	srv, err := New(platform, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve hung after Close")
	}
}

func TestBadBindAddress(t *testing.T) {
	em := fpx.NewEmulator()
	platform := fpx.New(em, [4]byte{10, 0, 0, 2}, 5001)
	if _, err := New(platform, "not-an-address"); err == nil {
		t.Error("bad address accepted")
	}
}
