package server

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"liquidarch/internal/chaos"
	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
)

// TestWindowedLoadUnderLoss is the pipelining acceptance test: a
// 32-chunk sliding-window load through 20% loss plus reordering lands
// bit-identical to a clean stop-and-wait load, for every pinned seed,
// and the client's accounting closes — every chunk was requested
// exactly once (requests{load} + skipped == chunks) and every
// retransmission shows up in both the resend and retry counters.
func TestWindowedLoadUnderLoss(t *testing.T) {
	const chunks = 32
	img := make([]byte, (chunks-1)*netproto.MaxChunkData+317)
	for i := range img {
		img[i] = byte(i*13 + i>>9)
	}

	// Clean-path baseline: stop-and-wait (window=1) straight to the
	// server, then read the image back out of board memory.
	_, cleanAddr := startServer(t)
	base := dial(t, cleanAddr)
	base.Window = 1
	if err := base.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
		t.Fatalf("baseline load: %v", err)
	}
	want, err := base.ReadMemory(leon.DefaultLoadAddr, len(img))
	if err != nil {
		t.Fatalf("baseline readback: %v", err)
	}
	if !bytes.Equal(want, img) {
		t.Fatal("baseline load did not faithfully store the image")
	}

	for _, seed := range smokeSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, addr := startServer(t)
			reg := metrics.NewRegistry()
			faults := chaos.Faults{Drop: 0.2, Reorder: 0.1}
			proxy := chaosProxy(t, addr, chaos.Config{
				Seed:     seed,
				Up:       faults,
				Down:     faults,
				Registry: reg,
			})
			c := dialChaos(t, proxy.Addr().String(), seed)
			if err := c.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
				t.Fatalf("windowed load under loss: %v", err)
			}

			// Readback on the clean path: what the board holds, not what
			// the lossy link happens to echo.
			check := dial(t, addr)
			got, err := check.ReadMemory(leon.DefaultLoadAddr, len(img))
			if err != nil {
				t.Fatalf("readback: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Error("windowed load under loss diverged from the clean stop-and-wait image")
			}

			// The storm must actually have raged.
			snap := reg.Snapshot()
			drops := snap.Counter(`liquid_chaos_injected_total{event="up_drop"}`) +
				snap.Counter(`liquid_chaos_injected_total{event="down_drop"}`)
			if drops == 0 {
				t.Error("chaos injected no drops — test proved nothing")
			}

			// Accounting closes: chunks requested once each, resends all
			// visible in both counters.
			csnap := c.Metrics().Snapshot()
			loadReqs := csnap.Counter(`liquid_client_requests_total{cmd="load"}`)
			skipped := csnap.Counters["liquid_client_load_chunks_skipped_total"]
			if loadReqs+skipped != chunks {
				t.Errorf("requests{load}=%d + skipped=%d != %d chunks", loadReqs, skipped, chunks)
			}
			resends := csnap.Counters["liquid_client_load_chunk_resends_total"]
			retries := csnap.Counters["liquid_client_retries_total"]
			if resends == 0 {
				t.Error("no chunk resends under 20% loss — window never recovered anything")
			}
			if resends != retries {
				t.Errorf("chunk resends (%d) != retries (%d): a retransmission escaped the accounting", resends, retries)
			}
		})
	}
}

// TestWaitResultHeldByServer: with a running program, WaitResult parks
// on the server and comes back with the final report the moment the
// run completes — without a single CmdResult poll on the wire.
func TestWaitResultHeldByServer(t *testing.T) {
	srv, addr := startServer(t)
	obj := assembleAt(t, countProg(1_000_000)) // ~50 ms of simulated run
	c := dial(t, addr)
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := c.StartAsync(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Fatalf("report = %+v", rep)
	}

	snap := srv.Metrics().Snapshot()
	if snap.Counters["liquid_server_waits_parked_total"] == 0 {
		t.Error("server never parked the wait")
	}
	if snap.Counter(`liquid_server_wait_wakeups_total{reason="done"}`) == 0 {
		t.Error("no done-wakeup: the parked wait was not released by run completion")
	}

	csnap := c.Metrics().Snapshot()
	if got := csnap.Counter(`liquid_client_requests_total{cmd="result"}`); got != 0 {
		t.Errorf("client issued %d CmdResult polls; the held wait should need zero", got)
	}
	if csnap.Counter(`liquid_client_requests_total{cmd="wait"}`) == 0 {
		t.Error("client never issued a held wait")
	}
	if csnap.Counters["liquid_client_wait_holds_total"] == 0 {
		t.Error("client did not count the held wait")
	}
	if csnap.Counters["liquid_client_wait_fallback_total"] != 0 {
		t.Error("client fell back to polling against a server that supports CmdWaitResult")
	}
}

// TestWaitHoldExpiresAndRearms: a hold shorter than the run expires
// server-side (the client gets a Running report) and the client simply
// parks again; the run still completes with the final report and the
// expiry is visible in the wakeup-reason counter.
func TestWaitHoldExpiresAndRearms(t *testing.T) {
	srv, addr := startServer(t)
	obj := assembleAt(t, countProg(2_000_000)) // ~100 ms of simulated run
	c := dial(t, addr)
	c.WaitHold = 20 * time.Millisecond
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := c.StartAsync(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK {
		t.Fatalf("report = %+v", rep)
	}

	snap := srv.Metrics().Snapshot()
	if snap.Counter(`liquid_server_wait_wakeups_total{reason="expired"}`) == 0 {
		t.Error("no hold ever expired despite a 20 ms hold on a ~100 ms run")
	}
	csnap := c.Metrics().Snapshot()
	if csnap.Counters["liquid_client_wait_holds_total"] < 2 {
		t.Error("client did not re-arm the hold after expiry")
	}
}

// TestWaitHoldDisabledPolls: WaitHold<0 is the operator opt-out — the
// client must never put CmdWaitResult on the wire and instead resolve
// the run through the classic CmdResult poll loop. (The downgrade
// against an old server that rejects CmdWaitResult is covered in the
// client package's retry tests.)
func TestWaitHoldDisabledPolls(t *testing.T) {
	_, addr := startServer(t)
	obj := assembleAt(t, countProg(1_000_000))

	c := dial(t, addr)
	c.WaitHold = -1 // pretend the operator disabled the held wait
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := c.StartAsync(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK {
		t.Fatalf("report = %+v", rep)
	}
	csnap := c.Metrics().Snapshot()
	if csnap.Counter(`liquid_client_requests_total{cmd="wait"}`) != 0 {
		t.Error("WaitHold<0 still issued held waits")
	}
	if csnap.Counter(`liquid_client_requests_total{cmd="result"}`) == 0 {
		t.Error("disabled hold never polled")
	}
}

// TestHeldWaitSurvivesRetransmit: duplicate every uplink wait packet.
// The retransmitted copy of a parked wait must be swallowed (not
// answered twice, not double-parked), and the exchange still resolves
// with the run's final report.
func TestHeldWaitSurvivesRetransmit(t *testing.T) {
	srv, addr := startServer(t)
	rules, err := chaos.ParseScript("up:wait=dup")
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaosProxy(t, addr, chaos.Config{Seed: 1, Script: rules})

	obj := assembleAt(t, countProg(1_000_000))
	c := dial(t, proxy.Addr().String())
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := c.StartAsync(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Fatalf("report = %+v", rep)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counter(`liquid_server_drops_total{reason="parked_dup"}`) == 0 {
		t.Error("duplicated wait never hit the parked-retransmit filter")
	}
	if got := snap.Counter(`liquid_server_wait_wakeups_total{reason="done"}`); got == 0 {
		t.Error("parked wait was not released by completion")
	}
}
