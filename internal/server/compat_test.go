package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/sim"
	"liquidarch/internal/synth"
)

// TestCompatMatrix runs every client wire revision v1..v6 against
// every server command revision v1..v6 — 36 cells on the simulated
// fabric. Each cell drives two full load→start→result cycles plus a
// readback, asserting the final report is identical everywhere and
// that the negotiated downgrades take the documented shape:
//
//   - rs < 2: CmdStartLEON blocks; the ack IS the final report, so the
//     client issues zero CmdResult polls and zero held waits.
//   - rc < 5 (against rs ≥ 2): the client resolves runs by CmdResult
//     polling, never putting CmdWaitResult on the wire.
//   - rc ≥ 5, rs < 5: the client probes CmdWaitResult exactly once,
//     the server rejects it as unknown, and the downgrade to polling is
//     sticky — the second run issues no further probes.
//   - rc ≥ 5, rs ≥ 5: runs resolve through server-held waits with zero
//     CmdResult polls; the server visibly parks the exchanges.
//
// A pre-v5 server must never park a wait, whatever the client speaks.
func TestCompatMatrix(t *testing.T) {
	img := make([]byte, 2*netproto.MaxChunkData+100) // 3 chunks
	for i := range img {
		img[i] = byte(i*31 + 5)
	}
	for rs := uint8(1); rs <= fpx.LatestCommandRev; rs++ {
		for rc := uint8(1); rc <= 6; rc++ {
			rs, rc := rs, rc
			t.Run(fmt.Sprintf("server=v%d/client=v%d", rs, rc), func(t *testing.T) {
				t.Parallel()
				compatCell(t, rc, rs, img)
			})
		}
	}
}

func compatCell(t *testing.T, rc, rs uint8, img []byte) {
	w := sim.NewWorld(int64(rs)<<8 | int64(rc))
	t.Cleanup(w.Close)

	// Emulated hardware on the virtual clock: every run stays Running
	// for exactly 30 ms of virtual time and reports a cycle count that
	// is a pure function of the image — identical across all 36 cells.
	em := fpx.NewEmulator()
	em.AsyncDelay = 30 * time.Millisecond
	em.Clock = w.Clock
	plat := fpx.New(em, [4]byte{10, 0, 0, 2}, 5001)
	plat.CommandRev = rs

	pc, err := w.Net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewNodeConn(pc, w.Clock, plat)
	if err != nil {
		t.Fatal(err)
	}
	serveNode(t, srv)

	c, _ := dialSim(t, w, pc.LocalAddr(), int64(rs)*100+int64(rc), cleanLink())
	c.WireRev = rc

	wantCycles := uint64(len(img)) * 10 // emulator: CyclesPerByte * image
	for cycle := 0; cycle < 2; cycle++ {
		if err := c.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
			t.Fatalf("cycle %d load: %v", cycle, err)
		}
		rep, err := c.Start(leon.DefaultLoadAddr, 0)
		if err != nil {
			t.Fatalf("cycle %d start: %v", cycle, err)
		}
		if rep.Status != netproto.StatusOK || rep.Cycles != wantCycles {
			t.Fatalf("cycle %d report = %+v, want OK with %d cycles", cycle, rep, wantCycles)
		}
	}
	head, err := c.ReadMemory(leon.DefaultLoadAddr, 64)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if !bytes.Equal(head, img[:64]) {
		t.Error("loaded image diverged across the compat pairing")
	}

	csnap := c.Metrics().Snapshot()
	resultPolls := csnap.Counter(`liquid_client_requests_total{cmd="result"}`)
	waitReqs := csnap.Counter(`liquid_client_requests_total{cmd="wait"}`)
	holds := csnap.Counters["liquid_client_wait_holds_total"]
	fallback := csnap.Counters["liquid_client_wait_fallback_total"]
	parked := srv.Metrics().Snapshot().Counters["liquid_server_waits_parked_total"]

	switch {
	case rs < 2:
		// Sync-start downgrade: the start ack carried the final report.
		if resultPolls != 0 || waitReqs != 0 {
			t.Errorf("blocking-start server still saw polls=%d waits=%d", resultPolls, waitReqs)
		}
	case rc < 5:
		// Poll-era client: CmdWaitResult must never hit the wire.
		if waitReqs != 0 || holds != 0 {
			t.Errorf("pre-v5 client issued waits=%d holds=%d", waitReqs, holds)
		}
		if resultPolls == 0 {
			t.Error("poll-era client resolved two runs without a single CmdResult")
		}
	case rs < 5:
		// Modern client, pre-hold server: one rejected probe, then a
		// sticky downgrade to polling.
		if fallback == 0 {
			t.Error("client never recorded the wait downgrade")
		}
		if waitReqs != 1 {
			t.Errorf("wait probes = %d, want exactly 1 (downgrade must be sticky)", waitReqs)
		}
		if resultPolls == 0 {
			t.Error("downgraded client never polled CmdResult")
		}
	default:
		// Held-wait era on both ends: no polling at all.
		if holds == 0 {
			t.Error("v5+ pairing never used a held wait")
		}
		if fallback != 0 {
			t.Errorf("v5+ pairing recorded %d spurious downgrades", fallback)
		}
		if resultPolls != 0 {
			t.Errorf("held-wait era still issued %d CmdResult polls", resultPolls)
		}
	}
	if rs < 5 && parked != 0 {
		t.Errorf("pre-v5 server parked %d waits", parked)
	}
	if rc >= 5 && rs >= 5 && parked == 0 {
		t.Error("v5+ pairing parked no waits server-side")
	}
}

// TestCompatReconfigureAcrossServerRevs: a rev-6 client's Reconfigure
// lands against every server generation. Pre-rev-6 servers block
// through the whole swap and the ack carries the outcome; a rev-6
// server acks immediately and the client follows the asynchronous
// conversation to its terminal state. Either way the board's active
// configuration must reflect the requested spec afterwards.
func TestCompatReconfigureAcrossServerRevs(t *testing.T) {
	for rs := uint8(1); rs <= fpx.LatestCommandRev; rs++ {
		rs := rs
		t.Run(fmt.Sprintf("server=v%d", rs), func(t *testing.T) {
			t.Parallel()
			w := sim.NewWorld(int64(rs))
			t.Cleanup(w.Close)

			// A core-backed board: reconfiguration is wired, and the
			// modelled ≈1 h synthesis collapses to ~3.6 ms of clock time.
			opts := synth.Options{BitstreamBytes: 256, TimeScale: 1e-6, Clock: w.Clock}
			sys, err := core.New(leon.DefaultConfig(), core.Options{
				Synth: opts,
				IP:    [4]byte{10, 0, 0, 2},
				Clock: w.Clock,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sys.Close)
			plat := sys.Platform()
			plat.CommandRev = rs

			pc, err := w.Net.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewNodeConn(pc, w.Clock, plat)
			if err != nil {
				t.Fatal(err)
			}
			serveNode(t, srv)

			c, _ := dialSim(t, w, pc.LocalAddr(), int64(rs), cleanLink())
			c.WireRev = 6

			spec, err := json.Marshal(core.Spec{DCacheBytes: 8 << 10})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Reconfigure(spec); err != nil {
				t.Fatalf("reconfigure against v%d server: %v", rs, err)
			}
			blob, err := c.GetConfig()
			if err != nil {
				t.Fatalf("get config: %v", err)
			}
			if !strings.Contains(string(blob), "8192") {
				t.Errorf("active config does not reflect the 8 KiB D-cache: %s", blob)
			}
		})
	}
}
