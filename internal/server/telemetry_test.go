package server

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"liquidarch/internal/client"
	"liquidarch/internal/metrics"
)

// TestCmdStatsEndToEnd exercises the in-band telemetry channel: a
// client asks for stats over the same UDP control protocol and gets
// the node-wide snapshot back as JSON, with live counters from both
// the socket layer and the hardware path.
func TestCmdStatsEndToEnd(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	// Generate some traffic first so the counters are non-zero.
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}

	blob, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatalf("stats is not a metrics snapshot: %v\n%s", err, blob)
	}

	// Socket layer: 2 status + 1 stats datagrams at least. The snapshot
	// is taken while the stats request is still being handled, so only
	// the two status responses are guaranteed to be counted as sent.
	if got := snap.Counter("liquid_server_datagrams_in_total"); got < 3 {
		t.Errorf("datagrams_in = %d, want >= 3", got)
	}
	if got := snap.Counter("liquid_server_datagrams_out_total"); got < 2 {
		t.Errorf("datagrams_out = %d, want >= 2", got)
	}
	if snap.Counter("liquid_server_bytes_in_total") == 0 ||
		snap.Counter("liquid_server_bytes_out_total") == 0 {
		t.Error("byte counters did not move")
	}

	// Hardware path: CPP command dispatch counters, per command.
	if got := snap.Counter(`liquid_fpx_commands_total{cmd="status"}`); got < 2 {
		t.Errorf(`commands_total{cmd="status"} = %d, want >= 2`, got)
	}
	if got := snap.Counter(`liquid_fpx_commands_total{cmd="stats"}`); got < 1 {
		t.Errorf(`commands_total{cmd="stats"} = %d, want >= 1`, got)
	}
	if got := snap.Counter("liquid_fpx_frames_in_total"); got < 3 {
		t.Errorf("frames_in = %d, want >= 3", got)
	}

	// Handle-latency histogram has observations under the right label.
	h, ok := snap.Histograms[`liquid_server_handled_duration_seconds{cmd="status"}`]
	if !ok || h.Count < 2 {
		t.Errorf("handled_duration{cmd=status} = %+v", h)
	}

	// Boot-time synthesis is recorded.
	if got := snap.Counter("liquid_core_synthesis_total"); got != 0 {
		// startServer builds the SoC via leon.New directly (no core
		// System), so core counters must simply be absent, not corrupt.
		t.Errorf("unexpected core synthesis count %d without a core.System", got)
	}

	// A second snapshot must show the stats request itself counted.
	blob2, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var snap2 metrics.Snapshot
	if err := json.Unmarshal(blob2, &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Counter(`liquid_fpx_commands_total{cmd="stats"}`) <
		snap.Counter(`liquid_fpx_commands_total{cmd="stats"}`)+1 {
		t.Error("second snapshot did not count the first stats request")
	}
}

// TestMalformedPacketsCounted verifies malformed control packets are
// answered with a protocol error and counted by reason, rather than
// silently dropped. (Payloads without the "LQ" magic pass through to
// the switch fabric by design, so the probes here carry the magic.)
func TestMalformedPacketsCounted(t *testing.T) {
	srv, addr := startServer(t)

	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 2048)
	exchange := func(payload []byte) {
		t.Helper()
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("no error response to %q: %v", payload, err)
		}
	}

	// Magic present but unsupported protocol version: unparseable.
	exchange([]byte{'L', 'Q', 0xFF, 0x01})
	// Well-formed header with an unknown command code.
	exchange([]byte{'L', 'Q', 1, 0xEE})

	snap := srv.Metrics().Snapshot()
	if got := snap.Counter(`liquid_fpx_protocol_errors_total{cmd="status"}`); got != 1 {
		t.Errorf(`protocol_errors{status} = %d, want 1 (unparseable packet)`, got)
	}
	if got := snap.Counter(`liquid_fpx_protocol_errors_total{cmd="unknown"}`); got != 1 {
		t.Errorf(`protocol_errors{unknown} = %d, want 1 (unknown command)`, got)
	}
	if got := snap.Counter("liquid_server_datagrams_in_total"); got != 2 {
		t.Errorf("datagrams_in = %d, want 2", got)
	}

	// The event log recorded the failures.
	if srv.Events().Total() == 0 {
		t.Error("event log is empty after protocol errors")
	}

	// Non-Liquid payloads pass through without a response.
	if _, err := conn.Write([]byte("definitely not a control packet")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if srv.Metrics().Snapshot().Counter("liquid_fpx_frames_passthrough_total") == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Metrics().Snapshot().Counter("liquid_fpx_frames_passthrough_total"); got != 1 {
		t.Errorf("passthrough = %d, want 1", got)
	}
}

// TestClientRetryMetrics sends to a black-hole address and checks the
// client-side retry/timeout instruments.
func TestClientRetryMetrics(t *testing.T) {
	// A bound but never-read socket: packets vanish, reads time out.
	hole, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()

	c, err := client.Dial(hole.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 50 * time.Millisecond
	c.Retries = 2

	if _, err := c.Status(); err == nil {
		t.Fatal("status against a black hole succeeded")
	}
	snap := c.Metrics().Snapshot()
	if got := snap.Counter(`liquid_client_requests_total{cmd="status"}`); got != 1 {
		t.Errorf("requests = %d, want 1", got)
	}
	if got := snap.Counter("liquid_client_retries_total"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := snap.Counter("liquid_client_timeouts_total"); got != 3 {
		t.Errorf("timeouts = %d, want 3 (initial + 2 retries)", got)
	}
	if got := snap.Counter("liquid_client_errors_total"); got == 0 {
		t.Error("errors_total did not move")
	}
	if h := snap.Histograms["liquid_client_rtt_seconds"]; h.Count != 0 {
		t.Errorf("rtt observed %d successes against a black hole", h.Count)
	}
}

// TestClientRTTObserved checks the success-path RTT histogram.
func TestClientRTTObserved(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.Status(); err != nil {
		t.Fatal(err)
	}
	snap := c.Metrics().Snapshot()
	if h := snap.Histograms["liquid_client_rtt_seconds"]; h.Count != 1 {
		t.Errorf("rtt count = %d, want 1", h.Count)
	}
	if got := snap.Counter("liquid_client_timeouts_total"); got != 0 {
		t.Errorf("timeouts = %d on loopback", got)
	}
}
