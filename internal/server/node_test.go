package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/client"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

// spinProg loops forever; the run only ends via its cycle budget or an
// abandoning Close. It keeps a board busy while status latency is
// measured.
const spinProg = `
_start:
	ba _start
	nop
`

// countProg spins count iterations (~6 cycles each) then exits through
// the poll address, so two boards running it report identical cycles.
func countProg(count int) string {
	return fmt.Sprintf(`
_start:
	set %d, %%g2
loop:
	subcc %%g2, 1, %%g2
	bne loop
	nop
	set 0x1000, %%g7
	jmp %%g7
	nop
	.space 3000
`, count)
}

func assembleAt(t testing.TB, src string) *asm.Object {
	t.Helper()
	obj, err := asm.AssembleAt(src, leon.DefaultLoadAddr)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestStatusDuringLongRun is the tentpole's latency criterion: while
// board 0 executes a long program, CmdStatus and CmdStats keep
// answering well under the 10 ms control-plane target, and the status
// cycle counter advances between polls.
func TestStatusDuringLongRun(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	obj := assembleAt(t, spinProg)
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	// Budget bounds the spin loop; the run is abandoned at cleanup long
	// before it expires.
	if err := c.StartAsync(obj.Origin, 1<<40); err != nil {
		t.Fatal(err)
	}

	// The wire latency target is 10 ms; the race detector slows the
	// simulator and the scheduler enough that only a looser bound is
	// meaningful there.
	bound := 10 * time.Millisecond
	if raceEnabled {
		bound = 100 * time.Millisecond
	}
	var last uint64
	advanced := 0
	for i := 0; i < 30; i++ {
		begin := time.Now()
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(begin); d > bound {
			t.Errorf("status poll %d took %v (> %v) during run", i, d, bound)
		}
		if leon.State(st.State) != leon.StateRunning {
			t.Fatalf("poll %d: state = %v, want running", i, leon.State(st.State))
		}
		if st.CurCycles > last {
			advanced++
		}
		last = st.CurCycles
		time.Sleep(2 * time.Millisecond)
	}
	if advanced < 10 {
		t.Errorf("cycle counter advanced on only %d of 30 polls", advanced)
	}

	// CmdStats is served by the same per-board queue and must be just
	// as prompt mid-run.
	begin := time.Now()
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d > bound {
		t.Errorf("stats took %v (> %v) during run", d, bound)
	}
	// A result poll mid-run reports the live counter, not a block.
	rep, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusRunning || rep.Cycles == 0 {
		t.Errorf("mid-run result = %+v", rep)
	}
}

// TestTwoBoardsConcurrent drives two boards of one node at the same
// time: multi-chunk loads interleave, both runs are in flight
// simultaneously, and — the determinism criterion — identical programs
// report bit-identical cycle counts.
func TestTwoBoardsConcurrent(t *testing.T) {
	_, addr := startNode(t, 2)

	iters := 2_000_000
	if raceEnabled || testing.Short() {
		iters = 200_000
	}
	obj := assembleAt(t, countProg(iters))

	clients := make([]*client.Client, 2)
	for b := range clients {
		clients[b] = dial(t, addr)
		clients[b].Board = uint8(b)
	}

	// Interleaved multi-packet loads: both clients stream their chunked
	// image concurrently, so board 0 and board 1 chunks mix arbitrarily
	// on the node's socket.
	var wg sync.WaitGroup
	loadErrs := make([]error, 2)
	for b, c := range clients {
		wg.Add(1)
		go func(b int, c *client.Client) {
			defer wg.Done()
			loadErrs[b] = c.LoadProgram(obj.Origin, obj.Code)
		}(b, c)
	}
	wg.Wait()
	for b, err := range loadErrs {
		if err != nil {
			t.Fatalf("board %d load: %v", b, err)
		}
	}

	// Start both, then observe that both are executing at once.
	for b, c := range clients {
		if err := c.StartAsync(obj.Origin, 0); err != nil {
			t.Fatalf("board %d start: %v", b, err)
		}
	}
	running := 0
	for _, c := range clients {
		st, err := c.Status()
		if err != nil {
			t.Fatal(err)
		}
		if leon.State(st.State) == leon.StateRunning {
			running++
		}
	}
	if running != 2 {
		t.Errorf("%d of 2 boards observed running simultaneously", running)
	}

	reps := make([]netproto.RunReport, 2)
	for b, c := range clients {
		rep, err := c.WaitResult()
		if err != nil {
			t.Fatalf("board %d wait: %v", b, err)
		}
		if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
			t.Fatalf("board %d report = %+v", b, rep)
		}
		reps[b] = rep
	}
	if reps[0].Cycles != reps[1].Cycles || reps[0].Instructions != reps[1].Instructions {
		t.Errorf("identical programs diverged: %+v vs %+v", reps[0], reps[1])
	}
}

// TestBadBoardRejected: a board id beyond the node's platforms draws an
// immediate CmdError from the read loop and a bad_board drop count.
func TestBadBoardRejected(t *testing.T) {
	srv, addr := startNode(t, 2)
	c := dial(t, addr)
	c.Board = 7
	_, err := c.Status()
	if err == nil || !strings.Contains(err.Error(), "no board 7") {
		t.Errorf("err = %v", err)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counter(`liquid_server_drops_total{reason="bad_board"}`) == 0 {
		t.Error("bad_board drop not counted")
	}
	// Board 1 on the same node still answers.
	c2 := dial(t, addr)
	c2.Board = 1
	if _, err := c2.Status(); err != nil {
		t.Errorf("board 1 status: %v", err)
	}
}

// stuckCtrl blocks Execute until released, simulating a board whose
// worker is pinned by a blocking command.
type stuckCtrl struct {
	*fpx.Emulator
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func (sc *stuckCtrl) Execute(entry uint32, maxCycles uint64) (leon.RunResult, error) {
	sc.once.Do(func() { close(sc.entered) })
	<-sc.release
	return sc.Emulator.Execute(entry, maxCycles)
}

// TestBusyBackpressure: with a queue bound of 1 and a pinned worker,
// the overflow datagram is answered with CmdError "busy" straight from
// the read loop and counted as drops{reason="busy"} — bounded
// backpressure instead of unbounded buffering.
func TestBusyBackpressure(t *testing.T) {
	sc := &stuckCtrl{
		Emulator: fpx.NewEmulator(),
		entered:  make(chan struct{}),
		release:  make(chan struct{}),
	}
	defer close(sc.release)
	platform := fpx.New(sc, [4]byte{10, 0, 0, 2}, 5001)
	srv, err := newNode("127.0.0.1:0", 1, platform)
	if err != nil {
		t.Fatal(err)
	}
	addr := serveNode(t, srv)

	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Job 1: a blocking sync start pins the worker.
	start := netproto.Packet{
		Command: netproto.CmdStartSync,
		Body:    netproto.StartReq{Entry: leon.DefaultLoadAddr}.Marshal(),
	}
	if _, err := conn.Write(start.Marshal()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sc.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("worker never reached Execute")
	}
	// Job 2 fills the 1-slot queue; job 3 must bounce as busy.
	status := netproto.Packet{Command: netproto.CmdStatus}.Marshal()
	if _, err := conn.Write(status); err != nil {
		t.Fatal(err)
	}
	waitQueueDepth(t, srv, 1)
	if _, err := conn.Write(status); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := netproto.ParsePacket(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Command != netproto.CmdError {
		t.Fatalf("overflow reply command %#x, want CmdError", pkt.Command)
	}
	er, err := netproto.ParseErrorResp(pkt.Body)
	if err != nil {
		t.Fatal(err)
	}
	if er.Code != netproto.CmdStatus || !strings.Contains(er.Msg, "busy") {
		t.Errorf("overflow error = %+v", er)
	}

	snap := srv.Metrics().Snapshot()
	if snap.Counter(`liquid_server_drops_total{reason="busy"}`) == 0 {
		t.Error("busy drop not counted")
	}
	if d := snap.Gauges["liquid_server_queue_depth"]; d != 1 {
		t.Errorf("queue depth gauge = %v, want 1 (the queued status)", d)
	}
}

// waitQueueDepth waits until the node's queue-depth gauge reaches want.
func waitQueueDepth(t *testing.T, srv *Server, want float64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if srv.Metrics().Snapshot().Gauges["liquid_server_queue_depth"] >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
}
