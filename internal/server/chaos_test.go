package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/chaos"
	"liquidarch/internal/client"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
)

// chaosSeeds are the pinned fault-sequence seeds the CI suite replays.
// Each seed produces one reproducible storm of drops, dups, reorders
// and truncations; a failure under any of them can be replayed exactly
// with `liquid-chaos -seed N`. The full matrix runs on the simulated
// fabric (sim_chaos_test.go); the real-UDP tests below keep one smoke
// seed each to prove the production socket path still survives a storm.
var chaosSeeds = []int64{1, 7, 42}

// smokeSeeds is the real-UDP slice of the matrix.
var smokeSeeds = chaosSeeds[:1]

// stormFaults is the headline fault mix: 20% loss plus reordering and
// duplication, applied independently in both directions.
func stormFaults() chaos.Faults {
	return chaos.Faults{Drop: 0.2, Reorder: 0.1, Dup: 0.1}
}

// chaosProxy starts a fault-injecting relay in front of addr, wired
// for cleanup.
func chaosProxy(t testing.TB, addr string, cfg chaos.Config) *chaos.Proxy {
	t.Helper()
	p, err := chaos.NewProxy("127.0.0.1:0", addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.Serve() }()
	t.Cleanup(func() {
		p.Close()
		if err := <-done; err != nil {
			t.Errorf("chaos proxy: %v", err)
		}
	})
	return p
}

// dialChaos dials through addr with the retry schedule tuned for a
// stormy transport: short first timeout, generous retry budget, jitter
// pinned to seed so the whole retransmission schedule is reproducible.
func dialChaos(t testing.TB, addr string, seed int64) *client.Client {
	t.Helper()
	c := dial(t, addr)
	c.Timeout = 100 * time.Millisecond
	c.MaxTimeout = time.Second
	c.Retries = 10
	c.SetSeed(seed)
	return c
}

// runCycle drives one full load→start→result cycle plus a load-image
// readback, and returns everything the transport could have corrupted.
func runCycle(t testing.TB, c *client.Client, obj *asm.Object) (netproto.RunReport, []byte) {
	t.Helper()
	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatalf("load: %v", err)
	}
	rep, err := c.Start(obj.Origin, 0)
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	head, err := c.ReadMemory(obj.Origin, 64)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	return rep, head
}

// TestControlPlaneUnderChaos is the real-UDP smoke slice of the
// headline acceptance test: a full load→start→result cycle completes
// bit-identically under 20% loss plus reordering and duplication. The
// simulator is deterministic, so any divergence from the clean-path
// baseline is a transport-hardening bug: a lost chunk, a doubly
// applied start, a stale result accepted. The full pinned-seed matrix
// runs on the simulated fabric in TestControlPlaneUnderChaosSim.
func TestControlPlaneUnderChaos(t *testing.T) {
	iters := 100_000
	if raceEnabled || testing.Short() {
		iters = 20_000
	}
	obj := assembleAt(t, countProg(iters))

	// Clean-path baseline.
	_, addr := startServer(t)
	wantRep, wantHead := runCycle(t, dial(t, addr), obj)
	if wantRep.Status != netproto.StatusOK || wantRep.Cycles == 0 {
		t.Fatalf("baseline report = %+v", wantRep)
	}

	for _, seed := range smokeSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, addr := startServer(t)
			reg := metrics.NewRegistry()
			proxy := chaosProxy(t, addr, chaos.Config{
				Seed:     seed,
				Up:       stormFaults(),
				Down:     stormFaults(),
				Registry: reg,
			})
			c := dialChaos(t, proxy.Addr().String(), seed)
			rep, head := runCycle(t, c, obj)
			if rep != wantRep {
				t.Errorf("report diverged under chaos:\n got %+v\nwant %+v", rep, wantRep)
			}
			if string(head) != string(wantHead) {
				t.Errorf("loaded image diverged under chaos")
			}
			// The storm must actually have raged: injected loss and
			// reordering, and the hardened client visibly retried.
			snap := reg.Snapshot()
			drops := snap.Counter(`liquid_chaos_injected_total{event="up_drop"}`) +
				snap.Counter(`liquid_chaos_injected_total{event="down_drop"}`)
			reorders := snap.Counter(`liquid_chaos_injected_total{event="up_reorder"}`) +
				snap.Counter(`liquid_chaos_injected_total{event="down_reorder"}`)
			if drops == 0 {
				t.Error("chaos injected no drops — test proved nothing")
			}
			if reorders == 0 {
				t.Error("chaos injected no reorders — test proved nothing")
			}
			csnap := c.Metrics().Snapshot()
			if csnap.Counters["liquid_client_retries_total"] == 0 {
				t.Error("client never retried under 20% loss")
			}
		})
	}
}

// TestNodeUnderChaos is the deterministic soak: a 4-board node behind
// the chaos relay, four concurrent clients each running the same
// program on their own board, 20% loss + reorder + dup in both
// directions. All four boards must report results bit-identical to
// the clean baseline, for every pinned seed. Cross-session held-packet
// releases make the relay occasionally misdeliver a datagram to the
// wrong client, so this also soaks the seq/board response filtering.
func TestNodeUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	const boards = 4
	iters := 100_000
	if raceEnabled {
		iters = 20_000
	}
	obj := assembleAt(t, countProg(iters))

	// Clean-path baseline on a single board.
	_, addr := startServer(t)
	wantRep, wantHead := runCycle(t, dial(t, addr), obj)

	for _, seed := range smokeSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			_, addr := startNode(t, boards)
			proxy := chaosProxy(t, addr, chaos.Config{
				Seed: seed,
				Up:   stormFaults(),
				Down: stormFaults(),
			})

			var wg sync.WaitGroup
			reps := make([]netproto.RunReport, boards)
			heads := make([][]byte, boards)
			errs := make([]error, boards)
			for b := 0; b < boards; b++ {
				c := dialChaos(t, proxy.Addr().String(), seed+int64(b))
				c.Board = uint8(b)
				c.WaitTimeout = 60 * time.Second
				wg.Add(1)
				go func(b int, c *client.Client) {
					defer wg.Done()
					defer func() {
						if r := recover(); r != nil {
							errs[b] = fmt.Errorf("panic: %v", r)
						}
					}()
					if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
						errs[b] = fmt.Errorf("load: %w", err)
						return
					}
					rep, err := c.Start(obj.Origin, 0)
					if err != nil {
						errs[b] = fmt.Errorf("start: %w", err)
						return
					}
					reps[b] = rep
					heads[b], errs[b] = c.ReadMemory(obj.Origin, 64)
				}(b, c)
			}
			wg.Wait()
			for b := 0; b < boards; b++ {
				if errs[b] != nil {
					t.Fatalf("board %d: %v", b, errs[b])
				}
				if reps[b] != wantRep {
					t.Errorf("board %d report diverged:\n got %+v\nwant %+v", b, reps[b], wantRep)
				}
				if string(heads[b]) != string(wantHead) {
					t.Errorf("board %d loaded image diverged", b)
				}
			}
		})
	}
}

// TestLoadInterruptedResumes is the resume acceptance test: a load
// black-holed from chunk 4 onward fails with partial progress, and a
// fresh client (a reconnect) finishes the load by resuming from the
// server's advertised gap — never re-sending chunks the board already
// holds. The server-side apply counter must equal the chunk total:
// every chunk applied exactly once, across both attempts.
func TestLoadInterruptedResumes(t *testing.T) {
	platform := fpx.New(fpx.NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	srv, err := New(platform, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := serveNode(t, srv)

	rules, err := chaos.ParseScript("up:load@4+=drop")
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaosProxy(t, addr, chaos.Config{Seed: 1, Script: rules})

	img := make([]byte, 3*netproto.MaxChunkData+500) // 4 chunks
	for i := range img {
		img[i] = byte(i * 7)
	}
	chunks := len(netproto.ChunkImage(leon.DefaultLoadAddr, img))

	// Attempt 1, through the black hole: chunks 1-3 are acked, chunk 4
	// (and every retransmission of it) vanishes.
	c1 := dial(t, proxy.Addr().String())
	c1.Timeout = 50 * time.Millisecond
	c1.Retries = 2
	c1.SetSeed(1)
	err = c1.LoadProgram(leon.DefaultLoadAddr, img)
	var le *client.LoadError
	if !errors.As(err, &le) {
		t.Fatalf("interrupted load returned %v, want *LoadError", err)
	}
	if le.ChunksAcked != 3 || le.ChunksTotal != chunks {
		t.Fatalf("partial progress = %d/%d, want 3/%d", le.ChunksAcked, le.ChunksTotal, chunks)
	}
	if !errors.Is(err, client.ErrBoardUnreachable) {
		t.Fatalf("LoadError does not unwrap to ErrBoardUnreachable: %v", err)
	}

	// Attempt 2, clean path: the load resumes from chunk 4.
	c2 := dial(t, addr)
	if err := c2.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
		t.Fatalf("resumed load: %v", err)
	}

	snap := platform.Metrics().Snapshot()
	if got := snap.Counters["liquid_fpx_load_chunks_applied_total"]; got != uint64(chunks) {
		t.Errorf("chunks applied = %d, want exactly %d (no chunk applied twice)", got, chunks)
	}
	if snap.Counters["liquid_fpx_load_chunks_dup_total"] == 0 {
		t.Error("resume probe not counted as a duplicate chunk")
	}
	if snap.Counters["liquid_fpx_loads_completed_total"] != 1 {
		t.Error("load did not complete exactly once")
	}
	csnap := c2.Metrics().Snapshot()
	if csnap.Counters["liquid_client_loads_resumed_total"] != 1 {
		t.Error("client did not count the resume")
	}
	if got := csnap.Counters["liquid_client_load_chunks_skipped_total"]; got != 2 {
		t.Errorf("client skipped %d chunks, want 2 (chunks 2-3 already held)", got)
	}
}

// TestDuplicateResponsesSuppressed: with every status ack duplicated
// by the relay, the stray copy left in the socket buffer is discarded
// by the next exchange's seq filter instead of being mistaken for its
// answer.
func TestDuplicateResponsesSuppressed(t *testing.T) {
	platform := fpx.New(fpx.NewEmulator(), [4]byte{10, 0, 0, 2}, 5001)
	srv, err := New(platform, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := serveNode(t, srv)

	rules, err := chaos.ParseScript("down:status=dup")
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaosProxy(t, addr, chaos.Config{Seed: 1, Script: rules})

	c := dial(t, proxy.Addr().String())
	for i := 0; i < 3; i++ {
		if _, err := c.Status(); err != nil {
			t.Fatalf("status %d: %v", i, err)
		}
	}
	snap := c.Metrics().Snapshot()
	if snap.Counters["liquid_client_dup_responses_total"] == 0 {
		t.Error("duplicated acks were never suppressed")
	}
}

// TestRetransmittedStartNotReapplied: the server's dedup window must
// re-ack a duplicated start instead of starting the board twice — a
// double apply would re-run the program and corrupt the cycle report.
func TestRetransmittedStartNotReapplied(t *testing.T) {
	iters := 50_000
	if raceEnabled || testing.Short() {
		iters = 20_000
	}
	obj := assembleAt(t, countProg(iters))

	srv, addr := startServer(t)
	rules, err := chaos.ParseScript("up:start=dup, up:result=dup")
	if err != nil {
		t.Fatal(err)
	}
	proxy := chaosProxy(t, addr, chaos.Config{Seed: 1, Script: rules})
	c := dial(t, proxy.Addr().String())

	if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Start(obj.Origin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles == 0 {
		t.Fatalf("report = %+v", rep)
	}
	snap := srv.Metrics().Snapshot()
	if snap.Counters["liquid_fpx_dup_requests_total"] == 0 {
		t.Error("duplicated requests never hit the dedup window")
	}
}
