//go:build race

package server

// raceEnabled reports whether the race detector is compiled in; the
// concurrency tests scale cycle budgets and latency bounds by it.
const raceEnabled = true
