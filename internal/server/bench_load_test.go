package server

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"liquidarch/internal/chaos"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

// loadBenchDelay is the injected one-way transport latency for the
// load-throughput benchmark. On loopback the real RTT is microseconds,
// which would hide the pipelining win entirely; a fixed 1 ms each way
// makes elapsed time a direct count of serialized round trips:
// impliedRTTs = elapsed / (2 * loadBenchDelay).
const loadBenchDelay = time.Millisecond

// loadBenchChunks sizes the benchmark image: 96 chunks ≈ 97 KiB. A
// stop-and-wait load pays ~1 RTT per chunk; the sliding window pays
// ~ceil(chunks/window) plus the probe, so window=16 should land near
// 96/16 + O(1) implied RTTs.
const loadBenchChunks = 96

// loadBenchRTTs collects per-window implied-RTT figures across the
// window=1 / window=16 subbenchmarks so the pipelined run can be gated
// against the stop-and-wait run (and both emitted to BENCH_load.json).
var loadBenchRTTs = map[int]float64{}

// BenchmarkLoadThroughput measures a full ~96-chunk program load
// through a proxy that injects a symmetric 1 ms delay, once with the
// window disabled (window=1, classic stop-and-wait) and once with the
// default 16-chunk sliding window. The reported "rtts" metric is the
// number of serialized round trips the load cost; the acceptance bar
// is window=16 taking at least 2x fewer than window=1.
func BenchmarkLoadThroughput(b *testing.B) {
	img := make([]byte, (loadBenchChunks-1)*netproto.MaxChunkData+512)
	for i := range img {
		img[i] = byte(i * 31)
	}
	_, addr := startServer(b)
	for _, w := range []int{1, 16} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			lag := chaos.Faults{Delay: 1, DelayMin: loadBenchDelay, DelayMax: loadBenchDelay}
			proxy := chaosProxy(b, addr, chaos.Config{Seed: 1, Up: lag, Down: lag})
			c := dial(b, proxy.Addr().String())
			c.Window = w
			c.Timeout = 2 * time.Second
			b.SetBytes(int64(len(img)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.LoadProgram(leon.DefaultLoadAddr, img); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perLoad := b.Elapsed().Seconds() / float64(b.N)
			rtts := perLoad / (2 * loadBenchDelay.Seconds())
			b.ReportMetric(rtts, "rtts")
			loadBenchRTTs[w] = rtts
			if w == 16 {
				gateLoadRTTs(b)
			}
		})
	}
}

// gateLoadRTTs enforces the pipelining acceptance bar when the smoke
// gate is armed (LIQUID_LOAD_GATE=1, set by `make load-smoke`): the
// windowed load must cost at most half the round trips of the
// stop-and-wait load over the same lossless-but-slow link.
func gateLoadRTTs(b *testing.B) {
	if os.Getenv("LIQUID_LOAD_GATE") == "" {
		return
	}
	w1, ok1 := loadBenchRTTs[1]
	w16, ok16 := loadBenchRTTs[16]
	if !ok1 || !ok16 {
		b.Log("load gate: window=1 baseline not run in this invocation; skipping RTT gate")
		return
	}
	if w16 > w1/2 {
		b.Fatalf("load gate: window=16 cost %.1f implied RTTs, window=1 cost %.1f; need at least a 2x reduction", w16, w1)
	}
	b.Logf("load gate: window=16 %.1f RTTs vs window=1 %.1f RTTs (%.1fx reduction)", w16, w1, w1/w16)
}

// benchLoadJSON is the on-disk shape of BENCH_load.json.
type benchLoadJSON struct {
	Figure string `json:"figure"`
	Data   struct {
		ImageChunks       int     `json:"ImageChunks"`
		DelayMsEachWay    float64 `json:"DelayMsEachWay"`
		Window1RTTs       float64 `json:"Window1RTTs"`
		Window16RTTs      float64 `json:"Window16RTTs"`
		RTTReduction      float64 `json:"RTTReduction"`
		Boards1RunsPerSec float64 `json:"Boards1RunsPerSec"`
		HostCPUs          int     `json:"HostCPUs"`
		Note              string  `json:"Note"`
	} `json:"data"`
}

// gateAndEmitLoadBench is called from the boards=1 leg of
// BenchmarkNodeConcurrentClients. When LIQUID_LOAD_GATE=1 it fails the
// run if single-board throughput regressed below half the checked-in
// BENCH_load.json baseline; when LIQUID_LOAD_JSON names a path it
// rewrites that file with the figures just measured.
func gateAndEmitLoadBench(b *testing.B, runsPerSec float64) {
	if os.Getenv("LIQUID_LOAD_GATE") != "" {
		path := os.Getenv("LIQUID_LOAD_BASELINE")
		if path == "" {
			path = "../../BENCH_load.json"
		}
		if raw, err := os.ReadFile(path); err != nil {
			b.Logf("load gate: no baseline at %s (%v); skipping throughput gate", path, err)
		} else {
			var base benchLoadJSON
			if err := json.Unmarshal(raw, &base); err != nil {
				b.Fatalf("load gate: parse %s: %v", path, err)
			}
			if floor := base.Data.Boards1RunsPerSec / 2; runsPerSec < floor {
				b.Fatalf("load gate: single-board throughput %.2f runs/s below floor %.2f (half of checked-in %.2f)",
					runsPerSec, floor, base.Data.Boards1RunsPerSec)
			} else {
				b.Logf("load gate: single-board %.2f runs/s >= floor %.2f", runsPerSec, floor)
			}
		}
	}
	out := os.Getenv("LIQUID_LOAD_JSON")
	if out == "" {
		return
	}
	var j benchLoadJSON
	j.Figure = "Pipelined control plane: sliding-window load round trips (BenchmarkLoadThroughput, 96-chunk image, 1 ms injected each-way delay) and single-board run throughput with the server-held wait (BenchmarkNodeConcurrentClients/boards=1, ~5 ms program, stock client)"
	j.Data.ImageChunks = loadBenchChunks
	j.Data.DelayMsEachWay = loadBenchDelay.Seconds() * 1000
	j.Data.Window1RTTs = round2(loadBenchRTTs[1])
	j.Data.Window16RTTs = round2(loadBenchRTTs[16])
	if loadBenchRTTs[16] > 0 {
		j.Data.RTTReduction = round2(loadBenchRTTs[1] / loadBenchRTTs[16])
	}
	j.Data.Boards1RunsPerSec = round2(runsPerSec)
	j.Data.HostCPUs = runtime.NumCPU()
	j.Data.Note = "stop-and-wait pays ~1 RTT per chunk; the 16-chunk window overlaps them so the load is latency-bound on ~chunks/window round trips. The runs/s figure uses the stock client: the server parks the wait and replies on completion, so each run costs the program time plus network latency, not a poll interval."
	raw, err := json.MarshalIndent(&j, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		b.Fatalf("load bench: write %s: %v", out, err)
	}
	b.Logf("load bench: wrote %s", out)
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
