package server

import (
	"sync"
	"testing"

	"liquidarch/internal/client"
	"liquidarch/internal/leon"
)

// TestConcurrentClients: several clients hammer one server; the
// reconfiguration server serializes access to the single LEON, and
// every client must see consistent, uncorrupted responses.
func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	const clients = 4
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Each client writes its own page and reads it back.
			base := leon.DefaultLoadAddr + uint32(id)*0x1000
			payload := make([]byte, 512)
			for j := range payload {
				payload[j] = byte(id*31 + j)
			}
			for r := 0; r < rounds; r++ {
				if err := c.WriteMemory(base, payload); err != nil {
					errs <- err
					return
				}
				got, err := c.ReadMemory(base, len(payload))
				if err != nil {
					errs <- err
					return
				}
				for j := range payload {
					if got[j] != payload[j] {
						t.Errorf("client %d round %d: byte %d corrupted", id, r, j)
						return
					}
				}
				if _, err := c.Status(); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
