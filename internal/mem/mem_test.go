package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"liquidarch/internal/amba"
)

func TestSRAMReadWrite(t *testing.T) {
	s := NewSRAM(1024)
	if s.Size() != 1024 {
		t.Fatalf("Size = %d", s.Size())
	}
	if _, err := s.Write(0, 0x11223344, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	v, wait, err := s.Read(0, amba.SizeWord)
	if err != nil || v != 0x11223344 {
		t.Fatalf("Read = %#x, %v", v, err)
	}
	if wait != s.WaitStates {
		t.Errorf("wait = %d, want %d", wait, s.WaitStates)
	}
	// Big-endian byte order.
	if v, _, _ := s.Read(0, amba.SizeByte); v != 0x11 {
		t.Errorf("byte 0 = %#x, want 0x11 (big-endian)", v)
	}
	if v, _, _ := s.Read(2, amba.SizeHalf); v != 0x3344 {
		t.Errorf("half 2 = %#x", v)
	}
	// Sub-word writes.
	if _, err := s.Write(1, 0xAA, amba.SizeByte); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Read(0, amba.SizeWord); v != 0x11AA3344 {
		t.Errorf("after byte write = %#x", v)
	}
	if _, err := s.Write(2, 0xBBCC, amba.SizeHalf); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Read(0, amba.SizeWord); v != 0x11AABBCC {
		t.Errorf("after half write = %#x", v)
	}
}

func TestSRAMBounds(t *testing.T) {
	s := NewSRAM(16)
	if _, _, err := s.Read(16, amba.SizeByte); err == nil {
		t.Error("read past end succeeded")
	}
	if _, _, err := s.Read(13, amba.SizeWord); err == nil {
		t.Error("word read overlapping end succeeded")
	}
	if _, err := s.Write(0xFFFFFFFC, 0, amba.SizeWord); err == nil {
		t.Error("write far past end succeeded")
	}
	if _, err := s.ReadBurst(8, make([]uint32, 4)); err == nil {
		t.Error("burst past end succeeded")
	}
}

func TestSRAMBurstTiming(t *testing.T) {
	s := NewSRAM(256)
	for i := uint32(0); i < 8; i++ {
		s.Write(i*4, i, amba.SizeWord)
	}
	words := make([]uint32, 8)
	cycles, err := s.ReadBurst(0, words)
	if err != nil {
		t.Fatal(err)
	}
	want := s.WaitStates + 8*s.BurstWait
	if cycles != want {
		t.Errorf("burst cycles = %d, want %d", cycles, want)
	}
	for i, w := range words {
		if w != uint32(i) {
			t.Errorf("word %d = %d", i, w)
		}
	}
	// A pipelined burst must beat 8 singles.
	single := 8 * (s.WaitStates + 1)
	if cycles >= single {
		t.Errorf("burst (%d) not faster than singles (%d)", cycles, single)
	}
}

func TestSRAMPokePeek(t *testing.T) {
	s := NewSRAM(64)
	prog := []byte{1, 2, 3, 4, 5}
	if err := s.Poke(10, prog); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := s.Peek(10, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prog) {
		t.Errorf("Peek = %v", got)
	}
	if err := s.Poke32(0, 0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	// Poke32 and bus reads agree on byte order.
	if v, _, _ := s.Read(0, amba.SizeWord); v != 0xCAFEBABE {
		t.Errorf("bus read after Poke32 = %#x", v)
	}
	if v, err := s.Peek32(0); err != nil || v != 0xCAFEBABE {
		t.Errorf("Peek32 = %#x, %v", v, err)
	}
	if err := s.Poke(62, prog); err == nil {
		t.Error("Poke past end succeeded")
	}
	if err := s.Peek(62, got); err == nil {
		t.Error("Peek past end succeeded")
	}
}

// Property: for any word value and aligned address, a bus write followed
// by a bus read returns the same value, and Peek32 agrees.
func TestSRAMWriteReadProperty(t *testing.T) {
	s := NewSRAM(4096)
	f := func(addr uint16, val uint32) bool {
		a := uint32(addr) &^ 3 % 4096
		if _, err := s.Write(a, val, amba.SizeWord); err != nil {
			return false
		}
		v, _, err := s.Read(a, amba.SizeWord)
		if err != nil || v != val {
			return false
		}
		p, err := s.Peek32(a)
		return err == nil && p == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSDRAMControllerPorts(t *testing.T) {
	c := NewController(NewSDRAM(1 << 20))
	for i := 0; i < 3; i++ {
		if _, err := c.Port("m"); err != nil {
			t.Fatalf("port %d: %v", i, err)
		}
	}
	if _, err := c.Port("extra"); err == nil {
		t.Error("fourth port granted; FPX controller supports 3 modules")
	}
}

func TestSDRAMBurstRoundTrip(t *testing.T) {
	c := NewController(NewSDRAM(1 << 16))
	p, err := c.Port("leon")
	if err != nil {
		t.Fatal(err)
	}
	src := []uint64{0x0102030405060708, 0x1112131415161718}
	wc, err := p.WriteBurst(64, src)
	if err != nil {
		t.Fatal(err)
	}
	if want := c.HandshakeCycles + 2*c.BeatCycles; wc != want {
		t.Errorf("write cycles = %d, want %d", wc, want)
	}
	dst := make([]uint64, 2)
	rc, err := p.ReadBurst(64, dst)
	if err != nil {
		t.Fatal(err)
	}
	if dst[0] != src[0] || dst[1] != src[1] {
		t.Errorf("read back %x", dst)
	}
	if want := c.HandshakeCycles + 2*c.BeatCycles; rc != want {
		t.Errorf("read cycles = %d, want %d", rc, want)
	}
	st := c.Stats()
	if st.Requests != 2 || st.ReadBeats != 2 || st.WriteBeats != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSDRAMArbitrationSwitchCost(t *testing.T) {
	c := NewController(NewSDRAM(1 << 16))
	a, _ := c.Port("leon")
	b, _ := c.Port("net")
	buf := make([]uint64, 1)
	base, err := a.ReadBurst(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	same, _ := a.ReadBurst(0, buf)
	other, _ := b.ReadBurst(0, buf)
	if same != base {
		t.Errorf("same-port re-grant cost %d, want %d", same, base)
	}
	if other != base+c.ArbCycles {
		t.Errorf("cross-port grant cost %d, want %d", other, base+c.ArbCycles)
	}
	if c.Stats().ArbSwitch != 1 {
		t.Errorf("ArbSwitch = %d, want 1", c.Stats().ArbSwitch)
	}
}

func TestSDRAMBurstValidation(t *testing.T) {
	c := NewController(NewSDRAM(1024))
	p, _ := c.Port("leon")
	if _, err := p.ReadBurst(4, make([]uint64, 1)); err == nil {
		t.Error("misaligned burst succeeded")
	}
	if _, err := p.ReadBurst(0, make([]uint64, c.MaxBurst+1)); err == nil {
		t.Error("over-length burst succeeded")
	}
	if _, err := p.ReadBurst(1024-8, make([]uint64, 2)); err == nil {
		t.Error("out-of-range burst succeeded")
	}
	if _, err := p.WriteBurst(3, make([]uint64, 1)); err == nil {
		t.Error("misaligned write burst succeeded")
	}
	c.ResetStats()
	if c.Stats() != (ControllerStats{}) {
		t.Error("ResetStats left counters")
	}
}

func TestSDRAMSizeRounding(t *testing.T) {
	if got := NewSDRAM(13).Size(); got != 16 {
		t.Errorf("Size = %d, want 16", got)
	}
}
