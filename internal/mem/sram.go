// Package mem models the Liquid processor system's memories: the FPX
// on-board SRAM the LEON executes user code from (§3.1), the SDRAM
// device, and the FPX multi-module SDRAM controller of [9] that the
// AHB adapter of §3.2 talks to.
//
// All memories are big-endian, matching the SPARC V8 byte order.
package mem

import (
	"encoding/binary"
	"fmt"

	"liquidarch/internal/amba"
)

// SRAM is the FPX zero-bus-turnaround SRAM: a flat byte array with a
// fixed per-access wait-state count. It implements amba.Slave for the
// processor side and exposes Peek/Poke for the user-side port that the
// leon_ctrl circuitry uses to load programs while the CPU is
// disconnected (§3.1).
type SRAM struct {
	data []byte

	// WaitStates is charged on every single access.
	WaitStates int
	// BurstWait is charged per word after the first during a burst.
	BurstWait int
}

// NewSRAM returns a zeroed SRAM of the given size with FPX-like timing
// (2 wait states per random access — the LEON2 default SRAM memory
// configuration — and 2-cycle burst beats through the board-level
// memory bus).
func NewSRAM(size int) *SRAM {
	return &SRAM{data: make([]byte, size), WaitStates: 2, BurstWait: 2}
}

// Size returns the capacity in bytes.
func (s *SRAM) Size() int { return len(s.data) }

func (s *SRAM) check(addr uint32, n uint32) error {
	if uint64(addr)+uint64(n) > uint64(len(s.data)) {
		return &amba.BusError{Addr: addr}
	}
	return nil
}

// Read implements amba.Slave.
func (s *SRAM) Read(addr uint32, size amba.Size) (uint32, int, error) {
	if err := s.check(addr, uint32(size)); err != nil {
		return 0, 0, err
	}
	switch size {
	case amba.SizeWord:
		return binary.BigEndian.Uint32(s.data[addr:]), s.WaitStates, nil
	case amba.SizeHalf:
		return uint32(binary.BigEndian.Uint16(s.data[addr:])), s.WaitStates, nil
	default:
		return uint32(s.data[addr]), s.WaitStates, nil
	}
}

// Write implements amba.Slave.
func (s *SRAM) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	if err := s.check(addr, uint32(size)); err != nil {
		return 0, err
	}
	switch size {
	case amba.SizeWord:
		binary.BigEndian.PutUint32(s.data[addr:], val)
	case amba.SizeHalf:
		binary.BigEndian.PutUint16(s.data[addr:], uint16(val))
	default:
		s.data[addr] = byte(val)
	}
	return s.WaitStates, nil
}

// ReadBurst implements amba.Slave with one wait-state setup and
// pipelined beats.
func (s *SRAM) ReadBurst(addr uint32, words []uint32) (int, error) {
	if err := s.check(addr, uint32(len(words))*4); err != nil {
		return 0, err
	}
	for i := range words {
		words[i] = binary.BigEndian.Uint32(s.data[addr+uint32(i)*4:])
	}
	return s.WaitStates + s.BurstWait*len(words), nil
}

// Poke copies p into the SRAM at addr through the user-side port,
// without bus timing. It is the data path of the paper's "programs are
// sent to the FPX via UDP packets, then written directly to main
// memory".
func (s *SRAM) Poke(addr uint32, p []byte) error {
	if err := s.check(addr, uint32(len(p))); err != nil {
		return fmt.Errorf("mem: poke %d bytes at %#x: %w", len(p), addr, err)
	}
	copy(s.data[addr:], p)
	return nil
}

// Peek copies len(p) bytes from the SRAM at addr into p through the
// user-side port.
func (s *SRAM) Peek(addr uint32, p []byte) error {
	if err := s.check(addr, uint32(len(p))); err != nil {
		return fmt.Errorf("mem: peek %d bytes at %#x: %w", len(p), addr, err)
	}
	copy(p, s.data[addr:])
	return nil
}

// Poke32 writes a single big-endian word through the user-side port.
func (s *SRAM) Poke32(addr uint32, v uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return s.Poke(addr, b[:])
}

// Raw exposes the backing store for whole-memory transfer. The FPX
// memories are board components outside the FPGA: their contents
// survive reconfiguration, which the liquid system models by copying
// Raw between processor instantiations.
func (s *SRAM) Raw() []byte { return s.data }

// Peek32 reads a single big-endian word through the user-side port.
func (s *SRAM) Peek32(addr uint32) (uint32, error) {
	var b [4]byte
	if err := s.Peek(addr, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}
