package mem

import (
	"encoding/binary"
	"fmt"
)

// SDRAM is the raw SDRAM device behind the FPX controller: a byte array
// addressed in 64-bit words. Timing lives in the Controller, which owns
// the device's command interface.
type SDRAM struct {
	data []byte
}

// NewSDRAM returns a zeroed device of the given size (rounded up to a
// multiple of 8 bytes).
func NewSDRAM(size int) *SDRAM {
	size = (size + 7) &^ 7
	return &SDRAM{data: make([]byte, size)}
}

// Size returns the capacity in bytes.
func (d *SDRAM) Size() int { return len(d.data) }

// Raw exposes the backing store for whole-memory transfer across
// reconfigurations (the SDRAM is a board component; see SRAM.Raw).
func (d *SDRAM) Raw() []byte { return d.data }

// ControllerStats counts controller activity; the adapter benchmarks
// (§3.2, experiment E5) read these to show where handshakes go.
type ControllerStats struct {
	Requests   uint64 // handshakes performed
	ReadBeats  uint64 // 64-bit words delivered
	WriteBeats uint64 // 64-bit words accepted
	ArbSwitch  uint64 // grants that switched between modules
}

// Controller is the FPX SDRAM controller of [9]: an arbitrated
// interface with support for up to three modules and sequential bursts
// of 64-bit words whose length must be declared before the transfer
// starts. Each request costs one handshake; each 64-bit beat streams at
// BeatCycles.
type Controller struct {
	dev     *SDRAM
	ports   []*Port
	lastArb int // index of the last granted port, -1 initially

	// HandshakeCycles is the fixed request/grant/row-activate cost per
	// burst (the "separate handshake" of §3.2).
	HandshakeCycles int
	// BeatCycles is the streaming cost per 64-bit word.
	BeatCycles int
	// ArbCycles is charged when the grant moves to a different module.
	ArbCycles int
	// MaxBurst is the longest declared burst in 64-bit words.
	MaxBurst int

	stats ControllerStats
}

// NewController wires a controller to dev with FPX-like timing.
func NewController(dev *SDRAM) *Controller {
	return &Controller{
		dev:             dev,
		lastArb:         -1,
		HandshakeCycles: 8,
		BeatCycles:      2,
		ArbCycles:       2,
		MaxBurst:        64,
	}
}

// Stats returns a snapshot of the activity counters.
func (c *Controller) Stats() ControllerStats { return c.stats }

// ResetStats zeroes the activity counters.
func (c *Controller) ResetStats() { c.stats = ControllerStats{} }

// Port returns a new module port. The FPX controller arbitrates up to
// three modules (LEON plus the network components, §2.4).
func (c *Controller) Port(name string) (*Port, error) {
	if len(c.ports) >= 3 {
		return nil, fmt.Errorf("mem: SDRAM controller supports at most 3 modules, %q is one too many", name)
	}
	p := &Port{ctrl: c, name: name, index: len(c.ports)}
	c.ports = append(c.ports, p)
	return p, nil
}

// Port is one module's connection to the controller.
type Port struct {
	ctrl  *Controller
	name  string
	index int
}

// Name returns the module name given at creation.
func (p *Port) Name() string { return p.name }

// grant performs arbitration and the request handshake, returning its
// cycle cost.
func (p *Port) grant() int {
	c := p.ctrl
	cost := c.HandshakeCycles
	if c.lastArb >= 0 && c.lastArb != p.index {
		cost += c.ArbCycles
		c.stats.ArbSwitch++
	}
	c.lastArb = p.index
	c.stats.Requests++
	return cost
}

func (p *Port) check(addr uint32, beats int) error {
	if addr%8 != 0 {
		return fmt.Errorf("mem: SDRAM burst address %#x not 64-bit aligned", addr)
	}
	if beats > p.ctrl.MaxBurst {
		return fmt.Errorf("mem: burst of %d beats exceeds declared maximum %d", beats, p.ctrl.MaxBurst)
	}
	if uint64(addr)+uint64(beats)*8 > uint64(len(p.ctrl.dev.data)) {
		return fmt.Errorf("mem: SDRAM burst [%#x,+%d beats) out of range", addr, beats)
	}
	return nil
}

// ReadBurst reads len(words) sequential 64-bit words starting at the
// 8-byte-aligned addr. The burst length is declared up front, as the
// FPX controller requires.
func (p *Port) ReadBurst(addr uint32, words []uint64) (int, error) {
	if err := p.check(addr, len(words)); err != nil {
		return 0, err
	}
	cost := p.grant()
	for i := range words {
		words[i] = binary.BigEndian.Uint64(p.ctrl.dev.data[addr+uint32(i)*8:])
	}
	p.ctrl.stats.ReadBeats += uint64(len(words))
	return cost + p.ctrl.BeatCycles*len(words), nil
}

// WriteBurst writes len(words) sequential 64-bit words starting at the
// 8-byte-aligned addr.
func (p *Port) WriteBurst(addr uint32, words []uint64) (int, error) {
	if err := p.check(addr, len(words)); err != nil {
		return 0, err
	}
	cost := p.grant()
	for i, w := range words {
		binary.BigEndian.PutUint64(p.ctrl.dev.data[addr+uint32(i)*8:], w)
	}
	p.ctrl.stats.WriteBeats += uint64(len(words))
	return cost + p.ctrl.BeatCycles*len(words), nil
}
