package ahbadapter

import (
	"testing"
	"testing/quick"

	"liquidarch/internal/amba"
	"liquidarch/internal/mem"
)

func newAdapter(t *testing.T) (*Adapter, *mem.Controller) {
	t.Helper()
	ctrl := mem.NewController(mem.NewSDRAM(1 << 20))
	port, err := ctrl.Port("leon")
	if err != nil {
		t.Fatal(err)
	}
	return New(port), ctrl
}

func TestSingleWordRoundTrip(t *testing.T) {
	a, _ := newAdapter(t)
	for _, addr := range []uint32{0, 4, 8, 12, 100} {
		if _, err := a.Write(addr, 0x1000+addr, amba.SizeWord); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range []uint32{0, 4, 8, 12, 100} {
		v, _, err := a.Read(addr, amba.SizeWord)
		if err != nil || v != 0x1000+addr {
			t.Errorf("Read(%#x) = %#x, %v", addr, v, err)
		}
	}
}

func TestSubWordAccess(t *testing.T) {
	a, _ := newAdapter(t)
	if _, err := a.Write(0, 0xAABBCCDD, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(4, 0x11223344, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	// Bytes across both 32-bit halves of the 64-bit word.
	wantBytes := map[uint32]uint32{0: 0xAA, 1: 0xBB, 2: 0xCC, 3: 0xDD, 4: 0x11, 5: 0x22, 6: 0x33, 7: 0x44}
	for addr, want := range wantBytes {
		if v, _, _ := a.Read(addr, amba.SizeByte); v != want {
			t.Errorf("byte read %d = %#x, want %#x", addr, v, want)
		}
	}
	for addr, want := range map[uint32]uint32{0: 0xAABB, 2: 0xCCDD, 4: 0x1122, 6: 0x3344} {
		if v, _, _ := a.Read(addr, amba.SizeHalf); v != want {
			t.Errorf("half read %d = %#x, want %#x", addr, v, want)
		}
	}
	// Sub-word writes merge into the 64-bit word.
	if _, err := a.Write(5, 0xEE, amba.SizeByte); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := a.Read(4, amba.SizeWord); v != 0x11EE3344 {
		t.Errorf("after byte write = %#x", v)
	}
	if _, err := a.Write(2, 0x9876, amba.SizeHalf); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := a.Read(0, amba.SizeWord); v != 0xAABB9876 {
		t.Errorf("after half write = %#x", v)
	}
}

// TestWriteIsRMW verifies the §3.2 claim: every 32-bit write costs two
// handshakes (one read, one write), "significantly impairing
// performance" relative to a read.
func TestWriteIsRMW(t *testing.T) {
	a, ctrl := newAdapter(t)
	ctrl.ResetStats()
	wc, err := a.Write(0, 1, amba.SizeWord)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Requests; got != 2 {
		t.Errorf("write performed %d handshakes, want 2 (read-modify-write)", got)
	}
	ctrl.ResetStats()
	_, rc, err := a.Read(0, amba.SizeWord)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Requests; got != 1 {
		t.Errorf("read performed %d handshakes, want 1", got)
	}
	if wc <= rc {
		t.Errorf("write cost %d not greater than read cost %d", wc, rc)
	}
	if a.Stats().RMWCycles == 0 {
		t.Error("RMWCycles not accounted")
	}
}

// TestBurstBeatsSingles verifies that a 4-word line fill through one
// declared burst is cheaper than four individual reads — the reason the
// adapter always uses a short burst.
func TestBurstBeatsSingles(t *testing.T) {
	a, _ := newAdapter(t)
	words := make([]uint32, 4)
	burst, err := a.ReadBurst(0, words)
	if err != nil {
		t.Fatal(err)
	}
	singles := 0
	for i := 0; i < 4; i++ {
		_, c, err := a.Read(uint32(i)*4, amba.SizeWord)
		if err != nil {
			t.Fatal(err)
		}
		singles += c
	}
	if burst >= singles {
		t.Errorf("4-word burst (%d cycles) not cheaper than singles (%d)", burst, singles)
	}
}

// TestLongBurstExtraHandshakes: sequential bursts needing more than 4
// 32-bit words require at least one additional handshake (§3.2).
func TestLongBurstExtraHandshakes(t *testing.T) {
	a, ctrl := newAdapter(t)
	ctrl.ResetStats()
	if _, err := a.ReadBurst(0, make([]uint32, 4)); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Requests; got != 1 {
		t.Fatalf("4-word burst used %d handshakes, want 1", got)
	}
	ctrl.ResetStats()
	if _, err := a.ReadBurst(0, make([]uint32, 8)); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Requests; got != 2 {
		t.Errorf("8-word burst used %d handshakes, want 2", got)
	}
	ctrl.ResetStats()
	if _, err := a.ReadBurst(0, make([]uint32, 5)); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Requests; got != 2 {
		t.Errorf("5-word burst used %d handshakes, want 2", got)
	}
}

func TestUnalignedBurstStart(t *testing.T) {
	a, _ := newAdapter(t)
	for i := uint32(0); i < 8; i++ {
		if _, err := a.Write(i*4, i+1, amba.SizeWord); err != nil {
			t.Fatal(err)
		}
	}
	// Start at a word that is the high half of a 64-bit word.
	words := make([]uint32, 4)
	if _, err := a.ReadBurst(4, words); err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != uint32(i)+2 {
			t.Errorf("word %d = %d, want %d", i, w, i+2)
		}
	}
	if a.Stats().WastedWords == 0 {
		t.Error("unaligned burst should waste fetched words")
	}
}

func TestConfigurableBurstWords(t *testing.T) {
	a, ctrl := newAdapter(t)
	a.BurstWords = 8
	ctrl.ResetStats()
	if _, err := a.ReadBurst(0, make([]uint32, 8)); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Requests; got != 1 {
		t.Errorf("8-word burst with BurstWords=8 used %d handshakes, want 1", got)
	}
	a.BurstWords = 0
	if _, err := a.ReadBurst(0, make([]uint32, 4)); err == nil {
		t.Error("BurstWords=0 accepted")
	}
}

// Property: any sequence of aligned word writes is read back exactly,
// via both single reads and bursts.
func TestReadBackProperty(t *testing.T) {
	a, _ := newAdapter(t)
	f := func(seed uint32, vals []uint32) bool {
		if len(vals) > 32 {
			vals = vals[:32]
		}
		base := seed % 1024 * 4
		for i, v := range vals {
			if _, err := a.Write(base+uint32(i)*4, v, amba.SizeWord); err != nil {
				return false
			}
		}
		got := make([]uint32, len(vals))
		if _, err := a.ReadBurst(base, got); err != nil {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
			v, _, err := a.Read(base+uint32(i)*4, amba.SizeWord)
			if err != nil || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsReset(t *testing.T) {
	a, _ := newAdapter(t)
	a.Read(0, amba.SizeWord)
	a.Write(0, 1, amba.SizeWord)
	a.ReadBurst(0, make([]uint32, 4))
	st := a.Stats()
	if st.SingleReads != 1 || st.SingleWrites != 1 || st.BurstChunks != 1 {
		t.Errorf("stats = %+v", st)
	}
	a.ResetStats()
	if a.Stats() != (Stats{}) {
		t.Error("ResetStats left counters")
	}
}
