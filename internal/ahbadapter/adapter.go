// Package ahbadapter implements the memory adapter of §3.2 of the
// paper: the finite-state bridge between the 32-bit AMBA AHB bus-slave
// interface and the 64-bit FPX SDRAM controller handshake.
//
// The design decisions it reproduces:
//
//   - Single 32-bit reads select the appropriate half of a 64-bit word
//     (wasting half the memory bandwidth).
//   - Writes are read-modify-write: the controller must first read the
//     64-bit word, merge the 32 (or fewer) written bits, and write it
//     back — two separate handshakes per write, "significantly
//     impairing performance".
//   - Read bursts are always issued as short sequential bursts of up to
//     4 32-bit words; longer AHB bursts pay at least one additional
//     handshake per 4-word chunk. A couple of beats are wasted when the
//     burst is shorter, but the 4-word fill avoids per-word handshakes.
//   - Write bursts are not allowed (burst length is unknown ahead of
//     time on the AHB), keeping memory integrity intact.
package ahbadapter

import (
	"fmt"

	"liquidarch/internal/amba"
	"liquidarch/internal/mem"
)

// Stats counts adapter activity for the E5 experiments.
type Stats struct {
	SingleReads  uint64
	SingleWrites uint64
	RMWCycles    uint64 // cycles spent in read-modify-write
	BurstChunks  uint64 // 4-word chunks issued for AHB bursts
	WastedWords  uint64 // 32-bit words fetched beyond what the AHB asked for
}

// Adapter bridges the AHB to one port of the FPX SDRAM controller. It
// implements amba.Slave.
type Adapter struct {
	port *mem.Port

	// BurstWords is the fixed read-burst chunk size in 32-bit words
	// (the paper uses 4; configurable for the ablation study E5/§6).
	BurstWords int

	stats Stats
}

// New returns an adapter over the given controller port using the
// paper's 4-word read chunk.
func New(port *mem.Port) *Adapter {
	return &Adapter{port: port, BurstWords: 4}
}

// Stats returns a snapshot of the adapter counters.
func (a *Adapter) Stats() Stats { return a.stats }

// ResetStats zeroes the adapter counters.
func (a *Adapter) ResetStats() { a.stats = Stats{} }

// read64 fetches the 64-bit word containing addr.
func (a *Adapter) read64(addr uint32) (uint64, int, error) {
	var buf [1]uint64
	cycles, err := a.port.ReadBurst(addr&^7, buf[:])
	return buf[0], cycles, err
}

// Read implements amba.Slave: a single-mode burst of one 64-bit word,
// selecting the addressed bytes.
func (a *Adapter) Read(addr uint32, size amba.Size) (uint32, int, error) {
	w64, cycles, err := a.read64(addr)
	if err != nil {
		return 0, cycles, err
	}
	a.stats.SingleReads++
	// Select the appropriate 32-bit word, then the sub-word bytes.
	word := uint32(w64 >> ((4 - addr&4) * 8) & 0xFFFFFFFF)
	switch size {
	case amba.SizeWord:
		return word, cycles, nil
	case amba.SizeHalf:
		return word >> ((2 - addr&2) * 8) & 0xFFFF, cycles, nil
	default:
		return word >> ((3 - addr&3) * 8) & 0xFF, cycles, nil
	}
}

// Write implements amba.Slave: read the full 64-bit word, modify the
// addressed bits, write it back — two handshakes.
func (a *Adapter) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	w64, rc, err := a.read64(addr)
	if err != nil {
		return rc, err
	}
	var mask uint64
	var shift uint32
	switch size {
	case amba.SizeWord:
		shift = (4 - addr&4) * 8
		mask = 0xFFFFFFFF
	case amba.SizeHalf:
		shift = (6 - addr&6) * 8
		mask = 0xFFFF
	default:
		shift = (7 - addr&7) * 8
		mask = 0xFF
	}
	w64 = w64&^(mask<<shift) | (uint64(val)&mask)<<shift
	wc, err := a.port.WriteBurst(addr&^7, []uint64{w64})
	if err != nil {
		return rc + wc, err
	}
	a.stats.SingleWrites++
	a.stats.RMWCycles += uint64(rc + wc)
	return rc + wc, nil
}

// ReadBurst implements amba.Slave: the AHB burst is served in chunks of
// BurstWords 32-bit words, each chunk one declared sequential burst on
// the SDRAM side.
func (a *Adapter) ReadBurst(addr uint32, words []uint32) (int, error) {
	if a.BurstWords < 1 {
		return 0, fmt.Errorf("ahbadapter: invalid BurstWords %d", a.BurstWords)
	}
	total := 0
	for done := 0; done < len(words); {
		n := len(words) - done
		if n > a.BurstWords {
			n = a.BurstWords
		}
		chunkAddr := addr + uint32(done)*4
		// Cover the chunk with whole 64-bit words.
		start := chunkAddr &^ 7
		end := (chunkAddr + uint32(n)*4 + 7) &^ 7
		beats := make([]uint64, (end-start)/8)
		cycles, err := a.port.ReadBurst(start, beats)
		total += cycles
		if err != nil {
			return total, err
		}
		a.stats.BurstChunks++
		a.stats.WastedWords += uint64(len(beats))*2 - uint64(n)
		for i := 0; i < n; i++ {
			byteOff := chunkAddr + uint32(i)*4 - start
			w64 := beats[byteOff/8]
			words[done+i] = uint32(w64 >> ((4 - byteOff&4) * 8) & 0xFFFFFFFF)
		}
		done += n
	}
	return total, nil
}
