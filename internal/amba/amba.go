// Package amba models the two on-chip buses of the LEON processor
// system: the AMBA AHB high-performance backbone connecting the
// processor, the memory system and the APB bridge, and the AMBA APB
// low-bandwidth peripheral bus (The paper, §2.3 and [10]).
//
// The model is transaction-level with cycle accounting rather than
// signal-level: each access returns the number of bus clock cycles it
// consumed, including arbitration, the address phase and slave wait
// states. Only the features the LEON core actually uses are modelled
// (§2.4: single and incrementing bursts, transfer sizes ≤ 32 bits, no
// split transfers).
package amba

import "fmt"

// Size is an AHB transfer size (HSIZE). Only byte, halfword and word are
// used by the LEON integer unit.
type Size uint8

// Transfer sizes in bytes.
const (
	SizeByte Size = 1
	SizeHalf Size = 2
	SizeWord Size = 4
)

// BusError reports an access to an address no slave claims (AHB ERROR
// response). The CPU maps it to a data/instruction access exception.
type BusError struct {
	Addr  uint32
	Write bool
}

func (e *BusError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("amba: bus error: %s at unmapped address %#08x", kind, e.Addr)
}

// AlignmentError reports a transfer whose address is not a multiple of
// its size. The CPU maps it to mem_address_not_aligned.
type AlignmentError struct {
	Addr uint32
	Size Size
}

func (e *AlignmentError) Error() string {
	return fmt.Sprintf("amba: unaligned %d-byte access at %#08x", e.Size, e.Addr)
}

// Slave is the bus-facing interface of an AHB slave. Wait counts are
// slave wait states only; the bus adds its own address-phase and
// arbitration cycles.
type Slave interface {
	// Read returns the value at addr, zero-extended to 32 bits.
	Read(addr uint32, size Size) (val uint32, wait int, err error)
	// Write stores the low size bytes of val at addr.
	Write(addr uint32, val uint32, size Size) (wait int, err error)
	// ReadBurst performs an incrementing word burst starting at addr,
	// filling words. Slaves without native burst support can delegate
	// to ReadBurstSingles.
	ReadBurst(addr uint32, words []uint32) (wait int, err error)
}

// ReadBurstSingles implements ReadBurst as a sequence of single word
// reads, for slaves with no native burst support (each beat pays the
// slave's full access latency, which is exactly the handshake cost the
// paper's adapter exists to avoid).
func ReadBurstSingles(s Slave, addr uint32, words []uint32) (int, error) {
	total := 0
	for i := range words {
		v, wait, err := s.Read(addr+uint32(i)*4, SizeWord)
		if err != nil {
			return total, err
		}
		words[i] = v
		total += wait + 1
	}
	return total, nil
}

// Region is an address window claimed by a slave on the AHB.
type Region struct {
	Name  string
	Base  uint32
	Size  uint32
	Slave Slave
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint32) bool {
	return addr >= r.Base && addr-r.Base < r.Size
}

// Stats accumulates AHB traffic counters.
type Stats struct {
	Reads      uint64 // single read transfers
	Writes     uint64 // single write transfers
	Bursts     uint64 // burst transactions
	BurstWords uint64 // words moved by bursts
	WaitCycles uint64 // slave wait states observed
	BusErrors  uint64
}

// AHB is the high-performance system backbone. The LEON processor is
// the only bus master in the Liquid processor system (the network side
// reaches memory through the controller's own port, §2.4), so
// arbitration is modelled as a fixed single-cycle grant.
type AHB struct {
	regions []Region
	stats   Stats

	// GrantCycles is charged once per transaction for arbitration and
	// the address phase.
	GrantCycles int
}

// NewAHB returns an empty bus with the default 1-cycle grant.
func NewAHB() *AHB {
	return &AHB{GrantCycles: 1}
}

// Map attaches slave to the window [base, base+size). Windows must not
// overlap existing ones.
func (b *AHB) Map(name string, base, size uint32, s Slave) error {
	if size == 0 {
		return fmt.Errorf("amba: region %q has zero size", name)
	}
	nr := Region{Name: name, Base: base, Size: size, Slave: s}
	for i := range b.regions {
		r := &b.regions[i]
		if base < r.Base+r.Size && r.Base < base+size {
			return fmt.Errorf("amba: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				name, base, base+size, r.Name, r.Base, r.Base+r.Size)
		}
	}
	b.regions = append(b.regions, nr)
	return nil
}

// Lookup returns the region containing addr, or nil.
func (b *AHB) Lookup(addr uint32) *Region {
	for i := range b.regions {
		if b.regions[i].Contains(addr) {
			return &b.regions[i]
		}
	}
	return nil
}

// Regions returns the mapped address windows (for diagnostics).
func (b *AHB) Regions() []Region {
	out := make([]Region, len(b.regions))
	copy(out, b.regions)
	return out
}

// Stats returns a snapshot of the traffic counters.
func (b *AHB) Stats() Stats { return b.stats }

// ResetStats zeroes the traffic counters.
func (b *AHB) ResetStats() { b.stats = Stats{} }

func checkAlign(addr uint32, size Size) error {
	if addr&(uint32(size)-1) != 0 { // sizes are powers of two
		return &AlignmentError{Addr: addr, Size: size}
	}
	return nil
}

// Read performs a single transfer and returns the value and total bus
// cycles consumed.
func (b *AHB) Read(addr uint32, size Size) (uint32, int, error) {
	if err := checkAlign(addr, size); err != nil {
		return 0, 0, err
	}
	r := b.Lookup(addr)
	if r == nil {
		b.stats.BusErrors++
		return 0, b.GrantCycles, &BusError{Addr: addr}
	}
	v, wait, err := r.Slave.Read(addr-r.Base, size)
	if err != nil {
		b.stats.BusErrors++
		return 0, b.GrantCycles + wait, err
	}
	b.stats.Reads++
	b.stats.WaitCycles += uint64(wait)
	return v, b.GrantCycles + wait + 1, nil
}

// Write performs a single transfer and returns total bus cycles.
func (b *AHB) Write(addr uint32, val uint32, size Size) (int, error) {
	if err := checkAlign(addr, size); err != nil {
		return 0, err
	}
	r := b.Lookup(addr)
	if r == nil {
		b.stats.BusErrors++
		return b.GrantCycles, &BusError{Addr: addr, Write: true}
	}
	wait, err := r.Slave.Write(addr-r.Base, val, size)
	if err != nil {
		b.stats.BusErrors++
		return b.GrantCycles + wait, err
	}
	b.stats.Writes++
	b.stats.WaitCycles += uint64(wait)
	return b.GrantCycles + wait + 1, nil
}

// ReadBurst performs an incrementing word burst (the only burst kind the
// LEON uses for line fills, §2.4) and returns total bus cycles. The
// burst must not cross a region boundary.
func (b *AHB) ReadBurst(addr uint32, words []uint32) (int, error) {
	if len(words) == 0 {
		return 0, nil
	}
	if err := checkAlign(addr, SizeWord); err != nil {
		return 0, err
	}
	r := b.Lookup(addr)
	if r == nil || !r.Contains(addr+uint32(len(words))*4-1) {
		b.stats.BusErrors++
		return b.GrantCycles, &BusError{Addr: addr}
	}
	wait, err := r.Slave.ReadBurst(addr-r.Base, words)
	if err != nil {
		b.stats.BusErrors++
		return b.GrantCycles + wait, err
	}
	b.stats.Bursts++
	b.stats.BurstWords += uint64(len(words))
	b.stats.WaitCycles += uint64(wait)
	return b.GrantCycles + wait, nil
}
