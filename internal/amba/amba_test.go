package amba

import (
	"errors"
	"testing"
)

// ramSlave is a trivial word-addressable slave used by the bus tests.
type ramSlave struct {
	words map[uint32]uint32
	wait  int
}

func newRAM(wait int) *ramSlave {
	return &ramSlave{words: make(map[uint32]uint32), wait: wait}
}

func (r *ramSlave) Read(addr uint32, size Size) (uint32, int, error) {
	w := r.words[addr&^3]
	switch size {
	case SizeWord:
		return w, r.wait, nil
	case SizeHalf:
		return w >> ((2 - addr&2) * 8) & 0xFFFF, r.wait, nil
	default:
		return w >> ((3 - addr&3) * 8) & 0xFF, r.wait, nil
	}
}

func (r *ramSlave) Write(addr uint32, val uint32, size Size) (int, error) {
	cur := r.words[addr&^3]
	switch size {
	case SizeWord:
		cur = val
	case SizeHalf:
		shift := (2 - addr&2) * 8
		cur = cur&^(0xFFFF<<shift) | val&0xFFFF<<shift
	default:
		shift := (3 - addr&3) * 8
		cur = cur&^(0xFF<<shift) | val&0xFF<<shift
	}
	r.words[addr&^3] = cur
	return r.wait, nil
}

func (r *ramSlave) ReadBurst(addr uint32, words []uint32) (int, error) {
	return ReadBurstSingles(r, addr, words)
}

func TestMapOverlapRejected(t *testing.T) {
	b := NewAHB()
	if err := b.Map("a", 0x1000, 0x1000, newRAM(0)); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ base, size uint32 }{
		{0x1000, 0x1000}, // identical
		{0x1800, 0x1000}, // tail overlap
		{0x0800, 0x1000}, // head overlap
		{0x0000, 0x10000},
	}
	for _, c := range cases {
		if err := b.Map("b", c.base, c.size, newRAM(0)); err == nil {
			t.Errorf("Map(%#x, %#x) succeeded, want overlap error", c.base, c.size)
		}
	}
	// Adjacent is fine.
	if err := b.Map("c", 0x2000, 0x1000, newRAM(0)); err != nil {
		t.Errorf("adjacent Map failed: %v", err)
	}
	if err := b.Map("zero", 0x5000, 0, newRAM(0)); err == nil {
		t.Error("zero-size Map succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	b := NewAHB()
	ram := newRAM(2)
	if err := b.Map("ram", 0x40000000, 0x1000, ram); err != nil {
		t.Fatal(err)
	}
	if cycles, err := b.Write(0x40000010, 0xDEADBEEF, SizeWord); err != nil || cycles != 1+2+1 {
		t.Fatalf("Write: cycles=%d err=%v", cycles, err)
	}
	v, cycles, err := b.Read(0x40000010, SizeWord)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("Read = %#x, %v", v, err)
	}
	if cycles != 1+2+1 {
		t.Errorf("Read cycles = %d, want 4 (grant+wait+data)", cycles)
	}
	// Sub-word access extracts big-endian bytes.
	if v, _, _ := b.Read(0x40000010, SizeByte); v != 0xDE {
		t.Errorf("byte 0 = %#x, want 0xDE", v)
	}
	if v, _, _ := b.Read(0x40000013, SizeByte); v != 0xEF {
		t.Errorf("byte 3 = %#x, want 0xEF", v)
	}
	if v, _, _ := b.Read(0x40000012, SizeHalf); v != 0xBEEF {
		t.Errorf("half 2 = %#x, want 0xBEEF", v)
	}
}

func TestBusErrorOnUnmapped(t *testing.T) {
	b := NewAHB()
	if err := b.Map("ram", 0, 0x1000, newRAM(0)); err != nil {
		t.Fatal(err)
	}
	_, _, err := b.Read(0x2000, SizeWord)
	var be *BusError
	if !errors.As(err, &be) {
		t.Fatalf("Read unmapped: err = %v, want BusError", err)
	}
	if be.Addr != 0x2000 || be.Write {
		t.Errorf("BusError = %+v", be)
	}
	if _, err := b.Write(0x2000, 0, SizeWord); err == nil {
		t.Error("Write unmapped succeeded")
	}
	if b.Stats().BusErrors != 2 {
		t.Errorf("BusErrors = %d, want 2", b.Stats().BusErrors)
	}
}

func TestAlignmentChecks(t *testing.T) {
	b := NewAHB()
	if err := b.Map("ram", 0, 0x1000, newRAM(0)); err != nil {
		t.Fatal(err)
	}
	var ae *AlignmentError
	if _, _, err := b.Read(2, SizeWord); !errors.As(err, &ae) {
		t.Errorf("unaligned word read: %v", err)
	}
	if _, _, err := b.Read(1, SizeHalf); !errors.As(err, &ae) {
		t.Errorf("unaligned half read: %v", err)
	}
	if _, err := b.Write(3, 0, SizeWord); !errors.As(err, &ae) {
		t.Errorf("unaligned word write: %v", err)
	}
	if _, err := b.ReadBurst(6, make([]uint32, 2)); !errors.As(err, &ae) {
		t.Errorf("unaligned burst: %v", err)
	}
	// Bytes are always aligned.
	if _, _, err := b.Read(3, SizeByte); err != nil {
		t.Errorf("byte read: %v", err)
	}
}

func TestReadBurst(t *testing.T) {
	b := NewAHB()
	ram := newRAM(1)
	if err := b.Map("ram", 0x100, 0x100, ram); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 8; i++ {
		if _, err := b.Write(0x100+i*4, i+1, SizeWord); err != nil {
			t.Fatal(err)
		}
	}
	words := make([]uint32, 4)
	if _, err := b.ReadBurst(0x100, words); err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != uint32(i+1) {
			t.Errorf("burst word %d = %d, want %d", i, w, i+1)
		}
	}
	// Burst crossing out of the region is a bus error.
	if _, err := b.ReadBurst(0x1F8, make([]uint32, 4)); err == nil {
		t.Error("cross-boundary burst succeeded")
	}
	// Empty burst is a no-op.
	if n, err := b.ReadBurst(0x100, nil); n != 0 || err != nil {
		t.Errorf("empty burst: n=%d err=%v", n, err)
	}
	st := b.Stats()
	if st.Bursts != 1 || st.BurstWords != 4 {
		t.Errorf("stats = %+v, want 1 burst of 4 words", st)
	}
}

func TestStatsAndReset(t *testing.T) {
	b := NewAHB()
	if err := b.Map("ram", 0, 0x1000, newRAM(3)); err != nil {
		t.Fatal(err)
	}
	b.Read(0, SizeWord)
	b.Write(4, 1, SizeWord)
	st := b.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.WaitCycles != 6 {
		t.Errorf("stats = %+v", st)
	}
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Errorf("ResetStats left %+v", b.Stats())
	}
}

func TestLookupAndRegions(t *testing.T) {
	b := NewAHB()
	if err := b.Map("rom", 0, 0x1000, newRAM(0)); err != nil {
		t.Fatal(err)
	}
	if err := b.Map("ram", 0x40000000, 0x1000, newRAM(0)); err != nil {
		t.Fatal(err)
	}
	if r := b.Lookup(0x40000FFF); r == nil || r.Name != "ram" {
		t.Errorf("Lookup(0x40000FFF) = %v", r)
	}
	if r := b.Lookup(0x40001000); r != nil {
		t.Errorf("Lookup past end = %v, want nil", r)
	}
	if got := len(b.Regions()); got != 2 {
		t.Errorf("Regions() has %d entries, want 2", got)
	}
}

func TestAPBWordAndSubWord(t *testing.T) {
	apb := NewAPB()
	dev := &regDevice{regs: map[uint32]uint32{}}
	if err := apb.Map("uart", 0x70, 0x10, dev); err != nil {
		t.Fatal(err)
	}
	if _, err := apb.Write(0x70, 0xAABBCCDD, SizeWord); err != nil {
		t.Fatal(err)
	}
	v, cycles, err := apb.Read(0x70, SizeWord)
	if err != nil || v != 0xAABBCCDD {
		t.Fatalf("Read = %#x, %v", v, err)
	}
	if cycles != apb.cost() {
		t.Errorf("cycles = %d, want %d", cycles, apb.cost())
	}
	// Sub-word read.
	if v, _, _ := apb.Read(0x71, SizeByte); v != 0xBB {
		t.Errorf("byte read = %#x, want 0xBB", v)
	}
	if v, _, _ := apb.Read(0x72, SizeHalf); v != 0xCCDD {
		t.Errorf("half read = %#x, want 0xCCDD", v)
	}
	// Sub-word write merges.
	if _, err := apb.Write(0x73, 0x11, SizeByte); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := apb.Read(0x70, SizeWord); v != 0xAABBCC11 {
		t.Errorf("after byte write: %#x, want 0xAABBCC11", v)
	}
	// Unmapped offset errors.
	if _, _, err := apb.Read(0x200, SizeWord); err == nil {
		t.Error("unmapped APB read succeeded")
	}
	// Overlapping device map rejected.
	if err := apb.Map("dup", 0x78, 0x10, dev); err == nil {
		t.Error("overlapping APB Map succeeded")
	}
}

type regDevice struct {
	regs map[uint32]uint32
}

func (d *regDevice) ReadReg(off uint32) (uint32, error)  { return d.regs[off], nil }
func (d *regDevice) WriteReg(off uint32, v uint32) error { d.regs[off] = v; return nil }

func TestAPBBurstDegradesToSingles(t *testing.T) {
	apb := NewAPB()
	dev := &regDevice{regs: map[uint32]uint32{0: 1, 4: 2}}
	if err := apb.Map("d", 0, 0x10, dev); err != nil {
		t.Fatal(err)
	}
	words := make([]uint32, 2)
	cycles, err := apb.ReadBurst(0, words)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 1 || words[1] != 2 {
		t.Errorf("burst = %v", words)
	}
	if cycles < 2*apb.cost() {
		t.Errorf("burst cycles = %d, want ≥ %d (two singles)", cycles, 2*apb.cost())
	}
}
