package amba

import "fmt"

// Device is a register-file peripheral on the APB. Offsets are relative
// to the device's window and always word-sized: the APB bridge performs
// word accesses only, as in LEON2.
type Device interface {
	// ReadReg returns the register at word-aligned offset off.
	ReadReg(off uint32) (uint32, error)
	// WriteReg stores v to the register at word-aligned offset off.
	WriteReg(off uint32, v uint32) error
}

type apbRegion struct {
	name   string
	base   uint32
	size   uint32
	device Device
}

// APB is the low-bandwidth peripheral bus, attached to the AHB through
// a bridge. Every transfer pays BridgeCycles for the AHB→APB crossing
// plus one APB setup and one APB access cycle (no wait states: LEON APB
// peripherals respond immediately).
type APB struct {
	regions []apbRegion

	// BridgeCycles is the AHB-to-APB crossing penalty per transfer.
	BridgeCycles int
}

// NewAPB returns an empty peripheral bus with the default 2-cycle
// bridge penalty.
func NewAPB() *APB {
	return &APB{BridgeCycles: 2}
}

// Map attaches dev to the window [base, base+size) of the APB address
// space (offsets relative to the bridge's AHB window).
func (p *APB) Map(name string, base, size uint32, dev Device) error {
	if size == 0 {
		return fmt.Errorf("amba: APB device %q has zero size", name)
	}
	for _, r := range p.regions {
		if base < r.base+r.size && r.base < base+size {
			return fmt.Errorf("amba: APB device %q overlaps %q", name, r.name)
		}
	}
	p.regions = append(p.regions, apbRegion{name: name, base: base, size: size, device: dev})
	return nil
}

func (p *APB) lookup(addr uint32) *apbRegion {
	for i := range p.regions {
		r := &p.regions[i]
		if addr >= r.base && addr-r.base < r.size {
			return r
		}
	}
	return nil
}

// cost is the per-transfer APB cycle cost (bridge + setup + access).
func (p *APB) cost() int { return p.BridgeCycles + 2 }

// Read implements Slave. Sub-word reads extract the addressed bytes
// from the 32-bit register, big-endian as seen by the SPARC.
func (p *APB) Read(addr uint32, size Size) (uint32, int, error) {
	r := p.lookup(addr)
	if r == nil {
		return 0, p.cost(), &BusError{Addr: addr}
	}
	word, err := r.device.ReadReg((addr - r.base) &^ 3)
	if err != nil {
		return 0, p.cost(), err
	}
	switch size {
	case SizeWord:
		return word, p.cost(), nil
	case SizeHalf:
		shift := (2 - addr&2) * 8
		return word >> shift & 0xFFFF, p.cost(), nil
	default:
		shift := (3 - addr&3) * 8
		return word >> shift & 0xFF, p.cost(), nil
	}
}

// Write implements Slave. Sub-word writes read-modify-write the 32-bit
// register, matching the word-only APB data path.
func (p *APB) Write(addr uint32, val uint32, size Size) (int, error) {
	r := p.lookup(addr)
	if r == nil {
		return p.cost(), &BusError{Addr: addr, Write: true}
	}
	off := (addr - r.base) &^ 3
	word := val
	if size != SizeWord {
		cur, err := r.device.ReadReg(off)
		if err != nil {
			return p.cost(), err
		}
		switch size {
		case SizeHalf:
			shift := (2 - addr&2) * 8
			mask := uint32(0xFFFF) << shift
			word = cur&^mask | val<<shift&mask
		default:
			shift := (3 - addr&3) * 8
			mask := uint32(0xFF) << shift
			word = cur&^mask | val<<shift&mask
		}
	}
	if err := r.device.WriteReg(off, word); err != nil {
		return p.cost(), err
	}
	return p.cost(), nil
}

// ReadBurst implements Slave; the APB has no burst support, so bursts
// degrade to singles (the bridge breaks them up).
func (p *APB) ReadBurst(addr uint32, words []uint32) (int, error) {
	return ReadBurstSingles(p, addr, words)
}
