package link

import (
	"testing"

	"liquidarch/internal/leon"
)

const trivialMain = `
main:
	retl
	mov 7, %o0
`

func TestBuildDefaults(t *testing.T) {
	img, err := Build(trivialMain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if img.Origin != leon.DefaultLoadAddr || img.Entry != img.Origin {
		t.Errorf("origin=%#x entry=%#x", img.Origin, img.Entry)
	}
	if img.ExitValueAddr() == 0 {
		t.Error("no __exit_value symbol")
	}
	if _, ok := img.Symbol("_start"); !ok {
		t.Error("no _start symbol")
	}
	if len(img.Code)%4 != 0 || len(img.Code) == 0 {
		t.Errorf("image size %d", len(img.Code))
	}
}

func TestBuildRunsOnLEON(t *testing.T) {
	img, err := Build(trivialMain, Options{})
	if err != nil {
		t.Fatal(err)
	}
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Execute(img.Entry, 0)
	if err != nil || res.Faulted {
		t.Fatalf("run: %v %+v", err, res)
	}
	out, err := ctrl.ReadMemory(img.ExitValueAddr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint32(out[0])<<24 | uint32(out[1])<<16 | uint32(out[2])<<8 | uint32(out[3]); got != 7 {
		t.Errorf("exit value = %d, want 7", got)
	}
}

func TestStandalone(t *testing.T) {
	src := `
	nop
_start:
	set 0x1000, %g1
	jmp %g1
	nop
`
	img, err := Build(src, Options{Standalone: true, Origin: leon.DefaultLoadAddr + 0x100})
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != leon.DefaultLoadAddr+0x104 {
		t.Errorf("entry = %#x, want _start", img.Entry)
	}
	if img.ExitValueAddr() != 0 {
		t.Error("standalone image grew an exit value")
	}
}

func TestBuildErrorPropagates(t *testing.T) {
	if _, err := Build("bogus instruction", Options{}); err == nil {
		t.Error("bad assembly accepted")
	}
}

func TestCustomStackTop(t *testing.T) {
	img, err := Build(trivialMain, Options{StackTop: leon.SRAMBase + 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	_ = img // the stack value is baked into crt0; execution covered above
}
