// Package link builds loadable memory images for the Liquid processor:
// the LD + OBJCOPY steps of the paper's flow (Fig. 4). It prepends the
// C runtime stub (_start), assembles everything at the load origin,
// and produces the flat binary that goes into UDP load packets.
//
// The runtime convention matches §3.1: the image's first instruction
// is the entry point; on return from main the stub stores main's
// return value at the exported __exit_value word and jumps back to the
// boot ROM's poll routine, which the leon_ctrl circuitry detects.
package link

import (
	"fmt"

	"liquidarch/internal/asm"
	"liquidarch/internal/leon"
)

// Options configures image building.
type Options struct {
	// Origin is the SRAM load address (default leon.DefaultLoadAddr).
	Origin uint32
	// StackTop resets the stack at program entry (default: top of the
	// default 2 MB SRAM).
	StackTop uint32
	// Standalone omits the crt0 stub: the source provides its own
	// _start and return-to-poll sequence.
	Standalone bool
}

func (o Options) withDefaults() Options {
	if o.Origin == 0 {
		o.Origin = leon.DefaultLoadAddr
	}
	if o.StackTop == 0 {
		o.StackTop = leon.SRAMBase + 2<<20
	}
	return o
}

// Image is a linked, loadable program.
type Image struct {
	// Entry is the address to start execution at.
	Entry uint32
	// Origin is the load address of Code.
	Origin uint32
	// Code is the flat big-endian image.
	Code []byte
	// Symbols maps labels (including __exit_value) to addresses.
	Symbols map[string]uint32
}

// Symbol returns a label's address.
func (im *Image) Symbol(name string) (uint32, bool) {
	v, ok := im.Symbols[name]
	return v, ok
}

// ExitValueAddr returns the address where crt0 stores main's return
// value (0 for standalone images without the symbol).
func (im *Image) ExitValueAddr() uint32 {
	v := im.Symbols["__exit_value"]
	return v
}

// crt0 is the C runtime stub. It resets the stack (programs are loaded
// repeatedly into a live system), calls main, publishes the exit value
// and jumps to the boot ROM poll routine.
func crt0(stackTop uint32) string {
	return fmt.Sprintf(`
! crt0: Liquid C runtime entry
_start:
	set 0x%08X, %%sp
	mov %%sp, %%fp
	call main
	nop
	set __exit_value, %%g1
	st %%o0, [%%g1]
	flush %%g0		! write back dirty lines before leon_ctrl
	set 0x%08X, %%g1	! disconnects main memory (write-back configs)
	jmp %%g1
	nop
	.align 4
__exit_value:
	.word 0

`, stackTop-64, leon.ROMPollAddr)
}

// Build assembles program assembly (e.g. lcc output) into an image.
func Build(asmSrc string, opts Options) (*Image, error) {
	opts = opts.withDefaults()
	src := asmSrc
	if !opts.Standalone {
		src = crt0(opts.StackTop) + asmSrc
	}
	obj, err := asm.AssembleAt(src, opts.Origin)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	entry := opts.Origin
	if opts.Standalone {
		if s, ok := obj.Symbol("_start"); ok {
			entry = s
		}
	}
	return &Image{
		Entry:   entry,
		Origin:  opts.Origin,
		Code:    obj.Code,
		Symbols: obj.Symbols,
	}, nil
}
