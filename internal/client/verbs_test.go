package client

import (
	"sync"
	"testing"

	"liquidarch/internal/netproto"
)

// TestResultRoundTrip: a single CmdResult exchange returns whatever
// report the server holds, running or final.
func TestResultRoundTrip(t *testing.T) {
	want := netproto.RunReport{Status: netproto.StatusOK, Cycles: 4242}
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdResult {
			return nil
		}
		return []netproto.Packet{{Command: netproto.CmdResult | netproto.RespFlag, Body: want.Marshal()}}
	})
	c := dialFast(t, addr)
	rep, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if rep != want {
		t.Errorf("report = %+v, want %+v", rep, want)
	}
}

// TestStartSyncRoundTrip: the blocking compat verb answers with the
// final report in one exchange.
func TestStartSyncRoundTrip(t *testing.T) {
	want := netproto.RunReport{Status: netproto.StatusOK, Cycles: 99}
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdStartSync {
			return nil
		}
		sr, err := netproto.ParseStartReq(req.Body)
		if err != nil || sr.Entry != 0x40001000 {
			t.Errorf("start req = %+v, %v", sr, err)
		}
		return []netproto.Packet{{Command: netproto.CmdStartSync | netproto.RespFlag, Body: want.Marshal()}}
	})
	c := dialFast(t, addr)
	rep, err := c.StartSync(0x40001000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep != want {
		t.Errorf("report = %+v, want %+v", rep, want)
	}
}

// TestStatsRoundTrip: the stats verb hands back the server's JSON
// document untouched.
func TestStatsRoundTrip(t *testing.T) {
	doc := []byte(`{"counters":{"x":1}}`)
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdStats {
			return nil
		}
		return []netproto.Packet{{Command: netproto.CmdStats | netproto.RespFlag, Body: doc}}
	})
	c := dialFast(t, addr)
	got, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(doc) {
		t.Errorf("stats = %s, want %s", got, doc)
	}
}

// TestTracesRoundTrip covers the happy path, the non-OK status and the
// malformed-JSON error of the traces verb.
func TestTracesRoundTrip(t *testing.T) {
	var mu sync.Mutex
	payload := []byte(`[{"id":7,"spans":[]}]`)
	status := uint8(netproto.StatusOK)
	set := func(s uint8, p string) {
		mu.Lock()
		defer mu.Unlock()
		status, payload = s, []byte(p)
	}
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdTraces {
			return nil
		}
		mu.Lock()
		body := netproto.TracesResp{Status: status, JSON: payload}.Marshal()
		mu.Unlock()
		return []netproto.Packet{{Command: netproto.CmdTraces | netproto.RespFlag, Body: body}}
	})
	c := dialFast(t, addr)
	traces, err := c.Traces(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].ID != 7 {
		t.Errorf("traces = %+v", traces)
	}

	set(netproto.StatusOK, `{not json`)
	if _, err := c.Traces(7); err == nil {
		t.Error("malformed traces JSON accepted")
	}

	set(netproto.StatusError, `[]`)
	if _, err := c.Traces(7); err == nil {
		t.Error("non-OK traces status accepted")
	}
}
