package client

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/netproto"
)

// loadAck builds the standard load response packet.
func loadAck(status uint8, applied, next int) []netproto.Packet {
	return []netproto.Packet{{
		Command: netproto.CmdLoadProgram | netproto.RespFlag,
		Body:    netproto.LoadAckReport(status, applied, next).Marshal(),
	}}
}

// TestWindowedLoadPipelines proves the window actually pipelines on
// the wire: after the probe chunk is acked, the server withholds all
// acks and must observe 16 distinct un-acked chunk datagrams — a full
// default window in flight at once — before it releases a single
// cumulative ack. The load must then finish with zero retransmissions
// and exactly one datagram per chunk.
func TestWindowedLoadPipelines(t *testing.T) {
	const chunks = 20
	var mu sync.Mutex
	var held []uint16 // chunk seqs received while acks were withheld
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdLoadProgram {
			return nil
		}
		ch, err := netproto.ParseLoadChunk(req.Body)
		if err != nil {
			return nil
		}
		switch {
		case ch.Seq == 0:
			// Ack the probe: the client may now open the window.
			return loadAck(netproto.StatusPending, 1, 1)
		case ch.Seq <= 16:
			mu.Lock()
			defer mu.Unlock()
			held = append(held, ch.Seq)
			if len(held) < 16 {
				return nil // withhold: force the client to keep pipelining
			}
			// 16 distinct chunks in flight: one cumulative ack retires
			// them all.
			return loadAck(netproto.StatusPending, 17, 17)
		case int(ch.Seq) == chunks-1:
			return loadAck(netproto.StatusOK, chunks, chunks)
		default:
			return loadAck(netproto.StatusPending, int(ch.Seq)+1, int(ch.Seq)+1)
		}
	})

	c := dialFast(t, addr)
	image := make([]byte, (chunks-1)*netproto.MaxChunkData+100)
	if err := c.LoadProgram(0x40001000, image); err != nil {
		t.Fatalf("windowed load: %v", err)
	}

	mu.Lock()
	got := append([]uint16(nil), held...)
	mu.Unlock()
	if len(got) != 16 {
		t.Fatalf("server saw %d un-acked chunks, want a full window of 16: %v", len(got), got)
	}
	distinct := map[uint16]bool{}
	for _, s := range got {
		if s < 1 || s > 16 {
			t.Errorf("unexpected chunk %d while window was held", s)
		}
		distinct[s] = true
	}
	if len(distinct) != 16 {
		t.Errorf("held chunks contain duplicates (%d distinct of 16): the window retransmitted instead of pipelining", len(distinct))
	}

	snap := c.Metrics().Snapshot()
	if got := snap.Counters["liquid_client_retries_total"]; got != 0 {
		t.Errorf("retries = %d, want 0 (no ack was ever late enough to time out)", got)
	}
	if got := snap.Counters["liquid_client_load_chunk_resends_total"]; got != 0 {
		t.Errorf("chunk resends = %d, want 0", got)
	}
	if got := snap.Counter(`liquid_client_requests_total{cmd="load"}`); got != chunks {
		t.Errorf("requests{load} = %d, want %d (one datagram per chunk)", got, chunks)
	}
}

// TestWindowOneIsStopAndWait: Window=1 must degrade to the classic
// one-chunk-at-a-time discipline — the server never sees chunk n+1
// before it has acked chunk n.
func TestWindowOneIsStopAndWait(t *testing.T) {
	const chunks = 6
	var mu sync.Mutex
	var order []uint16
	violated := false
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdLoadProgram {
			return nil
		}
		ch, err := netproto.ParseLoadChunk(req.Body)
		if err != nil {
			return nil
		}
		mu.Lock()
		if len(order) > 0 && ch.Seq != order[len(order)-1]+1 {
			violated = true
		}
		order = append(order, ch.Seq)
		mu.Unlock()
		status := uint8(netproto.StatusPending)
		if int(ch.Seq) == chunks-1 {
			status = netproto.StatusOK
		}
		return loadAck(status, int(ch.Seq)+1, int(ch.Seq)+1)
	})
	c := dialFast(t, addr)
	c.Window = 1
	image := make([]byte, (chunks-1)*netproto.MaxChunkData+100)
	if err := c.LoadProgram(0x40001000, image); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if violated {
		t.Errorf("Window=1 sent a chunk before the previous ack: %v", order)
	}
	if len(order) != chunks {
		t.Errorf("server saw %d chunks, want %d", len(order), chunks)
	}
}

// TestWindowedLoadGoBackResends: with one mid-window ack black-holed
// forever, the window must notice the silent round, fall back to the
// unacked chunk, and resend it — and the resend must be visible in
// both the resend counter and the retry counter.
func TestWindowedLoadGoBackResends(t *testing.T) {
	const chunks = 6
	var mu sync.Mutex
	drops := 0
	received := make([]bool, chunks)
	count := 0
	nextGap := func() int {
		for i, r := range received {
			if !r {
				return i
			}
		}
		return chunks
	}
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdLoadProgram {
			return nil
		}
		ch, err := netproto.ParseLoadChunk(req.Body)
		if err != nil {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if ch.Seq == 3 && drops == 0 {
			drops++
			return nil // swallow chunk 3 once; its retransmission is held
		}
		// Real reassembly discipline: out-of-order chunks are buffered,
		// the ack advertises (held count, lowest gap).
		if !received[ch.Seq] {
			received[ch.Seq] = true
			count++
		}
		status := uint8(netproto.StatusPending)
		if count == chunks {
			status = netproto.StatusOK
		}
		return loadAck(status, count, nextGap())
	})
	c := dialFast(t, addr)
	c.Timeout = 60 * time.Millisecond
	image := make([]byte, (chunks-1)*netproto.MaxChunkData+100)
	if err := c.LoadProgram(0x40001000, image); err != nil {
		t.Fatalf("load with one dropped chunk: %v", err)
	}
	snap := c.Metrics().Snapshot()
	if got := snap.Counters["liquid_client_load_chunk_resends_total"]; got == 0 {
		t.Error("dropped chunk never resent")
	}
	resends := snap.Counters["liquid_client_load_chunk_resends_total"]
	if retries := snap.Counters["liquid_client_retries_total"]; retries != resends {
		t.Errorf("retries (%d) != chunk resends (%d)", retries, resends)
	}
}

// TestLoadErrorMessageForensics: the one-line error string carries the
// whole picture — progress, window depth, in-flight count and the ack
// floor — so a stuck load is diagnosable from a single log line.
func TestLoadErrorMessageForensics(t *testing.T) {
	e := &LoadError{
		ChunksAcked: 7, ChunksTotal: 32,
		HighestAck: 7, Outstanding: 9, Window: 16,
		Err: errors.New("boom"),
	}
	msg := e.Error()
	for _, want := range []string{"7/32", "window 16", "9 in flight", "highest ack 7", "boom"} {
		if !strings.Contains(msg, want) {
			t.Errorf("LoadError message %q missing %q", msg, want)
		}
	}
}
