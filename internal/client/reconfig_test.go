package client

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"liquidarch/internal/netproto"
)

// reconfigAckPacket builds the RunReport-shaped CmdReconfigure ack a
// rev-6 server sends for the given ticket status.
func reconfigAckPacket(st netproto.ReconfigStatusResp) []byte {
	return netproto.Packet{
		Command: netproto.CmdReconfigure | netproto.RespFlag,
		Body:    netproto.ReconfigAckReport(st).Marshal(),
	}.Marshal()
}

func reconfigStatusPacket(cmd uint8, st netproto.ReconfigStatusResp) []byte {
	return netproto.Packet{Command: cmd | netproto.RespFlag, Body: st.Marshal()}.Marshal()
}

// TestReconfigureAsyncAck: the immediate ack decodes back into the
// non-terminal ticket state the server put in the RunReport spares.
func TestReconfigureAsyncAck(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdReconfigure {
			return nil
		}
		return [][]byte{reconfigAckPacket(netproto.ReconfigStatusResp{
			Status: netproto.StatusOK, State: netproto.ReconfigSynthesizing,
		})}
	})
	c := dialFast(t, addr)
	st, err := c.ReconfigureAsync([]byte(`{"dcache_bytes":8192}`))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != netproto.ReconfigSynthesizing || st.Terminal() {
		t.Errorf("ack decoded %+v, want non-terminal synthesizing", st)
	}
}

// TestReconfigStatusRoundTrip: all fields of the rev-6 status body
// survive the wire.
func TestReconfigStatusRoundTrip(t *testing.T) {
	want := netproto.ReconfigStatusResp{
		Status: netproto.StatusOK, State: netproto.ReconfigSwapping, CacheHit: true,
	}
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdReconfigStatus {
			return nil
		}
		return [][]byte{reconfigStatusPacket(netproto.CmdReconfigStatus, want)}
	})
	c := dialFast(t, addr)
	got, err := c.ReconfigStatus()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("status = %+v, want %+v", got, want)
	}
}

// TestPrewarmRoundTrip: the prewarm blob reaches the server as a
// {"prewarm":[...]} body and the queue count comes back in the ack.
func TestPrewarmRoundTrip(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdReconfigure {
			return nil
		}
		var body struct {
			Prewarm []json.RawMessage `json:"prewarm"`
		}
		if err := json.Unmarshal(req.Body, &body); err != nil || len(body.Prewarm) != 2 {
			return [][]byte{netproto.Packet{Command: netproto.CmdError,
				Body: netproto.ErrorResp{Code: req.Command, Msg: "bad prewarm body"}.Marshal()}.Marshal()}
		}
		return [][]byte{reconfigAckPacket(netproto.ReconfigStatusResp{
			Status: netproto.StatusOK, State: netproto.ReconfigQueued, Queued: 2,
		})}
	})
	c := dialFast(t, addr)
	queued, err := c.Prewarm([]json.RawMessage{
		json.RawMessage(`{"dcache_bytes":2048}`),
		json.RawMessage(`{"dcache_bytes":8192}`),
	})
	if err != nil {
		t.Fatal(err)
	}
	if queued != 2 {
		t.Errorf("queued = %d, want 2", queued)
	}
}

// TestWaitReconfigureHeld: one held CmdWaitReconfig exchange returns
// the terminal state; no status polls are needed.
func TestWaitReconfigureHeld(t *testing.T) {
	var polls atomic.Int64
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		switch req.Command {
		case netproto.CmdWaitReconfig:
			if _, err := netproto.ParseWaitReconfigReq(req.Body); err != nil {
				t.Error(err)
			}
			return [][]byte{reconfigStatusPacket(netproto.CmdWaitReconfig, netproto.ReconfigStatusResp{
				Status: netproto.StatusOK, State: netproto.ReconfigApplied,
			})}
		case netproto.CmdReconfigStatus:
			polls.Add(1)
		}
		return nil
	})
	c := dialFast(t, addr)
	st, err := c.WaitReconfigure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != netproto.ReconfigApplied {
		t.Errorf("held wait returned %+v", st)
	}
	if polls.Load() != 0 {
		t.Errorf("held wait fell back to %d status polls", polls.Load())
	}
}

// TestWaitReconfigureFallback: a server that rejects CmdWaitReconfig
// as unknown downgrades the client to status polling, permanently.
func TestWaitReconfigureFallback(t *testing.T) {
	var waits, polls atomic.Int64
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		switch req.Command {
		case netproto.CmdWaitReconfig:
			waits.Add(1)
			return [][]byte{netproto.Packet{Command: netproto.CmdError,
				Body: netproto.ErrorResp{Code: netproto.CmdWaitReconfig, Msg: "unknown command"}.Marshal()}.Marshal()}
		case netproto.CmdReconfigStatus:
			st := netproto.ReconfigStatusResp{Status: netproto.StatusOK, State: netproto.ReconfigSynthesizing}
			if polls.Add(1) >= 2 {
				st.State = netproto.ReconfigApplied
			}
			return [][]byte{reconfigStatusPacket(netproto.CmdReconfigStatus, st)}
		}
		return nil
	})
	c := dialFast(t, addr)
	st, err := c.WaitReconfigure(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != netproto.ReconfigApplied {
		t.Errorf("fallback wait returned %+v", st)
	}
	if got := waits.Load(); got != 1 {
		t.Errorf("CmdWaitReconfig probed %d times, want exactly 1 (sticky downgrade)", got)
	}
	// The downgrade is per-connection sticky: a second wait never
	// probes the held path again.
	polls.Store(1)
	if _, err := c.WaitReconfigure(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := waits.Load(); got != 1 {
		t.Errorf("second wait re-probed CmdWaitReconfig (%d sends)", got)
	}
}

// TestReconfigureBlockingComposition: Reconfigure waits out a
// non-terminal ack and succeeds only on Applied.
func TestReconfigureBlockingComposition(t *testing.T) {
	var statusCalls atomic.Int64
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		switch req.Command {
		case netproto.CmdReconfigure:
			return [][]byte{reconfigAckPacket(netproto.ReconfigStatusResp{
				Status: netproto.StatusOK, State: netproto.ReconfigQueued,
			})}
		case netproto.CmdWaitReconfig:
			return [][]byte{reconfigStatusPacket(netproto.CmdWaitReconfig, netproto.ReconfigStatusResp{
				Status: netproto.StatusOK, State: netproto.ReconfigApplied, CacheHit: true,
			})}
		case netproto.CmdReconfigStatus:
			statusCalls.Add(1)
		}
		return nil
	})
	c := dialFast(t, addr)
	if err := c.Reconfigure([]byte(`{"dcache_bytes":8192}`)); err != nil {
		t.Fatal(err)
	}
}

// TestReconfigurePreRev6Ack: an old blocking server answers with a
// plain StatusOK report (no state in the spares); the client treats
// the ack as the terminal outcome and issues no follow-up exchanges.
func TestReconfigurePreRev6Ack(t *testing.T) {
	var followups atomic.Int64
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		switch req.Command {
		case netproto.CmdReconfigure:
			return [][]byte{netproto.Packet{
				Command: netproto.CmdReconfigure | netproto.RespFlag,
				Body:    netproto.RunReport{Status: netproto.StatusOK}.Marshal(),
			}.Marshal()}
		case netproto.CmdReconfigStatus, netproto.CmdWaitReconfig:
			followups.Add(1)
		}
		return nil
	})
	c := dialFast(t, addr)
	if err := c.Reconfigure([]byte(`{"dcache_bytes":8192}`)); err != nil {
		t.Fatal(err)
	}
	if got := followups.Load(); got != 0 {
		t.Errorf("blocking ack triggered %d follow-up exchanges, want 0", got)
	}
}

// TestReconfigureFailureSurfaces: a failed swap turns into an error
// naming the state (or the server's message when one travels).
func TestReconfigureFailureSurfaces(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdReconfigure {
			return nil
		}
		return [][]byte{reconfigAckPacket(netproto.ReconfigStatusResp{
			Status: netproto.StatusError, State: netproto.ReconfigFailed,
		})}
	})
	c := dialFast(t, addr)
	err := c.Reconfigure([]byte(`{"dcache_bytes":1}`))
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Errorf("err = %v, want a failure naming the state", err)
	}
}
