// Package client is the control-software side of Fig. 4: it compiles
// requests into UDP control packets, sends them to the reconfiguration
// server (or directly to an FPX), and interprets the responses. It
// plays the role of the paper's Java servlet UDP client, with
// timeouts and retransmission since UDP guarantees neither delivery
// nor order.
package client

import (
	"fmt"
	"net"
	"time"

	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
)

// clientMetrics count the client's view of the network: how often the
// unreliable channel made it retransmit, give up, or wait.
type clientMetrics struct {
	requests *metrics.CounterVec
	retries  *metrics.Counter
	timeouts *metrics.Counter
	errors   *metrics.Counter
	rtt      *metrics.Histogram
}

func newClientMetrics(r *metrics.Registry) clientMetrics {
	return clientMetrics{
		requests: r.CounterVec("liquid_client_requests_total", "Requests issued, by command.", "cmd"),
		retries:  r.Counter("liquid_client_retries_total", "Requests retransmitted after a timeout."),
		timeouts: r.Counter("liquid_client_timeouts_total", "Read deadlines that expired waiting for a response."),
		errors:   r.Counter("liquid_client_errors_total", "Exchanges that ended in an error (server CmdError or exhausted retries)."),
		rtt:      r.Histogram("liquid_client_rtt_seconds", "Round-trip latency of successful exchanges.", metrics.DefSecondsBuckets),
	}
}

// Client is a UDP control client bound to one server node.
type Client struct {
	conn *net.UDPConn

	// Timeout bounds each request/response exchange.
	Timeout time.Duration
	// Retries is how many times a timed-out request is retransmitted.
	Retries int
	// Board selects the destination board on a multi-board node.
	// Board 0 (the default) keeps the wire-compatible v1 header;
	// other boards use the v2 header carrying the board byte.
	Board uint8
	// PollInterval is the delay between completion polls in
	// WaitResult (default 2ms — well under the control plane's
	// latency target, far above the per-request cost).
	PollInterval time.Duration
	// WaitTimeout bounds how long WaitResult polls before giving up
	// (0 = 2 minutes).
	WaitTimeout time.Duration

	reg *metrics.Registry
	m   clientMetrics
}

// Dial connects to the server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	reg := metrics.NewRegistry()
	return &Client{
		conn:         conn,
		Timeout:      2 * time.Second,
		Retries:      3,
		PollInterval: 2 * time.Millisecond,
		reg:          reg,
		m:            newClientMetrics(reg),
	}, nil
}

// Metrics returns the client-side telemetry registry (request counts,
// retries, timeouts, round-trip latency).
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends pkt and waits for a response to the same command,
// retransmitting on timeout. A CmdError response becomes an error.
func (c *Client) roundTrip(pkt netproto.Packet) (netproto.Packet, error) {
	pkt.Board = c.Board
	want := pkt.Command | netproto.RespFlag
	raw := pkt.Marshal()
	buf := make([]byte, 64<<10)
	c.m.requests.With(netproto.CommandName(pkt.Command)).Inc()
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.m.retries.Inc()
		}
		if _, err := c.conn.Write(raw); err != nil {
			c.m.errors.Inc()
			return netproto.Packet{}, fmt.Errorf("client: send: %w", err)
		}
		deadline := time.Now().Add(c.Timeout)
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				c.m.errors.Inc()
				return netproto.Packet{}, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				lastErr = err
				c.m.timeouts.Inc()
				break // timeout: retransmit
			}
			resp, err := netproto.ParsePacket(buf[:n])
			if err != nil {
				continue // stray datagram
			}
			if resp.Command == netproto.CmdError {
				er, perr := netproto.ParseErrorResp(resp.Body)
				if perr != nil {
					c.m.errors.Inc()
					return netproto.Packet{}, fmt.Errorf("client: malformed error response: %w", perr)
				}
				if er.Code != pkt.Command {
					continue // stale error for an earlier request
				}
				c.m.errors.Inc()
				return netproto.Packet{}, fmt.Errorf("client: server error: %s", er.Msg)
			}
			if resp.Command != want {
				continue // stale response from a retransmitted earlier request
			}
			body := make([]byte, len(resp.Body))
			copy(body, resp.Body)
			resp.Body = body
			c.m.rtt.ObserveSince(start)
			return resp, nil
		}
	}
	c.m.errors.Inc()
	return netproto.Packet{}, fmt.Errorf("client: no response after %d attempts: %w", c.Retries+1, lastErr)
}

// Status queries the controller state ("to check if LEON has started
// up").
func (c *Client) Status() (netproto.StatusResp, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStatus})
	if err != nil {
		return netproto.StatusResp{}, err
	}
	return netproto.ParseStatusResp(resp.Body)
}

// LoadProgram uploads an image to the given SRAM address, splitting it
// into sequence-numbered chunks and confirming each one.
func (c *Client) LoadProgram(addr uint32, image []byte) error {
	chunks := netproto.ChunkImage(addr, image)
	for _, ch := range chunks {
		resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdLoadProgram, Body: ch.Marshal()})
		if err != nil {
			return fmt.Errorf("client: load chunk %d/%d: %w", ch.Seq+1, ch.Total, err)
		}
		rep, err := netproto.ParseRunReport(resp.Body)
		if err != nil {
			return fmt.Errorf("client: load chunk %d/%d: %w", ch.Seq+1, ch.Total, err)
		}
		if rep.Status != netproto.StatusOK && rep.Status != netproto.StatusPending {
			return fmt.Errorf("client: load chunk %d/%d: status %d", ch.Seq+1, ch.Total, rep.Status)
		}
	}
	return nil
}

// Start executes the loaded program (entry 0 = last load address) and
// blocks until it completes, returning the cycle-counter report. Since
// the asynchronous control plane it is a convenience composition of
// StartAsync + WaitResult: the board is started with one round trip,
// then polled for completion every PollInterval. The signature and
// observable behavior match the historical blocking call.
func (c *Client) Start(entry uint32, maxCycles uint64) (netproto.RunReport, error) {
	if err := c.StartAsync(entry, maxCycles); err != nil {
		return netproto.RunReport{}, err
	}
	return c.WaitResult()
}

// StartAsync starts the loaded program and returns as soon as the board
// acknowledges the handoff — the "started" ack of the asynchronous
// control plane. Poll Status (CurCycles advances while running) and
// collect the report with Result or WaitResult.
func (c *Client) StartAsync(entry uint32, maxCycles uint64) error {
	req := netproto.StartReq{Entry: entry, MaxCycles: maxCycles}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStartLEON, Body: req.Marshal()})
	if err != nil {
		return err
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return err
	}
	if rep.Status != netproto.StatusRunning && rep.Status != netproto.StatusOK {
		return fmt.Errorf("client: start ack status %d", rep.Status)
	}
	return nil
}

// Result fetches the run report with a single round trip. While the run
// is still in flight the report has Status == StatusRunning and a live
// cycle counter; once complete it is the final report (idempotent — the
// server keeps answering with the last result).
func (c *Client) Result() (netproto.RunReport, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdResult})
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// WaitResult polls Result every PollInterval until the run leaves
// StatusRunning, then returns the final report. WaitTimeout (default
// 2 minutes) bounds the whole wait.
func (c *Client) WaitResult() (netproto.RunReport, error) {
	interval := c.PollInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	limit := c.WaitTimeout
	if limit <= 0 {
		limit = 2 * time.Minute
	}
	deadline := time.Now().Add(limit)
	for {
		rep, err := c.Result()
		if err != nil {
			return netproto.RunReport{}, err
		}
		if rep.Status != netproto.StatusRunning {
			return rep, nil
		}
		if time.Now().After(deadline) {
			return rep, fmt.Errorf("client: run still in flight after %v", limit)
		}
		time.Sleep(interval)
	}
}

// StartSync executes the program with the blocking wire command
// (CmdStartSync): one request, one response carrying the final report.
// It is the v1-compatible path for short programs; prefer
// StartAsync/WaitResult, which keeps the control channel responsive.
func (c *Client) StartSync(entry uint32, maxCycles uint64) (netproto.RunReport, error) {
	req := netproto.StartReq{Entry: entry, MaxCycles: maxCycles}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStartSync, Body: req.Marshal()})
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// ReadMemory reads n bytes from addr, issuing as many requests as the
// per-response cap requires.
func (c *Client) ReadMemory(addr uint32, n int) ([]byte, error) {
	const chunk = 32 << 10
	out := make([]byte, 0, n)
	for n > 0 {
		ask := n
		if ask > chunk {
			ask = chunk
		}
		req := netproto.MemReq{Addr: addr, Length: uint32(ask)}
		resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
		if err != nil {
			return nil, err
		}
		mr, err := netproto.ParseMemResp(resp.Body)
		if err != nil {
			return nil, err
		}
		if len(mr.Data) != ask {
			return nil, fmt.Errorf("client: short read: %d of %d bytes", len(mr.Data), ask)
		}
		out = append(out, mr.Data...)
		addr += uint32(ask)
		n -= ask
	}
	return out, nil
}

// WriteMemory stores bytes at addr.
func (c *Client) WriteMemory(addr uint32, data []byte) error {
	req := netproto.MemReq{Addr: addr, Data: data}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdWriteMemory, Body: req.Marshal()})
	if err != nil {
		return err
	}
	_, err = netproto.ParseMemResp(resp.Body)
	return err
}

// Reconfigure asks the platform to swap in a different architecture
// configuration (the liquid step). spec is the platform-defined
// configuration description.
func (c *Client) Reconfigure(spec []byte) error {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReconfigure, Body: spec})
	if err != nil {
		return err
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return err
	}
	if rep.Status != netproto.StatusOK {
		return fmt.Errorf("client: reconfigure status %d", rep.Status)
	}
	return nil
}

// GetConfig fetches the platform's active configuration description.
func (c *Client) GetConfig() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdGetConfig})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// TraceReport pulls the instrumented-trace summary of the last run
// (JSON; see core.TraceReport for the schema).
func (c *Client) TraceReport() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdTraceReport})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Stats pulls the server node's telemetry snapshot over the control
// channel (JSON; the same document the HTTP /statusz endpoint serves
// under "metrics"). Unmarshals into metrics.Snapshot.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStats})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// RunProgram is the whole §2.6 flow in one call: load, start, and read
// back resultLen bytes from resultAddr (skipped when resultLen is 0).
func (c *Client) RunProgram(addr uint32, image []byte, entry uint32, resultAddr uint32, resultLen int) (netproto.RunReport, []byte, error) {
	if err := c.LoadProgram(addr, image); err != nil {
		return netproto.RunReport{}, nil, err
	}
	rep, err := c.Start(entry, 0)
	if err != nil {
		return rep, nil, err
	}
	if resultLen <= 0 {
		return rep, nil, nil
	}
	data, err := c.ReadMemory(resultAddr, resultLen)
	return rep, data, err
}
