// Package client is the control-software side of Fig. 4: it compiles
// requests into UDP control packets, sends them to the reconfiguration
// server (or directly to an FPX), and interprets the responses. It
// plays the role of the paper's Java servlet UDP client, hardened for
// the transport the paper actually assumes — the open Internet, where
// datagrams drop, duplicate, reorder and truncate:
//
//   - every exchange is stamped with a sequence number (v3 header)
//     that responses echo, so duplicated or delayed responses from an
//     earlier exchange are discarded instead of being mistaken for
//     fresh ones;
//   - timed-out exchanges retransmit with exponential backoff plus
//     jitter under a bounded retry budget, and budget exhaustion
//     surfaces as ErrBoardUnreachable with partial progress attached;
//   - multi-packet loads resume from the server's advertised progress
//     instead of restarting, so an interrupted load never re-sends
//     chunks the board already holds.
//
// A Client is not safe for concurrent use; open one client per
// goroutine (they are cheap — one UDP socket each).
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
	"liquidarch/internal/sim"
	"liquidarch/internal/tracing"
)

// DefaultWindow is the sliding-window depth LoadProgram keeps in
// flight when Client.Window is zero: enough to fill a
// continental-RTT pipe with 1 KiB chunks without overrunning the
// server's per-board queue.
const DefaultWindow = 16

// DefaultWaitHold is the server-side hold WaitResult requests per
// CmdWaitResult exchange when Client.WaitHold is zero. Long enough
// that short runs complete within one exchange, short enough that a
// lost reply is retransmitted promptly.
const DefaultWaitHold = 500 * time.Millisecond

// ErrBoardUnreachable reports that an exchange exhausted its retry
// budget without a response. Use errors.Is to detect it; the concrete
// *UnreachableError carries the partial statistics.
var ErrBoardUnreachable = errors.New("board unreachable")

// UnreachableError is the graceful-degradation error: the retry
// budget ran out, and these are the partial stats of the attempt.
type UnreachableError struct {
	Board    uint8         // destination board
	Cmd      string        // command label (netproto.CommandName)
	Attempts int           // datagrams sent for this exchange
	Elapsed  time.Duration // wall time burned before giving up
	Last     error         // last socket/timeout error observed
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("client: board %d unreachable: %s got no response after %d attempts over %v: %v",
		e.Board, e.Cmd, e.Attempts, e.Elapsed.Round(time.Millisecond), e.Last)
}

// Is makes errors.Is(err, ErrBoardUnreachable) true.
func (e *UnreachableError) Is(target error) bool { return target == ErrBoardUnreachable }

// Unwrap exposes the underlying socket error.
func (e *UnreachableError) Unwrap() error { return e.Last }

// LoadError is a failed multi-packet load with its partial progress:
// how many chunks the server acknowledged before the transport gave
// out, plus the in-flight window state at the moment of failure so a
// windowed load reports its resume position as precisely as
// stop-and-wait did. A follow-up LoadProgram resumes from the
// server's state rather than re-sending acknowledged chunks.
type LoadError struct {
	ChunksAcked int // chunks the server confirmed holding
	ChunksTotal int // chunks in the whole image
	HighestAck  int // cumulative ack floor: every chunk below it is held
	Outstanding int // chunks sent but unacknowledged when the load died
	Window      int // sliding-window depth the load was using
	Err         error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("client: load interrupted at chunk %d/%d (window %d, %d in flight, highest ack %d): %v",
		e.ChunksAcked, e.ChunksTotal, e.Window, e.Outstanding, e.HighestAck, e.Err)
}

// Unwrap exposes the transport error (so errors.Is sees
// ErrBoardUnreachable through a LoadError).
func (e *LoadError) Unwrap() error { return e.Err }

// ServerError is a CmdError response matched to this exchange: the
// server handled the request and refused it. Cmd is the request
// command the error answers, so callers can react to specific
// rejections (WaitResult falls back to polling when an old server
// rejects CmdWaitResult as unknown).
type ServerError struct {
	Cmd uint8
	Msg string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error: %s", e.Msg)
}

// clientMetrics count the client's view of the network: how often the
// unreliable channel made it retransmit, back off, give up, or wait.
type clientMetrics struct {
	requests      *metrics.CounterVec
	retries       *metrics.Counter
	timeouts      *metrics.Counter
	errors        *metrics.Counter
	unreachable   *metrics.Counter
	dupSuppressed *metrics.Counter
	backoffs      *metrics.Counter
	backoffDur    *metrics.Histogram
	resumedChunks *metrics.Counter
	resumedLoads  *metrics.Counter
	chunkResends  *metrics.Counter
	waitHolds     *metrics.Counter
	waitFallback  *metrics.Counter
	rtt           *metrics.Histogram
}

func newClientMetrics(r *metrics.Registry) clientMetrics {
	return clientMetrics{
		requests:      r.CounterVec("liquid_client_requests_total", "Requests issued, by command.", "cmd"),
		retries:       r.Counter("liquid_client_retries_total", "Requests retransmitted after a timeout."),
		timeouts:      r.Counter("liquid_client_timeouts_total", "Read deadlines that expired waiting for a response."),
		errors:        r.Counter("liquid_client_errors_total", "Exchanges that ended in an error (server CmdError or exhausted retries)."),
		unreachable:   r.Counter("liquid_client_unreachable_total", "Exchanges abandoned after the retry budget (ErrBoardUnreachable)."),
		dupSuppressed: r.Counter("liquid_client_dup_responses_total", "Responses discarded because their exchange seq was stale (duplicate or reordered)."),
		backoffs:      r.Counter("liquid_client_backoff_total", "Retransmission waits grown by the exponential backoff."),
		backoffDur:    r.Histogram("liquid_client_backoff_seconds", "Length of each backed-off retransmission wait.", metrics.DefSecondsBuckets),
		resumedChunks: r.Counter("liquid_client_load_chunks_skipped_total", "Load chunks skipped because the server already held them (resume)."),
		resumedLoads:  r.Counter("liquid_client_loads_resumed_total", "Loads that resumed from server-side progress instead of restarting."),
		chunkResends:  r.Counter("liquid_client_load_chunk_resends_total", "Load chunk datagrams retransmitted by the sliding window after a silent round."),
		waitHolds:     r.Counter("liquid_client_wait_holds_total", "Server-held result waits issued (CmdWaitResult exchanges)."),
		waitFallback:  r.Counter("liquid_client_wait_fallback_total", "WaitResult downgrades to the poll loop because the server rejected CmdWaitResult."),
		rtt:           r.Histogram("liquid_client_rtt_seconds", "Round-trip latency of successful exchanges.", metrics.DefSecondsBuckets),
	}
}

// Conn is the connected-datagram transport a Client drives: one
// remote endpoint, datagram-preserving reads. *net.UDPConn satisfies
// it for real networks; sim.Conn satisfies it for deterministic
// simulation.
type Conn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	SetReadDeadline(t time.Time) error
	Close() error
}

// Client is a UDP control client bound to one server node.
type Client struct {
	conn Conn
	clk  sim.Clock

	// Timeout bounds the FIRST attempt of each request/response
	// exchange; subsequent retransmissions back off exponentially.
	Timeout time.Duration
	// MaxTimeout caps the backed-off per-attempt timeout
	// (0 = 16× Timeout).
	MaxTimeout time.Duration
	// BackoffFactor is the per-retry timeout multiplier (<=1 → 2).
	BackoffFactor float64
	// Jitter is the ± fraction applied to each backed-off wait so a
	// fleet of clients never retransmits in lockstep (default 0.1;
	// negative → no jitter).
	Jitter float64
	// Retries is the retry budget: how many times a timed-out request
	// is retransmitted before the exchange fails with
	// ErrBoardUnreachable.
	Retries int
	// Board selects the destination board on a multi-board node.
	Board uint8
	// PollInterval is the delay between completion polls in
	// WaitResult (default 2ms — well under the control plane's
	// latency target, far above the per-request cost). Since the
	// server-held wait it is the fallback pace, used only when the
	// server does not support CmdWaitResult or WaitHold is negative.
	PollInterval time.Duration
	// WaitTimeout bounds how long WaitResult polls before giving up
	// (0 = 2 minutes).
	WaitTimeout time.Duration
	// Window is the sliding-window depth LoadProgram keeps in flight
	// (0 = DefaultWindow, 1 = stop-and-wait).
	Window int
	// WaitHold is the server-side hold WaitResult requests per
	// CmdWaitResult exchange: the server parks the exchange up to this
	// long and answers the instant the run completes. 0 = the
	// DefaultWaitHold; negative disables the held wait entirely and
	// polls at PollInterval like the pre-v5 client.
	WaitHold time.Duration
	// WireRev pins the client to a historical protocol generation
	// (0 = latest). It controls both the header shape and the command
	// vocabulary: rev 1 emits the v1 header (no board byte — Board must
	// be 0), rev 2 adds the board byte, rev<3 sends no exchange seq and
	// loads stop-and-wait, rev<4 stamps no trace id, rev<5 never issues
	// CmdWaitResult (polls instead), rev<6 never issues
	// CmdWaitReconfig/CmdReconfigStatus holds. Compatibility tests pin
	// it to drive every client generation against every server
	// generation.
	WireRev uint8

	// Tracer, when set, records one span tree per exchange: an
	// "exchange:<cmd>" span with an "attempt" child for the first
	// datagram and a "retry" child for every retransmission (so
	// counting retry spans reproduces the retries metric). High-level
	// operations (Status, LoadProgram, Start, …) wrap their exchanges
	// in an operation span.
	Tracer *tracing.Collector
	// TraceID is the 64-bit trace the client's spans join and the id
	// stamped on every outgoing packet (v4 header) so the server's
	// spans land in the same trace. Zero disables both.
	TraceID uint64

	seq uint16
	rng *rand.Rand
	op  tracing.Ctx // active operation span context, if any

	// noServerWait latches after the server rejects CmdWaitResult as
	// unknown (a pre-v5 node): every later WaitResult goes straight to
	// the poll loop instead of re-probing per wait.
	noServerWait bool
	// noReconfigWait is the rev-6 twin: latched after the server
	// rejects CmdWaitReconfig as unknown, downgrading WaitReconfigure
	// to CmdReconfigStatus polling for the life of this client.
	noReconfigWait bool

	reg *metrics.Registry
	m   clientMetrics
}

// Dial connects to the server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return New(conn, nil), nil
}

// New builds a client over an already-connected transport, pacing
// every timeout, backoff and poll on clk (nil = real time). Simulated
// clusters pass a sim.Conn and the world's virtual clock; Dial is New
// over a real UDP socket and the real clock.
func New(conn Conn, clk sim.Clock) *Client {
	c := sim.Or(clk)
	reg := metrics.NewRegistry()
	return &Client{
		conn:          conn,
		clk:           c,
		Timeout:       2 * time.Second,
		BackoffFactor: 2,
		Jitter:        0.1,
		Retries:       3,
		PollInterval:  2 * time.Millisecond,
		rng:           rand.New(rand.NewSource(sim.Real.Now().UnixNano())),
		reg:           reg,
		m:             newClientMetrics(reg),
	}
}

// wireRev resolves the pinned protocol generation (0 = latest).
func (c *Client) wireRev() uint8 {
	if c.WireRev == 0 {
		return 6
	}
	return c.WireRev
}

// SetSeed re-seeds the jitter source, pinning the retransmission
// schedule (chaos tests pin it for reproducibility).
func (c *Client) SetSeed(seed int64) { c.rng = rand.New(rand.NewSource(seed)) }

// Metrics returns the client-side telemetry registry (request counts,
// retries, backoff waits, suppressed duplicates, round-trip latency).
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// traceCtx is the client's handle on the current trace (no-op when
// tracing is off).
func (c *Client) traceCtx() tracing.Ctx {
	if c.Tracer == nil || c.TraceID == 0 {
		return tracing.Ctx{}
	}
	return c.Tracer.Trace(c.TraceID)
}

// beginOp opens an operation span ("status", "load", "start", …)
// unless one is already active — nested operations (Start calling
// WaitResult calling Result) share the outermost span.
func (c *Client) beginOp(name string) tracing.SpanHandle {
	if c.op.On() {
		return tracing.SpanHandle{}
	}
	sp := c.traceCtx().Start(name)
	c.op = sp.Ctx()
	return sp
}

// endOp closes an operation span opened by beginOp.
func (c *Client) endOp(sp tracing.SpanHandle, err error) {
	if !sp.On() {
		return
	}
	c.op = tracing.Ctx{}
	status := "ok"
	if err != nil {
		status = "error"
	}
	sp.EndAttrs(tracing.A("status", status))
}

// jittered applies the ± Jitter fraction to a wait.
func (c *Client) jittered(d time.Duration) time.Duration {
	j := c.Jitter
	if j < 0 {
		return d
	}
	if j == 0 {
		j = 0.1
	}
	f := 1 + j*(2*c.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// roundTrip sends pkt and waits for a response to the same exchange,
// retransmitting with exponential backoff on timeout.
func (c *Client) roundTrip(pkt netproto.Packet) (netproto.Packet, error) {
	return c.exchange(pkt, time.Time{})
}

// exchange is roundTrip bounded by an optional overall deadline (zero
// = none): attempts stop, and per-attempt read deadlines are capped,
// at the deadline — so a caller-level budget like WaitTimeout is
// honored even when every poll in a streak times out.
//
// A CmdError response becomes an error; responses carrying a stale
// exchange seq (duplicates, reordered strays) are counted and
// discarded.
func (c *Client) exchange(pkt netproto.Packet, overall time.Time) (netproto.Packet, error) {
	return c.exchangeCtx(context.Background(), pkt, overall, 0)
}

// exchangeCtx is exchange with two extensions the server-held wait
// needs: extraWait stretches every attempt's read deadline beyond the
// backoff schedule (a parked CmdWaitResult legitimately answers up to
// the hold late, which must not read as loss), and a canceled ctx
// interrupts even a blocked read by expiring the socket's read
// deadline from the context's watcher goroutine.
func (c *Client) exchangeCtx(ctx context.Context, pkt netproto.Packet, overall time.Time, extraWait time.Duration) (netproto.Packet, error) {
	rev := c.wireRev()
	pkt.Board = c.Board
	c.seq++
	if rev >= 3 {
		pkt.Seq, pkt.HasSeq = c.seq, true
	}
	if c.TraceID != 0 && rev >= 4 {
		pkt.TraceID, pkt.HasTrace = c.TraceID, true
	}
	want := pkt.Command | netproto.RespFlag
	raw := pkt.Marshal()
	buf := make([]byte, 64<<10)
	c.m.requests.With(netproto.CommandName(pkt.Command)).Inc()
	start := c.clk.Now()

	// One exchange span; each datagram is an "attempt" (first) or
	// "retry" (retransmission) child. Fetching traces (CmdTraces) is
	// itself never traced, so pulling a trace does not grow it.
	var xs tracing.SpanHandle
	if pkt.Command != netproto.CmdTraces {
		xc := c.op
		if !xc.On() {
			xc = c.traceCtx()
		}
		xs = xc.Start("exchange:" + netproto.CommandName(pkt.Command))
	}
	xchild := xs.Ctx()

	wait := c.Timeout
	if wait <= 0 {
		wait = 2 * time.Second
	}
	maxWait := c.MaxTimeout
	if maxWait <= 0 {
		maxWait = 16 * wait
	}
	factor := c.BackoffFactor
	if factor <= 1 {
		factor = 2
	}

	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			// Unblock an in-flight Read: a deadline in the past makes it
			// return a timeout error immediately, and the loop below
			// notices ctx.Err() before retransmitting.
			c.conn.SetReadDeadline(c.clk.Now())
		})
		defer stop()
	}

	attempts := 0
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			xs.EndAttrs(tracing.A("status", "canceled"))
			return netproto.Packet{}, fmt.Errorf("client: exchange canceled: %w", err)
		}
		if attempt > 0 {
			c.m.retries.Inc()
			wait = time.Duration(float64(wait) * factor)
			if wait > maxWait {
				wait = maxWait
			}
			c.m.backoffs.Inc()
			c.m.backoffDur.Observe(wait.Seconds())
		}
		if !overall.IsZero() && !c.clk.Now().Before(overall) {
			break // caller's budget exhausted: do not start another attempt
		}
		aname := "attempt"
		if attempt > 0 {
			aname = "retry"
		}
		as := xchild.Start(aname)
		if as.On() && attempt > 0 {
			as = as.WithAttr("wait", wait.String())
		}
		if _, err := c.conn.Write(raw); err != nil {
			c.m.errors.Inc()
			as.EndAttrs(tracing.A("outcome", "send_error"))
			xs.EndAttrs(tracing.A("status", "error"))
			return netproto.Packet{}, fmt.Errorf("client: send: %w", err)
		}
		attempts++
		deadline := c.clk.Now().Add(c.jittered(wait) + extraWait)
		if !overall.IsZero() && deadline.After(overall) {
			deadline = overall
		}
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				c.m.errors.Inc()
				as.EndAttrs(tracing.A("outcome", "socket_error"))
				xs.EndAttrs(tracing.A("status", "error"))
				return netproto.Packet{}, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				lastErr = err
				c.m.timeouts.Inc()
				as.EndAttrs(tracing.A("outcome", "timeout"))
				break // timeout: retransmit
			}
			resp, err := netproto.ParsePacket(buf[:n])
			if err != nil {
				continue // stray datagram
			}
			if resp.HasSeq && resp.Seq != pkt.Seq {
				// A duplicated or delayed response from an earlier
				// exchange: suppress it instead of mistaking it for
				// this one's answer.
				c.m.dupSuppressed.Inc()
				continue
			}
			if resp.Board != pkt.Board {
				// A response for another board, misdelivered by the
				// network (or a chaotic relay): never this exchange's
				// answer, even if the seq happens to collide.
				c.m.dupSuppressed.Inc()
				continue
			}
			if resp.Command == netproto.CmdError {
				er, perr := netproto.ParseErrorResp(resp.Body)
				if perr != nil {
					c.m.errors.Inc()
					as.EndAttrs(tracing.A("outcome", "bad_error_resp"))
					xs.EndAttrs(tracing.A("status", "error"))
					return netproto.Packet{}, fmt.Errorf("client: malformed error response: %w", perr)
				}
				if er.Code != pkt.Command {
					continue // stale error for an earlier request
				}
				c.m.errors.Inc()
				as.EndAttrs(tracing.A("outcome", "server_error"))
				xs.EndAttrs(tracing.A("status", "error"), tracing.A("error", er.Msg))
				return netproto.Packet{}, &ServerError{Cmd: pkt.Command, Msg: er.Msg}
			}
			if resp.Command != want {
				continue // stale response from a retransmitted earlier request
			}
			body := make([]byte, len(resp.Body))
			copy(body, resp.Body)
			resp.Body = body
			c.m.rtt.Observe(c.clk.Since(start).Seconds())
			as.EndAttrs(tracing.A("outcome", "ok"))
			if xs.On() {
				xs.EndAttrs(tracing.A("status", "ok"),
					tracing.A("attempts", fmt.Sprintf("%d", attempts)))
			}
			return resp, nil
		}
	}
	c.m.errors.Inc()
	c.m.unreachable.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("deadline before first attempt")
	}
	xs.EndAttrs(tracing.A("status", "unreachable"))
	return netproto.Packet{}, &UnreachableError{
		Board:    c.Board,
		Cmd:      netproto.CommandName(pkt.Command),
		Attempts: attempts,
		Elapsed:  c.clk.Since(start),
		Last:     lastErr,
	}
}

// Status queries the controller state ("to check if LEON has started
// up").
func (c *Client) Status() (st netproto.StatusResp, err error) {
	op := c.beginOp("status")
	defer func() { c.endOp(op, err) }()
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStatus})
	if err != nil {
		return netproto.StatusResp{}, err
	}
	return netproto.ParseStatusResp(resp.Body)
}

// LoadProgram uploads an image to the given SRAM address, splitting it
// into sequence-numbered chunks and keeping a sliding window of them
// (Window, default 16) in flight, so a load costs ~chunks/window round
// trips instead of one per chunk. Loads are idempotent and resumable:
// every ack carries the server's reassembly progress, so when a chunk
// the board already holds is re-sent — a retransmission, or this call
// resuming an earlier interrupted load — the server re-acks without
// re-applying and the window skips ahead to the first chunk the board
// is missing. A silent round (no ack within the backed-off timeout)
// triggers a go-back resend of everything outstanding above the
// cumulative ack floor, byte-identical to the originals so the
// server's dedup window recognizes the retransmissions. On failure the
// returned error is a *LoadError carrying the acknowledged-chunk count
// and the in-flight window state.
func (c *Client) LoadProgram(addr uint32, image []byte) (err error) {
	op := c.beginOp("load")
	defer func() { c.endOp(op, err) }()
	window := c.Window
	if window <= 0 {
		window = DefaultWindow
	}
	if c.wireRev() < 3 {
		// No exchange seqs on the wire means acks cannot be matched to
		// chunks: load stop-and-wait, like the pre-v3 client did.
		window = 1
	}
	return c.loadWindowed(netproto.ChunkImage(addr, image), window)
}

// loadWindowed pumps the chunk sequence through the sliding window.
// The first chunk travels alone (a probe): if the server holds
// progress from an interrupted load, its dup-ack reveals the real
// resume point before the window sprays chunks the board already has.
func (c *Client) loadWindowed(chunks []netproto.LoadChunk, window int) error {
	n := len(chunks)
	if n == 0 {
		return nil
	}

	var (
		seqs     = make([]uint16, n)    // exchange seq pinned at first send
		raws     = make([][]byte, n)    // exact datagram bytes (resends are identical)
		sentAt   = make([]time.Time, n) // last transmission time, for RTT
		assigned = make([]bool, n)      // sent at least once
		ackedCh  = make([]bool, n)      // acknowledged (directly or by cumulative ack)
		chspan   = make([]tracing.SpanHandle, n)
		pend     = map[uint16]int{} // outstanding exchange seq → chunk index
		base     = 0                // every chunk below base is held by the server
		next     = 0                // lowest chunk not yet considered for sending
		acked    = 0                // highest received count the server advertised
		resumed  = false
		firstAck = false
		attempts = 0
		start    = c.clk.Now()
		lastErr  error
	)

	fail := func(cause error) error {
		for i, sp := range chspan {
			if sp.On() && !ackedCh[i] {
				sp.EndAttrs(tracing.A("status", "error"))
			}
		}
		return &LoadError{
			ChunksAcked: acked, ChunksTotal: n,
			HighestAck: base, Outstanding: len(pend), Window: window,
			Err: cause,
		}
	}

	rev := c.wireRev()

	send := func(i int) error {
		if !assigned[i] {
			c.seq++
			seqs[i] = c.seq
			pkt := netproto.Packet{
				Command: netproto.CmdLoadProgram,
				Board:   c.Board,
				Body:    chunks[i].Marshal(),
			}
			if rev >= 3 {
				pkt.Seq, pkt.HasSeq = c.seq, true
			}
			if c.TraceID != 0 && rev >= 4 {
				pkt.TraceID, pkt.HasTrace = c.TraceID, true
			}
			raws[i] = pkt.Marshal()
			assigned[i] = true
			pend[seqs[i]] = i
			c.m.requests.With("load").Inc()
			xc := c.op
			if !xc.On() {
				xc = c.traceCtx()
			}
			if xc.On() {
				chspan[i] = xc.Start("exchange:load").WithAttr("chunk", fmt.Sprintf("%d/%d", i+1, n))
			}
			chspan[i].Ctx().Start("attempt").End()
		} else {
			c.m.retries.Inc()
			c.m.chunkResends.Inc()
			chspan[i].Ctx().Start("retry").End()
		}
		if _, werr := c.conn.Write(raws[i]); werr != nil {
			c.m.errors.Inc()
			return fmt.Errorf("client: send: %w", werr)
		}
		sentAt[i] = c.clk.Now()
		attempts++
		return nil
	}

	// advance lifts the cumulative floor to the max of the server's
	// advertised next-needed chunk and the locally-acked contiguous
	// prefix (pre-progress servers advertise nothing), retiring
	// outstanding exchanges below it and skipping never-sent chunks
	// the server already holds (resume).
	advance := func(serverNext int) {
		nb := base
		if serverNext > nb {
			nb = serverNext
		}
		if nb > n {
			nb = n
		}
		for nb < n && ackedCh[nb] {
			nb++
		}
		if nb <= base {
			return
		}
		for i := base; i < nb; i++ {
			switch {
			case !assigned[i]:
				c.m.resumedChunks.Inc()
				if !resumed {
					resumed = true
					c.m.resumedLoads.Inc()
				}
			case !ackedCh[i]:
				delete(pend, seqs[i])
				ackedCh[i] = true
				if chspan[i].On() {
					chspan[i].EndAttrs(tracing.A("status", "ok"), tracing.A("ack", "cumulative"))
				}
			}
		}
		base = nb
		if next < base {
			next = base
		}
	}

	wait := c.Timeout
	if wait <= 0 {
		wait = 2 * time.Second
	}
	maxWait := c.MaxTimeout
	if maxWait <= 0 {
		maxWait = 16 * wait
	}
	factor := c.BackoffFactor
	if factor <= 1 {
		factor = 2
	}
	consec := 0 // consecutive silent rounds; bounded by Retries
	buf := make([]byte, 64<<10)

	for {
		// Top up the window (a single probe until the first ack).
		cw := window
		if !firstAck {
			cw = 1
		}
		for next < n && len(pend) < cw {
			if next < base || ackedCh[next] {
				next++
				continue
			}
			if err := send(next); err != nil {
				return fail(err)
			}
			next++
		}
		if base >= n {
			return nil
		}

		// Wait for one acknowledgment (strays don't reset the clock).
		deadline := c.clk.Now().Add(c.jittered(wait))
		timedOut := false
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				c.m.errors.Inc()
				return fail(err)
			}
			nr, rerr := c.conn.Read(buf)
			if rerr != nil {
				lastErr = rerr
				c.m.timeouts.Inc()
				timedOut = true
				break
			}
			resp, perr := netproto.ParsePacket(buf[:nr])
			if perr != nil {
				continue // stray datagram
			}
			if resp.Board != c.Board {
				c.m.dupSuppressed.Inc()
				continue
			}
			idx := -1
			if resp.HasSeq {
				j, ok := pend[resp.Seq]
				if !ok {
					// An ack for a chunk already retired (a duplicated
					// or reordered response), or a stray from an earlier
					// exchange: suppress.
					c.m.dupSuppressed.Inc()
					continue
				}
				idx = j
			}
			if resp.Command == netproto.CmdError {
				er, eperr := netproto.ParseErrorResp(resp.Body)
				if eperr != nil {
					c.m.errors.Inc()
					return fail(fmt.Errorf("client: malformed error response: %w", eperr))
				}
				if er.Code != netproto.CmdLoadProgram {
					continue // stale error for an earlier request
				}
				c.m.errors.Inc()
				return fail(&ServerError{Cmd: netproto.CmdLoadProgram, Msg: er.Msg})
			}
			if resp.Command != netproto.CmdLoadProgram|netproto.RespFlag {
				continue // stale response from an earlier exchange
			}
			if idx < 0 {
				// A pre-seq server's bare ack credits the oldest
				// outstanding chunk — acks arrive in send order there.
				for _, j := range pend {
					if idx < 0 || j < idx {
						idx = j
					}
				}
				if idx < 0 {
					c.m.dupSuppressed.Inc()
					continue
				}
			}
			rep, rperr := netproto.ParseRunReport(resp.Body)
			if rperr != nil {
				return fail(fmt.Errorf("client: load chunk %d/%d: %w", idx+1, n, rperr))
			}
			if rep.Status != netproto.StatusOK && rep.Status != netproto.StatusPending {
				return fail(fmt.Errorf("client: load chunk %d/%d: status %d", idx+1, n, rep.Status))
			}
			c.m.rtt.Observe(c.clk.Since(sentAt[idx]).Seconds())
			delete(pend, seqs[idx])
			ackedCh[idx] = true
			if chspan[idx].On() {
				chspan[idx].EndAttrs(tracing.A("status", "ok"))
			}
			received, serverNext := netproto.LoadAckProgress(rep)
			if received > acked {
				acked = received
			}
			firstAck = true
			consec = 0
			wait = c.Timeout
			if wait <= 0 {
				wait = 2 * time.Second
			}
			advance(serverNext)
			if rep.Status == netproto.StatusOK {
				// The server confirmed the complete image (the OK ack is
				// only ever sent for the chunk that finishes reassembly).
				for i, sp := range chspan {
					if sp.On() && !ackedCh[i] {
						sp.EndAttrs(tracing.A("status", "ok"))
					}
				}
				return nil
			}
			break
		}

		if timedOut {
			consec++
			if consec > c.Retries {
				c.m.errors.Inc()
				c.m.unreachable.Inc()
				return fail(&UnreachableError{
					Board:    c.Board,
					Cmd:      netproto.CommandName(netproto.CmdLoadProgram),
					Attempts: attempts,
					Elapsed:  c.clk.Since(start),
					Last:     lastErr,
				})
			}
			// Back off the next round's clock, then go back from the
			// cumulative ack floor: resend everything outstanding.
			wait = time.Duration(float64(wait) * factor)
			if wait > maxWait {
				wait = maxWait
			}
			c.m.backoffs.Inc()
			c.m.backoffDur.Observe(wait.Seconds())
			for i := base; i < next; i++ {
				if assigned[i] && !ackedCh[i] {
					if err := send(i); err != nil {
						return fail(err)
					}
				}
			}
		}
	}
}

// Start executes the loaded program (entry 0 = last load address) and
// blocks until it completes, returning the cycle-counter report. Since
// the asynchronous control plane it is a convenience composition of
// StartAsync + WaitResult: the board is started with one round trip,
// then polled for completion every PollInterval. The signature and
// observable behavior match the historical blocking call.
func (c *Client) Start(entry uint32, maxCycles uint64) (netproto.RunReport, error) {
	rep, err := c.startAck(entry, maxCycles)
	if err != nil {
		return netproto.RunReport{}, err
	}
	if rep.Status != netproto.StatusRunning {
		// A pre-async (rev<2) server blocks through the run inside
		// CmdStartLEON: the ack IS the final report, and polling a
		// server that old for a result it never stores would fail.
		return rep, nil
	}
	return c.WaitResult()
}

// startAck issues the CmdStartLEON exchange and returns the raw ack
// report: StatusRunning from an asynchronous server, the final report
// from a blocking pre-async one.
func (c *Client) startAck(entry uint32, maxCycles uint64) (rep netproto.RunReport, err error) {
	op := c.beginOp("start")
	defer func() { c.endOp(op, err) }()
	req := netproto.StartReq{Entry: entry, MaxCycles: maxCycles}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStartLEON, Body: req.Marshal()})
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// StartAsync starts the loaded program and returns as soon as the board
// acknowledges the handoff — the "started" ack of the asynchronous
// control plane. Poll Status (CurCycles advances while running) and
// collect the report with Result or WaitResult.
func (c *Client) StartAsync(entry uint32, maxCycles uint64) error {
	rep, err := c.startAck(entry, maxCycles)
	if err != nil {
		return err
	}
	if rep.Status != netproto.StatusRunning && rep.Status != netproto.StatusOK {
		return fmt.Errorf("client: start ack status %d", rep.Status)
	}
	return nil
}

// Result fetches the run report with a single round trip. While the run
// is still in flight the report has Status == StatusRunning and a live
// cycle counter; once complete it is the final report (idempotent — the
// server keeps answering with the last result).
func (c *Client) Result() (netproto.RunReport, error) {
	return c.resultWithin(time.Time{})
}

// resultWithin is Result bounded by an overall deadline.
func (c *Client) resultWithin(deadline time.Time) (rep netproto.RunReport, err error) {
	op := c.beginOp("result")
	defer func() { c.endOp(op, err) }()
	resp, err := c.exchange(netproto.Packet{Command: netproto.CmdResult}, deadline)
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// WaitResult waits for the run to leave StatusRunning and returns the
// final report. Against a v5 server it uses the server-held wait:
// each CmdWaitResult exchange asks the server to park the reply up to
// WaitHold and answer the instant the run completes, so completion
// latency is one network trip rather than a poll interval. When the
// server rejects CmdWaitResult as unknown (a pre-v5 node) the client
// falls back — permanently, for this client — to polling Result every
// PollInterval. WaitTimeout (default 2 minutes) bounds the whole
// wait, including streaks where every exchange is lost: the
// retransmission schedule is capped at the overall deadline, so the
// wait never overshoots it by a retry cycle.
func (c *Client) WaitResult() (netproto.RunReport, error) {
	return c.WaitResultContext(context.Background())
}

// WaitResultContext is WaitResult bounded additionally by ctx: it
// returns early with ctx.Err() when the context is canceled or its
// deadline (if sooner than WaitTimeout) passes. Cancellation
// interrupts even a server-held exchange mid-read.
func (c *Client) WaitResultContext(ctx context.Context) (rep netproto.RunReport, err error) {
	op := c.beginOp("wait_result")
	defer func() { c.endOp(op, err) }()
	interval := c.PollInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	limit := c.WaitTimeout
	if limit <= 0 {
		limit = 2 * time.Minute
	}
	hold := c.WaitHold
	if hold == 0 {
		hold = DefaultWaitHold
	}
	deadline := c.clk.Now().Add(limit)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	for {
		if err := ctx.Err(); err != nil {
			return netproto.RunReport{}, fmt.Errorf("client: wait canceled: %w", err)
		}
		useHold := hold > 0 && !c.noServerWait && c.wireRev() >= 5
		var (
			rep  netproto.RunReport
			rerr error
			held time.Duration
		)
		if useHold {
			h := hold
			if remain := c.clk.Until(deadline); remain < h {
				h = remain // never ask the server to outlast our own budget
			}
			if h < time.Millisecond {
				h = time.Millisecond
			}
			before := c.clk.Now()
			rep, rerr = c.waitHeld(ctx, h, deadline)
			held = c.clk.Since(before)
			if rerr != nil {
				var se *ServerError
				if errors.As(rerr, &se) && se.Cmd == netproto.CmdWaitResult {
					// This server predates CmdWaitResult: downgrade to the
					// poll loop and stop probing.
					c.noServerWait = true
					c.m.waitFallback.Inc()
					continue
				}
			}
		} else {
			rep, rerr = c.resultWithin(deadline)
		}
		if rerr != nil {
			if ctx.Err() != nil {
				return netproto.RunReport{}, fmt.Errorf("client: wait canceled: %w", ctx.Err())
			}
			var ue *UnreachableError
			if errors.As(rerr, &ue) && !c.clk.Now().Before(deadline) {
				return netproto.RunReport{}, fmt.Errorf("client: run still unconfirmed after %v: %w", limit, rerr)
			}
			return netproto.RunReport{}, rerr
		}
		if rep.Status != netproto.StatusRunning {
			return rep, nil
		}
		remain := c.clk.Until(deadline)
		if remain <= 0 {
			return rep, fmt.Errorf("client: run still in flight after %v", limit)
		}
		if useHold && held >= interval {
			// The server held the exchange and the run outlasted the
			// hold: re-issue immediately; the exchange itself paced us.
			continue
		}
		sleep := interval
		if sleep > remain {
			sleep = remain
		}
		select {
		case <-ctx.Done():
			return netproto.RunReport{}, fmt.Errorf("client: wait canceled: %w", ctx.Err())
		case <-c.clk.After(sleep):
		}
	}
}

// waitHeld issues one server-held result exchange: the server may
// delay the reply up to h, so every read deadline is stretched by h
// beyond the normal retransmission schedule.
func (c *Client) waitHeld(ctx context.Context, h time.Duration, overall time.Time) (netproto.RunReport, error) {
	c.m.waitHolds.Inc()
	req := netproto.WaitResultReq{HoldMs: uint32(h / time.Millisecond)}
	resp, err := c.exchangeCtx(ctx, netproto.Packet{Command: netproto.CmdWaitResult, Body: req.Marshal()}, overall, h)
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// StartSync executes the program with the blocking wire command
// (CmdStartSync): one request, one response carrying the final report.
// It is the v1-compatible path for short programs; prefer
// StartAsync/WaitResult, which keeps the control channel responsive.
func (c *Client) StartSync(entry uint32, maxCycles uint64) (rep netproto.RunReport, err error) {
	op := c.beginOp("start_sync")
	defer func() { c.endOp(op, err) }()
	req := netproto.StartReq{Entry: entry, MaxCycles: maxCycles}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStartSync, Body: req.Marshal()})
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// ReadMemory reads n bytes from addr, issuing as many requests as the
// per-response cap requires.
func (c *Client) ReadMemory(addr uint32, n int) ([]byte, error) {
	const chunk = 32 << 10
	out := make([]byte, 0, n)
	for n > 0 {
		ask := n
		if ask > chunk {
			ask = chunk
		}
		req := netproto.MemReq{Addr: addr, Length: uint32(ask)}
		resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
		if err != nil {
			return nil, err
		}
		mr, err := netproto.ParseMemResp(resp.Body)
		if err != nil {
			return nil, err
		}
		if len(mr.Data) != ask {
			return nil, fmt.Errorf("client: short read: %d of %d bytes", len(mr.Data), ask)
		}
		out = append(out, mr.Data...)
		addr += uint32(ask)
		n -= ask
	}
	return out, nil
}

// WriteMemory stores bytes at addr.
func (c *Client) WriteMemory(addr uint32, data []byte) error {
	req := netproto.MemReq{Addr: addr, Data: data}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdWriteMemory, Body: req.Marshal()})
	if err != nil {
		return err
	}
	_, err = netproto.ParseMemResp(resp.Body)
	return err
}

// Reconfigure asks the platform to swap in a different architecture
// configuration (the liquid step) and blocks until the swap lands.
// spec is the platform-defined configuration description. Since
// protocol rev 6 it is a composition of ReconfigureAsync +
// WaitReconfigure; against a pre-rev-6 server the ack itself carries
// the outcome and no wait is issued, so the observable behavior
// matches the historical blocking call either way.
func (c *Client) Reconfigure(spec []byte) (err error) {
	op := c.beginOp("reconfigure")
	defer func() { c.endOp(op, err) }()
	st, err := c.ReconfigureAsync(spec)
	if err != nil {
		return err
	}
	if !st.Terminal() {
		if st, err = c.WaitReconfigure(context.Background()); err != nil {
			return err
		}
	}
	if st.State != netproto.ReconfigApplied {
		if st.Msg != "" {
			return fmt.Errorf("client: reconfigure failed: %s", st.Msg)
		}
		return fmt.Errorf("client: reconfigure ended %s", netproto.ReconfigStateName(st.State))
	}
	return nil
}

// ReconfigureAsync sends one CmdReconfigure exchange and returns the
// server's immediate ack as a ticket status: Applied for a cache hit
// on an idle board (the millisecond path), Queued/Synthesizing when
// the modelled tool run proceeds in the background (follow up with
// ReconfigStatus or WaitReconfigure). A pre-rev-6 server blocks
// through the whole swap and its ack maps onto the terminal states, so
// callers need not know which protocol generation answered.
func (c *Client) ReconfigureAsync(spec []byte) (st netproto.ReconfigStatusResp, err error) {
	op := c.beginOp("reconfigure")
	defer func() { c.endOp(op, err) }()
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReconfigure, Body: spec})
	if err != nil {
		return netproto.ReconfigStatusResp{}, err
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return netproto.ReconfigStatusResp{}, err
	}
	return netproto.ReconfigAckInfo(rep), nil
}

// Prewarm asks the node to pre-synthesize the given configuration
// specs into its reconfiguration cache without swapping any of them
// in, returning how many tickets the server queued. Synthesis
// proceeds on the server's shared worker pool; later Reconfigure
// calls to these points become cache hits. A pre-rev-6 server does
// not understand prewarm bodies and reports 0 queued.
func (c *Client) Prewarm(specs []json.RawMessage) (queued uint32, err error) {
	op := c.beginOp("prewarm")
	defer func() { c.endOp(op, err) }()
	body, err := json.Marshal(struct {
		Prewarm []json.RawMessage `json:"prewarm"`
	}{specs})
	if err != nil {
		return 0, fmt.Errorf("client: prewarm spec: %w", err)
	}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReconfigure, Body: body})
	if err != nil {
		return 0, err
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return 0, err
	}
	return netproto.ReconfigAckInfo(rep).Queued, nil
}

// ReconfigStatus polls the board's asynchronous reconfiguration state
// with a single round trip (rev 6; older servers reject it as
// unknown). The poll also pumps: an image whose synthesis completed
// while the board was busy is swapped in by this very exchange.
func (c *Client) ReconfigStatus() (netproto.ReconfigStatusResp, error) {
	return c.reconfigStatusWithin(time.Time{})
}

func (c *Client) reconfigStatusWithin(deadline time.Time) (st netproto.ReconfigStatusResp, err error) {
	op := c.beginOp("reconfig_status")
	defer func() { c.endOp(op, err) }()
	resp, err := c.exchange(netproto.Packet{Command: netproto.CmdReconfigStatus}, deadline)
	if err != nil {
		return netproto.ReconfigStatusResp{}, err
	}
	return netproto.ParseReconfigStatusResp(resp.Body)
}

// WaitReconfigure blocks until the asynchronous reconfiguration
// reaches a terminal state and returns it. Like WaitResult it prefers
// the server-held wait — each CmdWaitReconfig exchange parks on the
// board worker up to WaitHold and answers the instant the swap lands —
// and downgrades permanently to CmdReconfigStatus polling when the
// server rejects the command as unknown. WaitTimeout bounds the whole
// wait; ctx cancels it early, interrupting even a held exchange.
func (c *Client) WaitReconfigure(ctx context.Context) (st netproto.ReconfigStatusResp, err error) {
	op := c.beginOp("wait_reconfig")
	defer func() { c.endOp(op, err) }()
	interval := c.PollInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	limit := c.WaitTimeout
	if limit <= 0 {
		limit = 2 * time.Minute
	}
	hold := c.WaitHold
	if hold == 0 {
		hold = DefaultWaitHold
	}
	deadline := c.clk.Now().Add(limit)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	for {
		if err := ctx.Err(); err != nil {
			return netproto.ReconfigStatusResp{}, fmt.Errorf("client: wait canceled: %w", err)
		}
		useHold := hold > 0 && !c.noReconfigWait && c.wireRev() >= 6
		var (
			rst  netproto.ReconfigStatusResp
			rerr error
			held time.Duration
		)
		if useHold {
			h := hold
			if remain := c.clk.Until(deadline); remain < h {
				h = remain // never ask the server to outlast our own budget
			}
			if h < time.Millisecond {
				h = time.Millisecond
			}
			before := c.clk.Now()
			rst, rerr = c.waitReconfigHeld(ctx, h, deadline)
			held = c.clk.Since(before)
			if rerr != nil {
				var se *ServerError
				if errors.As(rerr, &se) && se.Cmd == netproto.CmdWaitReconfig {
					// This server predates CmdWaitReconfig: downgrade to
					// the status-poll loop and stop probing.
					c.noReconfigWait = true
					c.m.waitFallback.Inc()
					continue
				}
			}
		} else {
			rst, rerr = c.reconfigStatusWithin(deadline)
		}
		if rerr != nil {
			if ctx.Err() != nil {
				return netproto.ReconfigStatusResp{}, fmt.Errorf("client: wait canceled: %w", ctx.Err())
			}
			var ue *UnreachableError
			if errors.As(rerr, &ue) && !c.clk.Now().Before(deadline) {
				return netproto.ReconfigStatusResp{}, fmt.Errorf("client: reconfiguration still unconfirmed after %v: %w", limit, rerr)
			}
			return netproto.ReconfigStatusResp{}, rerr
		}
		if rst.Terminal() || rst.State == netproto.ReconfigNone {
			return rst, nil
		}
		remain := c.clk.Until(deadline)
		if remain <= 0 {
			return rst, fmt.Errorf("client: reconfiguration still in flight after %v", limit)
		}
		if useHold && held >= interval {
			// The server held the exchange and the swap outlasted the
			// hold: re-issue immediately; the exchange itself paced us.
			continue
		}
		sleep := interval
		if sleep > remain {
			sleep = remain
		}
		select {
		case <-ctx.Done():
			return netproto.ReconfigStatusResp{}, fmt.Errorf("client: wait canceled: %w", ctx.Err())
		case <-c.clk.After(sleep):
		}
	}
}

// waitReconfigHeld issues one server-held reconfiguration wait; the
// server may delay the reply up to h, so every read deadline is
// stretched by h beyond the normal retransmission schedule.
func (c *Client) waitReconfigHeld(ctx context.Context, h time.Duration, overall time.Time) (netproto.ReconfigStatusResp, error) {
	c.m.waitHolds.Inc()
	req := netproto.WaitReconfigReq{HoldMs: uint32(h / time.Millisecond)}
	resp, err := c.exchangeCtx(ctx, netproto.Packet{Command: netproto.CmdWaitReconfig, Body: req.Marshal()}, overall, h)
	if err != nil {
		return netproto.ReconfigStatusResp{}, err
	}
	return netproto.ParseReconfigStatusResp(resp.Body)
}

// GetConfig fetches the platform's active configuration description.
func (c *Client) GetConfig() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdGetConfig})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// TraceReport pulls the instrumented-trace summary of the last run
// (JSON; see core.TraceReport for the schema).
func (c *Client) TraceReport() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdTraceReport})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Traces pulls the server's exchange-trace spans over the control
// channel (CmdTraces). id selects one trace (the server removes it
// from its ring — fetch once and keep it); zero asks for all recently
// completed traces. The result is JSON: an array of tracing.TraceData
// documents, mergeable with the client's own collector output via
// tracing.ChromeJSON. The fetch exchange itself is never traced.
func (c *Client) Traces(id uint64) ([]tracing.TraceData, error) {
	req := netproto.TracesReq{TraceID: id}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdTraces, Body: req.Marshal()})
	if err != nil {
		return nil, err
	}
	tr, err := netproto.ParseTracesResp(resp.Body)
	if err != nil {
		return nil, err
	}
	if tr.Status != netproto.StatusOK {
		return nil, fmt.Errorf("client: traces status %d", tr.Status)
	}
	var out []tracing.TraceData
	if err := json.Unmarshal(tr.JSON, &out); err != nil {
		return nil, fmt.Errorf("client: traces payload: %w", err)
	}
	return out, nil
}

// Stats pulls the server node's telemetry snapshot over the control
// channel (JSON; the same document the HTTP /statusz endpoint serves
// under "metrics"). Unmarshals into metrics.Snapshot.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStats})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// RunProgram is the whole §2.6 flow in one call: load, start, and read
// back resultLen bytes from resultAddr (skipped when resultLen is 0).
func (c *Client) RunProgram(addr uint32, image []byte, entry uint32, resultAddr uint32, resultLen int) (netproto.RunReport, []byte, error) {
	if err := c.LoadProgram(addr, image); err != nil {
		return netproto.RunReport{}, nil, err
	}
	rep, err := c.Start(entry, 0)
	if err != nil {
		return rep, nil, err
	}
	if resultLen <= 0 {
		return rep, nil, nil
	}
	data, err := c.ReadMemory(resultAddr, resultLen)
	return rep, data, err
}
