// Package client is the control-software side of Fig. 4: it compiles
// requests into UDP control packets, sends them to the reconfiguration
// server (or directly to an FPX), and interprets the responses. It
// plays the role of the paper's Java servlet UDP client, hardened for
// the transport the paper actually assumes — the open Internet, where
// datagrams drop, duplicate, reorder and truncate:
//
//   - every exchange is stamped with a sequence number (v3 header)
//     that responses echo, so duplicated or delayed responses from an
//     earlier exchange are discarded instead of being mistaken for
//     fresh ones;
//   - timed-out exchanges retransmit with exponential backoff plus
//     jitter under a bounded retry budget, and budget exhaustion
//     surfaces as ErrBoardUnreachable with partial progress attached;
//   - multi-packet loads resume from the server's advertised progress
//     instead of restarting, so an interrupted load never re-sends
//     chunks the board already holds.
//
// A Client is not safe for concurrent use; open one client per
// goroutine (they are cheap — one UDP socket each).
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"liquidarch/internal/metrics"
	"liquidarch/internal/netproto"
	"liquidarch/internal/tracing"
)

// ErrBoardUnreachable reports that an exchange exhausted its retry
// budget without a response. Use errors.Is to detect it; the concrete
// *UnreachableError carries the partial statistics.
var ErrBoardUnreachable = errors.New("board unreachable")

// UnreachableError is the graceful-degradation error: the retry
// budget ran out, and these are the partial stats of the attempt.
type UnreachableError struct {
	Board    uint8         // destination board
	Cmd      string        // command label (netproto.CommandName)
	Attempts int           // datagrams sent for this exchange
	Elapsed  time.Duration // wall time burned before giving up
	Last     error         // last socket/timeout error observed
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("client: board %d unreachable: %s got no response after %d attempts over %v: %v",
		e.Board, e.Cmd, e.Attempts, e.Elapsed.Round(time.Millisecond), e.Last)
}

// Is makes errors.Is(err, ErrBoardUnreachable) true.
func (e *UnreachableError) Is(target error) bool { return target == ErrBoardUnreachable }

// Unwrap exposes the underlying socket error.
func (e *UnreachableError) Unwrap() error { return e.Last }

// LoadError is a failed multi-packet load with its partial progress:
// how many chunks the server acknowledged before the transport gave
// out. A follow-up LoadProgram resumes from the server's state rather
// than re-sending acknowledged chunks.
type LoadError struct {
	ChunksAcked int // chunks the server confirmed
	ChunksTotal int // chunks in the whole image
	Err         error
}

func (e *LoadError) Error() string {
	return fmt.Sprintf("client: load interrupted at chunk %d/%d: %v", e.ChunksAcked, e.ChunksTotal, e.Err)
}

// Unwrap exposes the transport error (so errors.Is sees
// ErrBoardUnreachable through a LoadError).
func (e *LoadError) Unwrap() error { return e.Err }

// clientMetrics count the client's view of the network: how often the
// unreliable channel made it retransmit, back off, give up, or wait.
type clientMetrics struct {
	requests      *metrics.CounterVec
	retries       *metrics.Counter
	timeouts      *metrics.Counter
	errors        *metrics.Counter
	unreachable   *metrics.Counter
	dupSuppressed *metrics.Counter
	backoffs      *metrics.Counter
	backoffDur    *metrics.Histogram
	resumedChunks *metrics.Counter
	resumedLoads  *metrics.Counter
	rtt           *metrics.Histogram
}

func newClientMetrics(r *metrics.Registry) clientMetrics {
	return clientMetrics{
		requests:      r.CounterVec("liquid_client_requests_total", "Requests issued, by command.", "cmd"),
		retries:       r.Counter("liquid_client_retries_total", "Requests retransmitted after a timeout."),
		timeouts:      r.Counter("liquid_client_timeouts_total", "Read deadlines that expired waiting for a response."),
		errors:        r.Counter("liquid_client_errors_total", "Exchanges that ended in an error (server CmdError or exhausted retries)."),
		unreachable:   r.Counter("liquid_client_unreachable_total", "Exchanges abandoned after the retry budget (ErrBoardUnreachable)."),
		dupSuppressed: r.Counter("liquid_client_dup_responses_total", "Responses discarded because their exchange seq was stale (duplicate or reordered)."),
		backoffs:      r.Counter("liquid_client_backoff_total", "Retransmission waits grown by the exponential backoff."),
		backoffDur:    r.Histogram("liquid_client_backoff_seconds", "Length of each backed-off retransmission wait.", metrics.DefSecondsBuckets),
		resumedChunks: r.Counter("liquid_client_load_chunks_skipped_total", "Load chunks skipped because the server already held them (resume)."),
		resumedLoads:  r.Counter("liquid_client_loads_resumed_total", "Loads that resumed from server-side progress instead of restarting."),
		rtt:           r.Histogram("liquid_client_rtt_seconds", "Round-trip latency of successful exchanges.", metrics.DefSecondsBuckets),
	}
}

// Client is a UDP control client bound to one server node.
type Client struct {
	conn *net.UDPConn

	// Timeout bounds the FIRST attempt of each request/response
	// exchange; subsequent retransmissions back off exponentially.
	Timeout time.Duration
	// MaxTimeout caps the backed-off per-attempt timeout
	// (0 = 16× Timeout).
	MaxTimeout time.Duration
	// BackoffFactor is the per-retry timeout multiplier (<=1 → 2).
	BackoffFactor float64
	// Jitter is the ± fraction applied to each backed-off wait so a
	// fleet of clients never retransmits in lockstep (default 0.1;
	// negative → no jitter).
	Jitter float64
	// Retries is the retry budget: how many times a timed-out request
	// is retransmitted before the exchange fails with
	// ErrBoardUnreachable.
	Retries int
	// Board selects the destination board on a multi-board node.
	Board uint8
	// PollInterval is the delay between completion polls in
	// WaitResult (default 2ms — well under the control plane's
	// latency target, far above the per-request cost).
	PollInterval time.Duration
	// WaitTimeout bounds how long WaitResult polls before giving up
	// (0 = 2 minutes).
	WaitTimeout time.Duration

	// Tracer, when set, records one span tree per exchange: an
	// "exchange:<cmd>" span with an "attempt" child for the first
	// datagram and a "retry" child for every retransmission (so
	// counting retry spans reproduces the retries metric). High-level
	// operations (Status, LoadProgram, Start, …) wrap their exchanges
	// in an operation span.
	Tracer *tracing.Collector
	// TraceID is the 64-bit trace the client's spans join and the id
	// stamped on every outgoing packet (v4 header) so the server's
	// spans land in the same trace. Zero disables both.
	TraceID uint64

	seq uint16
	rng *rand.Rand
	op  tracing.Ctx // active operation span context, if any

	reg *metrics.Registry
	m   clientMetrics
}

// Dial connects to the server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	reg := metrics.NewRegistry()
	return &Client{
		conn:          conn,
		Timeout:       2 * time.Second,
		BackoffFactor: 2,
		Jitter:        0.1,
		Retries:       3,
		PollInterval:  2 * time.Millisecond,
		rng:           rand.New(rand.NewSource(time.Now().UnixNano())),
		reg:           reg,
		m:             newClientMetrics(reg),
	}, nil
}

// SetSeed re-seeds the jitter source, pinning the retransmission
// schedule (chaos tests pin it for reproducibility).
func (c *Client) SetSeed(seed int64) { c.rng = rand.New(rand.NewSource(seed)) }

// Metrics returns the client-side telemetry registry (request counts,
// retries, backoff waits, suppressed duplicates, round-trip latency).
func (c *Client) Metrics() *metrics.Registry { return c.reg }

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// traceCtx is the client's handle on the current trace (no-op when
// tracing is off).
func (c *Client) traceCtx() tracing.Ctx {
	if c.Tracer == nil || c.TraceID == 0 {
		return tracing.Ctx{}
	}
	return c.Tracer.Trace(c.TraceID)
}

// beginOp opens an operation span ("status", "load", "start", …)
// unless one is already active — nested operations (Start calling
// WaitResult calling Result) share the outermost span.
func (c *Client) beginOp(name string) tracing.SpanHandle {
	if c.op.On() {
		return tracing.SpanHandle{}
	}
	sp := c.traceCtx().Start(name)
	c.op = sp.Ctx()
	return sp
}

// endOp closes an operation span opened by beginOp.
func (c *Client) endOp(sp tracing.SpanHandle, err error) {
	if !sp.On() {
		return
	}
	c.op = tracing.Ctx{}
	status := "ok"
	if err != nil {
		status = "error"
	}
	sp.EndAttrs(tracing.A("status", status))
}

// jittered applies the ± Jitter fraction to a wait.
func (c *Client) jittered(d time.Duration) time.Duration {
	j := c.Jitter
	if j < 0 {
		return d
	}
	if j == 0 {
		j = 0.1
	}
	f := 1 + j*(2*c.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// roundTrip sends pkt and waits for a response to the same exchange,
// retransmitting with exponential backoff on timeout.
func (c *Client) roundTrip(pkt netproto.Packet) (netproto.Packet, error) {
	return c.exchange(pkt, time.Time{})
}

// exchange is roundTrip bounded by an optional overall deadline (zero
// = none): attempts stop, and per-attempt read deadlines are capped,
// at the deadline — so a caller-level budget like WaitTimeout is
// honored even when every poll in a streak times out.
//
// A CmdError response becomes an error; responses carrying a stale
// exchange seq (duplicates, reordered strays) are counted and
// discarded.
func (c *Client) exchange(pkt netproto.Packet, overall time.Time) (netproto.Packet, error) {
	pkt.Board = c.Board
	c.seq++
	pkt.Seq, pkt.HasSeq = c.seq, true
	if c.TraceID != 0 {
		pkt.TraceID, pkt.HasTrace = c.TraceID, true
	}
	want := pkt.Command | netproto.RespFlag
	raw := pkt.Marshal()
	buf := make([]byte, 64<<10)
	c.m.requests.With(netproto.CommandName(pkt.Command)).Inc()
	start := time.Now()

	// One exchange span; each datagram is an "attempt" (first) or
	// "retry" (retransmission) child. Fetching traces (CmdTraces) is
	// itself never traced, so pulling a trace does not grow it.
	var xs tracing.SpanHandle
	if pkt.Command != netproto.CmdTraces {
		xc := c.op
		if !xc.On() {
			xc = c.traceCtx()
		}
		xs = xc.Start("exchange:" + netproto.CommandName(pkt.Command))
	}
	xchild := xs.Ctx()

	wait := c.Timeout
	if wait <= 0 {
		wait = 2 * time.Second
	}
	maxWait := c.MaxTimeout
	if maxWait <= 0 {
		maxWait = 16 * wait
	}
	factor := c.BackoffFactor
	if factor <= 1 {
		factor = 2
	}

	attempts := 0
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.m.retries.Inc()
			wait = time.Duration(float64(wait) * factor)
			if wait > maxWait {
				wait = maxWait
			}
			c.m.backoffs.Inc()
			c.m.backoffDur.Observe(wait.Seconds())
		}
		if !overall.IsZero() && !time.Now().Before(overall) {
			break // caller's budget exhausted: do not start another attempt
		}
		aname := "attempt"
		if attempt > 0 {
			aname = "retry"
		}
		as := xchild.Start(aname)
		if as.On() && attempt > 0 {
			as = as.WithAttr("wait", wait.String())
		}
		if _, err := c.conn.Write(raw); err != nil {
			c.m.errors.Inc()
			as.EndAttrs(tracing.A("outcome", "send_error"))
			xs.EndAttrs(tracing.A("status", "error"))
			return netproto.Packet{}, fmt.Errorf("client: send: %w", err)
		}
		attempts++
		deadline := time.Now().Add(c.jittered(wait))
		if !overall.IsZero() && deadline.After(overall) {
			deadline = overall
		}
		for {
			if err := c.conn.SetReadDeadline(deadline); err != nil {
				c.m.errors.Inc()
				as.EndAttrs(tracing.A("outcome", "socket_error"))
				xs.EndAttrs(tracing.A("status", "error"))
				return netproto.Packet{}, err
			}
			n, err := c.conn.Read(buf)
			if err != nil {
				lastErr = err
				c.m.timeouts.Inc()
				as.EndAttrs(tracing.A("outcome", "timeout"))
				break // timeout: retransmit
			}
			resp, err := netproto.ParsePacket(buf[:n])
			if err != nil {
				continue // stray datagram
			}
			if resp.HasSeq && resp.Seq != pkt.Seq {
				// A duplicated or delayed response from an earlier
				// exchange: suppress it instead of mistaking it for
				// this one's answer.
				c.m.dupSuppressed.Inc()
				continue
			}
			if resp.Board != pkt.Board {
				// A response for another board, misdelivered by the
				// network (or a chaotic relay): never this exchange's
				// answer, even if the seq happens to collide.
				c.m.dupSuppressed.Inc()
				continue
			}
			if resp.Command == netproto.CmdError {
				er, perr := netproto.ParseErrorResp(resp.Body)
				if perr != nil {
					c.m.errors.Inc()
					as.EndAttrs(tracing.A("outcome", "bad_error_resp"))
					xs.EndAttrs(tracing.A("status", "error"))
					return netproto.Packet{}, fmt.Errorf("client: malformed error response: %w", perr)
				}
				if er.Code != pkt.Command {
					continue // stale error for an earlier request
				}
				c.m.errors.Inc()
				as.EndAttrs(tracing.A("outcome", "server_error"))
				xs.EndAttrs(tracing.A("status", "error"), tracing.A("error", er.Msg))
				return netproto.Packet{}, fmt.Errorf("client: server error: %s", er.Msg)
			}
			if resp.Command != want {
				continue // stale response from a retransmitted earlier request
			}
			body := make([]byte, len(resp.Body))
			copy(body, resp.Body)
			resp.Body = body
			c.m.rtt.ObserveSince(start)
			as.EndAttrs(tracing.A("outcome", "ok"))
			if xs.On() {
				xs.EndAttrs(tracing.A("status", "ok"),
					tracing.A("attempts", fmt.Sprintf("%d", attempts)))
			}
			return resp, nil
		}
	}
	c.m.errors.Inc()
	c.m.unreachable.Inc()
	if lastErr == nil {
		lastErr = fmt.Errorf("deadline before first attempt")
	}
	xs.EndAttrs(tracing.A("status", "unreachable"))
	return netproto.Packet{}, &UnreachableError{
		Board:    c.Board,
		Cmd:      netproto.CommandName(pkt.Command),
		Attempts: attempts,
		Elapsed:  time.Since(start),
		Last:     lastErr,
	}
}

// Status queries the controller state ("to check if LEON has started
// up").
func (c *Client) Status() (st netproto.StatusResp, err error) {
	op := c.beginOp("status")
	defer func() { c.endOp(op, err) }()
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStatus})
	if err != nil {
		return netproto.StatusResp{}, err
	}
	return netproto.ParseStatusResp(resp.Body)
}

// LoadProgram uploads an image to the given SRAM address, splitting it
// into sequence-numbered chunks and confirming each one. Loads are
// idempotent and resumable: every ack carries the server's reassembly
// progress, so when a chunk the board already holds is re-sent — a
// retransmission, or this call resuming an earlier interrupted load —
// the server re-acks without re-applying and the client skips ahead to
// the first chunk the board is missing. On failure the returned error
// is a *LoadError carrying the acknowledged-chunk count.
func (c *Client) LoadProgram(addr uint32, image []byte) (err error) {
	op := c.beginOp("load")
	defer func() { c.endOp(op, err) }()
	chunks := netproto.ChunkImage(addr, image)
	acked := 0
	resumed := false
	for i := 0; i < len(chunks); {
		ch := chunks[i]
		resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdLoadProgram, Body: ch.Marshal()})
		if err != nil {
			return &LoadError{ChunksAcked: acked, ChunksTotal: len(chunks), Err: err}
		}
		rep, err := netproto.ParseRunReport(resp.Body)
		if err != nil {
			return &LoadError{ChunksAcked: acked, ChunksTotal: len(chunks),
				Err: fmt.Errorf("client: load chunk %d/%d: %w", ch.Seq+1, ch.Total, err)}
		}
		if rep.Status != netproto.StatusOK && rep.Status != netproto.StatusPending {
			return &LoadError{ChunksAcked: acked, ChunksTotal: len(chunks),
				Err: fmt.Errorf("client: load chunk %d/%d: status %d", ch.Seq+1, ch.Total, rep.Status)}
		}
		received, next := netproto.LoadAckProgress(rep)
		if acked < received {
			acked = received
		}
		if rep.Status == netproto.StatusOK {
			return nil
		}
		// Resume from the server's advertised progress: if the board
		// already holds chunks beyond this one, skip straight to its
		// first gap instead of re-sending what it has.
		if next > i+1 && next <= len(chunks) {
			c.m.resumedChunks.Add(uint64(next - (i + 1)))
			if !resumed {
				resumed = true
				c.m.resumedLoads.Inc()
			}
			i = next
			continue
		}
		i++
	}
	return nil
}

// Start executes the loaded program (entry 0 = last load address) and
// blocks until it completes, returning the cycle-counter report. Since
// the asynchronous control plane it is a convenience composition of
// StartAsync + WaitResult: the board is started with one round trip,
// then polled for completion every PollInterval. The signature and
// observable behavior match the historical blocking call.
func (c *Client) Start(entry uint32, maxCycles uint64) (netproto.RunReport, error) {
	if err := c.StartAsync(entry, maxCycles); err != nil {
		return netproto.RunReport{}, err
	}
	return c.WaitResult()
}

// StartAsync starts the loaded program and returns as soon as the board
// acknowledges the handoff — the "started" ack of the asynchronous
// control plane. Poll Status (CurCycles advances while running) and
// collect the report with Result or WaitResult.
func (c *Client) StartAsync(entry uint32, maxCycles uint64) (err error) {
	op := c.beginOp("start")
	defer func() { c.endOp(op, err) }()
	req := netproto.StartReq{Entry: entry, MaxCycles: maxCycles}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStartLEON, Body: req.Marshal()})
	if err != nil {
		return err
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return err
	}
	if rep.Status != netproto.StatusRunning && rep.Status != netproto.StatusOK {
		return fmt.Errorf("client: start ack status %d", rep.Status)
	}
	return nil
}

// Result fetches the run report with a single round trip. While the run
// is still in flight the report has Status == StatusRunning and a live
// cycle counter; once complete it is the final report (idempotent — the
// server keeps answering with the last result).
func (c *Client) Result() (netproto.RunReport, error) {
	return c.resultWithin(time.Time{})
}

// resultWithin is Result bounded by an overall deadline.
func (c *Client) resultWithin(deadline time.Time) (rep netproto.RunReport, err error) {
	op := c.beginOp("result")
	defer func() { c.endOp(op, err) }()
	resp, err := c.exchange(netproto.Packet{Command: netproto.CmdResult}, deadline)
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// WaitResult polls Result every PollInterval until the run leaves
// StatusRunning, then returns the final report. WaitTimeout (default
// 2 minutes) bounds the whole wait, including poll streaks where every
// response is lost: the per-poll retransmission schedule is capped at
// the overall deadline, so the wait never overshoots it by a retry
// cycle.
func (c *Client) WaitResult() (netproto.RunReport, error) {
	return c.WaitResultContext(context.Background())
}

// WaitResultContext is WaitResult bounded additionally by ctx: it
// returns early with ctx.Err() when the context is canceled or its
// deadline (if sooner than WaitTimeout) passes.
func (c *Client) WaitResultContext(ctx context.Context) (rep netproto.RunReport, err error) {
	op := c.beginOp("wait_result")
	defer func() { c.endOp(op, err) }()
	interval := c.PollInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	limit := c.WaitTimeout
	if limit <= 0 {
		limit = 2 * time.Minute
	}
	deadline := time.Now().Add(limit)
	if cd, ok := ctx.Deadline(); ok && cd.Before(deadline) {
		deadline = cd
	}
	for {
		if err := ctx.Err(); err != nil {
			return netproto.RunReport{}, fmt.Errorf("client: wait canceled: %w", err)
		}
		rep, err := c.resultWithin(deadline)
		if err != nil {
			var ue *UnreachableError
			if errors.As(err, &ue) && !time.Now().Before(deadline) {
				return netproto.RunReport{}, fmt.Errorf("client: run still unconfirmed after %v: %w", limit, err)
			}
			return netproto.RunReport{}, err
		}
		if rep.Status != netproto.StatusRunning {
			return rep, nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return rep, fmt.Errorf("client: run still in flight after %v", limit)
		}
		sleep := interval
		if sleep > remain {
			sleep = remain
		}
		select {
		case <-ctx.Done():
			return netproto.RunReport{}, fmt.Errorf("client: wait canceled: %w", ctx.Err())
		case <-time.After(sleep):
		}
	}
}

// StartSync executes the program with the blocking wire command
// (CmdStartSync): one request, one response carrying the final report.
// It is the v1-compatible path for short programs; prefer
// StartAsync/WaitResult, which keeps the control channel responsive.
func (c *Client) StartSync(entry uint32, maxCycles uint64) (rep netproto.RunReport, err error) {
	op := c.beginOp("start_sync")
	defer func() { c.endOp(op, err) }()
	req := netproto.StartReq{Entry: entry, MaxCycles: maxCycles}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStartSync, Body: req.Marshal()})
	if err != nil {
		return netproto.RunReport{}, err
	}
	return netproto.ParseRunReport(resp.Body)
}

// ReadMemory reads n bytes from addr, issuing as many requests as the
// per-response cap requires.
func (c *Client) ReadMemory(addr uint32, n int) ([]byte, error) {
	const chunk = 32 << 10
	out := make([]byte, 0, n)
	for n > 0 {
		ask := n
		if ask > chunk {
			ask = chunk
		}
		req := netproto.MemReq{Addr: addr, Length: uint32(ask)}
		resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReadMemory, Body: req.Marshal()})
		if err != nil {
			return nil, err
		}
		mr, err := netproto.ParseMemResp(resp.Body)
		if err != nil {
			return nil, err
		}
		if len(mr.Data) != ask {
			return nil, fmt.Errorf("client: short read: %d of %d bytes", len(mr.Data), ask)
		}
		out = append(out, mr.Data...)
		addr += uint32(ask)
		n -= ask
	}
	return out, nil
}

// WriteMemory stores bytes at addr.
func (c *Client) WriteMemory(addr uint32, data []byte) error {
	req := netproto.MemReq{Addr: addr, Data: data}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdWriteMemory, Body: req.Marshal()})
	if err != nil {
		return err
	}
	_, err = netproto.ParseMemResp(resp.Body)
	return err
}

// Reconfigure asks the platform to swap in a different architecture
// configuration (the liquid step). spec is the platform-defined
// configuration description.
func (c *Client) Reconfigure(spec []byte) (err error) {
	op := c.beginOp("reconfigure")
	defer func() { c.endOp(op, err) }()
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdReconfigure, Body: spec})
	if err != nil {
		return err
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return err
	}
	if rep.Status != netproto.StatusOK {
		return fmt.Errorf("client: reconfigure status %d", rep.Status)
	}
	return nil
}

// GetConfig fetches the platform's active configuration description.
func (c *Client) GetConfig() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdGetConfig})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// TraceReport pulls the instrumented-trace summary of the last run
// (JSON; see core.TraceReport for the schema).
func (c *Client) TraceReport() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdTraceReport})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Traces pulls the server's exchange-trace spans over the control
// channel (CmdTraces). id selects one trace (the server removes it
// from its ring — fetch once and keep it); zero asks for all recently
// completed traces. The result is JSON: an array of tracing.TraceData
// documents, mergeable with the client's own collector output via
// tracing.ChromeJSON. The fetch exchange itself is never traced.
func (c *Client) Traces(id uint64) ([]tracing.TraceData, error) {
	req := netproto.TracesReq{TraceID: id}
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdTraces, Body: req.Marshal()})
	if err != nil {
		return nil, err
	}
	tr, err := netproto.ParseTracesResp(resp.Body)
	if err != nil {
		return nil, err
	}
	if tr.Status != netproto.StatusOK {
		return nil, fmt.Errorf("client: traces status %d", tr.Status)
	}
	var out []tracing.TraceData
	if err := json.Unmarshal(tr.JSON, &out); err != nil {
		return nil, fmt.Errorf("client: traces payload: %w", err)
	}
	return out, nil
}

// Stats pulls the server node's telemetry snapshot over the control
// channel (JSON; the same document the HTTP /statusz endpoint serves
// under "metrics"). Unmarshals into metrics.Snapshot.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.roundTrip(netproto.Packet{Command: netproto.CmdStats})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// RunProgram is the whole §2.6 flow in one call: load, start, and read
// back resultLen bytes from resultAddr (skipped when resultLen is 0).
func (c *Client) RunProgram(addr uint32, image []byte, entry uint32, resultAddr uint32, resultLen int) (netproto.RunReport, []byte, error) {
	if err := c.LoadProgram(addr, image); err != nil {
		return netproto.RunReport{}, nil, err
	}
	rep, err := c.Start(entry, 0)
	if err != nil {
		return rep, nil, err
	}
	if resultLen <= 0 {
		return rep, nil, nil
	}
	data, err := c.ReadMemory(resultAddr, resultLen)
	return rep, data, err
}
