package client

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/netproto"
)

// deafServer binds a UDP socket that never answers — the transport's
// worst case.
func deafServer(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn.LocalAddr().String()
}

// seqServer is scriptServer with the v3 echo discipline every real
// platform follows: responses carry the request's board and exchange
// seq.
func seqServer(t *testing.T, handle func(req netproto.Packet) []netproto.Packet) string {
	t.Helper()
	return scriptServer(t, func(req netproto.Packet) [][]byte {
		resps := handle(req)
		out := make([][]byte, len(resps))
		for i, r := range resps {
			r.Board, r.Seq, r.HasSeq = req.Board, req.Seq, req.HasSeq
			out[i] = r.Marshal()
		}
		return out
	})
}

func TestBackoffGrowsExponentially(t *testing.T) {
	addr := deafServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 20 * time.Millisecond
	c.Retries = 3
	c.Jitter = -1 // deterministic timing

	start := time.Now()
	_, err = c.Status()
	elapsed := time.Since(start)

	if !errors.Is(err, ErrBoardUnreachable) {
		t.Fatalf("err = %v, want ErrBoardUnreachable", err)
	}
	var ue *UnreachableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %T, want *UnreachableError", err)
	}
	if ue.Attempts != 4 {
		t.Errorf("attempts = %d, want 4 (1 + 3 retries)", ue.Attempts)
	}
	// 20 + 40 + 80 + 160 = 300ms of backed-off waiting.
	if elapsed < 280*time.Millisecond {
		t.Errorf("gave up after %v; backoff schedule should take ~300ms", elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("took %v; backoff schedule should take ~300ms", elapsed)
	}
	snap := c.Metrics().Snapshot()
	if got := snap.Counters["liquid_client_retries_total"]; got != 3 {
		t.Errorf("retries = %d, want 3", got)
	}
	if got := snap.Counters["liquid_client_backoff_total"]; got != 3 {
		t.Errorf("backoffs = %d, want 3", got)
	}
	if got := snap.Counters["liquid_client_unreachable_total"]; got != 1 {
		t.Errorf("unreachable = %d, want 1", got)
	}
}

func TestMaxTimeoutCapsBackoff(t *testing.T) {
	addr := deafServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 40 * time.Millisecond
	c.MaxTimeout = 50 * time.Millisecond
	c.Retries = 4
	c.Jitter = -1

	start := time.Now()
	_, err = c.Status()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrBoardUnreachable) {
		t.Fatalf("err = %v", err)
	}
	// Capped: 40 + 4×50 = 240ms. Uncapped it would be 1.24s.
	if elapsed < 220*time.Millisecond || elapsed > 700*time.Millisecond {
		t.Errorf("elapsed %v, want ~240ms (MaxTimeout cap)", elapsed)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	c := &Client{Jitter: 0.25}
	c.SetSeed(7)
	base := 100 * time.Millisecond
	varied := false
	for i := 0; i < 200; i++ {
		d := c.jittered(base)
		if d < 75*time.Millisecond || d > 125*time.Millisecond {
			t.Fatalf("jittered(%v) = %v outside ±25%%", base, d)
		}
		if d != base {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter never varied the wait")
	}
	// Same seed → same schedule.
	a, b := &Client{Jitter: 0.25}, &Client{Jitter: 0.25}
	a.SetSeed(11)
	b.SetSeed(11)
	for i := 0; i < 50; i++ {
		if a.jittered(base) != b.jittered(base) {
			t.Fatal("pinned seed did not pin the jitter schedule")
		}
	}
	// Negative jitter disables.
	c.Jitter = -1
	if c.jittered(base) != base {
		t.Error("Jitter<0 should disable jitter")
	}
}

func TestStaleSeqResponsesSuppressed(t *testing.T) {
	// The server answers every status request twice; the duplicate of
	// exchange N sits in the socket buffer until exchange N+1 reads —
	// and must discard — it.
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdStatus {
			return nil
		}
		resp := netproto.Packet{Command: netproto.CmdStatus | netproto.RespFlag,
			Body: netproto.StatusResp{State: 1, BootOK: true}.Marshal()}
		return []netproto.Packet{resp, resp}
	})
	c := dialFast(t, addr)
	for i := 0; i < 3; i++ {
		if _, err := c.Status(); err != nil {
			t.Fatalf("status %d: %v", i, err)
		}
	}
	snap := c.Metrics().Snapshot()
	if snap.Counters["liquid_client_dup_responses_total"] == 0 {
		t.Error("stale-seq duplicates were never suppressed")
	}
}

func TestWrongBoardResponseIgnored(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdStatus {
			return nil
		}
		misrouted := netproto.Packet{Command: netproto.CmdStatus | netproto.RespFlag,
			Board: req.Board + 1, Seq: req.Seq, HasSeq: req.HasSeq,
			Body: netproto.StatusResp{State: 9}.Marshal()}
		good := netproto.Packet{Command: netproto.CmdStatus | netproto.RespFlag,
			Board: req.Board, Seq: req.Seq, HasSeq: req.HasSeq,
			Body: netproto.StatusResp{State: 1, BootOK: true}.Marshal()}
		return [][]byte{misrouted.Marshal(), good.Marshal()}
	})
	c := dialFast(t, addr)
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.State != 1 {
		t.Errorf("state = %d: a response for another board was accepted", st.State)
	}
	if c.Metrics().Snapshot().Counters["liquid_client_dup_responses_total"] == 0 {
		t.Error("misrouted response not counted as suppressed")
	}
}

func TestWaitResultHonorsWaitTimeout(t *testing.T) {
	// Every poll times out; the overall WaitTimeout must still be
	// honored instead of each poll burning a full retry schedule.
	addr := deafServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Timeout = 100 * time.Millisecond
	c.Retries = 10 // uncapped, one poll alone would take >100s
	c.Jitter = -1
	c.WaitTimeout = 300 * time.Millisecond

	start := time.Now()
	_, err = c.WaitResult()
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "unconfirmed") {
		t.Fatalf("err = %v, want 'run still unconfirmed'", err)
	}
	if !errors.Is(err, ErrBoardUnreachable) {
		t.Errorf("unconfirmed error should unwrap to ErrBoardUnreachable: %v", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("WaitResult overshot its %v budget by %v", c.WaitTimeout, elapsed-c.WaitTimeout)
	}
	if elapsed < 280*time.Millisecond {
		t.Errorf("WaitResult gave up after %v, before its %v budget", elapsed, c.WaitTimeout)
	}
}

func TestWaitResultContextCancel(t *testing.T) {
	// A pre-v5 server: CmdWaitResult is unknown, so the client falls
	// back to polling CmdResult.
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command == netproto.CmdWaitResult {
			return []netproto.Packet{{Command: netproto.CmdError,
				Body: netproto.ErrorResp{Code: req.Command, Msg: "unknown command"}.Marshal()}}
		}
		if req.Command != netproto.CmdResult {
			return nil
		}
		return []netproto.Packet{{Command: netproto.CmdResult | netproto.RespFlag,
			Body: netproto.RunReport{Status: netproto.StatusRunning, Cycles: 5}.Marshal()}}
	})
	c := dialFast(t, addr)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.WaitResultContext(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to propagate", elapsed)
	}
}

func TestWaitResultContextDeadline(t *testing.T) {
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command == netproto.CmdWaitResult {
			return []netproto.Packet{{Command: netproto.CmdError,
				Body: netproto.ErrorResp{Code: req.Command, Msg: "unknown command"}.Marshal()}}
		}
		if req.Command != netproto.CmdResult {
			return nil
		}
		return []netproto.Packet{{Command: netproto.CmdResult | netproto.RespFlag,
			Body: netproto.RunReport{Status: netproto.StatusRunning, Cycles: 5}.Marshal()}}
	})
	c := dialFast(t, addr)
	c.WaitTimeout = time.Minute // ctx deadline is sooner and must win
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.WaitResultContext(ctx)
	if err == nil {
		t.Fatal("in-flight run reported done")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("ctx deadline took %v to be honored", elapsed)
	}
}

func TestWaitResultPollsUntilDone(t *testing.T) {
	var mu sync.Mutex
	polls := 0
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command == netproto.CmdWaitResult {
			return []netproto.Packet{{Command: netproto.CmdError,
				Body: netproto.ErrorResp{Code: req.Command, Msg: "unknown command"}.Marshal()}}
		}
		if req.Command != netproto.CmdResult {
			return nil
		}
		mu.Lock()
		polls++
		n := polls
		mu.Unlock()
		rep := netproto.RunReport{Status: netproto.StatusRunning, Cycles: uint64(n)}
		if n > 3 {
			rep = netproto.RunReport{Status: netproto.StatusOK, Cycles: 77}
		}
		return []netproto.Packet{{Command: netproto.CmdResult | netproto.RespFlag, Body: rep.Marshal()}}
	})
	c := dialFast(t, addr)
	rep, err := c.WaitResult()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK || rep.Cycles != 77 {
		t.Errorf("report = %+v", rep)
	}
	mu.Lock()
	defer mu.Unlock()
	if polls < 4 {
		t.Errorf("server saw %d polls, want >= 4", polls)
	}
	// The held wait was tried exactly once: after the server rejected
	// CmdWaitResult the client downgraded for the connection's lifetime.
	snap := c.Metrics().Snapshot()
	if got := snap.Counters["liquid_client_wait_fallback_total"]; got != 1 {
		t.Errorf("wait fallbacks = %d, want exactly 1 (downgrade is sticky)", got)
	}
	if got := snap.Counter(`liquid_client_requests_total{cmd="wait"}`); got != 1 {
		t.Errorf("requests{wait} = %d, want 1", got)
	}
}

func TestLoadErrorCarriesPartialProgress(t *testing.T) {
	// The server acks the first two chunks then goes deaf.
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdLoadProgram {
			return nil
		}
		ch, err := netproto.ParseLoadChunk(req.Body)
		if err != nil || ch.Seq >= 2 {
			return nil
		}
		ack := netproto.LoadAckReport(netproto.StatusPending, int(ch.Seq)+1, int(ch.Seq)+1)
		return []netproto.Packet{{Command: netproto.CmdLoadProgram | netproto.RespFlag, Body: ack.Marshal()}}
	})
	c := dialFast(t, addr)
	c.Timeout = 50 * time.Millisecond
	c.Retries = 1
	image := make([]byte, 3*netproto.MaxChunkData+100) // 4 chunks
	err := c.LoadProgram(0x40001000, image)
	var le *LoadError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoadError", err)
	}
	if le.ChunksAcked != 2 || le.ChunksTotal != 4 {
		t.Errorf("progress = %d/%d, want 2/4", le.ChunksAcked, le.ChunksTotal)
	}
	// Window forensics: the ack floor sits at chunk 2, and the two
	// unacked chunks (2 and 3) were in flight when the board went dark.
	if le.HighestAck != 2 {
		t.Errorf("highest ack = %d, want 2", le.HighestAck)
	}
	if le.Outstanding != 2 {
		t.Errorf("outstanding = %d, want 2 (chunks 2 and 3 in flight)", le.Outstanding)
	}
	if le.Window != DefaultWindow {
		t.Errorf("window = %d, want the default %d", le.Window, DefaultWindow)
	}
	if !errors.Is(err, ErrBoardUnreachable) {
		t.Errorf("LoadError should unwrap to ErrBoardUnreachable: %v", err)
	}
}

func TestLoadResumesFromServerProgress(t *testing.T) {
	// The server already holds chunks 1-3 of 4 (a previous interrupted
	// load): the first chunk is re-acked with the gap at 3, and the
	// client must jump straight there.
	var mu sync.Mutex
	var seen []uint16
	addr := seqServer(t, func(req netproto.Packet) []netproto.Packet {
		if req.Command != netproto.CmdLoadProgram {
			return nil
		}
		ch, err := netproto.ParseLoadChunk(req.Body)
		if err != nil {
			return nil
		}
		mu.Lock()
		seen = append(seen, ch.Seq)
		mu.Unlock()
		ack := netproto.LoadAckReport(netproto.StatusPending, 3, 3)
		if ch.Seq == 3 {
			ack = netproto.LoadAckReport(netproto.StatusOK, 4, 4)
		}
		return []netproto.Packet{{Command: netproto.CmdLoadProgram | netproto.RespFlag, Body: ack.Marshal()}}
	})
	c := dialFast(t, addr)
	image := make([]byte, 3*netproto.MaxChunkData+100) // 4 chunks
	if err := c.LoadProgram(0x40001000, image); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]uint16(nil), seen...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("server saw chunks %v, want [0 3] (1 and 2 skipped)", got)
	}
	snap := c.Metrics().Snapshot()
	if snap.Counters["liquid_client_loads_resumed_total"] != 1 {
		t.Error("resume not counted")
	}
	if got := snap.Counters["liquid_client_load_chunks_skipped_total"]; got != 2 {
		t.Errorf("skipped chunks = %d, want 2", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	addr := deafServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Timeout != 2*time.Second || c.Retries != 3 {
		t.Errorf("defaults: timeout %v retries %d", c.Timeout, c.Retries)
	}
	if c.BackoffFactor != 2 || c.Jitter != 0.1 {
		t.Errorf("defaults: factor %v jitter %v", c.BackoffFactor, c.Jitter)
	}
}
