package client

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"

	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
)

// emulatorServer serves an Emulator-backed platform over loopback.
func emulatorServer(t *testing.T) (string, *fpx.Platform) {
	t.Helper()
	em := fpx.NewEmulator()
	platform := fpx.New(em, [4]byte{10, 0, 0, 2}, 5001)
	platform.ConfigFn = func() []byte {
		blob, _ := json.Marshal(map[string]int{"dcache_bytes": 4096})
		return blob
	}
	platform.ReconfigureFn = func(spec []byte) error { return nil }
	platform.TraceFn = func() ([]byte, error) { return []byte(`{"instructions":1}`), nil }
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			for _, resp := range platform.HandlePayload(buf[:n]) {
				conn.WriteToUDP(resp.Marshal(), peer)
			}
		}
	}()
	return conn.LocalAddr().String(), platform
}

func TestFullSessionAgainstEmulator(t *testing.T) {
	addr, _ := emulatorServer(t)
	c := dialFast(t, addr)

	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.BootOK {
		t.Errorf("status = %+v", st)
	}

	image := bytes.Repeat([]byte{0xAB}, 1500)
	rep, data, err := c.RunProgram(leon.DefaultLoadAddr, image, leon.DefaultLoadAddr, leon.DefaultLoadAddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles == 0 {
		t.Error("no cycles reported")
	}
	if !bytes.Equal(data, image[:4]) {
		t.Errorf("readback = % x", data)
	}

	// WriteMemory + ReadMemory round trip.
	if err := c.WriteMemory(leon.DefaultLoadAddr+0x100, []byte{9, 8, 7, 6}); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadMemory(leon.DefaultLoadAddr+0x100, 4)
	if err != nil || !bytes.Equal(got, []byte{9, 8, 7, 6}) {
		t.Errorf("readback %v, %v", got, err)
	}

	// Reconfigure + GetConfig + TraceReport.
	if err := c.Reconfigure([]byte(`{"dcache_bytes":8192}`)); err != nil {
		t.Fatal(err)
	}
	blob, err := c.GetConfig()
	if err != nil || len(blob) == 0 {
		t.Errorf("getconfig: %s, %v", blob, err)
	}
	tr, err := c.TraceReport()
	if err != nil || len(tr) == 0 {
		t.Errorf("trace: %s, %v", tr, err)
	}

	// RunProgram with no result read.
	rep, data, err = c.RunProgram(leon.DefaultLoadAddr, image, 0, 0, 0)
	if err != nil || data != nil || rep.Cycles == 0 {
		t.Errorf("no-result run: %+v % x %v", rep, data, err)
	}
}

func TestRunProgramPropagatesLoadFailure(t *testing.T) {
	addr, _ := emulatorServer(t)
	c := dialFast(t, addr)
	// Loads over the mailbox are rejected by the emulator.
	_, _, err := c.RunProgram(leon.SRAMBase, []byte{1, 2, 3}, leon.SRAMBase, 0, 0)
	if err == nil {
		t.Error("mailbox load accepted")
	}
}
