package client

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/netproto"
)

// scriptServer answers UDP requests with a scripted handler.
func scriptServer(t *testing.T, handle func(req netproto.Packet) [][]byte) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, peer, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			pkt, err := netproto.ParsePacket(buf[:n])
			if err != nil {
				continue
			}
			for _, resp := range handle(pkt) {
				conn.WriteToUDP(resp, peer)
			}
		}
	}()
	return conn.LocalAddr().String()
}

func dialFast(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.Timeout = 150 * time.Millisecond
	c.Retries = 2
	return c
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("not a host:port:extra"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestStatusRoundTrip(t *testing.T) {
	want := netproto.StatusResp{State: 1, BootOK: true, LoadedAddr: 0x40001000}
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdStatus {
			return nil
		}
		return [][]byte{netproto.Packet{
			Command: netproto.CmdStatus | netproto.RespFlag,
			Body:    want.Marshal(),
		}.Marshal()}
	})
	c := dialFast(t, addr)
	got, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("status = %+v", got)
	}
}

// TestStaleResponsesSkipped: the client must ignore responses to other
// commands (e.g. from an earlier retransmitted request) and garbage.
func TestStaleResponsesSkipped(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdStatus {
			return nil
		}
		stale := netproto.Packet{Command: netproto.CmdStartLEON | netproto.RespFlag,
			Body: netproto.RunReport{}.Marshal()}.Marshal()
		garbage := []byte("noise")
		good := netproto.Packet{Command: netproto.CmdStatus | netproto.RespFlag,
			Body: netproto.StatusResp{State: 3, BootOK: true}.Marshal()}.Marshal()
		return [][]byte{stale, garbage, good}
	})
	c := dialFast(t, addr)
	got, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if got.State != 3 {
		t.Errorf("state = %d (stale response taken?)", got.State)
	}
}

// TestStaleErrorSkipped: a CmdError for a different command must not
// fail the current request.
func TestStaleErrorSkipped(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdStatus {
			return nil
		}
		staleErr := netproto.Packet{Command: netproto.CmdError,
			Body: netproto.ErrorResp{Code: netproto.CmdReadMemory, Msg: "old failure"}.Marshal()}.Marshal()
		good := netproto.Packet{Command: netproto.CmdStatus | netproto.RespFlag,
			Body: netproto.StatusResp{State: 1, BootOK: true}.Marshal()}.Marshal()
		return [][]byte{staleErr, good}
	})
	c := dialFast(t, addr)
	if _, err := c.Status(); err != nil {
		t.Errorf("stale error failed the request: %v", err)
	}
}

func TestMatchingErrorSurfaces(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		return [][]byte{netproto.Packet{Command: netproto.CmdError,
			Body: netproto.ErrorResp{Code: req.Command, Msg: "nope"}.Marshal()}.Marshal()}
	})
	c := dialFast(t, addr)
	_, err := c.Status()
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v", err)
	}
}

func TestLoadProgramChunksAndStatuses(t *testing.T) {
	// got is written by the scripted-server goroutine and read by the
	// test goroutine; the UDP round trip is not a synchronization
	// point, so guard it.
	var mu sync.Mutex
	var got []netproto.LoadChunk
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdLoadProgram {
			return nil
		}
		ch, err := netproto.ParseLoadChunk(req.Body)
		if err != nil {
			return nil
		}
		mu.Lock()
		// Deduplicate retransmissions by sequence number.
		dup := false
		for _, g := range got {
			if g.Seq == ch.Seq {
				dup = true
			}
		}
		if !dup {
			ch.Data = append([]byte(nil), ch.Data...)
			got = append(got, ch)
		}
		mu.Unlock()
		st := netproto.StatusPending
		if int(ch.Seq) == int(ch.Total)-1 {
			st = netproto.StatusOK
		}
		return [][]byte{netproto.Packet{Command: netproto.CmdLoadProgram | netproto.RespFlag,
			Body: netproto.RunReport{Status: st}.Marshal()}.Marshal()}
	})
	c := dialFast(t, addr)
	image := make([]byte, 2*netproto.MaxChunkData+7)
	for i := range image {
		image[i] = byte(i)
	}
	if err := c.LoadProgram(0x40001000, image); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("server saw %d chunks", len(got))
	}
	total := 0
	for _, ch := range got {
		total += len(ch.Data)
	}
	if total != len(image) {
		t.Errorf("chunks carry %d bytes, want %d", total, len(image))
	}
}

func TestLoadProgramRejectedStatus(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		return [][]byte{netproto.Packet{Command: netproto.CmdLoadProgram | netproto.RespFlag,
			Body: netproto.RunReport{Status: netproto.StatusFault}.Marshal()}.Marshal()}
	})
	c := dialFast(t, addr)
	if err := c.LoadProgram(0x40001000, []byte{1}); err == nil {
		t.Error("fault status accepted")
	}
}

func TestReadMemoryShortReadDetected(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		return [][]byte{netproto.Packet{Command: netproto.CmdReadMemory | netproto.RespFlag,
			Body: netproto.MemResp{Status: netproto.StatusOK, Addr: 0, Data: []byte{1, 2}}.Marshal()}.Marshal()}
	})
	c := dialFast(t, addr)
	if _, err := c.ReadMemory(0, 8); err == nil || !strings.Contains(err.Error(), "short read") {
		t.Errorf("err = %v", err)
	}
}

func TestReconfigureStatusChecked(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		return [][]byte{netproto.Packet{Command: netproto.CmdReconfigure | netproto.RespFlag,
			Body: netproto.RunReport{Status: netproto.StatusError}.Marshal()}.Marshal()}
	})
	c := dialFast(t, addr)
	if err := c.Reconfigure([]byte("{}")); err == nil {
		t.Error("error status accepted")
	}
}

func TestTraceReport(t *testing.T) {
	addr := scriptServer(t, func(req netproto.Packet) [][]byte {
		if req.Command != netproto.CmdTraceReport {
			return nil
		}
		return [][]byte{netproto.Packet{Command: netproto.CmdTraceReport | netproto.RespFlag,
			Body: []byte(`{"instructions":7}`)}.Marshal()}
	})
	c := dialFast(t, addr)
	blob, err := c.TraceReport()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"instructions":7}` {
		t.Errorf("blob = %s", blob)
	}
}
