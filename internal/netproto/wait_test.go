package netproto

import "testing"

func TestWaitResultReqRoundTrip(t *testing.T) {
	req := WaitResultReq{HoldMs: 1500}
	got, err := ParseWaitResultReq(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Errorf("round trip = %+v, want %+v", got, req)
	}

	// An empty body is the degenerate hold: a plain result poll.
	got, err = ParseWaitResultReq(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.HoldMs != 0 {
		t.Errorf("empty body HoldMs = %d, want 0", got.HoldMs)
	}

	// A truncated body is a framing error, not a zero hold.
	if _, err := ParseWaitResultReq([]byte{1, 2}); err == nil {
		t.Error("truncated WaitResultReq accepted")
	}
}

func TestWaitCommandName(t *testing.T) {
	if got := CommandName(CmdWaitResult); got != "wait" {
		t.Errorf("CommandName(CmdWaitResult) = %q, want \"wait\"", got)
	}
}
