package netproto

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	srcIP = [4]byte{192, 168, 1, 10}
	dstIP = [4]byte{192, 168, 1, 20}
)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello liquid")
	frame := BuildFrame(srcIP, dstIP, 4000, 5000, payload)
	f, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.IP.Src != srcIP || f.IP.Dst != dstIP {
		t.Errorf("addresses: %v → %v", f.IP.Src, f.IP.Dst)
	}
	if f.UDP.SrcPort != 4000 || f.UDP.DstPort != 5000 {
		t.Errorf("ports: %d → %d", f.UDP.SrcPort, f.UDP.DstPort)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Errorf("payload = %q", f.Payload)
	}
}

func TestFrameChecksumValidation(t *testing.T) {
	frame := BuildFrame(srcIP, dstIP, 1, 2, []byte("x"))
	// Corrupt the IP header.
	bad := append([]byte(nil), frame...)
	bad[8] ^= 0xFF // TTL
	if _, err := ParseFrame(bad); err == nil {
		t.Error("corrupted IP header accepted")
	}
	// Corrupt the UDP payload (checksum covers it).
	bad = append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0x01
	if _, err := ParseFrame(bad); err == nil {
		t.Error("corrupted UDP payload accepted")
	}
	// Zero UDP checksum disables validation (allowed by RFC 768).
	nochk := append([]byte(nil), frame...)
	nochk[26], nochk[27] = 0, 0
	nochk[len(nochk)-1] ^= 0x01
	if _, err := ParseFrame(nochk); err != nil {
		t.Errorf("zero-checksum frame rejected: %v", err)
	}
}

func TestParseFrameErrors(t *testing.T) {
	if _, err := ParseFrame(nil); err == nil {
		t.Error("empty frame accepted")
	}
	if _, err := ParseFrame(make([]byte, 10)); err == nil {
		t.Error("short frame accepted")
	}
	// Non-UDP protocol.
	h := IPv4Header{TotalLen: 20, TTL: 1, Protocol: 6, Src: srcIP, Dst: dstIP}
	if _, err := ParseFrame(h.Marshal()); err == nil {
		t.Error("TCP frame accepted by UDP parser")
	}
	// Wrong version.
	frame := BuildFrame(srcIP, dstIP, 1, 2, nil)
	frame[0] = 0x65
	if _, err := ParseFrame(frame); err == nil {
		t.Error("IPv6 version accepted")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd length.
	if got := Checksum([]byte{0x12}); got != ^uint16(0x1200) {
		t.Errorf("odd checksum = %#04x", got)
	}
}

// Property: any payload survives a frame round trip.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sp, dp uint16) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame := BuildFrame(srcIP, dstIP, sp, dp, payload)
		got, err := ParseFrame(frame)
		return err == nil && bytes.Equal(got.Payload, payload) &&
			got.UDP.SrcPort == sp && got.UDP.DstPort == dp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestControlPacketRoundTrip(t *testing.T) {
	p := Packet{Command: CmdStatus, Body: []byte{1, 2, 3}}
	got, err := ParsePacket(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != CmdStatus || !bytes.Equal(got.Body, []byte{1, 2, 3}) {
		t.Errorf("packet = %+v", got)
	}
	if !IsLiquidPacket(p.Marshal()) {
		t.Error("IsLiquidPacket false for control packet")
	}
	if IsLiquidPacket([]byte("GET / HTTP/1.0")) {
		t.Error("IsLiquidPacket true for HTTP")
	}
	if _, err := ParsePacket([]byte{'L', 'Q'}); err == nil {
		t.Error("short packet accepted")
	}
	if _, err := ParsePacket([]byte{'X', 'Y', 1, 1}); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ParsePacket([]byte{'L', 'Q', 99, 1}); err == nil {
		t.Error("bad version accepted")
	}
}

func TestControlPacketBoardHeader(t *testing.T) {
	// Board 0 marshals as the byte-identical v1 header.
	p0 := Packet{Command: CmdStatus, Body: []byte{1}}
	raw0 := p0.Marshal()
	if raw0[2] != Version || len(raw0) != headerLen+1 {
		t.Errorf("board-0 packet not v1: % x", raw0)
	}
	// Non-zero boards use the v2 header and round-trip the board byte.
	p2 := Packet{Command: CmdStartLEON, Board: 3, Body: []byte{4, 5}}
	raw2 := p2.Marshal()
	if raw2[2] != VersionBoard {
		t.Errorf("board-3 packet version = %d", raw2[2])
	}
	got, err := ParsePacket(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != CmdStartLEON || got.Board != 3 || !bytes.Equal(got.Body, []byte{4, 5}) {
		t.Errorf("v2 packet = %+v", got)
	}
	if !IsLiquidPacket(raw2) {
		t.Error("IsLiquidPacket false for v2 packet")
	}
	// A v2 header without the board byte is truncated.
	if _, err := ParsePacket([]byte{'L', 'Q', VersionBoard, 1}); err == nil {
		t.Error("truncated v2 packet accepted")
	}
}

func TestControlPacketTraceHeader(t *testing.T) {
	// A trace id forces the v4 header: board + seq + 64-bit trace id.
	p := Packet{Command: CmdStartLEON, Board: 2, Seq: 0x1234, HasSeq: true,
		TraceID: 0xDEADBEEFCAFEF00D, HasTrace: true, Body: []byte{7, 8}}
	raw := p.Marshal()
	if raw[2] != VersionTrace || len(raw) != headerLen+11+2 {
		t.Fatalf("v4 packet shape: % x", raw)
	}
	got, err := ParsePacket(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != CmdStartLEON || got.Board != 2 || !got.HasSeq || got.Seq != 0x1234 ||
		!got.HasTrace || got.TraceID != 0xDEADBEEFCAFEF00D || !bytes.Equal(got.Body, []byte{7, 8}) {
		t.Fatalf("v4 packet = %+v", got)
	}
	if !IsLiquidPacket(raw) {
		t.Error("IsLiquidPacket false for v4 packet")
	}
	// Without a trace id the wire shape is unchanged from before v4:
	// HasSeq alone still yields the v3 header, board alone v2, plain v1.
	if raw := (Packet{Command: CmdStatus, Seq: 9, HasSeq: true}).Marshal(); raw[2] != VersionSeq {
		t.Errorf("HasSeq-only packet version = %d, want v3", raw[2])
	}
	if raw := (Packet{Command: CmdStatus, Board: 1}).Marshal(); raw[2] != VersionBoard {
		t.Errorf("board-only packet version = %d, want v2", raw[2])
	}
	if raw := (Packet{Command: CmdStatus}).Marshal(); raw[2] != Version {
		t.Errorf("plain packet version = %d, want v1", raw[2])
	}
	// A v4 header shorter than 15 bytes is truncated.
	if _, err := ParsePacket([]byte{'L', 'Q', VersionTrace, 1, 0, 0, 1, 0, 0, 0, 0}); err == nil {
		t.Error("truncated v4 packet accepted")
	}
}

func TestTracesBodyRoundTrip(t *testing.T) {
	// Empty request = all traces.
	req, err := ParseTracesReq(nil)
	if err != nil || req.TraceID != 0 {
		t.Fatalf("empty traces req = %+v, %v", req, err)
	}
	req2, err := ParseTracesReq(TracesReq{TraceID: 0xABCD}.Marshal())
	if err != nil || req2.TraceID != 0xABCD {
		t.Fatalf("traces req = %+v, %v", req2, err)
	}
	if _, err := ParseTracesReq([]byte{1, 2, 3}); err == nil {
		t.Error("short traces req accepted")
	}
	resp := TracesResp{Status: StatusOK, JSON: []byte(`[{"id":1}]`)}
	got, err := ParseTracesResp(resp.Marshal())
	if err != nil || got.Status != StatusOK || !bytes.Equal(got.JSON, resp.JSON) {
		t.Fatalf("traces resp = %+v, %v", got, err)
	}
	if _, err := ParseTracesResp(nil); err == nil {
		t.Error("empty traces resp accepted")
	}
}

func TestLoadChunkRoundTrip(t *testing.T) {
	c := LoadChunk{Seq: 2, Total: 5, Addr: 0x40001000, TotalLen: 5000, Offset: 2048, Data: []byte{9, 8, 7}}
	got, err := ParseLoadChunk(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 2 || got.Total != 5 || got.Addr != 0x40001000 ||
		got.TotalLen != 5000 || got.Offset != 2048 || !bytes.Equal(got.Data, c.Data) {
		t.Errorf("chunk = %+v", got)
	}
}

func TestLoadChunkValidation(t *testing.T) {
	if _, err := ParseLoadChunk(make([]byte, 4)); err == nil {
		t.Error("short chunk accepted")
	}
	bad := LoadChunk{Seq: 5, Total: 5, Addr: 1, TotalLen: 10}
	if _, err := ParseLoadChunk(bad.Marshal()); err == nil {
		t.Error("seq ≥ total accepted")
	}
	bad = LoadChunk{Seq: 0, Total: 0, Addr: 1, TotalLen: 10}
	if _, err := ParseLoadChunk(bad.Marshal()); err == nil {
		t.Error("zero total accepted")
	}
	bad = LoadChunk{Seq: 0, Total: 1, TotalLen: 2, Offset: 0, Data: []byte{1, 2, 3}}
	if _, err := ParseLoadChunk(bad.Marshal()); err == nil {
		t.Error("overlong chunk accepted")
	}
}

func TestChunkImageCoversImage(t *testing.T) {
	image := make([]byte, 2*MaxChunkData+100)
	for i := range image {
		image[i] = byte(i)
	}
	chunks := ChunkImage(0x40001000, image)
	if len(chunks) != 3 {
		t.Fatalf("%d chunks", len(chunks))
	}
	rebuilt := make([]byte, len(image))
	for _, c := range chunks {
		if c.Addr != 0x40001000 || int(c.TotalLen) != len(image) || int(c.Total) != len(chunks) {
			t.Errorf("chunk metadata %+v", c)
		}
		copy(rebuilt[c.Offset:], c.Data)
	}
	if !bytes.Equal(rebuilt, image) {
		t.Error("chunks do not reassemble the image")
	}
	// Empty image still yields one (empty) chunk.
	if got := ChunkImage(1, nil); len(got) != 1 {
		t.Errorf("empty image → %d chunks", len(got))
	}
}

func TestMessageRoundTrips(t *testing.T) {
	sr := StartReq{Entry: 0x40001000, MaxCycles: 1 << 40}
	if got, err := ParseStartReq(sr.Marshal()); err != nil || got != sr {
		t.Errorf("StartReq: %+v, %v", got, err)
	}
	rr := RunReport{Status: StatusFault, Cycles: 123456789, Instructions: 42, TT: 2, FaultPC: 0x40001010}
	if got, err := ParseRunReport(rr.Marshal()); err != nil || got != rr {
		t.Errorf("RunReport: %+v, %v", got, err)
	}
	mq := MemReq{Addr: 0x40002000, Length: 16}
	if got, err := ParseMemReq(mq.Marshal()); err != nil || got.Addr != mq.Addr || got.Length != 16 {
		t.Errorf("MemReq: %+v, %v", got, err)
	}
	mr := MemResp{Status: StatusOK, Addr: 4, Data: []byte{1, 2}}
	if got, err := ParseMemResp(mr.Marshal()); err != nil || got.Addr != 4 || !bytes.Equal(got.Data, mr.Data) {
		t.Errorf("MemResp: %+v, %v", got, err)
	}
	st := StatusResp{State: 3, BootOK: true, LoadedAddr: 0x40001000, CurCycles: 123456789, Last: rr}
	if got, err := ParseStatusResp(st.Marshal()); err != nil || got != st {
		t.Errorf("StatusResp: %+v, %v", got, err)
	}
	er := ErrorResp{Code: 7, Msg: "bad address"}
	if got, err := ParseErrorResp(er.Marshal()); err != nil || got != er {
		t.Errorf("ErrorResp: %+v, %v", got, err)
	}
}

func TestTruncatedMessages(t *testing.T) {
	if _, err := ParseStartReq(make([]byte, 3)); err == nil {
		t.Error("short StartReq accepted")
	}
	if _, err := ParseRunReport(make([]byte, 5)); err == nil {
		t.Error("short RunReport accepted")
	}
	if _, err := ParseMemReq(make([]byte, 2)); err == nil {
		t.Error("short MemReq accepted")
	}
	if _, err := ParseMemResp(nil); err == nil {
		t.Error("short MemResp accepted")
	}
	if _, err := ParseStatusResp(make([]byte, 10)); err == nil {
		t.Error("short StatusResp accepted")
	}
	if _, err := ParseErrorResp(nil); err == nil {
		t.Error("short ErrorResp accepted")
	}
}
