package netproto

import (
	"math/rand"
	"testing"
)

// TestParsersNeverPanic: frame and packet parsers must reject garbage
// gracefully at every length.
func TestParsersNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		raw := make([]byte, rng.Intn(100))
		rng.Read(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on % x: %v", raw, r)
				}
			}()
			ParseFrame(raw)      //nolint:errcheck
			ParsePacket(raw)     //nolint:errcheck
			ParseLoadChunk(raw)  //nolint:errcheck
			ParseStartReq(raw)   //nolint:errcheck
			ParseRunReport(raw)  //nolint:errcheck
			ParseMemReq(raw)     //nolint:errcheck
			ParseMemResp(raw)    //nolint:errcheck
			ParseStatusResp(raw) //nolint:errcheck
			ParseErrorResp(raw)  //nolint:errcheck
			IsLiquidPacket(raw)
		}()
	}
	// Truncations of a VALID frame must also be handled.
	frame := BuildFrame([4]byte{1, 2, 3, 4}, [4]byte{5, 6, 7, 8}, 9, 10, []byte("payload"))
	for n := 0; n <= len(frame); n++ {
		ParseFrame(frame[:n]) //nolint:errcheck
	}
}
