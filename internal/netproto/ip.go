// Package netproto implements the wire formats of the Liquid
// Architecture control path: bit-exact IPv4 and UDP headers (parsed on
// the FPX by the layered protocol wrappers of [7]) and the LEON control
// packet format of §2.6 — command codes for LEON status, Load program,
// Start LEON and Read memory, with sequence numbers so multi-packet
// program loads survive UDP reordering.
package netproto

import (
	"encoding/binary"
	"fmt"
)

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// IPv4Header is the subset of the IPv4 header the wrappers handle (no
// options, no fragmentation).
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      [4]byte
	Dst      [4]byte
}

// IPv4HeaderLen is the fixed header length (IHL=5).
const IPv4HeaderLen = 20

// UDPHeaderLen is the UDP header length.
const UDPHeaderLen = 8

// Checksum computes the RFC 1071 ones-complement sum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Marshal encodes the header with a freshly computed checksum.
func (h *IPv4Header) Marshal() []byte {
	b := make([]byte, IPv4HeaderLen)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	// flags/fragment offset zero
	b[8] = h.TTL
	b[9] = h.Protocol
	copy(b[12:], h.Src[:])
	copy(b[16:], h.Dst[:])
	cs := Checksum(b)
	binary.BigEndian.PutUint16(b[10:], cs)
	h.Checksum = cs
	return b
}

// ParseIPv4 decodes and validates an IPv4 header at the front of b.
func ParseIPv4(b []byte) (IPv4Header, error) {
	var h IPv4Header
	if len(b) < IPv4HeaderLen {
		return h, fmt.Errorf("netproto: IPv4 header truncated (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return h, fmt.Errorf("netproto: not IPv4 (version %d)", b[0]>>4)
	}
	ihl := int(b[0]&0xF) * 4
	if ihl != IPv4HeaderLen {
		return h, fmt.Errorf("netproto: IPv4 options unsupported (IHL %d)", ihl)
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return h, fmt.Errorf("netproto: bad IPv4 header checksum")
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	if int(h.TotalLen) > len(b) {
		return h, fmt.Errorf("netproto: IPv4 total length %d exceeds frame %d", h.TotalLen, len(b))
	}
	return h, nil
}

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

// udpChecksum computes the UDP checksum with the IPv4 pseudo-header.
func udpChecksum(src, dst [4]byte, seg []byte) uint16 {
	pseudo := make([]byte, 12+len(seg))
	copy(pseudo, src[:])
	copy(pseudo[4:], dst[:])
	pseudo[9] = ProtoUDP
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(seg)))
	copy(pseudo[12:], seg)
	cs := Checksum(pseudo)
	if cs == 0 {
		cs = 0xFFFF
	}
	return cs
}

// Frame is a parsed UDP/IPv4 frame.
type Frame struct {
	IP      IPv4Header
	UDP     UDPHeader
	Payload []byte
}

// BuildFrame assembles a complete IPv4/UDP frame, computing both
// checksums (the packet generator of Fig. 3 does this in hardware).
func BuildFrame(src, dst [4]byte, srcPort, dstPort uint16, payload []byte) []byte {
	udpLen := UDPHeaderLen + len(payload)
	ip := IPv4Header{
		TotalLen: uint16(IPv4HeaderLen + udpLen),
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      src,
		Dst:      dst,
	}
	seg := make([]byte, udpLen)
	binary.BigEndian.PutUint16(seg[0:], srcPort)
	binary.BigEndian.PutUint16(seg[2:], dstPort)
	binary.BigEndian.PutUint16(seg[4:], uint16(udpLen))
	copy(seg[8:], payload)
	binary.BigEndian.PutUint16(seg[6:], udpChecksum(src, dst, seg))
	return append(ip.Marshal(), seg...)
}

// ParseFrame decodes and validates an IPv4/UDP frame (the receive side
// of the layered protocol wrappers).
func ParseFrame(b []byte) (Frame, error) {
	var f Frame
	ip, err := ParseIPv4(b)
	if err != nil {
		return f, err
	}
	if ip.Protocol != ProtoUDP {
		return f, fmt.Errorf("netproto: protocol %d is not UDP", ip.Protocol)
	}
	seg := b[IPv4HeaderLen:ip.TotalLen]
	if len(seg) < UDPHeaderLen {
		return f, fmt.Errorf("netproto: UDP header truncated")
	}
	f.IP = ip
	f.UDP.SrcPort = binary.BigEndian.Uint16(seg[0:])
	f.UDP.DstPort = binary.BigEndian.Uint16(seg[2:])
	f.UDP.Length = binary.BigEndian.Uint16(seg[4:])
	f.UDP.Checksum = binary.BigEndian.Uint16(seg[6:])
	if int(f.UDP.Length) != len(seg) {
		return f, fmt.Errorf("netproto: UDP length %d does not match segment %d", f.UDP.Length, len(seg))
	}
	if f.UDP.Checksum != 0 {
		// Verify: checksum over pseudo-header with checksum field
		// included must fold to zero (or equal the stored value when
		// recomputed with the field zeroed).
		chk := make([]byte, len(seg))
		copy(chk, seg)
		chk[6], chk[7] = 0, 0
		want := udpChecksum(ip.Src, ip.Dst, chk)
		if want != f.UDP.Checksum {
			return f, fmt.Errorf("netproto: bad UDP checksum %#04x, want %#04x", f.UDP.Checksum, want)
		}
	}
	f.Payload = seg[UDPHeaderLen:]
	return f, nil
}
