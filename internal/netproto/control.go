package netproto

import (
	"encoding/binary"
	"fmt"
)

// Command codes (§2.6). The paper defines status/load/start/read; the
// liquid extensions add write-memory and reconfigure.
const (
	CmdStatus      uint8 = 0x01 // "to check if LEON has started up"
	CmdLoadProgram uint8 = 0x02 // "to load a program into LEON"
	CmdStartLEON   uint8 = 0x03 // "to instruct LEON to execute the program"
	CmdReadMemory  uint8 = 0x04 // "to read the result"
	CmdWriteMemory uint8 = 0x05
	CmdReconfigure uint8 = 0x06 // swap in a pre-generated architecture image
	CmdGetConfig   uint8 = 0x07 // report the active configuration
	CmdTraceReport uint8 = 0x08 // pull the last run's instrumented trace summary
	CmdStats       uint8 = 0x09 // pull the platform's telemetry snapshot (JSON)
	CmdResult      uint8 = 0x0A // collect the completed run's result (blocking runs report live state)
	CmdStartSync   uint8 = 0x0B // compatibility path: start AND run to completion in one round trip
	CmdTraces      uint8 = 0x0C // pull the server-side exchange-trace spans (JSON); 8-byte body selects one trace id
	CmdWaitResult  uint8 = 0x0D // long-poll result: the server holds the exchange (bounded) and answers the instant the run completes

	// Command-set revision 6: the non-blocking reconfigure protocol.
	// CmdReconfigure now acks immediately with a ticket state packed in
	// the RunReport spare fields (see ReconfigAckReport); these two
	// commands observe the in-flight synthesis.
	CmdReconfigStatus uint8 = 0x0E // poll the board's reconfiguration ticket (ReconfigStatusResp)
	CmdWaitReconfig   uint8 = 0x0F // long-poll reconfigure: the server holds the exchange (bounded) and answers when the swap lands

	// RespFlag marks a response to the command in the low bits.
	RespFlag uint8 = 0x80

	// CmdError is the response command for failures; the body is an
	// ErrorResp whose Code holds the original command.
	CmdError uint8 = 0xFF
)

// CommandName returns the short label used for per-command telemetry
// (the response flag, if set, is ignored).
func CommandName(cmd uint8) string {
	switch cmd &^ RespFlag {
	case CmdStatus:
		return "status"
	case CmdLoadProgram:
		return "load"
	case CmdStartLEON:
		return "start"
	case CmdReadMemory:
		return "readmem"
	case CmdWriteMemory:
		return "writemem"
	case CmdReconfigure:
		return "reconfigure"
	case CmdGetConfig:
		return "getconfig"
	case CmdTraceReport:
		return "trace"
	case CmdStats:
		return "stats"
	case CmdResult:
		return "result"
	case CmdStartSync:
		return "startsync"
	case CmdTraces:
		return "traces"
	case CmdWaitResult:
		return "wait"
	case CmdReconfigStatus:
		return "reconfigstatus"
	case CmdWaitReconfig:
		return "waitreconfig"
	default:
		if cmd == CmdError {
			return "error"
		}
		return "unknown"
	}
}

// Response status codes.
const (
	StatusOK      uint8 = 0
	StatusError   uint8 = 1
	StatusFault   uint8 = 2 // program ended via a trap
	StatusPending uint8 = 3 // more load chunks expected
	StatusRunning uint8 = 4 // run in flight (async start acked / result not yet final)
)

// Magic and version identify Liquid control packets so the CPP can
// route them (other traffic passes through the wrappers untouched).
var Magic = [2]byte{'L', 'Q'}

// Version is the original (single-board) control protocol version:
// magic(2) + version(1) + command(1).
const Version uint8 = 1

// VersionBoard is the multi-board header revision: magic(2) +
// version(1) + command(1) + board(1). Packets addressed to board 0
// keep the v1 shape so every pre-existing client and capture stays
// byte-identical; the extra board byte appears only when a node hosts
// more than one platform.
const VersionBoard uint8 = 2

// VersionSeq is the exchange-sequenced header revision: magic(2) +
// version(1) + command(1) + board(1) + seq(2). The 16-bit sequence
// number identifies one request/response exchange: the client stamps
// each NEW request with a fresh seq (retransmissions of the same
// request reuse it), and the platform echoes the seq in every response
// it generates for that request. This is what makes the control plane
// safe on a duplicating, reordering transport — the client discards
// responses whose seq is not the one in flight, and the server's
// dedup window re-acks retransmitted requests from cache instead of
// re-applying them. v1/v2 peers keep working: packets without a seq
// simply bypass both mechanisms.
const VersionSeq uint8 = 3

// VersionTrace is the trace-context header revision: magic(2) +
// version(1) + command(1) + board(1) + seq(2) + traceid(8). The 64-bit
// trace id names the end-to-end exchange trace the packet belongs to:
// the client mints one per logical operation and stamps every request;
// the platform echoes it in responses and attributes its own spans
// (queue wait, run slices, reconfiguration) to the same trace. A v4
// packet always carries a seq (HasTrace implies HasSeq on the wire) —
// tracing builds on the v3 exchange identity. Clients that send no
// trace id (v1–v3) keep working: the server assigns one internally
// when tracing is enabled, and responds with the version the request
// used.
const VersionTrace uint8 = 4

// headerLen is the v1 header: magic(2) + version(1) + command(1).
const headerLen = 4

// Packet is one control packet: a command code, the destination board
// on a multi-board node (0 for the classic single-board case), an
// optional exchange sequence number, and the body.
type Packet struct {
	Command uint8
	Board   uint8
	// Seq is the exchange sequence number carried by the v3 header;
	// valid only when HasSeq is set. Responses echo the request's seq.
	Seq    uint16
	HasSeq bool
	// TraceID is the 64-bit exchange-trace id carried by the v4
	// header; valid only when HasTrace is set. Responses echo the
	// request's trace id. HasTrace forces the v4 wire shape, which
	// always carries the seq as well.
	TraceID  uint64
	HasTrace bool
	Body     []byte
}

// Marshal produces the UDP payload for the packet. A packet carrying
// a trace id marshals as the v4 header, one carrying only a sequence
// number as v3; otherwise board 0 marshals as the wire-compatible v1
// header and other boards use the v2 header carrying the board byte.
func (p Packet) Marshal() []byte {
	if p.HasTrace {
		out := make([]byte, headerLen+11+len(p.Body))
		out[0], out[1] = Magic[0], Magic[1]
		out[2] = VersionTrace
		out[3] = p.Command
		out[4] = p.Board
		binary.BigEndian.PutUint16(out[5:], p.Seq)
		binary.BigEndian.PutUint64(out[7:], p.TraceID)
		copy(out[headerLen+11:], p.Body)
		return out
	}
	if p.HasSeq {
		out := make([]byte, headerLen+3+len(p.Body))
		out[0], out[1] = Magic[0], Magic[1]
		out[2] = VersionSeq
		out[3] = p.Command
		out[4] = p.Board
		binary.BigEndian.PutUint16(out[5:], p.Seq)
		copy(out[headerLen+3:], p.Body)
		return out
	}
	if p.Board == 0 {
		out := make([]byte, headerLen+len(p.Body))
		out[0], out[1] = Magic[0], Magic[1]
		out[2] = Version
		out[3] = p.Command
		copy(out[headerLen:], p.Body)
		return out
	}
	out := make([]byte, headerLen+1+len(p.Body))
	out[0], out[1] = Magic[0], Magic[1]
	out[2] = VersionBoard
	out[3] = p.Command
	out[4] = p.Board
	copy(out[headerLen+1:], p.Body)
	return out
}

// ParsePacket validates the header and returns the command, board,
// sequence number, trace id and body. The v1 (implicit board 0), v2
// (board byte), v3 (board + exchange seq) and v4 (board + seq + trace
// id) headers are all accepted.
func ParsePacket(b []byte) (Packet, error) {
	if len(b) < headerLen {
		return Packet{}, fmt.Errorf("netproto: control packet truncated (%d bytes)", len(b))
	}
	if b[0] != Magic[0] || b[1] != Magic[1] {
		return Packet{}, fmt.Errorf("netproto: bad magic %#02x%02x", b[0], b[1])
	}
	switch b[2] {
	case Version:
		return Packet{Command: b[3], Body: b[headerLen:]}, nil
	case VersionBoard:
		if len(b) < headerLen+1 {
			return Packet{}, fmt.Errorf("netproto: v2 control packet truncated (%d bytes)", len(b))
		}
		return Packet{Command: b[3], Board: b[4], Body: b[headerLen+1:]}, nil
	case VersionSeq:
		if len(b) < headerLen+3 {
			return Packet{}, fmt.Errorf("netproto: v3 control packet truncated (%d bytes)", len(b))
		}
		return Packet{
			Command: b[3],
			Board:   b[4],
			Seq:     binary.BigEndian.Uint16(b[5:]),
			HasSeq:  true,
			Body:    b[headerLen+3:],
		}, nil
	case VersionTrace:
		if len(b) < headerLen+11 {
			return Packet{}, fmt.Errorf("netproto: v4 control packet truncated (%d bytes)", len(b))
		}
		return Packet{
			Command:  b[3],
			Board:    b[4],
			Seq:      binary.BigEndian.Uint16(b[5:]),
			HasSeq:   true,
			TraceID:  binary.BigEndian.Uint64(b[7:]),
			HasTrace: true,
			Body:     b[headerLen+11:],
		}, nil
	default:
		return Packet{}, fmt.Errorf("netproto: unsupported version %d", b[2])
	}
}

// IsLiquidPacket reports whether a UDP payload carries the control
// magic — the test the Control Packet Processor uses to route traffic
// to the LEON controller versus passing it through.
func IsLiquidPacket(b []byte) bool {
	return len(b) >= headerLen && b[0] == Magic[0] && b[1] == Magic[1]
}

// LoadChunk is one piece of a (possibly multi-packet) program load.
// The paper's payload carries a packet sequence number, the memory
// address where the program is loaded, and the data; UDP does not
// guarantee order, so the receiver reassembles by sequence number.
type LoadChunk struct {
	Seq      uint16 // 0-based chunk index
	Total    uint16 // number of chunks in this load
	Addr     uint32 // load address of the WHOLE image
	TotalLen uint32 // total image length in bytes
	Offset   uint32 // byte offset of this chunk within the image
	Data     []byte
}

// loadChunkHeaderLen is the fixed part of a LoadChunk body.
const loadChunkHeaderLen = 2 + 2 + 4 + 4 + 4

// MaxChunkData is the largest chunk payload; frames stay under typical
// MTUs.
const MaxChunkData = 1024

// Marshal encodes the chunk body.
func (c LoadChunk) Marshal() []byte {
	b := make([]byte, loadChunkHeaderLen+len(c.Data))
	binary.BigEndian.PutUint16(b[0:], c.Seq)
	binary.BigEndian.PutUint16(b[2:], c.Total)
	binary.BigEndian.PutUint32(b[4:], c.Addr)
	binary.BigEndian.PutUint32(b[8:], c.TotalLen)
	binary.BigEndian.PutUint32(b[12:], c.Offset)
	copy(b[loadChunkHeaderLen:], c.Data)
	return b
}

// ParseLoadChunk decodes a chunk body.
func ParseLoadChunk(b []byte) (LoadChunk, error) {
	var c LoadChunk
	if len(b) < loadChunkHeaderLen {
		return c, fmt.Errorf("netproto: load chunk truncated (%d bytes)", len(b))
	}
	c.Seq = binary.BigEndian.Uint16(b[0:])
	c.Total = binary.BigEndian.Uint16(b[2:])
	c.Addr = binary.BigEndian.Uint32(b[4:])
	c.TotalLen = binary.BigEndian.Uint32(b[8:])
	c.Offset = binary.BigEndian.Uint32(b[12:])
	c.Data = b[loadChunkHeaderLen:]
	if c.Total == 0 {
		return c, fmt.Errorf("netproto: load chunk with zero total")
	}
	if c.Seq >= c.Total {
		return c, fmt.Errorf("netproto: chunk seq %d out of range (total %d)", c.Seq, c.Total)
	}
	if uint64(c.Offset)+uint64(len(c.Data)) > uint64(c.TotalLen) {
		return c, fmt.Errorf("netproto: chunk [%d,+%d) exceeds image length %d", c.Offset, len(c.Data), c.TotalLen)
	}
	return c, nil
}

// ChunkImage splits an image into load chunks of at most MaxChunkData
// bytes each.
func ChunkImage(addr uint32, image []byte) []LoadChunk {
	n := (len(image) + MaxChunkData - 1) / MaxChunkData
	if n == 0 {
		n = 1
	}
	chunks := make([]LoadChunk, 0, n)
	for i := 0; i < n; i++ {
		lo := i * MaxChunkData
		hi := lo + MaxChunkData
		if hi > len(image) {
			hi = len(image)
		}
		chunks = append(chunks, LoadChunk{
			Seq:      uint16(i),
			Total:    uint16(n),
			Addr:     addr,
			TotalLen: uint32(len(image)),
			Offset:   uint32(lo),
			Data:     image[lo:hi],
		})
	}
	return chunks
}

// Load acks reuse the RunReport body (wire-shape compatibility with
// every pre-existing client and capture) and carry reassembly progress
// in the report's otherwise-unused numeric fields: Cycles holds the
// count of distinct chunks received so far and Instructions holds the
// next missing sequence number (== Total once the image is complete).
// A client that was interrupted mid-load reads NextSeq off the first
// re-acked duplicate and resumes from there instead of restarting.

// LoadAckReport builds a load-chunk acknowledgement carrying progress.
func LoadAckReport(status uint8, received, nextSeq int) RunReport {
	return RunReport{
		Status:       status,
		Cycles:       uint64(received),
		Instructions: uint64(nextSeq),
	}
}

// LoadAckProgress extracts (received, nextSeq) from a load ack. Acks
// from a pre-progress server report (0, 0), which callers must treat
// as "no progress information".
func LoadAckProgress(rep RunReport) (received, nextSeq int) {
	return int(rep.Cycles), int(rep.Instructions)
}

// StartReq asks the LEON controller to execute the loaded program.
type StartReq struct {
	Entry     uint32 // 0 means "address of the last load"
	MaxCycles uint64 // 0 means the controller default
}

// Marshal encodes the request body.
func (r StartReq) Marshal() []byte {
	b := make([]byte, 12)
	binary.BigEndian.PutUint32(b[0:], r.Entry)
	binary.BigEndian.PutUint64(b[4:], r.MaxCycles)
	return b
}

// ParseStartReq decodes the body.
func ParseStartReq(b []byte) (StartReq, error) {
	if len(b) < 12 {
		return StartReq{}, fmt.Errorf("netproto: start request truncated")
	}
	return StartReq{
		Entry:     binary.BigEndian.Uint32(b[0:]),
		MaxCycles: binary.BigEndian.Uint64(b[4:]),
	}, nil
}

// RunReport carries the cycle counter and fault mailbox after a run —
// the response to StartLEON and part of Status.
type RunReport struct {
	Status       uint8
	Cycles       uint64
	Instructions uint64
	TT           uint8
	FaultPC      uint32
}

// Marshal encodes the report.
func (r RunReport) Marshal() []byte {
	b := make([]byte, 22)
	b[0] = r.Status
	binary.BigEndian.PutUint64(b[1:], r.Cycles)
	binary.BigEndian.PutUint64(b[9:], r.Instructions)
	b[17] = r.TT
	binary.BigEndian.PutUint32(b[18:], r.FaultPC)
	return b
}

// ParseRunReport decodes the report.
func ParseRunReport(b []byte) (RunReport, error) {
	if len(b) < 22 {
		return RunReport{}, fmt.Errorf("netproto: run report truncated")
	}
	return RunReport{
		Status:       b[0],
		Cycles:       binary.BigEndian.Uint64(b[1:]),
		Instructions: binary.BigEndian.Uint64(b[9:]),
		TT:           b[17],
		FaultPC:      binary.BigEndian.Uint32(b[18:]),
	}, nil
}

// WaitResultReq is the body of CmdWaitResult, the server-held result
// wait of the pipelined control plane: instead of polling CmdResult
// every couple of milliseconds, the client asks the server to hold the
// exchange open for up to HoldMs milliseconds and answer — with the
// same RunReport body CmdResult uses — the instant the board's run
// completes. A server whose board is not running, whose hold budget
// expires, or whose waiter table is full answers immediately
// (StatusRunning while in flight), and the client falls back to
// polling. HoldMs 0 means "answer immediately" (equivalent to
// CmdResult). The command reuses the v1–v4 headers unchanged; servers
// predating command-set revision 5 answer CmdError "unknown command",
// which clients treat as "poll instead".
type WaitResultReq struct {
	HoldMs uint32
}

// Marshal encodes the request body.
func (r WaitResultReq) Marshal() []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, r.HoldMs)
	return b
}

// ParseWaitResultReq decodes the body. An empty body means HoldMs 0 —
// answer immediately — so a bare CmdWaitResult behaves like CmdResult.
func ParseWaitResultReq(b []byte) (WaitResultReq, error) {
	if len(b) == 0 {
		return WaitResultReq{}, nil
	}
	if len(b) < 4 {
		return WaitResultReq{}, fmt.Errorf("netproto: wait-result request truncated (%d bytes)", len(b))
	}
	return WaitResultReq{HoldMs: binary.BigEndian.Uint32(b)}, nil
}

// MemReq addresses a memory read or write ("Memory address (4B) where
// the result is expected").
type MemReq struct {
	Addr   uint32
	Length uint32 // reads only
	Data   []byte // writes only
}

// Marshal encodes the request body.
func (r MemReq) Marshal() []byte {
	b := make([]byte, 8+len(r.Data))
	binary.BigEndian.PutUint32(b[0:], r.Addr)
	binary.BigEndian.PutUint32(b[4:], r.Length)
	copy(b[8:], r.Data)
	return b
}

// ParseMemReq decodes the body.
func ParseMemReq(b []byte) (MemReq, error) {
	if len(b) < 8 {
		return MemReq{}, fmt.Errorf("netproto: memory request truncated")
	}
	return MemReq{
		Addr:   binary.BigEndian.Uint32(b[0:]),
		Length: binary.BigEndian.Uint32(b[4:]),
		Data:   b[8:],
	}, nil
}

// MemResp carries read-back memory.
type MemResp struct {
	Status uint8
	Addr   uint32
	Data   []byte
}

// Marshal encodes the response body.
func (r MemResp) Marshal() []byte {
	b := make([]byte, 5+len(r.Data))
	b[0] = r.Status
	binary.BigEndian.PutUint32(b[1:], r.Addr)
	copy(b[5:], r.Data)
	return b
}

// ParseMemResp decodes the body.
func ParseMemResp(b []byte) (MemResp, error) {
	if len(b) < 5 {
		return MemResp{}, fmt.Errorf("netproto: memory response truncated")
	}
	return MemResp{Status: b[0], Addr: binary.BigEndian.Uint32(b[1:]), Data: b[5:]}, nil
}

// StatusResp answers CmdStatus: controller state, the live hardware
// cycle counter (so a polling client can watch an in-flight run
// advance, §3.1), and the last completed run.
type StatusResp struct {
	State      uint8 // leon.State
	BootOK     bool
	LoadedAddr uint32 // address of the last completed load (0 if none)
	CurCycles  uint64 // current run-relative cycle counter (live while running)
	Last       RunReport
}

// statusRespHeadLen is the fixed head ahead of the embedded RunReport.
const statusRespHeadLen = 14

// Marshal encodes the response body.
func (r StatusResp) Marshal() []byte {
	b := make([]byte, statusRespHeadLen)
	b[0] = r.State
	if r.BootOK {
		b[1] = 1
	}
	binary.BigEndian.PutUint32(b[2:], r.LoadedAddr)
	binary.BigEndian.PutUint64(b[6:], r.CurCycles)
	return append(b, r.Last.Marshal()...)
}

// ParseStatusResp decodes the body.
func ParseStatusResp(b []byte) (StatusResp, error) {
	if len(b) < statusRespHeadLen+22 {
		return StatusResp{}, fmt.Errorf("netproto: status response truncated")
	}
	last, err := ParseRunReport(b[statusRespHeadLen:])
	if err != nil {
		return StatusResp{}, err
	}
	return StatusResp{
		State:      b[0],
		BootOK:     b[1] != 0,
		LoadedAddr: binary.BigEndian.Uint32(b[2:]),
		CurCycles:  binary.BigEndian.Uint64(b[6:]),
		Last:       last,
	}, nil
}

// ErrorResp reports a failure with a human-readable message (the
// paper's hardware transmits "an output IP packet containing an error
// message", §4.1).
type ErrorResp struct {
	Code uint8
	Msg  string
}

// Marshal encodes the response body.
func (r ErrorResp) Marshal() []byte {
	return append([]byte{r.Code}, r.Msg...)
}

// ParseErrorResp decodes the body.
func ParseErrorResp(b []byte) (ErrorResp, error) {
	if len(b) < 1 {
		return ErrorResp{}, fmt.Errorf("netproto: error response truncated")
	}
	return ErrorResp{Code: b[0], Msg: string(b[1:])}, nil
}

// TracesReq selects which server-side exchange traces CmdTraces
// returns: an 8-byte big-endian trace id picks one trace (force-
// completing it if still active); an empty body asks for every
// completed trace in the ring.
type TracesReq struct {
	TraceID uint64 // 0 = all completed traces
}

// Marshal encodes the request body.
func (r TracesReq) Marshal() []byte {
	if r.TraceID == 0 {
		return nil
	}
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, r.TraceID)
	return b
}

// ParseTracesReq decodes the body.
func ParseTracesReq(b []byte) (TracesReq, error) {
	switch {
	case len(b) == 0:
		return TracesReq{}, nil
	case len(b) >= 8:
		return TracesReq{TraceID: binary.BigEndian.Uint64(b)}, nil
	default:
		return TracesReq{}, fmt.Errorf("netproto: traces request truncated (%d bytes)", len(b))
	}
}

// TracesResp carries exchange-trace spans rendered as JSON (a
// tracing.TraceData array). The payload is capped by the producer so
// the response stays inside one UDP datagram.
type TracesResp struct {
	Status uint8
	JSON   []byte
}

// MaxTracesJSON bounds the JSON payload of one traces response; a
// producer with more data truncates to whole traces under this limit.
const MaxTracesJSON = 48 * 1024

// Marshal encodes the response body.
func (r TracesResp) Marshal() []byte {
	return append([]byte{r.Status}, r.JSON...)
}

// ParseTracesResp decodes the body.
func ParseTracesResp(b []byte) (TracesResp, error) {
	if len(b) < 1 {
		return TracesResp{}, fmt.Errorf("netproto: traces response truncated")
	}
	return TracesResp{Status: b[0], JSON: b[1:]}, nil
}
