package netproto

import (
	"encoding/binary"
	"fmt"
)

// Command-set revision 6 turns CmdReconfigure into a non-blocking
// protocol: the server acks a reconfigure request immediately with the
// state of its synthesis ticket, CmdReconfigStatus polls that ticket,
// and CmdWaitReconfig parks the exchange server-side (like
// CmdWaitResult) until the swap lands or the hold expires. All three
// ride the unchanged v1–v4 headers; servers predating rev 6 block on
// CmdReconfigure and answer CmdError "unknown command" to the two new
// commands, which clients treat as "this server already finished the
// work inside the ack" / "poll instead".

// Reconfiguration ticket states on the wire, in lifecycle order.
const (
	ReconfigNone         uint8 = 0 // no reconfiguration in flight or recorded
	ReconfigQueued       uint8 = 1 // ticket waiting for a synthesis-pool slot
	ReconfigSynthesizing uint8 = 2 // modelled tool run in progress
	ReconfigSwapping     uint8 = 3 // image ready; swap deferred until the board is idle
	ReconfigApplied      uint8 = 4 // configuration active on the board
	ReconfigFailed       uint8 = 5 // synthesis or swap failed (Msg says why)
)

// ReconfigStateName names a wire state for telemetry and CLI output.
func ReconfigStateName(s uint8) string {
	switch s {
	case ReconfigNone:
		return "none"
	case ReconfigQueued:
		return "queued"
	case ReconfigSynthesizing:
		return "synthesizing"
	case ReconfigSwapping:
		return "swapping"
	case ReconfigApplied:
		return "applied"
	case ReconfigFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Flag bits carried alongside the state.
const (
	reconfigFlagHit     uint8 = 1 << 0 // image came from the reconfiguration cache
	reconfigFlagPartial uint8 = 1 << 1 // applied as a partial (cache-only) swap
)

// ReconfigStatusResp answers CmdReconfigStatus and CmdWaitReconfig,
// and is the payload the CmdReconfigure ack compresses into RunReport
// spare fields (ReconfigAckReport).
type ReconfigStatusResp struct {
	Status   uint8 // StatusOK, or StatusError when State is Failed
	State    uint8 // Reconfig* lifecycle state
	CacheHit bool  // served from the cache, no synthesis
	Partial  bool  // applied as a partial reconfiguration
	// Queued is the number of tickets a prewarm request accepted (0
	// for single-configuration reconfigures).
	Queued uint32
	Msg    string // failure detail when State is ReconfigFailed
}

// reconfigStatusHeadLen is the fixed part ahead of the message.
const reconfigStatusHeadLen = 7

// Marshal encodes the response body.
func (r ReconfigStatusResp) Marshal() []byte {
	b := make([]byte, reconfigStatusHeadLen, reconfigStatusHeadLen+len(r.Msg))
	b[0] = r.Status
	b[1] = r.State
	b[2] = r.flags()
	binary.BigEndian.PutUint32(b[3:], r.Queued)
	return append(b, r.Msg...)
}

func (r ReconfigStatusResp) flags() uint8 {
	var f uint8
	if r.CacheHit {
		f |= reconfigFlagHit
	}
	if r.Partial {
		f |= reconfigFlagPartial
	}
	return f
}

// ParseReconfigStatusResp decodes the body.
func ParseReconfigStatusResp(b []byte) (ReconfigStatusResp, error) {
	if len(b) < reconfigStatusHeadLen {
		return ReconfigStatusResp{}, fmt.Errorf("netproto: reconfig status truncated (%d bytes)", len(b))
	}
	return ReconfigStatusResp{
		Status:   b[0],
		State:    b[1],
		CacheHit: b[2]&reconfigFlagHit != 0,
		Partial:  b[2]&reconfigFlagPartial != 0,
		Queued:   binary.BigEndian.Uint32(b[3:]),
		Msg:      string(b[reconfigStatusHeadLen:]),
	}, nil
}

// The CmdReconfigure ack keeps the RunReport wire shape every v1–v5
// client parses, and packs the rev-6 ticket state into the report's
// otherwise-unused fields (the same spare-field scheme load acks use):
// Cycles holds the Reconfig* state, Instructions the prewarm queue
// count, and TT the hit/partial flags. A pre-rev-6 server that blocked
// through the whole swap reports plain StatusOK with zeroed spares —
// ReconfigAckInfo maps that to ReconfigApplied, so new clients read
// old acks correctly, and old clients see StatusOK from new servers
// exactly when the swap already happened inside the ack (the cached
// path — the common case the old blocking protocol optimized).

// ReconfigAckReport compresses a ticket status into the RunReport-
// shaped CmdReconfigure ack.
func ReconfigAckReport(st ReconfigStatusResp) RunReport {
	status := StatusRunning
	switch st.State {
	case ReconfigApplied, ReconfigNone:
		status = StatusOK
	case ReconfigFailed:
		status = StatusError
	}
	return RunReport{
		Status:       status,
		Cycles:       uint64(st.State),
		Instructions: uint64(st.Queued),
		TT:           st.flags(),
	}
}

// ReconfigAckInfo recovers the ticket status from a CmdReconfigure
// ack, mapping pre-rev-6 blocking acks (no state in the spares) onto
// the terminal states.
func ReconfigAckInfo(rep RunReport) ReconfigStatusResp {
	st := ReconfigStatusResp{
		Status:   rep.Status,
		State:    uint8(rep.Cycles),
		CacheHit: rep.TT&reconfigFlagHit != 0,
		Partial:  rep.TT&reconfigFlagPartial != 0,
		Queued:   uint32(rep.Instructions),
	}
	if st.State == ReconfigNone {
		// Blocking server: the ack itself is the outcome.
		if rep.Status == StatusOK {
			st.State = ReconfigApplied
		} else {
			st.State = ReconfigFailed
		}
	}
	return st
}

// Terminal reports whether the state is final (Applied or Failed).
func (r ReconfigStatusResp) Terminal() bool {
	return r.State == ReconfigApplied || r.State == ReconfigFailed
}

// WaitReconfigReq is the body of CmdWaitReconfig; it reuses the
// CmdWaitResult hold semantics (HoldMs 0 = answer immediately).
type WaitReconfigReq = WaitResultReq

// ParseWaitReconfigReq decodes the body (empty = HoldMs 0).
func ParseWaitReconfigReq(b []byte) (WaitReconfigReq, error) {
	r, err := ParseWaitResultReq(b)
	if err != nil {
		return WaitReconfigReq{}, fmt.Errorf("netproto: wait-reconfig request: %w", err)
	}
	return r, nil
}
