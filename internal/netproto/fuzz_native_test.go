package netproto

import (
	"bytes"
	"testing"
)

// The native fuzz targets complement TestParsersNeverPanic with
// round-trip invariants: whatever a parser accepts must re-marshal to
// something the parser accepts again, with identical semantics. Seed
// inputs covering the v1/v2/v3 headers and the CmdResult/CmdStartSync
// body codecs live in testdata/fuzz; `go test -fuzz` grows them.

// FuzzParsePacket covers the four header revisions: v1 (implicit
// board 0), v2 (board byte), v3 (board + exchange seq) and v4 (board
// + seq + trace id).
func FuzzParsePacket(f *testing.F) {
	f.Add(Packet{Command: CmdStatus}.Marshal())
	f.Add(Packet{Command: CmdResult, Board: 3}.Marshal())
	f.Add(Packet{Command: CmdStartSync, Board: 2, Seq: 0xBEEF, HasSeq: true, Body: []byte{1, 2, 3}}.Marshal())
	f.Add(Packet{Command: CmdError, Seq: 1, HasSeq: true, Body: ErrorResp{Code: CmdStatus, Msg: "x"}.Marshal()}.Marshal())
	f.Add(Packet{Command: CmdStartLEON, Board: 1, Seq: 7, HasSeq: true,
		TraceID: 0x0123456789ABCDEF, HasTrace: true, Body: []byte{9}}.Marshal())
	f.Add(Packet{Command: CmdTraces, HasSeq: true, TraceID: 1, HasTrace: true,
		Body: TracesReq{TraceID: 42}.Marshal()}.Marshal())
	f.Add([]byte{'L', 'Q', 9, 9})             // unsupported version
	f.Add([]byte{'L', 'Q', 3, 1})             // v3 header truncated
	f.Add([]byte{'L', 'Q', 4, 1, 0, 0, 0, 0}) // v4 header truncated
	f.Add([]byte("not a packet"))             // bad magic
	f.Fuzz(func(t *testing.T, raw []byte) {
		pkt, err := ParsePacket(raw)
		if err != nil {
			return
		}
		// Accepted: the header fields must survive a marshal/parse
		// round trip bit-identically.
		again, err := ParsePacket(pkt.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshalled packet failed: %v (pkt %+v)", err, pkt)
		}
		if again.Command != pkt.Command || again.Board != pkt.Board ||
			again.HasSeq != pkt.HasSeq || (pkt.HasSeq && again.Seq != pkt.Seq) ||
			again.HasTrace != pkt.HasTrace || (pkt.HasTrace && again.TraceID != pkt.TraceID) ||
			!bytes.Equal(again.Body, pkt.Body) {
			t.Fatalf("round trip diverged: %+v → %+v", pkt, again)
		}
		if !IsLiquidPacket(raw) {
			t.Fatalf("ParsePacket accepted a payload IsLiquidPacket rejects")
		}
	})
}

// FuzzParseLoadChunk checks the reassembly invariants the load path
// depends on: in-range sequence numbers and in-bounds chunk extents.
func FuzzParseLoadChunk(f *testing.F) {
	for _, c := range ChunkImage(0x40001000, bytes.Repeat([]byte{7}, MaxChunkData+100)) {
		f.Add(c.Marshal())
	}
	f.Add(LoadChunk{Seq: 0, Total: 1, TotalLen: 0}.Marshal())
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		c, err := ParseLoadChunk(raw)
		if err != nil {
			return
		}
		if c.Total == 0 || c.Seq >= c.Total {
			t.Fatalf("accepted chunk with seq %d / total %d", c.Seq, c.Total)
		}
		if uint64(c.Offset)+uint64(len(c.Data)) > uint64(c.TotalLen) {
			t.Fatalf("accepted chunk overrunning its image: [%d,+%d) > %d", c.Offset, len(c.Data), c.TotalLen)
		}
		again, err := ParseLoadChunk(c.Marshal())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Seq != c.Seq || again.Total != c.Total || again.Addr != c.Addr ||
			again.TotalLen != c.TotalLen || again.Offset != c.Offset || !bytes.Equal(again.Data, c.Data) {
			t.Fatalf("round trip diverged: %+v → %+v", c, again)
		}
	})
}

// FuzzParseRunReport covers the CmdResult / CmdStartSync response body
// (and the load-ack progress encoding that rides in it).
func FuzzParseRunReport(f *testing.F) {
	f.Add(RunReport{Status: StatusOK, Cycles: 123456, Instructions: 99}.Marshal())
	f.Add(RunReport{Status: StatusFault, TT: 0x2B, FaultPC: 0x40001234}.Marshal())
	f.Add(LoadAckReport(StatusPending, 3, 3).Marshal())
	f.Add(make([]byte, 21)) // one byte short
	f.Fuzz(func(t *testing.T, raw []byte) {
		rep, err := ParseRunReport(raw)
		if err != nil {
			return
		}
		again, err := ParseRunReport(rep.Marshal())
		if err != nil || again != rep {
			t.Fatalf("round trip diverged: %+v → %+v (%v)", rep, again, err)
		}
		// The load-ack progress codec is a lossless view of the report.
		recv, next := LoadAckProgress(rep)
		if recv >= 0 && next >= 0 {
			ack := LoadAckReport(rep.Status, recv, next)
			if ack.Cycles != rep.Cycles || ack.Instructions != rep.Instructions {
				t.Fatalf("load-ack codec lossy: %+v → (%d,%d) → %+v", rep, recv, next, ack)
			}
		}
	})
}

// FuzzParseStartReq covers the CmdStartLEON / CmdStartSync request
// body.
func FuzzParseStartReq(f *testing.F) {
	f.Add(StartReq{Entry: 0x40001000, MaxCycles: 1 << 40}.Marshal())
	f.Add(StartReq{}.Marshal())
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := ParseStartReq(raw)
		if err != nil {
			return
		}
		again, err := ParseStartReq(r.Marshal())
		if err != nil || again != r {
			t.Fatalf("round trip diverged: %+v → %+v (%v)", r, again, err)
		}
	})
}

// FuzzParseStatusResp covers the CmdStatus response body with its
// embedded RunReport.
func FuzzParseStatusResp(f *testing.F) {
	f.Add(StatusResp{State: 2, BootOK: true, LoadedAddr: 0x40001000, CurCycles: 42,
		Last: RunReport{Status: StatusOK, Cycles: 7}}.Marshal())
	f.Add(StatusResp{}.Marshal())
	f.Add(make([]byte, 35)) // one byte short of head+report
	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := ParseStatusResp(raw)
		if err != nil {
			return
		}
		again, err := ParseStatusResp(r.Marshal())
		if err != nil || again != r {
			t.Fatalf("round trip diverged: %+v → %+v (%v)", r, again, err)
		}
	})
}
