package bench

import (
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/leon"
)

// StepKernel is a steady-state mixed kernel (ALU, load, store, taken
// branch + delay slot) that loops forever; the throughput measurements
// step it after the caches and predecode state have warmed up. The
// root-level BenchmarkStepThroughput and ThroughputExperiment share it
// so the testing.B number and the BENCH_throughput.json row describe
// the same workload.
const StepKernel = `
_start:
	set 0x40100000, %g3
	set 0, %g1
loop:
	ld [%g3], %g2
	add %g1, %g2, %g1
	add %g1, 1, %g1
	xor %g1, %g2, %g4
	sub %g4, %g2, %g4
	st %g4, [%g3 + 4]
	and %g1, 255, %g5
	or %g5, %g2, %g5
	ba loop
	nop
`

// ThroughputRow is the simulator-performance record: how fast the host
// steps the simulated machine in the steady state.
type ThroughputRow struct {
	Steps     uint64  // simulated instructions measured
	Cycles    uint64  // simulated cycles they consumed
	WallSecs  float64 // host wall-clock for the measured window
	NsPerStep float64 // host nanoseconds per simulated instruction
	SimMIPS   float64 // simulated million instructions per host second
}

// ThroughputSoC boots a default SoC (honoring the event-horizon
// quantum cap, 0 = uncapped), hands off into StepKernel and warms the
// caches, the predecode state and the superblock dispatcher, leaving
// the machine ready for steady-state stepping.
func ThroughputSoC(quantum uint64) (*leon.SoC, error) {
	soc, err := leon.NewWithOptions(leon.DefaultConfig(), nil, leon.Options{Quantum: quantum})
	if err != nil {
		return nil, err
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		return nil, err
	}
	obj, err := asm.AssembleAt(StepKernel, leon.DefaultLoadAddr)
	if err != nil {
		return nil, err
	}
	if err := ctrl.LoadProgram(obj.Origin, obj.Code); err != nil {
		return nil, err
	}
	if err := ctrl.Start(obj.Origin, 0); err != nil {
		return nil, err
	}
	if _, err := StepSteady(soc, 4096); err != nil { // warm-up
		return nil, err
	}
	return soc, nil
}

// StepSteady advances the kernel by exactly steps instructions through
// the superblock dispatcher — the steady-state inner loop both the
// testing.B benchmark and ThroughputExperiment time. The kernel loops
// forever, so neither the poll address nor a cycle cap can cut a batch
// short.
func StepSteady(soc *leon.SoC, steps uint64) (uint64, error) {
	done := uint64(0)
	for done < steps {
		n, err := soc.StepN(int(steps-done), ^uint64(0), leon.ROMPollAddr)
		if err != nil {
			return done, err
		}
		done += uint64(n)
	}
	return done, nil
}

// ThroughputExperiment measures steady-state stepping speed: it boots a
// default SoC, hands off into StepKernel via the controller's Start
// path, warms the I-cache and the predecode cache, then times steps
// simulated instructions through the superblock dispatcher.
func ThroughputExperiment(steps uint64) (ThroughputRow, error) {
	return ThroughputExperimentQuantum(steps, 0)
}

// ThroughputExperimentQuantum is ThroughputExperiment with a cap on
// the event-horizon batch (liquid-bench -quantum); 0 means uncapped.
func ThroughputExperimentQuantum(steps, quantum uint64) (ThroughputRow, error) {
	if steps == 0 {
		steps = 2_000_000
	}
	soc, err := ThroughputSoC(quantum)
	if err != nil {
		return ThroughputRow{}, err
	}
	startCycles := soc.Cycles()
	start := time.Now()
	if _, err := StepSteady(soc, steps); err != nil {
		return ThroughputRow{}, err
	}
	wall := time.Since(start)
	row := ThroughputRow{
		Steps:    steps,
		Cycles:   soc.Cycles() - startCycles,
		WallSecs: wall.Seconds(),
	}
	if s := wall.Seconds(); s > 0 {
		row.NsPerStep = float64(wall.Nanoseconds()) / float64(steps)
		row.SimMIPS = float64(steps) / s / 1e6
	}
	return row, nil
}
