package bench

import (
	"testing"

	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
)

// TestFig8ShapeHolds asserts the paper's central claim over the full
// benchmark-size run: higher cycles below 4 KB, flat at and above.
func TestFig8ShapeHolds(t *testing.T) {
	rows, err := Fig8Sweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byKB := map[int]Fig8Row{}
	for _, r := range rows {
		byKB[r.DCacheBytes>>10] = r
	}
	// Cycles monotone non-increasing with size.
	if !(byKB[1].Cycles >= byKB[2].Cycles && byKB[2].Cycles > byKB[4].Cycles &&
		byKB[4].Cycles >= byKB[8].Cycles && byKB[8].Cycles >= byKB[16].Cycles) {
		t.Errorf("cycle curve not monotone: %+v", rows)
	}
	// The cliff: 1/2 KB miss on nearly every iteration, ≥4 KB do not.
	if byKB[1].Misses < 30000 || byKB[2].Misses < 30000 {
		t.Errorf("small caches miss too little: %+v", rows)
	}
	if byKB[4].Misses > byKB[1].Misses/10 {
		t.Errorf("4KB misses %d not ≪ 1KB %d", byKB[4].Misses, byKB[1].Misses)
	}
	// Flat at and above 4 KB (within a few percent).
	if byKB[4].Cycles != byKB[8].Cycles {
		diff := int64(byKB[4].Cycles) - int64(byKB[8].Cycles)
		if diff < 0 {
			diff = -diff
		}
		if uint64(diff) > byKB[4].Cycles/20 {
			t.Errorf("4KB (%d) and 8KB (%d) not flat", byKB[4].Cycles, byKB[8].Cycles)
		}
	}
}

func TestFig10ReportMatchesPaper(t *testing.T) {
	u, dev := Fig10Report()
	if u.Slices != 7900 || u.BlockRAMs != 86 || u.IOBs != 309 || u.FMaxMHz != 30 {
		t.Errorf("utilization = %+v", u)
	}
	if dev.Name != "XCV2000E" {
		t.Errorf("device = %s", dev.Name)
	}
}

func TestAdapterExperimentClaims(t *testing.T) {
	rows, err := AdapterExperiment()
	if err != nil {
		t.Fatal(err)
	}
	byPattern := map[string]AdapterRow{}
	for _, r := range rows {
		byPattern[r.Pattern] = r
	}
	burst := byPattern["read 4 words, one burst"]
	singles := byPattern["read 4 words, singles"]
	if burst.Cycles*2 >= singles.Cycles {
		t.Errorf("burst (%d) not ≪ singles (%d)", burst.Cycles, singles.Cycles)
	}
	if burst.Handshakes != 1 || singles.Handshakes != 4 {
		t.Errorf("handshakes: burst %d singles %d", burst.Handshakes, singles.Handshakes)
	}
	w := byPattern["write 32-bit (RMW)"]
	r1 := byPattern["read 32-bit single"]
	if w.Handshakes != 2 || w.Cycles != 2*r1.Cycles {
		t.Errorf("RMW write: %+v vs read %+v", w, r1)
	}
	if byPattern["read 8 words, bursts of 4"].Handshakes != 2 {
		t.Errorf("8-word burst handshakes = %d", byPattern["read 8 words, bursts of 4"].Handshakes)
	}
}

func TestReconfigExperimentEconomics(t *testing.T) {
	rows, stats, err := ReconfigExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d steps", len(rows))
	}
	// First three visits miss, the revisits hit.
	for i, r := range rows {
		wantHit := i >= 3
		if r.CacheHit != wantHit {
			t.Errorf("step %d (%s): hit=%v want %v", i, r.Step, r.CacheHit, wantHit)
		}
	}
	if stats.Hits != 4 || stats.SavedTime == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestBurstAblationMonotone(t *testing.T) {
	rows, err := BurstAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles >= rows[i-1].Cycles {
			t.Errorf("burst %d (%d cycles) not cheaper than %d (%d)",
				rows[i].BurstWords, rows[i].Cycles, rows[i-1].BurstWords, rows[i-1].Cycles)
		}
		if rows[i].Handshakes >= rows[i-1].Handshakes {
			t.Error("handshakes not decreasing")
		}
	}
}

func TestWritePolicyExperiment(t *testing.T) {
	rows, err := WritePolicyExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Write-back must win on this store-heavy, cache-resident kernel.
	if rows[1].Cycles >= rows[0].Cycles {
		t.Errorf("write-back (%d) not faster than write-through (%d)", rows[1].Cycles, rows[0].Cycles)
	}
}

func TestAssocExperimentRuns(t *testing.T) {
	rows, err := AssocExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// More ways never hurt at fixed size.
	for i := 1; i < len(rows); i++ {
		if rows[i].Misses > rows[i-1].Misses {
			t.Errorf("misses increased with ways: %+v", rows)
		}
	}
}

func TestMACExperimentFasterWithUnit(t *testing.T) {
	plain, mac, err := MACExperiment()
	if err != nil {
		t.Fatal(err)
	}
	if mac.Cycles >= plain.Cycles {
		t.Errorf("MAC (%d) not faster than base (%d)", mac.Cycles, plain.Cycles)
	}
}

func TestRunOnceExitValue(t *testing.T) {
	res, exit, err := RunOnce(leon.DefaultConfig(), "int main() { return 31; }", lcc.Options{})
	if err != nil || res.Faulted {
		t.Fatalf("%v %+v", err, res)
	}
	if exit != 31 {
		t.Errorf("exit = %d", exit)
	}
}
