package bench

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count setting: values <= 0 mean "one worker
// per logical CPU" (the liquid-bench -workers flag's default).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// forEachPoint evaluates f over every point of a design-space sweep on
// a bounded worker pool and returns the results in input order.
//
// Each point must be self-contained — in practice every experiment
// builds its own SoC per point, so concurrent points share nothing but
// the immutable compile/link artifacts captured by f's closure. The
// pool is bounded by workers (resolved via Workers); with workers == 1
// the sweep degenerates to the original serial loop, executing points
// in index order on the calling goroutine's pool.
//
// Determinism: the result table depends only on f and points, never on
// scheduling — results are written to the slot matching the input
// index, and the reported error is the one from the lowest-indexed
// failing point, so serial and parallel runs are bit-identical (the
// determinism test in parallel_test.go holds this under -race).
func forEachPoint[P, R any](workers int, points []P, f func(P) (R, error)) ([]R, error) {
	n := Workers(workers)
	if n > len(points) {
		n = len(points)
	}
	results := make([]R, len(points))
	errs := make([]error, len(points))
	if n <= 1 {
		for i, p := range points {
			results[i], errs[i] = f(p)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = f(points[i])
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
