package bench

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// TestForEachPointOrder verifies results land in input order for every
// pool size, including pools larger than the point count.
func TestForEachPointOrder(t *testing.T) {
	points := make([]int, 33)
	for i := range points {
		points[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := forEachPoint(workers, points, func(p int) (int, error) {
			return p * p, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachPointError verifies the reported error is the one from
// the lowest-indexed failing point, independent of scheduling.
func TestForEachPointError(t *testing.T) {
	points := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wantErr := errors.New("point 3")
	for _, workers := range []int{1, 4} {
		_, err := forEachPoint(workers, points, func(p int) (int, error) {
			switch p {
			case 3:
				return 0, wantErr
			case 5, 6:
				return 0, fmt.Errorf("point %d", p)
			}
			return p, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
	}
}

// TestSweepDeterminism is the acceptance check for the parallel sweep
// runner: the Fig. 8 cycle/miss table must be bit-identical whether
// the points run serially or on a worker pool. CI runs this under
// -race, which also proves the points share no mutable state.
func TestSweepDeterminism(t *testing.T) {
	serial, err := Fig8Sweep(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig8Sweep(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel Fig8 tables differ:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
