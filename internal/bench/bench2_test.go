package bench

import "testing"

func TestICacheSweepShowsCodeFootprint(t *testing.T) {
	rows, err := ICacheSweep(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The loop body exceeds 512 B and 1 KB: those sizes must miss far
	// more and run slower than 4 KB.
	small, big := rows[0], rows[len(rows)-1]
	if small.Misses < 20*big.Misses {
		t.Errorf("512B I$ misses %d not ≫ 4KB %d", small.Misses, big.Misses)
	}
	if small.Cycles <= big.Cycles*11/10 {
		t.Errorf("512B I$ (%d cycles) not clearly slower than 4KB (%d)", small.Cycles, big.Cycles)
	}
	// Monotone non-increasing cycles.
	for i := 1; i < len(rows); i++ {
		if rows[i].Cycles > rows[i-1].Cycles {
			t.Errorf("cycles not monotone: %+v", rows)
		}
	}
}

func TestPlacementSDRAMCostsMore(t *testing.T) {
	rows, err := PlacementExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	sram, sdram := rows[0], rows[1]
	if sdram.Cycles <= sram.Cycles {
		t.Errorf("SDRAM (%d cycles) not slower than SRAM (%d)", sdram.Cycles, sram.Cycles)
	}
}

func TestPipelineExperimentTradeoff(t *testing.T) {
	rows, err := PipelineExperiment(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		// Deeper pipelines: never fewer cycles, always a faster clock.
		if rows[i].Cycles < rows[i-1].Cycles {
			t.Errorf("depth %d fewer cycles than depth %d", rows[i].Depth, rows[i-1].Depth)
		}
		if rows[i].FMaxMHz <= rows[i-1].FMaxMHz {
			t.Errorf("depth %d fMax not above depth %d", rows[i].Depth, rows[i-1].Depth)
		}
	}
	// Depths above 5 must actually pay branch-penalty cycles.
	if rows[3].Cycles <= rows[1].Cycles {
		t.Errorf("depth 7 (%d cycles) not above depth 5 (%d)", rows[3].Cycles, rows[1].Cycles)
	}
}
