// Package bench implements the experiment drivers that regenerate
// every table and figure of the paper's evaluation (§4), plus the
// ablation studies DESIGN.md calls out. The cmd/liquid-bench tool and
// the repository-level testing.B benchmarks both run these.
package bench

import (
	"fmt"
	"strings"

	"liquidarch/internal/ahbadapter"
	"liquidarch/internal/amba"
	"liquidarch/internal/cache"
	"liquidarch/internal/core"
	"liquidarch/internal/cpu"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/mem"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/synth"
)

// Fig7Source is the array-access benchmark of Fig. 7, verbatim in
// structure: a stride-32 index into a 4 KB array, wrapped mod 1024.
// The OCR of the paper lost the loop bound; 1048576 gives 32768
// iterations, enough to dwarf the cold-start transient.
const Fig7Source = `
int count[1024];
int result;

int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 1048576; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    result = x;
    return x;
}`

// smallSynth keeps benchmark images small; utilization is unaffected.
var smallSynth = synth.Options{BitstreamBytes: 4096}

// Fig8Row is one line of the Fig. 8 table: running time of the Fig. 7
// program under one data-cache size.
type Fig8Row struct {
	DCacheBytes int
	Cycles      uint64
	Instrs      uint64
	Misses      uint64 // data-cache read misses during the run
	MissRatio   float64
	Millis      float64 // wall-clock at the synthesized frequency
}

// Fig8Sizes is the paper's sweep: 1-16 KB at 32 B lines, I$ fixed 1 KB.
var Fig8Sizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}

// Fig8Sweep reproduces Fig. 8/9: it compiles the Fig. 7 program once
// (the shared artifact) and measures its cycle count under each
// data-cache size, each point on its own SoC. workers bounds the
// worker pool (<= 0: one per CPU); the result table is identical for
// every worker count.
func Fig8Sweep(workers int) ([]Fig8Row, error) {
	asmText, err := lcc.Compile(Fig7Source, lcc.Options{})
	if err != nil {
		return nil, err
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		return nil, err
	}
	return forEachPoint(workers, Fig8Sizes, func(size int) (Fig8Row, error) {
		cfg := leon.DefaultConfig()
		cfg.DCache = cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1}
		soc, err := leon.New(cfg, nil)
		if err != nil {
			return Fig8Row{}, err
		}
		ctrl := leon.NewController(soc)
		if err := ctrl.Boot(); err != nil {
			return Fig8Row{}, err
		}
		if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
			return Fig8Row{}, err
		}
		soc.DCache.ResetStats()
		res, err := ctrl.Execute(img.Entry, 0)
		if err != nil {
			return Fig8Row{}, err
		}
		if res.Faulted {
			return Fig8Row{}, fmt.Errorf("bench: fig8 run faulted at %d bytes (tt=%#x)", size, res.TT)
		}
		st := soc.DCache.Stats()
		util := synth.Estimate(cfg)
		return Fig8Row{
			DCacheBytes: size,
			Cycles:      res.Cycles,
			Instrs:      res.Instructions,
			Misses:      st.Misses,
			MissRatio:   st.MissRatio(),
			Millis:      float64(res.Cycles) / (util.FMaxMHz * 1e3),
		}, nil
	})
}

// Fig10Report reproduces the Fig. 10 device-utilization table for the
// base Liquid Processor System.
func Fig10Report() (synth.Utilization, synth.Device) {
	return synth.Estimate(leon.DefaultConfig()), synth.XCV2000E
}

// AdapterRow is one line of the §3.2 adapter experiment (E5).
type AdapterRow struct {
	Pattern    string
	Words      int
	Cycles     int
	Handshakes uint64
}

// AdapterExperiment measures the AHB↔SDRAM adapter behaviours §3.2
// reasons about: single reads, 4-word bursts vs per-word handshakes,
// long bursts needing extra handshakes, and the read-modify-write
// penalty on stores.
func AdapterExperiment() ([]AdapterRow, error) {
	newAdapter := func() (*ahbadapter.Adapter, *mem.Controller, error) {
		ctrl := mem.NewController(mem.NewSDRAM(1 << 20))
		port, err := ctrl.Port("leon")
		if err != nil {
			return nil, nil, err
		}
		return ahbadapter.New(port), ctrl, nil
	}
	var rows []AdapterRow
	run := func(pattern string, words int, f func(a *ahbadapter.Adapter) (int, error)) error {
		a, ctrl, err := newAdapter()
		if err != nil {
			return err
		}
		cycles, err := f(a)
		if err != nil {
			return err
		}
		rows = append(rows, AdapterRow{
			Pattern:    pattern,
			Words:      words,
			Cycles:     cycles,
			Handshakes: ctrl.Stats().Requests,
		})
		return nil
	}
	if err := run("read 32-bit single", 1, func(a *ahbadapter.Adapter) (int, error) {
		_, c, err := a.Read(0, amba.SizeWord)
		return c, err
	}); err != nil {
		return nil, err
	}
	if err := run("read 4 words, singles", 4, func(a *ahbadapter.Adapter) (int, error) {
		total := 0
		for i := 0; i < 4; i++ {
			_, c, err := a.Read(uint32(i)*4, amba.SizeWord)
			if err != nil {
				return total, err
			}
			total += c
		}
		return total, nil
	}); err != nil {
		return nil, err
	}
	if err := run("read 4 words, one burst", 4, func(a *ahbadapter.Adapter) (int, error) {
		return a.ReadBurst(0, make([]uint32, 4))
	}); err != nil {
		return nil, err
	}
	if err := run("read 8 words, bursts of 4", 8, func(a *ahbadapter.Adapter) (int, error) {
		return a.ReadBurst(0, make([]uint32, 8))
	}); err != nil {
		return nil, err
	}
	if err := run("write 32-bit (RMW)", 1, func(a *ahbadapter.Adapter) (int, error) {
		return a.Write(0, 1, amba.SizeWord)
	}); err != nil {
		return nil, err
	}
	if err := run("write 4 words (no write burst)", 4, func(a *ahbadapter.Adapter) (int, error) {
		total := 0
		for i := 0; i < 4; i++ {
			c, err := a.Write(uint32(i)*4, 1, amba.SizeWord)
			if err != nil {
				return total, err
			}
			total += c
		}
		return total, nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// ReconfigRow is one line of the reconfiguration-cache experiment (E6).
type ReconfigRow struct {
	Step      string
	CacheHit  bool
	SynthTime string // modelled tool time this step would cost
}

// ReconfigExperiment demonstrates the Fig. 1 economics: the first
// visit to each configuration pays ≈1 modelled hour of synthesis, the
// rest swap from the cache. It returns the per-step log plus the
// cache's totals.
func ReconfigExperiment() ([]ReconfigRow, reconfig.Stats, error) {
	sys, err := core.New(leon.DefaultConfig(), core.Options{Synth: smallSynth})
	if err != nil {
		return nil, reconfig.Stats{}, err
	}
	var rows []ReconfigRow
	visit := func(size int) error {
		cfg := sys.Config()
		cfg.DCache.SizeBytes = size
		hit, err := sys.Reconfigure(cfg)
		if err != nil {
			return err
		}
		cost := "cache swap (ms)"
		if !hit {
			cost = synth.SynthTimeFor(synth.Estimate(cfg)).String()
		}
		rows = append(rows, ReconfigRow{
			Step:      fmt.Sprintf("reconfigure D$=%dKB", size>>10),
			CacheHit:  hit,
			SynthTime: cost,
		})
		return nil
	}
	// Sweep out, then revisit: the second pass must be all hits.
	for _, size := range []int{1 << 10, 8 << 10, 16 << 10, 1 << 10, 8 << 10, 16 << 10, 4 << 10} {
		if err := visit(size); err != nil {
			return nil, reconfig.Stats{}, err
		}
	}
	return rows, sys.Manager().Cache().Stats(), nil
}

// RunOnce builds a system and runs the source, returning the result —
// the building block for the protocol and MAC benches.
func RunOnce(cfg leon.Config, src string, copts lcc.Options) (leon.RunResult, uint32, error) {
	sys, err := core.New(cfg, core.Options{Synth: smallSynth})
	if err != nil {
		return leon.RunResult{}, 0, err
	}
	img, err := sys.CompileC(src, copts)
	if err != nil {
		return leon.RunResult{}, 0, err
	}
	res, err := sys.Run(img, 0)
	if err != nil {
		return res, 0, err
	}
	exit, err := sys.ExitValue(img)
	return res, exit, err
}

// MACSource is a dot-product kernel exercising the liquid ISA
// extension: with the MAC unit each step is one lqmac; without it the
// same math needs a multiply and an add.
func MACSource(useMAC bool) (string, lcc.Options) {
	body := "acc = acc + a[i] * b[i];"
	opts := lcc.Options{}
	if useMAC {
		body = "acc = __mac(acc, a[i], b[i]);"
		opts.MAC = true
	}
	src := `
int a[256];
int b[256];
int main() {
    int i;
    int pass;
    int acc = 0;
    for (i = 0; i < 256; i++) { a[i] = i; b[i] = i + 1; }
    for (pass = 0; pass < 64; pass++)
        for (i = 0; i < 256; i++)
            ` + body + `
    return acc;
}`
	return src, opts
}

// MACExperiment compares the dot-product kernel with and without the
// MAC unit (ablation of the "new instructions" liquid axis).
func MACExperiment() (plain, mac leon.RunResult, err error) {
	src, opts := MACSource(false)
	plain, _, err = RunOnce(leon.DefaultConfig(), src, opts)
	if err != nil {
		return
	}
	cfg := leon.DefaultConfig()
	cfg.CPU.MAC = true
	src, opts = MACSource(true)
	mac, _, err = RunOnce(cfg, src, opts)
	return
}

// BurstAblationRow measures line-fill traffic through the §3.2 adapter
// with different read-burst chunk sizes (the paper fixes 4).
type BurstAblationRow struct {
	BurstWords int
	Cycles     int
	Handshakes uint64
}

// BurstAblation drives a cache whose line fills go through the
// AHB↔SDRAM adapter, sweeping the adapter's burst chunk. The paper's
// choice of 4 words must beat per-word handshakes (1) and longer
// chunks must only help marginally for 8-word (32 B) lines. Each chunk
// size runs on its own adapter/bus/cache stack; workers bounds the
// concurrency.
func BurstAblation(workers int) ([]BurstAblationRow, error) {
	return forEachPoint(workers, []int{1, 2, 4, 8}, func(bw int) (BurstAblationRow, error) {
		sdramCtrl := mem.NewController(mem.NewSDRAM(1 << 20))
		port, err := sdramCtrl.Port("leon")
		if err != nil {
			return BurstAblationRow{}, err
		}
		adapter := ahbadapter.New(port)
		adapter.BurstWords = bw
		bus := amba.NewAHB()
		if err := bus.Map("sdram", 0, 1<<20, adapter); err != nil {
			return BurstAblationRow{}, err
		}
		c, err := cache.New(cache.Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 1}, bus)
		if err != nil {
			return BurstAblationRow{}, err
		}
		total := 0
		// The Fig. 7 stride pattern: conflict misses on every access,
		// each one a full line fill through the adapter.
		for pass := 0; pass < 8; pass++ {
			for addr := uint32(0); addr < 4096; addr += 128 {
				_, cycles, err := c.Read(addr, amba.SizeWord)
				if err != nil {
					return BurstAblationRow{}, err
				}
				total += cycles
			}
		}
		return BurstAblationRow{
			BurstWords: bw,
			Cycles:     total,
			Handshakes: sdramCtrl.Stats().Requests,
		}, nil
	})
}

// ICacheRow is one point of the instruction-cache sweep: the other
// liquid cache axis the paper names ("Variable instruction/data cache
// size").
type ICacheRow struct {
	ICacheBytes int
	Cycles      uint64
	Misses      uint64
}

// icacheKernel generates a program whose hot loop body is bigger than
// a small instruction cache: many distinct statements, looped.
func icacheKernel() string {
	var b strings.Builder
	b.WriteString("int main() {\n    int x = 1;\n    int pass;\n")
	b.WriteString("    for (pass = 0; pass < 256; pass++) {\n")
	// ≈50 statements ≈ 1.5 KB of code in the loop body: larger than
	// a 1 KB instruction cache, comfortably inside 4 KB.
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, "        x = x * 3 + %d;\n", i)
	}
	b.WriteString("    }\n    return x;\n}\n")
	return b.String()
}

// ICacheSweep measures the kernel under instruction-cache sizes
// 512 B - 4 KB with the data cache fixed, one SoC per point, workers
// points concurrently.
func ICacheSweep(workers int) ([]ICacheRow, error) {
	asmText, err := lcc.Compile(icacheKernel(), lcc.Options{})
	if err != nil {
		return nil, err
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		return nil, err
	}
	return forEachPoint(workers, []int{512, 1 << 10, 2 << 10, 4 << 10}, func(size int) (ICacheRow, error) {
		cfg := leon.DefaultConfig()
		cfg.ICache = cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1}
		soc, err := leon.New(cfg, nil)
		if err != nil {
			return ICacheRow{}, err
		}
		ctrl := leon.NewController(soc)
		if err := ctrl.Boot(); err != nil {
			return ICacheRow{}, err
		}
		if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
			return ICacheRow{}, err
		}
		soc.ICache.ResetStats()
		res, err := ctrl.Execute(img.Entry, 0)
		if err != nil || res.Faulted {
			return ICacheRow{}, fmt.Errorf("bench: icache run: %v %+v", err, res)
		}
		return ICacheRow{ICacheBytes: size, Cycles: res.Cycles, Misses: soc.ICache.Stats().Misses}, nil
	})
}

// PlacementRow compares the same kernel with its data in SRAM versus
// SDRAM (behind the §3.2 adapter) — the cost the adapter design
// discussion is about.
type PlacementRow struct {
	Memory string
	Cycles uint64
}

// PlacementExperiment runs a pointer-based sweep kernel over a buffer
// in SRAM and then in SDRAM, both placements concurrently when workers
// allows.
func PlacementExperiment(workers int) ([]PlacementRow, error) {
	kernel := func(base uint32) string {
		return fmt.Sprintf(`
int main() {
    volatile int *buf = (int*)0x%08X;
    int i;
    int pass;
    int x = 0;
    for (pass = 0; pass < 8; pass++)
        for (i = 0; i < 2048; i++)
            x += buf[i];
    return x;
}`, base)
	}
	type placement struct {
		name string
		base uint32
	}
	points := []placement{
		{"SRAM", leon.SRAMBase + 0x100000},
		{"SDRAM (via adapter)", leon.SDRAMBase + 0x1000},
	}
	return forEachPoint(workers, points, func(m placement) (PlacementRow, error) {
		res, _, err := RunOnce(leon.DefaultConfig(), kernel(m.base), lcc.Options{})
		if err != nil {
			return PlacementRow{}, err
		}
		if res.Faulted {
			return PlacementRow{}, fmt.Errorf("bench: placement %s faulted (tt=%#x)", m.name, res.TT)
		}
		return PlacementRow{Memory: m.name, Cycles: res.Cycles}, nil
	})
}

// PipelineRow is one point of the pipeline-depth experiment: the
// liquid trade-off between cycle count (branch penalty) and the
// synthesized clock.
type PipelineRow struct {
	Depth   int
	Cycles  uint64
	FMaxMHz float64
	Millis  float64
}

// PipelineExperiment runs a branch-heavy kernel at pipeline depths
// 4-7: deeper pipelines take more cycles (taken-branch penalty) but
// clock faster; wall-clock time decides the winner for the workload —
// exactly the "modifiable pipeline depth" axis of §1.
func PipelineExperiment(workers int) ([]PipelineRow, error) {
	src := `
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 20000; i++) {
        if (i & 1) x += 3; else x -= 1;
        if (x > 1000) x -= 500;
    }
    return x;
}`
	return forEachPoint(workers, []int{4, 5, 6, 7}, func(depth int) (PipelineRow, error) {
		cfg := leon.DefaultConfig()
		cfg.CPU.PipelineDepth = depth
		cfg.CPU.Timing = cpu.TimingForDepth(depth)
		res, _, err := RunOnce(cfg, src, lcc.Options{})
		if err != nil {
			return PipelineRow{}, err
		}
		if res.Faulted {
			return PipelineRow{}, fmt.Errorf("bench: pipeline depth %d faulted", depth)
		}
		fmax := synth.Estimate(cfg).FMaxMHz
		return PipelineRow{
			Depth:   depth,
			Cycles:  res.Cycles,
			FMaxMHz: fmax,
			Millis:  float64(res.Cycles) / (fmax * 1e3),
		}, nil
	})
}

// WritePolicyRow compares write-through and write-back data caches on
// a store-heavy kernel.
type WritePolicyRow struct {
	Policy string
	Cycles uint64
}

// WritePolicyExperiment runs a store-heavy kernel under both policies,
// concurrently when workers allows.
func WritePolicyExperiment(workers int) ([]WritePolicyRow, error) {
	src := `
int buf[512];
int main() {
    int pass;
    int i;
    for (pass = 0; pass < 32; pass++)
        for (i = 0; i < 512; i++)
            buf[i] = buf[i] + pass;
    return buf[1];
}`
	return forEachPoint(workers, []bool{false, true}, func(wb bool) (WritePolicyRow, error) {
		cfg := leon.DefaultConfig()
		name := "write-through"
		if wb {
			cfg.DCache.Write = cache.WriteBack
			name = "write-back"
		}
		res, _, err := RunOnce(cfg, src, lcc.Options{})
		if err != nil {
			return WritePolicyRow{}, err
		}
		if res.Faulted {
			return WritePolicyRow{}, fmt.Errorf("bench: write-policy run faulted")
		}
		return WritePolicyRow{Policy: name, Cycles: res.Cycles}, nil
	})
}

// AssocRow compares data-cache associativities at fixed size on the
// conflict-missing Fig. 7 kernel.
type AssocRow struct {
	Assoc  int
	Cycles uint64
	Misses uint64
}

// AssocExperiment sweeps associativity 1/2/4 at 2 KB, where the Fig. 7
// pattern conflicts in a direct-mapped cache but fits with ways. The
// kernel is compiled once; the points run concurrently up to workers.
func AssocExperiment(workers int) ([]AssocRow, error) {
	asmText, err := lcc.Compile(Fig7Source, lcc.Options{})
	if err != nil {
		return nil, err
	}
	img, err := link.Build(asmText, link.Options{})
	if err != nil {
		return nil, err
	}
	return forEachPoint(workers, []int{1, 2, 4}, func(assoc int) (AssocRow, error) {
		cfg := leon.DefaultConfig()
		cfg.DCache = cache.Config{SizeBytes: 2 << 10, LineBytes: 32, Assoc: assoc, Replacement: cache.LRU}
		soc, err := leon.New(cfg, nil)
		if err != nil {
			return AssocRow{}, err
		}
		ctrl := leon.NewController(soc)
		if err := ctrl.Boot(); err != nil {
			return AssocRow{}, err
		}
		if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
			return AssocRow{}, err
		}
		soc.DCache.ResetStats()
		res, err := ctrl.Execute(img.Entry, 0)
		if err != nil || res.Faulted {
			return AssocRow{}, fmt.Errorf("bench: assoc run: %v %+v", err, res)
		}
		return AssocRow{Assoc: assoc, Cycles: res.Cycles, Misses: soc.DCache.Stats().Misses}, nil
	})
}
