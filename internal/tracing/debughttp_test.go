package tracing

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"liquidarch/internal/metrics/eventlog"
)

func TestDebugHandlerTraces(t *testing.T) {
	col := New("server")
	id := col.NewTraceID()
	sp := col.Trace(id).Start("handle:start")
	sp.Ctx().Start("run").End()
	sp.End()
	col.Finish(id)

	h := NewDebugHandler(nil, nil, nil, col)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", rec.Code)
	}
	n, err := ValidateChrome(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("invalid Chrome JSON: %v", err)
	}
	if n < 2 {
		t.Fatalf("want >=2 spans, got %d", n)
	}
}

func TestDebugHandlerTraceByID(t *testing.T) {
	col := New("server")
	id := col.NewTraceID()
	col.Trace(id).Start("handle:status").End()
	col.Finish(id)

	h := NewDebugHandler(nil, nil, nil, col)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=zz", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+hexID(id), nil))
	if n, err := ValidateChrome(rec.Body.Bytes()); err != nil || n != 1 {
		t.Fatalf("fetch by id: %d spans, err %v", n, err)
	}

	// TakeTrace semantics: the fetch removed it from the ring.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+hexID(id), nil))
	if n, _ := ValidateChrome(rec.Body.Bytes()); n != 0 {
		t.Fatalf("trace still present after take: %d spans", n)
	}
}

func hexID(id uint64) string {
	const digits = "0123456789abcdef"
	b := make([]byte, 0, 16)
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, digits[(id>>uint(shift))&0xf])
	}
	return string(b)
}

func TestDebugHandlerEvents(t *testing.T) {
	ev := eventlog.New(16)
	ev.Infof("first", "k", "1")
	ev.Infof("second", "k", "2")
	ev.Warnf("third", "k", "3")

	h := NewDebugHandler(nil, nil, ev)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d: %q", len(lines), lines)
	}
	// Newest first.
	if !strings.Contains(lines[0], "third") || !strings.Contains(lines[2], "first") {
		t.Fatalf("events not newest-first: %q", lines)
	}

	// n=1 keeps only the newest.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?n=1", nil))
	lines = strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "third") {
		t.Fatalf("n=1: got %q", lines)
	}

	// Bad n rejected.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?n=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", rec.Code)
	}
}

func TestDebugHandlerFlightRecord(t *testing.T) {
	col := New("server")
	id := col.NewTraceID()
	col.Trace(id).Start("handle:start").End()
	col.Finish(id)
	ev := eventlog.New(8)
	ev.Errorf("board fault", "board", "1")
	fr := &FlightRecorder{Collectors: []*Collector{col}, Events: ev, Dir: t.TempDir()}

	h := NewDebugHandler(nil, fr, ev, col)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecord", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/flightrecord status %d", rec.Code)
	}
	var dump FlightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if len(dump.Traces) != 1 || len(dump.Events) != 1 {
		t.Fatalf("dump traces=%d events=%d, want 1/1", len(dump.Traces), len(dump.Events))
	}
	if rec.Header().Get("X-Flight-Dump") == "" {
		t.Fatalf("no dump file written")
	}
}

func TestDebugHandlerFallthrough(t *testing.T) {
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})
	h := NewDebugHandler(next, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("fallthrough status %d", rec.Code)
	}
}
