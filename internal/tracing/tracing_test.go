package tracing

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/metrics/eventlog"
)

func TestSpanTree(t *testing.T) {
	c := New("test")
	id := c.NewTraceID()
	if id == 0 {
		t.Fatal("NewTraceID returned 0")
	}
	tc := c.Trace(id)
	root := tc.Start("exchange")
	child := root.Ctx().Start("retry").WithAttr("attempt", "1")
	child.EndAttrs(A("why", "timeout"))
	root.End()

	tds := c.TakeTrace(id)
	if len(tds) != 1 {
		t.Fatalf("TakeTrace: got %d traces, want 1", len(tds))
	}
	spans := tds[0].Spans
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Spans record at End time: child first.
	if spans[0].Name != "retry" || spans[1].Name != "exchange" {
		t.Fatalf("span order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent=%d, want root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Trace != id || spans[1].Trace != id {
		t.Fatal("trace id not stamped on spans")
	}
	if len(spans[0].Attrs) != 2 {
		t.Fatalf("child attrs = %v, want attempt+why", spans[0].Attrs)
	}
	if spans[0].Source != "test" {
		t.Fatalf("source = %q", spans[0].Source)
	}
}

func TestDisabledIsNoOpAndAllocFree(t *testing.T) {
	var c *Collector // nil = disabled
	tc := c.Trace(42)
	if tc.On() {
		t.Fatal("nil collector produced an On() context")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tc.Start("exchange")
		child := sp.Ctx().Start("retry")
		if child.On() {
			child = child.WithAttr("k", "v")
		}
		child.End()
		sp.End()
		tc.Event("fault")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates: %.1f allocs/op", allocs)
	}
	// Zero-id trace on a live collector is also disabled.
	live := New("x")
	if live.Trace(0).On() {
		t.Fatal("trace id 0 produced an On() context")
	}
}

func TestSpanBufferBound(t *testing.T) {
	c := New("test")
	c.MaxSpans = 4
	id := c.NewTraceID()
	tc := c.Trace(id)
	for i := 0; i < 10; i++ {
		tc.Start("s").End()
	}
	tds := c.TakeTrace(id)
	if len(tds) != 1 {
		t.Fatalf("got %d traces", len(tds))
	}
	if len(tds[0].Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(tds[0].Spans))
	}
	if tds[0].Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", tds[0].Dropped)
	}
	if c.SpansDropped() != 6 {
		t.Fatalf("collector SpansDropped = %d, want 6", c.SpansDropped())
	}
}

func TestActiveCapRetiresStalest(t *testing.T) {
	c := New("test")
	c.MaxActive = 2
	c.HarvestIdle = time.Hour // disable lazy harvest
	a, b, d := c.NewTraceID(), c.NewTraceID(), c.NewTraceID()
	c.Trace(a).Start("a").End()
	time.Sleep(2 * time.Millisecond)
	c.Trace(b).Start("b").End()
	time.Sleep(2 * time.Millisecond)
	c.Trace(d).Start("d").End() // evicts a (stalest)
	if got := c.ActiveCount(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	done := c.Completed()
	if len(done) != 1 || done[0].ID != a {
		t.Fatalf("completed = %+v, want trace %d retired", done, a)
	}
}

func TestDoneRingBound(t *testing.T) {
	c := New("test")
	c.MaxDone = 3
	var ids []uint64
	for i := 0; i < 5; i++ {
		id := c.NewTraceID()
		ids = append(ids, id)
		c.Trace(id).Start("s").End()
		c.Finish(id)
	}
	done := c.Completed()
	if len(done) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(done))
	}
	// Oldest first: ids[2], ids[3], ids[4].
	for i, td := range done {
		if td.ID != ids[2+i] {
			t.Fatalf("ring[%d] = trace %d, want %d", i, td.ID, ids[2+i])
		}
	}
}

func TestLazyHarvest(t *testing.T) {
	c := New("test")
	c.HarvestIdle = 5 * time.Millisecond
	id := c.NewTraceID()
	c.Trace(id).Start("s").End()
	if got := len(c.Completed()); got != 0 {
		t.Fatalf("harvested %d traces before idle window", got)
	}
	time.Sleep(15 * time.Millisecond)
	if got := len(c.Completed()); got != 1 {
		t.Fatalf("harvested %d traces after idle window, want 1", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := New("test")
	id := c.NewTraceID()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := c.Trace(id)
			for i := 0; i < 50; i++ {
				sp := tc.Start("op")
				sp.Ctx().Event("tick")
				sp.End()
			}
		}()
	}
	wg.Wait()
	tds := c.TakeTrace(id)
	if len(tds) != 1 {
		t.Fatalf("got %d traces", len(tds))
	}
	if got := len(tds[0].Spans) + int(tds[0].Dropped); got != 800 {
		t.Fatalf("spans+dropped = %d, want 800", got)
	}
}

func TestChromeJSONExportAndValidate(t *testing.T) {
	cli := New("client")
	srv := New("server")
	id := cli.NewTraceID()

	root := cli.Trace(id).Start("run")
	time.Sleep(time.Millisecond)
	q := srv.Trace(id).Start("queue")
	q.End()
	srv.Trace(id).Start("slice").WithAttr("board", "1").End()
	root.End()

	data, err := ChromeJSON(cli.TakeTrace(id), srv.TakeTrace(id))
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChrome(data)
	if err != nil {
		t.Fatalf("ValidateChrome: %v\n%s", err, data)
	}
	if n != 3 {
		t.Fatalf("validated %d spans, want 3", n)
	}
	// Both sources present as named processes.
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Args["name"]] = true
		}
	}
	if !procs["client"] || !procs["server"] {
		t.Fatalf("process metadata = %v, want client+server", procs)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	if _, err := ValidateChrome([]byte("not json")); err == nil {
		t.Fatal("garbage validated")
	}
	if _, err := ValidateChrome([]byte(`{"traceEvents":[]}`)); err == nil {
		t.Fatal("empty trace validated")
	}
}

func TestFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	c := New("server")
	ev := eventlog.New(16)
	ev.Errorf("bad frame", "cmd", "start")
	id := c.NewTraceID()
	c.Trace(id).Start("exchange").End()
	c.Finish(id)

	fr := &FlightRecorder{Collectors: []*Collector{c}, Events: ev, Dir: dir, MinInterval: time.Hour}
	path, err := fr.Dump("cmd_error")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("first dump rate-limited")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if d.Reason != "cmd_error" || len(d.Traces) != 1 || d.Traces[0].ID != id {
		t.Fatalf("dump = %+v", d)
	}
	if len(d.Events) != 1 || d.Events[0].Msg != "bad frame" {
		t.Fatalf("dump events = %+v", d.Events)
	}
	if !strings.Contains(filepath.Base(path), "cmd_error") {
		t.Fatalf("dump filename %q lacks reason", path)
	}

	// Second dump inside MinInterval is suppressed.
	p2, err := fr.Dump("cmd_error")
	if err != nil {
		t.Fatal(err)
	}
	if p2 != "" {
		t.Fatalf("rate limit failed: second dump wrote %q", p2)
	}
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", fr.Dumps())
	}
}

func TestNilFlightRecorder(t *testing.T) {
	var fr *FlightRecorder
	if p, err := fr.Dump("x"); err != nil || p != "" {
		t.Fatalf("nil Dump = %q, %v", p, err)
	}
	d := fr.Snapshot("x")
	if d.Reason != "x" {
		t.Fatalf("nil Snapshot = %+v", d)
	}
}
