package tracing

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"time"
)

// chromeEvent is one entry in the Chrome trace-event JSON array
// (chrome://tracing / Perfetto "JSON Array Format"). We emit complete
// events (ph "X") for spans and metadata events (ph "M") to name the
// per-source processes.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"` // microseconds
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeJSON renders completed traces from one or more sources as
// Chrome trace-event JSON. Each distinct span Source becomes its own
// Chrome process (pid) so a merged client+server+chaos export shows
// the hops side by side on one time axis.
func ChromeJSON(traces ...[]TraceData) ([]byte, error) {
	var all []Span
	for _, ts := range traces {
		for _, td := range ts {
			all = append(all, td.Spans...)
		}
	}
	// Stable ordering: by start time, then id — makes the output
	// deterministic and keeps parents before children (a child never
	// starts before its parent).
	sort.SliceStable(all, func(i, j int) bool {
		if !all[i].Start.Equal(all[j].Start) {
			return all[i].Start.Before(all[j].Start)
		}
		return all[i].ID < all[j].ID
	})

	pids := map[string]int{}
	doc := chromeDoc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	pidOf := func(source string) int {
		if source == "" {
			source = "unknown"
		}
		if pid, ok := pids[source]; ok {
			return pid
		}
		pid := len(pids) + 1
		pids[source] = pid
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  pid,
			Args: map[string]string{"name": source},
		})
		return pid
	}

	for _, sp := range all {
		// Span ids are only unique within one collector, and a merged
		// export intentionally mixes sources in one trace — namespace
		// the references by source (parent links never cross sources).
		src := sp.Source
		if src == "" {
			src = "unknown"
		}
		args := map[string]string{
			"trace": fmt.Sprintf("%016x", sp.Trace),
			"span":  src + ":" + strconv.FormatUint(sp.ID, 10),
		}
		if sp.Parent != 0 {
			args["parent"] = src + ":" + strconv.FormatUint(sp.Parent, 10)
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  float64(sp.Dur) / float64(time.Microsecond),
			Pid:  pidOf(sp.Source),
			Tid:  1,
			Args: args,
		}
		if ev.Dur <= 0 {
			// Chrome drops zero-duration complete events; give
			// instantaneous events a visible sliver.
			ev.Dur = 0.001
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	return json.MarshalIndent(doc, "", " ")
}

// ValidateChrome checks that data parses as Chrome trace-event JSON
// and that every span nests inside its parent in time (child start no
// earlier than parent start, within a small clock-read epsilon). It
// returns the number of X (span) events on success.
func ValidateChrome(data []byte) (int, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("chrome trace: %w", err)
	}
	const epsUS = 50.0 // clock reads on different goroutines
	type key struct {
		trace string
		span  string
	}
	starts := map[key]float64{}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		spans++
		starts[key{ev.Args["trace"], ev.Args["span"]}] = ev.Ts
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		parent := ev.Args["parent"]
		if parent == "" {
			continue
		}
		pts, ok := starts[key{ev.Args["trace"], parent}]
		if !ok {
			// Parent span may live in a source that was not merged
			// into this export (e.g. client-only dump); not an error.
			continue
		}
		if ev.Ts+epsUS < pts {
			return 0, fmt.Errorf("chrome trace: span %q (ts=%.1f) starts before its parent span %s (ts=%.1f)",
				ev.Name, ev.Ts, parent, pts)
		}
	}
	if spans == 0 {
		return 0, fmt.Errorf("chrome trace: no span events")
	}
	return spans, nil
}
