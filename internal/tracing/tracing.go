// Package tracing is the platform's request-scoped tracing layer: the
// observability step past counters (metrics) and logs (eventlog) that
// reconstructs WHERE one §2.6 exchange spent its time — client backoff,
// server queue, board actor slice, core run, reconfiguration-cache
// lookup — as a single tree of spans sharing one 64-bit trace id that
// rides the v4 control header across process boundaries.
//
// The design goals, in order:
//
//   - zero cost when disabled: every handle type (Ctx, SpanHandle) is a
//     plain value whose methods no-op on the zero value, so
//     instrumented hot paths pay one nil check and no allocations when
//     no Collector is attached;
//   - lock-cheap when enabled: spans are recorded into a bounded
//     per-trace buffer behind that trace's own mutex; the collector's
//     map lock is taken only to look a trace up or retire it;
//   - bounded everywhere: spans per trace, active traces, and completed
//     traces are all capped, with drops counted rather than silently
//     swallowed — a runaway run can never eat the heap.
//
// A trace's life cycle: spans accumulate while the trace is active;
// the trace completes when explicitly finished (Finish), when fetched
// by id (TakeTrace — the client pulling "its" trace), or lazily when
// it has been idle longer than HarvestIdle at the next export. Completed
// traces sit in a fixed-size ring — the flight recorder's memory.
package tracing

import (
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the collector bounds.
const (
	// DefMaxSpans bounds one trace's span buffer. A long run records
	// one span per actor slice, so the cap is what keeps a
	// billion-cycle run from unbounded growth; extra spans are dropped
	// and counted.
	DefMaxSpans = 512
	// DefMaxActive bounds concurrently active traces; creating one
	// past the cap retires the stalest active trace first.
	DefMaxActive = 128
	// DefMaxDone is the completed-trace ring size — the flight
	// recorder's "last N exchanges".
	DefMaxDone = 64
	// DefHarvestIdle is how long a trace may sit with no new spans
	// before a lazy harvest (export, flight dump) treats it as
	// complete. Multi-exchange traces (one liquidctl invocation) stay
	// active as long as requests keep arriving.
	DefHarvestIdle = 250 * time.Millisecond
)

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A is shorthand for building an Attr.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is one completed, recorded operation within a trace.
type Span struct {
	Name   string        `json:"name"`
	Trace  uint64        `json:"trace"`
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0 = root-level
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`
	// Source labels which component recorded the span ("client",
	// "server", "chaos"); merged exports keep them apart as Chrome
	// processes.
	Source string `json:"source,omitempty"`
}

// TraceData is one completed trace: the bounded span buffer plus how
// many spans the bound dropped.
type TraceData struct {
	ID      uint64    `json:"id"`
	Spans   []Span    `json:"spans"`
	Dropped uint64    `json:"dropped,omitempty"`
	Done    time.Time `json:"done"`
}

// traceBuf is one active trace's recording state.
type traceBuf struct {
	mu      sync.Mutex
	id      uint64
	spans   []Span
	dropped uint64
	last    time.Time // time of the most recent span end (activity)
	born    time.Time
}

// record appends one completed span, enforcing the buffer bound.
func (tb *traceBuf) record(sp Span, maxSpans int) {
	tb.mu.Lock()
	if len(tb.spans) < maxSpans {
		tb.spans = append(tb.spans, sp)
	} else {
		tb.dropped++
	}
	tb.last = time.Now()
	tb.mu.Unlock()
}

// snapshot copies the buffer into an immutable TraceData.
func (tb *traceBuf) snapshot() TraceData {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return TraceData{
		ID:      tb.id,
		Spans:   append([]Span(nil), tb.spans...),
		Dropped: tb.dropped,
		Done:    time.Now(),
	}
}

// Collector owns one component's traces. All methods are safe for
// concurrent use; a nil *Collector is a valid disabled collector
// (every operation no-ops).
type Collector struct {
	source string

	// MaxSpans, MaxActive, MaxDone, HarvestIdle override the Def*
	// bounds when set before use (they are read without locks, so set
	// them at construction time only).
	MaxSpans    int
	MaxActive   int
	MaxDone     int
	HarvestIdle time.Duration

	ids atomic.Uint64 // span-id source; trace ids mix in idSalt

	mu     sync.Mutex
	active map[uint64]*traceBuf
	done   []TraceData // ring, oldest overwritten
	next   int         // ring write index
	wrap   bool        // ring has wrapped (len == MaxDone)

	drops atomic.Uint64 // spans dropped by full trace buffers (aggregate)
}

// idSalt makes trace ids from different processes collide only by
// genuine bad luck: the boot time's nanoseconds fold into the top bits.
var idSalt = uint64(time.Now().UnixNano())<<16 | 0x1

// New returns an enabled collector whose spans carry the given source
// label ("client", "server", "chaos").
func New(source string) *Collector {
	return &Collector{
		source: source,
		active: make(map[uint64]*traceBuf),
	}
}

// Source returns the component label stamped on recorded spans.
func (c *Collector) Source() string {
	if c == nil {
		return ""
	}
	return c.source
}

func (c *Collector) maxSpans() int {
	if c.MaxSpans > 0 {
		return c.MaxSpans
	}
	return DefMaxSpans
}

func (c *Collector) maxActive() int {
	if c.MaxActive > 0 {
		return c.MaxActive
	}
	return DefMaxActive
}

func (c *Collector) maxDone() int {
	if c.MaxDone > 0 {
		return c.MaxDone
	}
	return DefMaxDone
}

func (c *Collector) harvestIdle() time.Duration {
	if c.HarvestIdle > 0 {
		return c.HarvestIdle
	}
	return DefHarvestIdle
}

// NewTraceID mints a fresh 64-bit trace id, unique within this process
// and salted so ids from different processes (client vs server) do not
// trivially collide. Never returns 0 (0 means "no trace" on the wire).
func (c *Collector) NewTraceID() uint64 {
	if c == nil {
		return 0
	}
	id := idSalt + c.ids.Add(1)*2654435761 // Knuth multiplicative spread
	if id == 0 {
		id = 1
	}
	return id
}

// nextSpanID mints a span id (unique within the collector).
func (c *Collector) nextSpanID() uint64 { return c.ids.Add(1) }

// SpansDropped returns how many spans were dropped by full per-trace
// buffers since the collector was built.
func (c *Collector) SpansDropped() uint64 {
	if c == nil {
		return 0
	}
	return c.drops.Load()
}

// Trace returns a recording context for the trace with the given id,
// creating the active trace on first use. id 0 (or a nil collector)
// returns a disabled context.
func (c *Collector) Trace(id uint64) Ctx {
	if c == nil || id == 0 {
		return Ctx{}
	}
	c.mu.Lock()
	tb, ok := c.active[id]
	if !ok {
		if len(c.active) >= c.maxActive() {
			c.retireStalestLocked()
		}
		tb = &traceBuf{id: id, born: time.Now(), last: time.Now()}
		c.active[id] = tb
	}
	c.mu.Unlock()
	return Ctx{c: c, tb: tb, trace: id}
}

// retireStalestLocked force-completes the active trace with the oldest
// activity. Caller holds c.mu.
func (c *Collector) retireStalestLocked() {
	var (
		stalest *traceBuf
		when    time.Time
	)
	for _, tb := range c.active {
		tb.mu.Lock()
		last := tb.last
		tb.mu.Unlock()
		if stalest == nil || last.Before(when) {
			stalest, when = tb, last
		}
	}
	if stalest != nil {
		c.completeLocked(stalest)
	}
}

// completeLocked moves one active trace into the done ring. Caller
// holds c.mu.
func (c *Collector) completeLocked(tb *traceBuf) {
	delete(c.active, tb.id)
	td := tb.snapshot()
	c.drops.Add(td.Dropped)
	if len(c.done) < c.maxDone() {
		c.done = append(c.done, td)
		c.next = len(c.done) % c.maxDone()
		c.wrap = len(c.done) == c.maxDone()
		return
	}
	c.done[c.next] = td
	c.next = (c.next + 1) % len(c.done)
}

// Finish completes the trace with the given id, moving it into the
// done ring. A no-op when the id is not active.
func (c *Collector) Finish(id uint64) {
	if c == nil || id == 0 {
		return
	}
	c.mu.Lock()
	if tb, ok := c.active[id]; ok {
		c.completeLocked(tb)
	}
	c.mu.Unlock()
}

// harvest completes every active trace idle longer than the harvest
// threshold — the lazy completion exports rely on.
func (c *Collector) harvest() {
	if c == nil {
		return
	}
	cutoff := time.Now().Add(-c.harvestIdle())
	c.mu.Lock()
	var stale []*traceBuf
	for _, tb := range c.active {
		tb.mu.Lock()
		idle := tb.last.Before(cutoff)
		tb.mu.Unlock()
		if idle {
			stale = append(stale, tb)
		}
	}
	for _, tb := range stale {
		c.completeLocked(tb)
	}
	c.mu.Unlock()
}

// Completed harvests idle traces and returns the completed-trace ring,
// oldest first.
func (c *Collector) Completed() []TraceData {
	if c == nil {
		return nil
	}
	c.harvest()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TraceData, 0, len(c.done))
	if c.wrap {
		out = append(out, c.done[c.next:]...)
		return append(out, c.done[:c.next]...)
	}
	return append(out, c.done...)
}

// TakeTrace force-completes the trace with the given id and returns
// every completed TraceData carrying that id (a trace interrupted by a
// flight dump can appear as more than one ring entry), newest last.
// Taken entries leave the ring — fetch once and keep the result. This
// is the fetch-by-id path the client uses to pull "its" trace.
func (c *Collector) TakeTrace(id uint64) []TraceData {
	if c == nil || id == 0 {
		return nil
	}
	c.Finish(id)
	c.harvest()
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []TraceData
	if c.wrap {
		all = append(all, c.done[c.next:]...)
		all = append(all, c.done[:c.next]...)
	} else {
		all = append(all, c.done...)
	}
	var out []TraceData
	keep := all[:0]
	for _, td := range all {
		if td.ID == id {
			out = append(out, td)
		} else {
			keep = append(keep, td)
		}
	}
	if len(out) > 0 {
		c.done = keep
		c.next = len(keep) % c.maxDone()
		c.wrap = len(keep) == c.maxDone()
	}
	return out
}

// ActiveCount returns how many traces are currently recording.
func (c *Collector) ActiveCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// Ctx is a recording position within one trace: which collector, which
// trace, and which span new children nest under. The zero value is a
// valid disabled context.
type Ctx struct {
	c      *Collector
	tb     *traceBuf
	trace  uint64
	parent uint64
}

// On reports whether the context records anywhere.
func (x Ctx) On() bool { return x.c != nil }

// TraceID returns the trace id (0 when disabled).
func (x Ctx) TraceID() uint64 { return x.trace }

// Start opens a span named name as a child of the context's current
// span. The returned handle must be closed with End (or EndAttrs); on
// a disabled context both the handle and End are no-ops.
func (x Ctx) Start(name string) SpanHandle {
	if x.c == nil {
		return SpanHandle{}
	}
	return SpanHandle{
		x:     x,
		id:    x.c.nextSpanID(),
		name:  name,
		start: time.Now(),
	}
}

// SpanHandle is one in-flight span. It is a value: copy it freely,
// close it exactly once.
type SpanHandle struct {
	x     Ctx
	id    uint64
	name  string
	start time.Time

	// attrs accumulated before End via WithAttr (small, usually nil).
	attrs []Attr
}

// On reports whether the span records anywhere.
func (s SpanHandle) On() bool { return s.x.c != nil }

// Ctx returns a child context: spans started from it nest under this
// span.
func (s SpanHandle) Ctx() Ctx {
	if s.x.c == nil {
		return Ctx{}
	}
	x := s.x
	x.parent = s.id
	return x
}

// WithAttr returns the handle with an annotation attached; the attr is
// recorded when the span ends. No-op (and alloc-free) when disabled.
func (s SpanHandle) WithAttr(key, value string) SpanHandle {
	if s.x.c == nil {
		return s
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	return s
}

// End closes the span, recording it into the trace buffer.
func (s SpanHandle) End() {
	if s.x.c == nil {
		return
	}
	s.endAt(time.Now(), nil)
}

// EndAttrs closes the span with extra annotations. Call only under an
// On() guard on alloc-sensitive paths: building the variadic slice
// costs an allocation even when tracing is off.
func (s SpanHandle) EndAttrs(attrs ...Attr) {
	if s.x.c == nil {
		return
	}
	s.endAt(time.Now(), attrs)
}

func (s SpanHandle) endAt(now time.Time, extra []Attr) {
	attrs := s.attrs
	if len(extra) > 0 {
		attrs = append(attrs, extra...)
	}
	s.x.tb.record(Span{
		Name:   s.name,
		Trace:  s.x.trace,
		ID:     s.id,
		Parent: s.x.parent,
		Start:  s.start,
		Dur:    now.Sub(s.start),
		Attrs:  attrs,
		Source: s.x.c.source,
	}, s.x.c.maxSpans())
}

// Event records an instantaneous (zero-duration) span — the shape the
// chaos layer uses for fault decisions.
func (x Ctx) Event(name string, attrs ...Attr) {
	if x.c == nil {
		return
	}
	now := time.Now()
	x.tb.record(Span{
		Name:   name,
		Trace:  x.trace,
		ID:     x.c.nextSpanID(),
		Parent: x.parent,
		Start:  now,
		Attrs:  attrs,
		Source: x.c.source,
	}, x.c.maxSpans())
}
