package tracing

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"liquidarch/internal/metrics/eventlog"
)

// FlightRecorder pairs the collector's completed-trace ring with the
// eventlog tail: the "what just happened" black box. Snapshot renders
// the combined state; Dump writes it to a timestamped file. Dumps are
// rate-limited so a CmdError storm produces one file, not hundreds.
//
// A nil *FlightRecorder is a valid disabled recorder.
type FlightRecorder struct {
	// Collectors whose completed traces enter the dump (typically the
	// node's single shared collector; tests merge several).
	Collectors []*Collector
	// Events, when non-nil, contributes its tail to the dump.
	Events *eventlog.Log
	// Dir is where Dump writes files ("." when empty).
	Dir string
	// MinInterval rate-limits Dump (default 2s; Snapshot is never
	// limited).
	MinInterval time.Duration
	// MaxEvents bounds the eventlog tail in a snapshot (default 256).
	MaxEvents int

	mu       sync.Mutex
	lastDump time.Time
	dumps    uint64
}

// FlightDump is the JSON document a flight-recorder snapshot produces.
type FlightDump struct {
	Time   time.Time        `json:"time"`
	Reason string           `json:"reason"`
	Traces []TraceData      `json:"traces"`
	Events []eventlog.Event `json:"events,omitempty"`
}

// Snapshot harvests idle traces and returns the current flight state.
func (fr *FlightRecorder) Snapshot(reason string) FlightDump {
	if fr == nil {
		return FlightDump{Time: time.Now(), Reason: reason}
	}
	d := FlightDump{Time: time.Now(), Reason: reason}
	for _, c := range fr.Collectors {
		d.Traces = append(d.Traces, c.Completed()...)
	}
	if fr.Events != nil {
		evs := fr.Events.Events()
		maxEv := fr.MaxEvents
		if maxEv <= 0 {
			maxEv = 256
		}
		if len(evs) > maxEv {
			evs = evs[len(evs)-maxEv:]
		}
		d.Events = evs
	}
	return d
}

// SnapshotJSON renders Snapshot as indented JSON.
func (fr *FlightRecorder) SnapshotJSON(reason string) ([]byte, error) {
	return json.MarshalIndent(fr.Snapshot(reason), "", "  ")
}

// Dump writes a snapshot to a timestamped file in Dir and returns its
// path. Returns ("", nil) when rate-limited or when the recorder is
// nil.
func (fr *FlightRecorder) Dump(reason string) (string, error) {
	if fr == nil {
		return "", nil
	}
	fr.mu.Lock()
	min := fr.MinInterval
	if min <= 0 {
		min = 2 * time.Second
	}
	now := time.Now()
	if !fr.lastDump.IsZero() && now.Sub(fr.lastDump) < min {
		fr.mu.Unlock()
		return "", nil
	}
	fr.lastDump = now
	fr.dumps++
	n := fr.dumps
	fr.mu.Unlock()

	data, err := fr.SnapshotJSON(reason)
	if err != nil {
		return "", err
	}
	dir := fr.Dir
	if dir == "" {
		dir = "."
	}
	name := fmt.Sprintf("flightrec-%s-%d-%s.json",
		now.Format("20060102T150405.000"), n, sanitizeReason(reason))
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Dumps returns how many dump files the recorder has written.
func (fr *FlightRecorder) Dumps() uint64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.dumps
}

func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && len(out) < 24; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
