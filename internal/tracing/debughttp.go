package tracing

import (
	"fmt"
	"net/http"
	"strconv"

	"liquidarch/internal/metrics/eventlog"
)

// NewDebugHandler layers the exchange-tracing debug endpoints over an
// existing handler (typically the metrics mux), so one -metrics-addr
// listener serves both:
//
//	/debug/traces         all completed traces as Chrome trace-event
//	                      JSON (load in chrome://tracing or Perfetto)
//	/debug/traces?id=HEX  one trace by hex id, removed from the ring
//	/debug/events?n=K     newest-first tail of the event log, one
//	                      logfmt line per event (default 100)
//	/debug/flightrecord   flight-recorder snapshot as JSON; also
//	                      writes a dump file (path in X-Flight-Dump)
//
// Every other path falls through to next; a nil next serves 404 there.
// fr and ev may be nil (the endpoints degrade to empty documents).
func NewDebugHandler(next http.Handler, fr *FlightRecorder, ev *eventlog.Log, cols ...*Collector) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		var groups [][]TraceData
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 16, 64)
			if err != nil {
				http.Error(w, "bad trace id (want hex): "+err.Error(), http.StatusBadRequest)
				return
			}
			for _, c := range cols {
				groups = append(groups, c.TakeTrace(id))
			}
		} else {
			for _, c := range cols {
				groups = append(groups, c.Completed())
			}
		}
		data, err := ChromeJSON(groups...)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})

	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad n (want positive integer)", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		evs := ev.Events() // oldest first; nil log → none
		for i := len(evs) - 1; i >= 0 && len(evs)-1-i < n; i-- {
			fmt.Fprintln(w, evs[i].String())
		}
	})

	mux.HandleFunc("/debug/flightrecord", func(w http.ResponseWriter, _ *http.Request) {
		data, err := fr.SnapshotJSON("http")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if path, err := fr.Dump("http"); err == nil && path != "" {
			w.Header().Set("X-Flight-Dump", path)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	})

	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}
