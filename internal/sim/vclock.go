package sim

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// VirtualClock is a deterministic Clock. Time stands still while any
// goroutine is doing work; a background stepper advances it to the
// earliest pending event only once the world has been quiescent for a
// couple of polling grains (no clock or network activity observed).
// Firing events (timer expiries, packet deliveries, sleep wakeups)
// counts as activity, so cascades settle before the next step.
//
// The epoch is fixed so that virtual timestamps are reproducible
// across runs of the same seed.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	events eventHeap
	seq    uint64

	// activity is bumped by every observable interaction with the
	// clock or the attached Network; the stepper only advances time
	// after it has seen the counter hold still.
	activity atomic.Uint64

	stepping atomic.Bool
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// virtualEpoch is the fixed starting instant of every VirtualClock.
var virtualEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

type event struct {
	when     time.Time
	seq      uint64 // registration order; ties fire in this order
	fire     func(now time.Time)
	canceled bool
	index    int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// NewVirtualClock returns a stopped virtual clock at the fixed epoch.
// Call Start to launch the quiescence stepper (tests that drive time
// by hand use Advance instead).
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: virtualEpoch}
}

// touch records activity, delaying the next quiescence step.
func (c *VirtualClock) touch() { c.activity.Add(1) }

func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *VirtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }
func (c *VirtualClock) Until(t time.Time) time.Duration { return t.Sub(c.Now()) }

// schedule registers fn to run when virtual time reaches now+d.
// Non-positive delays fire synchronously.
func (c *VirtualClock) schedule(d time.Duration, fire func(now time.Time)) *event {
	if d <= 0 {
		c.touch()
		fire(c.Now())
		return nil
	}
	c.mu.Lock()
	c.seq++
	ev := &event{when: c.now.Add(d), seq: c.seq, fire: fire}
	heap.Push(&c.events, ev)
	c.mu.Unlock()
	c.touch()
	return ev
}

// cancel marks ev dead; it reports whether ev had not yet fired.
func (c *VirtualClock) cancel(ev *event) bool {
	if ev == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch()
	if ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	return true
}

func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		c.touch()
		return
	}
	done := make(chan struct{})
	c.schedule(d, func(time.Time) { close(done) })
	<-done
}

func (c *VirtualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.schedule(d, func(now time.Time) { ch <- now })
	return ch
}

func (c *VirtualClock) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	var mu sync.Mutex
	var ev *event
	arm := func(d time.Duration) {
		ev = c.schedule(d, func(now time.Time) {
			select {
			case ch <- now:
			default:
			}
		})
	}
	mu.Lock()
	arm(d)
	mu.Unlock()
	return &Timer{
		C: ch,
		stop: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return c.cancel(ev)
		},
		reset: func(d time.Duration) bool {
			mu.Lock()
			defer mu.Unlock()
			active := c.cancel(ev)
			arm(d)
			return active
		},
	}
}

func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) *Timer {
	var mu sync.Mutex
	var ev *event
	arm := func(d time.Duration) {
		ev = c.schedule(d, func(time.Time) { fn() })
	}
	mu.Lock()
	arm(d)
	mu.Unlock()
	return &Timer{
		C: nil,
		stop: func() bool {
			mu.Lock()
			defer mu.Unlock()
			return c.cancel(ev)
		},
		reset: func(d time.Duration) bool {
			mu.Lock()
			defer mu.Unlock()
			active := c.cancel(ev)
			arm(d)
			return active
		},
	}
}

// Advance moves virtual time forward by d, firing every due event in
// (when, registration) order. It is the manual alternative to the
// stepper for tests that own the timeline.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.advanceLocked(target)
	c.now = target
	c.mu.Unlock()
	c.touch()
}

// advanceLocked fires all events with when <= target, releasing the
// lock around each fire so callbacks can re-enter the clock.
func (c *VirtualClock) advanceLocked(target time.Time) {
	for len(c.events) > 0 {
		next := c.events[0]
		if next.canceled {
			heap.Pop(&c.events)
			continue
		}
		if next.when.After(target) {
			return
		}
		heap.Pop(&c.events)
		next.index = -1
		if c.now.Before(next.when) {
			c.now = next.when
		}
		now := c.now
		c.mu.Unlock()
		next.fire(now)
		c.mu.Lock()
	}
}

// step advances time to the earliest pending event and fires every
// event at that instant. It reports whether anything fired.
func (c *VirtualClock) step() bool {
	c.mu.Lock()
	// Skip over canceled heads.
	for len(c.events) > 0 && c.events[0].canceled {
		heap.Pop(&c.events)
	}
	if len(c.events) == 0 {
		c.mu.Unlock()
		return false
	}
	target := c.events[0].when
	c.advanceLocked(target)
	c.mu.Unlock()
	c.touch()
	return true
}

// Start launches the quiescence stepper: a real-time poller that
// advances the virtual clock to the next event once the activity
// counter has held still for idleChecks consecutive grains.
func (c *VirtualClock) Start() *VirtualClock {
	if !c.stepping.CompareAndSwap(false, true) {
		return c
	}
	c.stopCh = make(chan struct{})
	c.doneCh = make(chan struct{})
	go c.run()
	return c
}

// grain is the real-time polling interval of the stepper; idleChecks
// is how many consecutive unchanged-activity observations count as
// quiescence. Both trade determinism-confidence against wall speed.
const (
	grain      = 100 * time.Microsecond
	idleChecks = 2
)

func (c *VirtualClock) run() {
	defer close(c.doneCh)
	idle := 0
	last := c.activity.Load()
	for {
		select {
		case <-c.stopCh:
			return
		default:
		}
		// Let runnable goroutines proceed before sampling.
		for i := 0; i < 4; i++ {
			runtime.Gosched()
		}
		time.Sleep(grain)
		cur := c.activity.Load()
		if cur != last {
			last = cur
			idle = 0
			continue
		}
		idle++
		if idle < idleChecks {
			continue
		}
		idle = 0
		if c.step() {
			last = c.activity.Load()
		}
	}
}

// Stop halts the stepper. Pending events remain registered; Start may
// be called again.
func (c *VirtualClock) Stop() {
	if !c.stepping.CompareAndSwap(true, false) {
		return
	}
	close(c.stopCh)
	<-c.doneCh
}
