// Package sim provides the deterministic simulation substrate for the
// control plane: an injectable clock (real or virtual) and an in-memory
// packet network with seedable per-link faults. Production code receives
// time through sim.Clock so that tests can run whole chaos scenarios on
// a virtual timeline, advancing it only when every goroutine is idle
// (quiescence-stepped delivery).
package sim

import "time"

// Clock is the time source injected into the control plane. The zero
// policy everywhere is "nil means Real": packages default to the real
// clock so production wiring does not change.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	Until(t time.Time) time.Duration
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
	NewTimer(d time.Duration) *Timer
	AfterFunc(d time.Duration, fn func()) *Timer
}

// Timer mirrors time.Timer for both clock implementations. After a
// successful Stop, C never receives.
type Timer struct {
	C     <-chan time.Time
	stop  func() bool
	reset func(d time.Duration) bool
}

// Stop prevents the timer from firing. It reports whether it stopped
// the timer before it fired.
func (t *Timer) Stop() bool { return t.stop() }

// Reset re-arms the timer to fire after d. It reports whether the timer
// had been active.
func (t *Timer) Reset(d time.Duration) bool { return t.reset(d) }

// Real is the wall-clock implementation backed by package time.
var Real Clock = realClock{}

// Or returns c if non-nil, else Real. It is the canonical default at
// every injection point.
func Or(c Clock) Clock {
	if c == nil {
		return Real
	}
	return c
}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (realClock) Until(t time.Time) time.Duration        { return time.Until(t) }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (realClock) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, stop: t.Stop, reset: t.Reset}
}

func (realClock) AfterFunc(d time.Duration, fn func()) *Timer {
	t := time.AfterFunc(d, fn)
	return &Timer{C: t.C, stop: t.Stop, reset: t.Reset}
}
