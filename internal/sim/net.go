package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"net/netip"
	"os"
	"sync"
	"time"
)

// LinkParams are the seedable fault characteristics of one directed
// link. Probabilities are in [0,1); Latency/Jitter are virtual-time
// delays applied to every delivered datagram.
type LinkParams struct {
	Drop    float64
	Dup     float64
	Reorder float64
	Latency time.Duration
	Jitter  time.Duration
	// DupDelay is extra latency added to the duplicated copy of a
	// datagram, making the duplicate arrive *late* — after the original
	// exchange has long completed. Late duplicates are exactly what the
	// server's dedup window exists for: a stale replayed request must be
	// re-acked from the window, never re-executed.
	DupDelay time.Duration
}

// LinkStats counts what a directed link actually did to traffic.
type LinkStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Duped     uint64
	Reordered uint64
}

// Network is an in-memory datagram fabric. Endpoints are addressed by
// real *net.UDPAddr values (10.77.0.0/16) so code that inspects peer
// addresses works unchanged. Per-link fault RNGs are derived from the
// network seed and the link's address pair, making the fault schedule
// a pure function of (seed, per-link packet order).
type Network struct {
	clk  *VirtualClock
	seed int64

	mu       sync.Mutex
	eps      map[string]*PacketConn
	links    map[string]*link
	defaults LinkParams
	nextHost uint32
}

type link struct {
	params LinkParams
	rng    *rand.Rand
	held   []heldPkt // packets delayed by a reorder decision
	stats  LinkStats
}

type heldPkt struct {
	payload []byte
	from    *net.UDPAddr
	to      string
}

// NewNetwork creates a fabric on clk with the given fault seed.
func NewNetwork(clk *VirtualClock, seed int64) *Network {
	return &Network{
		clk:   clk,
		seed:  seed,
		eps:   make(map[string]*PacketConn),
		links: make(map[string]*link),
	}
}

// SetDefaultLink sets the fault params applied to links that have no
// explicit SetLink override. It affects links not yet used.
func (n *Network) SetDefaultLink(p LinkParams) {
	n.mu.Lock()
	n.defaults = p
	n.mu.Unlock()
}

// SetLink overrides the fault params of the directed link src -> dst.
func (n *Network) SetLink(src, dst net.Addr, p LinkParams) {
	key := src.String() + ">" + dst.String()
	n.mu.Lock()
	l := n.linkLocked(key)
	l.params = p
	n.mu.Unlock()
}

// LinkStats returns a copy of the directed link's fault counters.
func (n *Network) LinkStats(src, dst net.Addr) LinkStats {
	key := src.String() + ">" + dst.String()
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[key]; ok {
		return l.stats
	}
	return LinkStats{}
}

func (n *Network) linkLocked(key string) *link {
	l, ok := n.links[key]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(key))
		l = &link{
			params: n.defaults,
			rng:    rand.New(rand.NewSource(n.seed ^ int64(h.Sum64()))),
		}
		n.links[key] = l
	}
	return l
}

// Listen binds a PacketConn at addr ("ip:port"); an empty addr
// auto-allocates a unique 10.77.x.x address.
func (n *Network) Listen(addr string) (*PacketConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var ua *net.UDPAddr
	if addr == "" {
		n.nextHost++
		h := n.nextHost
		ua = &net.UDPAddr{
			IP:   net.IPv4(10, 77, byte(h>>8), byte(h)),
			Port: 40000 + int(h%20000),
		}
	} else {
		ap, err := netip.ParseAddrPort(addr)
		if err != nil {
			return nil, fmt.Errorf("sim: bad address %q: %w", addr, err)
		}
		ua = net.UDPAddrFromAddrPort(ap)
	}
	key := ua.String()
	if _, busy := n.eps[key]; busy {
		return nil, fmt.Errorf("sim: address %s already bound", key)
	}
	pc := &PacketConn{net: n, clk: n.clk, laddr: ua}
	pc.cond = sync.NewCond(&pc.mu)
	n.eps[key] = pc
	return pc, nil
}

// Dial binds an auto-allocated endpoint connected to remote, returning
// a stream-style Conn usable as the client transport.
func (n *Network) Dial(remote net.Addr) (*Conn, error) {
	ra, ok := remote.(*net.UDPAddr)
	if !ok {
		return nil, fmt.Errorf("sim: dial needs *net.UDPAddr, got %T", remote)
	}
	pc, err := n.Listen("")
	if err != nil {
		return nil, err
	}
	return &Conn{pc: pc, raddr: ra, rkey: ra.String()}, nil
}

// send pushes payload across the src -> dst link, applying the link's
// fault schedule. Delivery happens through the virtual clock so
// latency composes with everything else on the timeline.
func (n *Network) send(src *net.UDPAddr, dst string, payload []byte) {
	buf := make([]byte, len(payload))
	copy(buf, payload)

	n.mu.Lock()
	l := n.linkLocked(src.String() + ">" + dst)
	l.stats.Sent++
	if p := l.params.Drop; p > 0 && l.rng.Float64() < p {
		l.stats.Dropped++
		n.mu.Unlock()
		n.clk.touch()
		return
	}
	duped := false
	if p := l.params.Dup; p > 0 && l.rng.Float64() < p {
		duped = true
		l.stats.Duped++
	}
	var out []heldPkt
	if p := l.params.Reorder; p > 0 && l.rng.Float64() < p {
		// Hold this datagram; it rides behind the next one on the link.
		l.held = append(l.held, heldPkt{payload: buf, from: src, to: dst})
		l.stats.Reordered++
		n.mu.Unlock()
		n.clk.touch()
		return
	}
	out = append(out, heldPkt{payload: buf, from: src, to: dst})
	out = append(out, l.held...)
	l.held = nil
	delay := l.params.Latency
	if l.params.Jitter > 0 {
		delay += time.Duration(l.rng.Int63n(int64(l.params.Jitter)))
	}
	dupDelay := delay + l.params.DupDelay
	n.mu.Unlock()

	for _, pkt := range out {
		pkt := pkt
		if delay <= 0 {
			n.deliver(pkt)
			continue
		}
		n.clk.AfterFunc(delay, func() { n.deliver(pkt) })
	}
	if duped {
		dup := heldPkt{payload: buf, from: src, to: dst}
		if dupDelay <= 0 {
			n.deliver(dup)
		} else {
			n.clk.AfterFunc(dupDelay, func() { n.deliver(dup) })
		}
	}
	n.clk.touch()
}

func (n *Network) deliver(pkt heldPkt) {
	n.mu.Lock()
	ep := n.eps[pkt.to]
	if l, ok := n.links[pkt.from.String()+">"+pkt.to]; ok {
		l.stats.Delivered++
	}
	n.mu.Unlock()
	if ep == nil {
		return // destination closed or never bound: datagram vanishes
	}
	ep.enqueue(pkt.payload, pkt.from)
	n.clk.touch()
}

func (n *Network) unbind(key string) {
	n.mu.Lock()
	delete(n.eps, key)
	n.mu.Unlock()
}

// timeoutError satisfies net.Error the same way UDP read deadlines do.
type timeoutError struct{}

func (timeoutError) Error() string   { return "sim: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var errTimeout = &net.OpError{Op: "read", Net: "sim", Err: timeoutError{}}

type inPkt struct {
	payload []byte
	from    *net.UDPAddr
}

// PacketConn is a simulated net.PacketConn bound to the fabric.
type PacketConn struct {
	net   *Network
	clk   *VirtualClock
	laddr *net.UDPAddr

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []inPkt
	deadline time.Time
	closed   bool
}

var _ net.PacketConn = (*PacketConn)(nil)

func (c *PacketConn) enqueue(payload []byte, from *net.UDPAddr) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.queue = append(c.queue, inPkt{payload: payload, from: from})
	c.cond.Broadcast()
	c.mu.Unlock()
}

// ReadFrom blocks on the simulated timeline until a datagram arrives,
// the read deadline passes (virtual time), or the conn closes.
func (c *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return 0, nil, net.ErrClosed
		}
		if len(c.queue) > 0 {
			pkt := c.queue[0]
			c.queue = c.queue[1:]
			n := copy(p, pkt.payload)
			c.clk.touch()
			return n, pkt.from, nil
		}
		if !c.deadline.IsZero() {
			d := c.clk.Until(c.deadline)
			if d <= 0 {
				return 0, nil, errTimeout
			}
			// Arm a wakeup at the deadline so the stepper can reach it.
			c.clk.schedule(d, func(time.Time) {
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			})
		}
		c.cond.Wait()
	}
}

func (c *PacketConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return 0, net.ErrClosed
	}
	c.net.send(c.laddr, addr.String(), p)
	return len(p), nil
}

func (c *PacketConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.net.unbind(c.laddr.String())
	c.clk.touch()
	return nil
}

func (c *PacketConn) LocalAddr() net.Addr { return c.laddr }

func (c *PacketConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

func (c *PacketConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.cond.Broadcast()
	c.mu.Unlock()
	c.clk.touch()
	return nil
}

func (c *PacketConn) SetWriteDeadline(t time.Time) error { return nil }

// Conn is a connected view of a PacketConn: reads filter to the remote
// peer, writes go to it. It satisfies the client's transport interface.
type Conn struct {
	pc    *PacketConn
	raddr *net.UDPAddr
	rkey  string
}

// Read returns the next datagram from the connected peer, discarding
// traffic from anyone else (connected-UDP semantics).
func (c *Conn) Read(p []byte) (int, error) {
	for {
		n, from, err := c.pc.ReadFrom(p)
		if err != nil {
			return 0, err
		}
		if from.String() == c.rkey {
			return n, nil
		}
	}
}

func (c *Conn) Write(p []byte) (int, error) { return c.pc.WriteTo(p, c.raddr) }

func (c *Conn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }

func (c *Conn) Close() error { return c.pc.Close() }

func (c *Conn) LocalAddr() net.Addr  { return c.pc.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.raddr }

// World bundles a started virtual clock and a fabric on it — the
// standard fixture for simulated tests.
type World struct {
	Clock *VirtualClock
	Net   *Network
}

// NewWorld returns a running simulation world seeded for fault
// determinism.
func NewWorld(seed int64) *World {
	clk := NewVirtualClock()
	clk.Start()
	return &World{Clock: clk, Net: NewNetwork(clk, seed)}
}

// Close stops the clock stepper. Endpoints left open stop making
// progress; close servers and clients first.
func (w *World) Close() { w.Clock.Stop() }

// Debugf prints when LIQUID_SIM_DEBUG is set; handy when bisecting a
// divergent seed.
func Debugf(format string, args ...any) {
	if os.Getenv("LIQUID_SIM_DEBUG") == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "sim: "+format+"\n", args...)
}
