package modeltest

import (
	"flag"
	"os"
	"strconv"
	"testing"
	"time"
)

// seedFlag replays one model run:
//
//	go test ./internal/sim/modeltest -run TestModelReplay -args -seed=N
var seedFlag = flag.Int64("seed", 0, "model seed to replay (TestModelReplay)")

// smokeSeeds is how many pinned seeds TestModelSmoke sweeps. The CI
// sim-smoke target raises it via LIQUID_SIM_SEEDS (≥100); plain `go
// test` keeps a lighter default, `-short` lighter still.
func smokeSeeds(t *testing.T) int {
	if v := os.Getenv("LIQUID_SIM_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad LIQUID_SIM_SEEDS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 6
	}
	return 20
}

// TestModelSmoke sweeps pinned seeds 1..N: every randomized cluster
// run — lossy links, mixed boards, mixed wire revisions — must match
// the sequential reference model on every observable.
func TestModelSmoke(t *testing.T) {
	n := smokeSeeds(t)
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			if err := Run(Config{Seed: seed}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestModelReconfigIdleMix sweeps pinned seeds over the
// reconfiguration-plus-idle op mix on rev-6 clients across lossy
// links: budget-length poll-loop idles (fast-forwarded by the
// simulator, but every virtual cycle must read back as simulated
// time in the run reports) interleaved with cache reconfigurations
// and enough runs and reads to keep memory and configuration state
// moving. Every observable must match the sequential reference.
func TestModelReconfigIdleMix(t *testing.T) {
	n := smokeSeeds(t)/2 + 1
	for seed := int64(1); seed <= int64(n); seed++ {
		seed := seed
		t.Run(strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			if err := Run(Config{Seed: seed, WireRev: 6, IdleMix: true}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestModelReplay re-executes one seed printed by a failing run.
func TestModelReplay(t *testing.T) {
	if *seedFlag == 0 {
		t.Skip("no -seed given (go test ./internal/sim/modeltest -run TestModelReplay -args -seed=N)")
	}
	t.Logf("replaying model seed %d", *seedFlag)
	if err := Run(Config{Seed: *seedFlag}); err != nil {
		t.Fatal(err)
	}
}

// bugConfig is the fault profile that exposes a missing dedup window:
// duplicated datagrams re-delivered 40 ms late, long after their
// exchange completed — exactly the stale replays the window re-acks.
func bugConfig(seed int64, disabled bool) Config {
	return Config{
		Seed:          seed,
		WireRev:       6,
		Ops:           18,
		LoadHeavy:     true,
		DedupDisabled: disabled,
		Faults: &Faults{
			Dup:      0.35,
			DupDelay: 40 * time.Millisecond,
			Latency:  time.Millisecond,
			Jitter:   500 * time.Microsecond,
		},
	}
}

// TestModelCatchesDedupBug plants the deliberate protocol bug — the
// server skips the at-most-once dedup window, so a stale duplicated
// load chunk re-executes and resets an in-flight load — and proves the
// model harness (a) catches it with a seed, (b) reproduces the catch
// when the seed is replayed, and (c) does not cry wolf when the window
// is in place under the identical fault schedule.
func TestModelCatchesDedupBug(t *testing.T) {
	if testing.Short() {
		t.Skip("bug-hunt sweep is not a -short test")
	}
	var caught int64
	var firstErr error
	for seed := int64(1); seed <= 40; seed++ {
		if err := Run(bugConfig(seed, true)); err != nil {
			caught, firstErr = seed, err
			break
		}
	}
	if caught == 0 {
		t.Fatal("dedup-disabled cluster matched the model over 40 seeds; the injected bug was never caught")
	}
	div, ok := firstErr.(*Divergence)
	if !ok {
		t.Fatalf("caught error is %T, want *Divergence: %v", firstErr, firstErr)
	}
	if div.Seed != caught {
		t.Errorf("divergence reports seed %d, want %d", div.Seed, caught)
	}
	t.Logf("injected bug caught at seed %d:\n%v", caught, firstErr)

	// (b) The catch replays: the same seed diverges again.
	if err := Run(bugConfig(caught, true)); err == nil {
		t.Errorf("seed %d did not reproduce the divergence on replay", caught)
	}

	// (c) With the dedup window in place, the same seed and fault
	// schedule converge: the divergence is the bug, not the harness.
	if err := Run(bugConfig(caught, false)); err != nil {
		t.Errorf("seed %d diverges even with dedup enabled: %v", caught, err)
	}
}
