// Package modeltest is the model-based cluster test runner: it drives
// a randomized operation sequence — loads (windowed and legacy
// stop-and-wait), starts, waits, memory traffic, reconfigurations,
// prewarm sweeps, across boards and client wire revisions — against a
// simulated multi-board node behind the in-memory fault fabric, and
// checks every observable against a sequential reference model (the
// same board logic driven directly, with no server, network, or
// faults in between). The network may drop, duplicate, delay, and
// reorder; the *observables* must come out identical. A divergence
// reports the seed and full operation trace, and replaying the seed
// reproduces the run:
//
//	go test ./internal/sim/modeltest -run TestModelReplay -args -seed=N
//
// Everything nondeterministic is derived from one seed: the op
// sequence, the fault schedule (per-link RNGs in sim.Network), and the
// client's retransmission jitter. Real goroutine scheduling still
// varies run to run, so retry *counts* may differ — but the compared
// observables (reports, memory, terminal states) are
// schedule-independent.
package modeltest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"liquidarch/internal/asm"
	"liquidarch/internal/client"
	"liquidarch/internal/core"
	"liquidarch/internal/fpx"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/server"
	"liquidarch/internal/sim"
	"liquidarch/internal/synth"
)

// modelSynth keeps the modelled ≈1 h synthesis around 3.6 ms of clock
// time so reconfigure ops complete promptly on both timelines.
var modelSynth = synth.Options{BitstreamBytes: 256, TimeScale: 1e-6}

// runBudget bounds every start so that executing garbage (a data image
// started on purpose) terminates deterministically instead of spinning.
const runBudget = 500_000

// Faults is the fault profile applied to both directions of the
// client↔server link.
type Faults struct {
	Drop     float64
	Dup      float64
	Reorder  float64
	Latency  time.Duration
	Jitter   time.Duration
	DupDelay time.Duration
}

// Config parameterizes one model run.
type Config struct {
	Seed int64
	// Ops is the operation count (0 = a seed-derived default).
	Ops int
	// WireRev pins the client protocol generation (0 = seed-derived,
	// uniform over v1..v6).
	WireRev uint8
	// Faults overrides the fault profile (nil = seed-derived; clean
	// link for wire revs <3, which predate the dedup window and the
	// exchange seq that loss recovery needs).
	Faults *Faults
	// DedupDisabled plants the deliberate protocol bug — the server
	// skips the at-most-once dedup window — to prove the model harness
	// catches it.
	DedupDisabled bool
	// LoadHeavy skews the op mix to loads, reads and status — pure
	// control-plane traffic with no board compute, so the virtual-time
	// schedule (and with it a caught divergence) replays exactly.
	LoadHeavy bool
	// IdleMix skews the op mix to reconfigurations and long poll-loop
	// idles: programs that spin on a never-written mailbox word until
	// the cycle budget expires. The simulator fast-forwards those spins,
	// so the mix is cheap in wall time while every fast-forwarded cycle
	// must still surface as simulated time in the run reports.
	IdleMix bool
}

// Divergence is a model-reference mismatch: the simulated cluster
// observably disagreed with the sequential model.
type Divergence struct {
	Seed    int64
	Rev     uint8
	OpIndex int
	Op      string
	Got     string // observable from the simulated cluster
	Want    string // observable from the reference model
	Trace   []string
}

func (d *Divergence) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model divergence at seed %d (wire rev %d), op %d: %s\n", d.Seed, d.Rev, d.OpIndex, d.Op)
	fmt.Fprintf(&b, "  sut: %s\n  ref: %s\n", d.Got, d.Want)
	b.WriteString("  op trace:\n")
	for i, op := range d.Trace {
		fmt.Fprintf(&b, "    %3d %s\n", i, op)
	}
	fmt.Fprintf(&b, "  replay: go test ./internal/sim/modeltest -run TestModelReplay -args -seed=%d", d.Seed)
	return b.String()
}

// progSrc is the parameterized deterministic workload: burn iters
// loop iterations, store val at the result word, exit through the ROM
// poll routine.
const progSrc = `
_start:
	set %d, %%g2
loop:
	subcc %%g2, 1, %%g2
	bne loop
	nop
	set %d, %%o0
	set %#x, %%g1
	st %%o0, [%%g1]
	set 0x1000, %%g7
	jmp %%g7
	nop
`

// resultAddr is where the canned programs store their value — well
// above the largest generated image.
const resultAddr = leon.DefaultLoadAddr + 0x10000

// pollSrc is the long-idle workload: the boot ROM's Fig. 5 poll
// pattern relocated into user code, spinning on an uncacheable
// mailbox word that stays zero for the whole run (the fault trap
// type, cleared at start) until the cycle budget expires. The spin is
// side-effect-free over uncached memory, so the simulator
// fast-forwards it — but the budget fault and the reported cycle
// count must land exactly where per-step emulation lands them.
const pollSrc = `
_start:
	set %#x, %%g1
poll:
	ld [%%g1], %%g2
	tst %%g2
	be poll
	nop
	set 0x1000, %%g7
	jmp %%g7
	nop
`

// pollFlagAddr is the watched word: the mailbox fault-TT slot, which
// Start zeroes and only a fault would write.
const pollFlagAddr = leon.MailboxFaultTT

// dataBase is where random data images land (they double as runnable
// garbage: starting one is a legal, deterministic fault case).
const dataBase = leon.DefaultLoadAddr + 0x4000

var (
	progOnce sync.Once
	progs    []*asm.Object
	pollProg *asm.Object
	progErr  error
)

// programs assembles the canned program variants once per process.
func programs() ([]*asm.Object, error) {
	progOnce.Do(func() {
		for _, pv := range []struct {
			iters, val int
		}{
			{300, 0x11111111},
			{2500, 0x5a5a00ff},
			{12000, 0x0badf00d},
		} {
			obj, err := asm.AssembleAt(fmt.Sprintf(progSrc, pv.iters, pv.val, resultAddr), leon.DefaultLoadAddr)
			if err != nil {
				progErr = err
				return
			}
			progs = append(progs, obj)
		}
		pollProg, progErr = asm.AssembleAt(fmt.Sprintf(pollSrc, pollFlagAddr), leon.DefaultLoadAddr)
	})
	return progs, progErr
}

// boardSet is one side's boards: core systems sharing a synthesis
// manager, plus their platforms.
type boardSet struct {
	systems []*core.System
	plats   []*fpx.Platform
	manager *reconfig.Manager
}

func newBoardSet(n int, clk sim.Clock) (*boardSet, error) {
	opts := modelSynth
	opts.Clock = clk
	m := reconfig.NewManagerWorkers(reconfig.NewCache(0), opts, 2)
	if err := m.Pregenerate([]leon.Config{leon.DefaultConfig()}); err != nil {
		return nil, err
	}
	bs := &boardSet{manager: m}
	for i := 0; i < n; i++ {
		s, err := core.New(leon.DefaultConfig(), core.Options{
			Synth:   opts,
			Manager: m,
			IP:      [4]byte{10, 0, 0, byte(2 + i)},
			Clock:   clk,
		})
		if err != nil {
			bs.Close()
			return nil, err
		}
		bs.systems = append(bs.systems, s)
		bs.plats = append(bs.plats, s.Platform())
	}
	return bs, nil
}

func (b *boardSet) Close() {
	for _, s := range b.systems {
		s.Close()
	}
}

// idle waits (in real time) until the shared synthesis manager has no
// queued or running tickets, so cache hit/miss outcomes of later ops
// are a pure function of the op sequence.
func (b *boardSet) idle() {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := b.manager.Stats()
		if st.QueueDepth == 0 && st.Inflight == 0 {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// ref drives one request through a board's platform directly — the
// sequential reference path — and renders the response observable.
func (b *boardSet) ref(board int, cmd uint8, body []byte) (netproto.Packet, error) {
	resps := b.plats[board].HandlePayloadFrom("model-ref", netproto.Packet{Command: cmd, Body: body}.Marshal())
	if len(resps) == 0 {
		return netproto.Packet{}, fmt.Errorf("no response to %s", netproto.CommandName(cmd))
	}
	resp := resps[0]
	if resp.Command == netproto.CmdError {
		er, err := netproto.ParseErrorResp(resp.Body)
		if err != nil {
			return netproto.Packet{}, err
		}
		return netproto.Packet{}, &client.ServerError{Cmd: cmd, Msg: er.Msg}
	}
	return resp, nil
}

// obsErr normalizes an op error into a comparable observable: server
// rejections compare by message (both sides produce the same one);
// anything else keeps its full text.
func obsErr(err error) string {
	if err == nil {
		return "ok"
	}
	var se *client.ServerError
	if ok := asServerError(err, &se); ok {
		return "server error: " + se.Msg
	}
	return "error: " + err.Error()
}

func asServerError(err error, out **client.ServerError) bool {
	for err != nil {
		if se, ok := err.(*client.ServerError); ok {
			*out = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// harness holds the two worlds one model run compares.
type harness struct {
	cfg   Config
	rng   *rand.Rand
	rev   uint8
	world *sim.World
	sut   *boardSet
	srv   *server.Server
	cli   *client.Client
	refB  *boardSet
	trace []string
}

const nBoards = 2

// Run executes one model run and returns nil or a *Divergence.
func Run(cfg Config) error {
	if _, err := programs(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rev := cfg.WireRev
	if rev == 0 {
		rev = uint8(1 + rng.Intn(6))
	}

	h := &harness{cfg: cfg, rng: rng, rev: rev}
	h.world = sim.NewWorld(cfg.Seed)
	defer h.world.Close()

	var err error
	if h.sut, err = newBoardSet(nBoards, h.world.Clock); err != nil {
		return err
	}
	defer h.sut.Close()
	if cfg.DedupDisabled {
		for _, p := range h.sut.plats {
			p.DedupDisabled = true
		}
	}
	if h.refB, err = newBoardSet(nBoards, nil); err != nil {
		return err
	}
	defer h.refB.Close()

	pc, err := h.world.Net.Listen("10.77.0.1:9000")
	if err != nil {
		return err
	}
	h.srv, err = server.NewNodeConn(pc, h.world.Clock, h.sut.plats...)
	if err != nil {
		return err
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); h.srv.Serve() }()
	defer func() { h.srv.Close(); <-serveDone }()

	conn, err := h.world.Net.Dial(pc.LocalAddr())
	if err != nil {
		return err
	}
	defer conn.Close()

	f := cfg.Faults
	if f == nil {
		if rev >= 3 {
			// The dedup + seq era handles loss; derive a lossy profile.
			f = &Faults{
				Drop:    0.03 + 0.07*rng.Float64(),
				Dup:     0.03 + 0.07*rng.Float64(),
				Reorder: 0.02 + 0.05*rng.Float64(),
				Latency: time.Duration(1+rng.Intn(2)) * time.Millisecond,
				Jitter:  500 * time.Microsecond,
			}
		} else {
			// Pre-seq clients have no duplicate suppression: keep the
			// link clean (latency only), as the era's LANs did.
			f = &Faults{Latency: time.Millisecond}
		}
	}
	lp := sim.LinkParams{
		Drop: f.Drop, Dup: f.Dup, Reorder: f.Reorder,
		Latency: f.Latency, Jitter: f.Jitter, DupDelay: f.DupDelay,
	}
	h.world.Net.SetLink(conn.LocalAddr(), pc.LocalAddr(), lp)
	h.world.Net.SetLink(pc.LocalAddr(), conn.LocalAddr(), lp)

	h.cli = client.New(conn, h.world.Clock)
	h.cli.SetSeed(cfg.Seed ^ 0x6a09e667)
	h.cli.WireRev = rev
	h.cli.Timeout = 50 * time.Millisecond
	h.cli.MaxTimeout = 400 * time.Millisecond
	h.cli.Retries = 8
	h.cli.PollInterval = time.Millisecond
	h.cli.WaitTimeout = 30 * time.Second
	h.cli.WaitHold = 20 * time.Millisecond

	ops := cfg.Ops
	if ops == 0 {
		ops = 12 + rng.Intn(8)
	}
	for i := 0; i < ops; i++ {
		if d := h.step(i); d != nil {
			return d
		}
	}
	return h.finalCheck()
}

func (h *harness) loadHeavy() bool { return h.cfg.LoadHeavy }

// diverge records the mismatch with the full op trace.
func (h *harness) diverge(i int, op, got, want string) *Divergence {
	return &Divergence{
		Seed: h.cfg.Seed, Rev: h.rev, OpIndex: i, Op: op,
		Got: got, Want: want, Trace: h.trace,
	}
}

// step generates and executes one op on both sides. All randomness is
// drawn before execution so the op sequence is a pure function of the
// seed regardless of outcomes.
func (h *harness) step(i int) *Divergence {
	board := 0
	if h.rev >= 2 {
		// The v1 header has no board byte; a rev-1 client can only ever
		// talk to board 0.
		board = h.rng.Intn(nBoards)
	}
	h.cli.Board = uint8(board)

	kind := h.rng.Intn(10)
	if h.loadHeavy() {
		kind = []int{3, 3, 3, 3, 3, 3, 7, 7, 7, 6}[kind]
	} else if h.cfg.IdleMix {
		// Reconfigurations interleaved with budget-length poll-loop
		// idles (kind 10) and enough runs/reads to keep memory moving.
		kind = []int{10, 10, 10, 9, 9, 9, 0, 7, 6, 10}[kind]
	}
	var (
		op        string
		got, want string
	)
	switch {
	case kind == 10: // long poll-loop idle to budget exhaustion
		op = fmt.Sprintf("idle-poll board=%d", board)
		got, want = h.opIdlePoll(board)
	case kind < 3: // canned program: load + start + wait
		ps, _ := programs()
		prog := ps[h.rng.Intn(len(ps))]
		op = fmt.Sprintf("run board=%d prog=%d", board, h.rng.Intn(len(ps)))
		got, want = h.opRun(board, prog)
	case kind < 5: // random data image load
		size := 4 * (1 + h.rng.Intn(700)) // ≤ ~2.8 KiB, a few chunks
		addr := uint32(dataBase + 4*h.rng.Intn(2048))
		img := make([]byte, size)
		h.rng.Read(img)
		op = fmt.Sprintf("load board=%d addr=%#x len=%d", board, addr, size)
		got, want = h.opLoad(board, addr, img)
	case kind < 6: // start whatever was loaded last (possibly garbage)
		op = fmt.Sprintf("start board=%d", board)
		got, want = h.opStart(board)
	case kind < 7:
		op = fmt.Sprintf("status board=%d", board)
		got, want = h.opStatus(board)
	case kind < 8:
		addr := uint32(leon.DefaultLoadAddr + 4*h.rng.Intn(8192))
		n := 1 + h.rng.Intn(2048)
		op = fmt.Sprintf("read board=%d addr=%#x len=%d", board, addr, n)
		got, want = h.opRead(board, addr, n)
	case kind < 9:
		addr := uint32(dataBase + 4*h.rng.Intn(4096))
		data := make([]byte, 1+h.rng.Intn(512))
		h.rng.Read(data)
		op = fmt.Sprintf("write board=%d addr=%#x len=%d", board, addr, len(data))
		got, want = h.opWrite(board, addr, data)
	default:
		dcache := []int{4 << 10, 8 << 10}[h.rng.Intn(2)]
		if h.rev < 6 {
			// Asynchronous reconfiguration is a rev-6 conversation;
			// earlier clients ask for status instead.
			op = fmt.Sprintf("status board=%d", board)
			got, want = h.opStatus(board)
		} else if h.rng.Intn(4) == 0 {
			op = fmt.Sprintf("prewarm board=%d dcache=%d", board, dcache)
			got, want = h.opPrewarm(board, dcache)
		} else {
			op = fmt.Sprintf("reconfigure board=%d dcache=%d", board, dcache)
			got, want = h.opReconfigure(board, dcache)
		}
	}
	h.trace = append(h.trace, fmt.Sprintf("%s -> sut:%s ref:%s", op, short(got), short(want)))
	if got != want {
		return h.diverge(i, op, got, want)
	}
	return nil
}

// short elides bulky observables (memory dumps) in the op trace; the
// divergence itself always carries the full strings.
func short(s string) string {
	if len(s) <= 64 {
		return s
	}
	return fmt.Sprintf("%s…(%d chars)", s[:48], len(s))
}

// opLoad loads an image on both sides and reports the outcome.
func (h *harness) opLoad(board int, addr uint32, img []byte) (got, want string) {
	got = obsErr(h.cli.LoadProgram(addr, img))

	var refErr error
	for _, ch := range netproto.ChunkImage(addr, img) {
		resp, err := h.refB.ref(board, netproto.CmdLoadProgram, ch.Marshal())
		if err != nil {
			refErr = err
			break
		}
		rep, err := netproto.ParseRunReport(resp.Body)
		if err != nil {
			refErr = err
			break
		}
		if rep.Status != netproto.StatusOK && rep.Status != netproto.StatusPending {
			refErr = fmt.Errorf("load ack status %d", rep.Status)
			break
		}
	}
	want = obsErr(refErr)
	return got, want
}

// opIdlePoll loads the never-satisfied poll loop and runs it into its
// cycle budget on both sides. The spin is fast-forwarded, so the op is
// cheap in wall time, but the budget fault and the reported cycle
// count — which must include every fast-forwarded cycle as simulated
// time — have to match the reference exactly.
func (h *harness) opIdlePoll(board int) (got, want string) {
	if _, err := programs(); err != nil {
		return obsErr(err), "ok"
	}
	if g, w := h.opLoad(board, pollProg.Origin, pollProg.Code); g != w {
		return "load:" + g, "load:" + w
	}
	// The reported count excludes the short ROM handoff, so it lands
	// just under the budget — but never far under, unless the idle
	// spin's virtual cycles were skipped instead of forwarded.
	const cycleFloor = runBudget - 1000
	rep, err := h.cli.Start(0, runBudget)
	switch {
	case err != nil:
		got = obsErr(err)
	case rep.Cycles < cycleFloor:
		// Fast-forwarded cycles must read back as simulated time.
		got = fmt.Sprintf("error: idle run reported %d cycles, below its %d budget", rep.Cycles, runBudget)
	default:
		got = fmt.Sprintf("%+v", rep)
	}
	want = h.refRun(board)
	return got, want
}

// opRun loads a canned program and runs it to completion on both
// sides, comparing the full final report.
func (h *harness) opRun(board int, prog *asm.Object) (got, want string) {
	if g, w := h.opLoad(board, prog.Origin, prog.Code); g != w {
		return "load:" + g, "load:" + w
	}
	return h.opStart(board)
}

// opStart starts entry 0 (the last load) with the standard budget and
// waits for the final report on both sides.
func (h *harness) opStart(board int) (got, want string) {
	rep, err := h.cli.Start(0, runBudget)
	if err != nil {
		got = obsErr(err)
	} else {
		got = fmt.Sprintf("%+v", rep)
	}

	want = h.refRun(board)
	return got, want
}

// refRun is the reference model of Start: a start exchange, then
// result polls until the run leaves StatusRunning.
func (h *harness) refRun(board int) string {
	req := netproto.StartReq{Entry: 0, MaxCycles: runBudget}
	resp, err := h.refB.ref(board, netproto.CmdStartLEON, req.Marshal())
	if err != nil {
		return obsErr(err)
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return obsErr(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for rep.Status == netproto.StatusRunning {
		if time.Now().After(deadline) {
			return "error: reference run never completed"
		}
		time.Sleep(100 * time.Microsecond)
		if resp, err = h.refB.ref(board, netproto.CmdResult, nil); err != nil {
			return obsErr(err)
		}
		if rep, err = netproto.ParseRunReport(resp.Body); err != nil {
			return obsErr(err)
		}
	}
	return fmt.Sprintf("%+v", rep)
}

func (h *harness) opStatus(board int) (got, want string) {
	st, err := h.cli.Status()
	if err != nil {
		got = obsErr(err)
	} else {
		got = fmt.Sprintf("%+v", st)
	}
	resp, err := h.refB.ref(board, netproto.CmdStatus, nil)
	if err != nil {
		return got, obsErr(err)
	}
	rst, err := netproto.ParseStatusResp(resp.Body)
	if err != nil {
		return got, obsErr(err)
	}
	return got, fmt.Sprintf("%+v", rst)
}

func (h *harness) opRead(board int, addr uint32, n int) (got, want string) {
	data, err := h.cli.ReadMemory(addr, n)
	if err != nil {
		got = obsErr(err)
	} else {
		got = fmt.Sprintf("%x", data)
	}
	req := netproto.MemReq{Addr: addr, Length: uint32(n)}
	resp, err := h.refB.ref(board, netproto.CmdReadMemory, req.Marshal())
	if err != nil {
		return got, obsErr(err)
	}
	mr, err := netproto.ParseMemResp(resp.Body)
	if err != nil {
		return got, obsErr(err)
	}
	return got, fmt.Sprintf("%x", mr.Data)
}

func (h *harness) opWrite(board int, addr uint32, data []byte) (got, want string) {
	got = obsErr(h.cli.WriteMemory(addr, data))
	req := netproto.MemReq{Addr: addr, Data: data}
	_, err := h.refB.ref(board, netproto.CmdWriteMemory, req.Marshal())
	return got, obsErr(err)
}

func specFor(dcache int) []byte {
	blob, _ := json.Marshal(core.Spec{DCacheBytes: dcache})
	return blob
}

// opReconfigure reconfigures the board's D-cache on both sides and
// compares the terminal state plus the resulting active configuration.
func (h *harness) opReconfigure(board, dcache int) (got, want string) {
	spec := specFor(dcache)
	err := h.cli.Reconfigure(spec)
	if err != nil {
		got = obsErr(err)
	} else {
		st, serr := h.cli.ReconfigStatus()
		if serr != nil {
			got = obsErr(serr)
		} else {
			cfgBlob, _ := h.cli.GetConfig()
			got = fmt.Sprintf("state=%d hit=%t partial=%t cfg=%x", st.State, st.CacheHit, st.Partial, cfgBlob)
		}
	}
	h.sut.idle()

	want = h.refReconfigure(board, spec)
	h.refB.idle()
	return got, want
}

// refReconfigure is the reference model of a blocking reconfigure:
// the async exchange, then status polls to the terminal state.
func (h *harness) refReconfigure(board int, spec []byte) string {
	resp, err := h.refB.ref(board, netproto.CmdReconfigure, spec)
	if err != nil {
		return obsErr(err)
	}
	rep, err := netproto.ParseRunReport(resp.Body)
	if err != nil {
		return obsErr(err)
	}
	st := netproto.ReconfigAckInfo(rep)
	deadline := time.Now().Add(10 * time.Second)
	for !st.Terminal() && st.State != netproto.ReconfigNone {
		if time.Now().After(deadline) {
			return "error: reference reconfigure never completed"
		}
		time.Sleep(200 * time.Microsecond)
		sresp, err := h.refB.ref(board, netproto.CmdReconfigStatus, nil)
		if err != nil {
			return obsErr(err)
		}
		if st, err = netproto.ParseReconfigStatusResp(sresp.Body); err != nil {
			return obsErr(err)
		}
	}
	cresp, err := h.refB.ref(board, netproto.CmdGetConfig, nil)
	if err != nil {
		return obsErr(err)
	}
	return fmt.Sprintf("state=%d hit=%t partial=%t cfg=%x", st.State, st.CacheHit, st.Partial, cresp.Body)
}

// opPrewarm queues a synthesis sweep on both sides, waits for both
// pools to drain, and compares the accepted-ticket count.
func (h *harness) opPrewarm(board, dcache int) (got, want string) {
	specs := []json.RawMessage{json.RawMessage(specFor(dcache))}
	n, err := h.cli.Prewarm(specs)
	if err != nil {
		got = obsErr(err)
	} else {
		got = fmt.Sprintf("queued=%d", n)
	}
	h.sut.idle()

	body, _ := json.Marshal(struct {
		Prewarm []json.RawMessage `json:"prewarm"`
	}{specs})
	resp, err := h.refB.ref(board, netproto.CmdReconfigure, body)
	if err != nil {
		want = obsErr(err)
	} else if rep, perr := netproto.ParseRunReport(resp.Body); perr != nil {
		want = obsErr(perr)
	} else {
		want = fmt.Sprintf("queued=%d", netproto.ReconfigAckInfo(rep).Queued)
	}
	h.refB.idle()
	return got, want
}

// finalCheck compares closing invariants: per-board memory images
// (bit-identical) and the board-level load counters, which duplicate
// or replayed datagrams must never inflate.
func (h *harness) finalCheck() error {
	const window = 64 << 10
	for b := 0; b < nBoards; b++ {
		sm, serr := h.sut.systems[b].ReadMemory(leon.DefaultLoadAddr, window)
		rm, rerr := h.refB.systems[b].ReadMemory(leon.DefaultLoadAddr, window)
		if serr != nil || rerr != nil {
			return fmt.Errorf("final memory read: sut=%v ref=%v", serr, rerr)
		}
		if !bytes.Equal(sm, rm) {
			off := 0
			for off < len(sm) && sm[off] == rm[off] {
				off++
			}
			return h.diverge(len(h.trace), fmt.Sprintf("final-memory board=%d", b),
				fmt.Sprintf("byte %#x = %#02x", leon.DefaultLoadAddr+off, sm[off]),
				fmt.Sprintf("byte %#x = %#02x", leon.DefaultLoadAddr+off, rm[off]))
		}
		ss, rs := h.sut.plats[b].Stats(), h.refB.plats[b].Stats()
		if ss.LoadsCompleted != rs.LoadsCompleted {
			return h.diverge(len(h.trace), fmt.Sprintf("final-loads board=%d", b),
				fmt.Sprintf("loads_completed=%d", ss.LoadsCompleted),
				fmt.Sprintf("loads_completed=%d", rs.LoadsCompleted))
		}
	}
	return nil
}
