package sim

import (
	"bytes"
	"net"
	"testing"
	"time"
)

func TestVirtualClockAdvanceFiresInOrder(t *testing.T) {
	c := NewVirtualClock()
	var order []int
	c.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	c.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	c.AfterFunc(20*time.Millisecond, func() { order = append(order, 4) }) // tie: registration order
	c.Advance(25 * time.Millisecond)
	want := []int{1, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	c.Advance(10 * time.Millisecond)
	if len(order) != 4 || order[3] != 3 {
		t.Fatalf("after second advance fired %v", order)
	}
	if got := c.Since(virtualEpoch); got != 35*time.Millisecond {
		t.Fatalf("virtual now = %v, want 35ms", got)
	}
}

func TestVirtualClockTimerStopReset(t *testing.T) {
	c := NewVirtualClock()
	tm := c.NewTimer(10 * time.Millisecond)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	c.Advance(20 * time.Millisecond)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
	tm.Reset(5 * time.Millisecond)
	c.Advance(5 * time.Millisecond)
	select {
	case <-tm.C:
	default:
		t.Fatal("reset timer did not fire")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestVirtualClockAfterAndSleepUnderStepper(t *testing.T) {
	c := NewVirtualClock().Start()
	defer c.Stop()
	start := c.Now()
	done := make(chan time.Duration, 1)
	go func() {
		c.Sleep(50 * time.Millisecond)
		done <- c.Since(start)
	}()
	select {
	case d := <-done:
		if d != 50*time.Millisecond {
			t.Fatalf("virtual sleep took %v, want exactly 50ms", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stepper never advanced past the sleep")
	}
	select {
	case now := <-c.After(10 * time.Millisecond):
		if got := now.Sub(start); got != 60*time.Millisecond {
			t.Fatalf("After fired at +%v, want +60ms", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("After never fired")
	}
}

func TestNetworkDeliversAndTimesOut(t *testing.T) {
	w := NewWorld(1)
	defer w.Close()
	srv, err := w.Net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := w.Net.Dial(srv.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, from, err := srv.ReadFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("got %q", buf[:n])
	}
	if _, err := srv.WriteTo([]byte("pong"), from); err != nil {
		t.Fatal(err)
	}
	cli.SetReadDeadline(w.Clock.Now().Add(time.Second))
	n, err = cli.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("read %q err %v", buf[:n], err)
	}
	// No more traffic: the deadline must fire on virtual time.
	cli.SetReadDeadline(w.Clock.Now().Add(20 * time.Millisecond))
	_, err = cli.Read(buf)
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
}

func TestNetworkLatencyRidesVirtualClock(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	srv, _ := w.Net.Listen("")
	cli, _ := w.Net.Dial(srv.LocalAddr())
	w.Net.SetLink(cli.LocalAddr(), srv.LocalAddr(), LinkParams{Latency: 5 * time.Millisecond})
	start := w.Clock.Now()
	cli.Write([]byte("x"))
	buf := make([]byte, 8)
	if _, _, err := srv.ReadFrom(buf); err != nil {
		t.Fatal(err)
	}
	if d := w.Clock.Since(start); d != 5*time.Millisecond {
		t.Fatalf("delivery at +%v, want +5ms", d)
	}
}

// faultTrace runs a fixed unidirectional burst through a lossy fabric
// and returns the delivered payload sequence plus the link stats.
func faultTrace(t *testing.T, seed int64) ([]string, LinkStats) {
	t.Helper()
	w := NewWorld(seed)
	defer w.Close()
	srv, _ := w.Net.Listen("")
	cli, _ := w.Net.Dial(srv.LocalAddr())
	lp := LinkParams{Drop: 0.3, Dup: 0.2, Reorder: 0.2, Latency: time.Millisecond}
	w.Net.SetLink(cli.LocalAddr(), srv.LocalAddr(), lp)
	for i := 0; i < 64; i++ {
		cli.Write([]byte{byte(i)})
	}
	var got []string
	buf := make([]byte, 8)
	for {
		srv.SetReadDeadline(w.Clock.Now().Add(100 * time.Millisecond))
		n, _, err := srv.ReadFrom(buf)
		if err != nil {
			break
		}
		got = append(got, string(bytes.Clone(buf[:n])))
	}
	return got, w.Net.LinkStats(cli.LocalAddr(), srv.LocalAddr())
}

func TestNetworkFaultsDeterministicAcrossRuns(t *testing.T) {
	a, sa := faultTrace(t, 42)
	b, sb := faultTrace(t, 42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	if sa.Dropped == 0 || sa.Duped == 0 || sa.Reordered == 0 {
		t.Fatalf("fault schedule inert: %+v", sa)
	}
	c, _ := faultTrace(t, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestPacketConnCloseUnblocksReader(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	srv, _ := w.Net.Listen("")
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 8)
		_, _, err := srv.ReadFrom(buf)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // real: let the reader block
	srv.Close()
	select {
	case err := <-errc:
		if err != net.ErrClosed {
			t.Fatalf("want net.ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock ReadFrom")
	}
}
