package isa

import (
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[Reg]string{
		G0: "%g0", G1: "%g1", O0: "%o0", SP: "%sp", O7: "%o7",
		L0: "%l0", I0: "%i0", FP: "%fp", I7: "%i7", Reg(40): "%r40",
	}
	for r, want := range cases {
		if got := r.Name(); got != want {
			t.Errorf("Reg(%d).Name() = %q, want %q", r, got, want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: OpADD, Rd: O0, Rs1: O1(), Rs2: L0},
		{Op: OpADD, Rd: O0, Rs1: O1(), UseImm: true, Imm: 42},
		{Op: OpSUBcc, Rd: G0, Rs1: O0, UseImm: true, Imm: -1},
		{Op: OpSETHI, Rd: G1, Imm: 0x3FFFF},
		{Op: OpBicc, Cond: CondNE, Annul: true, Imm: -12},
		{Op: OpCALL, Imm: 0x100},
		{Op: OpLD, Rd: O0, Rs1: SP, UseImm: true, Imm: 64},
		{Op: OpST, Rd: O0, Rs1: FP, UseImm: true, Imm: -8},
		{Op: OpLDD, Rd: L0, Rs1: SP, UseImm: true, Imm: 0},
		{Op: OpSTD, Rd: I0, Rs1: SP, UseImm: true, Imm: 56},
		{Op: OpJMPL, Rd: G0, Rs1: L1, UseImm: true, Imm: 0},
		{Op: OpRETT, Rs1: L2, UseImm: true, Imm: 0},
		{Op: OpSAVE, Rd: SP, Rs1: SP, UseImm: true, Imm: -96},
		{Op: OpRESTORE},
		{Op: OpWRWIM, Rs1: L0, Rs2: G0},
		{Op: OpRDPSR, Rd: L0},
		{Op: OpTicc, Cond: CondA, Rs1: G0, UseImm: true, Imm: 3},
		{Op: OpUMUL, Rd: O0, Rs1: O0, Rs2: O1()},
		{Op: OpSDIV, Rd: O0, Rs1: O0, UseImm: true, Imm: 7},
		{Op: OpSLL, Rd: O0, Rs1: O0, UseImm: true, Imm: 2},
		{Op: OpLQMAC, Rd: O0, Rs1: O1(), Rs2: O2()},
		{Op: OpSWAP, Rd: O0, Rs1: O1()},
		{Op: OpLDSTUB, Rd: O0, Rs1: O1(), UseImm: true, Imm: 1},
	}
	for _, in := range insts {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", in, err)
		}
		got, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)) = %#08x: %v", in, w, err)
		}
		in.Raw = w
		if got != in {
			t.Errorf("round trip mismatch:\n in  %+v\n got %+v", in, got)
		}
	}
}

// O1, O2 avoid exporting more named constants than the package needs.
func O1() Reg { return O0 + 1 }
func O2() Reg { return O0 + 2 }

func TestEncodeRangeChecks(t *testing.T) {
	bad := []Inst{
		{Op: OpADD, Rd: O0, Rs1: O0, UseImm: true, Imm: 5000},
		{Op: OpADD, Rd: O0, Rs1: O0, UseImm: true, Imm: -5000},
		{Op: OpSETHI, Rd: O0, Imm: 1 << 22},
		{Op: OpSETHI, Rd: O0, Imm: -1},
		{Op: OpBicc, Cond: CondA, Imm: 1 << 21},
		{Op: OpCALL, Imm: 1 << 29},
		{Op: OpInvalid},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%+v) succeeded, want range error", in)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	// op=0 op2=3 is unused; op=2 op3=0x2D is unused.
	for _, w := range []uint32{0x00C00000, 0x81680000} {
		in, err := Decode(w)
		if err == nil {
			t.Errorf("Decode(%#08x) succeeded as %v, want error", w, in)
		}
		if in.Op != OpInvalid {
			t.Errorf("Decode(%#08x).Op = %v, want OpInvalid", w, in.Op)
		}
	}
}

func TestNOPDecodesAsSethiZero(t *testing.T) {
	in, err := Decode(NOP)
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != OpSETHI || in.Rd != G0 || in.Imm != 0 {
		t.Errorf("NOP decoded as %+v", in)
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		in   Inst
		pc   uint32
		want string
	}{
		{Inst{Op: OpADD, Rd: O0, Rs1: O0, UseImm: true, Imm: 4}, 0, "add %o0, 4, %o0"},
		{Inst{Op: OpOR, Rd: O0, Rs1: G0, UseImm: true, Imm: 7}, 0, "mov 7, %o0"},
		{Inst{Op: OpSUBcc, Rd: G0, Rs1: O0, Rs2: O0 + 1}, 0, "cmp %o0, %o1"},
		{Inst{Op: OpBicc, Cond: CondE, Imm: 4}, 0x1000, "be 0x1010"},
		{Inst{Op: OpBicc, Cond: CondA, Annul: true, Imm: -1}, 0x1000, "ba,a 0xffc"},
		{Inst{Op: OpCALL, Imm: 2}, 0x2000, "call 0x2008"},
		{Inst{Op: OpLD, Rd: O0, Rs1: SP, UseImm: true, Imm: 64}, 0, "ld [%sp + 64], %o0"},
		{Inst{Op: OpST, Rd: O0, Rs1: FP, UseImm: true, Imm: -8}, 0, "st %o0, [%fp - 8]"},
		{Inst{Op: OpJMPL, Rd: G0, Rs1: L1, UseImm: true}, 0, "jmp %l1"},
		{Inst{Op: OpJMPL, Rd: O7, Rs1: L1, UseImm: true}, 0, "call %l1"},
		{Inst{Op: OpRETT, Rs1: L2, UseImm: true}, 0, "rett %l2"},
		{Inst{Op: OpRESTORE}, 0, "restore"},
		{Inst{Op: OpSAVE, Rd: SP, Rs1: SP, UseImm: true, Imm: -96}, 0, "save %sp, -96, %sp"},
		{Inst{Op: OpSETHI, Rd: G1, Imm: 0x1000}, 0, "sethi %hi(0x400000), %g1"},
		{Inst{Op: OpRDPSR, Rd: L0}, 0, "rd %psr, %l0"},
		{Inst{Op: OpWRWIM, Rs1: L0}, 0, "wr %l0, %g0, %wim"},
		{Inst{Op: OpTicc, Cond: CondA, Rs1: G0, UseImm: true, Imm: 3}, 0, "ta %g0 + 3"},
	}
	for _, c := range cases {
		w, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", c.in, err)
		}
		if got := Disassemble(w, c.pc); got != c.want {
			t.Errorf("Disassemble(%#08x) = %q, want %q", w, got, c.want)
		}
	}
	if got := Disassemble(NOP, 0); got != "nop" {
		t.Errorf("Disassemble(NOP) = %q, want \"nop\"", got)
	}
	if got := Disassemble(0x00C00000, 0); got != ".word 0x00c00000" {
		t.Errorf("Disassemble(invalid) = %q", got)
	}
}

// TestDecodeEncodeProperty: any word that decodes successfully must
// re-encode to the identical word (decode is a right inverse of encode).
func TestDecodeEncodeProperty(t *testing.T) {
	f := func(w uint32) bool {
		in, err := Decode(w)
		if err != nil {
			return true // undecodable words are out of scope
		}
		// The asi field (bits 12:5 with i=0) is not modelled; mask it
		// out of the comparison for register-register format 3.
		got, err := Encode(in)
		if err != nil {
			return false
		}
		mask := uint32(0xFFFFFFFF)
		if w>>30 >= 2 && w&(1<<13) == 0 {
			mask = ^uint32(0xFF << 5)
		}
		// UNIMP keeps only const22; Ticc ignores reserved bit 29.
		if in.Op == OpUNIMP {
			mask = 0x3FFFFF
		}
		if in.Op == OpTicc {
			mask &^= 1 << 29
		}
		// RD-group source fields are ignored and canonicalized to 0;
		// WR-group rd fields likewise.
		switch in.Op {
		case OpRDY, OpRDPSR, OpRDWIM, OpRDTBR:
			mask &^= 0x7FFFF // rs1, i, asi/simm13, rs2
		case OpWRY, OpWRPSR, OpWRWIM, OpWRTBR, OpRETT, OpFLUSH:
			mask &^= 0x1F << 25 // rd
		}
		return got&mask == w&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestSignExtend(t *testing.T) {
	cases := []struct {
		v    uint32
		n    uint
		want int32
	}{
		{0x1FFF, 13, -1},
		{0x1000, 13, -4096},
		{0x0FFF, 13, 4095},
		{0x3FFFFF, 22, -1},
		{0x200000, 22, -(1 << 21)},
		{0, 13, 0},
	}
	for _, c := range cases {
		if got := signExtend(c.v, c.n); got != c.want {
			t.Errorf("signExtend(%#x, %d) = %d, want %d", c.v, c.n, got, c.want)
		}
	}
}
