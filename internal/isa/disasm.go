package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders the instruction word at pc as SPARC assembly text.
// Branch and call targets are shown as absolute addresses computed from
// pc. Unrecognised words disassemble as ".word 0x…".
func Disassemble(w uint32, pc uint32) string {
	in, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	return in.String(pc)
}

// String renders the decoded instruction; pc is used to resolve
// pc-relative displacements (pass 0 to show raw offsets).
func (in Inst) String(pc uint32) string {
	switch in.Op {
	case OpCALL:
		return fmt.Sprintf("call 0x%x", pc+uint32(in.Imm)*4)
	case OpSETHI:
		if in.Raw == NOP {
			return "nop"
		}
		return fmt.Sprintf("sethi %%hi(0x%x), %s", uint32(in.Imm)<<10, in.Rd.Name())
	case OpBicc:
		annul := ""
		if in.Annul {
			annul = ",a"
		}
		return fmt.Sprintf("b%s%s 0x%x", in.Cond.Name(), annul, pc+uint32(in.Imm)*4)
	case OpUNIMP:
		return fmt.Sprintf("unimp 0x%x", uint32(in.Imm))
	case OpRDY:
		return fmt.Sprintf("rd %%y, %s", in.Rd.Name())
	case OpRDPSR:
		return fmt.Sprintf("rd %%psr, %s", in.Rd.Name())
	case OpRDWIM:
		return fmt.Sprintf("rd %%wim, %s", in.Rd.Name())
	case OpRDTBR:
		return fmt.Sprintf("rd %%tbr, %s", in.Rd.Name())
	case OpWRY, OpWRPSR, OpWRWIM, OpWRTBR:
		dst := map[Op]string{OpWRY: "%y", OpWRPSR: "%psr", OpWRWIM: "%wim", OpWRTBR: "%tbr"}[in.Op]
		return fmt.Sprintf("wr %s, %s, %s", in.Rs1.Name(), in.src2(), dst)
	case OpTicc:
		return fmt.Sprintf("t%s %s", in.Cond.Name(), in.addrExpr())
	case OpJMPL:
		if in.Rd == G0 {
			return fmt.Sprintf("jmp %s", in.addrExpr())
		}
		if in.Rd == O7 {
			return fmt.Sprintf("call %s", in.addrExpr())
		}
		return fmt.Sprintf("jmpl %s, %s", in.addrExpr(), in.Rd.Name())
	case OpRETT:
		return fmt.Sprintf("rett %s", in.addrExpr())
	case OpFLUSH:
		return fmt.Sprintf("flush %s", in.addrExpr())
	case OpSAVE, OpRESTORE:
		if in.Op == OpRESTORE && in.Rd == G0 && in.Rs1 == G0 && !in.UseImm && in.Rs2 == G0 {
			return "restore"
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), in.Rs1.Name(), in.src2(), in.Rd.Name())
	}
	switch in.Op.Class() {
	case ClassLoad:
		return fmt.Sprintf("%s [%s], %s", in.Op.Name(), in.addrExpr(), in.Rd.Name())
	case ClassStore:
		return fmt.Sprintf("%s %s, [%s]", in.Op.Name(), in.Rd.Name(), in.addrExpr())
	default: // ALU
		if in.Op == OpOR && in.Rs1 == G0 {
			return fmt.Sprintf("mov %s, %s", in.src2(), in.Rd.Name())
		}
		if in.Op == OpSUBcc && in.Rd == G0 {
			return fmt.Sprintf("cmp %s, %s", in.Rs1.Name(), in.src2())
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), in.Rs1.Name(), in.src2(), in.Rd.Name())
	}
}

// src2 renders the second source operand (register or immediate).
func (in Inst) src2() string {
	if in.UseImm {
		return fmt.Sprintf("%d", in.Imm)
	}
	return in.Rs2.Name()
}

// addrExpr renders an rs1+rs2/simm13 address expression.
func (in Inst) addrExpr() string {
	var b strings.Builder
	b.WriteString(in.Rs1.Name())
	switch {
	case in.UseImm && in.Imm > 0:
		fmt.Fprintf(&b, " + %d", in.Imm)
	case in.UseImm && in.Imm < 0:
		fmt.Fprintf(&b, " - %d", -in.Imm)
	case !in.UseImm && in.Rs2 != G0:
		fmt.Fprintf(&b, " + %s", in.Rs2.Name())
	}
	return b.String()
}
