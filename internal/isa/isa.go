// Package isa defines the SPARC V8 instruction set as implemented by the
// LEON2 integer unit, plus the Liquid Architecture custom-instruction
// extension space. It provides instruction encoding, decoding and
// disassembly shared by the CPU model, the assembler and the tooling.
//
// Encodings follow The SPARC Architecture Manual, Version 8:
//
//	op=1  format 1: CALL        [op|disp30]
//	op=0  format 2: SETHI/Bicc  [op|rd|op2|imm22] / [op|a|cond|op2|disp22]
//	op=2  format 3: arithmetic  [op|rd|op3|rs1|i|asi/simm13|rs2]
//	op=3  format 3: memory      [op|rd|op3|rs1|i|asi/simm13|rs2]
package isa

import "fmt"

// Reg is a SPARC integer register number in the current window (0-31).
// 0-7 are globals, 8-15 outs, 16-23 locals, 24-31 ins.
type Reg uint8

// Well-known registers.
const (
	G0 Reg = 0 // always reads zero
	G1 Reg = 1
	O0 Reg = 8
	O6 Reg = 14 // %sp
	O7 Reg = 15 // call return address
	L0 Reg = 16
	L1 Reg = 17
	L2 Reg = 18
	I0 Reg = 24
	I6 Reg = 30 // %fp
	I7 Reg = 31
	SP     = O6
	FP     = I6
)

var regNames = [32]string{
	"%g0", "%g1", "%g2", "%g3", "%g4", "%g5", "%g6", "%g7",
	"%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%sp", "%o7",
	"%l0", "%l1", "%l2", "%l3", "%l4", "%l5", "%l6", "%l7",
	"%i0", "%i1", "%i2", "%i3", "%i4", "%i5", "%fp", "%i7",
}

// Name returns the conventional assembly name of r (%g0 … %i7, with %sp
// and %fp for o6/i6).
func (r Reg) Name() string {
	if r > 31 {
		return fmt.Sprintf("%%r%d", uint8(r))
	}
	return regNames[r]
}

// Cond is a Bicc/Ticc condition code (the 4-bit cond field).
type Cond uint8

// Branch conditions, in encoding order.
const (
	CondN   Cond = 0x0 // never
	CondE   Cond = 0x1 // equal (Z)
	CondLE  Cond = 0x2 // less or equal
	CondL   Cond = 0x3 // less
	CondLEU Cond = 0x4 // less or equal unsigned
	CondCS  Cond = 0x5 // carry set (less unsigned)
	CondNEG Cond = 0x6 // negative
	CondVS  Cond = 0x7 // overflow set
	CondA   Cond = 0x8 // always
	CondNE  Cond = 0x9 // not equal
	CondG   Cond = 0xA // greater
	CondGE  Cond = 0xB // greater or equal
	CondGU  Cond = 0xC // greater unsigned
	CondCC  Cond = 0xD // carry clear (greater or equal unsigned)
	CondPOS Cond = 0xE // positive
	CondVC  Cond = 0xF // overflow clear
)

var condNames = [16]string{
	"n", "e", "le", "l", "leu", "cs", "neg", "vs",
	"a", "ne", "g", "ge", "gu", "cc", "pos", "vc",
}

// Name returns the condition suffix used in mnemonics ("e", "ne", …).
func (c Cond) Name() string { return condNames[c&0xF] }

// Op identifies a decoded instruction operation.
type Op uint8

// Instruction operations. The order groups by format; metadata lives in
// opInfo below.
const (
	OpInvalid Op = iota

	// Format 1.
	OpCALL

	// Format 2.
	OpSETHI
	OpBicc
	OpUNIMP

	// Format 3, op=2: logical and arithmetic.
	OpADD
	OpADDcc
	OpADDX
	OpADDXcc
	OpSUB
	OpSUBcc
	OpSUBX
	OpSUBXcc
	OpAND
	OpANDcc
	OpANDN
	OpANDNcc
	OpOR
	OpORcc
	OpORN
	OpORNcc
	OpXOR
	OpXORcc
	OpXNOR
	OpXNORcc
	OpSLL
	OpSRL
	OpSRA
	OpUMUL
	OpUMULcc
	OpSMUL
	OpSMULcc
	OpUDIV
	OpUDIVcc
	OpSDIV
	OpSDIVcc
	OpMULScc

	// Format 3, op=2: state registers and control transfer.
	OpRDY
	OpRDPSR
	OpRDWIM
	OpRDTBR
	OpWRY
	OpWRPSR
	OpWRWIM
	OpWRTBR
	OpJMPL
	OpRETT
	OpTicc
	OpFLUSH
	OpSAVE
	OpRESTORE

	// Liquid Architecture custom extension (CPop1 space, §2 of the
	// paper: "new instructions to the SPARC base instruction set").
	// rd := rd + rs1*rs2, single cycle when the MAC unit is configured.
	OpLQMAC

	// Format 3, op=3: loads and stores.
	OpLD
	OpLDUB
	OpLDUH
	OpLDSB
	OpLDSH
	OpLDD
	OpST
	OpSTB
	OpSTH
	OpSTD
	OpLDSTUB
	OpSWAP

	numOps
)

// Class describes how an Op is encoded and which operands it carries.
type Class uint8

// Instruction classes.
const (
	ClassCall   Class = iota // format 1: disp30
	ClassSethi               // format 2: rd, imm22
	ClassBranch              // format 2: annul, cond, disp22
	ClassUnimp               // format 2: const22
	ClassALU                 // format 3 op=2: rd, rs1, rs2/simm13
	ClassLoad                // format 3 op=3: rd, [rs1+rs2/simm13]
	ClassStore               // format 3 op=3: rd, [rs1+rs2/simm13]
)

type opInfo struct {
	name  string
	class Class
	op3   uint8 // op3 field for format 3, op2 field for format 2
	op    uint8 // major op (0-3)
}

var opTable = [numOps]opInfo{
	OpInvalid: {"invalid", ClassUnimp, 0, 0},
	OpCALL:    {"call", ClassCall, 0, 1},
	OpSETHI:   {"sethi", ClassSethi, 0x4, 0},
	OpBicc:    {"b", ClassBranch, 0x2, 0},
	OpUNIMP:   {"unimp", ClassUnimp, 0x0, 0},

	OpADD:     {"add", ClassALU, 0x00, 2},
	OpAND:     {"and", ClassALU, 0x01, 2},
	OpOR:      {"or", ClassALU, 0x02, 2},
	OpXOR:     {"xor", ClassALU, 0x03, 2},
	OpSUB:     {"sub", ClassALU, 0x04, 2},
	OpANDN:    {"andn", ClassALU, 0x05, 2},
	OpORN:     {"orn", ClassALU, 0x06, 2},
	OpXNOR:    {"xnor", ClassALU, 0x07, 2},
	OpADDX:    {"addx", ClassALU, 0x08, 2},
	OpUMUL:    {"umul", ClassALU, 0x0A, 2},
	OpSMUL:    {"smul", ClassALU, 0x0B, 2},
	OpSUBX:    {"subx", ClassALU, 0x0C, 2},
	OpUDIV:    {"udiv", ClassALU, 0x0E, 2},
	OpSDIV:    {"sdiv", ClassALU, 0x0F, 2},
	OpADDcc:   {"addcc", ClassALU, 0x10, 2},
	OpANDcc:   {"andcc", ClassALU, 0x11, 2},
	OpORcc:    {"orcc", ClassALU, 0x12, 2},
	OpXORcc:   {"xorcc", ClassALU, 0x13, 2},
	OpSUBcc:   {"subcc", ClassALU, 0x14, 2},
	OpANDNcc:  {"andncc", ClassALU, 0x15, 2},
	OpORNcc:   {"orncc", ClassALU, 0x16, 2},
	OpXNORcc:  {"xnorcc", ClassALU, 0x17, 2},
	OpADDXcc:  {"addxcc", ClassALU, 0x18, 2},
	OpUMULcc:  {"umulcc", ClassALU, 0x1A, 2},
	OpSMULcc:  {"smulcc", ClassALU, 0x1B, 2},
	OpSUBXcc:  {"subxcc", ClassALU, 0x1C, 2},
	OpUDIVcc:  {"udivcc", ClassALU, 0x1E, 2},
	OpSDIVcc:  {"sdivcc", ClassALU, 0x1F, 2},
	OpMULScc:  {"mulscc", ClassALU, 0x24, 2},
	OpSLL:     {"sll", ClassALU, 0x25, 2},
	OpSRL:     {"srl", ClassALU, 0x26, 2},
	OpSRA:     {"sra", ClassALU, 0x27, 2},
	OpRDY:     {"rd", ClassALU, 0x28, 2},
	OpRDPSR:   {"rd", ClassALU, 0x29, 2},
	OpRDWIM:   {"rd", ClassALU, 0x2A, 2},
	OpRDTBR:   {"rd", ClassALU, 0x2B, 2},
	OpWRY:     {"wr", ClassALU, 0x30, 2},
	OpWRPSR:   {"wr", ClassALU, 0x31, 2},
	OpWRWIM:   {"wr", ClassALU, 0x32, 2},
	OpWRTBR:   {"wr", ClassALU, 0x33, 2},
	OpLQMAC:   {"lqmac", ClassALU, 0x36, 2},
	OpJMPL:    {"jmpl", ClassALU, 0x38, 2},
	OpRETT:    {"rett", ClassALU, 0x39, 2},
	OpTicc:    {"t", ClassALU, 0x3A, 2},
	OpFLUSH:   {"flush", ClassALU, 0x3B, 2},
	OpSAVE:    {"save", ClassALU, 0x3C, 2},
	OpRESTORE: {"restore", ClassALU, 0x3D, 2},

	OpLD:     {"ld", ClassLoad, 0x00, 3},
	OpLDUB:   {"ldub", ClassLoad, 0x01, 3},
	OpLDUH:   {"lduh", ClassLoad, 0x02, 3},
	OpLDD:    {"ldd", ClassLoad, 0x03, 3},
	OpST:     {"st", ClassStore, 0x04, 3},
	OpSTB:    {"stb", ClassStore, 0x05, 3},
	OpSTH:    {"sth", ClassStore, 0x06, 3},
	OpSTD:    {"std", ClassStore, 0x07, 3},
	OpLDSB:   {"ldsb", ClassLoad, 0x09, 3},
	OpLDSH:   {"ldsh", ClassLoad, 0x0A, 3},
	OpLDSTUB: {"ldstub", ClassLoad, 0x0D, 3},
	OpSWAP:   {"swap", ClassLoad, 0x0F, 3},
}

// Name returns the base mnemonic of the operation (without condition
// suffixes for branches and traps).
func (o Op) Name() string {
	if o >= numOps {
		return "invalid"
	}
	return opTable[o].name
}

// Class returns the encoding class of the operation.
func (o Op) Class() Class {
	if o >= numOps {
		return ClassUnimp
	}
	return opTable[o].class
}

// IsLoad reports whether the operation reads data memory.
func (o Op) IsLoad() bool { return o.Class() == ClassLoad }

// IsStore reports whether the operation writes data memory.
func (o Op) IsStore() bool { return o.Class() == ClassStore }

// IsDouble reports whether the operation moves a doubleword (LDD/STD).
func (o Op) IsDouble() bool { return o == OpLDD || o == OpSTD }

// Inst is a decoded instruction. Fields not meaningful for the
// operation's class are zero.
type Inst struct {
	Op     Op
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int32 // simm13, imm22, or word-displacement for CALL/Bicc
	UseImm bool  // i bit: use Imm instead of Rs2
	Annul  bool  // branch annul bit
	Cond   Cond  // Bicc/Ticc condition
	Raw    uint32
}

// signExtend returns the low n bits of v sign-extended to 32 bits.
func signExtend(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// reverse lookup tables built at init: op3 → Op for the two format-3
// major opcodes, and op2 → Op for format 2.
var (
	aluOps [64]Op
	memOps [64]Op
)

func init() {
	for op := Op(1); op < numOps; op++ {
		info := opTable[op]
		switch {
		case info.op == 2:
			aluOps[info.op3] = op
		case info.op == 3:
			memOps[info.op3] = op
		}
	}
}

// Decode decodes a 32-bit instruction word. An unrecognised encoding
// yields an Inst with Op == OpInvalid and a non-nil error; the CPU model
// maps that to an illegal_instruction trap.
func Decode(w uint32) (Inst, error) {
	in := Inst{Raw: w}
	op := w >> 30
	switch op {
	case 1: // CALL
		in.Op = OpCALL
		in.Imm = signExtend(w&0x3FFFFFFF, 30)
		return in, nil
	case 0: // format 2
		op2 := (w >> 22) & 0x7
		switch op2 {
		case 0x4: // SETHI
			in.Op = OpSETHI
			in.Rd = Reg((w >> 25) & 0x1F)
			in.Imm = int32(w & 0x3FFFFF)
			return in, nil
		case 0x2: // Bicc
			in.Op = OpBicc
			in.Annul = w&(1<<29) != 0
			in.Cond = Cond((w >> 25) & 0xF)
			in.Imm = signExtend(w&0x3FFFFF, 22)
			return in, nil
		case 0x0: // UNIMP
			in.Op = OpUNIMP
			in.Imm = int32(w & 0x3FFFFF)
			return in, nil
		}
		return in, fmt.Errorf("isa: unimplemented format-2 op2 %#x in %#08x", op2, w)
	default: // format 3
		op3 := (w >> 19) & 0x3F
		var o Op
		if op == 2 {
			o = aluOps[op3]
		} else {
			o = memOps[op3]
		}
		if o == OpInvalid {
			return in, fmt.Errorf("isa: unimplemented op3 %#x (op=%d) in %#08x", op3, op, w)
		}
		in.Op = o
		in.Rs1 = Reg((w >> 14) & 0x1F)
		if o == OpTicc {
			// The rd field holds the trap condition, not a register.
			in.Cond = Cond((w >> 25) & 0xF)
		} else {
			in.Rd = Reg((w >> 25) & 0x1F)
		}
		if w&(1<<13) != 0 {
			in.UseImm = true
			in.Imm = signExtend(w&0x1FFF, 13)
		} else {
			in.Rs2 = Reg(w & 0x1F)
		}
		// The RD-state-register group architecturally ignores its
		// source operand fields (rs1≠0 would select unimplemented
		// ASRs); canonicalize them away.
		switch o {
		case OpRDY, OpRDPSR, OpRDWIM, OpRDTBR:
			in.Rs1, in.Rs2, in.Imm, in.UseImm = 0, 0, 0, false
		case OpWRY, OpWRPSR, OpWRWIM, OpWRTBR, OpRETT, OpFLUSH:
			// The rd field selects ASRs for WRY and is reserved for
			// RETT/FLUSH; only rd=0 is implemented.
			in.Rd = 0
		}
		return in, nil
	}
}

// Encode produces the 32-bit instruction word for in. It validates
// immediate ranges and returns an error for values that do not fit.
func Encode(in Inst) (uint32, error) {
	if in.Op == OpInvalid || in.Op >= numOps {
		return 0, fmt.Errorf("isa: cannot encode invalid op %d", in.Op)
	}
	info := opTable[in.Op]
	switch info.class {
	case ClassCall:
		if in.Imm < -(1<<29) || in.Imm >= 1<<29 {
			return 0, fmt.Errorf("isa: call displacement %d out of range", in.Imm)
		}
		return 1<<30 | uint32(in.Imm)&0x3FFFFFFF, nil
	case ClassSethi:
		if in.Imm < 0 || in.Imm >= 1<<22 {
			return 0, fmt.Errorf("isa: sethi immediate %#x out of range", in.Imm)
		}
		return uint32(in.Rd)<<25 | 0x4<<22 | uint32(in.Imm), nil
	case ClassBranch:
		if in.Imm < -(1<<21) || in.Imm >= 1<<21 {
			return 0, fmt.Errorf("isa: branch displacement %d out of range", in.Imm)
		}
		w := uint32(in.Cond)<<25 | 0x2<<22 | uint32(in.Imm)&0x3FFFFF
		if in.Annul {
			w |= 1 << 29
		}
		return w, nil
	case ClassUnimp:
		return uint32(in.Imm) & 0x3FFFFF, nil
	default: // format 3
		w := uint32(info.op)<<30 | uint32(in.Rd)<<25 | uint32(info.op3)<<19 | uint32(in.Rs1)<<14
		if in.Op == OpTicc {
			w = uint32(info.op)<<30 | uint32(in.Cond)<<25 | uint32(info.op3)<<19 | uint32(in.Rs1)<<14
		}
		if in.UseImm {
			if in.Imm < -4096 || in.Imm > 4095 {
				return 0, fmt.Errorf("isa: simm13 %d out of range", in.Imm)
			}
			w |= 1<<13 | uint32(in.Imm)&0x1FFF
		} else {
			w |= uint32(in.Rs2)
		}
		return w, nil
	}
}

// NOP is the canonical no-operation encoding (sethi 0, %g0).
const NOP uint32 = 0x01000000
