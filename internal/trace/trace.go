// Package trace implements the Trace Analyzer of Fig. 1: "execution
// traces are analyzed to identify candidate portions of an application
// whose performance could be improved through reconfigurability". It
// captures instruction and data streams from the CPU's trace hooks and
// answers the questions the Architecture Generator asks: where are the
// hot spots, how big is the working set, and how would a different
// cache geometry have behaved (by replaying the recorded address
// stream through cache models, far cheaper than re-running the
// program).
package trace

import (
	"fmt"
	"sort"

	"liquidarch/internal/amba"
	"liquidarch/internal/cache"
	"liquidarch/internal/cpu"
	"liquidarch/internal/isa"
)

// MemEvent is one data-memory access.
type MemEvent struct {
	Addr  uint32
	Size  uint8
	Write bool
}

// Recorder captures a program's execution behaviour. Attach it to a
// CPU before the run and Detach after.
type Recorder struct {
	// MaxEvents caps the stored data stream (default 4M); further
	// events are counted in Dropped but not stored.
	MaxEvents int

	pcHeat  map[uint32]uint64
	mem     []MemEvent
	opMix   map[isa.Op]uint64
	insts   uint64
	dropped uint64

	prevExec func(uint32, isa.Inst)
	prevMem  func(uint32, amba.Size, bool)
	attached *cpu.CPU
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		MaxEvents: 4 << 20,
		pcHeat:    make(map[uint32]uint64),
		opMix:     make(map[isa.Op]uint64),
	}
}

// Attach installs the recorder on c's trace hooks (chaining any
// existing hooks).
func (r *Recorder) Attach(c *cpu.CPU) {
	r.attached = c
	r.prevExec, r.prevMem = c.OnExec, c.OnMem
	c.OnExec = func(pc uint32, in isa.Inst) {
		r.insts++
		r.pcHeat[pc]++
		r.opMix[in.Op]++
		if r.prevExec != nil {
			r.prevExec(pc, in)
		}
	}
	c.OnMem = func(addr uint32, size amba.Size, write bool) {
		if len(r.mem) < r.MaxEvents {
			r.mem = append(r.mem, MemEvent{Addr: addr, Size: uint8(size), Write: write})
		} else {
			r.dropped++
		}
		if r.prevMem != nil {
			r.prevMem(addr, size, write)
		}
	}
}

// Detach removes the recorder, restoring prior hooks.
func (r *Recorder) Detach() {
	if r.attached == nil {
		return
	}
	r.attached.OnExec = r.prevExec
	r.attached.OnMem = r.prevMem
	r.attached = nil
}

// Reset discards captured data.
func (r *Recorder) Reset() {
	r.pcHeat = make(map[uint32]uint64)
	r.opMix = make(map[isa.Op]uint64)
	r.mem = r.mem[:0]
	r.insts, r.dropped = 0, 0
}

// Instructions returns the executed-instruction count.
func (r *Recorder) Instructions() uint64 { return r.insts }

// MemEvents returns the captured data stream.
func (r *Recorder) MemEvents() []MemEvent { return r.mem }

// Dropped returns how many events exceeded MaxEvents.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// OpMix returns per-operation execution counts.
func (r *Recorder) OpMix() map[isa.Op]uint64 {
	out := make(map[isa.Op]uint64, len(r.opMix))
	for k, v := range r.opMix {
		out[k] = v
	}
	return out
}

// HotSpot is a program counter and its execution count.
type HotSpot struct {
	PC    uint32 `json:"pc"`
	Count uint64 `json:"count"`
}

// HotSpots returns the n most-executed instruction addresses,
// descending — the candidate regions for reconfiguration.
func (r *Recorder) HotSpots(n int) []HotSpot {
	all := make([]HotSpot, 0, len(r.pcHeat))
	for pc, c := range r.pcHeat {
		all = append(all, HotSpot{PC: pc, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].PC < all[j].PC
	})
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}

// WorkingSet returns the number of distinct lineBytes-sized blocks the
// data stream touched, and the total bytes they span.
func (r *Recorder) WorkingSet(lineBytes int) (lines int, bytes int) {
	if lineBytes <= 0 {
		lineBytes = 32
	}
	seen := make(map[uint32]struct{})
	for _, e := range r.mem {
		seen[e.Addr/uint32(lineBytes)] = struct{}{}
	}
	return len(seen), len(seen) * lineBytes
}

// SweepResult is the predicted behaviour of one cache configuration on
// the recorded stream.
type SweepResult struct {
	Config    cache.Config
	Stats     cache.Stats
	MissRatio float64
}

// SweepCaches replays the recorded data stream through each cache
// configuration and reports the resulting miss behaviour. This is the
// "Sim" feedback path of Fig. 1 run at trace speed.
func (r *Recorder) SweepCaches(configs []cache.Config) ([]SweepResult, error) {
	out := make([]SweepResult, 0, len(configs))
	for _, cfg := range configs {
		st, err := Replay(r.mem, cfg)
		if err != nil {
			return nil, fmt.Errorf("trace: sweep %v: %w", cfg, err)
		}
		out = append(out, SweepResult{Config: cfg, Stats: st, MissRatio: st.MissRatio()})
	}
	return out, nil
}

// sinkSlave accepts every address with fixed latency; it backs replay
// caches so any recorded address is mappable.
type sinkSlave struct{}

func (sinkSlave) Read(addr uint32, size amba.Size) (uint32, int, error)      { return 0, 1, nil }
func (sinkSlave) Write(addr uint32, val uint32, size amba.Size) (int, error) { return 1, nil }
func (sinkSlave) ReadBurst(addr uint32, words []uint32) (int, error)         { return 1 + len(words), nil }

// Replay runs a memory-event stream through a fresh cache of the given
// geometry and returns its statistics.
func Replay(events []MemEvent, cfg cache.Config) (cache.Stats, error) {
	bus := amba.NewAHB()
	if err := bus.Map("sink", 0, 0xFFFFFFFF, sinkSlave{}); err != nil {
		return cache.Stats{}, err
	}
	c, err := cache.New(cfg, bus)
	if err != nil {
		return cache.Stats{}, err
	}
	for _, e := range events {
		sz := amba.Size(e.Size)
		if sz != amba.SizeByte && sz != amba.SizeHalf && sz != amba.SizeWord {
			sz = amba.SizeWord
		}
		addr := e.Addr &^ (uint32(sz) - 1)
		if e.Write {
			if _, err := c.Write(addr, 0, sz); err != nil {
				return cache.Stats{}, err
			}
		} else {
			if _, _, err := c.Read(addr, sz); err != nil {
				return cache.Stats{}, err
			}
		}
	}
	return c.Stats(), nil
}
