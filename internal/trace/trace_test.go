package trace

import (
	"testing"

	"liquidarch/internal/amba"
	"liquidarch/internal/cache"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
)

// recordRun compiles src, runs it on a default LEON with a recorder
// attached, and returns the recorder.
func recordRun(t *testing.T, src string) *Recorder {
	t.Helper()
	asmSrc, err := lcc.Compile(src, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Build(asmSrc, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	rec.Attach(soc.CPU)
	defer rec.Detach()
	res, err := ctrl.Execute(img.Entry, 0)
	if err != nil || res.Faulted {
		t.Fatalf("run: %v %+v", err, res)
	}
	return rec
}

// sweepProgram is the paper's Fig. 7 kernel: stride-32 indices into a
// 4 KB array touch 32 cache lines spread over 4 KB, so a direct-mapped
// cache below 4 KB conflict-misses on every access while a 4 KB+ cache
// only takes the 32 cold misses.
const sweepProgram = `
int count[1024];
int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 65536; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    return x;
}`

func TestRecorderCapturesRun(t *testing.T) {
	rec := recordRun(t, sweepProgram)
	if rec.Instructions() == 0 {
		t.Fatal("no instructions recorded")
	}
	// With register-allocated locals, the data stream is essentially
	// one array read per iteration (2048 iterations).
	if len(rec.MemEvents()) < 2048 {
		t.Errorf("only %d memory events (want one per iteration)", len(rec.MemEvents()))
	}
	if rec.Dropped() != 0 {
		t.Errorf("%d events dropped", rec.Dropped())
	}
	mix := rec.OpMix()
	if len(mix) == 0 {
		t.Error("empty op mix")
	}
}

func TestHotSpotsFindTheLoop(t *testing.T) {
	rec := recordRun(t, sweepProgram)
	hs := rec.HotSpots(5)
	if len(hs) != 5 {
		t.Fatalf("%d hot spots", len(hs))
	}
	// The hottest PC runs ≥ 2048 times (the loop body).
	if hs[0].Count < 2048 {
		t.Errorf("hottest PC runs %d times", hs[0].Count)
	}
	// Descending order.
	for i := 1; i < len(hs); i++ {
		if hs[i].Count > hs[i-1].Count {
			t.Error("hot spots not sorted")
		}
	}
	// Asking for everything works too.
	if all := rec.HotSpots(0); len(all) < 5 {
		t.Errorf("HotSpots(0) = %d entries", len(all))
	}
}

func TestWorkingSetMatchesArray(t *testing.T) {
	rec := recordRun(t, sweepProgram)
	lines, bytes := rec.WorkingSet(32)
	// The kernel touches 32 array lines; locals add a few.
	if lines < 32 || lines > 64 {
		t.Errorf("working set = %d lines", lines)
	}
	if bytes != lines*32 {
		t.Errorf("bytes = %d", bytes)
	}
	// Default line size kicks in for bad input.
	if l2, _ := rec.WorkingSet(0); l2 != lines {
		t.Errorf("WorkingSet(0) = %d, want %d", l2, lines)
	}
}

// TestSweepShowsFig8Cliff: replaying the recorded stream through the
// paper's cache sizes must show the miss cliff at the 4 KB working
// set.
func TestSweepShowsFig8Cliff(t *testing.T) {
	rec := recordRun(t, sweepProgram)
	var cfgs []cache.Config
	for _, size := range []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10} {
		cfgs = append(cfgs, cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1})
	}
	results, err := rec.SweepCaches(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d results", len(results))
	}
	// Small caches miss much more than large ones.
	if results[0].MissRatio < 5*results[3].MissRatio {
		t.Errorf("1KB miss ratio %.4f not ≫ 8KB %.4f",
			results[0].MissRatio, results[3].MissRatio)
	}
	// Monotone non-increasing.
	for i := 1; i < len(results); i++ {
		if results[i].MissRatio > results[i-1].MissRatio+1e-9 {
			t.Errorf("miss ratio not monotone: %v", results)
		}
	}
	// ≥4KB cache: only the 32 cold misses remain.
	if results[2].MissRatio > 0.05 {
		t.Errorf("4KB miss ratio %.4f, want near cold-only", results[2].MissRatio)
	}
}

func TestReplayDirect(t *testing.T) {
	events := []MemEvent{
		{Addr: 0, Size: 4}, {Addr: 0, Size: 4}, // miss, hit
		{Addr: 64, Size: 4, Write: true},
		{Addr: 3, Size: 1}, {Addr: 6, Size: 2},
		{Addr: 5, Size: 7}, // bogus size normalizes to word
	}
	st, err := Replay(events, cache.Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Invalid cache config surfaces.
	if _, err := Replay(events, cache.Config{SizeBytes: 3}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestMaxEventsCap(t *testing.T) {
	rec := NewRecorder()
	rec.MaxEvents = 10
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec.Attach(soc.CPU)
	for i := 0; i < 50; i++ {
		soc.CPU.OnMem(uint32(i*4), 4, false)
	}
	rec.Detach()
	if len(rec.MemEvents()) != 10 {
		t.Errorf("stored %d events", len(rec.MemEvents()))
	}
	if rec.Dropped() != 40 {
		t.Errorf("dropped = %d", rec.Dropped())
	}
	rec.Reset()
	if len(rec.MemEvents()) != 0 || rec.Dropped() != 0 || rec.Instructions() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestAttachChainsAndDetachRestoresHooks(t *testing.T) {
	soc, err := leon.New(leon.DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var priorCalls int
	prior := func(addr uint32, size amba.Size, write bool) { priorCalls++ }
	soc.CPU.OnMem = prior
	rec := NewRecorder()
	rec.Attach(soc.CPU)
	soc.CPU.OnMem(4, amba.SizeWord, false)
	if priorCalls != 1 {
		t.Error("prior hook not chained")
	}
	if len(rec.MemEvents()) != 1 {
		t.Error("recorder missed chained event")
	}
	rec.Detach()
	soc.CPU.OnMem(8, amba.SizeWord, false)
	if priorCalls != 2 {
		t.Error("prior hook not restored after Detach")
	}
	if len(rec.MemEvents()) != 1 {
		t.Error("recorder still attached after Detach")
	}
	rec.Detach() // idempotent
}
