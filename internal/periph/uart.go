package periph

import (
	"fmt"
	"io"
)

// UART status register bits.
const (
	UARTDataReady   = 1 << 0 // receive holding register has a byte
	UARTTxShiftDone = 1 << 1
	UARTTxHoldEmpty = 1 << 2 // transmitter can accept a byte
)

// UART control register bits.
const (
	UARTRxEnable  = 1 << 0
	UARTTxEnable  = 1 << 1
	UARTRxIRQ     = 1 << 2 // interrupt on receive
	UARTLoopbback = 1 << 7
)

// UART is the LEON2-style serial port. Transmitted bytes go to an
// io.Writer (typically a bytes.Buffer in tests, or stdout); received
// bytes are injected with Feed.
//
// Register map (word offsets):
//
//	0x00  data    (read: rx holding; write: transmit)
//	0x04  status  (read-only)
//	0x08  control (r/w)
//	0x0C  scaler  (r/w, baud generator — kept but not timed)
type UART struct {
	tx      io.Writer
	rxQueue []byte
	ctrl    uint32
	scaler  uint32

	irq     int
	irqctrl *IRQCtrl

	TxCount uint64
}

// NewUART returns a UART that writes transmitted bytes to w (nil
// discards them) and raises irq on irqctrl when receive interrupts are
// enabled.
func NewUART(w io.Writer, irqctrl *IRQCtrl, irq int) *UART {
	return &UART{tx: w, ctrl: UARTRxEnable | UARTTxEnable, irqctrl: irqctrl, irq: irq}
}

// Feed injects received bytes (the host side of the serial line).
func (u *UART) Feed(p []byte) {
	if u.ctrl&UARTRxEnable == 0 {
		return
	}
	u.rxQueue = append(u.rxQueue, p...)
	if len(p) > 0 && u.ctrl&UARTRxIRQ != 0 && u.irqctrl != nil {
		u.irqctrl.Raise(u.irq)
	}
}

// ReadReg implements amba.Device.
func (u *UART) ReadReg(off uint32) (uint32, error) {
	switch off {
	case 0x00:
		if len(u.rxQueue) == 0 {
			return 0, nil
		}
		b := u.rxQueue[0]
		u.rxQueue = u.rxQueue[1:]
		return uint32(b), nil
	case 0x04:
		st := uint32(UARTTxShiftDone | UARTTxHoldEmpty)
		if len(u.rxQueue) > 0 {
			st |= UARTDataReady
		}
		return st, nil
	case 0x08:
		return u.ctrl, nil
	case 0x0C:
		return u.scaler, nil
	default:
		return 0, fmt.Errorf("periph: uart has no register at %#x", off)
	}
}

// WriteReg implements amba.Device.
func (u *UART) WriteReg(off uint32, v uint32) error {
	switch off {
	case 0x00:
		if u.ctrl&UARTTxEnable == 0 {
			return nil
		}
		u.TxCount++
		if u.ctrl&UARTLoopbback != 0 {
			u.rxQueue = append(u.rxQueue, byte(v))
			return nil
		}
		if u.tx != nil {
			if _, err := u.tx.Write([]byte{byte(v)}); err != nil {
				return fmt.Errorf("periph: uart tx: %w", err)
			}
		}
		return nil
	case 0x04:
		return nil // status read-only
	case 0x08:
		u.ctrl = v
		return nil
	case 0x0C:
		u.scaler = v
		return nil
	default:
		return fmt.Errorf("periph: uart has no register at %#x", off)
	}
}
