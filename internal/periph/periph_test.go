package periph

import (
	"bytes"
	"testing"
)

func TestIRQPriorityAndMask(t *testing.T) {
	c := &IRQCtrl{}
	if c.Pending() != 0 {
		t.Fatal("fresh controller has pending irq")
	}
	c.WriteReg(0x04, 0xFFFE) // unmask all
	c.Raise(3)
	c.Raise(9)
	if got := c.Pending(); got != 9 {
		t.Errorf("Pending = %d, want highest (9)", got)
	}
	c.Ack(9)
	if got := c.Pending(); got != 3 {
		t.Errorf("after Ack(9): Pending = %d, want 3", got)
	}
	// Masked interrupts don't surface but stay pending.
	c.WriteReg(0x04, 0)
	if got := c.Pending(); got != 0 {
		t.Errorf("masked Pending = %d", got)
	}
	if v, _ := c.ReadReg(0x00); v&(1<<3) == 0 {
		t.Error("pending bit lost while masked")
	}
	// Out-of-range lines ignored.
	c.Raise(0)
	c.Raise(16)
	if v, _ := c.ReadReg(0x00); v != 1<<3 {
		t.Errorf("pending = %#x after bogus raises", v)
	}
}

func TestIRQForceAndClear(t *testing.T) {
	c := &IRQCtrl{}
	c.WriteReg(0x04, 0xFFFE)
	c.WriteReg(0x08, 1<<5) // force
	if c.Pending() != 5 {
		t.Errorf("forced Pending = %d", c.Pending())
	}
	c.WriteReg(0x0C, 1<<5) // clear
	if c.Pending() != 0 {
		t.Errorf("cleared Pending = %d", c.Pending())
	}
	// Pending register is read-only.
	c.WriteReg(0x00, 0xFFFF)
	if v, _ := c.ReadReg(0x00); v != 0 {
		t.Error("write to pending took effect")
	}
	if _, err := c.ReadReg(0x40); err == nil {
		t.Error("bogus register read succeeded")
	}
	if err := c.WriteReg(0x40, 0); err == nil {
		t.Error("bogus register write succeeded")
	}
}

func TestTimerOneShot(t *testing.T) {
	ic := &IRQCtrl{}
	ic.WriteReg(0x04, 0xFFFE)
	tm := NewTimer(ic, 8)
	tm.WriteReg(0x00, 10)
	tm.WriteReg(0x08, TimerEnable|TimerIRQEnable)
	tm.Tick(9)
	if v, _ := tm.ReadReg(0x00); v != 1 {
		t.Errorf("counter = %d after 9 ticks, want 1", v)
	}
	if ic.Pending() != 0 {
		t.Error("irq raised early")
	}
	tm.Tick(1)
	if ic.Pending() != 8 {
		t.Errorf("Pending = %d after underflow, want 8", ic.Pending())
	}
	if tm.Underflows != 1 {
		t.Errorf("Underflows = %d", tm.Underflows)
	}
	// One-shot: enable bit cleared, further ticks do nothing.
	if v, _ := tm.ReadReg(0x08); v&TimerEnable != 0 {
		t.Error("one-shot timer still enabled after underflow")
	}
	tm.Tick(100)
	if tm.Underflows != 1 {
		t.Errorf("one-shot underflowed again: %d", tm.Underflows)
	}
}

func TestTimerPeriodicReload(t *testing.T) {
	tm := NewTimer(nil, 8)
	tm.WriteReg(0x04, 4)                                 // reload
	tm.WriteReg(0x08, TimerEnable|TimerReload|TimerLoad) // load now
	if v, _ := tm.ReadReg(0x00); v != 4 {
		t.Fatalf("counter = %d after load, want 4", v)
	}
	tm.Tick(20) // 5 ticks per period
	if tm.Underflows != 5 {
		t.Errorf("Underflows = %d after 20 ticks of period 4, want 5", tm.Underflows)
	}
	// TimerLoad bit never reads back.
	if v, _ := tm.ReadReg(0x08); v&TimerLoad != 0 {
		t.Error("load bit latched")
	}
}

func TestPrescalerDividesClock(t *testing.T) {
	tm := NewTimer(nil, 8)
	tm.WriteReg(0x00, 1000)
	tm.WriteReg(0x08, TimerEnable)
	p := NewPrescaler(tm)
	p.WriteReg(0x04, 9) // divide by 10
	p.WriteReg(0x00, 9)
	p.Tick(100)
	if v, _ := tm.ReadReg(0x00); v != 990 {
		t.Errorf("timer = %d after 100 cycles at /10, want 990", v)
	}
	// Partial periods accumulate correctly.
	p.Tick(5)
	p.Tick(5)
	if v, _ := tm.ReadReg(0x00); v != 989 {
		t.Errorf("timer = %d after 110 cycles at /10, want 989", v)
	}
}

func TestPrescalerZeroReloadPassesThrough(t *testing.T) {
	tm := NewTimer(nil, 8)
	tm.WriteReg(0x00, 50)
	tm.WriteReg(0x08, TimerEnable)
	p := NewPrescaler(tm)
	p.Tick(7)
	if v, _ := tm.ReadReg(0x00); v != 43 {
		t.Errorf("timer = %d, want 43", v)
	}
}

func TestUARTTransmit(t *testing.T) {
	var buf bytes.Buffer
	u := NewUART(&buf, nil, 3)
	for _, b := range []byte("ok\n") {
		if err := u.WriteReg(0x00, uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	if buf.String() != "ok\n" {
		t.Errorf("tx = %q", buf.String())
	}
	if u.TxCount != 3 {
		t.Errorf("TxCount = %d", u.TxCount)
	}
	// Status always reports tx ready.
	st, _ := u.ReadReg(0x04)
	if st&UARTTxHoldEmpty == 0 {
		t.Error("tx not ready")
	}
}

func TestUARTReceiveAndIRQ(t *testing.T) {
	ic := &IRQCtrl{}
	ic.WriteReg(0x04, 0xFFFE)
	u := NewUART(nil, ic, 3)
	u.WriteReg(0x08, UARTRxEnable|UARTTxEnable|UARTRxIRQ)
	u.Feed([]byte{0x41, 0x42})
	if ic.Pending() != 3 {
		t.Errorf("rx irq not raised: Pending = %d", ic.Pending())
	}
	st, _ := u.ReadReg(0x04)
	if st&UARTDataReady == 0 {
		t.Fatal("data ready not set")
	}
	if v, _ := u.ReadReg(0x00); v != 0x41 {
		t.Errorf("rx byte 1 = %#x", v)
	}
	if v, _ := u.ReadReg(0x00); v != 0x42 {
		t.Errorf("rx byte 2 = %#x", v)
	}
	st, _ = u.ReadReg(0x04)
	if st&UARTDataReady != 0 {
		t.Error("data ready stuck after drain")
	}
	if v, _ := u.ReadReg(0x00); v != 0 {
		t.Errorf("empty rx read = %#x, want 0", v)
	}
	// Disabled receiver drops input.
	u.WriteReg(0x08, UARTTxEnable)
	u.Feed([]byte{0x43})
	if st, _ := u.ReadReg(0x04); st&UARTDataReady != 0 {
		t.Error("disabled receiver accepted data")
	}
}

func TestUARTLoopback(t *testing.T) {
	u := NewUART(nil, nil, 3)
	u.WriteReg(0x08, UARTRxEnable|UARTTxEnable|UARTLoopbback)
	u.WriteReg(0x00, 0x55)
	if v, _ := u.ReadReg(0x00); v != 0x55 {
		t.Errorf("loopback = %#x", v)
	}
}

func TestGPIO(t *testing.T) {
	var seen []uint32
	g := &GPIO{OnChange: func(v uint32) { seen = append(seen, v) }}
	g.WriteReg(0x00, 0xAA)
	g.WriteReg(0x00, 0x55)
	if g.Value() != 0x55 {
		t.Errorf("Value = %#x", g.Value())
	}
	if len(seen) != 2 || seen[0] != 0xAA || seen[1] != 0x55 {
		t.Errorf("OnChange saw %v", seen)
	}
	g.WriteReg(0x04, 0xF)
	if v, _ := g.ReadReg(0x04); v != 0xF {
		t.Errorf("dir = %#x", v)
	}
	if _, err := g.ReadReg(0x10); err == nil {
		t.Error("bogus gpio register read succeeded")
	}
}
