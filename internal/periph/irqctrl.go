// Package periph implements the LEON2-like APB peripherals of the
// Liquid processor system: the interrupt controller, the timer unit
// with prescaler, the UART ("simple serial controllers"), and the
// discrete output port driving the FPX LEDs (§1 of the paper lists
// these among the internal modules integrated with the core).
//
// Register layouts follow the LEON2 user manual shape but are
// simplified to the subset the Liquid system exercises.
package periph

import (
	"fmt"
	"math/bits"
)

// IRQ numbers 1-15 map to SPARC interrupt levels; 15 is unmaskable in
// real LEON but modelled as maskable here for simplicity.
const NumIRQs = 15

// IRQCtrl is the LEON interrupt controller: pending, mask and force
// registers. Devices raise lines with Raise; the CPU polls Pending and
// acknowledges with Ack.
//
// Register map (word offsets):
//
//	0x00  pending (read-only)
//	0x04  mask (r/w)
//	0x08  force (write: OR into pending)
//	0x0C  clear (write: AND-NOT from pending)
type IRQCtrl struct {
	pending uint32
	mask    uint32
}

// Raise asserts interrupt line irq (1-15).
func (c *IRQCtrl) Raise(irq int) {
	if irq >= 1 && irq <= NumIRQs {
		c.pending |= 1 << uint(irq)
	}
}

// Pending returns the highest-priority pending, unmasked interrupt
// level, or 0 when none.
func (c *IRQCtrl) Pending() int {
	// Called once per simulated instruction, so the common no-interrupt
	// case must be a single mask-and-compare. Bit 0 can never be set
	// (Raise and WriteReg both exclude it), so Len32 of a non-zero
	// value is always >= 2 and the result always a valid level.
	active := c.pending & c.mask
	if active == 0 {
		return 0
	}
	return bits.Len32(active) - 1
}

// Ack clears the pending bit for irq (the CPU taking the trap).
func (c *IRQCtrl) Ack(irq int) {
	if irq >= 1 && irq <= NumIRQs {
		c.pending &^= 1 << uint(irq)
	}
}

// ReadReg implements amba.Device.
func (c *IRQCtrl) ReadReg(off uint32) (uint32, error) {
	switch off {
	case 0x00:
		return c.pending, nil
	case 0x04:
		return c.mask, nil
	case 0x08, 0x0C:
		return 0, nil
	default:
		return 0, fmt.Errorf("periph: irqctrl has no register at %#x", off)
	}
}

// WriteReg implements amba.Device.
func (c *IRQCtrl) WriteReg(off uint32, v uint32) error {
	switch off {
	case 0x00:
		// pending is read-only
		return nil
	case 0x04:
		c.mask = v & 0xFFFE // bit 0 unused
		return nil
	case 0x08:
		c.pending |= v & 0xFFFE
		return nil
	case 0x0C:
		c.pending &^= v
		return nil
	default:
		return fmt.Errorf("periph: irqctrl has no register at %#x", off)
	}
}
