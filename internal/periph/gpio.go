package periph

import "fmt"

// GPIO is the discrete output port of the LEON system; on the FPX it
// drives the board LEDs (Fig. 3 shows the LED block on the APB). An
// optional OnChange callback observes writes.
//
// Register map (word offsets):
//
//	0x00  output value (r/w)
//	0x04  direction   (r/w, kept for completeness)
type GPIO struct {
	value uint32
	dir   uint32

	// OnChange, when non-nil, is invoked with the new output value
	// after every write to the value register.
	OnChange func(uint32)
}

// Value returns the current output value.
func (g *GPIO) Value() uint32 { return g.value }

// ReadReg implements amba.Device.
func (g *GPIO) ReadReg(off uint32) (uint32, error) {
	switch off {
	case 0x00:
		return g.value, nil
	case 0x04:
		return g.dir, nil
	default:
		return 0, fmt.Errorf("periph: gpio has no register at %#x", off)
	}
}

// WriteReg implements amba.Device.
func (g *GPIO) WriteReg(off uint32, v uint32) error {
	switch off {
	case 0x00:
		g.value = v
		if g.OnChange != nil {
			g.OnChange(v)
		}
		return nil
	case 0x04:
		g.dir = v
		return nil
	default:
		return fmt.Errorf("periph: gpio has no register at %#x", off)
	}
}
