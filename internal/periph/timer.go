package periph

import "fmt"

// Timer control register bits.
const (
	TimerEnable    = 1 << 0 // count down while set
	TimerReload    = 1 << 1 // reload from the reload register on underflow
	TimerLoad      = 1 << 2 // write-only: load counter from reload now
	TimerIRQEnable = 1 << 3 // raise the timer interrupt on underflow
)

// Timer is a LEON2-style down-counter behind a shared prescaler.
//
// Register map (word offsets):
//
//	0x00  counter (r/w)
//	0x04  reload  (r/w)
//	0x08  control (r/w: enable, reload, load, irq-enable)
type Timer struct {
	counter uint32
	reload  uint32
	ctrl    uint32

	irq     int // interrupt line to raise on underflow
	irqctrl *IRQCtrl

	Underflows uint64 // diagnostic counter
}

// NewTimer returns a stopped timer wired to irqctrl line irq.
func NewTimer(irqctrl *IRQCtrl, irq int) *Timer {
	return &Timer{irqctrl: irqctrl, irq: irq}
}

// Tick advances the timer by n prescaler ticks.
func (t *Timer) Tick(n uint64) {
	if t.ctrl&TimerEnable == 0 {
		return
	}
	for ; n > 0; n-- {
		if t.counter == 0 {
			t.underflow()
			continue
		}
		t.counter--
		if t.counter == 0 {
			t.underflow()
		}
	}
}

// ticksToUnderflow returns how many prescaler ticks away the next
// underflow is, or 0 when the timer is stopped and can never underflow.
// It mirrors Tick exactly: a zero counter underflows on the next tick
// (the "continue" branch), a counter of C underflows on tick C.
func (t *Timer) ticksToUnderflow() uint64 {
	if t.ctrl&TimerEnable == 0 {
		return 0
	}
	if t.counter == 0 {
		return 1
	}
	return uint64(t.counter)
}

func (t *Timer) underflow() {
	t.Underflows++
	if t.ctrl&TimerIRQEnable != 0 && t.irqctrl != nil {
		t.irqctrl.Raise(t.irq)
	}
	if t.ctrl&TimerReload != 0 {
		t.counter = t.reload
	} else {
		t.ctrl &^= TimerEnable // one-shot stops
	}
}

// ReadReg implements amba.Device.
func (t *Timer) ReadReg(off uint32) (uint32, error) {
	switch off {
	case 0x00:
		return t.counter, nil
	case 0x04:
		return t.reload, nil
	case 0x08:
		return t.ctrl &^ TimerLoad, nil
	default:
		return 0, fmt.Errorf("periph: timer has no register at %#x", off)
	}
}

// WriteReg implements amba.Device.
func (t *Timer) WriteReg(off uint32, v uint32) error {
	switch off {
	case 0x00:
		t.counter = v
	case 0x04:
		t.reload = v
	case 0x08:
		t.ctrl = v &^ TimerLoad
		if v&TimerLoad != 0 {
			t.counter = t.reload
		}
	default:
		return fmt.Errorf("periph: timer has no register at %#x", off)
	}
	return nil
}

// Prescaler divides the system clock for a set of timers, LEON2-style.
//
// Register map (word offsets):
//
//	0x00  scaler value (counts down each system cycle)
//	0x04  scaler reload
type Prescaler struct {
	value  uint32
	reload uint32
	timers []*Timer
}

// NewPrescaler returns a prescaler that ticks the given timers. A
// reload of 0 ticks the timers every system cycle.
func NewPrescaler(timers ...*Timer) *Prescaler {
	return &Prescaler{timers: timers}
}

// Tick advances the prescaler by n system clock cycles, ticking the
// attached timers as the scaler underflows. The no-underflow case is
// kept small enough to inline into the per-instruction step loop.
func (p *Prescaler) Tick(n uint64) {
	if v := uint64(p.value); n <= v && p.reload != 0 {
		p.value = uint32(v - n)
		return
	}
	p.tickSlow(n)
}

// tickSlow handles prescaler bypass (reload 0) and underflow.
func (p *Prescaler) tickSlow(n uint64) {
	if p.reload == 0 {
		for _, t := range p.timers {
			t.Tick(n)
		}
		return
	}
	period := uint64(p.reload) + 1
	// Cycles until the first underflow, then whole periods.
	ticks := uint64(0)
	if n > uint64(p.value) {
		rem := n - uint64(p.value) - 1
		ticks = 1 + rem/period
		p.value = uint32(period - 1 - rem%period)
	} else {
		p.value -= uint32(n)
	}
	if ticks > 0 {
		for _, t := range p.timers {
			t.Tick(ticks)
		}
	}
}

// NoEvent is the NextEventCycles return when no attached timer can
// underflow: no amount of ticking changes peripheral-visible state.
const NoEvent = ^uint64(0)

// NextEventCycles returns how many system clock cycles away the next
// attached-timer underflow is, or NoEvent when every timer is stopped.
// It is the event-horizon computation of the batched stepping loop: a
// fully settled prescaler (no pending ticks) is guaranteed to produce
// no underflow — no IRQ raise, no reload, no one-shot stop — for that
// many cycles, so the simulator may run the CPU that far and settle the
// ticks in bulk afterwards. Counter *values* still drift inside the
// window; readers must settle first (the SoC's APB hook does).
func (p *Prescaler) NextEventCycles() uint64 {
	minTicks := uint64(0)
	for _, t := range p.timers {
		if n := t.ticksToUnderflow(); n != 0 && (minTicks == 0 || n < minTicks) {
			minTicks = n
		}
	}
	if minTicks == 0 {
		return NoEvent
	}
	if p.reload == 0 {
		// Prescaler bypass: one tick per system cycle.
		return minTicks
	}
	// The first tick lands after value+1 cycles (Tick underflows when
	// n > value), each subsequent one a full period later.
	period := uint64(p.reload) + 1
	return uint64(p.value) + 1 + (minTicks-1)*period
}

// ReadReg implements amba.Device.
func (p *Prescaler) ReadReg(off uint32) (uint32, error) {
	switch off {
	case 0x00:
		return p.value, nil
	case 0x04:
		return p.reload, nil
	default:
		return 0, fmt.Errorf("periph: prescaler has no register at %#x", off)
	}
}

// WriteReg implements amba.Device.
func (p *Prescaler) WriteReg(off uint32, v uint32) error {
	switch off {
	case 0x00:
		p.value = v
	case 0x04:
		p.reload = v
	default:
		return fmt.Errorf("periph: prescaler has no register at %#x", off)
	}
	return nil
}
