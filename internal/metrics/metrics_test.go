package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	vec := r.CounterVec("test_labelled_total", "a labelled counter", "kind")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				vec.With("a").Inc()
				vec.With("b").Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	s := r.Snapshot()
	if got := s.Counter(`test_labelled_total{kind="a"}`); got != workers*perWorker {
		t.Errorf("vec a = %d, want %d", got, workers*perWorker)
	}
	if got := s.Counter(`test_labelled_total{kind="b"}`); got != 2*workers*perWorker {
		t.Errorf("vec b = %d, want %d", got, 2*workers*perWorker)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	// Bounds are inclusive upper edges.
	h.Observe(1)    // → le=1
	h.Observe(1.01) // → le=10
	h.Observe(10)   // → le=10
	h.Observe(100)  // → le=100
	h.Observe(101)  // → +Inf
	hv := r.Snapshot().Histograms["lat"]
	wantCum := []uint64{1, 3, 4, 5} // cumulative per bucket
	if len(hv.Buckets) != 4 {
		t.Fatalf("buckets = %d, want 4", len(hv.Buckets))
	}
	for i, b := range hv.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket[%d] (le=%s) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if hv.Buckets[3].LE != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", hv.Buckets[3].LE)
	}
	if hv.Count != 5 {
		t.Errorf("count = %d, want 5", hv.Count)
	}
	if want := 1 + 1.01 + 10 + 100 + 101; hv.Sum != want {
		t.Errorf("sum = %v, want %v", hv.Sum, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc", "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000 {
		t.Errorf("sum = %v, want 8000", h.Sum())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iso_total", "")
	g := r.Gauge("iso_gauge", "")
	h := r.Histogram("iso_hist", "", []float64{1})
	c.Inc()
	g.Set(5)
	h.Observe(0.5)
	snap := r.Snapshot()
	// Mutate after the snapshot; the snapshot must not move.
	c.Add(100)
	g.Set(-1)
	h.Observe(2)
	if got := snap.Counter("iso_total"); got != 1 {
		t.Errorf("snapshot counter moved: %d", got)
	}
	if got := snap.Gauges["iso_gauge"]; got != 5 {
		t.Errorf("snapshot gauge moved: %v", got)
	}
	if got := snap.Histograms["iso_hist"].Count; got != 1 {
		t.Errorf("snapshot histogram moved: %d", got)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("fn_gauge", "", func() float64 { return v })
	if got := r.Snapshot().Gauges["fn_gauge"]; got != 1 {
		t.Errorf("gauge = %v, want 1", got)
	}
	v = 42
	if got := r.Snapshot().Gauges["fn_gauge"]; got != 42 {
		t.Errorf("gauge = %v, want 42", got)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2.5)
	if g.Value() != 4 {
		t.Errorf("gauge = %v, want 4", g.Value())
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "")
	b := r.Counter("same_total", "")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("same_total", "")
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x", "").Inc()
	r.CounterVec("y", "", "l").With("v").Inc()
	r.Gauge("z", "").Set(1)
	r.GaugeFunc("w", "", func() float64 { return 0 })
	r.Histogram("h", "", []float64{1}).Observe(1)
	r.HistogramVec("hv", "", "l", []float64{1}).With("v").Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Error("nil registry recorded metrics")
	}
	var c *Counter
	c.Inc() // must not panic
	var h *Histogram
	h.Observe(1)
	var g *Gauge
	g.Add(1)
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Gauge("b", "").Set(2.5)
	r.Histogram("c", "", []float64{1, 2}).Observe(1.5)
	blob, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if got.Counter("a_total") != 3 || got.Gauges["b"] != 2.5 {
		t.Errorf("round trip lost values: %+v", got)
	}
	if got.Histograms["c"].Count != 1 || len(got.Histograms["c"].Buckets) != 3 {
		t.Errorf("round trip lost histogram: %+v", got.Histograms["c"])
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "l").With(`a"b\c`).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{l="a\"b\\c"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}
