package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"time"

	"liquidarch/internal/metrics/eventlog"
)

// Statusz is the JSON document served at /statusz: a metric snapshot
// plus the recent structured events.
type Statusz struct {
	Time    time.Time        `json:"time"`
	Metrics Snapshot         `json:"metrics"`
	Events  []eventlog.Event `json:"events,omitempty"`
}

// NewHTTPHandler serves the registry over HTTP:
//
//	/metrics        Prometheus text exposition
//	/statusz        JSON snapshot + recent event log
//	/debug/pprof/*  the standard Go profiler endpoints
//
// ev may be nil (no events section).
func NewHTTPHandler(r *Registry, ev *eventlog.Log) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := Statusz{Time: time.Now(), Metrics: r.Snapshot(), Events: ev.Events()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
