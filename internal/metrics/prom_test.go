package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden locks down the text exposition format: families
// sorted by name, HELP/TYPE headers, labelled series, cumulative
// histogram buckets with an +Inf edge and _sum/_count series.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "Requests handled.").Add(3)
	vec := r.CounterVec("demo_cmds_total", "Commands by name.", "cmd")
	vec.With("a").Inc()
	vec.With("b").Add(2)
	r.Gauge("demo_temp", "A settable gauge.").Set(36.6)
	r.GaugeFunc("demo_up", "A computed gauge.", func() float64 { return 1 })
	h := r.Histogram("demo_latency_seconds", "A histogram.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(4)
	hv := r.HistogramVec("demo_dur", "A labelled histogram.", "op", []float64{1})
	hv.With("read").Observe(1)
	// The reconfiguration server's node instruments: the bounded-queue
	// depth gauge and the drop counter with its backpressure reason.
	drops := r.CounterVec("liquid_server_drops_total", "Requests that produced no response, by reason.", "reason")
	drops.With("busy").Add(2)
	drops.With("peer_addr").Inc()
	r.GaugeFunc("liquid_server_queue_depth", "Commands queued across all board workers.", func() float64 { return 3 })
	// The reconfiguration service's instruments: synthesis-pool gauges
	// and the persistent-store counters.
	r.GaugeFunc("liquid_reconfig_queue_depth", "Tickets waiting for a synthesis-pool slot.", func() float64 { return 2 })
	r.GaugeFunc("liquid_reconfig_inflight", "Tickets currently synthesizing.", func() float64 { return 1 })
	r.GaugeFunc("liquid_reconfig_coalesced", "Requests deduplicated onto an in-flight synthesis.", func() float64 { return 7 })
	r.GaugeFunc("liquid_reconfig_persist_loaded", "Images warm-loaded from the persistent store.", func() float64 { return 4 })
	// An info-style constant gauge: fixed labels, value pinned to 1
	// (fixed fake labels here so the golden file is toolchain-stable).
	r.Info("demo_build_info", "Build metadata.",
		Label{Key: "go_version", Value: "go1.99"}, Label{Key: "protocol", Value: "4"})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prom.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Sanity: the format must also satisfy the basic line grammar.
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("line %q is not `series value`", line)
		}
	}
}
