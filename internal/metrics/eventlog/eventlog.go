// Package eventlog is the platform's structured event log: leveled,
// key=value, ring-buffered. It replaces the ad-hoc printf hook the
// reconfiguration server started with — events are kept in memory (a
// fixed ring, oldest evicted first) so the /statusz endpoint and
// post-mortem debugging can dump the recent history without the server
// ever having written to disk or stdout.
//
// A nil *Log is a no-op, so components can log unconditionally.
package eventlog

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level classifies events.
type Level uint8

// Levels, in increasing severity.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Level(%d)", uint8(l))
	}
}

// MarshalText implements encoding.TextMarshaler (JSON-friendly levels).
func (l Level) MarshalText() ([]byte, error) { return []byte(l.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler so JSON dumps of
// the log (e.g. /statusz) decode back into typed levels.
func (l *Level) UnmarshalText(text []byte) error {
	switch string(text) {
	case "debug":
		*l = Debug
	case "info":
		*l = Info
	case "warn":
		*l = Warn
	case "error":
		*l = Error
	default:
		return fmt.Errorf("eventlog: unknown level %q", text)
	}
	return nil
}

// Field is one key=value pair.
type Field struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Event is one structured log record.
type Event struct {
	Time   time.Time `json:"t"`
	Level  Level     `json:"level"`
	Msg    string    `json:"msg"`
	Fields []Field   `json:"fields,omitempty"`
}

// String renders the event as a single logfmt-style line.
func (e Event) String() string {
	var b strings.Builder
	b.WriteString(e.Time.Format(time.RFC3339Nano))
	b.WriteString(" level=")
	b.WriteString(e.Level.String())
	b.WriteString(" msg=")
	b.WriteString(quoteIfNeeded(e.Msg))
	for _, f := range e.Fields {
		b.WriteByte(' ')
		b.WriteString(f.Key)
		b.WriteByte('=')
		b.WriteString(quoteIfNeeded(f.Value))
	}
	return b.String()
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t\"=") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}

// Log is a concurrency-safe ring buffer of events.
type Log struct {
	mu    sync.Mutex
	ring  []Event
	next  int    // ring index of the next write
	total uint64 // events ever accepted

	// MinLevel drops events below it (default Debug: keep everything).
	MinLevel Level

	// Mirror, when non-nil, additionally receives one printf-style line
	// per event — the compatibility shim for the old Server.Log hook
	// and for -v console logging.
	Mirror func(format string, args ...any)

	// now is stubbed in tests.
	now func() time.Time
}

// New returns a log retaining the most recent capacity events
// (minimum 1).
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{ring: make([]Event, 0, capacity), now: time.Now}
}

// kvFields folds an alternating key, value, key, value… list into
// fields; a trailing odd value gets key "value".
func kvFields(kvs []any) []Field {
	if len(kvs) == 0 {
		return nil
	}
	out := make([]Field, 0, (len(kvs)+1)/2)
	for i := 0; i < len(kvs); i += 2 {
		if i+1 >= len(kvs) {
			out = append(out, Field{Key: "value", Value: fmt.Sprint(kvs[i])})
			break
		}
		out = append(out, Field{Key: fmt.Sprint(kvs[i]), Value: fmt.Sprint(kvs[i+1])})
	}
	return out
}

func (l *Log) log(level Level, msg string, kvs ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if level < l.MinLevel {
		l.mu.Unlock()
		return
	}
	e := Event{Time: l.now(), Level: level, Msg: msg, Fields: kvFields(kvs)}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	mirror := l.Mirror
	l.mu.Unlock()
	if mirror != nil {
		mirror("%s", e.String())
	}
}

// Debugf records a debug event. kvs alternate key, value.
func (l *Log) Debugf(msg string, kvs ...any) { l.log(Debug, msg, kvs...) }

// Infof records an info event.
func (l *Log) Infof(msg string, kvs ...any) { l.log(Info, msg, kvs...) }

// Warnf records a warning event.
func (l *Log) Warnf(msg string, kvs ...any) { l.log(Warn, msg, kvs...) }

// Errorf records an error event.
func (l *Log) Errorf(msg string, kvs ...any) { l.log(Error, msg, kvs...) }

// Events returns the retained events, oldest first.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		return append(out, l.ring...)
	}
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// Total returns how many events were ever accepted (including those
// the ring has since evicted).
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped returns how many accepted events the ring has evicted.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total - uint64(len(l.ring))
}

// WriteText dumps the retained events as one line each.
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.Events() {
		if _, err := io.WriteString(w, e.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// MarshalJSON renders the retained events as a JSON array.
func (l *Log) MarshalJSON() ([]byte, error) {
	return json.Marshal(l.Events())
}
