package eventlog

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRingWrapAround(t *testing.T) {
	l := New(3)
	for i := 0; i < 5; i++ {
		l.Infof(fmt.Sprintf("e%d", i))
	}
	ev := l.Events()
	if len(ev) != 3 {
		t.Fatalf("retained = %d, want 3", len(ev))
	}
	for i, want := range []string{"e2", "e3", "e4"} {
		if ev[i].Msg != want {
			t.Errorf("event[%d] = %q, want %q (oldest first)", i, ev[i].Msg, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5", l.Total())
	}
	if l.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", l.Dropped())
	}
}

func TestMinLevelFiltering(t *testing.T) {
	l := New(8)
	l.MinLevel = Warn
	l.Debugf("nope")
	l.Infof("nope")
	l.Warnf("yes1")
	l.Errorf("yes2")
	ev := l.Events()
	if len(ev) != 2 || ev[0].Msg != "yes1" || ev[1].Msg != "yes2" {
		t.Errorf("events = %+v, want only warn+error", ev)
	}
	if l.Total() != 2 {
		t.Errorf("filtered events counted in total: %d", l.Total())
	}
}

func TestMirrorShim(t *testing.T) {
	l := New(4)
	var lines []string
	l.Mirror = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	l.Infof("hello", "k", "v v") // value needs quoting
	if len(lines) != 1 {
		t.Fatalf("mirror got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "msg=hello") || !strings.Contains(lines[0], `k="v v"`) {
		t.Errorf("mirror line = %q", lines[0])
	}
}

func TestKVFolding(t *testing.T) {
	l := New(4)
	l.Infof("m", "a", 1, "b", true, "dangling")
	ev := l.Events()[0]
	if len(ev.Fields) != 3 {
		t.Fatalf("fields = %+v", ev.Fields)
	}
	if ev.Fields[0] != (Field{"a", "1"}) || ev.Fields[1] != (Field{"b", "true"}) {
		t.Errorf("fields = %+v", ev.Fields)
	}
	if ev.Fields[2] != (Field{"value", "dangling"}) {
		t.Errorf("odd trailing value folded as %+v", ev.Fields[2])
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Debugf("x")
	l.Infof("x")
	l.Warnf("x")
	l.Errorf("x", "k", "v")
	if l.Events() != nil || l.Total() != 0 || l.Dropped() != 0 {
		t.Error("nil log returned data")
	}
}

func TestConcurrentLogging(t *testing.T) {
	l := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Infof("spin", "i", i)
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Errorf("total = %d, want 800", l.Total())
	}
	if got := len(l.Events()); got != 16 {
		t.Errorf("retained = %d, want 16", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	l := New(4)
	l.Warnf("careful", "code", 7)
	blob, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"level":"warn"`) {
		t.Errorf("level not textual: %s", blob)
	}
	var got []Event
	if err := json.Unmarshal(blob, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Level != Warn || got[0].Msg != "careful" {
		t.Errorf("round trip = %+v", got)
	}
}

func TestWriteText(t *testing.T) {
	l := New(4)
	l.Infof("one")
	l.Errorf("two")
	var b strings.Builder
	if err := l.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], "msg=one") || !strings.Contains(lines[1], "level=error") {
		t.Errorf("text dump:\n%s", b.String())
	}
}

func TestLevelStrings(t *testing.T) {
	for lv, want := range map[Level]string{Debug: "debug", Info: "info", Warn: "warn", Error: "error"} {
		if lv.String() != want {
			t.Errorf("%d.String() = %q", lv, lv.String())
		}
		var back Level
		if err := back.UnmarshalText([]byte(want)); err != nil || back != lv {
			t.Errorf("UnmarshalText(%q) = %v, %v", want, back, err)
		}
	}
	var bad Level
	if err := bad.UnmarshalText([]byte("loud")); err == nil {
		t.Error("unknown level did not error")
	}
}
