// Package metrics is the platform's telemetry spine: a dependency-free,
// concurrency-safe registry of counters, gauges and fixed-bucket
// histograms. The paper's thesis is measurement — a hardware cycle
// counter and streamed instrumented traces (§1, §3.1) — and this
// package extends that discipline to the software platform itself, so
// the reconfiguration server, the FPX protocol path, the liquid core,
// the memory system and the control client all expose live counters
// instead of printfs.
//
// Design points:
//
//   - Hot paths touch only atomics (Counter.Inc, Histogram.Observe);
//     registration and exposition take the registry lock.
//   - Reads are snapshot-on-read: Snapshot() returns an immutable copy,
//     so scraping never blocks or torn-reads an increment.
//   - Exposition is dual: Prometheus text format (WritePrometheus) for
//     /metrics scrapes and a JSON snapshot for /statusz and the in-band
//     CmdStats control command.
//   - A nil *Registry is fully usable: every constructor returns live
//     (but unregistered) instruments, so instrumented code needs no
//     nil checks and tests can run components bare.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the metric families.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an arbitrarily settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Bounds are
// inclusive upper edges; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; the last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and branch-predicted;
	// this stays allocation-free on the hot path.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LE    string `json:"le"` // upper edge ("+Inf" for the last)
	Count uint64 `json:"count"`
}

// HistogramValue is a histogram in a snapshot.
type HistogramValue struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramValue {
	hv := HistogramValue{Buckets: make([]Bucket, len(h.buckets))}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		hv.Buckets[i] = Bucket{LE: le, Count: cum}
	}
	hv.Count = h.count.Load()
	hv.Sum = h.Sum()
	return hv
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use. The fast path is a read lock.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; ok {
		return c
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	label    string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[value]; ok {
		return h
	}
	h = newHistogram(v.bounds)
	v.children[value] = h
	return h
}

// metric is one registered family.
type metric struct {
	name string
	help string
	kind Kind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	cvec    *CounterVec
	hvec    *HistogramVec
	info    []Label
}

// Registry holds named metric families. The zero value is not usable;
// call NewRegistry. A nil *Registry hands out live but unregistered
// instruments.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register returns the existing family for name after a kind check, or
// records m. Re-registering the same name with the same kind returns
// the original instrument, so packages can be instrumented
// independently against a shared registry.
func (r *Registry) register(name, help string, kind Kind, build func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := build()
	m.name, m.help, m.kind = name, help, kind
	r.metrics[name] = m
	return m
}

// Counter returns the registered counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return &Counter{}
	}
	m := r.register(name, help, KindCounter, func() *metric {
		return &metric{counter: &Counter{}}
	})
	return m.counter
}

// CounterVec returns a labelled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return &CounterVec{label: label, children: make(map[string]*Counter)}
	}
	m := r.register(name, help, KindCounter, func() *metric {
		return &metric{cvec: &CounterVec{label: label, children: make(map[string]*Counter)}}
	})
	return m.cvec
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	m := r.register(name, help, KindGauge, func() *metric {
		return &metric{gauge: &Gauge{}}
	})
	return m.gauge
}

// Label is one key="value" pair on an Info metric.
type Label struct {
	Key   string
	Value string
}

// Info registers a constant-1 gauge whose labels carry build or
// configuration facts — the Prometheus `*_build_info` idiom, where the
// interesting data lives in the label values and the sample value is
// always 1 so the series can be joined onto any other metric.
func (r *Registry) Info(name, help string, labels ...Label) {
	if r == nil {
		return
	}
	ls := append([]Label(nil), labels...)
	r.register(name, help, KindGauge, func() *metric {
		return &metric{info: ls}
	})
}

// GaugeFunc registers a gauge whose value is computed at snapshot time
// — the idiom for counters that already live elsewhere (cache hit
// counts, SDRAM controller stats) and are surfaced without touching
// their hot paths.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, KindGauge, func() *metric {
		return &metric{gaugeFn: fn}
	})
}

// Histogram returns the registered histogram, creating it with the
// given inclusive upper bucket bounds on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	m := r.register(name, help, KindHistogram, func() *metric {
		return &metric{hist: newHistogram(bounds)}
	})
	return m.hist
}

// HistogramVec returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if r == nil {
		return &HistogramVec{label: label, bounds: bounds, children: make(map[string]*Histogram)}
	}
	m := r.register(name, help, KindHistogram, func() *metric {
		return &metric{hvec: &HistogramVec{label: label, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}}
	})
	return m.hvec
}

// ExpBuckets returns n bounds start, start*factor, start*factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefSecondsBuckets cover microseconds to ~16 s — request handling and
// run wall times.
var DefSecondsBuckets = ExpBuckets(1e-6, 4, 13)

// DefCycleBuckets cover 100 to ~10¹⁰ simulated cycles.
var DefCycleBuckets = ExpBuckets(100, 10, 9)

// Snapshot is a point-in-time copy of every registered family, safe to
// marshal to JSON and stable against later increments.
type Snapshot struct {
	// Counters maps "name" or `name{label="value"}` to the count.
	Counters map[string]uint64 `json:"counters"`
	// Gauges maps names to current values (GaugeFuncs evaluated now).
	Gauges map[string]float64 `json:"gauges"`
	// Histograms maps names to cumulative bucket snapshots.
	Histograms map[string]HistogramValue `json:"histograms"`
}

// Counter returns the snapshot value of a (possibly labelled) counter
// key, 0 when absent.
func (s Snapshot) Counter(key string) uint64 { return s.Counters[key] }

// sortedMetrics returns registered families sorted by name.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Snapshot captures every family.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramValue{},
	}
	if r == nil {
		return s
	}
	for _, m := range r.sortedMetrics() {
		switch {
		case m.counter != nil:
			s.Counters[m.name] = m.counter.Value()
		case m.cvec != nil:
			m.cvec.mu.RLock()
			for lv, c := range m.cvec.children {
				s.Counters[labelKey(m.name, m.cvec.label, lv)] = c.Value()
			}
			m.cvec.mu.RUnlock()
		case m.gauge != nil:
			s.Gauges[m.name] = m.gauge.Value()
		case m.gaugeFn != nil:
			s.Gauges[m.name] = m.gaugeFn()
		case m.info != nil:
			s.Gauges[infoKey(m.name, m.info)] = 1
		case m.hist != nil:
			s.Histograms[m.name] = m.hist.snapshot()
		case m.hvec != nil:
			m.hvec.mu.RLock()
			for lv, h := range m.hvec.children {
				s.Histograms[labelKey(m.name, m.hvec.label, lv)] = h.snapshot()
			}
			m.hvec.mu.RUnlock()
		}
	}
	return s
}

func labelKey(name, label, value string) string {
	return name + `{` + label + `="` + escapeLabel(value) + `"}`
}

// infoKey renders an Info metric's full labelled series name.
func infoKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, m := range r.sortedMetrics() {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, strings.ReplaceAll(m.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch {
		case m.counter != nil:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.counter.Value())
		case m.cvec != nil:
			m.cvec.mu.RLock()
			keys := make([]string, 0, len(m.cvec.children))
			for lv := range m.cvec.children {
				keys = append(keys, lv)
			}
			sort.Strings(keys)
			for _, lv := range keys {
				fmt.Fprintf(&b, "%s %d\n", labelKey(m.name, m.cvec.label, lv), m.cvec.children[lv].Value())
			}
			m.cvec.mu.RUnlock()
		case m.gauge != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gauge.Value()))
		case m.gaugeFn != nil:
			fmt.Fprintf(&b, "%s %s\n", m.name, formatFloat(m.gaugeFn()))
		case m.info != nil:
			fmt.Fprintf(&b, "%s 1\n", infoKey(m.name, m.info))
		case m.hist != nil:
			writePromHistogram(&b, m.name, "", "", m.hist.snapshot())
		case m.hvec != nil:
			m.hvec.mu.RLock()
			keys := make([]string, 0, len(m.hvec.children))
			for lv := range m.hvec.children {
				keys = append(keys, lv)
			}
			sort.Strings(keys)
			for _, lv := range keys {
				writePromHistogram(&b, m.name, m.hvec.label, lv, m.hvec.children[lv].snapshot())
			}
			m.hvec.mu.RUnlock()
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromHistogram(b *strings.Builder, name, label, value string, hv HistogramValue) {
	for _, bk := range hv.Buckets {
		if label == "" {
			fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, bk.LE, bk.Count)
		} else {
			fmt.Fprintf(b, "%s_bucket{%s=%q,le=%q} %d\n", name, label, escapeLabel(value), bk.LE, bk.Count)
		}
	}
	suffix := ""
	if label != "" {
		suffix = "{" + label + `="` + escapeLabel(value) + `"}`
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, suffix, formatFloat(hv.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, hv.Count)
}
