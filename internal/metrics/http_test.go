package metrics

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"liquidarch/internal/metrics/eventlog"
)

func TestHTTPMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_demo_total", "demo").Add(7)
	ev := eventlog.New(8)
	ev.Infof("hello", "k", "v")

	ts := httptest.NewServer(NewHTTPHandler(r, ev))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "# TYPE http_demo_total counter") ||
		!strings.Contains(string(body), "http_demo_total 7") {
		t.Errorf("/metrics missing series:\n%s", body)
	}
}

func TestHTTPStatuszEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("sz_total", "demo").Inc()
	ev := eventlog.New(8)
	ev.Warnf("something", "code", 7)

	ts := httptest.NewServer(NewHTTPHandler(r, ev))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statusz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statusz is not JSON: %v", err)
	}
	if st.Metrics.Counter("sz_total") != 1 {
		t.Errorf("statusz counters = %+v", st.Metrics.Counters)
	}
	if len(st.Events) != 1 || st.Events[0].Msg != "something" {
		t.Errorf("statusz events = %+v", st.Events)
	}
	if st.Events[0].Level != eventlog.Warn {
		t.Errorf("event level = %v", st.Events[0].Level)
	}
}

func TestHTTPPprofEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewHTTPHandler(NewRegistry(), nil))
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof status = %d", resp.StatusCode)
	}
}
