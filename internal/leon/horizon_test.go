package leon

import (
	"fmt"
	"testing"
)

// Differential tests for event-horizon stepping: SoC.StepN — horizon
// batches, bulk prescaler settlement, superblock dispatch underneath —
// must be bit-identical to the per-step interpreter (soc.Step in a
// loop), for every quantum, including timer underflows, interrupt
// delivery and the boot ROM's poll-loop fast-forward.

// socDiff compares all CPU-visible state of two systems.
func socDiff(a, b *SoC) string {
	ac, bc := a.CPU, b.CPU
	if ac.PC() != bc.PC() || ac.NPC() != bc.NPC() {
		return fmt.Sprintf("pc/npc %#x/%#x vs %#x/%#x", ac.PC(), ac.NPC(), bc.PC(), bc.NPC())
	}
	if ac.PSR() != bc.PSR() {
		return fmt.Sprintf("psr %#x vs %#x", ac.PSR(), bc.PSR())
	}
	if ac.Cycles != bc.Cycles {
		return fmt.Sprintf("cycles %d vs %d", ac.Cycles, bc.Cycles)
	}
	if ac.Stats() != bc.Stats() {
		return fmt.Sprintf("stats %+v vs %+v", ac.Stats(), bc.Stats())
	}
	return ""
}

// timerIRQProg arms the prescaled timer with interrupts unmasked, then
// burns time in a counted spin — every timer underflow interrupts it.
const timerIRQProg = `
_start:
	set 0x80000094, %g1	! IRQ mask
	set 0xFFFE, %g2
	st %g2, [%g1]
	set 0x80000044, %g1	! timer reload
	mov 200, %g2
	st %g2, [%g1]
	set 0x80000048, %g1	! timer control: enable|reload|load|irq
	mov 0xF, %g2
	st %g2, [%g1]
	set 3000, %g3
spin:
	subcc %g3, 1, %g3
	bne spin
	nop
` + epilogue

// buildSystemQuantum is buildSystem with an event-horizon batch cap.
func buildSystemQuantum(t *testing.T, cfg Config, quantum uint64) *Controller {
	t.Helper()
	soc, err := NewWithOptions(cfg, nil, Options{Quantum: quantum})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	return ctrl
}

// TestHorizonTimerBitIdentical runs the timer-interrupt program on a
// per-step reference machine and on horizon-batched machines at a
// sweep of quanta. Results, cycle counts, interrupt counts and all
// CPU state must match bit for bit — the horizon must fire every
// underflow at exactly the instruction boundary the per-step
// interpreter fired it.
func TestHorizonTimerBitIdentical(t *testing.T) {
	obj := assembleProg(t, timerIRQProg)

	// Reference: per-step interpreter all the way through the run.
	ref := buildSystem(t, DefaultConfig(), nil)
	if err := ref.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := ref.Start(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	refSoC := ref.SoC()
	for refSoC.CPU.PC() != ROMPollAddr {
		if err := refSoC.Step(); err != nil {
			t.Fatalf("reference step (pc=%#x): %v", refSoC.CPU.PC(), err)
		}
	}
	refRes, err := ref.CollectResult() // already at the poll loop: finalizes only
	if err != nil {
		t.Fatal(err)
	}
	if refSoC.CPU.Stats().Interrupts == 0 {
		t.Fatal("reference run took no timer interrupts — test proves nothing")
	}

	for _, quantum := range []uint64{0, 1, 7, 64, 1024} {
		quantum := quantum
		t.Run(fmt.Sprintf("quantum%d", quantum), func(t *testing.T) {
			ctrl := buildSystemQuantum(t, DefaultConfig(), quantum)
			if err := ctrl.LoadProgram(obj.Origin, obj.Code); err != nil {
				t.Fatal(err)
			}
			if err := ctrl.Start(obj.Origin, 0); err != nil {
				t.Fatal(err)
			}
			res, err := ctrl.CollectResult()
			if err != nil {
				t.Fatal(err)
			}
			if res != refRes {
				t.Fatalf("result %+v vs reference %+v", res, refRes)
			}
			if d := socDiff(ctrl.SoC(), refSoC); d != "" {
				t.Fatalf("horizon run diverged from per-step reference: %s", d)
			}
			if got, want := ctrl.IRQCount(), ref.IRQCount(); got != want {
				t.Fatalf("ROM stub IRQ count %d vs %d", got, want)
			}
		})
	}
}

// TestHorizonPollIdleBitIdentical parks both machines in the boot
// ROM's mailbox poll loop (Fig. 5) and lets them idle: the batched
// machine fast-forwards the side-effect-free spin, the reference
// emulates every iteration, and after the same number of steps the
// cycle counters and all state must agree exactly — fast-forwarded
// cycles are real simulated time.
func TestHorizonPollIdleBitIdentical(t *testing.T) {
	a := buildSystem(t, DefaultConfig(), nil).SoC()
	b := buildSystem(t, DefaultConfig(), nil).SoC()
	const steps = 200_000
	const noStop = uint32(1) // never a fetch PC
	n, err := a.StepN(steps, ^uint64(0), noStop)
	if err != nil {
		t.Fatal(err)
	}
	if n != steps {
		t.Fatalf("StepN executed %d of %d idle steps", n, steps)
	}
	for i := 0; i < steps; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("reference step %d: %v", i, err)
		}
	}
	if d := socDiff(a, b); d != "" {
		t.Fatalf("idle fast-forward diverged: %s", d)
	}
	if pc := a.CPU.PC(); pc < ROMPollAddr || pc > ROMPollAddr+0x20 {
		t.Fatalf("pc drifted to %#x while idle", pc)
	}
}

// TestHorizonCycleCapBoundary sweeps StepN's cycle cap across an
// active stretch of the timer program: stopping and resuming at every
// cap must land on the same boundaries the per-step loop observes.
func TestHorizonCycleCapBoundary(t *testing.T) {
	obj := assembleProg(t, timerIRQProg)
	const noStop = uint32(1)
	for cap := uint64(50); cap <= 2000; cap += 111 {
		a := buildSystem(t, DefaultConfig(), nil)
		b := buildSystem(t, DefaultConfig(), nil)
		for _, c := range []*Controller{a, b} {
			if err := c.LoadProgram(obj.Origin, obj.Code); err != nil {
				t.Fatal(err)
			}
			if err := c.Start(obj.Origin, 0); err != nil {
				t.Fatal(err)
			}
		}
		as, bs := a.SoC(), b.SoC()
		limit := as.CPU.Cycles + cap
		n, err := as.StepN(1<<30, limit, noStop)
		if err != nil {
			t.Fatalf("cap %d: %v", cap, err)
		}
		nb := 0
		for bs.CPU.Cycles < limit {
			if err := bs.Step(); err != nil {
				t.Fatalf("cap %d reference: %v", cap, err)
			}
			nb++
		}
		if n != nb {
			t.Fatalf("cap %d: steps %d vs %d", cap, n, nb)
		}
		if d := socDiff(as, bs); d != "" {
			t.Fatalf("cap %d: diverged at boundary: %s", cap, d)
		}
	}
}
