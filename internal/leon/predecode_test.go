package leon

import (
	"encoding/binary"
	"fmt"
	"testing"

	"liquidarch/internal/isa"
)

func readWord(t *testing.T, ctrl *Controller, addr uint32) uint32 {
	t.Helper()
	data, err := ctrl.ReadMemory(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	return binary.BigEndian.Uint32(data)
}

// TestLoadProgramReusesAddress runs two different programs loaded at
// the same address back-to-back through the controller's load/handoff
// path (the paper's UDP reload cycle). The instruction at a given
// address changes between runs, so the second execution must not reuse
// predecoded state from the first — LoadProgram drops it, and the boot
// ROM's FLUSH before the jump covers the I-cache.
func TestLoadProgramReusesAddress(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	prog := func(v uint32) string {
		return fmt.Sprintf(`
_start:
	set result, %%g1
	set %d, %%g2
	st %%g2, [%%g1]
`, v) + epilogue + "result:\t.word 0\n"
	}
	for _, want := range []uint32{7, 42} {
		obj := assembleProg(t, prog(want))
		loadAndRun(t, ctrl, obj)
		sym, ok := obj.Symbol("result")
		if !ok {
			t.Fatal("no result symbol")
		}
		if got := readWord(t, ctrl, sym); got != want {
			t.Fatalf("result after reload = %d, want %d (stale predecoded instruction executed)", got, want)
		}
	}
}

// TestSelfModifyingCodeWithFlush is the architectural self-modifying
// sequence on the full SoC: store a new instruction word over a
// location ahead in the instruction stream, execute FLUSH (the SPARC
// barrier, which drops both the I-cache line and the predecode
// cache), then run through the patched location.
func TestSelfModifyingCodeWithFlush(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	// The patch: mov 99, %g4 replacing mov 1, %g4.
	newInst, err := isa.Encode(isa.Inst{Op: isa.OpOR, Rd: isa.G0 + 4, Rs1: isa.G0, UseImm: true, Imm: 99})
	if err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(`
_start:
	set patch, %%g1
	set 0x%08X, %%g2
	st %%g2, [%%g1]
	flush %%g1
patch:
	mov 1, %%g4
	set result, %%g5
	st %%g4, [%%g5]
`, newInst) + epilogue + "result:\t.word 0\n"
	obj := assembleProg(t, src)
	loadAndRun(t, ctrl, obj)
	sym, ok := obj.Symbol("result")
	if !ok {
		t.Fatal("no result symbol")
	}
	if got := readWord(t, ctrl, sym); got != 99 {
		t.Fatalf("patched instruction result = %d, want 99 (FLUSH did not invalidate)", got)
	}
}
