package leon

import (
	"errors"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/asm"
)

// newAsync builds a booted SoC wrapped in an actor.
func newAsync(t *testing.T) *AsyncController {
	t.Helper()
	soc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	a := NewAsyncController(ctrl)
	t.Cleanup(a.Close)
	return a
}

// buildAt assembles src at the default load address.
func buildAt(t *testing.T, src string) *asm.Object {
	t.Helper()
	obj, err := asm.AssembleAt(src, DefaultLoadAddr)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

const shortProg = `
_start:
	set 0xBEEF, %o0
	set result, %g1
	st %o0, [%g1]
	set 0x1000, %g7
	jmp %g7
	nop
result:	.word 0
`

// longProg spins ~6 cycles per iteration for count iterations, then
// returns to the poll loop.
const longProg = `
_start:
	set 2000000, %g2
loop:
	subcc %g2, 1, %g2
	bne loop
	nop
	set 0x1000, %g7
	jmp %g7
	nop
`

// TestAsyncStartPollCollect exercises the §3.1 flow in its true shape:
// start returns immediately, state/cycles are observable mid-run, and
// the collected result matches a blocking run bit for bit.
func TestAsyncStartPollCollect(t *testing.T) {
	// Reference: blocking run on a fresh identical SoC.
	soc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewController(soc)
	if err := ref.Boot(); err != nil {
		t.Fatal(err)
	}
	obj := buildAt(t, longProg)
	if err := ref.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Execute(obj.Origin, 0)
	if err != nil {
		t.Fatal(err)
	}

	a := newAsync(t)
	if err := a.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	// Completion is signaled through the run-done hook, so the
	// mid-run sampling loop below ends the instant the run finishes
	// instead of discovering it by sleeping.
	done := make(chan struct{})
	a.SetRunDoneHook(func() { close(done) })
	if err := a.Start(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	// The program is long enough that we observe it running.
	sawRunning := a.State() == StateRunning
	var lastCycles uint64
sampling:
	for {
		select {
		case <-done:
			break sampling
		case <-time.After(time.Millisecond):
			if a.State() != StateRunning {
				break sampling
			}
			c := a.Cycles()
			if c < lastCycles {
				t.Fatalf("cycle counter went backwards: %d -> %d", lastCycles, c)
			}
			lastCycles = c
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Error("never observed StateRunning mid-run")
	}
	got, err := a.CollectResult()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("async result %+v != blocking result %+v", got, want)
	}
	if a.State() != StateDone {
		t.Errorf("state after collect = %v", a.State())
	}
	// Idempotent collect (UDP clients retransmit).
	again, err := a.CollectResult()
	if err != nil || again != got {
		t.Errorf("second collect = %+v, %v", again, err)
	}
}

// TestAsyncInterleavedOps: loads and writes are rejected mid-run with
// the controller's state error, reads are served between slices, and
// everything is race-free under -race.
func TestAsyncInterleavedOps(t *testing.T) {
	a := newAsync(t)
	obj := buildAt(t, longProg)
	if err := a.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_ = a.State()
				_ = a.Cycles()
				if _, err := a.ReadMemory(DefaultLoadAddr, 16); err != nil {
					t.Errorf("mid-run read: %v", err)
				}
			}
		}()
	}
	// Mid-run mutations must fail cleanly while the run is in flight.
	if a.State() == StateRunning {
		if err := a.LoadProgram(obj.Origin, obj.Code); err == nil && a.State() == StateRunning {
			t.Error("mid-run load accepted")
		}
	}
	wg.Wait()
	if _, err := a.CollectResult(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncBudgetFault: the budget path finalizes through the actor.
func TestAsyncBudgetFault(t *testing.T) {
	a := newAsync(t)
	obj := buildAt(t, longProg)
	if err := a.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(obj.Origin, 50_000); err != nil {
		t.Fatal(err)
	}
	res, err := a.CollectResult()
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want budget", err)
	}
	if !res.Faulted {
		t.Errorf("result = %+v, want faulted", res)
	}
	if a.State() != StateFault {
		t.Errorf("state = %v", a.State())
	}
	// The board recovers: a short run succeeds afterwards.
	obj2 := buildAt(t, shortProg)
	if err := a.LoadProgram(obj2.Origin, obj2.Code); err != nil {
		t.Fatal(err)
	}
	res2, err := a.Execute(obj2.Origin, 0)
	if err != nil || res2.Faulted {
		t.Fatalf("recovery run: %+v, %v", res2, err)
	}
}

// TestAsyncRunHooks: Before/After fire on every run, including failed
// handoffs, and After runs before the Done state is observable.
func TestAsyncRunHooks(t *testing.T) {
	a := newAsync(t)
	obj := buildAt(t, shortProg)
	if err := a.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []string
	opts := RunOptions{
		Before: func(c *Controller) {
			mu.Lock()
			events = append(events, "before")
			mu.Unlock()
		},
		After: func(c *Controller, res RunResult, wall time.Duration, err error) {
			mu.Lock()
			events = append(events, "after")
			mu.Unlock()
		},
	}
	if _, err := a.ExecuteOpts(obj.Origin, 0, opts); err != nil {
		t.Fatal(err)
	}
	// Failed handoff (bad entry) still fires both hooks.
	if err := a.StartOpts(0x1234, 0, opts); err == nil {
		t.Fatal("bad entry accepted")
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"before", "after", "before", "after"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

// TestAsyncCloseAbandonsRun: Close mid-run returns promptly and later
// operations fail with ErrClosed.
func TestAsyncCloseAbandonsRun(t *testing.T) {
	soc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	a := NewAsyncController(ctrl)
	obj := buildAt(t, longProg)
	if err := a.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() { a.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an in-flight run")
	}
	if err := a.LoadProgram(obj.Origin, obj.Code); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close load err = %v", err)
	}
	if _, err := a.CollectResult(); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close collect err = %v", err)
	}
}
