// Package leon assembles the Liquid processor system of Fig. 3: the
// LEON SPARC-compatible CPU with its instruction and data caches, the
// AMBA AHB backbone, the boot PROM, the FPX SRAM holding user code, the
// SDRAM behind the §3.2 adapter, the APB peripherals, and the leon_ctrl
// external circuitry of §3.1 that disconnects the processor from main
// memory, hands off user programs and counts their clock cycles.
package leon

import (
	"fmt"
	"io"

	"liquidarch/internal/ahbadapter"
	"liquidarch/internal/amba"
	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
	"liquidarch/internal/cpu"
	"liquidarch/internal/mem"
	"liquidarch/internal/periph"
)

// Memory map (LEON2-like, §2.3).
const (
	ROMBase   = 0x00000000
	ROMSize   = 64 << 10
	SRAMBase  = 0x40000000
	SDRAMBase = 0x60000000
	APBBase   = 0x80000000
	APBSize   = 0x10000

	// APB device offsets.
	APBCacheCtrl = 0x10
	APBTimer     = 0x40
	APBPrescaler = 0x60
	APBUART      = 0x70
	APBIRQCtrl   = 0x90
	APBGPIO      = 0xA0

	// Interrupt lines.
	IRQTimer = 8
	IRQUART  = 3

	// Mailbox words at the bottom of SRAM (§3.1): the poll word the
	// modified boot ROM watches, plus fault and interrupt counters
	// maintained by the ROM trap handlers. The mailbox page is
	// uncacheable so the poll loop observes leon_ctrl's writes.
	MailboxProgAddr = SRAMBase + 0x00 // start address of the loaded program
	MailboxFaultTT  = SRAMBase + 0x04 // trap type recorded by bad_trap
	MailboxFaultPC  = SRAMBase + 0x08 // faulting PC recorded by bad_trap
	MailboxIRQCount = SRAMBase + 0x0C // incremented by the ROM IRQ stub
	MailboxEnd      = SRAMBase + 0x100

	// DefaultLoadAddr is where user programs are placed by default.
	DefaultLoadAddr = SRAMBase + 0x1000

	// ROMPollAddr is the fixed address of the CheckReady poll routine
	// in the boot ROM (Fig. 5); user programs return by jumping here,
	// and leon_ctrl detects that return by watching the address bus.
	ROMPollAddr = ROMBase + 0x1000
)

// Config describes one point in the liquid-architecture configuration
// space of the whole processor system.
type Config struct {
	CPU    cpu.Config
	ICache cache.Config
	DCache cache.Config

	// SRAMSize and SDRAMSize are the memory capacities in bytes.
	SRAMSize  int
	SDRAMSize int

	// BurstWords is the adapter's read chunk (§3.2; the paper uses 4).
	BurstWords int

	// ClockMHz is the synthesized system clock (Fig. 10: 30 MHz).
	ClockMHz float64
}

// DefaultConfig is the base Liquid processor system: LEON2 defaults
// with the paper's constant 1 KB instruction cache and a 4 KB data
// cache, both with 32-byte lines.
func DefaultConfig() Config {
	return Config{
		CPU:        cpu.DefaultConfig(),
		ICache:     cache.Config{SizeBytes: 1 << 10, LineBytes: 32, Assoc: 1},
		DCache:     cache.Config{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1},
		SRAMSize:   2 << 20,
		SDRAMSize:  8 << 20,
		BurstWords: 4,
		ClockMHz:   30,
	}
}

// Validate checks the whole configuration.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.ICache.Validate(); err != nil {
		return fmt.Errorf("icache: %w", err)
	}
	if err := c.DCache.Validate(); err != nil {
		return fmt.Errorf("dcache: %w", err)
	}
	if c.SRAMSize < int(MailboxEnd-SRAMBase)+4096 {
		return fmt.Errorf("leon: SRAM size %d too small", c.SRAMSize)
	}
	if c.SDRAMSize < 4096 {
		return fmt.Errorf("leon: SDRAM size %d too small", c.SDRAMSize)
	}
	if c.BurstWords < 1 {
		return fmt.Errorf("leon: burst words %d invalid", c.BurstWords)
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("leon: clock %v MHz invalid", c.ClockMHz)
	}
	return nil
}

// SoC is one instantiated Liquid processor system.
type SoC struct {
	Config Config

	CPU    *cpu.CPU
	Bus    *amba.AHB
	ICache *cache.Cache
	DCache *cache.Cache

	SRAM      *mem.SRAM
	SDRAM     *mem.SDRAM
	SDRAMCtrl *mem.Controller
	Adapter   *ahbadapter.Adapter
	NetPort   *mem.Port // second SDRAM controller port (network side)

	APB       *amba.APB
	IRQCtrl   *periph.IRQCtrl
	Timer     *periph.Timer
	Prescaler *periph.Prescaler
	UART      *periph.UART
	GPIO      *periph.GPIO

	ROM     *ROM
	BootMap map[string]uint32 // boot ROM symbol table

	// Quantum caps the event-horizon batch in CPU cycles (0 =
	// uncapped): StepN never runs the CPU more than Quantum cycles
	// past a settle point before settling peripherals again. Execution
	// is bit-identical at any quantum — the cap exists so horizon-
	// related divergences can be bisected (liquid-bench -quantum).
	Quantum uint64

	sramSwitch *sramSwitch
	imem, dmem *splitMem

	// settled is the CPU cycle count already delivered to the
	// prescaler. Between a settle point and the next event horizon the
	// peripherals intentionally lag the CPU; Settle pays the debt.
	settled uint64
}

// Options adjust how the simulator schedules work without changing the
// modelled hardware; any setting produces bit-identical execution.
type Options struct {
	// Quantum caps the event-horizon batch in CPU cycles (0 =
	// uncapped). See SoC.Quantum.
	Quantum uint64
}

// New builds and boots a Liquid processor system. UART transmit output
// goes to uartOut (nil discards it). On return the CPU is parked in the
// boot ROM's poll loop with main memory disconnected, exactly the §3.1
// idle state.
func New(cfg Config, uartOut io.Writer) (*SoC, error) {
	return NewWithOptions(cfg, uartOut, Options{})
}

// NewWithOptions is New with simulator scheduling options.
func NewWithOptions(cfg Config, uartOut io.Writer, opts Options) (*SoC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SoC{Config: cfg, Quantum: opts.Quantum}

	// Peripherals.
	s.IRQCtrl = &periph.IRQCtrl{}
	s.Timer = periph.NewTimer(s.IRQCtrl, IRQTimer)
	s.Prescaler = periph.NewPrescaler(s.Timer)
	s.UART = periph.NewUART(uartOut, s.IRQCtrl, IRQUART)
	s.GPIO = &periph.GPIO{}

	s.APB = amba.NewAPB()
	for _, d := range []struct {
		name string
		base uint32
		size uint32
		dev  amba.Device
	}{
		{"timer", APBTimer, 0x10, s.Timer},
		{"prescaler", APBPrescaler, 0x10, s.Prescaler},
		{"uart", APBUART, 0x10, s.UART},
		{"irqctrl", APBIRQCtrl, 0x10, s.IRQCtrl},
		{"gpio", APBGPIO, 0x10, s.GPIO},
	} {
		if err := s.APB.Map(d.name, d.base, d.size, d.dev); err != nil {
			return nil, err
		}
	}

	// Memories.
	s.SRAM = mem.NewSRAM(cfg.SRAMSize)
	s.sramSwitch = &sramSwitch{inner: s.SRAM}
	s.SDRAM = mem.NewSDRAM(cfg.SDRAMSize)
	s.SDRAMCtrl = mem.NewController(s.SDRAM)
	leonPort, err := s.SDRAMCtrl.Port("leon")
	if err != nil {
		return nil, err
	}
	s.NetPort, err = s.SDRAMCtrl.Port("network")
	if err != nil {
		return nil, err
	}
	s.Adapter = ahbadapter.New(leonPort)
	s.Adapter.BurstWords = cfg.BurstWords

	// Boot ROM.
	roms, err := BuildBootROM(cfg.CPU.NWindows, SRAMBase+uint32(cfg.SRAMSize))
	if err != nil {
		return nil, fmt.Errorf("leon: boot ROM: %w", err)
	}
	s.ROM = roms
	s.BootMap = roms.Symbols

	// Bus.
	s.Bus = amba.NewAHB()
	for _, m := range []struct {
		name string
		base uint32
		size uint32
		sl   amba.Slave
	}{
		{"prom", ROMBase, ROMSize, s.ROM},
		{"sram", SRAMBase, uint32(cfg.SRAMSize), s.sramSwitch},
		{"sdram", SDRAMBase, uint32(cfg.SDRAMSize), s.Adapter},
		{"apb", APBBase, APBSize, s.APB},
	} {
		if err := s.Bus.Map(m.name, m.base, m.size, m.sl); err != nil {
			return nil, err
		}
	}

	// Caches and the cacheability mux. Both memory paths go through
	// swappable muxes so partial reconfiguration (SwapCaches) can
	// replace the cache modules under a live CPU.
	s.ICache, err = cache.New(cfg.ICache, s.Bus)
	if err != nil {
		return nil, fmt.Errorf("icache: %w", err)
	}
	s.DCache, err = cache.New(cfg.DCache, s.Bus)
	if err != nil {
		return nil, fmt.Errorf("dcache: %w", err)
	}
	s.imem = &splitMem{soc: s, cached: s.ICache, bus: s.Bus, alwaysCached: true}
	s.dmem = &splitMem{soc: s, cached: s.DCache, bus: s.Bus}

	s.CPU, err = cpu.New(cfg.CPU, s.imem, s.dmem, s.IRQCtrl)
	if err != nil {
		return nil, err
	}
	// Instruction fetches take the concrete fast path straight into the
	// I-cache (the instruction side has no uncacheable windows, so the
	// splitMem mux adds nothing but an interface dispatch).
	s.CPU.SetIFetch(s.ICache)
	// Cache control register (LEON2's CCR): software enable/disable
	// and flush of both caches. Mapped late so it can reach the live
	// cache instances even across partial reconfigurations.
	if err := s.APB.Map("ccr", APBCacheCtrl, 0x10, &cacheCtrl{soc: s}); err != nil {
		return nil, err
	}
	s.CPU.FlushFn = func() (int, error) {
		n1, err := s.ICache.Flush()
		if err != nil {
			return n1, err
		}
		n2, err := s.DCache.Flush()
		return n1 + n2, err
	}
	return s, nil
}

// Step executes one CPU instruction and ticks the peripheral clock by
// the cycles it consumed.
func (s *SoC) Step() error {
	err := s.CPU.Step()
	s.Settle()
	return err
}

// Settle delivers all CPU cycles not yet ticked into the prescaler.
// After Settle the peripherals have observed exactly CPU.Cycles cycles
// — the invariant the per-step interpreter maintained after every
// instruction, now restored only at batch boundaries and device
// accesses.
func (s *SoC) Settle() {
	if d := s.CPU.Cycles - s.settled; d > 0 {
		s.settled = s.CPU.Cycles
		s.Prescaler.Tick(d)
	}
}

// settleDevice is called by the data path just before a device (APB)
// access: peripheral time owed up to the *start* of the current
// instruction is delivered, so the device sees registers exactly as
// the per-step interpreter would have left them (ticks land at
// instruction boundaries, never mid-instruction). The device event bit
// also ends the CPU's current batch, because the access may have
// re-armed a timer or raised an interrupt and moved the horizon.
func (s *SoC) settleDevice() {
	s.CPU.MemEvents |= cpu.MemEventDevice
	if b := s.CPU.InstBoundary(); b > s.settled {
		d := b - s.settled
		s.settled = b
		s.Prescaler.Tick(d)
	}
}

// StepN executes up to maxSteps instructions in event-horizon batches:
// inside a batch the CPU dispatches superblocks with no per-step
// interrupt probe or prescaler tick, and the batch never extends past
// the next peripheral event (timer underflow deadline), the cycle cap,
// or the quantum. At every batch boundary peripherals settle in bulk,
// which fires exactly the underflows (and interrupt raises) the
// per-step interpreter would have fired, at the same instruction
// boundaries — execution is bit-identical to calling Step in a loop.
// It stops early when the program counter reaches stopPC or the cycle
// counter reaches cycleCap (both checked between instructions), and
// returns the number of instructions executed.
func (s *SoC) StepN(maxSteps int, cycleCap uint64, stopPC uint32) (int, error) {
	steps := 0
	for steps < maxSteps {
		s.Settle()
		if s.CPU.Cycles >= cycleCap || s.CPU.PC() == stopPC {
			break
		}
		// The horizon: no peripheral-visible event can occur before
		// this cycle count, so the CPU needs no interrupt probe or
		// prescaler tick inside it.
		limit := cycleCap
		if d := s.Prescaler.NextEventCycles(); d != periph.NoEvent {
			if dl := s.CPU.Cycles + d; dl < limit {
				limit = dl
			}
		}
		if s.Quantum > 0 {
			if q := s.CPU.Cycles + s.Quantum; q < limit {
				limit = q
			}
		}
		n, err := s.CPU.StepN(maxSteps-steps, limit, stopPC)
		steps += n
		s.Settle()
		if err != nil {
			return steps, err
		}
	}
	return steps, nil
}

// Cycles returns the hardware cycle counter.
func (s *SoC) Cycles() uint64 { return s.CPU.Cycles }

// Seconds converts a cycle count to wall-clock seconds at the
// synthesized frequency.
func (s *SoC) Seconds(cycles uint64) float64 {
	return float64(cycles) / (s.Config.ClockMHz * 1e6)
}

// SwapCaches performs a partial runtime reconfiguration in the sense
// of the paper's reference [2] (Dynamic Hardware Plugins): the cache
// modules are replaced with newly parameterized instances while the
// rest of the fabric — CPU state, memories, peripherals — stays live.
// Dirty write-back lines are flushed to memory before the old data
// cache is discarded.
func (s *SoC) SwapCaches(icfg, dcfg cache.Config) error {
	newI, err := cache.New(icfg, s.Bus)
	if err != nil {
		return fmt.Errorf("leon: swap icache: %w", err)
	}
	newD, err := cache.New(dcfg, s.Bus)
	if err != nil {
		return fmt.Errorf("leon: swap dcache: %w", err)
	}
	if _, err := s.DCache.Flush(); err != nil {
		return fmt.Errorf("leon: flush before swap: %w", err)
	}
	s.ICache, s.DCache = newI, newD
	s.imem.cached = newI
	s.dmem.cached = newD
	// Re-point the CPU's concrete fetch fast path at the new I-cache.
	// SetIFetch also drops the predecoded instruction cache: the swap
	// is a reconfiguration boundary and decoded state must not outlive
	// the module it was fetched through.
	s.CPU.SetIFetch(newI)
	s.Config.ICache = icfg
	s.Config.DCache = dcfg
	return nil
}

// Cache control register bits (LEON2-like CCR subset).
const (
	CCREnableICache = 1 << 0
	CCREnableDCache = 1 << 1
	CCRFlush        = 1 << 2 // write-only: flush both caches
)

// cacheCtrl is the CCR APB device. It always addresses the SoC's
// current cache instances, so it stays correct across SwapCaches.
type cacheCtrl struct {
	soc *SoC
}

// ReadReg implements amba.Device.
func (c *cacheCtrl) ReadReg(off uint32) (uint32, error) {
	if off != 0 {
		return 0, fmt.Errorf("leon: ccr has no register at %#x", off)
	}
	var v uint32
	if c.soc.ICache.Enabled() {
		v |= CCREnableICache
	}
	if c.soc.DCache.Enabled() {
		v |= CCREnableDCache
	}
	return v, nil
}

// WriteReg implements amba.Device.
func (c *cacheCtrl) WriteReg(off uint32, v uint32) error {
	if off != 0 {
		return fmt.Errorf("leon: ccr has no register at %#x", off)
	}
	c.soc.ICache.SetEnabled(v&CCREnableICache != 0)
	c.soc.DCache.SetEnabled(v&CCREnableDCache != 0)
	if v&CCRFlush != 0 {
		if _, err := c.soc.ICache.Flush(); err != nil {
			return err
		}
		if _, err := c.soc.DCache.Flush(); err != nil {
			return err
		}
		// A software cache flush is a barrier after code modification;
		// drop predecoded instructions along with the cached lines.
		c.soc.CPU.InvalidatePredecode()
	}
	return nil
}

// splitMem routes data accesses either through the data cache or, for
// the uncacheable areas (the SRAM mailbox page and the APB peripheral
// space), directly to the bus. LEON marks I/O regions uncacheable; the
// mailbox page must also bypass the cache so the poll loop of Fig. 5
// observes values written by the external circuitry.
type splitMem struct {
	soc *SoC
	// cached is the concrete cache module (not a cpu.Memory interface):
	// the data path is the hottest interface call in the simulator and
	// keeping the type concrete lets the compiler devirtualize it.
	cached       *cache.Cache
	bus          *amba.AHB
	alwaysCached bool // instruction path: no uncacheable windows
}

func uncacheable(addr uint32) bool {
	return addr >= APBBase && addr < APBBase+APBSize ||
		addr >= MailboxProgAddr && addr < MailboxEnd
}

func device(addr uint32) bool {
	return addr >= APBBase && addr < APBBase+APBSize
}

func (m *splitMem) Read(addr uint32, size amba.Size) (uint32, int, error) {
	if m.alwaysCached {
		// Instruction path: never a device, never a data event.
		return m.cached.Read(addr, size)
	}
	if uncacheable(addr) {
		if device(addr) {
			m.soc.settleDevice()
		}
		return m.bus.Read(addr, size)
	}
	m.soc.CPU.MemEvents |= cpu.MemEventCached
	return m.cached.Read(addr, size)
}

func (m *splitMem) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	if uncacheable(addr) {
		if device(addr) {
			m.soc.settleDevice()
		}
		return m.bus.Write(addr, val, size)
	}
	m.soc.CPU.MemEvents |= cpu.MemEventCached
	return m.cached.Write(addr, val, size)
}

// ROM is the boot PROM: read-only storage assembled from the modified
// LEON boot code of Fig. 5.
type ROM struct {
	data    []byte
	Symbols map[string]uint32
	// WaitStates per access (PROMs are slow; LEON default timing).
	WaitStates int
}

// BuildBootROM assembles the boot PROM image for a system with the
// given window count and initial stack top.
func BuildBootROM(nwindows int, stackTop uint32) (*ROM, error) {
	src := BootROMSource(nwindows, stackTop)
	obj, err := asm.AssembleAt(src, ROMBase)
	if err != nil {
		return nil, err
	}
	if obj.Size() > ROMSize {
		return nil, fmt.Errorf("boot ROM %d bytes exceeds %d", obj.Size(), ROMSize)
	}
	data := make([]byte, ROMSize)
	copy(data, obj.Code)
	return &ROM{data: data, Symbols: obj.Symbols, WaitStates: 2}, nil
}

// Read implements amba.Slave.
func (r *ROM) Read(addr uint32, size amba.Size) (uint32, int, error) {
	if int(addr)+int(size) > len(r.data) {
		return 0, 0, &amba.BusError{Addr: addr}
	}
	var v uint32
	switch size {
	case amba.SizeWord:
		v = uint32(r.data[addr])<<24 | uint32(r.data[addr+1])<<16 |
			uint32(r.data[addr+2])<<8 | uint32(r.data[addr+3])
	case amba.SizeHalf:
		v = uint32(r.data[addr])<<8 | uint32(r.data[addr+1])
	default:
		v = uint32(r.data[addr])
	}
	return v, r.WaitStates, nil
}

// Write implements amba.Slave; PROM writes are bus errors.
func (r *ROM) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	return 0, &amba.BusError{Addr: addr, Write: true}
}

// ReadBurst implements amba.Slave.
func (r *ROM) ReadBurst(addr uint32, words []uint32) (int, error) {
	if int(addr)+len(words)*4 > len(r.data) {
		return 0, &amba.BusError{Addr: addr}
	}
	for i := range words {
		off := addr + uint32(i)*4
		words[i] = uint32(r.data[off])<<24 | uint32(r.data[off+1])<<16 |
			uint32(r.data[off+2])<<8 | uint32(r.data[off+3])
	}
	return r.WaitStates + len(words), nil
}

// sramSwitch is the external circuitry of Fig. 6 between the LEON and
// main memory: while disconnected it drives zeros on the processor's
// data bus and ignores writes, so the boot ROM's poll loop keeps
// reading zero. The user-side port (SRAM.Poke/Peek) is unaffected.
type sramSwitch struct {
	inner     *mem.SRAM
	connected bool
}

func (s *sramSwitch) Read(addr uint32, size amba.Size) (uint32, int, error) {
	if !s.connected {
		return 0, s.inner.WaitStates, nil
	}
	return s.inner.Read(addr, size)
}

func (s *sramSwitch) Write(addr uint32, val uint32, size amba.Size) (int, error) {
	if !s.connected {
		return s.inner.WaitStates, nil
	}
	return s.inner.Write(addr, val, size)
}

func (s *sramSwitch) ReadBurst(addr uint32, words []uint32) (int, error) {
	if !s.connected {
		for i := range words {
			words[i] = 0
		}
		return s.inner.WaitStates + len(words), nil
	}
	return s.inner.ReadBurst(addr, words)
}
