package leon

import (
	"fmt"
	"strings"
)

// BootROMSource generates the boot PROM assembly for a system with the
// given register-window count and initial stack top. The layout is:
//
//	0x0000  SPARC trap table: 256 entries × 4 instructions
//	0x1000  CheckReady — the modified poll loop of Fig. 5
//	....    window spill/fill handlers, IRQ stub, bad_trap, boot_start
//
// The original LEON boot code waited for a UART event; the modified
// code polls main-memory location 0x40000000 until the external
// circuitry stores a non-zero start address there, flushes the caches,
// and jumps to the user program (Fig. 5, right column).
func BootROMSource(nwindows int, stackTop uint32) string {
	var b strings.Builder
	fmt.Fprintf(&b, "! Liquid Architecture boot PROM (generated; NWINDOWS=%d)\n", nwindows)
	fmt.Fprintf(&b, "PROG_ADDR = 0x%08X\n", MailboxProgAddr)
	fmt.Fprintf(&b, "FAULT_TT  = 0x%08X\n", MailboxFaultTT)
	fmt.Fprintf(&b, "FAULT_PC  = 0x%08X\n", MailboxFaultPC)
	fmt.Fprintf(&b, "IRQ_COUNT = 0x%08X\n", MailboxIRQCount)
	fmt.Fprintf(&b, "STACK_TOP = 0x%08X\n", stackTop)

	// Trap table: one 4-instruction entry per trap type.
	b.WriteString("\n! ---- trap table ----\n")
	for tt := 0; tt < 256; tt++ {
		target := "bad_trap"
		switch {
		case tt == 0x00:
			target = "boot_start"
		case tt == 0x05:
			target = "win_ovf"
		case tt == 0x06:
			target = "win_unf"
		case tt >= 0x11 && tt <= 0x1F:
			target = "irq_stub"
		}
		fmt.Fprintf(&b, "\tb %s\n\tnop\n\tnop\n\tnop\n", target)
	}

	// The poll routine sits at the fixed, well-known address the
	// external circuitry watches for (ROMPollAddr).
	fmt.Fprintf(&b, `
! ---- CheckReady: modified boot code of Fig. 5 ----
	.org 0x%04X
CheckReady:
	set PROG_ADDR, %%g1
poll:
	ld [%%g1], %%g2
	tst %%g2
	be poll
	nop
	flush %%g0		! invalidate stale cache lines before the new program
	jmp %%g2
	nop

! ---- window overflow: spill the oldest window to its stack ----
win_ovf:
	mov %%wim, %%l3
	srl %%l3, 1, %%l4
	sll %%l3, %d, %%l5
	or %%l4, %%l5, %%l3	! l3 = WIM rotated right
	mov 0, %%wim		! clear WIM so the spill save cannot re-trap
	nop
	nop
	nop
	save			! enter the window to be spilled
	std %%l0, [%%sp + 0]
	std %%l2, [%%sp + 8]
	std %%l4, [%%sp + 16]
	std %%l6, [%%sp + 24]
	std %%i0, [%%sp + 32]
	std %%i2, [%%sp + 40]
	std %%i4, [%%sp + 48]
	std %%i6, [%%sp + 56]
	restore
	mov %%l3, %%wim
	nop
	nop
	nop
	jmp %%l1		! re-execute the trapped save
	rett %%l2

! ---- window underflow: fill the needed window from its stack ----
win_unf:
	mov %%wim, %%l3
	sll %%l3, 1, %%l4
	srl %%l3, %d, %%l5
	or %%l4, %%l5, %%l3	! l3 = WIM rotated left
	mov 0, %%wim
	nop
	nop
	nop
	restore
	restore			! enter the window to be filled
	ldd [%%sp + 0], %%l0
	ldd [%%sp + 8], %%l2
	ldd [%%sp + 16], %%l4
	ldd [%%sp + 24], %%l6
	ldd [%%sp + 32], %%i0
	ldd [%%sp + 40], %%i2
	ldd [%%sp + 48], %%i4
	ldd [%%sp + 56], %%i6
	save
	save
	mov %%l3, %%wim
	nop
	nop
	nop
	jmp %%l1		! re-execute the trapped restore
	rett %%l2

! ---- external interrupt: count it in the mailbox and resume ----
irq_stub:
	set IRQ_COUNT, %%l3
	ld [%%l3], %%l4
	inc %%l4
	st %%l4, [%%l3]
	jmp %%l1
	rett %%l2

! ---- unexpected trap: record an error state for leon_ctrl (§4.1) ----
bad_trap:
	mov %%tbr, %%l3
	srl %%l3, 4, %%l3
	and %%l3, 0xff, %%l3
	set FAULT_TT, %%l4
	st %%l3, [%%l4]
	set FAULT_PC, %%l4
	st %%l1, [%%l4]
	set CheckReady, %%l4
	jmp %%l4
	rett %%l4 + 4

! ---- reset entry ----
boot_start:
	wr %%g0, 0, %%tbr
	wr %%g0, 2, %%wim	! window 1 is the invalid (buffer) window
	wr %%g0, 0xA0, %%psr	! S=1, ET=1, CWP=0, PIL=0
	nop
	nop
	nop
	set STACK_TOP - 64, %%sp
	set STACK_TOP - 64, %%fp
	ba CheckReady
	nop
`, ROMPollAddr-ROMBase, nwindows-1, nwindows-1)
	return b.String()
}
