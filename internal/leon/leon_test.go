package leon

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"liquidarch/internal/asm"
	"liquidarch/internal/cache"
)

// buildSystem boots a default-config system.
func buildSystem(t *testing.T, cfg Config, uart *bytes.Buffer) *Controller {
	t.Helper()
	var w *bytes.Buffer
	if uart != nil {
		w = uart
	}
	soc, err := New(cfg, nullable(w))
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func nullable(b *bytes.Buffer) *bytes.Buffer {
	return b
}

// assembleProg assembles a test program at DefaultLoadAddr.
func assembleProg(t *testing.T, src string) *asm.Object {
	t.Helper()
	obj, err := asm.AssembleAt(src, DefaultLoadAddr)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return obj
}

// loadAndRun loads and executes the object, returning the result.
func loadAndRun(t *testing.T, ctrl *Controller, obj *asm.Object) RunResult {
	t.Helper()
	if err := ctrl.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Execute(obj.Origin, 0)
	if err != nil {
		t.Fatalf("execute: %v (result %+v)", err, res)
	}
	return res
}

const epilogue = `
	set 0x1000, %g7		! ROMPollAddr: return to the poll loop
	jmp %g7
	nop
`

func TestBootParksInPollLoop(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	if ctrl.State() != StateIdle {
		t.Fatalf("state = %v", ctrl.State())
	}
	soc := ctrl.SoC()
	if soc.CPU.PC() != ROMPollAddr {
		t.Errorf("pc = %#x, want poll loop", soc.CPU.PC())
	}
	// Boot is idempotent-protected.
	if err := ctrl.Boot(); err == nil {
		t.Error("second Boot succeeded")
	}
	// Let it spin a while: it must stay inside the poll routine
	// because the disconnected SRAM reads zero.
	for i := 0; i < 100; i++ {
		if err := soc.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if pc := soc.CPU.PC(); pc < ROMPollAddr || pc > ROMPollAddr+0x20 {
		t.Errorf("pc drifted to %#x while idle", pc)
	}
}

func TestStoreResultProgram(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	mov 40, %o0
	add %o0, 2, %o0
	set result, %g1
	st %o0, [%g1]
`+epilogue+`
result:	.word 0
`)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: %+v", res)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Errorf("empty result %+v", res)
	}
	addr, _ := obj.Symbol("result")
	out, err := ctrl.ReadMemory(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := be32(out); got != 42 {
		t.Errorf("result = %d, want 42", got)
	}
	if ctrl.State() != StateDone {
		t.Errorf("state = %v", ctrl.State())
	}
	if ctrl.LastResult() != res {
		t.Error("LastResult mismatch")
	}
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func TestRunTwiceIsRepeatable(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	set 1000, %o0
loop:
	subcc %o0, 1, %o0
	bne loop
	nop
`+epilogue)
	r1 := loadAndRun(t, ctrl, obj)
	r2 := loadAndRun(t, ctrl, obj)
	if r1.Instructions != r2.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", r1.Instructions, r2.Instructions)
	}
	// Cycle counts may differ slightly (cache state), but not wildly.
	diff := int64(r1.Cycles) - int64(r2.Cycles)
	if diff < 0 {
		diff = -diff
	}
	if uint64(diff) > r1.Cycles/10 {
		t.Errorf("cycle counts diverge: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

// TestDeepRecursionSpillsWindows exercises the boot ROM's window
// overflow/underflow handlers: 20 nested calls on an 8-window machine
// must spill and refill correctly.
func TestDeepRecursionSpillsWindows(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	mov 20, %o0
	call depth
	nop
	set result, %g1
	st %o0, [%g1]
`+epilogue+`
! depth(n) = n==0 ? 0 : depth(n-1)+1, one register window per level
depth:
	save %sp, -96, %sp
	cmp %i0, 0
	be base
	nop
	sub %i0, 1, %o0
	call depth
	nop
	add %o0, 1, %i0
base:
	ret
	restore
result:	.word 0
`)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: tt=%#x pc=%#x", res.TT, res.FaultPC)
	}
	addr, _ := obj.Symbol("result")
	out, _ := ctrl.ReadMemory(addr, 4)
	if got := be32(out); got != 20 {
		t.Errorf("depth(20) = %d, want 20", got)
	}
	stats := ctrl.SoC().CPU.Stats()
	if stats.WindowSpills == 0 || stats.WindowFills == 0 {
		t.Errorf("no window traps occurred (spills=%d fills=%d); recursion too shallow?",
			stats.WindowSpills, stats.WindowFills)
	}
}

// TestLocalsSurviveSpill verifies spill/fill preserves register values:
// each recursion level holds a distinct local value that must be intact
// after the windows come back from the stack.
func TestLocalsSurviveSpill(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	// sum(n) = n + sum(n-1); each frame keeps n in %l5 across the call.
	obj2 := assembleProg(t, `
_start:
	mov 15, %o0
	call sum
	nop
	set result, %g1
	st %o0, [%g1]
`+epilogue+`
sum:
	save %sp, -96, %sp
	cmp %i0, 0
	be base
	mov 0, %l5
	mov %i0, %l5
	sub %i0, 1, %o0
	call sum
	nop
	add %o0, %l5, %i0
	ret
	restore
base:
	mov 0, %i0
	ret
	restore
result:	.word 0
`)
	res := loadAndRun(t, ctrl, obj2)
	if res.Faulted {
		t.Fatalf("faulted: tt=%#x pc=%#x", res.TT, res.FaultPC)
	}
	addr, _ := obj2.Symbol("result")
	out, _ := ctrl.ReadMemory(addr, 4)
	if got := be32(out); got != 120 {
		t.Errorf("sum(15) = %d, want 120", got)
	}
}

func TestFaultReportsThroughMailbox(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	nop
	unimp 0		! illegal instruction
	nop
`+epilogue)
	res := loadAndRun(t, ctrl, obj)
	if !res.Faulted {
		t.Fatal("fault not reported")
	}
	if res.TT != 0x02 {
		t.Errorf("tt = %#x, want illegal_instruction", res.TT)
	}
	if res.FaultPC != obj.Origin+4 {
		t.Errorf("fault pc = %#x, want %#x", res.FaultPC, obj.Origin+4)
	}
	if ctrl.State() != StateFault {
		t.Errorf("state = %v", ctrl.State())
	}
	// The system recovers: a good program runs afterwards.
	good := assembleProg(t, "_start:\n\tnop\n"+epilogue)
	res2 := loadAndRun(t, ctrl, good)
	if res2.Faulted {
		t.Errorf("recovery run faulted: %+v", res2)
	}
}

func TestUARTOutput(t *testing.T) {
	var uart bytes.Buffer
	ctrl := buildSystem(t, DefaultConfig(), &uart)
	obj := assembleProg(t, `
_start:
	set 0x80000070, %g1	! UART data register
	mov 'o', %g2
	st %g2, [%g1]
	mov 'k', %g2
	st %g2, [%g1]
`+epilogue)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: %+v", res)
	}
	if uart.String() != "ok" {
		t.Errorf("uart = %q", uart.String())
	}
}

func TestGPIOLEDs(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	set 0x800000A0, %g1	! GPIO output (FPX LEDs)
	mov 0xA5, %g2
	st %g2, [%g1]
`+epilogue)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: %+v", res)
	}
	if got := ctrl.SoC().GPIO.Value(); got != 0xA5 {
		t.Errorf("LEDs = %#x", got)
	}
}

func TestTimerInterruptCounted(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	set 0x80000094, %g1	! IRQ mask
	set 0xFFFE, %g2
	st %g2, [%g1]
	set 0x80000044, %g1	! timer reload
	mov 200, %g2
	st %g2, [%g1]
	set 0x80000048, %g1	! timer control: enable|reload|load|irq
	mov 0xF, %g2
	st %g2, [%g1]
	set 3000, %g3
spin:
	subcc %g3, 1, %g3
	bne spin
	nop
`+epilogue)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: tt=%#x pc=%#x", res.TT, res.FaultPC)
	}
	if got := ctrl.IRQCount(); got == 0 {
		t.Error("timer interrupts not delivered to the ROM stub")
	}
	if ctrl.SoC().CPU.Stats().Interrupts == 0 {
		t.Error("CPU took no interrupts")
	}
}

// TestCacheSizeAffectsCycles is the system-level miniature of Fig. 8:
// the same array-sweep program must run much slower with a 1 KB data
// cache than with a 16 KB one.
func TestCacheSizeAffectsCycles(t *testing.T) {
	src := `
_start:
	set 40000, %o0		! iterations
	set buffer, %g1
	mov 0, %g3
loop:
	and %g3, 0xFC0, %g2	! stride through a 4 KB window
	ld [%g1 + %g2], %g4
	add %g3, 64, %g3
	subcc %o0, 1, %o0
	bne loop
	nop
` + epilogue + `
	.align 8
buffer:	.space 4096
`
	cycles := map[int]uint64{}
	for _, size := range []int{1 << 10, 16 << 10} {
		cfg := DefaultConfig()
		cfg.DCache = cache.Config{SizeBytes: size, LineBytes: 32, Assoc: 1}
		ctrl := buildSystem(t, cfg, nil)
		obj := assembleProg(t, src)
		res := loadAndRun(t, ctrl, obj)
		if res.Faulted {
			t.Fatalf("size %d: faulted %+v", size, res)
		}
		cycles[size] = res.Cycles
	}
	if cycles[1<<10] < cycles[16<<10]*3/2 {
		t.Errorf("1KB D$ (%d cycles) not clearly slower than 16KB (%d)",
			cycles[1<<10], cycles[16<<10])
	}
}

func TestExecuteBudget(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, "_start:\n\tba _start\n\tnop\n") // infinite loop
	if err := ctrl.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	_, err := ctrl.Execute(obj.Origin, 50000)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want budget error", err)
	}
	if ctrl.State() != StateFault {
		t.Errorf("state = %v after timeout", ctrl.State())
	}
}

func TestLoadValidation(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	if err := ctrl.LoadProgram(SRAMBase, []byte{1}); err == nil {
		t.Error("load over the mailbox accepted")
	}
	if err := ctrl.LoadProgram(0x1000, []byte{1}); err == nil {
		t.Error("load outside SRAM accepted")
	}
	huge := make([]byte, 16)
	if err := ctrl.LoadProgram(SRAMBase+uint32(ctrl.SoC().Config.SRAMSize)-8, huge); err == nil {
		t.Error("load past SRAM end accepted")
	}
	if _, err := ctrl.Execute(SRAMBase, 0); err == nil {
		t.Error("execute in mailbox accepted")
	}
}

func TestReadWriteMemorySDRAM(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	// Program stores into SDRAM through the adapter; leon_ctrl reads
	// it back through the network port.
	obj := assembleProg(t, `
_start:
	set 0x60000100, %g1
	set 0x12345678, %g2
	st %g2, [%g1]
	st %g2, [%g1 + 4]
`+epilogue)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: %+v", res)
	}
	out, err := ctrl.ReadMemory(0x60000100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if be32(out) != 0x12345678 || be32(out[4:]) != 0x12345678 {
		t.Errorf("sdram = % x", out)
	}
	// Unaligned window read also works.
	out, err = ctrl.ReadMemory(0x60000102, 4)
	if err != nil {
		t.Fatal(err)
	}
	if be32(out) != 0x56781234 {
		t.Errorf("unaligned sdram read = % x", out)
	}
	// Out-of-range read rejected.
	if _, err := ctrl.ReadMemory(0x90000000, 4); err == nil {
		t.Error("read outside memory accepted")
	}
}

func TestROMWriteFaults(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	set 0x100, %g1
	st %g0, [%g1]		! write to PROM: data access exception
`+epilogue)
	res := loadAndRun(t, ctrl, obj)
	if !res.Faulted || res.TT != 0x09 {
		t.Errorf("result = %+v, want data access fault", res)
	}
}

func TestBootROMSourceListsHandlers(t *testing.T) {
	src := BootROMSource(8, 0x40200000)
	for _, frag := range []string{"win_ovf", "win_unf", "bad_trap", "irq_stub", "CheckReady", "boot_start"} {
		if !strings.Contains(src, frag) {
			t.Errorf("boot ROM source missing %s", frag)
		}
	}
	rom, err := BuildBootROM(8, 0x40200000)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := rom.Symbols["CheckReady"]; !ok || got != ROMPollAddr {
		t.Errorf("CheckReady = %#x, want %#x", got, ROMPollAddr)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.SRAMSize = 100
	if _, err := New(bad, nil); err == nil {
		t.Error("tiny SRAM accepted")
	}
	bad = DefaultConfig()
	bad.ICache.SizeBytes = 3000
	if _, err := New(bad, nil); err == nil {
		t.Error("bad icache accepted")
	}
	bad = DefaultConfig()
	bad.ClockMHz = 0
	if _, err := New(bad, nil); err == nil {
		t.Error("zero clock accepted")
	}
	bad = DefaultConfig()
	bad.BurstWords = 0
	if _, err := New(bad, nil); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestSeconds(t *testing.T) {
	soc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := soc.Seconds(30e6); got != 1.0 {
		t.Errorf("Seconds(30e6) = %v at 30 MHz", got)
	}
}
