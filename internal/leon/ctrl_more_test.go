package leon

import (
	"testing"

	"liquidarch/internal/amba"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateReset: "reset", StateIdle: "idle", StateRunning: "running",
		StateDone: "done", StateFault: "fault", State(99): "State(99)",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestReadMemoryNegativeLength(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	if _, err := ctrl.ReadMemory(SRAMBase, -1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestWriteMemoryValidation(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	if err := ctrl.WriteMemory(0x100, []byte{1}); err == nil {
		t.Error("write outside SRAM accepted")
	}
	if err := ctrl.WriteMemory(SRAMBase+0x100, []byte{1, 2}); err != nil {
		t.Errorf("valid write rejected: %v", err)
	}
}

// TestErrorModeRebootsAndReportsFault: a program that disables traps
// and then faults freezes the CPU (SPARC error mode); the controller
// reboots the system — the FPX would reload the bitfile — and reports
// the run as faulted.
func TestErrorModeRebootsAndReportsFault(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	rd %psr, %g1
	set 0x20, %g2
	andn %g1, %g2, %g1	! clear ET
	wr %g1, %g0, %psr
	unimp 0			! trap with ET=0: error mode
`)
	if err := ctrl.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Execute(obj.Origin, 0)
	if err == nil {
		t.Fatal("error mode not reported")
	}
	if !res.Faulted || res.TT != 0x02 {
		t.Errorf("result = %+v", res)
	}
	if ctrl.State() != StateFault {
		t.Errorf("state = %v", ctrl.State())
	}
	// The reboot worked: a good program runs afterwards.
	good := assembleProg(t, "_start:\n\tset 0x1000, %g7\n\tjmp %g7\n\tnop\n")
	if err := ctrl.LoadProgram(good.Origin, good.Code); err != nil {
		t.Fatal(err)
	}
	res2, err := ctrl.Execute(good.Origin, 0)
	if err != nil || res2.Faulted {
		t.Fatalf("post-reboot run: %v %+v", err, res2)
	}
}

// TestDisconnectedSRAMDrivesZeros: while idle the switch of Fig. 6
// returns zeros on reads and swallows writes from the processor side.
func TestDisconnectedSRAMDrivesZeros(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	soc := ctrl.SoC()
	// Seed real data through the user port.
	if err := soc.SRAM.Poke32(0x2000, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	// Processor-side read while disconnected: zero.
	v, _, err := soc.Bus.Read(SRAMBase+0x2000, amba.SizeWord)
	if err != nil || v != 0 {
		t.Errorf("disconnected read = %#x, %v", v, err)
	}
	// Processor-side burst: zeros.
	words := make([]uint32, 4)
	if _, err := soc.Bus.ReadBurst(SRAMBase+0x2000, words); err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		if w != 0 {
			t.Errorf("disconnected burst word = %#x", w)
		}
	}
	// Processor-side write: ignored.
	if _, err := soc.Bus.Write(SRAMBase+0x2000, 0x1234, amba.SizeWord); err != nil {
		t.Fatal(err)
	}
	if got, _ := soc.SRAM.Peek32(0x2000); got != 0xDEAD {
		t.Errorf("disconnected write landed: %#x", got)
	}
}

func TestExecuteWrongState(t *testing.T) {
	soc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(soc)
	// Before Boot: Execute and LoadProgram refused.
	if _, err := ctrl.Execute(DefaultLoadAddr, 0); err == nil {
		t.Error("Execute before Boot accepted")
	}
	if err := ctrl.LoadProgram(DefaultLoadAddr, []byte{1}); err == nil {
		t.Error("LoadProgram before Boot accepted")
	}
}

func TestSwapCachesValidation(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	soc := ctrl.SoC()
	bad := soc.Config.ICache
	bad.SizeBytes = 3000
	if err := soc.SwapCaches(bad, soc.Config.DCache); err == nil {
		t.Error("invalid icache swap accepted")
	}
	bad = soc.Config.DCache
	bad.SizeBytes = 777
	if err := soc.SwapCaches(soc.Config.ICache, bad); err == nil {
		t.Error("invalid dcache swap accepted")
	}
}
