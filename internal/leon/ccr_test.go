package leon

import (
	"testing"
)

// TestCacheControlRegister: software can disable the data cache via
// the CCR; a cache-defeating kernel then runs slower, and re-enabling
// restores performance.
func TestCacheControlRegister(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	// Kernel: repeatedly read one memory word.
	kernel := `
_start:
	set data, %g1
	set 2000, %g3
loop:
	ld [%g1], %g2
	subcc %g3, 1, %g3
	bne loop
	nop
` + epilogue + `
	.align 4
data:	.word 7
`
	obj := assembleProg(t, kernel)
	withCache := loadAndRun(t, ctrl, obj)

	// Disable the D-cache through the APB register, as a program would.
	disable := assembleProg(t, `
_start:
	set 0x80000010, %g1
	mov 1, %g2		! icache on, dcache off
	st %g2, [%g1]
`+epilogue)
	loadAndRun(t, ctrl, disable)
	if ctrl.SoC().DCache.Enabled() {
		t.Fatal("CCR write did not disable the data cache")
	}
	obj2 := assembleProg(t, kernel)
	withoutCache := loadAndRun(t, ctrl, obj2)
	// One of the loop's four instructions is the load; uncached it
	// costs ~4 bus cycles instead of 1, a ≥30% whole-loop slowdown.
	if withoutCache.Cycles <= withCache.Cycles*13/10 {
		t.Errorf("uncached run (%d) not clearly slower than cached (%d)",
			withoutCache.Cycles, withCache.Cycles)
	}

	// Re-enable with flush; performance returns.
	enable := assembleProg(t, `
_start:
	set 0x80000010, %g1
	mov 7, %g2		! enable both, flush
	st %g2, [%g1]
`+epilogue)
	loadAndRun(t, ctrl, enable)
	if !ctrl.SoC().DCache.Enabled() || !ctrl.SoC().ICache.Enabled() {
		t.Fatal("CCR write did not re-enable the caches")
	}
	again := loadAndRun(t, ctrl, assembleProg(t, kernel))
	if again.Cycles > withCache.Cycles*11/10 {
		t.Errorf("re-enabled run (%d) slower than original (%d)", again.Cycles, withCache.Cycles)
	}
}

// TestCCRReadsBack reports the enable bits.
func TestCCRReadsBack(t *testing.T) {
	ctrl := buildSystem(t, DefaultConfig(), nil)
	obj := assembleProg(t, `
_start:
	set 0x80000010, %g1
	ld [%g1], %g2		! read CCR
	set result, %g3
	st %g2, [%g3]
`+epilogue+`
result:	.word 0
`)
	res := loadAndRun(t, ctrl, obj)
	if res.Faulted {
		t.Fatalf("faulted: %+v", res)
	}
	addr, _ := obj.Symbol("result")
	out, _ := ctrl.ReadMemory(addr, 4)
	if got := be32(out); got != CCREnableICache|CCREnableDCache {
		t.Errorf("CCR = %#x, want both enables", got)
	}
}
