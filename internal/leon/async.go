package leon

import (
	"errors"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"liquidarch/internal/sim"
	"liquidarch/internal/tracing"
)

// ErrClosed reports an operation against a shut-down AsyncController.
var ErrClosed = errors.New("leon: async controller closed")

// sliceSteps is how many instructions the actor executes between
// request-channel polls. A slice's wall time bounds the control plane's
// scheduling latency on a single-CPU host (every goroutine hop in a
// status round trip waits for the actor's per-slice yield), so it is
// sized to a few hundred microseconds at the simulator's steady-state
// step rate — well inside the 10 ms latency target, while the
// per-slice channel poll and yield stay invisible next to the stepping
// itself. Superblock dispatch dropped the per-step cost well below the
// old interpreter's, so the slice grew with it: a StepRun slice is now
// a run of event-horizon batches (SoC.StepN) whose size derives from
// the peripheral deadline, and 2^14 steps of block dispatch still
// complete in a few hundred microseconds.
const sliceSteps = 1 << 14

// RunOptions decorate one run. Both hooks are invoked on the actor
// goroutine, so they may touch the SoC without synchronization: Before
// immediately after the §3.1 handoff, ahead of the first step slice
// (attach a trace recorder here — the handoff's ROM poll wait is not
// part of the run, and keeping per-instruction hooks off the CPU while
// it waits lets the poll loop fast-forward instead of being emulated
// one instruction at a time), After exactly once when the run
// completes, exhausts its budget, hits error mode — or when the
// handoff itself fails (Before fires first even then, so a recorder
// attached in Before is always detached).
type RunOptions struct {
	Before func(c *Controller)
	After  func(c *Controller, res RunResult, wall time.Duration, err error)
	// Trace, when enabled, attributes the run's step slices to an
	// exchange trace: the actor records one "slice" span per StepRun
	// batch (the per-trace span bound caps a long run's volume). The
	// zero Ctx disables slice recording at no cost.
	Trace tracing.Ctx
}

// runHandle is one run's completion mailbox.
type runHandle struct {
	done chan struct{} // closed after res/err are final and After has run
	res  RunResult
	err  error
}

// asyncReq is a closure executed by the actor goroutine.
type asyncReq struct {
	fn   func(c *Controller)
	done chan struct{}
}

// AsyncController wraps a Controller in a per-board actor goroutine,
// turning the paper's §3.1 handoff into its true asynchronous shape:
// Start writes the entry address and returns immediately, the run is
// driven in bounded step slices by the actor, and the client observes
// completion via State/Cycles polling before collecting the RunResult
// — while loads, memory reads and status queries interleave between
// slices. The underlying Controller and SoC are goroutine-confined to
// the actor, so every operation is race-free by construction; State
// and Cycles additionally read lock-free atomics published at each
// slice boundary, so status never waits on execution.
type AsyncController struct {
	reqs chan asyncReq
	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	state  atomic.Uint32 // State, published at slice boundaries
	cycles atomic.Uint64 // run-relative cycle counter, ditto

	mu      sync.Mutex
	run     *runHandle // current or most recent run (nil before the first)
	lastRes RunResult  // mirror of ctrl.LastResult(), refreshed at publish points
	runDone func()     // completion hook, invoked on the actor goroutine
	clk     sim.Clock  // wall-duration source (nil = sim.Real)

	// Actor-local run context (touched only on the actor goroutine).
	wallStart time.Time
	opts      RunOptions
}

// NewAsyncController wraps ctrl in a fresh actor. The caller must not
// touch ctrl (or its SoC) directly afterwards except through Do.
func NewAsyncController(ctrl *Controller) *AsyncController {
	// The actor is compute-bound while a run is in flight. On a host
	// where GOMAXPROCS is 1 that pins the only scheduler thread: socket
	// readiness is then only discovered by the runtime's ~10 ms sysmon
	// poll, which blows the control plane's latency target on every
	// network hop. Keep at least one extra thread so the netpoller has
	// somewhere to run. (Purely a scheduling concern — simulated cycle
	// counts are unaffected.)
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	a := &AsyncController{
		reqs: make(chan asyncReq),
		quit: make(chan struct{}),
	}
	a.publish(ctrl)
	a.wg.Add(1)
	go a.loop(ctrl)
	return a
}

// loop is the actor: it serves requests while idle and drives an
// in-flight run in slices, draining queued requests between slices so
// the control plane stays responsive during execution. Every
// controller access happens strictly before the acknowledgement the
// caller can observe (req.done / the run handle's done channel), so a
// caller that owns the controller while the actor is idle — tests and
// benchmarks poking the bare Controller directly — sees no concurrent
// access from this goroutine.
func (a *AsyncController) loop(ctrl *Controller) {
	defer a.wg.Done()
	for {
		select {
		case <-a.quit:
			return
		case req := <-a.reqs:
			if !a.serve(ctrl, req) {
				continue
			}
		}
		// A request put the controller in StateRunning: drive the run.
		for {
			ss := a.opts.Trace.Start("slice")
			done, res, err := ctrl.StepRun(sliceSteps)
			a.publish(ctrl)
			if ss.On() {
				ss.EndAttrs(tracing.A("cycles", strconv.FormatUint(ctrl.Cycles(), 10)))
			}
			if done {
				a.finish(ctrl, res, err)
				break
			}
			// Serve whatever queued up during the slice, without
			// blocking the run when the queue is empty.
		drain:
			for {
				select {
				case <-a.quit:
					return
				case req := <-a.reqs:
					a.serve(ctrl, req)
				default:
					break drain
				}
			}
			// Yield explicitly: the stepping loop is compute-bound, and
			// on a single-CPU host a control request (a status poll
			// hopping client → server → worker → here) would otherwise
			// wait for the ~10 ms async-preemption tick at every hop.
			// One Gosched per slice caps that wait at a slice's wall
			// time, keeping the control plane inside its latency target.
			runtime.Gosched()
		}
	}
}

// serve runs one request on the actor goroutine, refreshes the
// lock-free mirror, acknowledges the caller, and reports whether the
// controller is now running (i.e. the request performed a handoff).
// The mirror refresh — the actor's last controller read — happens
// before the acknowledgement.
func (a *AsyncController) serve(ctrl *Controller, req asyncReq) bool {
	req.fn(ctrl)
	running := ctrl.State() == StateRunning
	a.publish(ctrl)
	close(req.done)
	return running
}

// publish refreshes the poll-path mirror: lock-free state/cycles plus
// the mutex-guarded last-result copy. Everything a status query needs
// is served from this mirror, so CmdStatus never waits on the actor.
func (a *AsyncController) publish(ctrl *Controller) {
	a.state.Store(uint32(ctrl.State()))
	a.cycles.Store(ctrl.Cycles())
	res := ctrl.LastResult()
	a.mu.Lock()
	a.lastRes = res
	a.mu.Unlock()
}

// finish completes the current run on the actor goroutine: the After
// hook runs first (so by the time the Done state is observable, all
// observers — trace detach, metrics — have fired), then the result is
// published and the handle's done channel closed.
func (a *AsyncController) finish(ctrl *Controller, res RunResult, err error) {
	if a.opts.After != nil {
		a.opts.After(ctrl, res, a.clock().Since(a.wallStart), err)
	}
	a.opts = RunOptions{}
	a.mu.Lock()
	h := a.run
	a.mu.Unlock()
	h.res, h.err = res, err
	a.publish(ctrl)
	close(h.done)
	// The completion hook fires last: by the time a woken waiter looks,
	// State reads Done/Fault and CollectResult returns without blocking.
	a.mu.Lock()
	done := a.runDone
	a.mu.Unlock()
	if done != nil {
		done()
	}
}

// SetRunDoneHook registers fn to be invoked — on the actor goroutine,
// after the result is published and the run handle closed — every time
// a run completes. The reconfiguration server uses it to wake parked
// CmdWaitResult exchanges the instant the board finishes instead of
// making clients poll. fn must not block (the server's hook is a
// non-blocking channel send); nil clears the hook.
func (a *AsyncController) SetRunDoneHook(fn func()) {
	a.mu.Lock()
	a.runDone = fn
	a.mu.Unlock()
}

// SetClock injects the time source used for run wall-duration
// measurement (nil restores the real clock). Simulated nodes set the
// virtual clock here so run timing is deterministic.
func (a *AsyncController) SetClock(c sim.Clock) {
	a.mu.Lock()
	a.clk = c
	a.mu.Unlock()
}

func (a *AsyncController) clock() sim.Clock {
	a.mu.Lock()
	defer a.mu.Unlock()
	return sim.Or(a.clk)
}

// Do runs fn on the actor goroutine, serialized against the in-flight
// run (fn executes between step slices, never concurrently with them).
// It is the escape hatch for operations that must touch the SoC — the
// cache-plugin swap of a partial reconfiguration, direct memory pokes
// in tests. Returns ErrClosed after Close.
func (a *AsyncController) Do(fn func(c *Controller)) error {
	req := asyncReq{fn: fn, done: make(chan struct{})}
	select {
	case a.reqs <- req:
		<-req.done
		return nil
	case <-a.quit:
		return ErrClosed
	}
}

// State returns the controller state from the lock-free mirror — it
// never waits on execution.
func (a *AsyncController) State() State { return State(a.state.Load()) }

// Cycles returns the hardware cycle counter from the lock-free mirror:
// live (within one slice) while running, final afterwards.
func (a *AsyncController) Cycles() uint64 { return a.cycles.Load() }

// LastResult returns the most recent completed run's result, served
// from the publish mirror — like State and Cycles it never waits on
// execution, so the status path stays prompt mid-run.
func (a *AsyncController) LastResult() RunResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastRes
}

// LoadProgram writes a program image through the user port. While a
// run is in flight the underlying controller rejects it ("cannot load
// in state running") — the request itself is served between slices.
func (a *AsyncController) LoadProgram(addr uint32, image []byte) error {
	err := ErrClosed
	if derr := a.Do(func(c *Controller) { err = c.LoadProgram(addr, image) }); derr != nil {
		return derr
	}
	return err
}

// ReadMemory reads through the user-side ports. Mid-run reads are
// legal — the FPX SDRAM controller arbitrates the network-side port
// against the processor (§2.4) — and are serialized at slice
// boundaries here.
func (a *AsyncController) ReadMemory(addr uint32, n int) ([]byte, error) {
	var (
		out []byte
		err error
	)
	if derr := a.Do(func(c *Controller) { out, err = c.ReadMemory(addr, n) }); derr != nil {
		return nil, derr
	}
	return out, err
}

// WriteMemory writes through the user-side SRAM port (rejected while
// running, like LoadProgram).
func (a *AsyncController) WriteMemory(addr uint32, p []byte) error {
	err := ErrClosed
	if derr := a.Do(func(c *Controller) { err = c.WriteMemory(addr, p) }); derr != nil {
		return derr
	}
	return err
}

// IRQCount returns the mailbox interrupt counter.
func (a *AsyncController) IRQCount() uint32 {
	var v uint32
	_ = a.Do(func(c *Controller) { v = c.IRQCount() })
	return v
}

// Start begins executing the program at entry and returns as soon as
// the handoff completes — the paper's "Start LEON" ack. The run itself
// is driven by the actor; poll State/Cycles and fetch the result with
// CollectResult. maxCycles bounds the run (0 = large default).
func (a *AsyncController) Start(entry uint32, maxCycles uint64) error {
	return a.StartOpts(entry, maxCycles, RunOptions{})
}

// StartOpts is Start with per-run hooks.
func (a *AsyncController) StartOpts(entry uint32, maxCycles uint64, opts RunOptions) error {
	err := ErrClosed
	derr := a.Do(func(c *Controller) {
		start := a.clock().Now()
		err = c.Start(entry, maxCycles)
		a.publish(c)
		if opts.Before != nil {
			opts.Before(c)
		}
		if err != nil {
			// Handoff failed: no run is in flight. Fire After anyway so
			// anything attached in Before is torn down and the failure
			// is observed, mirroring the blocking path.
			if opts.After != nil {
				res := RunResult{}
				if st := c.State(); st == StateFault || st == StateReset {
					res = c.LastResult()
				}
				opts.After(c, res, a.clock().Since(start), err)
			}
			return
		}
		a.wallStart = start
		a.opts = opts
		h := &runHandle{done: make(chan struct{})}
		a.mu.Lock()
		a.run = h
		a.mu.Unlock()
	})
	if derr != nil {
		return derr
	}
	return err
}

// StartCtx is the trace-aware handoff (fpx.CtxStarter): the actor's
// per-slice spans land under tc. Platforms built on a bare actor (no
// core.System wrapper) get run-slice visibility through this.
func (a *AsyncController) StartCtx(tc tracing.Ctx, entry uint32, maxCycles uint64) error {
	return a.StartOpts(entry, maxCycles, RunOptions{Trace: tc})
}

// ExecuteCtx is the trace-aware blocking path (fpx.CtxExecutor).
func (a *AsyncController) ExecuteCtx(tc tracing.Ctx, entry uint32, maxCycles uint64) (RunResult, error) {
	return a.ExecuteOpts(entry, maxCycles, RunOptions{Trace: tc})
}

// CollectResult blocks until the in-flight run completes and returns
// its result; with no run in flight it returns the last result. Calling
// it repeatedly is idempotent — the §2.6 UDP client may retransmit.
func (a *AsyncController) CollectResult() (RunResult, error) {
	a.mu.Lock()
	h := a.run
	a.mu.Unlock()
	if h == nil {
		var res RunResult
		if err := a.Do(func(c *Controller) { res = c.LastResult() }); err != nil {
			return RunResult{}, err
		}
		return res, nil
	}
	select {
	case <-h.done:
		return h.res, h.err
	case <-a.quit:
		return RunResult{}, ErrClosed
	}
}

// Execute is the synchronous compatibility path: Start + CollectResult,
// identical in observable behavior (results, cycle counts, error
// shapes) to the historical blocking Controller.Execute.
func (a *AsyncController) Execute(entry uint32, maxCycles uint64) (RunResult, error) {
	return a.ExecuteOpts(entry, maxCycles, RunOptions{})
}

// ExecuteOpts is Execute with per-run hooks.
func (a *AsyncController) ExecuteOpts(entry uint32, maxCycles uint64, opts RunOptions) (RunResult, error) {
	if err := a.StartOpts(entry, maxCycles, opts); err != nil {
		if st := a.State(); st == StateFault || st == StateReset {
			return a.LastResult(), err
		}
		return RunResult{}, err
	}
	return a.CollectResult()
}

// Close shuts the actor down. An in-flight run is abandoned at the
// next slice boundary (the FPX would reload the bitfile); subsequent
// operations return ErrClosed. Close is idempotent and returns once
// the actor goroutine has exited.
func (a *AsyncController) Close() {
	a.once.Do(func() { close(a.quit) })
	a.wg.Wait()
}
