package leon

import (
	"errors"
	"fmt"

	"liquidarch/internal/cpu"
)

// State is the leon_ctrl state machine's externally visible state
// (§3.1: the external circuitry sequences load → execute → return).
type State uint8

// Controller states.
const (
	StateReset   State = iota // before Boot
	StateIdle                 // CPU parked in the poll loop, memory disconnected
	StateRunning              // user program executing
	StateDone                 // last program returned normally
	StateFault                // last program hit an unexpected trap
)

func (s State) String() string {
	switch s {
	case StateReset:
		return "reset"
	case StateIdle:
		return "idle"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFault:
		return "fault"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// ErrBudget reports that a run exceeded its cycle budget.
var ErrBudget = errors.New("leon: cycle budget exhausted")

// RunResult is what the hardware cycle counter and fault mailbox report
// after a program run.
type RunResult struct {
	// Cycles is the clock-cycle count from program entry to its
	// return to the poll loop — the number the paper's Figure 8
	// reports.
	Cycles uint64
	// Instructions executed by the program.
	Instructions uint64
	// Faulted is set when the program ended via bad_trap.
	Faulted bool
	// TT and FaultPC identify the fault when Faulted.
	TT      uint8
	FaultPC uint32
}

// Controller is the leon_ctrl entity plus the external disconnect
// circuitry of Fig. 6: it monitors the LEON's address bus (here: its
// PC), connects and disconnects main memory, loads programs through
// the user port, and counts execution cycles.
type Controller struct {
	soc   *SoC
	state State
	last  RunResult

	// In-flight run bookkeeping, armed by Start and consumed by
	// StepRun/CollectResult. Valid only while state == StateRunning.
	runLimit       uint64 // absolute CPU.Cycles budget for the run
	runStartCycles uint64 // CPU.Cycles at program entry
	runStartInsts  uint64 // instruction count at program entry
}

// NewController wraps a freshly built SoC.
func NewController(soc *SoC) *Controller {
	return &Controller{soc: soc}
}

// SoC returns the underlying processor system.
func (c *Controller) SoC() *SoC { return c.soc }

// State returns the current controller state.
func (c *Controller) State() State { return c.state }

// LastResult returns the result of the most recent run.
func (c *Controller) LastResult() RunResult { return c.last }

// Boot lets the CPU run the boot ROM until it parks in the poll loop
// with main memory disconnected. Call once after New.
func (c *Controller) Boot() error {
	if c.state != StateReset {
		return fmt.Errorf("leon: Boot in state %v", c.state)
	}
	c.soc.sramSwitch.connected = false
	c.soc.CPU.Reset()
	const budget = 1 << 16
	for i := 0; i < budget; i++ {
		if c.soc.CPU.PC() == ROMPollAddr {
			c.state = StateIdle
			return nil
		}
		if err := c.soc.Step(); err != nil {
			return fmt.Errorf("leon: boot failed: %w", err)
		}
	}
	return fmt.Errorf("leon: boot did not reach the poll loop: %w", ErrBudget)
}

// LoadProgram writes a program image into SRAM through the user-side
// port while the CPU is disconnected (the paper's load path: "programs
// are sent to the FPX via UDP packets, then written directly to main
// memory").
func (c *Controller) LoadProgram(addr uint32, image []byte) error {
	if c.state == StateRunning || c.state == StateReset {
		return fmt.Errorf("leon: cannot load in state %v", c.state)
	}
	if addr < MailboxEnd {
		return fmt.Errorf("leon: load address %#x overlaps the mailbox page", addr)
	}
	if addr < SRAMBase || uint64(addr)+uint64(len(image)) > uint64(SRAMBase)+uint64(c.soc.Config.SRAMSize) {
		return fmt.Errorf("leon: load [%#x,+%d) outside SRAM", addr, len(image))
	}
	// A fresh image may reuse addresses from the previous run; drop any
	// instructions predecoded from the old contents. (The boot ROM's
	// FLUSH before handoff also does this — see BootROMSource — but the
	// load path must not rely on the program running to completion.)
	c.soc.CPU.InvalidatePredecode()
	return c.soc.SRAM.Poke(addr-SRAMBase, image)
}

// Start begins executing the program at entry without driving it to
// completion: it clears the fault mailbox, publishes the start address
// in the poll word, reconnects main memory and steps the CPU until the
// boot ROM's poll loop picks the address up and jumps into the program.
// On return the controller is in StateRunning with the CPU parked on
// the program's first instruction; the caller either drives the run to
// completion with StepRun/CollectResult (the paper's §3.1 start → poll
// → collect flow) or steps the SoC directly (the steady-state path the
// throughput benchmarks measure). maxCycles bounds the whole run,
// handoff included (0 means a large default).
func (c *Controller) Start(entry uint32, maxCycles uint64) error {
	if c.state != StateIdle && c.state != StateDone && c.state != StateFault {
		return fmt.Errorf("leon: cannot execute in state %v", c.state)
	}
	if entry < MailboxEnd || entry >= SRAMBase+uint32(c.soc.Config.SRAMSize) {
		return fmt.Errorf("leon: entry %#x outside user SRAM", entry)
	}
	if maxCycles == 0 {
		maxCycles = 1 << 32
	}
	// Clear the fault mailbox, publish the start address, reconnect.
	sram := c.soc.SRAM
	for _, off := range []uint32{MailboxFaultTT, MailboxFaultPC} {
		if err := sram.Poke32(off-SRAMBase, 0); err != nil {
			return err
		}
	}
	if err := sram.Poke32(MailboxProgAddr-SRAMBase, entry); err != nil {
		return err
	}
	c.soc.sramSwitch.connected = true
	c.state = StateRunning

	limit := c.soc.CPU.Cycles + maxCycles
	// Wait for the poll loop to pick up the address and jump into the
	// program. The wait runs in event-horizon batches with entry as the
	// stop address (cycleCap limit+1 ⇔ the historical Cycles > limit
	// pre-step check), so a machine that never picks it up — parked in
	// any side-effect-free spin — fast-forwards to the budget instead
	// of being emulated one instruction at a time.
	for c.soc.CPU.PC() != entry {
		if c.soc.CPU.Cycles > limit {
			c.state = StateIdle
			c.soc.sramSwitch.connected = false
			return fmt.Errorf("leon: program never entered: %w", ErrBudget)
		}
		if _, err := c.soc.StepN(1<<20, limit+1, entry); err != nil {
			_, err = c.errorMode(err)
			return err
		}
	}
	// Arm the resumable-run bookkeeping: the reported cycle count starts
	// at program entry (handoff cycles excluded), while the budget limit
	// was fixed before the handoff — both exactly as the historical
	// blocking Execute measured them.
	c.runLimit = limit
	c.runStartCycles = c.soc.CPU.Cycles
	c.runStartInsts = c.soc.CPU.Stats().Instructions
	return nil
}

// Cycles returns the hardware cycle counter as the paper's client
// observes it: cycles consumed so far by the in-flight run, or the
// final count of the last completed run.
func (c *Controller) Cycles() uint64 {
	if c.state == StateRunning {
		return c.soc.CPU.Cycles - c.runStartCycles
	}
	return c.last.Cycles
}

// finishRun disconnects main memory, zeroes the poll word and records
// the result — the external circuitry's reaction to the CPU returning
// to the poll routine.
func (c *Controller) finishRun(res RunResult) (RunResult, error) {
	c.soc.sramSwitch.connected = false
	// Zero the poll word so a reconnect without a new program does not
	// re-run the old one.
	if err := c.soc.SRAM.Poke32(MailboxProgAddr-SRAMBase, 0); err != nil {
		return res, err
	}
	c.last = res
	if res.Faulted {
		c.state = StateFault
	} else {
		c.state = StateDone
	}
	return res, nil
}

// StepRun advances an in-flight run (armed by Start) by at most
// maxSteps instructions. It returns done=false while the program is
// still executing; once the CPU returns to the poll routine, exhausts
// its cycle budget or freezes in error mode, it finalizes the run
// exactly as the blocking Execute would and returns done=true with the
// result. The slicing changes host scheduling only — the simulated
// instruction sequence, and therefore every cycle count, is identical
// to an unsliced run.
func (c *Controller) StepRun(maxSteps int) (done bool, res RunResult, err error) {
	if c.state != StateRunning {
		return true, c.last, fmt.Errorf("leon: StepRun in state %v", c.state)
	}
	sram := c.soc.SRAM
	// The run advances in event-horizon batches (SoC.StepN) instead of
	// one instruction at a time. StepN stops at exactly the boundaries
	// the per-step loop tested between instructions — PC on the poll
	// routine, the cycle counter past the budget (cycleCap runLimit+1
	// ⇔ the historical Cycles > runLimit pre-step check), a device
	// access moving the horizon — so the checks below fire at the same
	// instruction, in the same order, as they always did.
	for steps := 0; ; {
		if steps >= maxSteps {
			return false, RunResult{}, nil
		}
		if c.soc.CPU.PC() == ROMPollAddr {
			r := RunResult{
				Cycles:       c.soc.CPU.Cycles - c.runStartCycles,
				Instructions: c.soc.CPU.Stats().Instructions - c.runStartInsts,
			}
			// A bad_trap during the run lands back at the poll loop with
			// the fault mailbox filled in.
			if tt, merr := sram.Peek32(MailboxFaultTT - SRAMBase); merr == nil && tt != 0 {
				r.Faulted = true
				r.TT = uint8(tt)
				pc, _ := sram.Peek32(MailboxFaultPC - SRAMBase)
				r.FaultPC = pc
			}
			fr, ferr := c.finishRun(r)
			return true, fr, ferr
		}
		if c.soc.CPU.Cycles > c.runLimit {
			fr, _ := c.finishRun(RunResult{
				Cycles:       c.soc.CPU.Cycles - c.runStartCycles,
				Instructions: c.soc.CPU.Stats().Instructions - c.runStartInsts,
				Faulted:      true,
			})
			return true, fr, fmt.Errorf("leon: %w after %d cycles", ErrBudget, fr.Cycles)
		}
		n, serr := c.soc.StepN(maxSteps-steps, c.runLimit+1, ROMPollAddr)
		steps += n
		if serr != nil {
			fr, ferr := c.errorMode(serr)
			return true, fr, ferr
		}
	}
}

// CollectResult drives an in-flight run to completion and returns its
// result; when no run is in flight it returns the last result. It is
// the blocking counterpart of the AsyncController's poll-based collect.
func (c *Controller) CollectResult() (RunResult, error) {
	for c.state == StateRunning {
		if done, res, err := c.StepRun(1 << 16); done {
			return res, err
		}
	}
	return c.last, nil
}

// Execute starts the program at entry and runs it to completion: it
// stores the start address in the poll word, reconnects main memory,
// lets the CPU jump in, and watches the address bus for the return to
// the poll routine, at which point it disconnects memory again and
// reports the cycle count. maxCycles bounds the run (0 means a large
// default).
func (c *Controller) Execute(entry uint32, maxCycles uint64) (RunResult, error) {
	if err := c.Start(entry, maxCycles); err != nil {
		if c.state == StateFault || c.state == StateReset {
			// The CPU hit error mode during the handoff; errorMode
			// recorded the fault in last.
			return c.last, err
		}
		return RunResult{}, err
	}
	return c.CollectResult()
}

// errorMode handles a CPU error-mode freeze: record it as a fault and
// re-boot the processor (the FPX would reload the bitfile).
func (c *Controller) errorMode(err error) (RunResult, error) {
	res := RunResult{Faulted: true}
	var em *cpu.ErrorMode
	if errors.As(err, &em) {
		res.TT = em.TT
		res.FaultPC = em.PC
	}
	c.last = res
	c.state = StateReset
	if berr := c.Boot(); berr != nil {
		return res, fmt.Errorf("leon: error mode (%v) and reboot failed: %w", err, berr)
	}
	c.state = StateFault
	return res, err
}

// ReadMemory reads n bytes at addr through the user-side ports: SRAM
// via the leon_ctrl port, SDRAM via the controller's network module
// port (the FPX SDRAM controller arbitrates both, §2.4).
func (c *Controller) ReadMemory(addr uint32, n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("leon: negative read length %d", n)
	}
	out := make([]byte, n)
	switch {
	case addr >= SRAMBase && uint64(addr)+uint64(n) <= uint64(SRAMBase)+uint64(c.soc.Config.SRAMSize):
		if err := c.soc.SRAM.Peek(addr-SRAMBase, out); err != nil {
			return nil, err
		}
		return out, nil
	case addr >= SDRAMBase && uint64(addr)+uint64(n) <= uint64(SDRAMBase)+uint64(c.soc.Config.SDRAMSize):
		return c.readSDRAM(addr-SDRAMBase, n)
	default:
		return nil, fmt.Errorf("leon: read [%#x,+%d) outside user memory", addr, n)
	}
}

// WriteMemory writes bytes at addr through the user-side SRAM port.
func (c *Controller) WriteMemory(addr uint32, p []byte) error {
	if c.state == StateRunning {
		return fmt.Errorf("leon: cannot write memory while running")
	}
	if addr < SRAMBase || uint64(addr)+uint64(len(p)) > uint64(SRAMBase)+uint64(c.soc.Config.SRAMSize) {
		return fmt.Errorf("leon: write [%#x,+%d) outside SRAM", addr, len(p))
	}
	// Same staleness concern as LoadProgram: user-port pokes bypass the
	// CPU's store path, so its per-store invalidation never sees them.
	c.soc.CPU.InvalidatePredecode()
	return c.soc.SRAM.Poke(addr-SRAMBase, p)
}

// readSDRAM reads via the network-side controller port in 64-bit
// bursts.
func (c *Controller) readSDRAM(off uint32, n int) ([]byte, error) {
	start := off &^ 7
	end := (off + uint32(n) + 7) &^ 7
	words := make([]uint64, (end-start)/8)
	const chunk = 64 // controller burst limit
	for i := 0; i < len(words); i += chunk {
		j := i + chunk
		if j > len(words) {
			j = len(words)
		}
		if _, err := c.soc.NetPort.ReadBurst(start+uint32(i)*8, words[i:j]); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, len(words)*8)
	for i, w := range words {
		for b := 0; b < 8; b++ {
			buf[i*8+b] = byte(w >> ((7 - b) * 8))
		}
	}
	return buf[off-start : off-start+uint32(n)], nil
}

// IRQCount returns the mailbox interrupt counter maintained by the ROM
// interrupt stub.
func (c *Controller) IRQCount() uint32 {
	v, _ := c.soc.SRAM.Peek32(MailboxIRQCount - SRAMBase)
	return v
}
