package leon

import (
	"testing"
	"time"
)

// TestAsyncRunDoneHook: the completion hook fires exactly once per
// run, strictly after the run's result is published — a waiter woken
// by the hook must observe the final state and collectable result, not
// a still-running actor.
func TestAsyncRunDoneHook(t *testing.T) {
	a := newAsync(t)
	obj := buildAt(t, shortProg)
	if err := a.LoadProgram(obj.Origin, obj.Code); err != nil {
		t.Fatal(err)
	}

	type seen struct {
		state  State
		cycles uint64
	}
	fired := make(chan seen, 4)
	a.SetRunDoneHook(func() {
		fired <- seen{state: a.State(), cycles: a.Cycles()}
	})

	if err := a.Start(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	var got seen
	select {
	case got = <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("run-done hook never fired")
	}
	if got.state == StateRunning {
		t.Errorf("hook observed state %v: fired before the run finished", got.state)
	}
	if got.cycles == 0 {
		t.Error("hook observed zero cycles: result not yet published")
	}
	res, err := a.CollectResult()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != got.cycles {
		t.Errorf("hook saw %d cycles, collect saw %d", got.cycles, res.Cycles)
	}
	select {
	case extra := <-fired:
		t.Errorf("hook fired again without a new run: %+v", extra)
	default:
	}

	// A second run fires the hook again.
	if err := a.Start(obj.Origin, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("hook did not fire for the second run")
	}
	if _, err := a.CollectResult(); err != nil {
		t.Fatal(err)
	}
}
