// Package lcc is the Liquid C compiler: a small C compiler targeting
// SPARC V8 assembly, standing in for the paper's LECCS (gcc 2.95)
// cross-compiler in the flow of Fig. 4 ("Compile w/ GCC → Assemble →
// Link → Convert to bin"). It supports the integer subset the paper's
// benchmark programs need — notably the Fig. 7 array-access kernel —
// plus pointers, arrays, and the __mac() builtin for the Liquid ISA
// extension.
//
// Supported language:
//
//	types:   int, unsigned, char (unsigned), void, T*, 1-D arrays;
//	         volatile/const are accepted and ignored
//	decls:   globals (with scalar/array initializers), functions with
//	         up to 6 int-class parameters, prototypes, locals
//	stmts:   if/else, while, do/while, for, switch (fall-through),
//	         return, break, continue, blocks, expression statements
//	exprs:   ?:, || && | ^ & == != < <= > >= << >> + - * / %, unary
//	         - ! ~ * & ++ --, casts, calls, indexing, sizeof,
//	         assignment ops, int/char/string literals
//	builtin: __mac(acc, a, b) → lqmac (single-cycle multiply-
//	         accumulate when the MAC unit is configured)
//
// The back end performs constant folding, power-of-two strength
// reduction for * / %, and register allocation: non-address-taken
// scalar locals live in %l4-%l7 and parameters stay in their incoming
// %i registers, with the expression stack in %l0-%l3.
package lcc

import (
	"fmt"
	"strings"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct
	tokKeyword
)

var keywords = map[string]bool{
	"int": true, "unsigned": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true, "sizeof": true,
	"switch": true, "case": true, "default": true,
	"volatile": true, "const": true,
}

// token is one lexical token with its source line.
type token struct {
	kind tokKind
	text string
	num  int64 // value for tokNumber/tokChar
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNumber:
		return fmt.Sprintf("number %d", t.num)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// CompileError is a diagnostic tied to a source line.
type CompileError struct {
	Line int
	Msg  string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("lcc: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &CompileError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
	"(", ")", "{", "}", "[", "]", ",", ";", "?", ":",
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, errf(line, "unterminated block comment")
			}
			line += strings.Count(src[i:i+2+end+2], "\n")
			i += 2 + end + 2
		case c == '#':
			// Preprocessor lines (e.g. #define) are not supported;
			// skip them with a clear error to avoid silent surprises.
			return nil, errf(line, "preprocessor directives are not supported")
		case isDigit(c):
			start := i
			base := 10
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				i += 2
			}
			for i < len(src) && isHexDigit(src[i]) {
				i++
			}
			lit := src[start:i]
			var v int64
			var err error
			if base == 16 {
				_, err = fmt.Sscanf(lit, "0x%x", &v)
				if err != nil {
					_, err = fmt.Sscanf(lit, "0X%x", &v)
				}
			} else {
				_, err = fmt.Sscanf(lit, "%d", &v)
			}
			if err != nil {
				return nil, errf(line, "bad number %q", lit)
			}
			// Integer suffixes u/U/l/L are accepted and ignored.
			for i < len(src) && (src[i] == 'u' || src[i] == 'U' || src[i] == 'l' || src[i] == 'L') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: lit, num: v, line: line})
		case isIdentStart(c):
			start := i
			for i < len(src) && isIdentCont(src[i]) {
				i++
			}
			name := src[start:i]
			k := tokIdent
			if keywords[name] {
				k = tokKeyword
			}
			toks = append(toks, token{kind: k, text: name, line: line})
		case c == '"':
			i++
			var sb strings.Builder
			for i < len(src) && src[i] != '"' {
				ch, n, err := unescapeAt(src, i, line)
				if err != nil {
					return nil, err
				}
				sb.WriteByte(ch)
				i += n
			}
			if i >= len(src) {
				return nil, errf(line, "unterminated string literal")
			}
			i++
			toks = append(toks, token{kind: tokString, text: sb.String(), line: line})
		case c == '\'':
			i++
			if i >= len(src) {
				return nil, errf(line, "unterminated character literal")
			}
			ch, n, err := unescapeAt(src, i, line)
			if err != nil {
				return nil, err
			}
			i += n
			if i >= len(src) || src[i] != '\'' {
				return nil, errf(line, "unterminated character literal")
			}
			i++
			toks = append(toks, token{kind: tokChar, num: int64(ch), line: line})
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{kind: tokPunct, text: p, line: line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, errf(line, "unexpected character %q", c)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line})
	return toks, nil
}

// unescapeAt decodes one (possibly escaped) character at src[i].
func unescapeAt(src string, i, line int) (byte, int, error) {
	if src[i] != '\\' {
		return src[i], 1, nil
	}
	if i+1 >= len(src) {
		return 0, 0, errf(line, "dangling backslash")
	}
	switch src[i+1] {
	case 'n':
		return '\n', 2, nil
	case 't':
		return '\t', 2, nil
	case 'r':
		return '\r', 2, nil
	case '0':
		return 0, 2, nil
	case '\\':
		return '\\', 2, nil
	case '\'':
		return '\'', 2, nil
	case '"':
		return '"', 2, nil
	default:
		return 0, 0, errf(line, "unknown escape \\%c", src[i+1])
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}
func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }
