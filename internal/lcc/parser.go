package lcc

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) line() int   { return p.cur().line }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if p.accept(s) {
		return nil
	}
	return errf(p.line(), "expected %q, got %s", s, p.cur())
}

// isTypeStart reports whether the current token begins a type.
func (p *parser) isTypeStart() bool {
	t := p.cur()
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "int", "unsigned", "char", "void", "volatile", "const":
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	for p.accept("volatile") || p.accept("const") {
	}
	var base *Type
	switch {
	case p.accept("int"):
		base = tyInt
	case p.accept("unsigned"):
		if p.accept("char") { // "unsigned char" (char is unsigned here)
			base = tyChar
		} else {
			p.accept("int") // "unsigned int"
			base = tyUnsigned
		}
	case p.accept("char"):
		base = tyChar
	case p.accept("void"):
		base = tyVoid
	default:
		return nil, errf(p.line(), "expected type, got %s", p.cur())
	}
	for p.accept("volatile") || p.accept("const") {
	}
	for p.accept("*") {
		base = &Type{Kind: TypePtr, Elem: base}
		for p.accept("volatile") || p.accept("const") {
		}
	}
	return base, nil
}

// parseProgram parses a translation unit.
func parseProgram(toks []token) (*Program, error) {
	p := &parser{toks: toks}
	prog := &Program{}
	for p.cur().kind != tokEOF {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return nil, errf(nameTok.line, "expected name, got %s", nameTok)
		}
		if p.isPunct("(") {
			fn, err := p.parseFunc(ty, nameTok)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		g, err := p.parseGlobal(ty, nameTok)
		if err != nil {
			return nil, err
		}
		prog.Globals = append(prog.Globals, g)
	}
	return prog, nil
}

func (p *parser) parseGlobal(ty *Type, nameTok token) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: nameTok.text, Ty: ty, Line: nameTok.line}
	if p.accept("[") {
		n := p.next()
		if n.kind != tokNumber || n.num <= 0 {
			return nil, errf(n.line, "array length must be a positive constant")
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		g.Ty = &Type{Kind: TypeArray, Elem: ty, ArrayLen: int(n.num)}
	}
	if p.accept("=") {
		if p.accept("{") {
			for !p.isPunct("}") {
				v, err := p.constExpr()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			if g.Ty.Kind != TypeArray {
				return nil, errf(g.Line, "brace initializer on non-array %s", g.Name)
			}
			if len(g.Init) > g.Ty.ArrayLen {
				return nil, errf(g.Line, "too many initializers for %s", g.Name)
			}
		} else {
			v, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			g.Init = []int64{v}
		}
	}
	return g, p.expect(";")
}

// constExpr evaluates a constant initializer: literals with optional
// unary minus.
func (p *parser) constExpr() (int64, error) {
	neg := false
	for p.accept("-") {
		neg = !neg
	}
	t := p.next()
	if t.kind != tokNumber && t.kind != tokChar {
		return 0, errf(t.line, "expected constant, got %s", t)
	}
	v := t.num
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) parseFunc(ret *Type, nameTok token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: nameTok.text, Ret: ret, Line: nameTok.line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.accept(")") {
		if p.isKeyword("void") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
			p.next() // void parameter list
		} else {
			for {
				ty, err := p.parseType()
				if err != nil {
					return nil, err
				}
				pn := p.next()
				if pn.kind != tokIdent {
					return nil, errf(pn.line, "expected parameter name, got %s", pn)
				}
				fn.Params = append(fn.Params, Param{Name: pn.text, Ty: ty})
				if !p.accept(",") {
					break
				}
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if len(fn.Params) > 6 {
		return nil, errf(fn.Line, "function %s has %d parameters; at most 6 (register-passed) are supported", fn.Name, len(fn.Params))
	}
	if p.accept(";") {
		return fn, nil // prototype: Body stays nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	line := p.line()
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{Line: line}
	for !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, errf(line, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	line := p.line()
	switch {
	case p.isPunct("{"):
		return p.parseBlock()

	case p.isTypeStart():
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return nil, errf(nameTok.line, "expected variable name, got %s", nameTok)
		}
		d := &DeclStmt{Name: nameTok.text, Ty: ty, Line: line}
		if p.accept("[") {
			n := p.next()
			if n.kind != tokNumber || n.num <= 0 {
				return nil, errf(n.line, "array length must be a positive constant")
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			d.Ty = &Type{Kind: TypeArray, Elem: ty, ArrayLen: int(n.num)}
		}
		if p.accept("=") {
			if p.accept("{") {
				d.HasList = true
				for !p.isPunct("}") {
					v, err := p.constExpr()
					if err != nil {
						return nil, err
					}
					d.InitList = append(d.InitList, v)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect("}"); err != nil {
					return nil, err
				}
				if d.Ty.Kind != TypeArray {
					return nil, errf(d.Line, "brace initializer on non-array %s", d.Name)
				}
				if len(d.InitList) > d.Ty.ArrayLen {
					return nil, errf(d.Line, "too many initializers for %s", d.Name)
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Init = e
			}
		}
		return d, p.expect(";")

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Cond: cond, Then: then, Line: line}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil

	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: line}, nil

	case p.accept("do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true, Line: line}, nil

	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{Line: line}
		if !p.accept(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.accept(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.isPunct(")") {
			post, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = body
		return st, nil

	case p.accept("switch"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		tag, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect("{"); err != nil {
			return nil, err
		}
		st := &SwitchStmt{Tag: tag, Line: line}
		for !p.isPunct("}") {
			if p.cur().kind == tokEOF {
				return nil, errf(line, "unterminated switch")
			}
			switch {
			case p.accept("case"):
				v, err := p.constExpr()
				if err != nil {
					return nil, err
				}
				if err := p.expect(":"); err != nil {
					return nil, err
				}
				st.Cases = append(st.Cases, SwitchCase{Val: v, Line: p.line()})
			case p.accept("default"):
				if err := p.expect(":"); err != nil {
					return nil, err
				}
				if st.HasDefault {
					return nil, errf(p.line(), "duplicate default")
				}
				st.HasDefault = true
				st.DefaultIdx = len(st.Cases)
				st.Cases = append(st.Cases, SwitchCase{IsDefault: true, Line: p.line()})
			default:
				if len(st.Cases) == 0 {
					return nil, errf(p.line(), "statement before first case label")
				}
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				c := &st.Cases[len(st.Cases)-1]
				c.Body = append(c.Body, inner)
			}
		}
		p.next()
		return st, nil

	case p.accept("return"):
		st := &ReturnStmt{Line: line}
		if !p.isPunct(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = e
		}
		return st, p.expect(";")

	case p.accept("break"):
		return &BreakStmt{Line: line}, p.expect(";")
	case p.accept("continue"):
		return &ContinueStmt{Line: line}, p.expect(";")
	case p.accept(";"):
		return &Block{Line: line}, nil

	default:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Line: line}, p.expect(";")
	}
}

// parseSimpleStmt is a declaration or expression without the trailing
// semicolon (for-loop initializer).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	line := p.line()
	if p.isTypeStart() {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return nil, errf(nameTok.line, "expected variable name")
		}
		d := &DeclStmt{Name: nameTok.text, Ty: ty, Line: line}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{X: e, Line: line}, nil
}

// Expression grammar, lowest precedence first.

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]string{
	"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
	"&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
}

func (p *parser) parseAssign() (Expr, error) {
	l, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		if op, ok := assignOps[t.text]; ok {
			line := t.line
			p.next()
			r, err := p.parseAssign()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: op, L: l, R: r, Line: line}, nil
		}
	}
	return l, nil
}

func (p *parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		line := p.line()
		p.next()
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		f, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &CondExpr{C: c, T: t, F: f, Line: line}, nil
	}
	return c, nil
}

// binary precedence levels, low to high.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binLevels[level] {
			if p.isPunct(op) {
				line := p.line()
				p.next()
				r, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				l = &Binary{Op: op, L: l, R: r, Line: line}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	line := p.line()
	switch {
	case p.accept("-"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, Line: line}, nil
	case p.accept("!"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x, Line: line}, nil
	case p.accept("~"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "~", X: x, Line: line}, nil
	case p.accept("*"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "*", X: x, Line: line}, nil
	case p.accept("&"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "&", X: x, Line: line}, nil
	case p.accept("++"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "++", X: x, Line: line}, nil
	case p.accept("--"):
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "--", X: x, Line: line}, nil
	case p.accept("sizeof"):
		if p.isPunct("(") && p.toks[p.pos+1].kind == tokKeyword {
			p.next()
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeofType{Ty: ty, Line: line}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &SizeofType{X: x, Line: line}, nil
	case p.isPunct("(") && p.toks[p.pos+1].kind == tokKeyword && isTypeKeyword(p.toks[p.pos+1].text):
		p.next()
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Cast{Ty: ty, X: x, Line: line}, nil
	}
	return p.parsePostfix()
}

func isTypeKeyword(s string) bool {
	switch s {
	case "int", "unsigned", "char", "void", "volatile", "const":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		line := p.line()
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{Base: e, Idx: idx, Line: line}
		case p.accept("++"):
			e = &Postfix{Op: "++", X: e, Line: line}
		case p.accept("--"):
			e = &Postfix{Op: "--", X: e, Line: line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber, tokChar:
		return &NumLit{Val: t.num, Line: t.line}, nil
	case tokString:
		return &StrLit{Val: t.text, Line: t.line}, nil
	case tokIdent:
		if p.accept("(") {
			call := &Call{Name: t.text, Line: t.line}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &VarRef{Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return e, p.expect(")")
		}
	}
	return nil, errf(t.line, "unexpected %s in expression", t)
}
