package lcc

import (
	"bytes"
	"strings"
	"testing"

	"liquidarch/internal/leon"
	"liquidarch/internal/link"
)

// runC compiles, links, loads and executes a C program on a default
// LEON system, returning main's exit value.
func runC(t *testing.T, src string) uint32 {
	t.Helper()
	v, _, _ := runCConfig(t, src, leon.DefaultConfig(), Options{})
	return v
}

func runCConfig(t *testing.T, src string, cfg leon.Config, opts Options) (uint32, leon.RunResult, *leon.Controller) {
	t.Helper()
	var uart bytes.Buffer
	asmSrc, err := Compile(src, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	img, err := link.Build(asmSrc, link.Options{})
	if err != nil {
		t.Fatalf("link: %v\nassembly:\n%s", err, asmSrc)
	}
	soc, err := leon.New(cfg, &uart)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Execute(img.Entry, 200_000_000)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if res.Faulted {
		t.Fatalf("program faulted: tt=%#x pc=%#x\nassembly:\n%s", res.TT, res.FaultPC, asmSrc)
	}
	out, err := ctrl.ReadMemory(img.ExitValueAddr(), 4)
	if err != nil {
		t.Fatal(err)
	}
	val := uint32(out[0])<<24 | uint32(out[1])<<16 | uint32(out[2])<<8 | uint32(out[3])
	return val, res, ctrl
}

func TestReturnConstant(t *testing.T) {
	if got := runC(t, "int main() { return 42; }"); got != 42 {
		t.Errorf("main returned %d", got)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	cases := map[string]uint32{
		"2 + 3 * 4":         14,
		"(2 + 3) * 4":       20,
		"100 / 7":           14,
		"100 % 7":           2,
		"-10 / 3":           uint32(0xFFFFFFFD), // -3
		"-10 % 3":           uint32(0xFFFFFFFF), // -1
		"1 << 10":           1024,
		"1024 >> 3":         128,
		"-8 >> 1":           uint32(0xFFFFFFFC), // arithmetic shift
		"0xF0 & 0x3C":       0x30,
		"0xF0 | 0x0F":       0xFF,
		"0xFF ^ 0x0F":       0xF0,
		"~0":                0xFFFFFFFF,
		"-(3 - 5)":          2,
		"7 == 7":            1,
		"7 != 7":            0,
		"3 < 4":             1,
		"4 <= 3":            0,
		"5 > 2 && 1 < 2":    1,
		"0 || 3 > 9":        0,
		"!0":                1,
		"!7":                0,
		"1 ? 11 : 22":       11,
		"0 ? 11 : 22":       22,
		"(3 < 4) + (5 < 4)": 1,
		"10 - 2 - 3":        5, // left associativity
		"2 * 3 + 4 * 5":     26,
		"255 & 15 | 16":     31,
		"sizeof(int)":       4,
		"sizeof(char)":      1,
		"sizeof(int*)":      4,
	}
	for expr, want := range cases {
		src := "int main() { return " + expr + "; }"
		if got := runC(t, src); got != want {
			t.Errorf("%s = %d (%#x), want %d", expr, got, got, want)
		}
	}
}

func TestUnsignedComparisonAndDivision(t *testing.T) {
	// 0xFFFFFFFF unsigned is huge, signed is -1.
	src := `
int main() {
    unsigned big = 0xFFFFFFFF;
    int neg = -1;
    int a = big > 10u;       // unsigned: true
    int b = neg > 10;        // signed: false
    unsigned q = big / 16u;  // 0x0FFFFFFF
    return a * 100 + b * 10 + (q == 0x0FFFFFFF);
}`
	if got := runC(t, src); got != 101 {
		t.Errorf("got %d, want 101", got)
	}
}

func TestLocalsAndAssignments(t *testing.T) {
	src := `
int main() {
    int x = 5;
    int y;
    y = x + 3;
    x += y;    // 13
    x -= 1;    // 12
    x *= 2;    // 24
    x /= 3;    // 8
    x %= 5;    // 3
    x <<= 4;   // 48
    x >>= 2;   // 12
    x |= 1;    // 13
    x &= 0xE;  // 12
    x ^= 5;    // 9
    return x;
}`
	if got := runC(t, src); got != 9 {
		t.Errorf("got %d, want 9", got)
	}
}

func TestIncDec(t *testing.T) {
	src := `
int main() {
    int i = 10;
    int a = i++;  // a=10, i=11
    int b = ++i;  // b=12, i=12
    int c = i--;  // c=12, i=11
    int d = --i;  // d=10, i=10
    return a * 1000 + b * 100 + c * 10 + d / 10 + i;
}`
	// 10*1000 + 12*100 + 12*10 + 1 + 10 = 10000+1200+120+11 = 11331
	if got := runC(t, src); got != 11331 {
		t.Errorf("got %d, want 11331", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    int i;
    for (i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 8) break;
        sum += i;
    }
    // 0+1+2+4+5+6+7 = 25
    int j = 0;
    while (j < 5) j++;
    sum += j;         // 30
    do { sum += 2; } while (sum < 34);
    // 32, 34 → stops at 34
    return sum;
}`
	if got := runC(t, src); got != 34 {
		t.Errorf("got %d, want 34", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int counter = 7;
int table[8] = {1, 2, 3};
char bytes[4] = {10, 20};

int main() {
    counter = counter + table[0] + table[1] + table[2] + table[3];
    counter += bytes[0] + bytes[1] + bytes[2];
    int local[4];
    local[0] = 100;
    local[3] = 1;
    return counter + local[0] + local[3];
}`
	// 7+1+2+3+0 = 13; +10+20+0 = 43; +100+1 = 144
	if got := runC(t, src); got != 144 {
		t.Errorf("got %d, want 144", got)
	}
}

func TestFig7Kernel(t *testing.T) {
	// The paper's Figure 7 array-access kernel, scaled down.
	src := `
int count[1024];

int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 65536; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    return x;
}`
	if got := runC(t, src); got != 0 {
		t.Errorf("got %d (zero-initialized array)", got)
	}
}

func TestRecursionFib(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }`
	got, _, ctrl := runCConfig(t, src, leon.DefaultConfig(), Options{})
	if got != 144 {
		t.Errorf("fib(12) = %d, want 144", got)
	}
	// Deep enough to exercise window spills from compiled code.
	if ctrl.SoC().CPU.Stats().WindowSpills == 0 {
		t.Error("no window spills during recursive fib")
	}
}

func TestPointers(t *testing.T) {
	src := `
void swap(int *a, int *b) {
    int t = *a;
    *a = *b;
    *b = t;
}
int main() {
    int x = 3;
    int y = 9;
    swap(&x, &y);
    int arr[5] = {10, 20, 30, 40, 50};
    int *p = arr;
    p = p + 2;
    int mid = *p;          // 30
    int diff = p - arr;    // 2
    p++;
    return x * 1000 + y * 100 + mid + diff + *p;
}`
	// 9*1000 + 3*100 + 30 + 2 + 40 = 9372
	if got := runC(t, src); got != 9372 {
		t.Errorf("got %d, want 9372", got)
	}
}

func TestCharAndStrings(t *testing.T) {
	src := `
int strlen_(char *s) {
    int n = 0;
    while (s[n]) n++;
    return n;
}
int main() {
    char *msg = "liquid";
    char c = msg[0];
    return strlen_(msg) * 100 + c;   // 600 + 'l'(108)
}`
	if got := runC(t, src); got != 708 {
		t.Errorf("got %d, want 708", got)
	}
}

func TestDeviceAccessViaCast(t *testing.T) {
	// Write to the UART data register through a casted literal
	// address — the idiom the paper's control programs rely on.
	src := `
int main() {
    *(unsigned*)0x80000070 = 'H';
    *(unsigned*)0x80000070 = 'i';
    return 0;
}`
	var uart bytes.Buffer
	asmSrc, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := link.Build(asmSrc, link.Options{})
	if err != nil {
		t.Fatal(err)
	}
	soc, err := leon.New(leon.DefaultConfig(), &uart)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.LoadProgram(img.Origin, img.Code); err != nil {
		t.Fatal(err)
	}
	res, err := ctrl.Execute(img.Entry, 0)
	if err != nil || res.Faulted {
		t.Fatalf("run: %v %+v", err, res)
	}
	if uart.String() != "Hi" {
		t.Errorf("uart = %q", uart.String())
	}
}

func TestMACBuiltin(t *testing.T) {
	src := `
int main() {
    int acc = 100;
    acc = __mac(acc, 6, 7);
    return acc;
}`
	cfg := leon.DefaultConfig()
	cfg.CPU.MAC = true
	got, _, _ := runCConfig(t, src, cfg, Options{MAC: true})
	if got != 142 {
		t.Errorf("__mac = %d, want 142", got)
	}
	// Without Options.MAC the builtin is rejected at compile time.
	if _, err := Compile(src, Options{}); err == nil {
		t.Error("__mac accepted without MAC option")
	}
}

func TestTernaryAndLogicalShortCircuit(t *testing.T) {
	src := `
int calls = 0;
int bump() { calls++; return 1; }
int main() {
    int a = 0 && bump();   // bump not called
    int b = 1 || bump();   // bump not called
    int c = 1 && bump();   // called once
    return calls * 100 + a * 10 + b + c;
}`
	if got := runC(t, src); got != 102 {
		t.Errorf("got %d, want 102", got)
	}
}

func TestNestedCallsAndSixArgs(t *testing.T) {
	src := `
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + b + c + d + e + f;
}
int twice(int x) { return x + x; }
int main() {
    return sum6(1, twice(2), 3, twice(4), 5, twice(sum6(1,1,1,1,1,1)));
}`
	// 1+4+3+8+5+12 = 33
	if got := runC(t, src); got != 33 {
		t.Errorf("got %d, want 33", got)
	}
}

func TestDeepExpressionSpills(t *testing.T) {
	// Force value-stack depth beyond the 8 %l registers.
	src := `
int main() {
    int r = 1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12))))))))));
    return r;
}`
	if got := runC(t, src); got != 78 {
		t.Errorf("got %d, want 78", got)
	}
}

func TestGlobalPointerChase(t *testing.T) {
	src := `
int data[4] = {5, 6, 7, 8};
int *cursor = 0;
int main() {
    cursor = &data[1];
    cursor[1] = 99;     // data[2] = 99
    return data[2] + *cursor;
}`
	if got := runC(t, src); got != 105 {
		t.Errorf("got %d, want 105", got)
	}
}

func TestVolatileAcceptedAndIgnored(t *testing.T) {
	src := `
volatile int flag = 3;
int main() {
    volatile int x = flag;
    return x;
}`
	if got := runC(t, src); got != 3 {
		t.Errorf("got %d, want 3", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"int main() { return x; }", "undefined variable"},
		{"int main() { foo(); }", "undefined function"},
		{"int f(int a) { return a; } int main() { return f(); }", "wants 1 arguments"},
		{"int main() { 5 = 3; }", "not an lvalue"},
		{"int main() { int x; int x; }", "redeclared"},
		{"int f() { return 0; } int f() { return 1; } int main() { return 0; }", "redefined"},
		{"int main() { break; }", "break outside loop"},
		{"int main() { continue; }", "continue outside loop"},
		{"#include <stdio.h>\nint main() { return 0; }", "preprocessor"},
		{"int g() { return 0; }", "no main"},
		{"int main() { int a[3] = 5; }", "array initializers"},
		{"int main(int a, int b, int c, int d, int e, int f, int g) { return 0; }", "at most 6"},
		{"int main() { return *5; }", "cannot dereference"},
		{"int main() { int a[2]; int b[2]; a = b; }", "assign to an array"},
		{"int main() { return 1 +; }", "unexpected"},
		{"int main() { return 0 }", "expected"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, Options{})
		if err == nil {
			t.Errorf("compiled without error:\n%s", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("error %q does not mention %q", err, c.frag)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex(`int x = 0x1F; // comment
/* block
   comment */ char c = 'a'; char *s = "hi\n";`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if toks[3].kind != tokNumber || toks[3].num != 0x1F {
		t.Errorf("hex literal = %+v", toks[3])
	}
	_ = kinds
	// Unterminated constructs.
	if _, err := lex(`"abc`); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lex("/* abc"); err == nil {
		t.Error("unterminated comment accepted")
	}
	if _, err := lex("'a"); err == nil {
		t.Error("unterminated char accepted")
	}
	if _, err := lex("int @ x;"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	arr := &Type{Kind: TypeArray, Elem: tyInt, ArrayLen: 4}
	ptr := &Type{Kind: TypePtr, Elem: tyChar}
	if arr.String() != "int[4]" || arr.Size() != 16 {
		t.Errorf("array type: %s size %d", arr, arr.Size())
	}
	if ptr.String() != "char*" || ptr.Size() != 4 {
		t.Errorf("pointer type: %s size %d", ptr, ptr.Size())
	}
	if tyVoid.Size() != 0 {
		t.Error("void size")
	}
}
