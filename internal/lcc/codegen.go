package lcc

import (
	"fmt"
	"strings"
)

// Options tunes code generation.
type Options struct {
	// MAC permits the __mac builtin (requires the MAC-configured
	// liquid CPU; without it the instruction traps as illegal).
	MAC bool
	// Comments interleaves source line markers in the output.
	Comments bool
}

// Compile translates a Liquid-C translation unit to SPARC V8 assembly
// accepted by the asm package. The output defines one label per
// function and global; it contains no entry stub (the linker's crt0
// provides _start).
func Compile(src string, opts Options) (string, error) {
	toks, err := lex(src)
	if err != nil {
		return "", err
	}
	prog, err := parseProgram(toks)
	if err != nil {
		return "", err
	}
	g := &gen{
		opts:    opts,
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*GlobalDecl),
		strs:    make(map[string]string),
		called:  make(map[string]int),
	}
	for _, fn := range prog.Funcs {
		prev := g.funcs[fn.Name]
		switch {
		case prev == nil:
			g.funcs[fn.Name] = fn
		case prev.Body != nil && fn.Body != nil:
			return "", errf(fn.Line, "function %s redefined", fn.Name)
		default:
			// Prototype + definition (either order): check signatures.
			if len(prev.Params) != len(fn.Params) || prev.Ret.Kind != fn.Ret.Kind {
				return "", errf(fn.Line, "declaration of %s does not match its prototype", fn.Name)
			}
			if fn.Body != nil {
				g.funcs[fn.Name] = fn
			}
		}
	}
	for _, gv := range prog.Globals {
		if g.globals[gv.Name] != nil || g.funcs[gv.Name] != nil {
			return "", errf(gv.Line, "%s redefined", gv.Name)
		}
		g.globals[gv.Name] = gv
	}
	if g.funcs["main"] == nil {
		return "", errf(1, "no main function")
	}
	for _, fn := range prog.Funcs {
		if fn.Body == nil || g.funcs[fn.Name] != fn {
			continue // prototypes and superseded declarations
		}
		if err := g.genFunc(fn); err != nil {
			return "", err
		}
	}
	// Every called function must have a definition somewhere.
	for name, line := range g.called {
		if g.funcs[name].Body == nil {
			return "", errf(line, "function %s is declared but never defined", name)
		}
	}
	g.emitData(prog)
	return g.out.String(), nil
}

// localVar is a local variable or parameter. Register-resident
// scalars (reg != "") never touch the frame; everything else lives at
// [%fp - off].
type localVar struct {
	ty  *Type
	off int    // positive byte offset below %fp (memory locals)
	reg string // "%l4".."%l7" or "%i0".."%i5" when register-resident
}

type gen struct {
	opts    Options
	out     strings.Builder
	funcs   map[string]*FuncDecl
	globals map[string]*GlobalDecl
	strs    map[string]string // literal → label
	strOrd  []string
	labelN  int
	called  map[string]int // function name → first call site line

	// per-function state
	fn        *FuncDecl
	body      strings.Builder
	scopes    []map[string]*localVar
	frameOff  int // local bytes allocated
	depth     int // value-stack depth
	spillOffs map[int]int
	retLabel  string
	breakLbls []string
	contLbls  []string
	addrTaken map[string]bool // names whose address is taken anywhere
	localRegs map[string]bool // %l4-%l7 currently in use
}

func (g *gen) emitf(format string, args ...any) {
	fmt.Fprintf(&g.body, "\t"+format+"\n", args...)
}

func (g *gen) label(l string) {
	fmt.Fprintf(&g.body, "%s:\n", l)
}

func (g *gen) newLabel(hint string) string {
	g.labelN++
	return fmt.Sprintf(".L%s%d", hint, g.labelN)
}

// ---- value stack ----
//
// Expression values live on a virtual stack: depths 0-7 map to %l0-%l7
// (preserved across calls by the register window), deeper entries
// spill to frame slots.

// Depths 0-3 map to %l0-%l3; %l4-%l7 are reserved for the register
// allocator (scalar locals), and %i0-%i5 hold register-resident
// parameters.
const regStackSize = 4

// slotOff returns (allocating on demand) the frame offset of spill
// slot i.
func (g *gen) slotOff(i int) int {
	if off, ok := g.spillOffs[i]; ok {
		return off
	}
	g.frameOff += 4
	off := g.frameOff
	g.spillOffs[i] = off
	return off
}

// isReg reports whether stack index i is register-resident.
func isReg(i int) bool { return i < regStackSize }

func regName(i int) string { return fmt.Sprintf("%%l%d", i) }

// pushFrom records src (a register) as the new stack top.
func (g *gen) pushFrom(src string) {
	i := g.depth
	g.depth++
	if isReg(i) {
		if src != regName(i) {
			g.emitf("mov %s, %s", src, regName(i))
		}
		return
	}
	g.emitf("st %s, [%%fp - %d]", src, g.slotOff(i))
}

// pushTarget returns the register an expression should compute into
// for the next push, and a commit function to call afterwards.
func (g *gen) pushTarget(scratch string) (string, func()) {
	i := g.depth
	g.depth++
	if isReg(i) {
		return regName(i), func() {}
	}
	off := g.slotOff(i)
	return scratch, func() { g.emitf("st %s, [%%fp - %d]", scratch, off) }
}

// popTo moves the stack top into dst (a register).
func (g *gen) popTo(dst string) {
	g.depth--
	i := g.depth
	if isReg(i) {
		if dst != regName(i) {
			g.emitf("mov %s, %s", regName(i), dst)
		}
		return
	}
	g.emitf("ld [%%fp - %d], %s", g.slotOff(i), dst)
}

// operand returns a register holding stack index i, loading spilled
// values into scratch.
func (g *gen) operand(i int, scratch string) string {
	if isReg(i) {
		return regName(i)
	}
	g.emitf("ld [%%fp - %d], %s", g.slotOff(i), scratch)
	return scratch
}

// pushConst pushes an integer constant.
func (g *gen) pushConst(v int64) {
	t, commit := g.pushTarget("%o5")
	if v >= -4096 && v <= 4095 {
		g.emitf("mov %d, %s", v, t)
	} else {
		g.emitf("set 0x%X, %s", uint32(v), t)
	}
	commit()
}

// ---- symbols ----

func (g *gen) lookup(name string) (*localVar, *GlobalDecl) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if lv, ok := g.scopes[i][name]; ok {
			return lv, nil
		}
	}
	return nil, g.globals[name]
}

func (g *gen) declareLocal(line int, name string, ty *Type) (*localVar, error) {
	scope := g.scopes[len(g.scopes)-1]
	if _, dup := scope[name]; dup {
		return nil, errf(line, "variable %s redeclared in this scope", name)
	}
	// Word-sized scalars whose address is never taken live in a
	// callee-window register when one is free.
	if ty.Size() == 4 && ty.Kind != TypeArray && !g.addrTaken[name] {
		for _, r := range []string{"%l4", "%l5", "%l6", "%l7"} {
			if !g.localRegs[r] {
				g.localRegs[r] = true
				lv := &localVar{ty: ty, reg: r}
				scope[name] = lv
				return lv, nil
			}
		}
	}
	size := ty.Size()
	if size < 4 {
		size = 4
	}
	// Align word-and-larger objects.
	g.frameOff = (g.frameOff + size + 3) &^ 3
	lv := &localVar{ty: ty, off: g.frameOff}
	scope[name] = lv
	return lv, nil
}

// declareParam places parameter i: non-address-taken word scalars stay
// in their incoming %i register; the rest spill to the frame.
func (g *gen) declareParam(line int, i int, prm Param) error {
	scope := g.scopes[len(g.scopes)-1]
	if _, dup := scope[prm.Name]; dup {
		return errf(line, "parameter %s duplicated", prm.Name)
	}
	if prm.Ty.Size() == 4 && prm.Ty.Kind != TypeArray && !g.addrTaken[prm.Name] {
		scope[prm.Name] = &localVar{ty: prm.Ty, reg: fmt.Sprintf("%%i%d", i)}
		return nil
	}
	lv, err := g.declareLocal(line, prm.Name, prm.Ty)
	if err != nil {
		return err
	}
	if lv.reg != "" {
		// declareLocal may hand out an %l register; copy into it.
		g.emitf("mov %%i%d, %s", i, lv.reg)
		return nil
	}
	if prm.Ty.Kind == TypeChar {
		g.emitf("stb %%i%d, [%%fp - %d]", i, lv.off)
	} else {
		g.emitf("st %%i%d, [%%fp - %d]", i, lv.off)
	}
	return nil
}

// collectAddrTaken records every name whose address is taken (&x) in
// the function body; those must be frame-resident. The analysis is by
// name, conservatively covering shadowed declarations too.
func collectAddrTaken(s Stmt, out map[string]bool) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *Unary:
			if x.Op == "&" {
				if v, ok := x.X.(*VarRef); ok {
					out[v.Name] = true
				}
			}
			walkExpr(x.X)
		case *Postfix:
			walkExpr(x.X)
		case *Binary:
			walkExpr(x.L)
			walkExpr(x.R)
		case *Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *CondExpr:
			walkExpr(x.C)
			walkExpr(x.T)
			walkExpr(x.F)
		case *Call:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *Index:
			walkExpr(x.Base)
			walkExpr(x.Idx)
		case *Cast:
			walkExpr(x.X)
		case *SizeofType:
			if x.X != nil {
				walkExpr(x.X)
			}
		}
	}
	var walk func(st Stmt)
	walk = func(st Stmt) {
		switch x := st.(type) {
		case *Block:
			for _, inner := range x.Stmts {
				walk(inner)
			}
		case *DeclStmt:
			if x.Init != nil {
				walkExpr(x.Init)
			}
		case *ExprStmt:
			walkExpr(x.X)
		case *IfStmt:
			walkExpr(x.Cond)
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *WhileStmt:
			walkExpr(x.Cond)
			walk(x.Body)
		case *ForStmt:
			if x.Init != nil {
				walk(x.Init)
			}
			if x.Cond != nil {
				walkExpr(x.Cond)
			}
			if x.Post != nil {
				walkExpr(x.Post)
			}
			walk(x.Body)
		case *ReturnStmt:
			if x.X != nil {
				walkExpr(x.X)
			}
		case *SwitchStmt:
			walkExpr(x.Tag)
			for _, c := range x.Cases {
				for _, inner := range c.Body {
					walk(inner)
				}
			}
		}
	}
	walk(s)
}

// ---- functions ----

func (g *gen) genFunc(fn *FuncDecl) error {
	g.fn = fn
	g.body.Reset()
	g.scopes = []map[string]*localVar{make(map[string]*localVar)}
	g.frameOff = 0
	g.depth = 0
	g.spillOffs = make(map[int]int)
	g.retLabel = g.newLabel("ret_" + fn.Name)
	g.addrTaken = make(map[string]bool)
	g.localRegs = make(map[string]bool)
	collectAddrTaken(fn.Body, g.addrTaken)

	// Parameters: non-address-taken scalars stay in %i registers;
	// the rest spill to frame slots so & works.
	for i, prm := range fn.Params {
		if err := g.declareParam(fn.Line, i, prm); err != nil {
			return err
		}
	}

	if err := g.genStmt(fn.Body); err != nil {
		return err
	}
	if g.depth != 0 {
		return errf(fn.Line, "internal: value stack depth %d at end of %s", g.depth, fn.Name)
	}

	// Prologue with the final frame size, then the buffered body.
	frame := (96 + g.frameOff + 7) &^ 7
	fmt.Fprintf(&g.out, "\n! function %s\n", fn.Name)
	fmt.Fprintf(&g.out, "%s:\n", fn.Name)
	fmt.Fprintf(&g.out, "\tsave %%sp, -%d, %%sp\n", frame)
	g.out.WriteString(g.body.String())
	fmt.Fprintf(&g.out, "%s:\n", g.retLabel)
	g.out.WriteString("\tret\n\trestore\n")
	return nil
}

// charSlotAddr: locals and params always occupy ≥4-byte slots; chars
// live at the low (highest-address) byte of the word in big-endian, so
// plain word offsets work when loaded with ld and the value was stored
// with st. To keep the model simple, scalar char locals are accessed
// with full-word ld/st; only char arrays and pointers use byte
// accesses.

// ---- statements ----

func (g *gen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		g.scopes = append(g.scopes, make(map[string]*localVar))
		for _, inner := range st.Stmts {
			if err := g.genStmt(inner); err != nil {
				return err
			}
		}
		// Release the dying scope's %l registers for siblings.
		for _, lv := range g.scopes[len(g.scopes)-1] {
			if strings.HasPrefix(lv.reg, "%l") {
				delete(g.localRegs, lv.reg)
			}
		}
		g.scopes = g.scopes[:len(g.scopes)-1]
		return nil

	case *DeclStmt:
		lv, err := g.declareLocal(st.Line, st.Name, st.Ty)
		if err != nil {
			return err
		}
		if st.HasList {
			// Local arrays are auto storage: initialize every element
			// (unlisted ones to zero) on each entry.
			elem := st.Ty.Elem
			for k := 0; k < st.Ty.ArrayLen; k++ {
				var v int64
				if k < len(st.InitList) {
					v = st.InitList[k]
				}
				if v >= -4096 && v <= 4095 {
					g.emitf("mov %d, %%o5", v)
				} else {
					g.emitf("set 0x%X, %%o5", uint32(v))
				}
				off := lv.off - k*elem.Size()
				g.storeScalar("%o5", fmt.Sprintf("%%fp - %d", off), elem)
			}
			return nil
		}
		if st.Init != nil {
			if st.Ty.Kind == TypeArray {
				return errf(st.Line, "array initializers use braces")
			}
			ty, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			if !typesCompatible(st.Ty, ty) {
				return errf(st.Line, "cannot initialize %s with %s", st.Ty, ty)
			}
			if lv.reg != "" {
				g.popTo(lv.reg)
				return nil
			}
			g.popTo("%o5")
			g.storeScalar("%o5", fmt.Sprintf("%%fp - %d", lv.off), st.Ty)
		}
		return nil

	case *ExprStmt:
		ty, err := g.genExpr(st.X)
		if err != nil {
			return err
		}
		_ = ty
		g.popTo("%g0") // discard
		return nil

	case *IfStmt:
		lThen := g.newLabel("then")
		lElse := g.newLabel("else")
		lEnd := g.newLabel("endif")
		if err := g.genCond(st.Cond, lThen, lElse); err != nil {
			return err
		}
		g.label(lThen)
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		g.emitf("ba %s", lEnd)
		g.emitf("nop")
		g.label(lElse)
		if st.Else != nil {
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
		}
		g.label(lEnd)
		return nil

	case *WhileStmt:
		lTop := g.newLabel("loop")
		lBody := g.newLabel("body")
		lEnd := g.newLabel("endloop")
		g.breakLbls = append(g.breakLbls, lEnd)
		g.contLbls = append(g.contLbls, lTop)
		if st.DoWhile {
			g.label(lBody)
			if err := g.genStmt(st.Body); err != nil {
				return err
			}
			g.label(lTop)
			if err := g.genCond(st.Cond, lBody, lEnd); err != nil {
				return err
			}
		} else {
			g.label(lTop)
			if err := g.genCond(st.Cond, lBody, lEnd); err != nil {
				return err
			}
			g.label(lBody)
			if err := g.genStmt(st.Body); err != nil {
				return err
			}
			g.emitf("ba %s", lTop)
			g.emitf("nop")
		}
		g.label(lEnd)
		g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
		g.contLbls = g.contLbls[:len(g.contLbls)-1]
		return nil

	case *ForStmt:
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		lTop := g.newLabel("for")
		lBody := g.newLabel("forbody")
		lPost := g.newLabel("forpost")
		lEnd := g.newLabel("endfor")
		g.breakLbls = append(g.breakLbls, lEnd)
		g.contLbls = append(g.contLbls, lPost)
		g.label(lTop)
		if st.Cond != nil {
			if err := g.genCond(st.Cond, lBody, lEnd); err != nil {
				return err
			}
		}
		g.label(lBody)
		if err := g.genStmt(st.Body); err != nil {
			return err
		}
		g.label(lPost)
		if st.Post != nil {
			if _, err := g.genExpr(st.Post); err != nil {
				return err
			}
			g.popTo("%g0")
		}
		g.emitf("ba %s", lTop)
		g.emitf("nop")
		g.label(lEnd)
		g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
		g.contLbls = g.contLbls[:len(g.contLbls)-1]
		return nil

	case *ReturnStmt:
		if st.X != nil {
			if _, err := g.genExpr(st.X); err != nil {
				return err
			}
			g.popTo("%i0")
		}
		g.emitf("ba %s", g.retLabel)
		g.emitf("nop")
		return nil

	case *BreakStmt:
		if len(g.breakLbls) == 0 {
			return errf(st.Line, "break outside loop")
		}
		g.emitf("ba %s", g.breakLbls[len(g.breakLbls)-1])
		g.emitf("nop")
		return nil

	case *ContinueStmt:
		if len(g.contLbls) == 0 {
			return errf(st.Line, "continue outside loop")
		}
		g.emitf("ba %s", g.contLbls[len(g.contLbls)-1])
		g.emitf("nop")
		return nil

	case *SwitchStmt:
		return g.genSwitch(st)

	default:
		return errf(s.stmtLine(), "internal: unknown statement %T", s)
	}
}

// genSwitch lowers switch with C fall-through: a compare-and-branch
// dispatch header, then the case bodies in order.
func (g *gen) genSwitch(st *SwitchStmt) error {
	ty, err := g.genExpr(st.Tag)
	if err != nil {
		return err
	}
	if !ty.IsInteger() {
		return errf(st.Line, "switch tag must be an integer, got %s", ty)
	}
	g.popTo("%o3")
	lEnd := g.newLabel("endswitch")
	labels := make([]string, len(st.Cases))
	for i := range st.Cases {
		labels[i] = g.newLabel("case")
	}
	for i, c := range st.Cases {
		if c.IsDefault {
			continue
		}
		if c.Val >= -4096 && c.Val <= 4095 {
			g.emitf("cmp %%o3, %d", c.Val)
		} else {
			g.emitf("set 0x%X, %%o5", uint32(c.Val))
			g.emitf("cmp %%o3, %%o5")
		}
		g.emitf("be %s", labels[i])
		g.emitf("nop")
	}
	if st.HasDefault {
		g.emitf("ba %s", labels[st.DefaultIdx])
	} else {
		g.emitf("ba %s", lEnd)
	}
	g.emitf("nop")

	g.breakLbls = append(g.breakLbls, lEnd)
	g.scopes = append(g.scopes, make(map[string]*localVar))
	for i, c := range st.Cases {
		g.label(labels[i])
		for _, inner := range c.Body {
			if err := g.genStmt(inner); err != nil {
				return err
			}
		}
	}
	for _, lv := range g.scopes[len(g.scopes)-1] {
		if strings.HasPrefix(lv.reg, "%l") {
			delete(g.localRegs, lv.reg)
		}
	}
	g.scopes = g.scopes[:len(g.scopes)-1]
	g.breakLbls = g.breakLbls[:len(g.breakLbls)-1]
	g.label(lEnd)
	return nil
}

// storeScalar stores src to [addrExpr] with the width of ty.
func (g *gen) storeScalar(src, addrExpr string, ty *Type) {
	if ty.Kind == TypeChar {
		g.emitf("stb %s, [%s]", src, addrExpr)
		return
	}
	g.emitf("st %s, [%s]", src, addrExpr)
}

// loadScalar loads [addrExpr] into dst with the width of ty.
func (g *gen) loadScalar(dst, addrExpr string, ty *Type) {
	if ty.Kind == TypeChar {
		g.emitf("ldub [%s], %s", addrExpr, dst)
		return
	}
	g.emitf("ld [%s], %s", addrExpr, dst)
}
