package lcc

import "fmt"

// TypeKind enumerates the type system.
type TypeKind uint8

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeUnsigned
	TypeChar
	TypePtr
	TypeArray
)

// Type is a C type. Elem is set for pointers and arrays.
type Type struct {
	Kind     TypeKind
	Elem     *Type
	ArrayLen int
}

var (
	tyVoid     = &Type{Kind: TypeVoid}
	tyInt      = &Type{Kind: TypeInt}
	tyUnsigned = &Type{Kind: TypeUnsigned}
	tyChar     = &Type{Kind: TypeChar}
)

// Size returns the storage size in bytes.
func (t *Type) Size() int {
	switch t.Kind {
	case TypeInt, TypeUnsigned, TypePtr:
		return 4
	case TypeChar:
		return 1
	case TypeArray:
		return t.ArrayLen * t.Elem.Size()
	default:
		return 0
	}
}

// IsInteger reports whether t is an arithmetic integer type.
func (t *Type) IsInteger() bool {
	return t.Kind == TypeInt || t.Kind == TypeUnsigned || t.Kind == TypeChar
}

// IsPointerish reports whether t is a pointer or decays to one.
func (t *Type) IsPointerish() bool {
	return t.Kind == TypePtr || t.Kind == TypeArray
}

// Pointee returns the element type of a pointer or array.
func (t *Type) Pointee() *Type { return t.Elem }

// IsUnsignedCmp reports whether comparisons on t use unsigned
// condition codes.
func (t *Type) IsUnsignedCmp() bool {
	return t.Kind == TypeUnsigned || t.Kind == TypeChar || t.IsPointerish()
}

func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeUnsigned:
		return "unsigned"
	case TypeChar:
		return "char"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	default:
		return "?"
	}
}

func typesCompatible(a, b *Type) bool {
	if a.IsInteger() && b.IsInteger() {
		return true
	}
	if a.IsPointerish() && b.IsPointerish() {
		return true
	}
	// Integer constants flow into pointers (device addresses).
	if a.IsPointerish() && b.IsInteger() || a.IsInteger() && b.IsPointerish() {
		return true
	}
	return false
}

// Expr is an expression node.
type Expr interface{ exprLine() int }

type (
	// NumLit is an integer literal.
	NumLit struct {
		Val  int64
		Line int
	}
	// StrLit is a string literal (char* to read-only data).
	StrLit struct {
		Val  string
		Line int
	}
	// VarRef names a local, parameter or global.
	VarRef struct {
		Name string
		Line int
	}
	// Unary is -x !x ~x *x &x ++x --x.
	Unary struct {
		Op   string
		X    Expr
		Line int
	}
	// Postfix is x++ x--.
	Postfix struct {
		Op   string
		X    Expr
		Line int
	}
	// Binary is a two-operand arithmetic/logic/comparison expression.
	Binary struct {
		Op   string
		L, R Expr
		Line int
	}
	// Assign is lhs op= rhs (Op "" for plain =).
	Assign struct {
		Op   string
		L, R Expr
		Line int
	}
	// CondExpr is c ? t : f.
	CondExpr struct {
		C, T, F Expr
		Line    int
	}
	// Call invokes a named function or builtin.
	Call struct {
		Name string
		Args []Expr
		Line int
	}
	// Index is base[idx].
	Index struct {
		Base, Idx Expr
		Line      int
	}
	// Cast is (type)x.
	Cast struct {
		Ty   *Type
		X    Expr
		Line int
	}
	// SizeofType is sizeof(type) or sizeof expr (resolved at parse).
	SizeofType struct {
		Ty   *Type
		X    Expr // nil when Ty is set
		Line int
	}
)

func (e *NumLit) exprLine() int     { return e.Line }
func (e *StrLit) exprLine() int     { return e.Line }
func (e *VarRef) exprLine() int     { return e.Line }
func (e *Unary) exprLine() int      { return e.Line }
func (e *Postfix) exprLine() int    { return e.Line }
func (e *Binary) exprLine() int     { return e.Line }
func (e *Assign) exprLine() int     { return e.Line }
func (e *CondExpr) exprLine() int   { return e.Line }
func (e *Call) exprLine() int       { return e.Line }
func (e *Index) exprLine() int      { return e.Line }
func (e *Cast) exprLine() int       { return e.Line }
func (e *SizeofType) exprLine() int { return e.Line }

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

type (
	// DeclStmt declares a local variable. Scalars use Init; arrays use
	// InitList (constant element values).
	DeclStmt struct {
		Name     string
		Ty       *Type
		Init     Expr // may be nil
		InitList []int64
		HasList  bool
		Line     int
	}
	// ExprStmt evaluates an expression for effect.
	ExprStmt struct {
		X    Expr
		Line int
	}
	// IfStmt is if/else.
	IfStmt struct {
		Cond       Expr
		Then, Else Stmt // Else may be nil
		Line       int
	}
	// WhileStmt is while or do/while.
	WhileStmt struct {
		Cond    Expr
		Body    Stmt
		DoWhile bool
		Line    int
	}
	// ForStmt is for(init; cond; post).
	ForStmt struct {
		Init Stmt // may be nil
		Cond Expr // may be nil (infinite)
		Post Expr // may be nil
		Body Stmt
		Line int
	}
	// ReturnStmt returns (X may be nil).
	ReturnStmt struct {
		X    Expr
		Line int
	}
	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Line int }
	// ContinueStmt advances the innermost loop.
	ContinueStmt struct{ Line int }
	// Block is { stmts }.
	Block struct {
		Stmts []Stmt
		Line  int
	}
	// SwitchStmt is switch(tag) { case k: ... default: ... } with
	// C fall-through semantics.
	SwitchStmt struct {
		Tag        Expr
		Cases      []SwitchCase
		HasDefault bool
		DefaultIdx int
		Line       int
	}
)

// SwitchCase is one labelled arm of a switch.
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Body      []Stmt
	Line      int
}

func (s *DeclStmt) stmtLine() int     { return s.Line }
func (s *ExprStmt) stmtLine() int     { return s.Line }
func (s *IfStmt) stmtLine() int       { return s.Line }
func (s *WhileStmt) stmtLine() int    { return s.Line }
func (s *ForStmt) stmtLine() int      { return s.Line }
func (s *ReturnStmt) stmtLine() int   { return s.Line }
func (s *BreakStmt) stmtLine() int    { return s.Line }
func (s *ContinueStmt) stmtLine() int { return s.Line }
func (s *Block) stmtLine() int        { return s.Line }
func (s *SwitchStmt) stmtLine() int   { return s.Line }

// Param is a function parameter.
type Param struct {
	Name string
	Ty   *Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *Type
	Params []Param
	Body   *Block
	Line   int
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Name string
	Ty   *Type
	// Init holds scalar or array initializer values (empty → zero).
	Init []int64
	Line int
}

// Program is a parsed translation unit.
type Program struct {
	Funcs   []*FuncDecl
	Globals []*GlobalDecl
}
