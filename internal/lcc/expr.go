package lcc

import (
	"fmt"
	"math/bits"
)

// genExpr evaluates e onto the value stack and returns its type.
// Arrays decay to element pointers.
func (g *gen) genExpr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *NumLit:
		g.pushConst(x.Val)
		return tyInt, nil

	case *StrLit:
		lbl := g.strLabel(x.Val)
		t, commit := g.pushTarget("%o5")
		g.emitf("set %s, %s", lbl, t)
		commit()
		return &Type{Kind: TypePtr, Elem: tyChar}, nil

	case *VarRef:
		lv, gv := g.lookup(x.Name)
		switch {
		case lv != nil && lv.reg != "":
			g.pushFrom(lv.reg)
			return lv.ty, nil
		case lv != nil && lv.ty.Kind == TypeArray:
			t, commit := g.pushTarget("%o5")
			g.emitf("sub %%fp, %d, %s", lv.off, t)
			commit()
			return &Type{Kind: TypePtr, Elem: lv.ty.Elem}, nil
		case lv != nil:
			t, commit := g.pushTarget("%o5")
			g.loadScalar(t, fmt.Sprintf("%%fp - %d", lv.off), lv.ty)
			commit()
			return lv.ty, nil
		case gv != nil && gv.Ty.Kind == TypeArray:
			t, commit := g.pushTarget("%o5")
			g.emitf("set %s, %s", x.Name, t)
			commit()
			return &Type{Kind: TypePtr, Elem: gv.Ty.Elem}, nil
		case gv != nil:
			t, commit := g.pushTarget("%o5")
			g.emitf("set %s, %s", x.Name, t)
			g.loadScalar(t, t, gv.Ty)
			commit()
			return gv.Ty, nil
		default:
			return nil, errf(x.Line, "undefined variable %s", x.Name)
		}

	case *Unary:
		return g.genUnary(x)

	case *Postfix:
		if v, ok := x.X.(*VarRef); ok {
			if lv, _ := g.lookup(v.Name); lv != nil && lv.reg != "" {
				return g.regIncDec(lv, x.Op, true), nil
			}
		}
		// x++ / x--: leave the old value, store the new one.
		ty, err := g.genAddr(x.X)
		if err != nil {
			return nil, err
		}
		if !ty.IsInteger() && ty.Kind != TypePtr {
			return nil, errf(x.Line, "%s cannot be incremented", ty)
		}
		step := 1
		if ty.Kind == TypePtr {
			step = ty.Elem.Size()
		}
		i := g.depth - 1
		addr := g.operand(i, "%o4")
		g.loadScalar("%o5", addr, ty)
		op := "add"
		if x.Op == "--" {
			op = "sub"
		}
		g.emitf("%s %%o5, %d, %%o3", op, step)
		g.storeScalar("%o3", addr, ty)
		// Replace the address with the old value.
		g.depth = i
		g.pushFrom("%o5")
		return ty, nil

	case *Binary:
		if v, ok := foldConst(e); ok {
			g.pushConst(int64(v))
			return tyInt, nil
		}
		switch x.Op {
		case "&&", "||", "==", "!=", "<", "<=", ">", ">=":
			return g.condValue(e)
		}
		if ty, ok, err := g.strengthReduce(x); ok || err != nil {
			return ty, err
		}
		tl, err := g.genExpr(x.L)
		if err != nil {
			return nil, err
		}
		tr, err := g.genExpr(x.R)
		if err != nil {
			return nil, err
		}
		return g.arith(x.Op, tl, tr, x.Line)

	case *Assign:
		return g.genAssign(x)

	case *CondExpr:
		lT := g.newLabel("ct")
		lF := g.newLabel("cf")
		lEnd := g.newLabel("cend")
		if err := g.genCond(x.C, lT, lF); err != nil {
			return nil, err
		}
		g.label(lT)
		tt, err := g.genExpr(x.T)
		if err != nil {
			return nil, err
		}
		g.popTo("%o5")
		g.emitf("ba %s", lEnd)
		g.emitf("nop")
		g.label(lF)
		tf, err := g.genExpr(x.F)
		if err != nil {
			return nil, err
		}
		g.popTo("%o5")
		g.label(lEnd)
		g.pushFrom("%o5")
		if tt.IsPointerish() {
			return tt, nil
		}
		return tf, nil

	case *Call:
		return g.genCall(x)

	case *Index:
		ty, err := g.genAddr(x)
		if err != nil {
			return nil, err
		}
		i := g.depth - 1
		addr := g.operand(i, "%o4")
		if isReg(i) {
			g.loadScalar(regName(i), addr, ty)
		} else {
			g.loadScalar("%o5", addr, ty)
			g.emitf("st %%o5, [%%fp - %d]", g.slotOff(i))
		}
		return ty, nil

	case *Cast:
		if _, err := g.genExpr(x.X); err != nil {
			return nil, err
		}
		if x.Ty.Kind == TypeChar {
			g.inPlace(func(src, dst string) {
				g.emitf("and %s, 0xFF, %s", src, dst)
			})
		}
		return x.Ty, nil

	case *SizeofType:
		ty := x.Ty
		if ty == nil {
			var err error
			ty, err = g.typeOf(x.X)
			if err != nil {
				return nil, err
			}
		}
		g.pushConst(int64(ty.Size()))
		return tyUnsigned, nil

	default:
		return nil, errf(e.exprLine(), "internal: unknown expression %T", e)
	}
}

// inPlace rewrites the stack top through f(src, dst).
func (g *gen) inPlace(f func(src, dst string)) {
	i := g.depth - 1
	if isReg(i) {
		f(regName(i), regName(i))
		return
	}
	off := g.slotOff(i)
	g.emitf("ld [%%fp - %d], %%o5", off)
	f("%o5", "%o5")
	g.emitf("st %%o5, [%%fp - %d]", off)
}

func (g *gen) genUnary(x *Unary) (*Type, error) {
	switch x.Op {
	case "-":
		ty, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		g.inPlace(func(src, dst string) { g.emitf("sub %%g0, %s, %s", src, dst) })
		return ty, nil
	case "~":
		ty, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		g.inPlace(func(src, dst string) { g.emitf("xnor %s, %%g0, %s", src, dst) })
		return ty, nil
	case "!":
		return g.condValue(x)
	case "*":
		ty, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !ty.IsPointerish() {
			return nil, errf(x.Line, "cannot dereference %s", ty)
		}
		elem := ty.Pointee()
		i := g.depth - 1
		addr := g.operand(i, "%o4")
		if isReg(i) {
			g.loadScalar(regName(i), addr, elem)
		} else {
			g.loadScalar("%o5", addr, elem)
			g.emitf("st %%o5, [%%fp - %d]", g.slotOff(i))
		}
		return elem, nil
	case "&":
		ty, err := g.genAddr(x.X)
		if err != nil {
			return nil, err
		}
		return &Type{Kind: TypePtr, Elem: ty}, nil
	case "++", "--":
		if v, ok := x.X.(*VarRef); ok {
			if lv, _ := g.lookup(v.Name); lv != nil && lv.reg != "" {
				return g.regIncDec(lv, x.Op, false), nil
			}
		}
		ty, err := g.genAddr(x.X)
		if err != nil {
			return nil, err
		}
		step := 1
		if ty.Kind == TypePtr {
			step = ty.Elem.Size()
		}
		i := g.depth - 1
		addr := g.operand(i, "%o4")
		g.loadScalar("%o5", addr, ty)
		op := "add"
		if x.Op == "--" {
			op = "sub"
		}
		g.emitf("%s %%o5, %d, %%o5", op, step)
		g.storeScalar("%o5", addr, ty)
		g.depth = i
		g.pushFrom("%o5")
		return ty, nil
	default:
		return nil, errf(x.Line, "internal: unary %q", x.Op)
	}
}

// arith consumes the top two stack entries (l below r) and pushes
// l op r, handling pointer scaling.
func (g *gen) arith(op string, tl, tr *Type, line int) (*Type, error) {
	// Pointer arithmetic scaling.
	resTy := tyInt
	switch {
	case tl.IsPointerish() && tr.IsInteger() && (op == "+" || op == "-"):
		g.scaleTop(tl.Pointee().Size())
		resTy = &Type{Kind: TypePtr, Elem: tl.Pointee()}
	case tl.IsInteger() && tr.IsPointerish() && op == "+":
		g.scaleBelowTop(tr.Pointee().Size())
		resTy = &Type{Kind: TypePtr, Elem: tr.Pointee()}
	case tl.IsPointerish() && tr.IsPointerish() && op == "-":
		resTy = tyInt // divided by size below
	case tl.IsPointerish() || tr.IsPointerish():
		return nil, errf(line, "invalid pointer arithmetic %s %s %s", tl, op, tr)
	default:
		if tl.Kind == TypeUnsigned || tr.Kind == TypeUnsigned {
			resTy = tyUnsigned
		}
	}

	i, j := g.depth-2, g.depth-1
	lop := g.operand(i, "%o4")
	rop := g.operand(j, "%o5")
	dst := "%o4"
	if isReg(i) {
		dst = regName(i)
	}
	unsigned := resTy.Kind == TypeUnsigned || tl.IsUnsignedCmp()

	switch op {
	case "+":
		g.emitf("add %s, %s, %s", lop, rop, dst)
	case "-":
		g.emitf("sub %s, %s, %s", lop, rop, dst)
	case "&":
		g.emitf("and %s, %s, %s", lop, rop, dst)
	case "|":
		g.emitf("or %s, %s, %s", lop, rop, dst)
	case "^":
		g.emitf("xor %s, %s, %s", lop, rop, dst)
	case "<<":
		g.emitf("sll %s, %s, %s", lop, rop, dst)
	case ">>":
		if unsigned {
			g.emitf("srl %s, %s, %s", lop, rop, dst)
		} else {
			g.emitf("sra %s, %s, %s", lop, rop, dst)
		}
	case "*":
		g.emitf("smul %s, %s, %s", lop, rop, dst)
	case "/":
		g.emitDiv(unsigned, lop, rop, dst)
	case "%":
		g.emitDiv(unsigned, lop, rop, "%o3")
		g.emitf("smul %%o3, %s, %%o3", rop)
		g.emitf("sub %s, %%o3, %s", lop, dst)
	default:
		return nil, errf(line, "internal: binary %q", op)
	}

	if tl.IsPointerish() && tr.IsPointerish() && op == "-" {
		size := tl.Pointee().Size()
		if size > 1 {
			g.emitf("sra %s, %d, %s", dst, bits.TrailingZeros(uint(size)), dst)
		}
	}
	if !isReg(i) {
		g.emitf("st %%o4, [%%fp - %d]", g.slotOff(i))
	}
	g.depth = i + 1
	return resTy, nil
}

// foldConst evaluates constant integer expressions at compile time
// with C-on-int32 semantics. It returns ok=false for anything that
// must be computed at runtime (variables, division by zero, oversized
// shifts — the latter two keep their runtime trap/UB behaviour).
func foldConst(e Expr) (int32, bool) {
	switch x := e.(type) {
	case *NumLit:
		return int32(x.Val), true
	case *Unary:
		v, ok := foldConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *Binary:
		a, ok := foldConst(x.L)
		if !ok {
			return 0, false
		}
		b, ok := foldConst(x.R)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a / b, true
		case "%":
			if b == 0 || (a == -1<<31 && b == -1) {
				return 0, false
			}
			return a % b, true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		case "<<":
			if b < 0 || b > 31 {
				return 0, false
			}
			return a << uint(b), true
		case ">>":
			if b < 0 || b > 31 {
				return 0, false
			}
			return a >> uint(b), true
		case "&&":
			return boolInt(a != 0 && b != 0), true
		case "||":
			return boolInt(a != 0 || b != 0), true
		case "==":
			return boolInt(a == b), true
		case "!=":
			return boolInt(a != b), true
		case "<":
			return boolInt(a < b), true
		case "<=":
			return boolInt(a <= b), true
		case ">":
			return boolInt(a > b), true
		case ">=":
			return boolInt(a >= b), true
		}
		return 0, false
	default:
		return 0, false
	}
}

func boolInt(b bool) int32 {
	if b {
		return 1
	}
	return 0
}

// strengthReduce rewrites * / % by positive power-of-two constants
// into shifts and masks (the SPARC divider costs ≈35 cycles; gcc does
// the same reduction). Signed division and modulo use the standard
// branchless bias sequence so negative operands round toward zero.
func (g *gen) strengthReduce(x *Binary) (*Type, bool, error) {
	rlit, ok := x.R.(*NumLit)
	if !ok || rlit.Val <= 0 || rlit.Val&(rlit.Val-1) != 0 {
		return nil, false, nil
	}
	// Type check statically before any code is generated, so falling
	// back to the generic path leaves the value stack untouched.
	st, err := g.typeOf(x.L)
	if err != nil || !st.IsInteger() {
		return nil, false, nil
	}
	k := bits.TrailingZeros64(uint64(rlit.Val))
	switch x.Op {
	case "*":
		tl, err := g.genExpr(x.L)
		if err != nil {
			return nil, true, err
		}
		if k > 0 {
			g.inPlace(func(src, dst string) { g.emitf("sll %s, %d, %s", src, k, dst) })
		}
		return tl, true, nil
	case "/", "%":
		if k > 12 {
			return nil, false, nil // mask exceeds simm13; generic path
		}
		tl, err := g.genExpr(x.L)
		if err != nil {
			return nil, true, err
		}
		unsigned := tl.IsUnsignedCmp()
		mask := int64(1)<<k - 1
		g.inPlace(func(src, dst string) {
			switch {
			case x.Op == "/" && unsigned:
				g.emitf("srl %s, %d, %s", src, k, dst)
			case x.Op == "%" && unsigned:
				g.emitf("and %s, %d, %s", src, mask, dst)
			case x.Op == "/":
				// bias = (src >> 31) >>> (32-k): 2^k-1 for negatives.
				g.emitf("sra %s, 31, %%o3", src)
				if k > 0 {
					g.emitf("srl %%o3, %d, %%o3", 32-k)
				} else {
					g.emitf("mov 0, %%o3")
				}
				g.emitf("add %s, %%o3, %s", src, dst)
				g.emitf("sra %s, %d, %s", dst, k, dst)
			default: // signed %
				g.emitf("sra %s, 31, %%o3", src)
				if k > 0 {
					g.emitf("srl %%o3, %d, %%o3", 32-k)
				} else {
					g.emitf("mov 0, %%o3")
				}
				g.emitf("add %s, %%o3, %%o4", src)
				g.emitf("and %%o4, %d, %%o4", mask)
				g.emitf("sub %%o4, %%o3, %s", dst)
			}
		})
		return tl, true, nil
	}
	return nil, false, nil
}

// emitDiv emits a division setting up the Y register for the 64-bit
// dividend the SPARC divider expects.
func (g *gen) emitDiv(unsigned bool, lop, rop, dst string) {
	if unsigned {
		g.emitf("mov 0, %%y")
		g.emitf("udiv %s, %s, %s", lop, rop, dst)
		return
	}
	g.emitf("sra %s, 31, %%o3", lop)
	g.emitf("mov %%o3, %%y")
	g.emitf("sdiv %s, %s, %s", lop, rop, dst)
}

// scaleTop multiplies the stack top by size (index scaling).
func (g *gen) scaleTop(size int) {
	if size <= 1 {
		return
	}
	if size&(size-1) == 0 {
		sh := bits.TrailingZeros(uint(size))
		g.inPlace(func(src, dst string) { g.emitf("sll %s, %d, %s", src, sh, dst) })
		return
	}
	g.inPlace(func(src, dst string) {
		g.emitf("set %d, %%o3", size)
		g.emitf("smul %s, %%o3, %s", src, dst)
	})
}

// scaleBelowTop multiplies the entry below the top by size.
func (g *gen) scaleBelowTop(size int) {
	if size <= 1 {
		return
	}
	i := g.depth - 2
	src := g.operand(i, "%o4")
	dst := src
	if size&(size-1) == 0 {
		g.emitf("sll %s, %d, %s", src, bits.TrailingZeros(uint(size)), dst)
	} else {
		g.emitf("set %d, %%o3", size)
		g.emitf("smul %s, %%o3, %s", src, dst)
	}
	if !isReg(i) {
		g.emitf("st %s, [%%fp - %d]", dst, g.slotOff(i))
	}
}

// genAddr pushes the address of an lvalue and returns the type of the
// object it designates.
func (g *gen) genAddr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *VarRef:
		lv, gv := g.lookup(x.Name)
		switch {
		case lv != nil && lv.reg != "":
			// Unreachable: address-taken names are frame-resident.
			return nil, errf(x.Line, "internal: address of register variable %s", x.Name)
		case lv != nil:
			t, commit := g.pushTarget("%o5")
			g.emitf("sub %%fp, %d, %s", lv.off, t)
			commit()
			return lv.ty, nil
		case gv != nil:
			t, commit := g.pushTarget("%o5")
			g.emitf("set %s, %s", x.Name, t)
			commit()
			return gv.Ty, nil
		default:
			return nil, errf(x.Line, "undefined variable %s", x.Name)
		}
	case *Unary:
		if x.Op != "*" {
			return nil, errf(x.Line, "expression is not an lvalue")
		}
		ty, err := g.genExpr(x.X)
		if err != nil {
			return nil, err
		}
		if !ty.IsPointerish() {
			return nil, errf(x.Line, "cannot dereference %s", ty)
		}
		return ty.Pointee(), nil
	case *Index:
		tb, err := g.genExpr(x.Base) // arrays decay to pointers here
		if err != nil {
			return nil, err
		}
		if !tb.IsPointerish() {
			return nil, errf(x.Line, "%s is not indexable", tb)
		}
		ti, err := g.genExpr(x.Idx)
		if err != nil {
			return nil, err
		}
		if !ti.IsInteger() {
			return nil, errf(x.Line, "index must be an integer, got %s", ti)
		}
		if _, err := g.arith("+", tb, ti, x.Line); err != nil {
			return nil, err
		}
		return tb.Pointee(), nil
	default:
		return nil, errf(e.exprLine(), "expression is not an lvalue")
	}
}

func (g *gen) genAssign(x *Assign) (*Type, error) {
	// Register-resident scalar destinations skip the address path.
	if v, ok := x.L.(*VarRef); ok {
		if lv, _ := g.lookup(v.Name); lv != nil && lv.reg != "" {
			return g.genAssignReg(x, lv)
		}
	}
	tl, err := g.genAddr(x.L)
	if err != nil {
		return nil, err
	}
	if tl.Kind == TypeArray {
		return nil, errf(x.Line, "cannot assign to an array")
	}
	if x.Op == "" {
		tr, err := g.genExpr(x.R)
		if err != nil {
			return nil, err
		}
		if !typesCompatible(tl, tr) {
			return nil, errf(x.Line, "cannot assign %s to %s", tr, tl)
		}
		j, i := g.depth-1, g.depth-2
		val := g.operand(j, "%o5")
		addr := g.operand(i, "%o4")
		g.storeScalar(val, addr, tl)
		g.depth = i
		g.pushFrom(val)
		return tl, nil
	}
	// Compound: load current value, apply, store.
	i := g.depth - 1
	addr := g.operand(i, "%o4")
	g.loadScalar("%o5", addr, tl)
	g.pushFrom("%o5")
	tr, err := g.genExpr(x.R)
	if err != nil {
		return nil, err
	}
	if _, err := g.arith(x.Op, tl, tr, x.Line); err != nil {
		return nil, err
	}
	j := g.depth - 1 // result; the address sits just below it at i
	val := g.operand(j, "%o5")
	addr = g.operand(i, "%o4")
	g.storeScalar(val, addr, tl)
	g.depth = i
	g.pushFrom(val)
	return tl, nil
}

// genAssignReg assigns to a register-resident local; the result value
// stays on the stack.
func (g *gen) genAssignReg(x *Assign, lv *localVar) (*Type, error) {
	if x.Op == "" {
		tr, err := g.genExpr(x.R)
		if err != nil {
			return nil, err
		}
		if !typesCompatible(lv.ty, tr) {
			return nil, errf(x.Line, "cannot assign %s to %s", tr, lv.ty)
		}
		val := g.operand(g.depth-1, "%o5")
		g.emitf("mov %s, %s", val, lv.reg)
		return lv.ty, nil
	}
	// Compound: current value, rhs, arith, write back.
	g.pushFrom(lv.reg)
	tr, err := g.genExpr(x.R)
	if err != nil {
		return nil, err
	}
	if _, err := g.arith(x.Op, lv.ty, tr, x.Line); err != nil {
		return nil, err
	}
	val := g.operand(g.depth-1, "%o5")
	g.emitf("mov %s, %s", val, lv.reg)
	return lv.ty, nil
}

// regIncDec handles ++/-- on a register-resident local. post selects
// whether the old (x++) or new (++x) value is pushed.
func (g *gen) regIncDec(lv *localVar, op string, post bool) *Type {
	step := 1
	if lv.ty.Kind == TypePtr {
		step = lv.ty.Elem.Size()
	}
	insn := "add"
	if op == "--" {
		insn = "sub"
	}
	if post {
		g.pushFrom(lv.reg)
		g.emitf("%s %s, %d, %s", insn, lv.reg, step, lv.reg)
		return lv.ty
	}
	g.emitf("%s %s, %d, %s", insn, lv.reg, step, lv.reg)
	g.pushFrom(lv.reg)
	return lv.ty
}

func (g *gen) genCall(x *Call) (*Type, error) {
	if x.Name == "__mac" {
		if len(x.Args) != 3 {
			return nil, errf(x.Line, "__mac wants (acc, a, b)")
		}
		if !g.opts.MAC {
			return nil, errf(x.Line, "__mac requires the MAC-configured liquid CPU (Options.MAC)")
		}
		for _, a := range x.Args {
			ty, err := g.genExpr(a)
			if err != nil {
				return nil, err
			}
			if !ty.IsInteger() {
				return nil, errf(x.Line, "__mac arguments must be integers")
			}
		}
		g.popTo("%o5") // b
		g.popTo("%o4") // a
		i := g.depth - 1
		if isReg(i) {
			g.emitf("lqmac %%o4, %%o5, %s", regName(i))
		} else {
			g.emitf("ld [%%fp - %d], %%o3", g.slotOff(i))
			g.emitf("lqmac %%o4, %%o5, %%o3")
			g.emitf("st %%o3, [%%fp - %d]", g.slotOff(i))
		}
		return tyInt, nil
	}

	fn := g.funcs[x.Name]
	if fn == nil {
		return nil, errf(x.Line, "call to undefined function %s", x.Name)
	}
	if _, seen := g.called[x.Name]; !seen {
		g.called[x.Name] = x.Line
	}
	if len(x.Args) != len(fn.Params) {
		return nil, errf(x.Line, "%s wants %d arguments, got %d", x.Name, len(fn.Params), len(x.Args))
	}
	for k, a := range x.Args {
		ty, err := g.genExpr(a)
		if err != nil {
			return nil, err
		}
		if !typesCompatible(fn.Params[k].Ty, ty) {
			return nil, errf(x.Line, "argument %d of %s: cannot pass %s as %s", k+1, x.Name, ty, fn.Params[k].Ty)
		}
	}
	for k := len(x.Args) - 1; k >= 0; k-- {
		g.popTo(fmt.Sprintf("%%o%d", k))
	}
	g.emitf("call %s", x.Name)
	g.emitf("nop")
	g.pushFrom("%o0")
	if fn.Ret.Kind == TypeVoid {
		return tyInt, nil // value is garbage; ExprStmt discards it
	}
	return fn.Ret, nil
}

// genCond evaluates e as a branch to lTrue or lFalse.
func (g *gen) genCond(e Expr, lTrue, lFalse string) error {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case "&&":
			mid := g.newLabel("and")
			if err := g.genCond(x.L, mid, lFalse); err != nil {
				return err
			}
			g.label(mid)
			return g.genCond(x.R, lTrue, lFalse)
		case "||":
			mid := g.newLabel("or")
			if err := g.genCond(x.L, lTrue, mid); err != nil {
				return err
			}
			g.label(mid)
			return g.genCond(x.R, lTrue, lFalse)
		case "==", "!=", "<", "<=", ">", ">=":
			tl, err := g.genExpr(x.L)
			if err != nil {
				return err
			}
			tr, err := g.genExpr(x.R)
			if err != nil {
				return err
			}
			g.popTo("%o5")
			g.popTo("%o4")
			unsigned := tl.IsUnsignedCmp() || tr.IsUnsignedCmp()
			g.emitf("cmp %%o4, %%o5")
			g.emitf("b%s %s", condSuffix(x.Op, unsigned), lTrue)
			g.emitf("nop")
			g.emitf("ba %s", lFalse)
			g.emitf("nop")
			return nil
		}
	case *Unary:
		if x.Op == "!" {
			return g.genCond(x.X, lFalse, lTrue)
		}
	case *NumLit:
		if x.Val != 0 {
			g.emitf("ba %s", lTrue)
		} else {
			g.emitf("ba %s", lFalse)
		}
		g.emitf("nop")
		return nil
	}
	if _, err := g.genExpr(e); err != nil {
		return err
	}
	g.popTo("%o5")
	g.emitf("cmp %%o5, 0")
	g.emitf("bne %s", lTrue)
	g.emitf("nop")
	g.emitf("ba %s", lFalse)
	g.emitf("nop")
	return nil
}

func condSuffix(op string, unsigned bool) string {
	if unsigned {
		switch op {
		case "<":
			return "lu"
		case "<=":
			return "leu"
		case ">":
			return "gu"
		case ">=":
			return "geu"
		}
	}
	switch op {
	case "==":
		return "e"
	case "!=":
		return "ne"
	case "<":
		return "l"
	case "<=":
		return "le"
	case ">":
		return "g"
	case ">=":
		return "ge"
	}
	return "a"
}

// condValue materializes a boolean expression as 0/1.
func (g *gen) condValue(e Expr) (*Type, error) {
	lT := g.newLabel("bt")
	lF := g.newLabel("bf")
	lEnd := g.newLabel("bend")
	if err := g.genCond(e, lT, lF); err != nil {
		return nil, err
	}
	g.label(lT)
	g.emitf("mov 1, %%o5")
	g.emitf("ba %s", lEnd)
	g.emitf("nop")
	g.label(lF)
	g.emitf("mov 0, %%o5")
	g.label(lEnd)
	g.pushFrom("%o5")
	return tyInt, nil
}

// typeOf statically types an expression (for sizeof).
func (g *gen) typeOf(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *NumLit:
		return tyInt, nil
	case *StrLit:
		return &Type{Kind: TypePtr, Elem: tyChar}, nil
	case *VarRef:
		lv, gv := g.lookup(x.Name)
		if lv != nil {
			return lv.ty, nil
		}
		if gv != nil {
			return gv.Ty, nil
		}
		return nil, errf(x.Line, "undefined variable %s", x.Name)
	case *Unary:
		switch x.Op {
		case "*":
			t, err := g.typeOf(x.X)
			if err != nil {
				return nil, err
			}
			if !t.IsPointerish() {
				return nil, errf(x.Line, "cannot dereference %s", t)
			}
			return t.Pointee(), nil
		case "&":
			t, err := g.typeOf(x.X)
			if err != nil {
				return nil, err
			}
			return &Type{Kind: TypePtr, Elem: t}, nil
		default:
			return g.typeOf(x.X)
		}
	case *Index:
		t, err := g.typeOf(x.Base)
		if err != nil {
			return nil, err
		}
		if !t.IsPointerish() {
			return nil, errf(x.Line, "%s is not indexable", t)
		}
		return t.Pointee(), nil
	case *Cast:
		return x.Ty, nil
	case *Call:
		if fn := g.funcs[x.Name]; fn != nil {
			return fn.Ret, nil
		}
		return tyInt, nil
	case *Binary:
		return g.typeOf(x.L)
	case *Assign:
		return g.typeOf(x.L)
	case *CondExpr:
		return g.typeOf(x.T)
	default:
		return tyInt, nil
	}
}

// strLabel interns a string literal.
func (g *gen) strLabel(s string) string {
	if lbl, ok := g.strs[s]; ok {
		return lbl
	}
	lbl := fmt.Sprintf(".LC%d", len(g.strOrd))
	g.strs[s] = lbl
	g.strOrd = append(g.strOrd, s)
	return lbl
}

// emitData appends the data section: globals and string literals.
func (g *gen) emitData(prog *Program) {
	if len(prog.Globals)+len(g.strOrd) > 0 {
		g.out.WriteString("\n! data\n\t.align 8\n")
	}
	for _, gv := range prog.Globals {
		fmt.Fprintf(&g.out, "\t.align 4\n%s:\n", gv.Name)
		switch gv.Ty.Kind {
		case TypeArray:
			elem := gv.Ty.Elem
			for _, v := range gv.Init {
				if elem.Kind == TypeChar {
					fmt.Fprintf(&g.out, "\t.byte %d\n", uint8(v))
				} else {
					fmt.Fprintf(&g.out, "\t.word 0x%X\n", uint32(v))
				}
			}
			rest := gv.Ty.Size() - len(gv.Init)*elem.Size()
			if rest > 0 {
				fmt.Fprintf(&g.out, "\t.space %d\n", rest)
			}
		case TypeChar:
			v := int64(0)
			if len(gv.Init) > 0 {
				v = gv.Init[0]
			}
			fmt.Fprintf(&g.out, "\t.byte %d\n", uint8(v))
		default:
			v := int64(0)
			if len(gv.Init) > 0 {
				v = gv.Init[0]
			}
			fmt.Fprintf(&g.out, "\t.word 0x%X\n", uint32(v))
		}
	}
	for i, s := range g.strOrd {
		fmt.Fprintf(&g.out, "\t.align 4\n.LC%d:\n", i)
		fmt.Fprintf(&g.out, "\t.asciz %q\n", s)
	}
}
