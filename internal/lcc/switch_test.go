package lcc

import (
	"strings"
	"testing"
)

func TestSwitchBasics(t *testing.T) {
	src := `
int classify(int n) {
    switch (n) {
    case 0:
        return 100;
    case 1:
    case 2:
        return 200;        // shared label via fall-through
    case 1000:
        return 300;
    default:
        return 400;
    }
}
int main() {
    return classify(0) + classify(1) + classify(2) + classify(1000) + classify(7);
}`
	if got := runC(t, src); got != 100+200+200+300+400 {
		t.Errorf("got %d", got)
	}
}

func TestSwitchFallThroughAndBreak(t *testing.T) {
	src := `
int main() {
    int x = 0;
    switch (2) {
    case 1:
        x += 1;
    case 2:
        x += 10;           // entry point
    case 3:
        x += 100;          // falls through
        break;
    case 4:
        x += 1000;         // not reached
    }
    return x;
}`
	if got := runC(t, src); got != 110 {
		t.Errorf("got %d, want 110 (fall-through then break)", got)
	}
}

func TestSwitchInsideLoop(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    int i;
    for (i = 0; i < 6; i++) {
        switch (i % 3) {
        case 0: sum += 1; break;
        case 1: sum += 10; break;
        default: sum += 100; break;
        }
        if (i == 4) continue;   // continue still binds to the loop
        sum += 1000;
    }
    return sum;
}`
	// i: 0,1,2,3,4,5 → case adds 1,10,100,1,10,100 = 222; +1000 for
	// every i except 4 → +5000.
	if got := runC(t, src); got != 5222 {
		t.Errorf("got %d, want 5222", got)
	}
}

func TestSwitchLargeCaseValues(t *testing.T) {
	src := `
int main() {
    switch (0x12345) {
    case 0x12345:
        return 7;
    }
    return 9;
}`
	if got := runC(t, src); got != 7 {
		t.Errorf("got %d", got)
	}
}

func TestSwitchWithoutDefaultSkips(t *testing.T) {
	src := `
int main() {
    int x = 5;
    switch (x) {
    case 1: return 1;
    }
    return 42;
}`
	if got := runC(t, src); got != 42 {
		t.Errorf("got %d", got)
	}
}

func TestPrototypesAndMutualRecursion(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) {
    if (n == 0) return 1;
    return isOdd(n - 1);
}
int isOdd(int n) {
    if (n == 0) return 0;
    return isEven(n - 1);
}
int main() { return isEven(30) * 10 + isOdd(17); }`
	if got := runC(t, src); got != 11 {
		t.Errorf("mutual recursion = %d, want 11", got)
	}
}

func TestPrototypeErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{"int f(int a);\nint main() { return f(1); }", "never defined"},
		{"int f(int a);\nint f(int a, int b) { return a; }\nint main() { return 0; }", "prototype"},
		{"int main() { switch (1) { x = 3; } }", "before first case"},
		{"int main() { switch (1) { default: return 1; default: return 2; } }", "duplicate default"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, Options{})
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: err = %v, want mention of %q", c.src, err, c.frag)
		}
	}
}

func TestUnsignedChar(t *testing.T) {
	src := `
unsigned char table[4] = {200, 201, 202, 203};
int main() {
    unsigned char c = table[2];
    return c;
}`
	if got := runC(t, src); got != 202 {
		t.Errorf("got %d", got)
	}
}
