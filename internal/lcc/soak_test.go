package lcc

import (
	"testing"

	"liquidarch/internal/leon"
)

// TestInterruptsDuringRecursionSoak runs a deeply recursive workload
// with a fast periodic timer interrupt enabled: interrupt traps land
// between window overflow/underflow traps, save/restore sequences and
// memory operations. The computed result must be exact and interrupts
// must actually have been delivered — the hardest interaction in the
// trap machinery.
func TestInterruptsDuringRecursionSoak(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int sum(int n) {
    if (n == 0) return 0;
    return n + sum(n - 1);
}
int main() {
    // Unmask all interrupts and start a fast periodic timer.
    *(volatile unsigned*)0x80000094 = 0xFFFE;  // IRQ mask
    *(volatile unsigned*)0x80000044 = 50;      // timer reload
    *(volatile unsigned*)0x80000048 = 0xF;     // enable|reload|load|irq

    int f = fib(16);        // 987, thousands of window traps
    int s = sum(40);        // 820, 40 windows deep
    *(volatile unsigned*)0x80000048 = 0;       // stop the timer
    return f * 1000 + s;
}`
	got, res, ctrl := runCConfig(t, src, leon.DefaultConfig(), Options{})
	if got != 987*1000+820 {
		t.Errorf("result = %d, want %d", got, 987*1000+820)
	}
	stats := ctrl.SoC().CPU.Stats()
	if stats.WindowSpills < 50 || stats.WindowFills < 50 {
		t.Errorf("too few window traps: spills=%d fills=%d", stats.WindowSpills, stats.WindowFills)
	}
	if stats.Interrupts < 10 {
		t.Errorf("only %d interrupts delivered during the soak", stats.Interrupts)
	}
	if ctrl.IRQCount() != uint32(stats.Interrupts) {
		t.Errorf("ROM stub counted %d interrupts, CPU took %d", ctrl.IRQCount(), stats.Interrupts)
	}
	if res.Faulted {
		t.Errorf("soak faulted: %+v", res)
	}
	t.Logf("soak: %d instructions, %d spills, %d fills, %d interrupts",
		res.Instructions, stats.WindowSpills, stats.WindowFills, stats.Interrupts)
}

// TestMutualRecursionWindows: odd/even mutual recursion stresses the
// call graph across windows with two alternating frames.
func TestMutualRecursionWindows(t *testing.T) {
	src := `
int isOdd(int n);
int isEven(int n) {
    if (n == 0) return 1;
    return isOdd(n - 1);
}
int isOdd(int n) {
    if (n == 0) return 0;
    return isEven(n - 1);
}
int main() { return isEven(30) * 10 + isOdd(17); }`
	// Forward declarations are not supported; restructure so isOdd is
	// defined before use via a single self-recursive helper instead.
	srcAlt := `
int parity(int n) {
    if (n == 0) return 0;
    if (n == 1) return 1;
    return parity(n - 2);
}
int main() { return parity(30) * 10 + parity(17); }`
	if _, err := Compile(src, Options{}); err == nil {
		// If forward declarations ever work, the original must too.
		if got := runC(t, src); got != 11 {
			t.Errorf("mutual recursion = %d, want 11", got)
		}
		return
	}
	if got := runC(t, srcAlt); got != 1 {
		t.Errorf("parity chain = %d, want 1", got)
	}
}
