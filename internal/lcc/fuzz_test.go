package lcc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompilerNeverPanics: random token soup must produce an error or
// a compile, never a panic.
func TestCompilerNeverPanics(t *testing.T) {
	vocab := []string{
		"int", "char", "unsigned", "void", "main", "x", "y", "(", ")",
		"{", "}", "[", "]", ";", ",", "=", "+", "-", "*", "/", "%",
		"if", "else", "while", "for", "return", "break", "0", "1", "42",
		"0x10", "'c'", "\"s\"", "&&", "||", "<", ">", "==", "++", "--",
		"&", "|", "^", "~", "!", "?", ":", "sizeof", "volatile",
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		var b strings.Builder
		n := rng.Intn(40)
		for j := 0; j < n; j++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("compiler panicked on %q: %v", src, r)
				}
			}()
			Compile(src, Options{}) //nolint:errcheck
		}()
	}
}
