package lcc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// Differential testing: random C expression trees are evaluated both
// by a reference evaluator (C semantics on int32) and by compiling and
// running them on the simulated LEON. Any divergence is a code
// generation bug.

// exprNode is a generated expression with its reference value.
type exprNode struct {
	src string
	val int32
}

type exprGen struct {
	rng  *rand.Rand
	vars map[string]int32 // available variables and their values
}

func (g *exprGen) lit() exprNode {
	// Mix of small and large constants; keep them non-negative
	// literals (unary minus is applied as an operator).
	choices := []int32{0, 1, 2, 3, 5, 7, 10, 31, 32, 100, 1023, 1024, 4096, 65535, 1 << 20}
	v := choices[g.rng.Intn(len(choices))]
	return exprNode{src: fmt.Sprintf("%d", v), val: v}
}

func (g *exprGen) variable() exprNode {
	names := make([]string, 0, len(g.vars))
	for n := range g.vars {
		names = append(names, n)
	}
	if len(names) == 0 {
		return g.lit()
	}
	// Map iteration order is random; use the rng for determinism.
	name := names[0]
	idx := g.rng.Intn(len(names))
	// Sort-free deterministic pick: find the idx-th smallest name.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	name = names[idx]
	return exprNode{src: name, val: g.vars[name]}
}

// gen builds a random expression of the given depth.
func (g *exprGen) gen(depth int) exprNode {
	if depth <= 0 {
		if g.rng.Intn(3) == 0 {
			return g.variable()
		}
		return g.lit()
	}
	switch g.rng.Intn(14) {
	case 0: // addition
		a, b := g.gen(depth-1), g.gen(depth-1)
		return exprNode{src: "(" + a.src + " + " + b.src + ")", val: a.val + b.val}
	case 1:
		a, b := g.gen(depth-1), g.gen(depth-1)
		return exprNode{src: "(" + a.src + " - " + b.src + ")", val: a.val - b.val}
	case 2:
		a, b := g.gen(depth-1), g.gen(depth-1)
		return exprNode{src: "(" + a.src + " * " + b.src + ")", val: a.val * b.val}
	case 3: // division by a safe positive constant
		a := g.gen(depth - 1)
		d := []int32{1, 2, 3, 4, 7, 8, 16, 100, 1024}[g.rng.Intn(9)]
		return exprNode{src: "(" + a.src + fmt.Sprintf(" / %d)", d), val: a.val / d}
	case 4:
		a := g.gen(depth - 1)
		d := []int32{1, 2, 3, 4, 7, 8, 16, 100, 1024}[g.rng.Intn(9)]
		return exprNode{src: "(" + a.src + fmt.Sprintf(" %% %d)", d), val: a.val % d}
	case 5:
		a, b := g.gen(depth-1), g.gen(depth-1)
		return exprNode{src: "(" + a.src + " & " + b.src + ")", val: a.val & b.val}
	case 6:
		a, b := g.gen(depth-1), g.gen(depth-1)
		return exprNode{src: "(" + a.src + " | " + b.src + ")", val: a.val | b.val}
	case 7:
		a, b := g.gen(depth-1), g.gen(depth-1)
		return exprNode{src: "(" + a.src + " ^ " + b.src + ")", val: a.val ^ b.val}
	case 8: // shift by a bounded constant
		a := g.gen(depth - 1)
		s := int32(g.rng.Intn(31))
		if g.rng.Intn(2) == 0 {
			return exprNode{src: "(" + a.src + fmt.Sprintf(" << %d)", s), val: a.val << uint(s)}
		}
		return exprNode{src: "(" + a.src + fmt.Sprintf(" >> %d)", s), val: a.val >> uint(s)}
	case 9: // unary
		a := g.gen(depth - 1)
		switch g.rng.Intn(3) {
		case 0:
			return exprNode{src: "(-" + a.src + ")", val: -a.val}
		case 1:
			return exprNode{src: "(~" + a.src + ")", val: ^a.val}
		default:
			v := int32(0)
			if a.val == 0 {
				v = 1
			}
			return exprNode{src: "(!" + a.src + ")", val: v}
		}
	case 10: // comparison
		a, b := g.gen(depth-1), g.gen(depth-1)
		ops := []struct {
			s string
			f func(x, y int32) bool
		}{
			{"==", func(x, y int32) bool { return x == y }},
			{"!=", func(x, y int32) bool { return x != y }},
			{"<", func(x, y int32) bool { return x < y }},
			{"<=", func(x, y int32) bool { return x <= y }},
			{">", func(x, y int32) bool { return x > y }},
			{">=", func(x, y int32) bool { return x >= y }},
		}
		op := ops[g.rng.Intn(len(ops))]
		v := int32(0)
		if op.f(a.val, b.val) {
			v = 1
		}
		return exprNode{src: "(" + a.src + " " + op.s + " " + b.src + ")", val: v}
	case 11: // logical
		a, b := g.gen(depth-1), g.gen(depth-1)
		if g.rng.Intn(2) == 0 {
			v := int32(0)
			if a.val != 0 && b.val != 0 {
				v = 1
			}
			return exprNode{src: "(" + a.src + " && " + b.src + ")", val: v}
		}
		v := int32(0)
		if a.val != 0 || b.val != 0 {
			v = 1
		}
		return exprNode{src: "(" + a.src + " || " + b.src + ")", val: v}
	case 12: // ternary
		c, a, b := g.gen(depth-1), g.gen(depth-1), g.gen(depth-1)
		v := b.val
		if c.val != 0 {
			v = a.val
		}
		return exprNode{src: "(" + c.src + " ? " + a.src + " : " + b.src + ")", val: v}
	default: // variable or literal
		if g.rng.Intn(2) == 0 {
			return g.variable()
		}
		return g.lit()
	}
}

// TestDifferentialExpressions compiles batches of random expressions
// and compares the simulated results against the reference evaluator.
func TestDifferentialExpressions(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing skipped in -short mode")
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			g := &exprGen{rng: rng, vars: map[string]int32{
				"va": int32(rng.Uint32()),
				"vb": int32(rng.Uint32() % 1000),
				"vc": -7,
				"vd": 0,
			}}
			// One program per seed evaluates several expressions and
			// folds them into a checksum; a mismatched checksum is
			// then bisected by evaluating each expression alone.
			const per = 12
			exprs := make([]exprNode, per)
			for i := range exprs {
				exprs[i] = g.gen(4)
			}
			var b strings.Builder
			fmt.Fprintf(&b, "int main() {\n")
			for name, v := range map[string]int32{
				"va": g.vars["va"], "vb": g.vars["vb"], "vc": g.vars["vc"], "vd": g.vars["vd"],
			} {
				fmt.Fprintf(&b, "    int %s = %d;\n", name, v)
			}
			var want int32
			fmt.Fprintf(&b, "    int sum = 0;\n")
			for i, e := range exprs {
				fmt.Fprintf(&b, "    sum ^= (%s) + %d;\n", e.src, i)
				want ^= e.val + int32(i)
			}
			fmt.Fprintf(&b, "    return sum;\n}\n")

			got := runC(t, b.String())
			if got != uint32(want) {
				// Bisect: run each expression in isolation.
				for i, e := range exprs {
					single := fmt.Sprintf(`int main() {
    int va = %d; int vb = %d; int vc = %d; int vd = %d;
    return %s;
}`, g.vars["va"], g.vars["vb"], g.vars["vc"], g.vars["vd"], e.src)
					if sv := runC(t, single); sv != uint32(e.val) {
						t.Fatalf("expression %d diverges:\n  %s\n  simulated %d (%#x), reference %d (%#x)",
							i, e.src, int32(sv), sv, e.val, uint32(e.val))
					}
				}
				t.Fatalf("checksum diverges (%#x vs %#x) but no single expression does — interaction bug", got, uint32(want))
			}
		})
	}
}

// TestDifferentialStatements does the same for small random statement
// sequences (assignments, loops with bounded trip counts, ifs).
func TestDifferentialStatements(t *testing.T) {
	if testing.Short() {
		t.Skip("differential fuzzing skipped in -short mode")
	}
	for seed := int64(100); seed < 106; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			// Reference state machine over three variables.
			x, y, z := int32(rng.Intn(100)), int32(rng.Intn(100)), int32(0)
			var body strings.Builder
			x0, y0 := x, y
			for i := 0; i < 10; i++ {
				switch rng.Intn(6) {
				case 0:
					k := int32(rng.Intn(50) + 1)
					fmt.Fprintf(&body, "    x = x + %d;\n", k)
					x += k
				case 1:
					k := int32(rng.Intn(7) + 1)
					fmt.Fprintf(&body, "    y = y * %d;\n", k)
					y *= k
				case 2:
					fmt.Fprintf(&body, "    if (x > y) z = z + x; else z = z - y;\n")
					if x > y {
						z += x
					} else {
						z -= y
					}
				case 3:
					n := int32(rng.Intn(8) + 1)
					fmt.Fprintf(&body, "    { int i; for (i = 0; i < %d; i++) z += i * x; }\n", n)
					for i := int32(0); i < n; i++ {
						z += i * x
					}
				case 4:
					k := int32(rng.Intn(15) + 1)
					fmt.Fprintf(&body, "    x ^= y >> %d;\n", k%8)
					x ^= y >> uint(k%8)
				case 5:
					// A switch with fall-through on the low bits of x.
					fmt.Fprintf(&body, `    switch (x & 3) {
    case 0: z += 1;
    case 1: z += 10; break;
    case 2: z -= 5; break;
    default: z += 1000; break;
    }
`)
					switch x & 3 {
					case 0:
						z += 1
						z += 10
					case 1:
						z += 10
					case 2:
						z -= 5
					default:
						z += 1000
					}
				}
			}
			want := x ^ y ^ z
			src := fmt.Sprintf(`int main() {
    int x = %d;
    int y = %d;
    int z = 0;
%s    return x ^ y ^ z;
}`, x0, y0, body.String())
			if got := runC(t, src); got != uint32(want) {
				t.Fatalf("statement sequence diverges: %d vs %d\n%s", int32(got), want, src)
			}
		})
	}
}
