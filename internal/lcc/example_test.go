package lcc_test

import (
	"fmt"
	"log"
	"strings"

	"liquidarch/internal/lcc"
)

// ExampleCompile translates a C function to SPARC V8 assembly.
func ExampleCompile() {
	asmText, err := lcc.Compile("int main() { return 1 + 2; }", lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// The constant folder reduces 1+2 at compile time.
	fmt.Println(strings.Contains(asmText, "mov 3,"))
	fmt.Println(strings.Contains(asmText, "main:"))
	// Output:
	// true
	// true
}
