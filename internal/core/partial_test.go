package core

import (
	"testing"

	"liquidarch/internal/cache"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
)

// TestPartialReconfiguration: a cache-only change takes the partial
// (plugin-swap) path and leaves the processor live — no reset, same
// controller, continuous cycle counter.
func TestPartialReconfiguration(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	ctrlBefore := s.Controller()
	cyclesBefore := s.SoC().Cycles()

	cfg := s.Config()
	cfg.DCache.SizeBytes = 8 << 10
	hit, err := s.Reconfigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("fresh config hit")
	}
	if !s.LastReconfigureWasPartial() {
		t.Fatal("cache-only change did not take the partial path")
	}
	if s.PartialReconfigurations() != 1 {
		t.Errorf("partials = %d", s.PartialReconfigurations())
	}
	if s.Controller() != ctrlBefore {
		t.Error("partial reconfiguration replaced the controller")
	}
	if s.SoC().Cycles() < cyclesBefore {
		t.Error("cycle counter reset by partial reconfiguration")
	}
	if got := s.SoC().DCache.Config().SizeBytes; got != 8<<10 {
		t.Errorf("live D$ size = %d", got)
	}
	// The system still runs programs.
	img, err := s.CompileC("int main() { return 5; }", lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(img, 0)
	if err != nil || res.Faulted {
		t.Fatalf("run after partial swap: %v %+v", err, res)
	}
	if v, _ := s.ExitValue(img); v != 5 {
		t.Errorf("exit = %d", v)
	}
}

// TestPartialDisabled: the ablation knob forces the full path.
func TestPartialDisabled(t *testing.T) {
	s, err := New(leon.DefaultConfig(), Options{Synth: smallSynth, DisablePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	ctrlBefore := s.Controller()
	cfg := s.Config()
	cfg.DCache.SizeBytes = 8 << 10
	if _, err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if s.LastReconfigureWasPartial() {
		t.Error("partial path used despite DisablePartial")
	}
	if s.Controller() == ctrlBefore {
		t.Error("full reconfiguration kept the controller")
	}
}

// TestNonCacheChangeIsFull: touching the CPU config cannot be partial.
func TestNonCacheChangeIsFull(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	cfg := s.Config()
	cfg.CPU.MAC = true
	cfg.DCache.SizeBytes = 2 << 10
	if _, err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if s.LastReconfigureWasPartial() {
		t.Error("CPU change took the partial path")
	}
	if s.PartialReconfigurations() != 0 {
		t.Error("partial counter moved")
	}
}

// TestPartialSwapFlushesDirtyLines: a write-back data cache must write
// its dirty lines to memory before the module is replaced.
func TestPartialSwapFlushesDirtyLines(t *testing.T) {
	cfg := leon.DefaultConfig()
	cfg.DCache.Write = cache.WriteBack
	s := newSystem(t, cfg)
	img, err := s.CompileC(`
int mark = 0;
int main() {
    mark = 0xABCD;
    return mark;
}`, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	// The store may still be dirty in the write-back cache. Swap the
	// cache modules and verify memory has the value.
	next := s.Config()
	next.DCache.SizeBytes = 8 << 10
	next.DCache.Write = cache.WriteBack
	if _, err := s.Reconfigure(next); err != nil {
		t.Fatal(err)
	}
	if !s.LastReconfigureWasPartial() {
		t.Fatal("expected partial path")
	}
	v, err := s.ExitValue(img)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Errorf("exit value after dirty swap = %#x, want 0xABCD", v)
	}
}

func TestOnlyCachesDiffer(t *testing.T) {
	a := leon.DefaultConfig()
	b := a
	if !onlyCachesDiffer(a, b) {
		t.Error("identical configs not cache-only")
	}
	b.DCache.SizeBytes = 8 << 10
	b.ICache.Assoc = 1
	if !onlyCachesDiffer(a, b) {
		t.Error("cache-only change not detected")
	}
	b = a
	b.CPU.NWindows = 16
	if onlyCachesDiffer(a, b) {
		t.Error("window change reported as cache-only")
	}
	b = a
	b.BurstWords = 8
	if onlyCachesDiffer(a, b) {
		t.Error("adapter change reported as cache-only")
	}
}
