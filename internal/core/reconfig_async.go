package core

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/sim"
	"liquidarch/internal/synth"
	"liquidarch/internal/tracing"
)

// Asynchronous reconfiguration: a miss no longer blocks the caller (or
// the board's command queue) for the modelled ≈1 h synthesis. The
// request acquires a ticket from the shared synthesis service and
// returns immediately; the swap is applied by whoever pumps next —
// ReconfigureStatus (wired as the platform's CmdReconfigStatus and
// CmdWaitReconfig handler, so on a server it runs on the board worker
// goroutine where SoC mutation is legal), WaitReconfigure, or the
// ticket watcher once the server's wake hook (or, serverless, the
// watcher itself) gets to it. A full swap is deferred while a run is
// in flight (ReconfigSwapping) and lands at the next pump after the
// run completes; partial (cache-only) swaps land immediately, even
// mid-run.

// pendingReconfig is the one in-flight asynchronous reconfiguration a
// board can have; fields are written under s.mu (the ticket has its
// own synchronization).
type pendingReconfig struct {
	cfg       leon.Config
	key       string
	ticket    *reconfig.Ticket
	coalesced bool // joined another caller's in-flight synthesis
	done      chan struct{}
	span      tracing.SpanHandle // "reconfigure", ends at the terminal state
	synthSpan tracing.SpanHandle // "synthesize" child, ends with the ticket
	synthDone bool
}

// ReconfigureAsync starts (or coalesces onto) an asynchronous swap to
// cfg and returns the ticket status without waiting for synthesis. A
// cached configuration on an idle board applies before returning
// (state ReconfigApplied) — the millisecond path the paper's cache
// exists for. Re-requesting the configuration already in flight is
// idempotent; requesting a different one while a swap is pending is an
// error.
func (s *System) ReconfigureAsync(cfg leon.Config) (netproto.ReconfigStatusResp, error) {
	return s.ReconfigureAsyncCtx(tracing.Ctx{}, cfg)
}

// ReconfigureAsyncCtx is ReconfigureAsync under an exchange-trace
// context: the "reconfigure" span opens here and ends when the swap
// reaches a terminal state, possibly exchanges later.
func (s *System) ReconfigureAsyncCtx(tc tracing.Ctx, cfg leon.Config) (netproto.ReconfigStatusResp, error) {
	if err := cfg.Validate(); err != nil {
		return netproto.ReconfigStatusResp{}, fmt.Errorf("core: invalid configuration: %w", err)
	}
	key := synth.ConfigKey(cfg)
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.pending; p != nil {
		if p.key == key {
			// Idempotent re-request (a retransmission, or a second
			// client asking for the same point).
			return s.pumpLocked(), nil
		}
		st := s.pumpLocked()
		if s.pending != nil {
			return st, fmt.Errorf("core: reconfiguration to %s already in flight", s.pending.key)
		}
		// The pump just retired the previous swap; fall through.
	}
	t, coalesced := s.manager.Acquire(cfg)
	p := &pendingReconfig{
		cfg:       cfg,
		key:       key,
		ticket:    t,
		coalesced: coalesced,
		done:      make(chan struct{}),
		span:      tc.Start("reconfigure"),
	}
	if !t.CacheHit() {
		p.synthSpan = p.span.Ctx().Start("synthesize")
	}
	s.pending = p
	st := s.pumpLocked()
	if !st.Terminal() {
		go s.watchTicket(p)
	}
	return st, nil
}

// watchTicket waits for the pending ticket's synthesis to finish, then
// hands the swap to the board worker via the platform's wake hook — or
// pumps directly when no server is mounted.
func (s *System) watchTicket(p *pendingReconfig) {
	<-p.ticket.Done()
	if s.platform == nil || !s.platform.NotifyReconfig() {
		s.ReconfigureStatus()
	}
}

// ReconfigureStatus reports the asynchronous reconfiguration state,
// pumping first: a completed ticket whose swap is still outstanding is
// applied now if the board allows it. With nothing in flight it
// reports the last terminal outcome (ReconfigNone before any). Wired
// as the platform's ReconfigStatusFn, so CmdReconfigStatus and
// CmdWaitReconfig polls — and the server's wake-driven pumps — answer
// through here on the board worker goroutine.
func (s *System) ReconfigureStatus() netproto.ReconfigStatusResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pumpLocked()
}

// pumpLocked advances the pending reconfiguration as far as the board
// allows (s.mu held) and returns the current status.
func (s *System) pumpLocked() netproto.ReconfigStatusResp {
	p := s.pending
	if p == nil {
		return s.lastReconfig
	}
	switch p.ticket.State() {
	case reconfig.TicketQueued:
		return netproto.ReconfigStatusResp{Status: netproto.StatusOK, State: netproto.ReconfigQueued}
	case reconfig.TicketSynthesizing:
		return netproto.ReconfigStatusResp{Status: netproto.StatusOK, State: netproto.ReconfigSynthesizing}
	}
	img, err := p.ticket.Image()
	s.endSynthSpanLocked(p, err)
	if err != nil {
		return s.finishPendingLocked(p, false, false, err)
	}
	hit := p.ticket.CacheHit()
	partial, aerr := s.applyLocked(p.cfg, img, hit, !hit && !p.coalesced)
	if aerr == errRunInFlight {
		// Image ready, board busy: the swap lands at the next pump
		// after the run completes (the server pumps on run-done).
		return netproto.ReconfigStatusResp{Status: netproto.StatusOK, State: netproto.ReconfigSwapping, CacheHit: hit}
	}
	return s.finishPendingLocked(p, hit, partial, aerr)
}

// endSynthSpanLocked closes the pending swap's "synthesize" child span
// exactly once, when its ticket completes.
func (s *System) endSynthSpanLocked(p *pendingReconfig, err error) {
	if p.synthDone || !p.synthSpan.On() {
		p.synthDone = true
		return
	}
	p.synthDone = true
	status := "ok"
	if err != nil {
		status = "error"
	}
	p.synthSpan.EndAttrs(
		tracing.A("coalesced", fmt.Sprintf("%t", p.coalesced)),
		tracing.A("status", status),
	)
}

// finishPendingLocked retires the pending swap with a terminal status,
// records it for later polls, ends its span and wakes waiters.
func (s *System) finishPendingLocked(p *pendingReconfig, hit, partial bool, err error) netproto.ReconfigStatusResp {
	st := netproto.ReconfigStatusResp{Status: netproto.StatusOK, State: netproto.ReconfigApplied, CacheHit: hit, Partial: partial}
	if err != nil {
		st = netproto.ReconfigStatusResp{Status: netproto.StatusError, State: netproto.ReconfigFailed, CacheHit: hit, Msg: err.Error()}
	}
	s.lastReconfig = st
	s.pending = nil
	if p.span.On() {
		outcome := "miss"
		if hit {
			outcome = "hit"
		}
		kind := "full"
		if partial {
			kind = "partial"
		}
		status := "ok"
		if err != nil {
			status = "error"
		}
		p.span.EndAttrs(
			tracing.A("cache", outcome),
			tracing.A("kind", kind),
			tracing.A("status", status),
		)
	}
	close(p.done)
	return st
}

// WaitReconfigure blocks until the asynchronous reconfiguration
// reaches a terminal state (or ctx ends), pumping the deferred swap
// itself so it completes even without a server mounted. It returns the
// terminal status; the error is non-nil only for ctx expiry.
func (s *System) WaitReconfigure(ctx context.Context) (netproto.ReconfigStatusResp, error) {
	st := s.ReconfigureStatus()
	if st.Terminal() || st.State == netproto.ReconfigNone {
		return st, nil
	}
	clk := sim.Or(s.opts.Clock)
	for {
		select {
		case <-clk.After(time.Millisecond):
			if st := s.ReconfigureStatus(); st.Terminal() || st.State == netproto.ReconfigNone {
				return st, nil
			}
		case <-ctx.Done():
			return s.ReconfigureStatus(), ctx.Err()
		}
	}
}

// Prewarm acquires synthesis tickets for every configuration without
// swapping any of them in — the runtime face of Pregenerate, feeding
// the shared pool and returning how many tickets were queued (or were
// already in flight/cached). Callers observe completion through the
// liquid_reconfig_* queue/inflight metrics or by reconfiguring.
func (s *System) Prewarm(cfgs []leon.Config) int {
	for _, cfg := range cfgs {
		s.manager.Acquire(cfg)
	}
	return len(cfgs)
}

// reconfigAsyncFromSpec is the rev-6 CmdReconfigure handler: a
// {"prewarm":[spec,...]} body queues a sweep on the synthesis pool; a
// plain spec body starts (or coalesces onto) an asynchronous swap. The
// returned status is compressed into the RunReport-shaped ack.
func (s *System) reconfigAsyncFromSpec(tc tracing.Ctx, blob []byte) (netproto.ReconfigStatusResp, error) {
	var pw struct {
		Prewarm []Spec `json:"prewarm"`
	}
	if err := json.Unmarshal(blob, &pw); err == nil && len(pw.Prewarm) > 0 {
		base := s.Config()
		cfgs := make([]leon.Config, 0, len(pw.Prewarm))
		for _, sp := range pw.Prewarm {
			cfg, err := sp.ToConfig(base)
			if err != nil {
				return netproto.ReconfigStatusResp{}, err
			}
			cfgs = append(cfgs, cfg)
		}
		n := s.Prewarm(cfgs)
		return netproto.ReconfigStatusResp{
			Status: netproto.StatusOK,
			State:  netproto.ReconfigQueued,
			Queued: uint32(n),
		}, nil
	}
	var spec Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return netproto.ReconfigStatusResp{}, fmt.Errorf("core: bad reconfigure spec: %w", err)
	}
	cfg, err := spec.ToConfig(s.Config())
	if err != nil {
		return netproto.ReconfigStatusResp{}, err
	}
	return s.ReconfigureAsyncCtx(tc, cfg)
}
