package core

import (
	"encoding/json"
	"fmt"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/trace"
)

// tracedControl is the LEON control interface the FPX platform sees:
// it delegates to the System's current controller (so reconfiguration
// is transparent) and records an instrumented trace around every
// networked execution — the paper's "streaming of instrumented traces
// to the Trace Analyzer" made pullable via CmdTraceReport.
type tracedControl struct {
	sys *System
}

func (t tracedControl) State() leon.State          { return t.sys.Controller().State() }
func (t tracedControl) LastResult() leon.RunResult { return t.sys.Controller().LastResult() }

func (t tracedControl) LoadProgram(addr uint32, image []byte) error {
	return t.sys.Controller().LoadProgram(addr, image)
}

func (t tracedControl) ReadMemory(addr uint32, n int) ([]byte, error) {
	return t.sys.ReadMemory(addr, n)
}

func (t tracedControl) WriteMemory(addr uint32, p []byte) error {
	return t.sys.Controller().WriteMemory(addr, p)
}

func (t tracedControl) Execute(entry uint32, maxCycles uint64) (leon.RunResult, error) {
	s := t.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := trace.NewRecorder()
	rec.MaxEvents = 1 << 20
	rec.Attach(s.soc.CPU)
	defer rec.Detach()
	start := time.Now()
	res, err := s.ctrl.Execute(entry, maxCycles)
	s.observeRun(res, time.Since(start), err)
	s.lastTrace = rec
	return res, err
}

// LastTrace returns the recorder from the most recent networked run
// (nil before any).
func (s *System) LastTrace() *trace.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace
}

// TraceReport is the JSON summary served by CmdTraceReport.
type TraceReport struct {
	Instructions    uint64          `json:"instructions"`
	MemEvents       int             `json:"mem_events"`
	MemReads        int             `json:"mem_reads"`
	MemWrites       int             `json:"mem_writes"`
	Dropped         uint64          `json:"dropped"`
	WorkingSetLines int             `json:"working_set_lines"`
	WorkingSetBytes int             `json:"working_set_bytes"`
	HotSpots        []trace.HotSpot `json:"hot_spots"`
}

// traceReportJSON summarizes the last networked run's trace.
func (s *System) traceReportJSON() ([]byte, error) {
	rec := s.LastTrace()
	if rec == nil {
		return nil, fmt.Errorf("core: no traced run yet")
	}
	lines, bytes := rec.WorkingSet(32)
	rep := TraceReport{
		Instructions:    rec.Instructions(),
		MemEvents:       len(rec.MemEvents()),
		Dropped:         rec.Dropped(),
		WorkingSetLines: lines,
		WorkingSetBytes: bytes,
		HotSpots:        rec.HotSpots(10),
	}
	for _, e := range rec.MemEvents() {
		if e.Write {
			rep.MemWrites++
		} else {
			rep.MemReads++
		}
	}
	return json.Marshal(rep)
}
