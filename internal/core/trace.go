package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/trace"
	"liquidarch/internal/tracing"
)

// tracedControl is the LEON control interface the FPX platform sees:
// it delegates to the System's current board actor (so reconfiguration
// is transparent) and records an instrumented trace around every
// networked execution — the paper's "streaming of instrumented traces
// to the Trace Analyzer" made pullable via CmdTraceReport. The trace
// recorder is attached and detached by the run hooks ON the actor
// goroutine, so it observes exactly the run it wraps, and the After
// hook completes before the Done state is visible to pollers — a
// CmdTraceReport sent right after a successful result collect always
// sees this run's trace.
type tracedControl struct {
	sys *System
}

func (t tracedControl) State() leon.State          { return t.sys.async().State() }
func (t tracedControl) Cycles() uint64             { return t.sys.async().Cycles() }
func (t tracedControl) LastResult() leon.RunResult { return t.sys.async().LastResult() }

// SetRunDoneHook makes tracedControl an fpx.RunDoneNotifier, so a
// server mounted on this platform can park CmdWaitResult exchanges.
// The System re-installs the hook on every fresh board actor a full
// reconfiguration spawns.
func (t tracedControl) SetRunDoneHook(fn func()) { t.sys.setRunDoneHook(fn) }

func (t tracedControl) LoadProgram(addr uint32, image []byte) error {
	return t.sys.async().LoadProgram(addr, image)
}

func (t tracedControl) ReadMemory(addr uint32, n int) ([]byte, error) {
	return t.sys.ReadMemory(addr, n)
}

func (t tracedControl) WriteMemory(addr uint32, p []byte) error {
	return t.sys.async().WriteMemory(addr, p)
}

// netRunOpts builds the per-run hooks for a networked execution:
// attach a bounded recorder at the handoff, detach and publish it (and
// the run telemetry) at completion. tc, when enabled, wraps the whole
// asynchronous run in a "run" span — opened here at the handoff,
// closed by the After hook on the actor goroutine when the run
// completes — whose child context feeds the actor's per-slice spans.
func (s *System) netRunOpts(tc tracing.Ctx) leon.RunOptions {
	var rec *trace.Recorder
	runSpan := tc.Start("run")
	return leon.RunOptions{
		Trace: runSpan.Ctx(),
		Before: func(c *leon.Controller) {
			rec = trace.NewRecorder()
			rec.MaxEvents = 1 << 20
			rec.Attach(c.SoC().CPU)
		},
		After: func(c *leon.Controller, res leon.RunResult, wall time.Duration, err error) {
			rec.Detach()
			s.traceMu.Lock()
			s.lastTrace = rec
			s.traceMu.Unlock()
			s.observeRun(res, wall, err)
			if runSpan.On() {
				status := "ok"
				switch {
				case res.Faulted:
					status = "fault"
				case err != nil:
					status = "error"
				}
				runSpan.EndAttrs(
					tracing.A("cycles", strconv.FormatUint(res.Cycles, 10)),
					tracing.A("status", status),
				)
			}
		},
	}
}

func (t tracedControl) Start(entry uint32, maxCycles uint64) error {
	s := t.sys
	return s.async().StartOpts(entry, maxCycles, s.netRunOpts(tracing.Ctx{}))
}

// StartCtx is the trace-aware handoff the FPX platform uses when the
// exchange carries a trace context (fpx.CtxStarter).
func (t tracedControl) StartCtx(tc tracing.Ctx, entry uint32, maxCycles uint64) error {
	s := t.sys
	return s.async().StartOpts(entry, maxCycles, s.netRunOpts(tc))
}

func (t tracedControl) CollectResult() (leon.RunResult, error) {
	return t.sys.async().CollectResult()
}

func (t tracedControl) Execute(entry uint32, maxCycles uint64) (leon.RunResult, error) {
	s := t.sys
	return s.async().ExecuteOpts(entry, maxCycles, s.netRunOpts(tracing.Ctx{}))
}

// ExecuteCtx is the trace-aware blocking path (fpx.CtxExecutor).
func (t tracedControl) ExecuteCtx(tc tracing.Ctx, entry uint32, maxCycles uint64) (leon.RunResult, error) {
	s := t.sys
	return s.async().ExecuteOpts(entry, maxCycles, s.netRunOpts(tc))
}

// LastTrace returns the recorder from the most recent networked run
// (nil before any).
func (s *System) LastTrace() *trace.Recorder {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.lastTrace
}

// TraceReport is the JSON summary served by CmdTraceReport.
type TraceReport struct {
	Instructions    uint64          `json:"instructions"`
	MemEvents       int             `json:"mem_events"`
	MemReads        int             `json:"mem_reads"`
	MemWrites       int             `json:"mem_writes"`
	Dropped         uint64          `json:"dropped"`
	WorkingSetLines int             `json:"working_set_lines"`
	WorkingSetBytes int             `json:"working_set_bytes"`
	HotSpots        []trace.HotSpot `json:"hot_spots"`
}

// traceReportJSON summarizes the last networked run's trace.
func (s *System) traceReportJSON() ([]byte, error) {
	rec := s.LastTrace()
	if rec == nil {
		return nil, fmt.Errorf("core: no traced run yet")
	}
	lines, bytes := rec.WorkingSet(32)
	rep := TraceReport{
		Instructions:    rec.Instructions(),
		MemEvents:       len(rec.MemEvents()),
		Dropped:         rec.Dropped(),
		WorkingSetLines: lines,
		WorkingSetBytes: bytes,
		HotSpots:        rec.HotSpots(10),
	}
	for _, e := range rec.MemEvents() {
		if e.Write {
			rep.MemWrites++
		} else {
			rep.MemReads++
		}
	}
	return json.Marshal(rep)
}
