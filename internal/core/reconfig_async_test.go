package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/synth"
)

// slowSynth keeps the modelled ≈1 h visible for tens of milliseconds
// of real time, so tests can observe the non-terminal ticket states.
var slowSynth = synth.Options{BitstreamBytes: 256, TimeScale: 1e-5}

func cfg8K() leon.Config {
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = 8 << 10
	return cfg
}

// TestReconfigureAsyncLifecycle: a miss acks non-terminally, the
// status polls pump it to Applied, and the configuration lands.
func TestReconfigureAsyncLifecycle(t *testing.T) {
	s, err := New(leon.DefaultConfig(), Options{Synth: slowSynth})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	st, err := s.ReconfigureAsync(cfg8K())
	if err != nil {
		t.Fatal(err)
	}
	if st.Terminal() {
		t.Fatalf("miss acked terminally: %+v", st)
	}
	// Re-requesting the same configuration is idempotent.
	again, err := s.ReconfigureAsync(cfg8K())
	if err != nil {
		t.Fatalf("idempotent re-request: %v (%+v)", err, again)
	}
	// A different configuration while one is in flight is refused.
	other := leon.DefaultConfig()
	other.DCache.SizeBytes = 16 << 10
	if _, err := s.ReconfigureAsync(other); err == nil {
		t.Error("conflicting reconfigure not refused")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.WaitReconfigure(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != netproto.ReconfigApplied || final.CacheHit {
		t.Fatalf("final state %+v, want applied miss", final)
	}
	if got := s.Config().DCache.SizeBytes; got != 8<<10 {
		t.Errorf("D$ after async reconfigure = %d", got)
	}
	// The terminal outcome stays visible to later polls.
	if st := s.ReconfigureStatus(); st.State != netproto.ReconfigApplied {
		t.Errorf("post-completion status %+v", st)
	}

	// A second swap to the now-cached configuration applies inside the
	// ack — the millisecond path.
	if _, err := s.ReconfigureAsync(leon.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if st, err := s.WaitReconfigure(ctx); err != nil || st.State != netproto.ReconfigApplied {
		t.Fatalf("swap back: %v %+v", err, st)
	}
	st, err = s.ReconfigureAsync(cfg8K())
	if err != nil {
		t.Fatal(err)
	}
	if st.State != netproto.ReconfigApplied || !st.CacheHit {
		t.Errorf("cached reconfigure acked %+v, want immediate applied hit", st)
	}
}

// TestReconfigureAsyncDedup is the tentpole's dedup proof at the core
// layer: N boards sharing one reconfiguration manager all request the
// same configuration concurrently, and exactly one synthesis runs.
func TestReconfigureAsyncDedup(t *testing.T) {
	const boards = 8
	m := reconfig.NewManagerWorkers(reconfig.NewCache(0), slowSynth, 4)
	// Warm the shared cache with the boot configuration so New does
	// not count synthesis runs of its own.
	if err := m.Pregenerate([]leon.Config{leon.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	base := m.Stats().SynthRuns

	systems := make([]*System, boards)
	for i := range systems {
		s, err := New(leon.DefaultConfig(), Options{Synth: slowSynth, Manager: m})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		systems[i] = s
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, boards)
	for i, s := range systems {
		wg.Add(1)
		go func(i int, s *System) {
			defer wg.Done()
			<-start
			if _, err := s.ReconfigureAsync(cfg8K()); err != nil {
				errs[i] = err
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			st, err := s.WaitReconfigure(ctx)
			if err != nil {
				errs[i] = err
			} else if st.State != netproto.ReconfigApplied {
				t.Errorf("board %d finished %+v", i, st)
			}
		}(i, s)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("board %d: %v", i, err)
		}
	}
	ms := m.Stats()
	if got := ms.SynthRuns - base; got != 1 {
		t.Errorf("synthesis ran %d times for %d concurrent boards, want exactly 1", got, boards)
	}
	for i, s := range systems {
		if got := s.Config().DCache.SizeBytes; got != 8<<10 {
			t.Errorf("board %d D$ = %d after dedup swap", i, got)
		}
	}
}

// TestPersistentCacheRestart is the tentpole's persistence proof: a
// restarted System backed by the same -cache-dir serves every prior
// configuration as a hit — zero new synthesis — with bit-identical
// images.
func TestPersistentCacheRestart(t *testing.T) {
	dir := t.TempDir()
	fast := synth.Options{BitstreamBytes: 256}

	s1, err := New(leon.DefaultConfig(), Options{Synth: fast, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Reconfigure(cfg8K()); err != nil {
		t.Fatal(err)
	}
	firstBits := append([]byte(nil), s1.ActiveImage().Bitstream...)
	firstRuns := s1.Manager().Stats().SynthRuns
	if firstRuns != 2 { // boot config + 8 KB point
		t.Fatalf("first life ran %d syntheses", firstRuns)
	}
	s1.Close()

	s2, err := New(leon.DefaultConfig(), Options{Synth: fast, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hit, err := s2.Reconfigure(cfg8K())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("restarted node missed on a persisted configuration")
	}
	if got := s2.Manager().Stats().SynthRuns; got != 0 {
		t.Errorf("restarted node ran %d syntheses, want 0", got)
	}
	cs := s2.Manager().Cache().Stats()
	if cs.PersistLoaded != 2 || cs.PersistHits < 2 {
		t.Errorf("persist stats loaded=%d hits=%d, want 2 loaded and ≥2 hits", cs.PersistLoaded, cs.PersistHits)
	}
	if !bytesEqual(s2.ActiveImage().Bitstream, firstBits) {
		t.Error("warm-loaded bitstream differs from the one synthesized in the first life")
	}

	// Bit-identical behaviour, not just bit-identical images: the same
	// program produces the same run report on the restarted node.
	img1, err := s2.BuildASM("main:\n\tretl\n\tmov 7, %o0\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s2.Run(img1, 0)
	if err != nil || res.Faulted {
		t.Fatalf("run on warm-loaded config: %v %+v", err, res)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
