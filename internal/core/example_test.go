package core_test

import (
	"fmt"
	"log"

	"liquidarch/internal/archgen"
	"liquidarch/internal/core"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/synth"
)

// Example shows the complete local flow: instantiate a liquid node,
// compile a C program, run it under the hardware cycle counter and
// read the result back.
func Example() {
	sys, err := core.New(leon.DefaultConfig(), core.Options{
		Synth: synth.Options{BitstreamBytes: 1024},
	})
	if err != nil {
		log.Fatal(err)
	}
	img, err := sys.CompileC("int main() { return 6 * 7; }", lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(img, 0)
	if err != nil || res.Faulted {
		log.Fatal(err)
	}
	v, _ := sys.ExitValue(img)
	fmt.Println("exit value:", v)
	// Output: exit value: 42
}

// ExampleSystem_Reconfigure demonstrates the liquid step: swapping the
// data cache at runtime while the loaded program survives in the board
// memory.
func ExampleSystem_Reconfigure() {
	sys, err := core.New(leon.DefaultConfig(), core.Options{
		Synth: synth.Options{BitstreamBytes: 1024},
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := sys.Config()
	cfg.DCache.SizeBytes = 8 << 10
	if _, err := sys.Reconfigure(cfg); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dcache:", sys.Config().DCache.SizeBytes)
	fmt.Println("partial:", sys.LastReconfigureWasPartial())
	// Output:
	// dcache: 8192
	// partial: true
}

// ExampleSystem_AutoTune runs the Fig. 1 loop on the paper's kernel.
func ExampleSystem_AutoTune() {
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = 1 << 10
	sys, err := core.New(cfg, core.Options{Synth: synth.Options{BitstreamBytes: 1024}})
	if err != nil {
		log.Fatal(err)
	}
	img, err := sys.CompileC(`
int count[1024];
int main() {
    int i; int x = 0;
    for (i = 0; i < 65536; i = i + 32) x += count[i % 1024];
    return x;
}`, lcc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.AutoTune(img, archgen.PaperSpace(cfg), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tuned dcache:", rep.TunedCfg.DCache.SizeBytes)
	fmt.Println("faster:", rep.Speedup > 1.2)
	// Output:
	// tuned dcache: 4096
	// faster: true
}
