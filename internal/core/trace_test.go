package core

import (
	"encoding/json"
	"testing"
	"time"

	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
)

// TestNetworkTraceReport: programs run through the platform are traced
// and the summary is pullable via CmdTraceReport.
func TestNetworkTraceReport(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	p := s.Platform()

	// Before any run: a clean error.
	resps := p.HandlePayload(netproto.Packet{Command: netproto.CmdTraceReport}.Marshal())
	if resps[0].Command != netproto.CmdError {
		t.Fatal("trace before any run did not error")
	}

	// Load and start through the platform (as a remote client would).
	img, err := s.CompileC(`
int buf[64];
int main() {
    int i;
    int x = 0;
    for (i = 0; i < 64; i++) x += buf[i];
    return x;
}`, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range netproto.ChunkImage(img.Origin, img.Code) {
		p.HandlePayload(netproto.Packet{Command: netproto.CmdLoadProgram, Body: ch.Marshal()}.Marshal())
	}
	done := make(chan struct{})
	if !p.SetRunDoneHook(func() { close(done) }) {
		t.Fatal("controller does not support the run-done hook")
	}
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdStartLEON, Body: netproto.StartReq{}.Marshal()}.Marshal())
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil || rep.Status != netproto.StatusRunning {
		t.Fatalf("start ack: %v %+v", err, rep)
	}
	// Completion is signaled through the run-done hook — no sleep
	// polling — then the report is collected with one CmdResult, as a
	// remote client would.
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("run never completed")
	}
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdResult}.Marshal())
	rep, err = netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != netproto.StatusOK {
		t.Fatalf("result: %+v", rep)
	}

	// Pull the trace summary.
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdTraceReport}.Marshal())
	if resps[0].Command != netproto.CmdTraceReport|netproto.RespFlag {
		t.Fatalf("trace response command %#x", resps[0].Command)
	}
	var tr TraceReport
	if err := json.Unmarshal(resps[0].Body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Instructions == 0 || tr.MemEvents == 0 || len(tr.HotSpots) == 0 {
		t.Errorf("empty trace report: %+v", tr)
	}
	if tr.MemReads+tr.MemWrites != tr.MemEvents {
		t.Errorf("read/write split %d+%d != %d", tr.MemReads, tr.MemWrites, tr.MemEvents)
	}
	// The 64-int array plus locals: working set is a couple dozen lines.
	if tr.WorkingSetLines < 8 || tr.WorkingSetLines > 64 {
		t.Errorf("working set = %d lines", tr.WorkingSetLines)
	}
	if s.LastTrace() == nil {
		t.Error("LastTrace nil after networked run")
	}
}
