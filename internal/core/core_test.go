package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"liquidarch/internal/archgen"
	"liquidarch/internal/cache"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/netproto"
	"liquidarch/internal/synth"
)

var smallSynth = synth.Options{BitstreamBytes: 256}

const fig7Source = `
int count[1024];
int result = 0;
int main() {
    int i;
    int address;
    int x = 0;
    for (i = 0; i < 65536; i = i + 32) {
        address = i % 1024;
        x = x + count[address];
    }
    result = x;
    return x;
}`

func newSystem(t *testing.T, cfg leon.Config) *System {
	t.Helper()
	s, err := New(cfg, Options{Synth: smallSynth})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCompileRunExitValue(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.CompileC("int main() { return 1234; }", lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(img, 0)
	if err != nil || res.Faulted {
		t.Fatalf("run: %v %+v", err, res)
	}
	v, err := s.ExitValue(img)
	if err != nil || v != 1234 {
		t.Fatalf("exit value = %d, %v", v, err)
	}
}

func TestBuildASM(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.BuildASM("main:\n\tretl\n\tmov 9, %o0\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.ExitValue(img); v != 9 {
		t.Errorf("exit = %d", v)
	}
}

// TestReconfigurePreservesMemory: the board memories live outside the
// FPGA, so program and data survive an image swap.
func TestReconfigurePreservesMemory(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.CompileC("int main() { return 77; }", lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	cfg.DCache.SizeBytes = 16 << 10
	hit, err := s.Reconfigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("fresh config claimed a cache hit")
	}
	if s.Reconfigurations() != 1 || s.LastReconfigureHit() {
		t.Error("reconfiguration bookkeeping wrong")
	}
	// Exit value written before the swap is still readable.
	if v, err := s.ExitValue(img); err != nil || v != 77 {
		t.Errorf("exit value after reconfigure = %d, %v", v, err)
	}
	// And the program re-runs on the new fabric without reloading.
	res, err := s.Controller().Execute(img.Entry, 0)
	if err != nil || res.Faulted {
		t.Fatalf("re-run after reconfigure: %v %+v", err, res)
	}
	// Swapping back hits the cache.
	hit, err = s.Reconfigure(leon.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("return to cached config missed")
	}
}

// TestCacheSizeChangesCycles is E1 at the System level: the same
// binary runs much slower on the 1 KB configuration.
func TestCacheSizeChangesCycles(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.CompileC(fig7Source, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[int]uint64{}
	for _, size := range []int{1 << 10, 16 << 10} {
		cfg := s.Config()
		cfg.DCache.SizeBytes = size
		if _, err := s.Reconfigure(cfg); err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(img, 0)
		if err != nil || res.Faulted {
			t.Fatalf("size %d: %v %+v", size, err, res)
		}
		cycles[size] = res.Cycles
	}
	// Every Fig. 7 iteration conflict-misses at 1 KB and hits at
	// 16 KB; amortized over the loop's other work that is a ≥20%
	// cycle-count step (the miss counts themselves go 100% → ~0).
	if cycles[1<<10] < cycles[16<<10]*6/5 {
		t.Errorf("1KB (%d cycles) not clearly slower than 16KB (%d)",
			cycles[1<<10], cycles[16<<10])
	}
}

// TestAutoTune runs the whole Fig. 1 loop: measure, analyze, pick a
// configuration, reconfigure, re-measure — and must find a real
// speedup for the conflict-missing kernel.
func TestAutoTune(t *testing.T) {
	cfg := leon.DefaultConfig()
	cfg.DCache.SizeBytes = 1 << 10 // deliberately bad starting point
	s := newSystem(t, cfg)
	img, err := s.CompileC(fig7Source, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.AutoTune(img, archgen.PaperSpace(cfg), 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TunedCfg.DCache.SizeBytes < 4<<10 {
		t.Errorf("autotune picked %d-byte D$", rep.TunedCfg.DCache.SizeBytes)
	}
	if rep.Speedup < 1.2 {
		t.Errorf("speedup = %.2f, want > 1.2", rep.Speedup)
	}
	if len(rep.Candidates) != 5 {
		t.Errorf("%d candidates", len(rep.Candidates))
	}
	if rep.Baseline.Cycles <= rep.Tuned.Cycles {
		t.Error("tuned run not faster in cycles")
	}
	if s.Reconfigurations() != 1 {
		t.Errorf("reconfigurations = %d", s.Reconfigurations())
	}
}

// TestNetworkReconfigure drives CmdReconfigure/CmdGetConfig through
// the platform, as a remote client would.
func TestNetworkReconfigure(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	p := s.Platform()

	// GetConfig reports the active spec.
	resps := p.HandlePayload(netproto.Packet{Command: netproto.CmdGetConfig}.Marshal())
	if len(resps) != 1 {
		t.Fatalf("%d responses", len(resps))
	}
	var spec Spec
	if err := json.Unmarshal(resps[0].Body, &spec); err != nil {
		t.Fatal(err)
	}
	if spec.DCacheBytes != 4<<10 {
		t.Errorf("reported D$ = %d", spec.DCacheBytes)
	}

	// Reconfigure to 8 KB over the wire. Since rev 6 the ack is
	// immediate — a miss reports its ticket state in the spare fields —
	// and the client follows up with CmdReconfigStatus until terminal.
	// Synthesis completion is signaled through the reconfigure wake
	// hook (this test plays the server's role); each wake is answered
	// with one status poll, which also pumps the swap.
	wake := make(chan struct{}, 1)
	if !p.SetReconfigWakeHook(func() {
		select {
		case wake <- struct{}{}:
		default:
		}
	}) {
		t.Fatal("platform does not support asynchronous reconfiguration")
	}
	blob, _ := json.Marshal(Spec{DCacheBytes: 8 << 10})
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdReconfigure, Body: blob}.Marshal())
	rep, err := netproto.ParseRunReport(resps[0].Body)
	if err != nil {
		t.Fatalf("reconfigure ack: %v", err)
	}
	st := netproto.ReconfigAckInfo(rep)
	for i := 0; !st.Terminal(); i++ {
		if i > 100 {
			t.Fatalf("reconfigure never reached a terminal state: %+v", st)
		}
		select {
		case <-wake:
		case <-time.After(100 * time.Millisecond):
			// Fallback pump: the wake fires on synthesis completion; a
			// swap deferred past that point lands on a later poll.
		}
		resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdReconfigStatus}.Marshal())
		if st, err = netproto.ParseReconfigStatusResp(resps[0].Body); err != nil {
			t.Fatalf("reconfig status: %v", err)
		}
	}
	if st.State != netproto.ReconfigApplied {
		t.Fatalf("reconfigure failed: %+v", st)
	}
	if got := s.Config().DCache.SizeBytes; got != 8<<10 {
		t.Errorf("D$ after network reconfigure = %d", got)
	}
	// Bad spec errors cleanly.
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdReconfigure, Body: []byte("{bad json")}.Marshal())
	if resps[0].Command != netproto.CmdError {
		t.Error("bad spec did not error")
	}
	blob, _ = json.Marshal(Spec{DCacheBytes: 3000})
	resps = p.HandlePayload(netproto.Packet{Command: netproto.CmdReconfigure, Body: blob}.Marshal())
	if resps[0].Command != netproto.CmdError {
		t.Error("invalid config did not error")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cfg := leon.DefaultConfig()
	cfg.CPU.MAC = true
	cfg.CPU.PipelineDepth = 6
	cfg.DCache.Write = cache.WriteBack
	cfg.DCache.Assoc = 2
	spec := SpecFromConfig(cfg)
	got, err := spec.ToConfig(leon.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.CPU.MAC != true || got.CPU.Depth() != 6 ||
		got.DCache.Write != cache.WriteBack || got.DCache.Assoc != 2 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	// Depth 6 implies a branch penalty in the timing table.
	if got.CPU.Timing.Branch != 1 {
		t.Errorf("timing not derived: branch = %d", got.CPU.Timing.Branch)
	}
	// Partial specs only touch named fields.
	partial := Spec{DCacheBytes: 2 << 10}
	got, err = partial.ToConfig(leon.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got.DCache.SizeBytes != 2<<10 || got.ICache != leon.DefaultConfig().ICache {
		t.Errorf("partial spec: %+v", got)
	}
	// JSON form is stable.
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if *back.MAC != true || back.DCacheBytes != 4<<10 {
		t.Errorf("json round trip: %+v", back)
	}
}

func TestUARTPlumbing(t *testing.T) {
	var uart bytes.Buffer
	s, err := New(leon.DefaultConfig(), Options{UARTOut: &uart, Synth: smallSynth})
	if err != nil {
		t.Fatal(err)
	}
	img, err := s.CompileC(`
int main() {
    *(unsigned*)0x80000070 = 'x';
    return 0;
}`, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	if uart.String() != "x" {
		t.Errorf("uart = %q", uart.String())
	}
	// UART survives reconfiguration.
	cfg := s.Config()
	cfg.DCache.SizeBytes = 2 << 10
	if _, err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	if uart.String() != "xx" {
		t.Errorf("uart after reconfigure = %q", uart.String())
	}
}

func TestMACReconfigurationEnablesBuiltin(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	src := `int main() { return __mac(5, 6, 7); }`
	img, err := s.CompileC(src, lcc.Options{MAC: true})
	if err != nil {
		t.Fatal(err)
	}
	// On the base config the MAC encoding is illegal → fault.
	res, err := s.Run(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Faulted || res.TT != 0x02 {
		t.Fatalf("expected illegal-instruction fault, got %+v", res)
	}
	// Reconfigure with the MAC unit: same binary now works.
	cfg := s.Config()
	cfg.CPU.MAC = true
	if _, err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	res, err = s.Run(img, 0)
	if err != nil || res.Faulted {
		t.Fatalf("MAC run: %v %+v", err, res)
	}
	if v, _ := s.ExitValue(img); v != 47 {
		t.Errorf("__mac(5,6,7) = %d, want 47", v)
	}
}

func TestActiveImageAndManager(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img := s.ActiveImage()
	if img == nil || img.Key != synth.ConfigKey(leon.DefaultConfig()) {
		t.Error("active image wrong")
	}
	if s.Manager().Cache().Len() != 1 {
		t.Errorf("cache len = %d", s.Manager().Cache().Len())
	}
	if s.SoC() == nil || s.Controller() == nil {
		t.Error("accessors returned nil")
	}
}

func TestExitValueWithoutCrt0(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.CompileC("int main() { return 0; }", lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img.Symbols = map[string]uint32{} // simulate a standalone image
	if _, err := s.ExitValue(img); err == nil {
		t.Error("missing __exit_value not reported")
	}
}
