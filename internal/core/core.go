// Package core is the Liquid Architecture system — the paper's primary
// contribution assembled from its substrates. A System owns one FPX
// node whose processor microarchitecture is liquid: it can be
// instantiated at any point of the configuration space, loaded with
// programs (compiled from C or assembled), executed with a hardware
// cycle counter, traced, and reconfigured at runtime from the
// reconfiguration cache of pre-synthesized images, locally or over the
// network (Fig. 1).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"liquidarch/internal/archgen"
	"liquidarch/internal/cache"
	"liquidarch/internal/cpu"
	"liquidarch/internal/fpx"
	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
	"liquidarch/internal/link"
	"liquidarch/internal/netproto"
	"liquidarch/internal/reconfig"
	"liquidarch/internal/sim"
	"liquidarch/internal/synth"
	"liquidarch/internal/trace"
	"liquidarch/internal/tracing"
)

// Options configures a System beyond the processor configuration.
type Options struct {
	// UARTOut receives the processor's serial output (nil discards).
	UARTOut io.Writer
	// Synth tunes the synthesis model.
	Synth synth.Options
	// CacheCapacity bounds the reconfiguration cache (0 = unbounded).
	CacheCapacity int
	// CacheDir, when set, backs the reconfiguration cache with a
	// persistent content-addressed store: previously synthesized
	// images are warm-loaded at startup and every new synthesis is
	// written through, so a restarted node keeps its hour-equivalents
	// of tool time.
	CacheDir string
	// SynthWorkers bounds the synthesis pool (0 = GOMAXPROCS).
	SynthWorkers int
	// Manager, when set, is a shared reconfiguration manager: every
	// board of a multi-board node passes the same one, so their
	// requests dedup onto one synthesis pool and one cache.
	// CacheCapacity, CacheDir and SynthWorkers are then ignored.
	Manager *reconfig.Manager
	// DisablePartial forces every reconfiguration through a full
	// image load even when only the cache modules changed (ablation
	// of the partial-runtime-reconfiguration path of [2]).
	DisablePartial bool
	// IP and Port identify the FPX node on the network (defaults
	// 10.0.0.2:5001).
	IP   [4]byte
	Port uint16
	// Clock is the system's time source (nil = real time). Simulated
	// nodes inject a virtual clock; it paces run wall-duration
	// measurement, reconfiguration waits and the modelled synthesis
	// delay.
	Clock sim.Clock
}

func (o Options) withDefaults() Options {
	if o.IP == ([4]byte{}) {
		o.IP = [4]byte{10, 0, 0, 2}
	}
	if o.Port == 0 {
		o.Port = 5001
	}
	return o
}

// System is one liquid-architecture FPX node. Execution is owned by a
// per-board actor goroutine (leon.AsyncController): every run, load
// and memory access is serialized through it, so the SoC is
// goroutine-confined and the control plane (status, stats, traces)
// stays responsive while a program runs.
type System struct {
	mu   sync.Mutex
	opts Options

	cfg      leon.Config
	soc      *leon.SoC
	ctrl     *leon.Controller
	actrl    *leon.AsyncController
	platform *fpx.Platform
	manager  *reconfig.Manager

	active      *synth.Image
	reconfigs   uint64
	partials    uint64
	lastHit     bool
	lastPartial bool
	loadedProg  *link.Image

	// pending is the one asynchronous reconfiguration this board can
	// have in flight; lastReconfig records the most recent terminal
	// outcome for status polls after completion. Both under s.mu.
	pending      *pendingReconfig
	lastReconfig netproto.ReconfigStatusResp

	traceMu   sync.Mutex
	lastTrace *trace.Recorder

	// runDoneHook is the completion callback the FPX platform installed
	// (via tracedControl); kept so instantiate can re-arm it on the
	// fresh actor after a full reconfiguration. It lives under its own
	// mutex because the platform re-installs the hook from SetControl
	// while reconfiguration already holds s.mu (hookMu is always inner
	// to s.mu, never the reverse).
	hookMu      sync.Mutex
	hookTarget  *leon.AsyncController
	runDoneHook func()

	m systemMetrics
}

// New synthesizes (or loads from a fresh or persistent cache) the
// initial configuration, instantiates the processor system and boots
// it.
func New(cfg leon.Config, opts Options) (*System, error) {
	opts = opts.withDefaults()
	if opts.Synth.Clock == nil {
		opts.Synth.Clock = opts.Clock
	}
	s := &System{opts: opts, manager: opts.Manager}
	if s.manager == nil {
		s.manager = reconfig.NewManagerWorkers(
			reconfig.NewCache(opts.CacheCapacity), opts.Synth, opts.SynthWorkers)
	}
	s.platform = fpx.New(tracedControl{s}, opts.IP, opts.Port)
	s.manager.Cache().SetLog(s.platform.Events())
	if opts.Manager == nil && opts.CacheDir != "" {
		// Persistent store: write-through from now on, then warm-load
		// whatever a previous life of this node synthesized.
		if err := s.manager.Cache().SetDir(opts.CacheDir); err != nil {
			return nil, err
		}
		if err := s.manager.Cache().Load(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	img, hit, err := s.manager.GetOrSynthesize(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.instantiate(cfg, img, nil, nil); err != nil {
		return nil, err
	}
	s.platform.ReconfigureFn = s.reconfigureFromSpec
	s.platform.ReconfigureCtxFn = s.reconfigureFromSpecCtx
	s.platform.ReconfigAsyncFn = s.reconfigAsyncFromSpec
	s.platform.ReconfigStatusFn = s.ReconfigureStatus
	s.platform.ConfigFn = func() []byte {
		blob, _ := json.Marshal(SpecFromConfig(s.Config()))
		return blob
	}
	s.platform.TraceFn = s.traceReportJSON
	s.instrument()
	if !hit {
		// Account for the initial synthesis (the registry did not
		// exist yet when it ran).
		s.m.synthRuns.Inc()
		s.m.synthModel.Observe(img.SynthTime.Seconds())
	}
	return s, nil
}

// instantiate builds and boots a SoC for cfg, optionally restoring
// board-memory contents (which survive FPGA reconfiguration), and
// spawns the board's actor (shutting down the previous one — the
// bitfile reload kills whatever was executing).
func (s *System) instantiate(cfg leon.Config, img *synth.Image, sram, sdram []byte) error {
	soc, err := leon.New(cfg, s.opts.UARTOut)
	if err != nil {
		return err
	}
	if sram != nil {
		copy(soc.SRAM.Raw(), sram)
	}
	if sdram != nil {
		copy(soc.SDRAM.Raw(), sdram)
	}
	ctrl := leon.NewController(soc)
	if err := ctrl.Boot(); err != nil {
		return err
	}
	if s.actrl != nil {
		s.actrl.Close()
	}
	s.cfg, s.soc, s.ctrl, s.active = cfg, soc, ctrl, img
	s.actrl = leon.NewAsyncController(ctrl)
	s.actrl.SetClock(s.opts.Clock)
	s.hookMu.Lock()
	s.hookTarget = s.actrl
	if s.runDoneHook != nil {
		s.actrl.SetRunDoneHook(s.runDoneHook)
	}
	s.hookMu.Unlock()
	return nil
}

// setRunDoneHook records fn and installs it on the current board
// actor. It must not touch s.mu: the platform calls it (through
// tracedControl) from SetControl while reconfiguration holds s.mu.
func (s *System) setRunDoneHook(fn func()) {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	s.runDoneHook = fn
	if s.hookTarget != nil {
		s.hookTarget.SetRunDoneHook(fn)
	}
}

// async returns the current board actor. Operations snapshot it once
// and use that handle throughout, so a concurrent full reconfiguration
// surfaces as ErrClosed rather than a mixed-board operation.
func (s *System) async() *leon.AsyncController {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.actrl
}

// Close shuts down the board actor. In-flight runs are abandoned;
// subsequent executions fail. The System is not usable afterwards.
func (s *System) Close() {
	if a := s.async(); a != nil {
		a.Close()
	}
}

// Config returns the active configuration.
func (s *System) Config() leon.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// ActiveImage returns the loaded FPGA image.
func (s *System) ActiveImage() *synth.Image {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Platform returns the FPX platform (mount it on a server to go
// remote).
func (s *System) Platform() *fpx.Platform { return s.platform }

// Controller returns the leon_ctrl state machine. The controller is
// owned by the board actor — touch it directly only when no run is in
// flight (prefer AsyncCtrl, or AsyncCtrl().Do, otherwise).
func (s *System) Controller() *leon.Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctrl
}

// AsyncCtrl returns the board actor driving execution for this System.
func (s *System) AsyncCtrl() *leon.AsyncController { return s.async() }

// SoC returns the current processor system.
func (s *System) SoC() *leon.SoC {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.soc
}

// Manager returns the reconfiguration cache manager.
func (s *System) Manager() *reconfig.Manager { return s.manager }

// Reconfigurations returns how many image swaps have happened.
func (s *System) Reconfigurations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconfigs
}

// LastReconfigureHit reports whether the most recent reconfiguration
// was served from the cache.
func (s *System) LastReconfigureHit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastHit
}

// Reconfigure swaps the node to cfg: the image comes from the
// reconfiguration cache when pre-generated (milliseconds) or a fresh
// synthesis run (≈1 modelled hour). Board memories — and therefore the
// loaded program and its data — survive the swap, exactly as the FPX's
// external SRAM/SDRAM survive FPGA reprogramming.
//
// When only the cache modules differ from the active configuration,
// the swap is performed as a partial runtime reconfiguration in the
// style of the paper's reference [2]: the cache plugins are replaced
// under the live processor, without a reset or memory copy (disable
// with Options.DisablePartial).
func (s *System) Reconfigure(cfg leon.Config) (cacheHit bool, err error) {
	return s.ReconfigureCtx(tracing.Ctx{}, cfg)
}

// ReconfigureCtx is Reconfigure with an exchange-trace context: the
// whole swap becomes one "reconfigure" span annotated with the cache
// outcome (hit|miss) and the swap path (partial|full), with the wait
// for the synthesis service recorded as a "synthesize" child span.
func (s *System) ReconfigureCtx(tc tracing.Ctx, cfg leon.Config) (cacheHit bool, err error) {
	span := tc.Start("reconfigure")
	kind := "none"
	defer func() {
		if !span.On() {
			return
		}
		outcome := "miss"
		if cacheHit {
			outcome = "hit"
		}
		status := "ok"
		if err != nil {
			status = "error"
		}
		span.EndAttrs(
			tracing.A("cache", outcome),
			tracing.A("kind", kind),
			tracing.A("status", status),
		)
	}()
	t, coalesced := s.manager.Acquire(cfg)
	img, hit, err := s.waitTicket(span.Ctx(), t, coalesced)
	if err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	partial, err := s.applyLocked(cfg, img, hit, !hit && !coalesced)
	if partial {
		kind = "partial"
	} else {
		kind = "full"
	}
	return hit, err
}

// waitTicket blocks until a synthesis ticket completes, wrapping a
// non-hit wait in a "synthesize" child span (attributed with whether
// this caller coalesced onto another request's in-flight job).
func (s *System) waitTicket(tc tracing.Ctx, t *reconfig.Ticket, coalesced bool) (*synth.Image, bool, error) {
	if !t.CacheHit() {
		ss := tc.Start("synthesize")
		<-t.Done()
		if ss.On() {
			_, err := t.Image()
			status := "ok"
			if err != nil {
				status = "error"
			}
			ss.EndAttrs(
				tracing.A("coalesced", strconv.FormatBool(coalesced)),
				tracing.A("status", status),
			)
		}
	}
	<-t.Done()
	img, err := t.Image()
	if err != nil {
		return nil, false, err
	}
	return img, t.CacheHit(), nil
}

// errRunInFlight defers a full swap: the bitfile reload would kill the
// in-flight run, so the caller parks (async path) or fails (blocking
// path, preserving the pre-rev-6 contract).
var errRunInFlight = errors.New("core: cannot reconfigure while a run is in flight")

// applyLocked swaps the board to cfg/img with s.mu held: a partial
// (cache-plugin) swap when only the caches differ — legal under a live
// processor — otherwise a full rebuild, which requires an idle board.
// synthesized records whether this request paid the modelled tool run
// itself (false for cache hits and for requests that coalesced onto
// another caller's synthesis).
func (s *System) applyLocked(cfg leon.Config, img *synth.Image, hit, synthesized bool) (partial bool, err error) {
	if !s.opts.DisablePartial && onlyCachesDiffer(s.cfg, cfg) {
		// Partial runtime reconfiguration: the cache-plugin swap runs
		// on the actor goroutine, between step slices — legal even
		// under a live processor, which is the whole point of [2].
		var swapErr error
		if derr := s.actrl.Do(func(c *leon.Controller) {
			swapErr = c.SoC().SwapCaches(cfg.ICache, cfg.DCache)
		}); derr != nil {
			return true, derr
		}
		if swapErr != nil {
			return true, swapErr
		}
		s.cfg, s.active = cfg, img
		s.reconfigs++
		s.partials++
		s.lastHit, s.lastPartial = hit, true
		s.observeReconfigure(hit, true, synthesized, img.SynthTime)
		return true, nil
	}
	// A full image load resets the processor; refuse while a run is in
	// flight (the client collects or abandons first — or the async
	// path parks on errRunInFlight and swaps at run completion).
	if s.actrl.State() == leon.StateRunning {
		return false, errRunInFlight
	}
	var sram, sdram []byte
	if derr := s.actrl.Do(func(c *leon.Controller) {
		sram = append([]byte(nil), c.SoC().SRAM.Raw()...)
		sdram = append([]byte(nil), c.SoC().SDRAM.Raw()...)
	}); derr != nil {
		return false, derr
	}
	if err := s.instantiate(cfg, img, sram, sdram); err != nil {
		return false, err
	}
	if s.platform != nil {
		s.platform.SetControl(tracedControl{s})
	}
	s.reconfigs++
	s.lastHit, s.lastPartial = hit, false
	s.observeReconfigure(hit, false, synthesized, img.SynthTime)
	return false, nil
}

// onlyCachesDiffer reports whether a↦b changes nothing outside the
// cache modules (the partial-reconfiguration region).
func onlyCachesDiffer(a, b leon.Config) bool {
	a.ICache, b.ICache = cache.Config{}, cache.Config{}
	a.DCache, b.DCache = cache.Config{}, cache.Config{}
	return a == b
}

// PartialReconfigurations returns how many swaps took the partial
// (cache-plugin) path.
func (s *System) PartialReconfigurations() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.partials
}

// LastReconfigureWasPartial reports whether the most recent swap used
// the partial path.
func (s *System) LastReconfigureWasPartial() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastPartial
}

// reconfigureFromSpec handles the network CmdReconfigure payload.
func (s *System) reconfigureFromSpec(blob []byte) error {
	return s.reconfigureFromSpecCtx(tracing.Ctx{}, blob)
}

// reconfigureFromSpecCtx is the trace-aware CmdReconfigure handler.
func (s *System) reconfigureFromSpecCtx(tc tracing.Ctx, blob []byte) error {
	var spec Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return fmt.Errorf("core: bad reconfigure spec: %w", err)
	}
	cfg, err := spec.ToConfig(s.Config())
	if err != nil {
		return err
	}
	_, err = s.ReconfigureCtx(tc, cfg)
	return err
}

// CompileC compiles Liquid-C source and links it into a loadable
// image (the gcc → GAS → LD → OBJCOPY pipeline of Fig. 4).
func (s *System) CompileC(src string, copts lcc.Options) (*link.Image, error) {
	asmSrc, err := lcc.Compile(src, copts)
	if err != nil {
		return nil, err
	}
	return link.Build(asmSrc, link.Options{
		StackTop: leon.SRAMBase + uint32(s.Config().SRAMSize),
	})
}

// BuildASM links hand-written assembly (with crt0; define main).
func (s *System) BuildASM(src string) (*link.Image, error) {
	return link.Build(src, link.Options{
		StackTop: leon.SRAMBase + uint32(s.Config().SRAMSize),
	})
}

// Load places an image in SRAM through the leon_ctrl user port (the
// request is served by the board actor, so it is rejected while a run
// is in flight, like the hardware path).
func (s *System) Load(img *link.Image) error {
	if err := s.async().LoadProgram(img.Origin, img.Code); err != nil {
		return err
	}
	s.mu.Lock()
	s.loadedProg = img
	s.mu.Unlock()
	return nil
}

// Run executes a loaded image and returns the cycle-counter report.
// budget 0 means the controller default. The run is driven by the
// board actor; Run blocks until it completes (use the network client's
// StartAsync/WaitResult, or the actor directly, for the asynchronous
// shape).
func (s *System) Run(img *link.Image, budget uint64) (leon.RunResult, error) {
	if err := s.Load(img); err != nil {
		return leon.RunResult{}, err
	}
	return s.async().ExecuteOpts(img.Entry, budget, leon.RunOptions{
		After: func(c *leon.Controller, res leon.RunResult, wall time.Duration, err error) {
			s.observeRun(res, wall, err)
		},
	})
}

// RunWithTrace executes a loaded image with the trace analyzer
// attached, returning the recording for the Fig. 1 feedback loop. The
// recorder is attached and detached on the actor goroutine, so it
// observes exactly this run.
func (s *System) RunWithTrace(img *link.Image, budget uint64) (leon.RunResult, *trace.Recorder, error) {
	if err := s.Load(img); err != nil {
		return leon.RunResult{}, nil, err
	}
	var rec *trace.Recorder
	res, err := s.async().ExecuteOpts(img.Entry, budget, leon.RunOptions{
		Before: func(c *leon.Controller) {
			rec = trace.NewRecorder()
			rec.Attach(c.SoC().CPU)
		},
		After: func(c *leon.Controller, res leon.RunResult, wall time.Duration, err error) {
			rec.Detach()
			s.observeRun(res, wall, err)
		},
	})
	return res, rec, err
}

// ExitValue reads the word where crt0 stored main's return value.
func (s *System) ExitValue(img *link.Image) (uint32, error) {
	addr := img.ExitValueAddr()
	if addr == 0 {
		return 0, fmt.Errorf("core: image has no __exit_value (standalone?)")
	}
	b, err := s.ReadMemory(addr, 4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// ReadMemory reads through the user-side memory ports. Mid-run reads
// are legal (the FPX SDRAM controller arbitrates the network port
// against the processor, §2.4) and are served between step slices.
func (s *System) ReadMemory(addr uint32, n int) ([]byte, error) {
	return s.async().ReadMemory(addr, n)
}

// TuneReport is the outcome of one AutoTune pass: the Fig. 1 loop of
// trace → analyze → generate → reconfigure → re-measure.
type TuneReport struct {
	Baseline    leon.RunResult
	BaselineCfg leon.Config
	Tuned       leon.RunResult
	TunedCfg    leon.Config
	Best        archgen.Candidate
	Candidates  []archgen.Candidate
	CacheHit    bool
	// Speedup is baseline cycles / tuned cycles.
	Speedup float64
	// WallSpeedup folds in the synthesized clock frequencies.
	WallSpeedup float64
}

// AutoTune runs img on the current configuration under the trace
// analyzer, explores the space, reconfigures to the best candidate and
// re-runs — the complete application reconfigurability environment of
// Fig. 1 in one call.
func (s *System) AutoTune(img *link.Image, space archgen.Space, budget uint64) (*TuneReport, error) {
	baseCfg := s.Config()
	baseFMax := synth.Estimate(baseCfg).FMaxMHz
	baseline, rec, err := s.RunWithTrace(img, budget)
	if err != nil {
		return nil, err
	}
	if baseline.Faulted {
		return nil, fmt.Errorf("core: baseline run faulted (tt=%#x)", baseline.TT)
	}
	space.Base = baseCfg
	candidates, err := archgen.Explore(rec, space, archgen.Options{})
	if err != nil {
		return nil, err
	}
	best := candidates[0]
	hit, err := s.Reconfigure(best.Config)
	if err != nil {
		return nil, err
	}
	tuned, err := s.Run(img, budget)
	if err != nil {
		return nil, err
	}
	rep := &TuneReport{
		Baseline:    baseline,
		BaselineCfg: baseCfg,
		Tuned:       tuned,
		TunedCfg:    best.Config,
		Best:        best,
		Candidates:  candidates,
		CacheHit:    hit,
	}
	if tuned.Cycles > 0 {
		rep.Speedup = float64(baseline.Cycles) / float64(tuned.Cycles)
		tunedFMax := synth.Estimate(best.Config).FMaxMHz
		rep.WallSpeedup = (float64(baseline.Cycles) / (baseFMax * 1e6)) /
			(float64(tuned.Cycles) / (tunedFMax * 1e6))
	}
	return rep, nil
}

// Spec is the flat, JSON-friendly wire form of a configuration, used
// by the CmdReconfigure/CmdGetConfig network commands and the CLI.
type Spec struct {
	NWindows      int   `json:"nwindows,omitempty"`
	MulDiv        *bool `json:"muldiv,omitempty"`
	MAC           *bool `json:"mac,omitempty"`
	PipelineDepth int   `json:"pipeline_depth,omitempty"`
	ICacheBytes   int   `json:"icache_bytes,omitempty"`
	ICacheLine    int   `json:"icache_line,omitempty"`
	ICacheAssoc   int   `json:"icache_assoc,omitempty"`
	DCacheBytes   int   `json:"dcache_bytes,omitempty"`
	DCacheLine    int   `json:"dcache_line,omitempty"`
	DCacheAssoc   int   `json:"dcache_assoc,omitempty"`
	DCacheWB      *bool `json:"dcache_writeback,omitempty"`
	BurstWords    int   `json:"burst_words,omitempty"`
}

// SpecFromConfig flattens a configuration.
func SpecFromConfig(cfg leon.Config) Spec {
	md, mac, wb := cfg.CPU.MulDiv, cfg.CPU.MAC, cfg.DCache.Write == cache.WriteBack
	return Spec{
		NWindows:      cfg.CPU.NWindows,
		MulDiv:        &md,
		MAC:           &mac,
		PipelineDepth: cfg.CPU.Depth(),
		ICacheBytes:   cfg.ICache.SizeBytes,
		ICacheLine:    cfg.ICache.LineBytes,
		ICacheAssoc:   cfg.ICache.Assoc,
		DCacheBytes:   cfg.DCache.SizeBytes,
		DCacheLine:    cfg.DCache.LineBytes,
		DCacheAssoc:   cfg.DCache.Assoc,
		DCacheWB:      &wb,
		BurstWords:    cfg.BurstWords,
	}
}

// ToConfig applies the spec's set fields over a base configuration and
// validates the result.
func (sp Spec) ToConfig(base leon.Config) (leon.Config, error) {
	cfg := base
	if sp.NWindows != 0 {
		cfg.CPU.NWindows = sp.NWindows
	}
	if sp.MulDiv != nil {
		cfg.CPU.MulDiv = *sp.MulDiv
	}
	if sp.MAC != nil {
		cfg.CPU.MAC = *sp.MAC
	}
	if sp.PipelineDepth != 0 {
		cfg.CPU.PipelineDepth = sp.PipelineDepth
		cfg.CPU.Timing = cpu.TimingForDepth(sp.PipelineDepth)
	}
	if sp.ICacheBytes != 0 {
		cfg.ICache.SizeBytes = sp.ICacheBytes
	}
	if sp.ICacheLine != 0 {
		cfg.ICache.LineBytes = sp.ICacheLine
	}
	if sp.ICacheAssoc != 0 {
		cfg.ICache.Assoc = sp.ICacheAssoc
	}
	if sp.DCacheBytes != 0 {
		cfg.DCache.SizeBytes = sp.DCacheBytes
	}
	if sp.DCacheLine != 0 {
		cfg.DCache.LineBytes = sp.DCacheLine
	}
	if sp.DCacheAssoc != 0 {
		cfg.DCache.Assoc = sp.DCacheAssoc
	}
	if sp.DCacheWB != nil {
		if *sp.DCacheWB {
			cfg.DCache.Write = cache.WriteBack
		} else {
			cfg.DCache.Write = cache.WriteThrough
		}
	}
	if sp.BurstWords != 0 {
		cfg.BurstWords = sp.BurstWords
	}
	if err := cfg.Validate(); err != nil {
		return leon.Config{}, fmt.Errorf("core: invalid spec: %w", err)
	}
	return cfg, nil
}
