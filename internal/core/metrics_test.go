package core

import (
	"testing"

	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
)

// TestRunMetrics checks the per-run counters and histograms.
func TestRunMetrics(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.CompileC("int main() { return 5; }", lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}

	snap := s.Metrics().Snapshot()
	if got := snap.Counter("liquid_core_runs_total"); got != 2 {
		t.Errorf("runs = %d, want 2", got)
	}
	if got := snap.Counter("liquid_core_run_faults_total"); got != 0 {
		t.Errorf("faults = %d, want 0", got)
	}
	h := snap.Histograms["liquid_core_run_cycles"]
	if h.Count != 2 || h.Sum <= 0 {
		t.Errorf("run_cycles histogram = %+v", h)
	}
	if snap.Histograms["liquid_core_run_wall_seconds"].Count != 2 {
		t.Errorf("run_wall histogram = %+v", snap.Histograms["liquid_core_run_wall_seconds"])
	}
	// Boot-time synthesis of the initial architecture was recorded.
	if got := snap.Counter("liquid_core_synthesis_total"); got != 1 {
		t.Errorf("synthesis = %d, want 1 (initial image)", got)
	}
}

// TestCacheGaugesLive checks the snapshot-refreshed hardware gauges
// move with execution — the acceptance criterion that cache hit/miss
// telemetry is live.
func TestCacheGaugesLive(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	img, err := s.CompileC(fig7Source, lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics().Snapshot()
	if snap.Gauges["liquid_dcache_hits"] <= 0 {
		t.Errorf("dcache_hits = %v, want > 0", snap.Gauges["liquid_dcache_hits"])
	}
	if snap.Gauges["liquid_dcache_misses"] <= 0 {
		t.Errorf("dcache_misses = %v, want > 0 (cold fill)", snap.Gauges["liquid_dcache_misses"])
	}
	if snap.Gauges["liquid_icache_hits"] <= 0 {
		t.Errorf("icache_hits = %v, want > 0", snap.Gauges["liquid_icache_hits"])
	}
	// Code and data live in SRAM on the default map, so the SDRAM path
	// may legitimately be idle — but the gauges must be registered.
	for _, name := range []string{"liquid_sdram_requests", "liquid_sdram_rmw_cycles", "liquid_sdram_wasted_words"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
}

// TestReconfigureMetrics checks the hit/miss/partial/full breakdown.
func TestReconfigureMetrics(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())

	// A fresh configuration: cache miss, full swap, one synthesis.
	cfg := s.Config()
	cfg.DCache.SizeBytes = 16 << 10
	if _, err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	// Back to the boot configuration: cache hit, full swap.
	if _, err := s.Reconfigure(leon.DefaultConfig()); err != nil {
		t.Fatal(err)
	}

	snap := s.Metrics().Snapshot()
	if got := snap.Counter(`liquid_core_reconfigurations_total{kind="miss"}`); got != 1 {
		t.Errorf("miss = %d, want 1", got)
	}
	if got := snap.Counter(`liquid_core_reconfigurations_total{kind="hit"}`); got != 1 {
		t.Errorf("hit = %d, want 1", got)
	}
	full := snap.Counter(`liquid_core_reconfigurations_total{kind="full"}`)
	partial := snap.Counter(`liquid_core_reconfigurations_total{kind="partial"}`)
	if full+partial != 2 {
		t.Errorf("full+partial = %d+%d, want 2 swaps total", full, partial)
	}
	// Boot image + one miss = two synthesis runs.
	if got := snap.Counter("liquid_core_synthesis_total"); got != 2 {
		t.Errorf("synthesis = %d, want 2", got)
	}
	if snap.Histograms["liquid_core_synthesis_modelled_seconds"].Count != 2 {
		t.Errorf("synthesis histogram = %+v", snap.Histograms["liquid_core_synthesis_modelled_seconds"])
	}

	// Reconfiguration-cache gauges agree with the manager's own stats.
	cs := s.Manager().Cache().Stats()
	if got := snap.Gauges["liquid_reconfig_cache_hits"]; got != float64(cs.Hits) {
		t.Errorf("cache_hits gauge = %v, manager says %d", got, cs.Hits)
	}
	if got := snap.Gauges["liquid_reconfig_cache_misses"]; got != float64(cs.Misses) {
		t.Errorf("cache_misses gauge = %v, manager says %d", got, cs.Misses)
	}
	if snap.Gauges["liquid_reconfig_cache_entries"] < 2 {
		t.Errorf("cache_entries = %v, want >= 2", snap.Gauges["liquid_reconfig_cache_entries"])
	}
}

// TestFaultCounted checks a trapping program increments the fault
// counter.
func TestFaultCounted(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	// Jump straight into unmapped memory.
	img, err := s.BuildASM("main:\n\tset 0x10, %g1\n\tld [%g1], %o0\n\tretl\n\tnop\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(img, 0)
	if err == nil && !res.Faulted {
		t.Skip("probe program did not fault on this memory map")
	}
	snap := s.Metrics().Snapshot()
	if got := snap.Counter("liquid_core_run_faults_total"); got != 1 {
		t.Errorf("faults = %d, want 1", got)
	}
}
