package core

import (
	"time"

	"liquidarch/internal/leon"
	"liquidarch/internal/metrics"
	"liquidarch/internal/metrics/eventlog"
)

// systemMetrics are the liquid-core instruments, registered on the
// node's platform registry so CmdStats and /metrics cover the whole
// stack in one snapshot.
type systemMetrics struct {
	runs       *metrics.Counter
	runFaults  *metrics.Counter
	runCycles  *metrics.Histogram
	runWall    *metrics.Histogram
	reconfigs  *metrics.CounterVec
	synthRuns  *metrics.Counter
	synthModel *metrics.Histogram

	// Simulator throughput: how fast the host executes simulated
	// instructions. The gauge holds the most recent run's rate, the
	// histogram the distribution across runs, so a /metrics scrape
	// shows both the current speed and its spread. Every instrument
	// in this struct is nil-safe (metrics methods no-op on nil
	// receivers), so observeRun never needs a guard even on a System
	// built without instrumentation.
	simMIPS     *metrics.Gauge
	simMIPSHist *metrics.Histogram
}

func newSystemMetrics(r *metrics.Registry) systemMetrics {
	return systemMetrics{
		runs:      r.Counter("liquid_core_runs_total", "Program executions on the liquid processor."),
		runFaults: r.Counter("liquid_core_run_faults_total", "Executions that ended in a trap."),
		runCycles: r.Histogram("liquid_core_run_cycles", "Hardware cycle-counter reading per run.", metrics.DefCycleBuckets),
		runWall:   r.Histogram("liquid_core_run_wall_seconds", "Host wall time per run.", metrics.DefSecondsBuckets),
		reconfigs: r.CounterVec("liquid_core_reconfigurations_total",
			"Architecture swaps by kind: hit/miss (reconfiguration cache) and partial/full (swap path); each swap counts one of each pair.", "kind"),
		synthRuns: r.Counter("liquid_core_synthesis_total", "Synthesis runs triggered by reconfiguration-cache misses."),
		synthModel: r.Histogram("liquid_core_synthesis_modelled_seconds",
			"Modelled tool time per synthesis run (≈1 h per configuration in the paper).", metrics.ExpBuckets(60, 2, 10)),
		simMIPS: r.Gauge("liquid_core_sim_mips",
			"Simulated million instructions per host-second of the most recent run."),
		simMIPSHist: r.Histogram("liquid_core_sim_mips_hist",
			"Distribution of per-run simulated-MIPS throughput.", metrics.ExpBuckets(1, 2, 12)),
	}
}

// Metrics returns the node-wide telemetry registry (owned by the FPX
// platform; server and core both register here).
func (s *System) Metrics() *metrics.Registry { return s.platform.Metrics() }

// Events returns the node-wide structured event log.
func (s *System) Events() *eventlog.Log { return s.platform.Events() }

// instrument registers the core's instruments and snapshot-refreshed
// gauges on the platform registry. The gauges read counters that
// already exist on the simulated hardware (cache Stats, SDRAM
// controller Stats, adapter Stats, reconfiguration cache Stats), so
// the execution hot path is untouched: values are pulled only when a
// snapshot or scrape happens.
func (s *System) instrument() {
	r := s.platform.Metrics()
	s.m = newSystemMetrics(r)

	// Processor caches. The SoC is rebuilt on full reconfiguration and
	// goroutine-confined to the board actor, so every read goes through
	// one actor round trip (served between step slices while a run is
	// in flight) — a mid-run /metrics scrape is race-free and never
	// waits on the whole execution.
	hw := func(read func(soc *leon.SoC) float64) func() float64 {
		return func() float64 {
			a := s.async()
			if a == nil {
				return 0
			}
			var v float64
			if err := a.Do(func(c *leon.Controller) { v = read(c.SoC()) }); err != nil {
				return 0
			}
			return v
		}
	}
	r.GaugeFunc("liquid_dcache_hits", "Data-cache read hits (current SoC).", hw(func(soc *leon.SoC) float64 { return float64(soc.DCache.Stats().Hits) }))
	r.GaugeFunc("liquid_dcache_misses", "Data-cache read misses (current SoC).", hw(func(soc *leon.SoC) float64 { return float64(soc.DCache.Stats().Misses) }))
	r.GaugeFunc("liquid_dcache_fills", "Data-cache line fills, i.e. evictions plus cold fills.", hw(func(soc *leon.SoC) float64 { return float64(soc.DCache.Stats().Fills) }))
	r.GaugeFunc("liquid_dcache_writebacks", "Dirty lines written back (write-back policy only).", hw(func(soc *leon.SoC) float64 { return float64(soc.DCache.Stats().WriteBacks) }))
	r.GaugeFunc("liquid_icache_hits", "Instruction-cache hits (current SoC).", hw(func(soc *leon.SoC) float64 { return float64(soc.ICache.Stats().Hits) }))
	r.GaugeFunc("liquid_icache_misses", "Instruction-cache misses (current SoC).", hw(func(soc *leon.SoC) float64 { return float64(soc.ICache.Stats().Misses) }))

	// FPX SDRAM controller and the §3.2 adapter.
	r.GaugeFunc("liquid_sdram_requests", "SDRAM controller handshakes.", hw(func(soc *leon.SoC) float64 { return float64(soc.SDRAMCtrl.Stats().Requests) }))
	r.GaugeFunc("liquid_sdram_arb_switches", "SDRAM grants that moved between modules.", hw(func(soc *leon.SoC) float64 { return float64(soc.SDRAMCtrl.Stats().ArbSwitch) }))
	r.GaugeFunc("liquid_sdram_rmw_cycles", "Cycles spent in the adapter's read-modify-write sequences (§3.2).", hw(func(soc *leon.SoC) float64 { return float64(soc.Adapter.Stats().RMWCycles) }))
	r.GaugeFunc("liquid_sdram_wasted_words", "32-bit words fetched beyond what the AHB asked for.", hw(func(soc *leon.SoC) float64 { return float64(soc.Adapter.Stats().WastedWords) }))

	// Reconfiguration cache economics.
	r.GaugeFunc("liquid_reconfig_cache_entries", "Images held by the reconfiguration cache.", func() float64 { return float64(s.manager.Cache().Len()) })
	r.GaugeFunc("liquid_reconfig_cache_hits", "Reconfiguration-cache hits.", func() float64 { return float64(s.manager.Cache().Stats().Hits) })
	r.GaugeFunc("liquid_reconfig_cache_misses", "Reconfiguration-cache misses (synthesis runs).", func() float64 { return float64(s.manager.Cache().Stats().Misses) })
	r.GaugeFunc("liquid_reconfig_cache_evictions", "Images evicted by the LRU bound.", func() float64 { return float64(s.manager.Cache().Stats().Evictions) })
	r.GaugeFunc("liquid_reconfig_cache_saved_seconds", "Modelled tool time avoided by cache hits.", func() float64 { return s.manager.Cache().Stats().SavedTime.Seconds() })

	// Synthesis service: the shared deduplicating worker pool and the
	// persistent content-addressed store behind it. Like the hardware
	// gauges these pull counters the service already keeps, so nothing
	// is added to the synthesis path itself.
	r.GaugeFunc("liquid_reconfig_queue_depth", "Synthesis tickets waiting for a pool slot.", func() float64 { return float64(s.manager.Stats().QueueDepth) })
	r.GaugeFunc("liquid_reconfig_inflight", "Synthesis runs currently executing.", func() float64 { return float64(s.manager.Stats().Inflight) })
	r.GaugeFunc("liquid_reconfig_coalesced", "Acquisitions that joined an in-flight synthesis instead of starting one.", func() float64 { return float64(s.manager.Stats().Coalesced) })
	r.GaugeFunc("liquid_reconfig_synth_runs", "Synthesis runs the shared pool has executed.", func() float64 { return float64(s.manager.Stats().SynthRuns) })
	r.GaugeFunc("liquid_reconfig_pool_utilization", "Fraction of synthesis workers busy (0–1).", func() float64 {
		st := s.manager.Stats()
		if st.Workers == 0 {
			return 0
		}
		return float64(st.Inflight) / float64(st.Workers)
	})
	r.GaugeFunc("liquid_reconfig_persist_hits", "Cache hits served by images warm-loaded from the on-disk store.", func() float64 { return float64(s.manager.Cache().Stats().PersistHits) })
	r.GaugeFunc("liquid_reconfig_persist_loaded", "Images warm-loaded from the on-disk store.", func() float64 { return float64(s.manager.Cache().Stats().PersistLoaded) })
	r.GaugeFunc("liquid_reconfig_persist_skipped", "On-disk entries skipped as corrupt or mismatched.", func() float64 { return float64(s.manager.Cache().Stats().PersistSkipped) })
	r.GaugeFunc("liquid_reconfig_persist_writes", "Images written through to the on-disk store.", func() float64 { return float64(s.manager.Cache().Stats().PersistWrites) })
}

// observeRun records one execution in the telemetry registry.
func (s *System) observeRun(res leon.RunResult, wall time.Duration, err error) {
	s.m.runs.Inc()
	s.m.runCycles.Observe(float64(res.Cycles))
	s.m.runWall.Observe(wall.Seconds())
	if secs := wall.Seconds(); secs > 0 && res.Instructions > 0 {
		mips := float64(res.Instructions) / secs / 1e6
		s.m.simMIPS.Set(mips)
		s.m.simMIPSHist.Observe(mips)
	}
	if err != nil || res.Faulted {
		s.m.runFaults.Inc()
	}
}

// observeReconfigure records one architecture swap. synthesized is
// true only when this swap's miss ran its own synthesis — a caller
// that coalesced onto another board's in-flight job still counts a
// miss, but the synthesis run itself is counted once, by the owner.
func (s *System) observeReconfigure(hit, partial, synthesized bool, synthTime time.Duration) {
	if hit {
		s.m.reconfigs.With("hit").Inc()
	} else {
		s.m.reconfigs.With("miss").Inc()
	}
	if synthesized {
		s.m.synthRuns.Inc()
		s.m.synthModel.Observe(synthTime.Seconds())
	}
	if partial {
		s.m.reconfigs.With("partial").Inc()
	} else {
		s.m.reconfigs.With("full").Inc()
	}
	s.platform.Events().Infof("reconfigured",
		"hit", hit, "partial", partial, "modelled_synth", synthTime)
}
