package core

import (
	"testing"
	"time"

	"liquidarch/internal/lcc"
	"liquidarch/internal/leon"
)

// TestRunDoneHookSurvivesReconfigure: the FPX platform's run-done hook
// (what lets a mounted server park CmdWaitResult exchanges) must reach
// the System's board actor through tracedControl, and must stay armed
// after a full reconfiguration replaces that actor.
func TestRunDoneHookSurvivesReconfigure(t *testing.T) {
	s := newSystem(t, leon.DefaultConfig())
	fired := make(chan struct{}, 4)
	if ok := s.Platform().SetRunDoneHook(func() { fired <- struct{}{} }); !ok {
		t.Fatal("System platform rejected the run-done hook")
	}

	img, err := s.CompileC("int main() { return 5; }", lcc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("run-done hook never fired")
	}

	// Force the FULL reconfiguration path (a non-cache change), which
	// spawns a fresh board actor; the hook must be re-armed on it.
	cfg := s.Config()
	cfg.BurstWords *= 2
	if _, err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(img, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("run-done hook lost across full reconfiguration")
	}
}
