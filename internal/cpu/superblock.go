package cpu

import (
	"encoding/binary"
	"errors"

	"liquidarch/internal/isa"
)

// This file is the superblock dispatcher: StepN executes instructions
// in straight-line batches pulled directly out of resident
// instruction-cache lines, with the interrupt probe hoisted to block
// heads and the per-fetch accounting settled in bulk. It is a pure
// scheduling transformation of Step — every architectural effect, every
// cycle, every statistics counter lands exactly as the single-step
// interpreter would land it. The differential tests in diff_test.go
// enforce that bit for bit.
//
// Why hoisting the interrupt probe is exact: between two block heads no
// peripheral time passes (the SoC settles the prescaler only at batch
// boundaries and on device accesses), so the interrupt controller's
// pending set can change mid-block only through the CPU's own doing — a
// device store (MemEventDevice, which ends both the block and the
// batch) or a PSR write moving PIL/ET (kindStop, which ends the
// block). A block with neither observes the same Pending() answer at
// every instruction boundary inside it, so probing once at the head is
// indistinguishable from probing every step.
//
// Why per-word fetch from PeekLine is exact: PeekLine succeeds only for
// an enabled direct-mapped cache with the line resident, the one regime
// where FetchWord's hit path is a pure 1-cycle access whose only side
// effect is Hits++ — reproduced here as one cycle per dispatched word
// plus a single AddFetchHits at block exit. Any other fetch (miss,
// disabled or associative cache, unaligned PC, pending annul) falls
// back to Step itself.

// spinBadSize is the direct-mapped blacklist of loop heads whose
// fast-forward probe failed (ordinary working loops: they mutate state
// every iteration). Blacklisted heads are never probed again until the
// predecode cache is invalidated, so a hot loop pays the probe once.
const spinBadSize = 64

const (
	spinIdle uint8 = iota
	spinProbing
)

// spinState is the scratch for poll-loop fast-forward detection. All
// storage is preallocated (windows in New) so probing allocates
// nothing on the dispatch path.
type spinState struct {
	mode     uint8
	lastHead uint32 // tag (pc+1) of the previous block-entry head
	head     uint32 // pc being probed

	// Snapshot of architectural state and counter baselines taken at
	// probe start (pc==head, npc==head+4, annul clear — implied).
	globals          [8]uint32
	windows          []uint32
	psr, wim, tbr, y uint32
	cycles           uint64
	stats            Stats
	hits, misses     uint64 // lfetch.FetchCounts at probe start
	steps            int    // StepN step counter at probe start
	bad              [spinBadSize]uint32
}

// reset forgets everything including the blacklist; called whenever the
// predecode cache is invalidated (code may have changed).
func (s *spinState) reset() {
	s.mode, s.lastHead, s.head = spinIdle, 0, 0
	for i := range s.bad {
		s.bad[i] = 0
	}
}

// beginBatch abandons any in-flight probe but keeps the blacklist.
func (s *spinState) beginBatch() {
	s.mode, s.lastHead, s.head = spinIdle, 0, 0
}

func (s *spinState) blacklist(pc uint32) {
	s.bad[(pc>>2)&(spinBadSize-1)] = pc + 1
}

func (s *spinState) blacklisted(pc uint32) bool {
	return s.bad[(pc>>2)&(spinBadSize-1)] == pc+1
}

// StepN executes whole instructions until one of its gates closes:
// maxSteps instructions (interrupt deliveries and annulled slots count
// as one each, as they do for Step calls), the cycle counter reaching
// cycleLimit (checked before each instruction, so the final instruction
// may overshoot — the same boundary a caller stepping one instruction
// at a time and testing Cycles between steps observes), the program
// counter landing on stopPC (checked before each instruction, matching
// a caller testing PC between steps), or a device access
// (MemEventDevice — peripheral deadlines may have moved, so the caller
// must settle and recompute its horizon). It returns the number of
// steps executed and the *ErrorMode, if any, that stopped it.
//
// The caller guarantees nothing else touches the machine during the
// call (the SoC's actor already serializes accesses) and that
// peripheral time owed up to the entry cycle count has been settled.
func (c *CPU) StepN(maxSteps int, cycleLimit uint64, stopPC uint32) (int, error) {
	steps := 0
	c.MemEvents = 0
	c.spin.beginBatch()
	for steps < maxSteps && c.Cycles < cycleLimit && c.MemEvents&MemEventDevice == 0 {
		if c.pc == stopPC {
			break
		}
		// Block entry requires the sequential-flow invariant
		// npc==pc+4 with no annul pending, an aligned PC, a
		// line-peekable fetch path, and no exec/trap hooks (the
		// dispatcher settles the shared step counters at block exit,
		// so a mid-block hook could observe them stale).
		if c.annul || c.npc != c.pc+4 || c.pc&3 != 0 || c.lfetch == nil ||
			c.OnExec != nil || c.OnTrap != nil {
			if err := c.Step(); err != nil {
				return steps, err
			}
			steps++
			continue
		}

		// Interrupt probe, hoisted to the block head (see file
		// comment for the exactness argument).
		if c.irq != nil && c.psr&PSRET != 0 {
			if lvl := c.irq.Pending(); lvl == 15 || (lvl > 0 && lvl > c.pil()) {
				c.instStart = c.Cycles
				c.irq.Ack(lvl)
				c.stats.Interrupts++
				steps++
				if err := c.trap(uint8(TrapInterruptBase + lvl)); err != nil {
					return steps, err
				}
				continue
			}
		}

		head := c.pc
		line, ok := c.lfetch.PeekLine(head)
		if !ok {
			// Miss or non-direct configuration: Step performs the
			// fill (or bus fetch) with exact accounting.
			if err := c.Step(); err != nil {
				return steps, err
			}
			steps++
			continue
		}

		// Poll-loop fast-forward bookkeeping (allocation-free).
		switch c.spin.mode {
		case spinIdle:
			if c.spin.lastHead == head+1 && !c.spin.blacklisted(head) && c.OnMem == nil {
				c.spinProbeStart(head, steps)
			} else {
				c.spin.lastHead = head + 1
			}
		case spinProbing:
			if head == c.spin.head {
				if m := c.spinQualify(maxSteps, cycleLimit, steps); m > 0 {
					steps = c.spinForward(m, steps)
				}
				c.spin.mode = spinIdle
				c.spin.lastHead = head + 1
			} else if steps-c.spin.steps > 4096 {
				// Never came back around: not a tight loop.
				c.spin.blacklist(c.spin.head)
				c.spin.mode = spinIdle
			}
		}

		var err error
		steps, err = c.dispatchBlock(line, head, maxSteps, cycleLimit, stopPC, steps)
		if err != nil {
			return steps, err
		}
	}
	return steps, nil
}

// dispatchBlock executes instructions out of resident cache lines
// until a kindStop terminator, a completed control transfer (the CTI
// and its delay slot both execute in-block, then control returns to
// StepN so the interrupt probe and spin bookkeeping run at the branch
// target), a line miss, or one of StepN's gates. Sequential flow
// continues across line boundaries as long as the next line is
// resident. Every gate is re-checked before every instruction —
// including the delay slot — so the stop boundaries land exactly where
// a caller stepping one instruction at a time would observe them. It
// returns the updated step count and the processor error, if any.
func (c *CPU) dispatchBlock(line []byte, head uint32, maxSteps int, cycleLimit uint64, stopPC uint32, steps int) (int, error) {
	lineMask := uint32(len(line) - 1)
	lineBase := head &^ lineMask
	// The step counter, the instruction counter and the fetch-hit
	// counter all advance by exactly 1 per dispatched instruction, so
	// the loop keeps a single local count and settles all three at
	// block exit (nothing inside a block reads them: exec/trap hooks
	// are gated off at block entry, and the spin probe samples them
	// between blocks). The lone exception is a decode failure, whose
	// step consumes a fetch hit but no instruction.
	kmax := maxSteps - steps
	k := 0
	extra := 0 // decode-failure step: 1 step, 1 fetch hit, no instruction
	var fail error
	slotPending := false // previous instruction was a kindCTI: its delay slot runs next, then the block ends
	for k < kmax && c.Cycles < cycleLimit && c.MemEvents&MemEventDevice == 0 &&
		c.pc != stopPC && !c.annul && c.pc&3 == 0 {
		if c.pc&^lineMask != lineBase {
			next, ok := c.lfetch.PeekLine(c.pc)
			if !ok {
				break // miss: Step performs the fill with exact accounting
			}
			line = next
			lineMask = uint32(len(line) - 1)
			lineBase = c.pc &^ lineMask
		}
		c.instStart = c.Cycles
		e := &c.predecode[(c.pc>>2)&predecodeMask]
		// A tag hit is trusted without re-reading the line word:
		// every path that can change fetched memory tears the entry
		// down first (CPU stores invalidate per touched word,
		// user-port pokes, program loads, cache flushes and FLUSH
		// invalidate wholesale), so tag==pc+1 implies word and decode
		// are current. Step's own word compare covers the same
		// protocol and is free there, where the word is fetched
		// anyway.
		if e.tag != c.pc+1 {
			word := binary.BigEndian.Uint32(line[c.pc&lineMask:]) // pc&3==0 by the loop gate
			in, derr := isa.Decode(word)
			if derr != nil {
				// Step's order: the fetch cycle lands, then the
				// decode failure traps.
				c.Cycles++
				extra = 1
				fail = c.trap(TrapIllegalInst)
				break
			}
			e.tag, e.word, e.kind, e.cls, e.in = c.pc+1, word, classify(in.Op), in.Op.Class(), in
		}
		// FLUSH zeroes the predecode tags from inside execute, so the
		// kind must be read before executing.
		kind := e.kind
		c.Cycles++ // pure 1-cycle fetch hit (see PeekLine contract)
		nextPC, nextNPC := c.npc, c.npc+4
		err := c.execute(e, &nextPC, &nextNPC)
		k++
		if err != nil {
			if !errors.Is(err, errTrapped) {
				fail = err
			}
			break // trap vectored (or error mode): block over
		}
		c.pc, c.npc = nextPC, nextNPC
		if slotPending || kind == kindStop {
			break
		}
		if kind == kindCTI {
			slotPending = true
		}
	}
	c.stats.Instructions += uint64(k)
	if hits := uint64(k + extra); hits > 0 {
		c.lfetch.AddFetchHits(hits)
	}
	return steps + k + extra, fail
}

// spinProbeStart snapshots the architectural state and counter
// baselines at a candidate loop head.
func (c *CPU) spinProbeStart(head uint32, steps int) {
	s := &c.spin
	s.mode, s.head = spinProbing, head
	s.globals = c.globals
	copy(s.windows, c.windows)
	s.psr, s.wim, s.tbr, s.y = c.psr, c.wim, c.tbr, c.y
	s.cycles, s.stats = c.Cycles, c.stats
	s.hits, s.misses = c.lfetch.FetchCounts()
	s.steps = steps
	// Events are re-observed per probe so a flag set earlier in the
	// batch can't mask an access made during the probed iteration. A
	// device flag would already have ended the batch, so only the
	// (advisory) cached-access bit can be pending here.
	c.MemEvents = 0
}

// spinQualify decides, back at the probed head, whether the iteration
// just emulated was a pure spin — identical architectural state, no
// stores, no cache or device interaction, no traps or interrupts, and
// instruction fetches that were all resident hits — and if so how many
// more iterations can be fast-forwarded without closing a StepN gate.
// Pure iterations are exactly replayable: with registers bit-identical
// and no state anywhere else touched, every subsequent iteration is
// the same deterministic function of the same state. Uncached,
// non-device loads (the boot ROM's mailbox poll) are allowed: nothing
// can write that memory inside the batch, so the load returns the same
// value at the same deterministic cost every time.
func (c *CPU) spinQualify(maxSteps int, cycleLimit uint64, steps int) uint64 {
	s := &c.spin
	d := statsDelta(c.stats, s.stats)
	_, misses := c.lfetch.FetchCounts()
	if c.MemEvents != 0 || d.Stores != 0 || d.Traps != 0 || d.Interrupts != 0 ||
		misses != s.misses ||
		c.psr != s.psr || c.wim != s.wim || c.tbr != s.tbr || c.y != s.y ||
		c.globals != s.globals || !equalWords(c.windows, s.windows) {
		s.blacklist(s.head)
		return 0
	}
	dCycles := c.Cycles - s.cycles
	dSteps := steps - s.steps
	if dCycles == 0 || dSteps <= 0 {
		s.blacklist(s.head)
		return 0
	}
	// Fast-forward m whole iterations, keeping Cycles strictly below
	// cycleLimit and steps within maxSteps so every gate still closes
	// inside emulated code.
	m := (cycleLimit - 1 - c.Cycles) / dCycles
	if byStep := uint64((maxSteps - steps) / dSteps); byStep < m {
		m = byStep
	}
	return m
}

// spinForward replays m qualified iterations by multiplication: the
// cycle counter, the statistics counters a pure iteration can move,
// and the fetch-hit accounting all advance by m times their measured
// per-iteration delta, leaving state exactly as m emulated iterations
// would have left it. Registers need no update — the iteration was
// qualified as a fixed point.
func (c *CPU) spinForward(m uint64, steps int) int {
	s := &c.spin
	d := statsDelta(c.stats, s.stats)
	c.Cycles += m * (c.Cycles - s.cycles)
	c.stats.Instructions += m * d.Instructions
	c.stats.Loads += m * d.Loads
	c.stats.Branches += m * d.Branches
	c.stats.Taken += m * d.Taken
	c.stats.Annulled += m * d.Annulled
	hits, _ := c.lfetch.FetchCounts()
	if dh := hits - s.hits; dh > 0 {
		c.lfetch.AddFetchHits(m * dh)
	}
	return steps + int(m)*(steps-s.steps)
}

func statsDelta(now, then Stats) Stats {
	return Stats{
		Instructions: now.Instructions - then.Instructions,
		Loads:        now.Loads - then.Loads,
		Stores:       now.Stores - then.Stores,
		Branches:     now.Branches - then.Branches,
		Taken:        now.Taken - then.Taken,
		Annulled:     now.Annulled - then.Annulled,
		Traps:        now.Traps - then.Traps,
		Interrupts:   now.Interrupts - then.Interrupts,
	}
}

func equalWords(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
