package cpu

import (
	"encoding/binary"
	"testing"

	"liquidarch/internal/isa"
)

// TestPredecodeStoreInvalidation overwrites an already-executed (and
// therefore predecoded) instruction word through the CPU's own store
// path and re-executes it: the predecode cache must serve the new
// instruction, not the stale decode.
func TestPredecodeStoreInvalidation(t *testing.T) {
	const progBase = 0x1000
	g1, g2, g3 := isa.G0+1, isa.G0+2, isa.G0+3
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(g1, 1)), // T: will be overwritten
		enc(t, isa.Inst{Op: isa.OpST, Rd: g2, Rs1: g3, UseImm: true, Imm: 0}), // st %g2, [%g3]
	)
	run(t, c, 1) // executes T, populating its predecode entry
	if got := c.Reg(g1); got != 1 {
		t.Fatalf("first pass: %%g1 = %d, want 1", got)
	}
	c.SetReg(g2, enc(t, movImm(g1, 99)))
	c.SetReg(g3, progBase)
	run(t, c, 1) // the store overwrites T
	c.SetPC(progBase)
	run(t, c, 1) // re-execute T: must decode the stored word
	if got := c.Reg(g1); got != 99 {
		t.Fatalf("after self-modifying store: %%g1 = %d, want 99 (stale predecode entry reused)", got)
	}
}

// TestPredecodeExternalWrite overwrites a predecoded instruction by
// writing to memory directly — the path a controller-port poke takes,
// which never passes through the CPU's per-store invalidation. The
// predecode entry's word compare must still reject the stale decode,
// because reuse is only allowed against the exact word the fetch path
// served.
func TestPredecodeExternalWrite(t *testing.T) {
	const progBase = 0x1000
	g1 := isa.G0 + 1
	c, m := newCPU(t, DefaultConfig(), enc(t, movImm(g1, 1)))
	run(t, c, 1)
	if got := c.Reg(g1); got != 1 {
		t.Fatalf("first pass: %%g1 = %d, want 1", got)
	}
	binary.BigEndian.PutUint32(m.data[progBase:], enc(t, movImm(g1, 55)))
	c.SetPC(progBase)
	run(t, c, 1)
	if got := c.Reg(g1); got != 55 {
		t.Fatalf("after external write: %%g1 = %d, want 55 (predecode word compare failed)", got)
	}
}

// TestInvalidatePredecode checks the wholesale flush: after
// InvalidatePredecode every entry is dropped and re-decoded on the
// next fetch (execution results are unchanged, this is purely a
// does-not-crash-and-still-correct property).
func TestInvalidatePredecode(t *testing.T) {
	g1 := isa.G0 + 1
	c, _ := newCPU(t, DefaultConfig(),
		enc(t, movImm(g1, 5)),
		enc(t, isa.Inst{Op: isa.OpADD, Rd: g1, Rs1: g1, UseImm: true, Imm: 2}),
	)
	run(t, c, 2)
	c.InvalidatePredecode()
	c.SetPC(0x1000)
	run(t, c, 2)
	if got := c.Reg(g1); got != 7 {
		t.Fatalf("%%g1 = %d, want 7", got)
	}
}
