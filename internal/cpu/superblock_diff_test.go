package cpu

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"liquidarch/internal/amba"
	"liquidarch/internal/isa"
)

// Differential property tests for the superblock dispatcher: a CPU
// driven through StepN — block dispatch, hoisted interrupt probe,
// deferred accounting, poll-loop fast-forward — must be bit-identical
// to one driven through Step alone: registers, control state, memory,
// cycle count, statistics, fetch counters. Any divergence means a
// scheduling transformation leaked into architectural behaviour.

// lineFlat wraps flatMem with the LineFetcher surface: every fetch is
// a pure 1-cycle resident hit and PeekLine exposes 32-byte lines
// aliased straight into the backing store, exactly as cache.Cache
// aliases its line arrays — so CPU stores are immediately visible to
// the dispatcher, the regime the predecode-invalidation protocol must
// handle.
type lineFlat struct {
	*flatMem
	hits, misses uint64
}

const lineFlatBytes = 32

func (m *lineFlat) FetchWord(addr uint32) (uint32, int, bool, error) {
	if int(addr)+4 > len(m.data) {
		m.misses++
		return 0, 1, false, &amba.BusError{Addr: addr}
	}
	m.hits++
	return binary.BigEndian.Uint32(m.data[addr:]), 1, true, nil
}

func (m *lineFlat) PeekLine(addr uint32) ([]byte, bool) {
	base := int(addr) &^ (lineFlatBytes - 1)
	if base+lineFlatBytes > len(m.data) {
		return nil, false
	}
	return m.data[base : base+lineFlatBytes], true
}

func (m *lineFlat) AddFetchHits(n uint64)         { m.hits += n }
func (m *lineFlat) FetchCounts() (uint64, uint64) { return m.hits, m.misses }

const noStopPC = ^uint32(0) // unaligned: never matches a fetch PC

// sbPair builds two identical machines over independent memories; A is
// meant to run through StepN, B through Step.
func sbPair(t *testing.T, airq, birq IRQSource, words ...uint32) (a, b *CPU, am, bm *lineFlat) {
	t.Helper()
	const progBase = 0x1000
	build := func(irq IRQSource) (*CPU, *lineFlat) {
		m := &lineFlat{flatMem: newFlat(64 << 10)}
		for i, w := range words {
			binary.BigEndian.PutUint32(m.data[progBase+i*4:], w)
		}
		c, err := New(DefaultConfig(), m.flatMem, m.flatMem, irq)
		if err != nil {
			t.Fatal(err)
		}
		c.SetIFetch(m)
		c.psr |= PSRET
		c.SetPC(progBase)
		return c, m
	}
	a, am = build(airq)
	b, bm = build(birq)
	return a, b, am, bm
}

// sbDiff fails on any state, accounting or fetch-counter divergence.
func sbDiff(t *testing.T, a, b *CPU, am, bm *lineFlat, tag string) {
	t.Helper()
	if d := diffState(a, b); d != "" {
		t.Fatalf("%s: superblock CPU diverged: %s", tag, d)
	}
	if am.hits != bm.hits || am.misses != bm.misses {
		t.Fatalf("%s: fetch counters diverged: %d/%d vs %d/%d",
			tag, am.hits, am.misses, bm.hits, bm.misses)
	}
}

// stepRef advances the reference CPU n single steps.
func stepRef(t *testing.T, b *CPU, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("%s: reference step %d (pc=%#x): %v", tag, i, b.PC(), err)
		}
	}
}

// countedLoop builds the standard store-and-count loop ending in an
// annulling self-branch (the spin the fast-forward probe feeds on).
func countedLoop(t *testing.T, iters int32) []uint32 {
	t.Helper()
	return []uint32{
		enc(t, movImm(isa.G1, 0x800)),
		enc(t, movImm(isa.G0+2, iters)),
		enc(t, movImm(isa.O0, 0)),
		// loop:
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 3}),
		enc(t, isa.Inst{Op: isa.OpST, Rd: isa.O0, Rs1: isa.G1, UseImm: true, Imm: 0}),
		enc(t, isa.Inst{Op: isa.OpSUBcc, Rd: isa.G0 + 2, Rs1: isa.G0 + 2, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondNE, Imm: -3}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.G0, Rs1: isa.G0, UseImm: true, Imm: 0}), // delay-slot nop
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0}),        // spin
	}
}

// TestDiffSuperblockRandomStreams drives seeded random programs
// through StepN in randomly sized batches against a single-stepped
// reference, comparing all state after every batch. The tail spin
// exercises the fast-forward path under the per-batch step cap.
func TestDiffSuperblockRandomStreams(t *testing.T) {
	const progLen = 160
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			words := randProgram(t, rng, progLen)
			words = append(words, enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0}))
			a, b, am, bm := sbPair(t, nil, nil, words...)
			total := 0
			for total < len(words)+64 {
				n := 1 + rng.Intn(23)
				got, err := a.StepN(n, ^uint64(0), noStopPC)
				if err != nil {
					t.Fatalf("StepN after %d steps: %v", total, err)
				}
				if got != n {
					t.Fatalf("StepN(%d) executed %d steps with no gate to close", n, got)
				}
				stepRef(t, b, got, "random stream")
				total += got
				sbDiff(t, a, b, am, bm, fmt.Sprintf("after %d steps", total))
			}
			if !bytes.Equal(am.data, bm.data) {
				t.Fatal("memory images diverged")
			}
		})
	}
}

// TestDiffSuperblockSelfModifyingMidBlock overwrites an instruction
// two slots ahead of the executing store — inside the very block being
// dispatched, in the same cache line. The dispatcher's aliased line
// view plus per-store predecode invalidation must make the new word
// execute, exactly as the single-step interpreter does.
func TestDiffSuperblockSelfModifyingMidBlock(t *testing.T) {
	const progBase = 0x1000
	// Slot 6 lives at progBase+24 = %g1(0x800) + 0x818.
	newWord := enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 100})
	words := []uint32{
		enc(t, movImm(isa.G1, 0x800)),
		enc(t, isa.Inst{Op: isa.OpSETHI, Rd: isa.G0 + 3, Imm: int32(newWord >> 10)}),
		enc(t, isa.Inst{Op: isa.OpOR, Rd: isa.G0 + 3, Rs1: isa.G0 + 3, UseImm: true, Imm: int32(newWord & 0x3FF)}),
		enc(t, movImm(isa.O0, 7)),
		enc(t, isa.Inst{Op: isa.OpST, Rd: isa.G0 + 3, Rs1: isa.G1, UseImm: true, Imm: 0x818}),
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1}),
		enc(t, isa.Inst{Op: isa.OpADD, Rd: isa.O0, Rs1: isa.O0, UseImm: true, Imm: 1}), // overwritten with +100
		enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0}),         // spin
	}
	a, b, am, bm := sbPair(t, nil, nil, words...)
	const steps = 7 // up to and including the overwritten slot
	got, err := a.StepN(steps, ^uint64(0), noStopPC)
	if err != nil || got != steps {
		t.Fatalf("StepN = %d, %v", got, err)
	}
	stepRef(t, b, steps, "self-modify")
	sbDiff(t, a, b, am, bm, "after overwritten slot")
	if o0 := a.Reg(isa.O0); o0 != 108 {
		t.Fatalf("%%o0 = %d, want 108 (stale predecode or stale line view executed?)", o0)
	}
	if !bytes.Equal(am.data, bm.data) {
		t.Fatal("memory images diverged")
	}
}

// TestDiffSuperblockCycleLimitEveryOffset sweeps StepN's cycle limit
// across every cycle of a looping program's life: the batch must stop
// at exactly the boundary a caller stepping one instruction at a time
// and testing Cycles between steps would observe, with identical state
// at the split and after resuming to completion.
func TestDiffSuperblockCycleLimitEveryOffset(t *testing.T) {
	words := countedLoop(t, 50)
	const total = 300 // past loop exit, into the spin
	maxLimit := uint64(520)
	if testing.Short() {
		maxLimit = 130
	}
	for limit := uint64(1); limit <= maxLimit; limit++ {
		a, b, am, bm := sbPair(t, nil, nil, words...)
		n1, err := a.StepN(1<<30, limit, noStopPC)
		if err != nil {
			t.Fatalf("limit %d: StepN: %v", limit, err)
		}
		n1b := 0
		for b.Cycles < limit {
			if err := b.Step(); err != nil {
				t.Fatalf("limit %d: reference: %v", limit, err)
			}
			n1b++
		}
		if n1 != n1b {
			t.Fatalf("limit %d: steps to boundary: superblock %d vs single-step %d", limit, n1, n1b)
		}
		sbDiff(t, a, b, am, bm, fmt.Sprintf("limit %d at boundary", limit))
		if rest := total - n1; rest > 0 {
			got, err := a.StepN(rest, ^uint64(0), noStopPC)
			if err != nil || got != rest {
				t.Fatalf("limit %d: resume StepN = %d, %v", limit, got, err)
			}
			stepRef(t, b, rest, fmt.Sprintf("limit %d resume", limit))
		}
		sbDiff(t, a, b, am, bm, fmt.Sprintf("limit %d at end", limit))
	}
}

// TestDiffSuperblockIRQEveryOffset raises an interrupt at every cycle
// offset of the program — asserted between batches, as the SoC's
// settle-at-boundary protocol guarantees — and requires delivery,
// vectoring and everything after to match the single-step machine
// exactly, including when the post-trap spin is fast-forwarded.
func TestDiffSuperblockIRQEveryOffset(t *testing.T) {
	words := countedLoop(t, 50)
	const lvl = 11
	vector := uint32(TrapInterruptBase+lvl) << 4
	spin := uint32(0)
	const total = 320
	maxOffset := uint64(520)
	if testing.Short() {
		maxOffset = 130
	}
	for off := uint64(1); off <= maxOffset; off++ {
		airq, birq := &fakeIRQ{}, &fakeIRQ{}
		a, b, am, bm := sbPair(t, airq, birq, words...)
		if spin == 0 {
			spin = enc(t, isa.Inst{Op: isa.OpBicc, Cond: isa.CondA, Annul: true, Imm: 0})
		}
		// Park a spin at the interrupt vector so execution continues
		// (ET is 0 inside the handler; a trap there would freeze).
		binary.BigEndian.PutUint32(am.data[vector:], spin)
		binary.BigEndian.PutUint32(bm.data[vector:], spin)

		n1, err := a.StepN(1<<30, off, noStopPC)
		if err != nil {
			t.Fatalf("offset %d: StepN: %v", off, err)
		}
		airq.level = lvl
		if rest := total - n1; rest > 0 {
			got, err := a.StepN(rest, ^uint64(0), noStopPC)
			if err != nil || got != rest {
				t.Fatalf("offset %d: resume StepN = %d, %v", off, got, err)
			}
		}

		n1b := 0
		for b.Cycles < off {
			if err := b.Step(); err != nil {
				t.Fatalf("offset %d: reference: %v", off, err)
			}
			n1b++
		}
		if n1 != n1b {
			t.Fatalf("offset %d: steps to assert point: %d vs %d", off, n1, n1b)
		}
		birq.level = lvl
		stepRef(t, b, total-n1b, fmt.Sprintf("offset %d", off))

		sbDiff(t, a, b, am, bm, fmt.Sprintf("IRQ at cycle offset %d", off))
		if airq.acked != birq.acked {
			t.Fatalf("offset %d: ack divergence: %d vs %d", off, airq.acked, birq.acked)
		}
	}
}

// TestDiffSuperblockStopPC checks the stop-address gate (the ROM poll
// handoff uses it) against a reference that tests PC between steps.
func TestDiffSuperblockStopPC(t *testing.T) {
	words := countedLoop(t, 20)
	const progBase = 0x1000
	stop := uint32(progBase + 5*4) // the SUBcc inside the loop body
	a, b, am, bm := sbPair(t, nil, nil, words...)
	n, err := a.StepN(1<<30, ^uint64(0), stop)
	if err != nil {
		t.Fatalf("StepN: %v", err)
	}
	if a.PC() != stop {
		t.Fatalf("stopped at %#x, want %#x", a.PC(), stop)
	}
	nb := 0
	for b.PC() != stop {
		if err := b.Step(); err != nil {
			t.Fatalf("reference: %v", err)
		}
		nb++
	}
	if n != nb {
		t.Fatalf("steps to stop PC: superblock %d vs single-step %d", n, nb)
	}
	sbDiff(t, a, b, am, bm, "at stop PC")
}
