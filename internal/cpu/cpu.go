// Package cpu models the LEON2 integer unit: a SPARC V8 processor with
// register windows, the full integer instruction set, traps and
// interrupts, and LEON-like per-instruction cycle accounting. It is the
// "LEON SPARC-compatible Processor" block of Fig. 3 in the paper.
//
// The model is a functional instruction-set simulator with a timing
// overlay rather than an RTL pipeline: each instruction charges its
// LEON2 base cost plus whatever the memory hierarchy reports for
// instruction fetch and data access. The experiments in the paper
// measure whole-program clock-cycle counts, which this accounting
// reproduces.
package cpu

import (
	"errors"
	"fmt"

	"liquidarch/internal/amba"
	"liquidarch/internal/isa"
)

// PSR bit positions and fields (SPARC V8 §4.2).
const (
	PSRCarry    = 1 << 20
	PSROverflow = 1 << 21
	PSRZero     = 1 << 22
	PSRNegative = 1 << 23
	PSRET       = 1 << 5 // enable traps
	PSRPS       = 1 << 6 // previous supervisor
	PSRS        = 1 << 7 // supervisor
	psrPILShift = 8
	psrPILMask  = 0xF << psrPILShift
	psrCWPMask  = 0x1F
	// impl/ver identify the core; LEON2 reports impl=0xF, ver=3.
	psrImplVer = 0xF3 << 24
)

// Trap types (SPARC V8 table 7-1 subset).
const (
	TrapReset           = 0x00
	TrapIAccess         = 0x01
	TrapIllegalInst     = 0x02
	TrapPrivilegedInst  = 0x03
	TrapWindowOverflow  = 0x05
	TrapWindowUnderflow = 0x06
	TrapAlignment       = 0x07
	TrapDAccess         = 0x09
	TrapDivZero         = 0x2A
	TrapInterruptBase   = 0x10 // + interrupt level 1-15
	TrapSoftwareBase    = 0x80 // + Ticc number 0-127
)

// Memory is the CPU-facing interface of the instruction and data paths
// (normally the two caches). Cycle counts include the access itself.
type Memory interface {
	Read(addr uint32, size amba.Size) (val uint32, cycles int, err error)
	Write(addr uint32, val uint32, size amba.Size) (cycles int, err error)
}

// IFetcher is the fast instruction-fetch path: a concrete provider of
// aligned word fetches that bypasses the general Memory interface (and
// its per-size dispatch) on the Step hot loop. cache.Cache implements
// it; hit reports whether the word came from a resident line of an
// enabled cache. Cycle accounting must match Memory.Read exactly.
type IFetcher interface {
	FetchWord(addr uint32) (word uint32, cycles int, hit bool, err error)
}

// LineFetcher extends IFetcher with the superblock dispatch surface:
// PeekLine exposes a resident instruction-cache line when (and only
// when) per-word fetches from it are pure 1-cycle hits with no
// replacement-state side effects, and AddFetchHits settles the bulk hit
// accounting afterwards. cache.Cache implements it; StepN falls back to
// the single-step interpreter when the fetch path doesn't.
type LineFetcher interface {
	IFetcher
	PeekLine(addr uint32) ([]byte, bool)
	AddFetchHits(n uint64)
	FetchCounts() (hits, misses uint64)
}

// Memory-event bits reported through EventFlags. The memory system (the
// SoC's cached/uncached mux) sets them as the CPU's own loads and
// stores land; the superblock dispatcher consumes them.
const (
	// MemEventDevice: a device (APB) access happened. Device accesses
	// can raise or mask interrupts and re-arm timers, so the dispatcher
	// ends the block and the SoC recomputes its event horizon.
	MemEventDevice uint32 = 1 << 0
	// MemEventCached: a cached data access happened. Cache state
	// (ages, fills, dirtiness) is not captured by the spin fingerprint,
	// so iterations touching the data cache never fast-forward.
	MemEventCached uint32 = 1 << 1
)

// IRQSource provides external interrupt requests (the APB interrupt
// controller).
type IRQSource interface {
	// Pending returns the highest pending unmasked interrupt level
	// (1-15), or 0.
	Pending() int
	// Ack acknowledges the interrupt when the CPU takes it.
	Ack(level int)
}

// Timing is the per-class cycle cost table (LEON2-like defaults). The
// memory hierarchy adds its own cycles on top.
type Timing struct {
	Load   int // extra cycles for a load beyond fetch+access
	Store  int // extra cycles for a store beyond fetch+access
	Mul    int // extra cycles for UMUL/SMUL/MULScc/LQMAC without MAC
	Div    int // extra cycles for UDIV/SDIV
	Jmpl   int // extra cycles for JMPL/RETT
	Branch int // extra taken-branch penalty (grows with pipeline depth)
	Trap   int // pipeline flush cost of taking a trap
}

// DefaultTiming returns the LEON2 base timing.
func DefaultTiming() Timing {
	return Timing{Load: 1, Store: 2, Mul: 4, Div: 34, Jmpl: 1, Branch: 0, Trap: 3}
}

// Config selects the liquid (reconfigurable) aspects of the integer
// unit: window count, hardware multiply/divide, the custom MAC
// instruction, and the timing table derived from the pipeline depth.
type Config struct {
	// NWindows is the register window count (2-32, LEON2 default 8).
	NWindows int
	// MulDiv enables the hardware multiplier/divider. Without it,
	// UMUL/SMUL/UDIV/SDIV trap as illegal instructions (software
	// emulation, as on a minimal LEON build).
	MulDiv bool
	// MAC enables the Liquid custom multiply-accumulate instruction
	// (OpLQMAC); when false the encoding traps as illegal.
	MAC bool
	// PipelineDepth is the integer-unit pipeline depth (3-8; 0 means
	// the LEON2 default of 5). Deeper pipelines raise the synthesized
	// clock (see the synth package) at the cost of a larger
	// taken-branch penalty; use TimingForDepth to derive Timing.
	PipelineDepth int
	// Timing is the cycle cost table.
	Timing Timing
}

// Depth returns the effective pipeline depth (default 5).
func (c Config) Depth() int {
	if c.PipelineDepth == 0 {
		return 5
	}
	return c.PipelineDepth
}

// TimingForDepth derives the cycle-cost table for a given pipeline
// depth: each stage beyond the 5-stage LEON2 baseline adds one cycle
// of taken-branch penalty and one of trap-flush cost.
func TimingForDepth(depth int) Timing {
	t := DefaultTiming()
	if depth > 5 {
		t.Branch = depth - 5
		t.Trap += depth - 5
	}
	return t
}

// DefaultConfig returns the LEON2 base configuration.
func DefaultConfig() Config {
	return Config{NWindows: 8, MulDiv: true, Timing: DefaultTiming()}
}

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	if c.NWindows < 2 || c.NWindows > 32 {
		return fmt.Errorf("cpu: NWindows %d outside SPARC's 2-32", c.NWindows)
	}
	if d := c.Depth(); d < 3 || d > 8 {
		return fmt.Errorf("cpu: pipeline depth %d outside 3-8", d)
	}
	return nil
}

// ErrorMode is returned by Step when a synchronous trap occurs while
// traps are disabled (ET=0): the SPARC error mode, which on the FPX
// would freeze the processor until reset.
type ErrorMode struct {
	TT uint8  // trap type that caused it
	PC uint32 // faulting instruction
}

func (e *ErrorMode) Error() string {
	return fmt.Sprintf("cpu: error mode: trap %#02x at pc %#08x with ET=0", e.TT, e.PC)
}

// Stats counts instruction mix and trap activity.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Taken        uint64
	Annulled     uint64
	Traps        uint64
	Interrupts   uint64
	WindowSpills uint64 // window overflow traps
	WindowFills  uint64 // window underflow traps
}

// Predecode-cache geometry: a direct-mapped array of decoded
// instructions keyed by PC. 8192 entries cover 32 KB of code — larger
// than any kernel the experiments run — at ~256 KB of host memory per
// CPU. Entries are validated against the fetched instruction word, so
// a collision or stale entry can never change architectural behaviour;
// it only costs a re-decode.
const (
	predecodeEntries = 1 << 13
	predecodeMask    = predecodeEntries - 1
)

// predecodeEntry caches the decode of one instruction word. tag is
// pc+1 (PCs are word-aligned, so +1 makes the zero value invalid and
// still distinguishes pc 0); word is the instruction word the entry
// was decoded from, re-checked on every hit. kind is the superblock
// classification of the opcode, valid whenever tag+word match.
type predecodeEntry struct {
	tag  uint32
	word uint32
	kind uint8
	cls  isa.Class // in.Op.Class(), cached so execute skips the table lookup
	in   isa.Inst
}

// Superblock kinds. A kindFast instruction is straight-line: executed
// without trapping it always sets pc,npc = npc,npc+4 and never annuls,
// so a block of them can be dispatched back to back with the
// npc==pc+4 invariant intact. kindCTI instructions are delay-slot
// control transfers (CALL/Bicc/JMPL) that touch neither the PSR nor
// instruction memory: the dispatcher keeps going long enough to
// execute the delay slot in-block, then returns to the block-entry
// path (whose interrupt probe and spin bookkeeping run at the branch
// target). kindStop instructions force an immediate return to the
// block-entry path: RETT and WRPSR can unmask interrupts, Ticc and
// UNIMP trap deliberately, and FLUSH invalidates the very line being
// dispatched.
const (
	kindFast uint8 = iota
	kindCTI
	kindStop
)

// classify assigns the superblock kind for an opcode. Instructions
// that *may* trap (SAVE/RESTORE window checks, loads/stores,
// mul/div without hardware) stay kindFast: a trap surfaces as
// errTrapped from execute and ends the block dynamically.
func classify(op isa.Op) uint8 {
	switch op {
	case isa.OpCALL, isa.OpBicc, isa.OpJMPL:
		return kindCTI
	case isa.OpRETT, isa.OpTicc, isa.OpUNIMP, isa.OpWRPSR, isa.OpFLUSH:
		return kindStop
	}
	return kindFast
}

// CPU is one LEON integer unit.
type CPU struct {
	cfg  Config
	imem Memory
	dmem Memory
	irq  IRQSource

	// ifetch, when non-nil, serves instruction fetches instead of
	// imem (same cycle accounting, no interface-dispatch tax).
	ifetch IFetcher
	// lfetch is ifetch when it also supports line peeking; nil
	// otherwise. StepN's superblock dispatch requires it.
	lfetch LineFetcher
	// predecode is the decode-once/execute-many cache consulted
	// before isa.Decode on every fetched word.
	predecode []predecodeEntry
	// nwin mirrors cfg.NWindows so the window arithmetic on the hot
	// path reads a flat field.
	nwin int

	// FlushFn, when non-nil, is invoked by the FLUSH instruction
	// (wired to both caches by the SoC); it returns bus cycles spent.
	FlushFn func() (int, error)

	// Architected state.
	globals [8]uint32
	windows []uint32 // NWindows × 16 (8 outs + 8 locals per window)
	psr     uint32
	wim     uint32
	tbr     uint32
	y       uint32
	pc, npc uint32
	annul   bool

	// Cycles is the running clock-cycle count (the hardware cycle
	// counter the paper's state machine implements reads this).
	Cycles uint64

	// MemEvents accumulates MemEvent* bits as the memory system
	// observes this CPU's accesses. The superblock dispatcher clears
	// and consumes it; the single-step path ignores it.
	MemEvents uint32

	// instStart is Cycles at the start of the instruction currently
	// executing. The SoC's lazy peripheral settling reads it (through
	// InstBoundary) so a device access made *during* an instruction
	// sees peripheral time advanced only through the previous
	// instruction — exactly the per-step tick placement.
	instStart uint64

	// Spin fast-forward scratch (see superblock.go). Preallocated so
	// the probe allocates nothing on the dispatch path.
	spin spinState

	stats Stats

	// Trace hooks; nil hooks cost nothing.
	OnExec func(pc uint32, in isa.Inst)
	OnMem  func(addr uint32, size amba.Size, write bool)
	OnTrap func(tt uint8, pc uint32)
}

// New builds a CPU over the given instruction and data paths.
func New(cfg Config, imem, dmem Memory, irq IRQSource) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &CPU{cfg: cfg, imem: imem, dmem: dmem, irq: irq, nwin: cfg.NWindows}
	c.windows = make([]uint32, cfg.NWindows*16)
	c.predecode = make([]predecodeEntry, predecodeEntries)
	c.spin.windows = make([]uint32, cfg.NWindows*16)
	c.Reset()
	return c, nil
}

// SetIFetch installs (or, with nil, removes) the fast instruction-
// fetch path and flushes the predecode cache. The SoC wires the
// instruction cache here and re-wires it across partial
// reconfigurations (SwapCaches).
func (c *CPU) SetIFetch(f IFetcher) {
	c.ifetch = f
	c.lfetch, _ = f.(LineFetcher)
	c.InvalidatePredecode()
}

// InstBoundary returns the cycle count at the start of the instruction
// currently executing (equal to Cycles between instructions).
func (c *CPU) InstBoundary() uint64 { return c.instStart }

// InvalidatePredecode flushes the predecoded-instruction cache. The
// SoC and leon_ctrl call it whenever instruction memory can change
// underneath the fetch path without going through the CPU's own store
// port: program load/handoff through the user-side SRAM port, cache
// swaps, and the FLUSH instruction.
func (c *CPU) InvalidatePredecode() {
	for i := range c.predecode {
		c.predecode[i].tag = 0
	}
	c.spin.reset()
}

// Config returns the configuration the CPU was built with.
func (c *CPU) Config() Config { return c.cfg }

// Stats returns a snapshot of the instruction-mix counters.
func (c *CPU) Stats() Stats { return c.stats }

// Reset puts the processor in its power-on state: supervisor mode,
// traps disabled, window 0, executing from address 0 (the boot PROM).
func (c *CPU) Reset() {
	for i := range c.globals {
		c.globals[i] = 0
	}
	for i := range c.windows {
		c.windows[i] = 0
	}
	c.psr = psrImplVer | PSRS
	c.wim, c.tbr, c.y = 0, 0, 0
	c.pc, c.npc = 0, 4
	c.annul = false
	c.InvalidatePredecode()
}

// PC returns the current program counter.
func (c *CPU) PC() uint32 { return c.pc }

// NPC returns the next program counter (delay-slot machine).
func (c *CPU) NPC() uint32 { return c.npc }

// SetPC redirects execution (reset vectoring by the SoC).
func (c *CPU) SetPC(pc uint32) {
	c.pc, c.npc, c.annul = pc, pc+4, false
}

// PSR returns the processor state register.
func (c *CPU) PSR() uint32 { return c.psr }

// WIM returns the window invalid mask.
func (c *CPU) WIM() uint32 { return c.wim }

// TBR returns the trap base register.
func (c *CPU) TBR() uint32 { return c.tbr }

// Y returns the Y register.
func (c *CPU) Y() uint32 { return c.y }

// cwp returns the current window pointer.
func (c *CPU) cwp() int { return int(c.psr & psrCWPMask) }

// CWP returns the current window pointer (exported for tests/tracing).
func (c *CPU) CWP() int { return c.cwp() }

func (c *CPU) pil() int { return int(c.psr & psrPILMask >> psrPILShift) }

// Reg reads register r in the current window.
func (c *CPU) Reg(r isa.Reg) uint32 {
	if r == 0 {
		return 0
	}
	if r < 8 {
		return c.globals[r]
	}
	return c.windows[c.windowIndex(r)]
}

// SetReg writes register r in the current window (writes to %g0 are
// discarded).
func (c *CPU) SetReg(r isa.Reg, v uint32) {
	if r == 0 {
		return
	}
	if r < 8 {
		c.globals[r] = v
		return
	}
	c.windows[c.windowIndex(r)] = v
}

// windowIndex maps windowed register r (8-31) to the backing slice.
// Each window owns 16 registers (outs then locals); the ins of window w
// are the outs of window (w+1) mod NWindows.
func (c *CPU) windowIndex(r isa.Reg) int {
	w := c.cwp()
	switch {
	case r < 16: // outs
		return w*16 + int(r-8)
	case r < 24: // locals
		return w*16 + 8 + int(r-16)
	default: // ins = outs of next window
		return ((w+1)%c.nwin)*16 + int(r-24)
	}
}

func (c *CPU) setICC(n, z, v, cy bool) {
	c.psr &^= PSRNegative | PSRZero | PSROverflow | PSRCarry
	if n {
		c.psr |= PSRNegative
	}
	if z {
		c.psr |= PSRZero
	}
	if v {
		c.psr |= PSROverflow
	}
	if cy {
		c.psr |= PSRCarry
	}
}

// condTrue evaluates a Bicc/Ticc condition against the icc flags.
func (c *CPU) condTrue(cond isa.Cond) bool {
	n := c.psr&PSRNegative != 0
	z := c.psr&PSRZero != 0
	v := c.psr&PSROverflow != 0
	cy := c.psr&PSRCarry != 0
	switch cond {
	case isa.CondA:
		return true
	case isa.CondN:
		return false
	case isa.CondE:
		return z
	case isa.CondNE:
		return !z
	case isa.CondL:
		return n != v
	case isa.CondGE:
		return n == v
	case isa.CondLE:
		return z || n != v
	case isa.CondG:
		return !z && n == v
	case isa.CondCS:
		return cy
	case isa.CondCC:
		return !cy
	case isa.CondLEU:
		return cy || z
	case isa.CondGU:
		return !cy && !z
	case isa.CondNEG:
		return n
	case isa.CondPOS:
		return !n
	case isa.CondVS:
		return v
	case isa.CondVC:
		return !v
	}
	return false
}

// trap enters a trap: decrement CWP without a WIM check, stash PC/nPC
// in the new window's %l1/%l2, disable traps and vector through TBR.
// With ET already 0 the processor enters error mode.
func (c *CPU) trap(tt uint8) error {
	c.stats.Traps++
	if c.OnTrap != nil {
		c.OnTrap(tt, c.pc)
	}
	if c.psr&PSRET == 0 {
		return &ErrorMode{TT: tt, PC: c.pc}
	}
	switch tt {
	case TrapWindowOverflow:
		c.stats.WindowSpills++
	case TrapWindowUnderflow:
		c.stats.WindowFills++
	}
	// PS ← S, S ← 1, ET ← 0, CWP ← CWP-1 (mod NWindows).
	c.psr &^= PSRPS
	if c.psr&PSRS != 0 {
		c.psr |= PSRPS
	}
	c.psr |= PSRS
	c.psr &^= PSRET
	newCWP := (c.cwp() + c.cfg.NWindows - 1) % c.cfg.NWindows
	c.psr = c.psr&^psrCWPMask | uint32(newCWP)
	c.SetReg(isa.L1, c.pc)
	c.SetReg(isa.L2, c.npc)
	c.tbr = c.tbr&0xFFFFF000 | uint32(tt)<<4
	c.pc = c.tbr
	c.npc = c.pc + 4
	c.annul = false
	c.Cycles += uint64(c.cfg.Timing.Trap)
	return nil
}

var errTrapped = errors.New("cpu: instruction trapped")

// Step executes one instruction (or takes one pending interrupt) and
// advances the cycle counter. It returns nil normally and an *ErrorMode
// when the processor would freeze.
func (c *CPU) Step() error {
	c.instStart = c.Cycles
	// External interrupts are sampled between instructions.
	if c.irq != nil && c.psr&PSRET != 0 {
		if lvl := c.irq.Pending(); lvl == 15 || (lvl > 0 && lvl > c.pil()) {
			c.irq.Ack(lvl)
			c.stats.Interrupts++
			return c.trap(uint8(TrapInterruptBase + lvl))
		}
	}

	// Annulled delay slot: fetch is skipped, one dead cycle.
	if c.annul {
		c.annul = false
		c.stats.Annulled++
		c.pc, c.npc = c.npc, c.npc+4
		c.Cycles++
		return nil
	}

	if c.pc&3 != 0 {
		return c.trap(TrapAlignment)
	}

	// Instruction fetch: the fast path is a concrete call into the
	// instruction cache; the generic Memory interface is the fallback
	// for CPUs wired without one (unit tests, bare configurations).
	var (
		word        uint32
		fetchCycles int
		err         error
	)
	if c.ifetch != nil {
		word, fetchCycles, _, err = c.ifetch.FetchWord(c.pc)
	} else {
		word, fetchCycles, err = c.imem.Read(c.pc, amba.SizeWord)
	}
	c.Cycles += uint64(fetchCycles)
	if err != nil {
		return c.trap(TrapIAccess)
	}

	// Decode once, execute many: the predecode entry is trusted only
	// when it was decoded from exactly the word the fetch path just
	// served, so stale or colliding entries cost a re-decode, never a
	// wrong execution.
	e := &c.predecode[(c.pc>>2)&predecodeMask]
	if e.tag != c.pc+1 || e.word != word {
		in, derr := isa.Decode(word)
		if derr != nil {
			return c.trap(TrapIllegalInst)
		}
		e.tag, e.word, e.kind, e.cls, e.in = c.pc+1, word, classify(in.Op), in.Op.Class(), in
	}
	if c.OnExec != nil {
		c.OnExec(c.pc, e.in)
	}
	c.stats.Instructions++

	nextPC, nextNPC := c.npc, c.npc+4
	err = c.execute(e, &nextPC, &nextNPC)
	if err != nil {
		if errors.Is(err, errTrapped) {
			return nil // trap already vectored
		}
		return err
	}
	c.pc, c.npc = nextPC, nextNPC
	return nil
}

// execute runs one decoded instruction. Control transfers update
// *nextPC/*nextNPC (the delayed-branch machine). A returned errTrapped
// means the instruction vectored through trap() and PC is already set.
// e points into the predecode cache; it must not be mutated.
func (c *CPU) execute(e *predecodeEntry, nextPC, nextNPC *uint32) error {
	in := &e.in
	// The second operand (register or immediate) is computed once up
	// front instead of through a per-instruction closure: reading a
	// register has no side effects, and the flat branch keeps the hot
	// loop free of closure setup.
	var op2v uint32
	if in.UseImm {
		op2v = uint32(in.Imm)
	} else {
		op2v = c.Reg(in.Rs2)
	}
	t := &c.cfg.Timing

	switch in.Op {
	case isa.OpCALL:
		c.SetReg(isa.O7, c.pc)
		*nextNPC = c.pc + uint32(in.Imm)*4
		c.Cycles += uint64(t.Jmpl)
		return nil

	case isa.OpSETHI:
		c.SetReg(in.Rd, uint32(in.Imm)<<10)
		return nil

	case isa.OpUNIMP:
		return c.takeTrap(TrapIllegalInst)

	case isa.OpBicc:
		c.stats.Branches++
		taken := c.condTrue(in.Cond)
		if taken {
			c.stats.Taken++
			*nextNPC = c.pc + uint32(in.Imm)*4
			c.Cycles += uint64(t.Branch)
			// BA,a annuls its delay slot even though taken.
			if in.Cond == isa.CondA && in.Annul {
				c.annul = true
			}
		} else if in.Annul {
			c.annul = true
		}
		return nil

	case isa.OpJMPL:
		target := c.Reg(in.Rs1) + op2v
		if target&3 != 0 {
			return c.takeTrap(TrapAlignment)
		}
		c.SetReg(in.Rd, c.pc)
		*nextNPC = target
		c.Cycles += uint64(t.Jmpl)
		return nil

	case isa.OpRETT:
		return c.rett(c.Reg(in.Rs1)+op2v, nextPC, nextNPC)

	case isa.OpTicc:
		if c.condTrue(in.Cond) {
			n := (c.Reg(in.Rs1) + op2v) & 0x7F
			return c.takeTrap(uint8(TrapSoftwareBase + n))
		}
		return nil

	case isa.OpSAVE:
		newCWP := (c.cwp() + c.cfg.NWindows - 1) % c.cfg.NWindows
		if c.wim&(1<<uint(newCWP)) != 0 {
			return c.takeTrap(TrapWindowOverflow)
		}
		res := c.Reg(in.Rs1) + op2v // computed in the old window
		c.psr = c.psr&^psrCWPMask | uint32(newCWP)
		c.SetReg(in.Rd, res) // written in the new window
		return nil

	case isa.OpRESTORE:
		newCWP := (c.cwp() + 1) % c.cfg.NWindows
		if c.wim&(1<<uint(newCWP)) != 0 {
			return c.takeTrap(TrapWindowUnderflow)
		}
		res := c.Reg(in.Rs1) + op2v
		c.psr = c.psr&^psrCWPMask | uint32(newCWP)
		c.SetReg(in.Rd, res)
		return nil

	case isa.OpFLUSH:
		// FLUSH invalidates the fetch pipeline's predecoded state
		// along with the caches: it is the architectural barrier
		// self-modifying code must execute.
		c.InvalidatePredecode()
		if c.FlushFn != nil {
			cycles, err := c.FlushFn()
			c.Cycles += uint64(cycles)
			if err != nil {
				return c.takeTrap(TrapDAccess)
			}
		}
		return nil

	case isa.OpRDY:
		c.SetReg(in.Rd, c.y)
		return nil
	case isa.OpRDPSR:
		c.SetReg(in.Rd, c.psr)
		return nil
	case isa.OpRDWIM:
		c.SetReg(in.Rd, c.wim&(1<<uint(c.cfg.NWindows)-1))
		return nil
	case isa.OpRDTBR:
		c.SetReg(in.Rd, c.tbr)
		return nil
	case isa.OpWRY:
		c.y = c.Reg(in.Rs1) ^ op2v
		return nil
	case isa.OpWRPSR:
		v := c.Reg(in.Rs1) ^ op2v
		if int(v&psrCWPMask) >= c.cfg.NWindows {
			return c.takeTrap(TrapIllegalInst)
		}
		c.psr = psrImplVer | v&^uint32(psrImplVer)
		return nil
	case isa.OpWRWIM:
		c.wim = (c.Reg(in.Rs1) ^ op2v) & (1<<uint(c.cfg.NWindows) - 1)
		return nil
	case isa.OpWRTBR:
		c.tbr = (c.Reg(in.Rs1) ^ op2v) & 0xFFFFF000
		return nil

	case isa.OpLQMAC:
		if !c.cfg.MAC {
			return c.takeTrap(TrapIllegalInst)
		}
		c.SetReg(in.Rd, c.Reg(in.Rd)+c.Reg(in.Rs1)*op2v)
		return nil
	}

	switch e.cls {
	case isa.ClassLoad, isa.ClassStore:
		return c.memOp(in, op2v)
	}
	return c.alu(in, op2v)
}

// takeTrap vectors through trap() and signals the Step loop.
func (c *CPU) takeTrap(tt uint8) error {
	if err := c.trap(tt); err != nil {
		return err
	}
	return errTrapped
}

// rett returns from a trap: increment CWP (underflow here is fatal:
// ET=0), restore S from PS, re-enable traps, jump.
func (c *CPU) rett(target uint32, nextPC, nextNPC *uint32) error {
	if c.psr&PSRET != 0 {
		return c.takeTrap(TrapIllegalInst)
	}
	if target&3 != 0 {
		return &ErrorMode{TT: TrapAlignment, PC: c.pc}
	}
	newCWP := (c.cwp() + 1) % c.cfg.NWindows
	if c.wim&(1<<uint(newCWP)) != 0 {
		return &ErrorMode{TT: TrapWindowUnderflow, PC: c.pc}
	}
	c.psr = c.psr&^psrCWPMask | uint32(newCWP)
	if c.psr&PSRPS != 0 {
		c.psr |= PSRS
	} else {
		c.psr &^= PSRS
	}
	c.psr |= PSRET
	*nextNPC = target
	c.Cycles += uint64(c.cfg.Timing.Jmpl)
	return nil
}
