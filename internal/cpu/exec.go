package cpu

import (
	"liquidarch/internal/amba"
	"liquidarch/internal/isa"
)

// alu executes the arithmetic/logical/shift/multiply/divide group.
func (c *CPU) alu(in *isa.Inst, b uint32) error {
	a := c.Reg(in.Rs1)
	t := &c.cfg.Timing

	switch in.Op {
	case isa.OpADD, isa.OpADDcc:
		r := a + b
		if in.Op == isa.OpADDcc {
			c.setAddICC(a, b, r, false)
		}
		c.SetReg(in.Rd, r)

	case isa.OpADDX, isa.OpADDXcc:
		carry := uint32(0)
		if c.psr&PSRCarry != 0 {
			carry = 1
		}
		r := a + b + carry
		if in.Op == isa.OpADDXcc {
			c.setAddICC(a, b, r, carry != 0)
		}
		c.SetReg(in.Rd, r)

	case isa.OpSUB, isa.OpSUBcc:
		r := a - b
		if in.Op == isa.OpSUBcc {
			c.setSubICC(a, b, r)
		}
		c.SetReg(in.Rd, r)

	case isa.OpSUBX, isa.OpSUBXcc:
		borrow := uint32(0)
		if c.psr&PSRCarry != 0 {
			borrow = 1
		}
		r := a - b - borrow
		if in.Op == isa.OpSUBXcc {
			c.setSubICCBorrow(a, b, borrow, r)
		}
		c.SetReg(in.Rd, r)

	case isa.OpAND, isa.OpANDcc:
		r := a & b
		c.logicResult(in, r)
	case isa.OpANDN, isa.OpANDNcc:
		c.logicResult(in, a&^b)
	case isa.OpOR, isa.OpORcc:
		c.logicResult(in, a|b)
	case isa.OpORN, isa.OpORNcc:
		c.logicResult(in, a|^b)
	case isa.OpXOR, isa.OpXORcc:
		c.logicResult(in, a^b)
	case isa.OpXNOR, isa.OpXNORcc:
		c.logicResult(in, ^(a ^ b))

	case isa.OpSLL:
		c.SetReg(in.Rd, a<<(b&31))
	case isa.OpSRL:
		c.SetReg(in.Rd, a>>(b&31))
	case isa.OpSRA:
		c.SetReg(in.Rd, uint32(int32(a)>>(b&31)))

	case isa.OpUMUL, isa.OpUMULcc:
		if !c.cfg.MulDiv {
			return c.takeTrap(TrapIllegalInst)
		}
		p := uint64(a) * uint64(b)
		c.y = uint32(p >> 32)
		r := uint32(p)
		if in.Op == isa.OpUMULcc {
			c.setICC(int32(r) < 0, r == 0, false, false)
		}
		c.SetReg(in.Rd, r)
		c.Cycles += uint64(t.Mul)

	case isa.OpSMUL, isa.OpSMULcc:
		if !c.cfg.MulDiv {
			return c.takeTrap(TrapIllegalInst)
		}
		p := int64(int32(a)) * int64(int32(b))
		c.y = uint32(uint64(p) >> 32)
		r := uint32(p)
		if in.Op == isa.OpSMULcc {
			c.setICC(int32(r) < 0, r == 0, false, false)
		}
		c.SetReg(in.Rd, r)
		c.Cycles += uint64(t.Mul)

	case isa.OpMULScc:
		// One multiply step (SPARC V8 §B.17).
		nxv := (c.psr&PSRNegative != 0) != (c.psr&PSROverflow != 0)
		op1 := a >> 1
		if nxv {
			op1 |= 1 << 31
		}
		addend := uint32(0)
		if c.y&1 != 0 {
			addend = b
		}
		r := op1 + addend
		c.setAddICC(op1, addend, r, false)
		c.y = c.y>>1 | a<<31
		c.SetReg(in.Rd, r)

	case isa.OpUDIV, isa.OpUDIVcc:
		if !c.cfg.MulDiv {
			return c.takeTrap(TrapIllegalInst)
		}
		if b == 0 {
			return c.takeTrap(TrapDivZero)
		}
		dividend := uint64(c.y)<<32 | uint64(a)
		q := dividend / uint64(b)
		over := q > 0xFFFFFFFF
		if over {
			q = 0xFFFFFFFF
		}
		r := uint32(q)
		if in.Op == isa.OpUDIVcc {
			c.setICC(int32(r) < 0, r == 0, over, false)
		}
		c.SetReg(in.Rd, r)
		c.Cycles += uint64(t.Div)

	case isa.OpSDIV, isa.OpSDIVcc:
		if !c.cfg.MulDiv {
			return c.takeTrap(TrapIllegalInst)
		}
		if b == 0 {
			return c.takeTrap(TrapDivZero)
		}
		dividend := int64(uint64(c.y)<<32 | uint64(a))
		q := dividend / int64(int32(b))
		over := q > 0x7FFFFFFF || q < -0x80000000
		if over {
			if q > 0 {
				q = 0x7FFFFFFF
			} else {
				q = -0x80000000
			}
		}
		r := uint32(q)
		if in.Op == isa.OpSDIVcc {
			c.setICC(int32(r) < 0, r == 0, over, false)
		}
		c.SetReg(in.Rd, r)
		c.Cycles += uint64(t.Div)

	default:
		return c.takeTrap(TrapIllegalInst)
	}
	return nil
}

func (c *CPU) logicResult(in *isa.Inst, r uint32) {
	switch in.Op {
	case isa.OpANDcc, isa.OpANDNcc, isa.OpORcc, isa.OpORNcc, isa.OpXORcc, isa.OpXNORcc:
		c.setICC(int32(r) < 0, r == 0, false, false)
	}
	c.SetReg(in.Rd, r)
}

// setAddICC sets the icc flags for r = a + b (+carryIn). The signed
// overflow formula is exact with carry-in because r already includes
// it; the carry flag is computed in 64 bits.
func (c *CPU) setAddICC(a, b, r uint32, carryIn bool) {
	v := (^(a ^ b) & (a ^ r) >> 31) != 0
	cin := uint64(0)
	if carryIn {
		cin = 1
	}
	cy := uint64(a)+uint64(b)+cin > 0xFFFFFFFF
	c.setICC(int32(r) < 0, r == 0, v, cy)
}

// setSubICC sets the icc flags for r = a - b.
func (c *CPU) setSubICC(a, b, r uint32) {
	c.setSubICCBorrow(a, b, 0, r)
}

// setSubICCBorrow sets the icc flags for r = a - b - borrowIn.
func (c *CPU) setSubICCBorrow(a, b, borrowIn, r uint32) {
	v := ((a ^ b) & (a ^ r) >> 31) != 0
	cy := uint64(a) < uint64(b)+uint64(borrowIn) // borrow out
	c.setICC(int32(r) < 0, r == 0, v, cy)
}

// predecodeInvalidateStore drops the predecode entry covering a
// stored-to word, so self-modifying code that writes over an
// instruction is re-decoded on its next fetch (the I-cache itself still
// requires the architectural FLUSH, exactly as on the hardware). One
// compare per store keeps the hot loop flat.
func (c *CPU) predecodeInvalidateStore(addr uint32) {
	e := &c.predecode[(addr>>2)&predecodeMask]
	if e.tag == addr&^3+1 {
		e.tag = 0
	}
}

// memOp executes loads and stores, including the doubleword and atomic
// forms. addrOff is the second address operand (register or immediate).
func (c *CPU) memOp(in *isa.Inst, addrOff uint32) error {
	addr := c.Reg(in.Rs1) + addrOff
	t := &c.cfg.Timing

	var size amba.Size
	switch in.Op {
	case isa.OpLD, isa.OpST, isa.OpSWAP:
		size = amba.SizeWord
	case isa.OpLDUH, isa.OpLDSH, isa.OpSTH:
		size = amba.SizeHalf
	case isa.OpLDD, isa.OpSTD:
		size = amba.SizeWord
		if addr&7 != 0 {
			return c.takeTrap(TrapAlignment)
		}
		if in.Rd&1 != 0 {
			return c.takeTrap(TrapIllegalInst)
		}
	default:
		size = amba.SizeByte
	}
	if addr&(uint32(size)-1) != 0 { // sizes are powers of two
		return c.takeTrap(TrapAlignment)
	}
	if c.OnMem != nil {
		c.OnMem(addr, size, in.Op.IsStore())
	}

	switch in.Op {
	case isa.OpLD, isa.OpLDUB, isa.OpLDUH:
		v, cycles, err := c.dmem.Read(addr, size)
		c.Cycles += uint64(cycles + t.Load)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Loads++
		c.SetReg(in.Rd, v)

	case isa.OpLDSB:
		v, cycles, err := c.dmem.Read(addr, size)
		c.Cycles += uint64(cycles + t.Load)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Loads++
		c.SetReg(in.Rd, uint32(int32(v<<24)>>24))

	case isa.OpLDSH:
		v, cycles, err := c.dmem.Read(addr, size)
		c.Cycles += uint64(cycles + t.Load)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Loads++
		c.SetReg(in.Rd, uint32(int32(v<<16)>>16))

	case isa.OpLDD:
		lo, cy1, err := c.dmem.Read(addr, amba.SizeWord)
		c.Cycles += uint64(cy1 + t.Load)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		hi, cy2, err := c.dmem.Read(addr+4, amba.SizeWord)
		c.Cycles += uint64(cy2)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Loads += 2
		c.SetReg(in.Rd, lo)
		c.SetReg(in.Rd+1, hi)

	case isa.OpST, isa.OpSTB, isa.OpSTH:
		cycles, err := c.dmem.Write(addr, c.Reg(in.Rd), size)
		c.Cycles += uint64(cycles + t.Store)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Stores++
		c.predecodeInvalidateStore(addr)

	case isa.OpSTD:
		cy1, err := c.dmem.Write(addr, c.Reg(in.Rd), amba.SizeWord)
		c.Cycles += uint64(cy1 + t.Store)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		cy2, err := c.dmem.Write(addr+4, c.Reg(in.Rd+1), amba.SizeWord)
		c.Cycles += uint64(cy2)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Stores += 2
		c.predecodeInvalidateStore(addr)
		c.predecodeInvalidateStore(addr + 4)

	case isa.OpSWAP:
		v, cy1, err := c.dmem.Read(addr, amba.SizeWord)
		c.Cycles += uint64(cy1 + t.Load)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		cy2, err := c.dmem.Write(addr, c.Reg(in.Rd), amba.SizeWord)
		c.Cycles += uint64(cy2)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Loads++
		c.stats.Stores++
		c.SetReg(in.Rd, v)
		c.predecodeInvalidateStore(addr)

	case isa.OpLDSTUB:
		v, cy1, err := c.dmem.Read(addr, amba.SizeByte)
		c.Cycles += uint64(cy1 + t.Load)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		cy2, err := c.dmem.Write(addr, 0xFF, amba.SizeByte)
		c.Cycles += uint64(cy2)
		if err != nil {
			return c.takeTrap(TrapDAccess)
		}
		c.stats.Loads++
		c.stats.Stores++
		c.SetReg(in.Rd, v)
		c.predecodeInvalidateStore(addr)
	}
	return nil
}
